package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the full main path in-process and asserts the
// figure reaches stdout with a clean exit.
func TestRunSmoke(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings that must appear on stdout
	}{
		{
			name: "default",
			args: []string{"-seed", "1"},
			want: []string{"research gap"},
		},
		{
			name: "requirements",
			args: []string{"-seed", "1", "-requirements"},
			want: []string{"research gap"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Fatal("no figure output on stdout")
			}
			for _, w := range c.want {
				if !strings.Contains(stdout.String(), w) {
					t.Errorf("stdout missing %q:\n%s", w, stdout.String())
				}
			}
		})
	}
}

// TestRunCheckpointResume mines once into a checkpoint and reprints
// from it; both runs must produce identical stdout.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig1.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run([]string{"-checkpoint", ckpt}, &first, &stderr); code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run([]string{"-resume", ckpt}, &second, &stderr); code != 0 {
		t.Fatalf("resume run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-resume", filepath.Join(t.TempDir(), "missing.ckpt")},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
