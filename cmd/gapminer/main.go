// Command gapminer reproduces the research-gap analysis (§1, Fig. 1):
// it mines the bundled synthetic SIGCOMM/HotNets proceedings for
// industrial-networking terminology and prints the occurrence counts,
// plus §2's requirement checks that motivate the gap.
//
// Usage:
//
//	gapminer [-seed N] [-requirements] [-shards N]
//	         [-checkpoint FILE] [-resume FILE]
//	         [-trace FILE] [-stats] [-cpuprofile FILE]
//	         [-int FILE] [-slo SPEC] [-flightrec FILE]
//	         [-obs-addr ADDR] [-obs-linger D]
//
// -checkpoint caches the mined Fig. 1 counts; -resume reprints from
// the cache without re-mining the corpus (the mining is the command's
// only substantial work). The telemetry flags are accepted for CLI
// uniformity: gapminer's analyses move no frames through the simulated
// network, so -trace yields an empty (but valid) timeline, -stats an
// empty snapshot, and -int/-slo/-flightrec empty (but valid) digest,
// breach-log and flight-recorder files, while -cpuprofile profiles the
// mining itself. -shards is likewise accepted for uniformity: the mining
// is a single sweep cell, so any value leaves the output unchanged.
// -obs-addr serves /metrics, /shards, /events, /healthz and
// /debug/pprof/ over HTTP while the command runs (-obs-linger keeps the
// server up afterwards); for gapminer only the pprof and liveness
// endpoints carry signal.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"steelnet/internal/checkpoint"
	"steelnet/internal/cli"
	"steelnet/internal/core"
	"steelnet/internal/corpus"
	"steelnet/internal/host"
	"steelnet/internal/sweep"
	"steelnet/internal/trafficgen"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gapminer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "corpus shuffle seed (counts are seed-invariant)")
	requirements := fs.Bool("requirements", false, "also print the §2.1-§2.3 requirement checks")
	shards := cli.RegisterShardsFlagOn(fs)
	res := cli.RegisterResumeFlagsOn(fs)
	tel := cli.RegisterTelemetryFlagsOn(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tel.Out = stdout
	tel.Err = stderr
	if err := tel.Begin("gapminer"); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ckptPath, err := res.Path()
	if err != nil {
		fmt.Fprintf(stderr, "gapminer: %v\n", err)
		return 2
	}

	table, counts, err := figure1(*seed, ckptPath, cli.Workers(1, *shards))
	if err != nil {
		fmt.Fprintf(stderr, "gapminer: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, table)
	fmt.Fprintf(stdout, "research gap: smallest IT-side bar is %.0fx the largest OT-side bar\n\n", corpus.GapRatio(counts))

	if *requirements {
		fmt.Fprint(stdout, core.RenderTimingCheck(core.Section21TimingCheck(host.PreemptRT, *seed, 20000)))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, core.RenderAvailability(core.RunAvailabilityComparison(core.DefaultAvailabilityConfig())))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, core.RenderTrafficMix(core.Section23TrafficMix(*seed, trafficgen.DefaultMix)))
	}
	if err := tel.End(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}

// figure1Result is the cached form of the mined figure.
type figure1Result struct {
	Table  string
	Counts []corpus.Count
}

// figure1 mines Fig. 1, optionally through a one-cell resumable sweep:
// with a checkpoint path the mined counts persist, and a resumed run
// reprints without re-mining.
func figure1(seed uint64, ckptPath string, workers int) (string, []corpus.Count, error) {
	ck := sweep.Checkpointer[figure1Result]{
		Path: ckptPath,
		Kind: "figure1",
		Encode: func(e *checkpoint.Encoder, r figure1Result) {
			e.Str(r.Table)
			e.Int(len(r.Counts))
			for _, c := range r.Counts {
				e.Str(c.Label)
				e.Int(c.Occurrences)
			}
		},
		Decode: func(d *checkpoint.Decoder) figure1Result {
			r := figure1Result{Table: d.Str()}
			n := d.Int()
			for i := 0; i < n && d.Err() == nil; i++ {
				r.Counts = append(r.Counts, corpus.Count{Label: d.Str(), Occurrences: d.Int()})
			}
			return r
		},
	}
	out, err := sweep.RunResumable(workers, 1, ck, func(int) figure1Result {
		table, counts := core.Figure1(seed)
		return figure1Result{Table: table, Counts: counts}
	})
	if err != nil {
		return "", nil, err
	}
	return out[0].Table, out[0].Counts, nil
}
