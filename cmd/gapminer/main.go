// Command gapminer reproduces the research-gap analysis (§1, Fig. 1):
// it mines the bundled synthetic SIGCOMM/HotNets proceedings for
// industrial-networking terminology and prints the occurrence counts,
// plus §2's requirement checks that motivate the gap.
//
// Usage:
//
//	gapminer [-seed N] [-requirements] [-trace FILE] [-stats] [-cpuprofile FILE]
//
// The telemetry flags are accepted for CLI uniformity: gapminer's
// analyses move no frames through the simulated network, so -trace
// yields an empty (but valid) timeline and -stats an empty snapshot,
// while -cpuprofile profiles the mining itself.
package main

import (
	"flag"
	"fmt"

	"steelnet/internal/cli"
	"steelnet/internal/core"
	"steelnet/internal/corpus"
	"steelnet/internal/host"
	"steelnet/internal/trafficgen"
)

func main() {
	seed := flag.Uint64("seed", 1, "corpus shuffle seed (counts are seed-invariant)")
	requirements := flag.Bool("requirements", false, "also print the §2.1-§2.3 requirement checks")
	tel := cli.RegisterTelemetryFlags()
	flag.Parse()
	cli.Must(tel.Begin("gapminer"))

	table, counts := core.Figure1(*seed)
	fmt.Print(table)
	fmt.Printf("research gap: smallest IT-side bar is %.0fx the largest OT-side bar\n\n", corpus.GapRatio(counts))

	if *requirements {
		fmt.Print(core.RenderTimingCheck(core.Section21TimingCheck(host.PreemptRT, *seed, 20000)))
		fmt.Println()
		fmt.Print(core.RenderAvailability(core.RunAvailabilityComparison(core.DefaultAvailabilityConfig())))
		fmt.Println()
		fmt.Print(core.RenderTrafficMix(core.Section23TrafficMix(*seed, trafficgen.DefaultMix)))
	}
	cli.Must(tel.End())
}
