package main

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"steelnet/internal/steelnetd"
)

const bootSpec = `{"id":"boot","run":{"seed":1,"horizon":400000000,"slice":50000000,"slo":"latency:*<1µs"},"rules":"loss:*>0.1->kafka:alerts"}`

func TestRunWaitMode(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "publish")
	var out, errOut strings.Builder
	code := run([]string{
		"-listen", "", "-wait",
		"-publish-log", prefix,
		"-run", bootSpec,
	}, &out, &errOut, nil)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), `started run "boot"`) {
		t.Errorf("stderr missing the start line:\n%s", errOut.String())
	}
	kafkaLog := prefix + ".kafka.jsonl"
	b, err := os.ReadFile(kafkaLog)
	if err != nil {
		t.Fatalf("publish log not written: %v", err)
	}
	if !strings.Contains(string(b), `"rule":"loss:*>0.1->kafka:alerts"`) {
		t.Errorf("kafka log missing the firing:\n%s", b)
	}
	if _, err := os.Stat(prefix + ".mqtt.jsonl"); err != nil {
		t.Errorf("mqtt log not written: %v", err)
	}
}

func TestRunSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(bootSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-listen", "", "-wait", "-run", "@" + specPath}, &out, &errOut, nil); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), `started run "boot"`) {
		t.Errorf("stderr:\n%s", errOut.String())
	}
}

func TestRunServeAndShutdown(t *testing.T) {
	ready := make(chan *steelnetd.Server, 1)
	done := make(chan int, 1)
	var out, errOut strings.Builder
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-run", bootSpec}, &out, &errOut, ready)
	}()
	srv := <-ready
	if srv == nil {
		t.Fatal("ready delivered a nil server")
	}
	resp, err := http.Get("http://" + srv.Addr() + "/runs/boot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /runs/boot over the daemon: %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after Close")
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"nothing to do", []string{"-listen", ""}, 2},
		{"bad flag", []string{"-bogus"}, 2},
		{"bad spec json", []string{"-listen", "", "-wait", "-run", "{not json"}, 2},
		{"missing spec file", []string{"-listen", "", "-wait", "-run", "@/nosuch/spec.json"}, 2},
		{"bad rule in spec", []string{"-listen", "", "-wait", "-run", `{"run":{"seed":1},"rules":"bogus:*>1->kafka:t"}`}, 2},
		{"bad listen addr", []string{"-listen", "256.0.0.1:0"}, 1},
	}
	for _, c := range cases {
		var out, errOut strings.Builder
		if code := run(c.args, &out, &errOut, nil); code != c.code {
			t.Errorf("%s: exit %d, want %d; stderr:\n%s", c.name, code, c.code, errOut.String())
		}
	}
}

func TestRunJournalAndTraceDumps(t *testing.T) {
	dir := t.TempDir()
	dump := func(tag string) (journal, trace string) {
		t.Helper()
		jp := filepath.Join(dir, tag+".journal.jsonl")
		tp := filepath.Join(dir, tag+".trace.json")
		var out, errOut strings.Builder
		code := run([]string{
			"-listen", "", "-wait",
			"-journal-log", jp,
			"-trace", tp,
			"-run", bootSpec,
		}, &out, &errOut, nil)
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
		}
		jb, err := os.ReadFile(jp)
		if err != nil {
			t.Fatalf("journal not written: %v", err)
		}
		tb, err := os.ReadFile(tp)
		if err != nil {
			t.Fatalf("trace not written: %v", err)
		}
		return string(jb), string(tb)
	}
	j1, tr := dump("a")
	for _, want := range []string{`"event":"created"`, `"event":"started"`, `"event":"done"`, `"seq":1`} {
		if !strings.Contains(j1, want) {
			t.Errorf("journal lacks %s:\n%s", want, j1)
		}
	}
	for _, want := range []string{`"steelnetd"`, `"run/boot"`, `"name":"slice"`} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace lacks %s", want)
		}
	}
	// The lifecycle journal is a pure function of the boot specs: a rerun
	// dumps byte-identical JSONL.
	j2, _ := dump("b")
	if j1 != j2 {
		t.Errorf("journal differs across reruns:\n--- a\n%s\n--- b\n%s", j1, j2)
	}
}

func TestRunJournalLogFailure(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-listen", "", "-wait",
		"-journal-log", "/nosuch/dir/journal.jsonl",
		"-run", bootSpec,
	}, &out, &errOut, nil)
	if code != 1 {
		t.Fatalf("exit %d with an unwritable journal-log path", code)
	}
}

func TestRunPublishLogFailure(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-listen", "", "-wait",
		"-publish-log", "/nosuch/dir/publish",
		"-run", bootSpec,
	}, &out, &errOut, nil)
	if code != 1 {
		t.Fatalf("exit %d with an unwritable publish-log prefix", code)
	}
}
