// Command steelnetd is the multi-simulation gateway daemon: it hosts
// many concurrent steelnet runs behind one HTTP surface and routes rule
// firings to northbound backends, the way the paper's IT-style plant
// network serves many consumers from one telemetry substrate.
//
// Usage:
//
//	steelnetd -listen :8080 [-max-concurrent N] [-publish-log PREFIX]
//	          [-journal-log FILE] [-trace FILE] [-run SPEC.json]... [-wait]
//
// Runs start via POST /runs with a JSON run spec, or at boot with -run
// (repeatable; inline JSON or an @file path). Each run's telemetry is
// served under /runs/{id}/{metrics,shards,history,events}; the
// fleet-wide SSE fan-out is /events; the lifecycle audit journal is
// /journal (and, with -journal-log, dumped to FILE on shutdown);
// fake-backend publish logs are browsable under /backends/{name}/log
// and, with -publish-log, dumped to PREFIX.<backend>.jsonl on shutdown.
// -trace enables gateway tracing and writes the stitched Chrome/
// Perfetto fleet trace to FILE on shutdown. -wait exits when the boot
// runs finish instead of serving until SIGINT/SIGTERM.
//
// A quick rule example — page when any sink's loss crosses 1%:
//
//	steelnetd -listen :8080 \
//	  -run '{"id":"mill","run":{"seed":1,"horizon":3000000000},"rules":"loss:*>0.01->kafka:alerts"}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"steelnet/internal/cli"
	"steelnet/internal/steelnetd"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil)) }

// run is the testable daemon body. ready, when non-nil, receives the
// bound server once it is listening and every boot run has started;
// closing the server then shuts the daemon down (tests use this instead
// of signals).
func run(args []string, stdout, stderr io.Writer, ready chan<- *steelnetd.Server) int {
	fs := flag.NewFlagSet("steelnetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":8080", "gateway listen address (empty: no HTTP, -run/-wait only)")
	maxConc := fs.Int("max-concurrent", 0, "max runs stepping at once (0 = unlimited)")
	logPrefix := fs.String("publish-log", "", "dump fake-backend publish logs to PREFIX.<backend>.jsonl on shutdown")
	journalLog := fs.String("journal-log", "", "dump the run-lifecycle journal (JSONL) to FILE on shutdown")
	traceFile := fs.String("trace", "", "enable gateway tracing and write the Chrome/Perfetto fleet trace to FILE on shutdown")
	wait := fs.Bool("wait", false, "exit when the -run specs finish instead of serving until a signal")
	var specs []string
	fs.Func("run", "run spec to start at boot: inline JSON or @file (repeatable)", func(v string) error {
		specs = append(specs, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listen == "" && len(specs) == 0 {
		fmt.Fprintln(stderr, "steelnetd: nothing to do: no -listen and no -run")
		return 2
	}

	backends := steelnetd.DefaultBackends(stdout)
	g := steelnetd.NewGateway(steelnetd.GatewayConfig{Backends: backends, MaxConcurrent: *maxConc, Trace: *traceFile != ""})
	defer g.Close()

	var srv *steelnetd.Server
	if *listen != "" {
		var err error
		srv, err = steelnetd.Listen(*listen, g)
		if err != nil {
			fmt.Fprintf(stderr, "steelnetd: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "steelnetd: serving http://%s/ (runs: /runs, fleet SSE: /events)\n", srv.Addr())
	}

	ids := make([]string, 0, len(specs))
	for _, raw := range specs {
		body, err := loadSpec(raw)
		if err != nil {
			fmt.Fprintf(stderr, "steelnetd: -run: %v\n", err)
			return 2
		}
		var spec steelnetd.RunSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			fmt.Fprintf(stderr, "steelnetd: -run: bad spec: %v\n", err)
			return 2
		}
		id, err := g.Start(spec)
		if err != nil {
			fmt.Fprintf(stderr, "steelnetd: -run: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "steelnetd: started run %q\n", id)
		ids = append(ids, id)
	}
	if ready != nil {
		ready <- srv
	}

	if *wait {
		for _, id := range ids {
			if err := g.Wait(id); err != nil {
				fmt.Fprintf(stderr, "steelnetd: run %q: %v\n", id, err)
				return 1
			}
		}
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		if srv != nil {
			select {
			case s := <-sig:
				fmt.Fprintf(stderr, "steelnetd: %v, shutting down\n", s)
			case <-srv.Done():
			}
		} else {
			fmt.Fprintf(stderr, "steelnetd: %v, shutting down\n", <-sig)
		}
	}

	// Stop the fleet before dumping: WriteTrace only reads finished
	// runs' tracers, and a settled journal dump includes every run's
	// terminal record. Close is idempotent — the deferred one is a no-op.
	g.Close()
	if *logPrefix != "" {
		for _, name := range g.BackendNames() {
			p, _ := g.Backend(name)
			f, ok := p.(*steelnetd.FakeBackend)
			if !ok {
				continue
			}
			path := *logPrefix + "." + name + ".jsonl"
			if err := cli.WriteFile(path, f.WriteLog); err != nil {
				fmt.Fprintf(stderr, "steelnetd: -publish-log: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "steelnetd: wrote %s\n", path)
		}
	}
	if *journalLog != "" {
		if err := cli.WriteFile(*journalLog, g.Journal().WriteLog); err != nil {
			fmt.Fprintf(stderr, "steelnetd: -journal-log: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "steelnetd: wrote %s\n", *journalLog)
	}
	if *traceFile != "" {
		if err := cli.WriteFile(*traceFile, g.WriteTrace); err != nil {
			fmt.Fprintf(stderr, "steelnetd: -trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "steelnetd: wrote %s\n", *traceFile)
	}
	return 0
}

// loadSpec resolves a -run value: "@path" reads the file, anything else
// is inline JSON.
func loadSpec(v string) ([]byte, error) {
	if strings.HasPrefix(v, "@") {
		return os.ReadFile(v[1:])
	}
	return []byte(v), nil
}
