package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// tiny keeps simulated time short enough for the smoke tests while
// still crossing the failover (join at the default 200ms, fail at
// 400ms, horizon 800ms).
func tiny(extra ...string) []string {
	return append([]string{"-fail", "400ms", "-horizon", "800ms"}, extra...)
}

func TestRunSmoke(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "default",
			args: tiny(),
			want: []string{"switchovers=1", "io-availability"},
		},
		{
			name: "baseline",
			args: tiny("-baseline"),
			want: []string{"switchovers=0"},
		},
		{
			name: "fault-plan",
			args: tiny("-faults", "hoststall:vplc1@400ms"),
			want: []string{"fault trace", "hoststall:vplc1@400ms"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Fatal("no figure output on stdout")
			}
			for _, w := range c.want {
				if !strings.Contains(stdout.String(), w) {
					t.Errorf("stdout missing %q:\n%s", w, stdout.String())
				}
			}
		})
	}
}

// TestRunCheckpointResume checkpoints a run periodically, then resumes
// from the final checkpoint; replay-anchored restore must reproduce
// the original figure byte for byte.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run(tiny("-checkpoint", ckpt, "-checkpoint-every", "200ms"), &first, &stderr); code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tiny("-resume", ckpt), &second, &stderr); code != 0 {
		t.Fatalf("resume run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

// TestRunChaosResume runs the chaos sweep with cell-level
// checkpointing, then resumes from the completed file: every cell is
// skipped and the rendered table must come out identical.
func TestRunChaosResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "chaos.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run(tiny("-chaos", "-workers", "1", "-checkpoint", ckpt), &first, &stderr); code != 0 {
		t.Fatalf("chaos run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.Len() == 0 {
		t.Fatal("no chaos sweep output on stdout")
	}
	if code := run(tiny("-chaos", "-workers", "1", "-resume", ckpt), &second, &stderr); code != 0 {
		t.Fatalf("chaos resume: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed chaos sweep differs from original:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-resume", filepath.Join(t.TempDir(), "missing.ckpt")},
		tiny("-faults", "bogus-spec"),
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
