// Command instaplcd runs the InstaPLC failover scenario (§4) and prints
// Fig. 5: packets per 50 ms from both vPLCs and towards the I/O device,
// around a mid-run crash of the primary controller.
//
// Usage:
//
//	instaplcd [-seed N] [-cycle D] [-fail D] [-horizon D] [-baseline]
package main

import (
	"flag"
	"fmt"
	"time"

	"steelnet/internal/core"
	"steelnet/internal/instaplc"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	cycle := flag.Duration("cycle", 1600*time.Microsecond, "IO cycle time")
	fail := flag.Duration("fail", 1300*time.Millisecond, "when the primary vPLC crashes")
	horizon := flag.Duration("horizon", 3*time.Second, "simulated time span")
	wd := flag.Int("watchdog", 2, "InstaPLC data-plane watchdog in cycles")
	baseline := flag.Bool("baseline", false, "disable InstaPLC (plain L2 switch) for comparison")
	flag.Parse()

	cfg := instaplc.DefaultExperimentConfig()
	cfg.Seed = *seed
	cfg.Cycle = *cycle
	cfg.FailAt = *fail
	cfg.Horizon = *horizon
	cfg.InstaWatchdogCycles = *wd
	cfg.DisableInstaPLC = *baseline

	table, res := core.Figure5(cfg)
	fmt.Print(table)
	fmt.Printf("\nswitchovers=%d absorbed-by-twin=%d failsafe-events=%d final-device-state=%v\n",
		res.Switchovers, res.AbsorbedFrames, res.FailsafeEvents, res.DeviceState)
	if res.SwitchoverAt > 0 {
		fmt.Printf("switchover completed %v after the failure\n", res.SwitchoverAt.Sub(res.FailAt))
	}
}
