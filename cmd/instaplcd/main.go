// Command instaplcd runs the InstaPLC failover scenario (§4) and prints
// Fig. 5: packets per 50 ms from both vPLCs and towards the I/O device,
// around a mid-run crash of the primary controller.
//
// Usage:
//
//	instaplcd [-seed N] [-cycle D] [-fail D] [-horizon D] [-baseline]
//	          [-faults SPEC] [-chaos] [-workers N] [-shards N]
//	          [-checkpoint FILE] [-checkpoint-every D] [-resume FILE]
//	          [-trace FILE] [-stats] [-cpuprofile FILE]
//	          [-int FILE] [-slo SPEC] [-flightrec FILE]
//	          [-obs-addr ADDR] [-obs-linger D]
//
// -faults replaces the default crash with a declarative fault plan,
// e.g. "hoststall:vplc1@1.3s+400ms,loss:dp.2@0.5s+1s*0.2"; the run
// prints the executed fault trace next to the figure. -chaos sweeps
// randomized fault plans of increasing intensity over the scenario.
// -checkpoint writes a replay-anchored checkpoint of the single run
// every -checkpoint-every of simulated time (for -chaos: one file
// recording completed sweep cells); -resume restarts from such a file.
// -trace exports the frame lifecycle (and fault spans) as JSONL plus a
// Chrome/Perfetto timeline; -stats prints the component metrics
// snapshot. -int stamps vPLC heartbeats with in-band telemetry at the
// data plane and exports the per-path digests (failover appears as a
// path change with its gap measured in-band); -slo watches objectives
// like "latency:dp.out2<1ms" over those observations and logs
// breaches; -flightrec dumps the bounded flight recorder after the
// run. -stats forces -chaos sweeps serial; -trace and -int merge
// per-cell buffers and stay parallel (resumable chaos sweeps remain
// serial under any of the three). -shards is the shared parallelism
// knob across the steelnet commands and, when set, overrides -workers;
// either way the output is byte-identical for any value. -obs-addr
// serves live Prometheus metrics, SSE breach events and pprof over
// HTTP during the run (-obs-linger keeps the server up afterwards);
// the URL goes to stderr and stdout is unchanged.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"steelnet/internal/cli"
	"steelnet/internal/core"
	"steelnet/internal/faults"
	"steelnet/internal/instaplc"
	"steelnet/internal/sim"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("instaplcd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "experiment seed")
	cycle := fs.Duration("cycle", 1600*time.Microsecond, "IO cycle time")
	fail := fs.Duration("fail", 1300*time.Millisecond, "when the primary vPLC crashes")
	horizon := fs.Duration("horizon", 3*time.Second, "simulated time span")
	wd := fs.Int("watchdog", 2, "InstaPLC data-plane watchdog in cycles")
	baseline := fs.Bool("baseline", false, "disable InstaPLC (plain L2 switch) for comparison")
	faultSpec := fs.String("faults", "", "fault plan spec replacing the default crash (kind:target@at[+dur][*mag],...)")
	chaos := fs.Bool("chaos", false, "sweep randomized fault plans over the scenario")
	workers := fs.Int("workers", 0, "chaos sweep worker pool size (0 = NumCPU)")
	shards := cli.RegisterShardsFlagOn(fs)
	every := fs.Duration("checkpoint-every", 500*time.Millisecond, "simulated time between periodic checkpoints")
	res := cli.RegisterResumeFlagsOn(fs)
	tel := cli.RegisterTelemetryFlagsOn(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tel.Out = stdout
	tel.Err = stderr
	if err := tel.Begin("instaplcd"); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ckptPath, err := res.Path()
	if err != nil {
		fmt.Fprintf(stderr, "instaplcd: %v\n", err)
		return 2
	}

	cfg := instaplc.DefaultExperimentConfig()
	cfg.Seed = *seed
	cfg.Cycle = *cycle
	cfg.FailAt = *fail
	cfg.Horizon = *horizon
	cfg.InstaWatchdogCycles = *wd
	cfg.DisableInstaPLC = *baseline
	cfg.Trace = tel.Tracer
	cfg.Metrics = tel.Registry
	cfg.INT = tel.Collector != nil
	cfg.Collector = tel.Collector

	if *chaos {
		ccfg := core.DefaultChaosConfig()
		ccfg.Seed = *seed
		ccfg.Base = cfg
		ccfg.Workers = cli.Workers(*workers, *shards)
		cells, err := core.RunChaosSweepResumable(ccfg, ckptPath)
		if err != nil {
			fmt.Fprintf(stderr, "instaplcd: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, core.RenderChaosSweep(cells))
		if err := tel.End(); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		return 0
	}

	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintf(stderr, "instaplcd: %v\n", err)
			return 2
		}
		cfg.Faults = &plan
	}

	h, err := buildHarness(cfg, res.ResumePath, tel, *faultSpec != "")
	if err != nil {
		fmt.Fprintf(stderr, "instaplcd: %v\n", err)
		return 1
	}
	tel.AdoptCollector(h.Collector())
	if err := advanceWithCheckpoints(h, ckptPath, *every); err != nil {
		fmt.Fprintf(stderr, "instaplcd: -checkpoint: %v\n", err)
		return 1
	}
	r := h.Result()

	fmt.Fprint(stdout, instaplc.RenderFigure5(r))
	if *faultSpec != "" {
		fmt.Fprintf(stdout, "\nfault trace (plan %q):\n%s", *faultSpec, r.FaultTrace)
	}
	fmt.Fprintf(stdout, "\nswitchovers=%d absorbed-by-twin=%d failsafe-events=%d final-device-state=%v io-availability=%.4f\n",
		r.Switchovers, r.AbsorbedFrames, r.FailsafeEvents, r.DeviceState, r.IOAvailability)
	if cfg.INT {
		fmt.Fprintf(stdout, "int: %d in-band observations, %d path change(s)\n", r.INTObservations, len(r.PathChanges))
		for _, pc := range r.PathChanges {
			if pc.From == "" {
				continue // a flow's first path is not a failover
			}
			fmt.Fprintf(stdout, "int: flow %d re-routed %s -> %s at t=%v (gap %v, %d silent)\n",
				pc.Flow, pc.From, pc.To, time.Duration(pc.AtNS), time.Duration(pc.GapNS), pc.Silent)
		}
	}
	if r.SwitchoverAt > 0 {
		if *faultSpec != "" {
			// A user plan may contain several failures; the delta against
			// the single default FailAt would be meaningless.
			fmt.Fprintf(stdout, "switchover completed at t=%v\n", r.SwitchoverAt)
		} else {
			fmt.Fprintf(stdout, "switchover completed %v after the failure\n", r.SwitchoverAt.Sub(r.FailAt))
		}
	}
	if err := tel.End(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}

// buildHarness constructs the run: fresh from cfg, or — with -resume —
// restored from a checkpoint (its recorded configuration wins; the
// restore replays deterministically to the checkpointed instant and
// verifies the state digest). A user-supplied bad fault plan panics in
// the constructor; convert that to a clean CLI error.
func buildHarness(cfg instaplc.ExperimentConfig, resumePath string, tel *cli.Telemetry, userPlan bool) (h *instaplc.Harness, err error) {
	if userPlan {
		defer func() {
			if r := recover(); r != nil {
				h, err = nil, fmt.Errorf("%v", r)
			}
		}()
	}
	if resumePath != "" {
		f, err := os.Open(resumePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return instaplc.RestoreWithCollector(f, tel.Tracer, tel.Registry, tel.Collector)
	}
	return instaplc.NewHarness(cfg), nil
}

// advanceWithCheckpoints runs the harness to its horizon; with a
// checkpoint path it advances in interval-sized slices of simulated
// time and saves after each. The saves come from outside the engine —
// scheduling them as simulation events would perturb the event queue
// and break the replay digest — and cut points are invisible to the
// simulation, so the checkpointed run is byte-identical to a straight
// one. Saves are atomic (temp file + rename): a crash mid-save leaves
// the previous checkpoint intact.
func advanceWithCheckpoints(h *instaplc.Harness, path string, interval time.Duration) error {
	if path == "" {
		h.AdvanceTo(h.Horizon())
		return nil
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	step := sim.Time(interval)
	for t := h.Engine().Now() + step; t < h.Horizon(); t += step {
		h.AdvanceTo(t)
		if err := saveTo(h, path); err != nil {
			return err
		}
	}
	h.AdvanceTo(h.Horizon())
	return saveTo(h, path)
}

func saveTo(h *instaplc.Harness, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := h.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
