// Command instaplcd runs the InstaPLC failover scenario (§4) and prints
// Fig. 5: packets per 50 ms from both vPLCs and towards the I/O device,
// around a mid-run crash of the primary controller.
//
// Usage:
//
//	instaplcd [-seed N] [-cycle D] [-fail D] [-horizon D] [-baseline]
//	          [-faults SPEC] [-chaos] [-workers N]
//	          [-trace FILE] [-stats] [-cpuprofile FILE]
//
// -faults replaces the default crash with a declarative fault plan,
// e.g. "hoststall:vplc1@1.3s+400ms,loss:dp.2@0.5s+1s*0.2"; the run
// prints the executed fault trace next to the figure. -chaos sweeps
// randomized fault plans of increasing intensity over the scenario.
// -trace exports the frame lifecycle (and fault spans) as JSONL plus a
// Chrome/Perfetto timeline; -stats prints the component metrics
// snapshot. Both force -chaos sweeps serial.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"steelnet/internal/cli"
	"steelnet/internal/core"
	"steelnet/internal/faults"
	"steelnet/internal/instaplc"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	cycle := flag.Duration("cycle", 1600*time.Microsecond, "IO cycle time")
	fail := flag.Duration("fail", 1300*time.Millisecond, "when the primary vPLC crashes")
	horizon := flag.Duration("horizon", 3*time.Second, "simulated time span")
	wd := flag.Int("watchdog", 2, "InstaPLC data-plane watchdog in cycles")
	baseline := flag.Bool("baseline", false, "disable InstaPLC (plain L2 switch) for comparison")
	faultSpec := flag.String("faults", "", "fault plan spec replacing the default crash (kind:target@at[+dur][*mag],...)")
	chaos := flag.Bool("chaos", false, "sweep randomized fault plans over the scenario")
	workers := flag.Int("workers", 0, "chaos sweep worker pool size (0 = NumCPU)")
	tel := cli.RegisterTelemetryFlags()
	flag.Parse()
	cli.Must(tel.Begin("instaplcd"))

	cfg := instaplc.DefaultExperimentConfig()
	cfg.Seed = *seed
	cfg.Cycle = *cycle
	cfg.FailAt = *fail
	cfg.Horizon = *horizon
	cfg.InstaWatchdogCycles = *wd
	cfg.DisableInstaPLC = *baseline
	cfg.Trace = tel.Tracer
	cfg.Metrics = tel.Registry

	if *chaos {
		ccfg := core.DefaultChaosConfig()
		ccfg.Seed = *seed
		ccfg.Base = cfg
		ccfg.Workers = *workers
		fmt.Print(core.RenderChaosSweep(core.RunChaosSweep(ccfg)))
		cli.Must(tel.End())
		return
	}

	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "instaplcd: %v\n", err)
			os.Exit(2)
		}
		cfg.Faults = &plan
	}

	table, res := figure5(cfg, *faultSpec != "")
	fmt.Print(table)
	if *faultSpec != "" {
		fmt.Printf("\nfault trace (plan %q):\n%s", *faultSpec, res.FaultTrace)
	}
	fmt.Printf("\nswitchovers=%d absorbed-by-twin=%d failsafe-events=%d final-device-state=%v io-availability=%.4f\n",
		res.Switchovers, res.AbsorbedFrames, res.FailsafeEvents, res.DeviceState, res.IOAvailability)
	if res.SwitchoverAt > 0 {
		if *faultSpec != "" {
			// A user plan may contain several failures; the delta against
			// the single default FailAt would be meaningless.
			fmt.Printf("switchover completed at t=%v\n", res.SwitchoverAt)
		} else {
			fmt.Printf("switchover completed %v after the failure\n", res.SwitchoverAt.Sub(res.FailAt))
		}
	}
	cli.Must(tel.End())
}

// figure5 runs the experiment, turning the bad-fault-plan panic into a
// clean CLI error when the plan came from the user rather than code.
func figure5(cfg instaplc.ExperimentConfig, userPlan bool) (string, instaplc.ExperimentResult) {
	if userPlan {
		defer func() {
			if r := recover(); r != nil {
				fmt.Fprintf(os.Stderr, "instaplcd: %v\n", r)
				os.Exit(2)
			}
		}()
	}
	return core.Figure5(cfg)
}
