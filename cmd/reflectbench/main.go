// Command reflectbench runs the Traffic Reflection experiment (§3) and
// prints Fig. 4: the delay CDF of the six eBPF/XDP program variants and
// the jitter CDF for increasing numbers of concurrent real-time flows.
//
// Usage:
//
//	reflectbench [-seed N] [-cycles N] [-cycle D] [-flows list]
//	             [-workers N] [-shards N] [-jitter-only] [-delay-only]
//	             [-checkpoint FILE] [-resume FILE]
//	             [-trace FILE] [-stats] [-cpuprofile FILE]
//	             [-int FILE] [-slo SPEC] [-flightrec FILE]
//	             [-obs-addr ADDR] [-obs-linger D]
//
// -trace exports the probe frames' lifecycle as JSONL plus a
// Chrome/Perfetto timeline; -stats prints the component metrics
// snapshot. -int stamps probe frames with in-band telemetry, exports
// the per-path digests and prints the per-hop latency-decomposition
// table; -slo watches objectives ("latency:refl<250us") over the
// in-band observations; -flightrec dumps the bounded flight recorder
// after the run. -stats forces the sweeps serial; -trace and -int
// merge per-cell buffers and stay parallel (checkpointed sweeps remain
// serial under any of the three). -checkpoint persists each completed
// sweep cell; -resume restarts an interrupted sweep from such a file,
// skipping finished cells (the delay and jitter sweeps use FILE and
// FILE.jitter respectively). -obs-addr serves live Prometheus metrics,
// SSE events and pprof over HTTP during the run (-obs-linger keeps the
// server up afterwards); the URL goes to stderr and stdout is
// unchanged.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"steelnet/internal/cli"
	"steelnet/internal/reflection"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reflectbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "experiment seed")
	cycles := fs.Int("cycles", 2000, "probe cycles per flow")
	cycle := fs.Duration("cycle", 2*time.Millisecond, "probe cycle time")
	flows := fs.String("flows", "1,25", "comma-separated flow counts for the jitter sweep")
	delayOnly := fs.Bool("delay-only", false, "run only the Fig. 4 (left) delay experiment")
	jitterOnly := fs.Bool("jitter-only", false, "run only the Fig. 4 (right) jitter sweep")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = NumCPU, 1 = serial)")
	shards := cli.RegisterShardsFlagOn(fs)
	res := cli.RegisterResumeFlagsOn(fs)
	tel := cli.RegisterTelemetryFlagsOn(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tel.Out = stdout
	tel.Err = stderr
	if err := tel.Begin("reflectbench"); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ckptPath, err := res.Path()
	if err != nil {
		fmt.Fprintf(stderr, "reflectbench: %v\n", err)
		return 2
	}

	cfg := reflection.DefaultConfig()
	cfg.Seed = *seed
	cfg.Cycles = *cycles
	cfg.Cycle = *cycle
	cfg.Workers = cli.Workers(*workers, *shards)
	cfg.Trace = tel.Tracer
	cfg.Metrics = tel.Registry
	cfg.INT = tel.Collector != nil
	cfg.Collector = tel.Collector

	if !*jitterOnly {
		results, err := reflection.RunAllVariantsResumable(cfg, ckptPath)
		if err != nil {
			fmt.Fprintf(stderr, "reflectbench: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, reflection.DelayTable(results))
		for _, r := range results {
			if r.RingRecords > 0 {
				fmt.Fprintf(stdout, "  %s emitted %d ring-buffer records\n", r.Variant, r.RingRecords)
			}
		}
		fmt.Fprintln(stdout)
	}
	if !*delayOnly {
		counts, err := cli.ParseInts(*flows)
		if err != nil {
			fmt.Fprintf(stderr, "reflectbench: bad -flows: %v\n", err)
			return 2
		}
		jitterPath := ckptPath
		if jitterPath != "" && !*jitterOnly {
			// Both sweeps checkpoint: keep their files apart.
			jitterPath += ".jitter"
		}
		results, err := reflection.RunFlowSweepResumable(cfg, counts, jitterPath)
		if err != nil {
			fmt.Fprintf(stderr, "reflectbench: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, reflection.JitterTable(results))
	}
	if cfg.INT {
		fmt.Fprint(stdout, reflection.DecompositionTable(tel.Collector.Digests()))
	}
	if err := tel.End(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}
