// Command reflectbench runs the Traffic Reflection experiment (§3) and
// prints Fig. 4: the delay CDF of the six eBPF/XDP program variants and
// the jitter CDF for increasing numbers of concurrent real-time flows.
//
// Usage:
//
//	reflectbench [-seed N] [-cycles N] [-cycle D] [-flows list]
//	             [-workers N] [-jitter-only] [-delay-only]
//	             [-trace FILE] [-stats] [-cpuprofile FILE]
//
// -trace exports the probe frames' lifecycle as JSONL plus a
// Chrome/Perfetto timeline; -stats prints the component metrics
// snapshot. Both force the sweeps serial.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"steelnet/internal/cli"
	"steelnet/internal/core"
	"steelnet/internal/reflection"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	cycles := flag.Int("cycles", 2000, "probe cycles per flow")
	cycle := flag.Duration("cycle", 2*time.Millisecond, "probe cycle time")
	flows := flag.String("flows", "1,25", "comma-separated flow counts for the jitter sweep")
	delayOnly := flag.Bool("delay-only", false, "run only the Fig. 4 (left) delay experiment")
	jitterOnly := flag.Bool("jitter-only", false, "run only the Fig. 4 (right) jitter sweep")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = NumCPU, 1 = serial)")
	tel := cli.RegisterTelemetryFlags()
	flag.Parse()
	cli.Must(tel.Begin("reflectbench"))

	cfg := reflection.DefaultConfig()
	cfg.Seed = *seed
	cfg.Cycles = *cycles
	cfg.Cycle = *cycle
	cfg.Workers = *workers
	cfg.Trace = tel.Tracer
	cfg.Metrics = tel.Registry

	if !*jitterOnly {
		table, results := core.Figure4Delay(cfg)
		fmt.Print(table)
		for _, r := range results {
			if r.RingRecords > 0 {
				fmt.Printf("  %s emitted %d ring-buffer records\n", r.Variant, r.RingRecords)
			}
		}
		fmt.Println()
	}
	if !*delayOnly {
		counts, err := cli.ParseInts(*flows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reflectbench: bad -flows: %v\n", err)
			os.Exit(2)
		}
		results := reflection.RunFlowSweep(cfg, counts)
		fmt.Print(reflection.JitterTable(results))
	}
	cli.Must(tel.End())
}
