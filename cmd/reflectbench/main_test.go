package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// tiny keeps the sweeps small: 20 probe cycles, a single flow count,
// one worker.
func tiny(extra ...string) []string {
	return append([]string{"-cycles", "20", "-flows", "1", "-workers", "1"}, extra...)
}

func TestRunSmoke(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{name: "both-sweeps", args: tiny()},
		{name: "delay-only", args: tiny("-delay-only")},
		{name: "jitter-only", args: tiny("-jitter-only")},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Fatal("no figure output on stdout")
			}
		})
	}
}

// TestRunCheckpointResume completes both sweeps into checkpoint files
// (FILE and FILE.jitter), then resumes: all cells are skipped and the
// tables must come out identical.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig4.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run(tiny("-checkpoint", ckpt), &first, &stderr); code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tiny("-resume", ckpt), &second, &stderr); code != 0 {
		t.Fatalf("resume run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-resume", filepath.Join(t.TempDir(), "missing.ckpt")},
		tiny("-flows", "zero,flows"),
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}

// TestRunFiguresPresent asserts both Fig. 4 tables actually render:
// every variant appears in the delay table, the flow counts in the
// jitter table.
func TestRunFiguresPresent(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(tiny(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}
