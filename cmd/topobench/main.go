// Command topobench runs the ML-aware topology study (§5) and prints
// Fig. 6: mean inference latency versus client count for the industrial
// ring, a leaf-spine, and the traffic-aware topology, for both the
// object-identification and defect-detection workloads.
//
// Usage:
//
//	topobench [-seed N] [-clients list] [-horizon D] [-workers N] [-shards N]
//	          [-campus] [-cells N] [-cell-switches N] [-cell-hosts N] [-spines N]
//	          [-checkpoint FILE] [-resume FILE]
//	          [-trace FILE] [-stats] [-cpuprofile FILE]
//	          [-int FILE] [-slo SPEC] [-flightrec FILE]
//	          [-obs-addr ADDR] [-obs-linger D]
//
// -trace exports the frame lifecycle of every cell as JSONL plus a
// Chrome/Perfetto timeline; -stats prints the component metrics
// snapshot. -int stamps camera requests with in-band telemetry and
// exports per-path digests; -slo watches objectives over those
// observations; -flightrec dumps the bounded flight recorder after
// the run. -stats forces the grid serial (large with default counts —
// prefer a single small cell, e.g. -clients 32); -trace and -int merge
// per-cell buffers and stay parallel, but checkpointed grids remain
// serial under any of the three. -checkpoint persists each completed
// grid cell; -resume restarts an interrupted grid from such a file,
// skipping finished cells.
//
// -campus switches to the campus-scale sharded experiment: a
// spine-plus-cells plant network partitioned one shard per cell and
// executed on -shards worker goroutines under conservative
// window-barrier sync. The partition is derived from the topology, so
// the table (and -int/-slo exports) are byte-identical for every
// -shards value. In campus mode -checkpoint saves a replay-anchored
// checkpoint at the end of the run and -resume replays one to its
// recorded instant before continuing; -int/-slo observe the cross-cell
// flows (sinks strip the telemetry per cell, merged in shard order).
//
// -obs-addr serves live observability over HTTP while the run is in
// flight: Prometheus metrics on /metrics, the per-shard coordinator
// profile as JSON on /shards, an SSE stream of metric deltas and SLO
// breaches on /events, liveness on /healthz, and net/http/pprof under
// /debug/pprof/. In campus mode the run publishes a snapshot after each
// of 64 equal slices of the horizon; the endpoint's URL goes to stderr
// and the run's stdout stays byte-identical to an unobserved run.
// -obs-linger keeps the server up after the run ends so a scrape or a
// human can catch the final snapshot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"steelnet/internal/cli"
	"steelnet/internal/core"
	"steelnet/internal/mltopo"
	"steelnet/internal/sim"
	"steelnet/internal/topo"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "experiment seed")
	clients := fs.String("clients", "32,64,128,256", "comma-separated client counts")
	horizon := fs.Duration("horizon", 2*time.Second, "simulated time per cell")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = NumCPU, 1 = serial)")
	shards := cli.RegisterShardsFlagOn(fs)
	campus := fs.Bool("campus", false, "run the campus-scale sharded experiment instead of the Fig. 6 grid")
	cells := fs.Int("cells", 4, "campus: production cells (one shard each)")
	cellSwitches := fs.Int("cell-switches", 8, "campus: switches per cell tree")
	cellHosts := fs.Int("cell-hosts", 2, "campus: hosts per switch")
	spines := fs.Int("spines", 2, "campus: backbone spine switches")
	res := cli.RegisterResumeFlagsOn(fs)
	tel := cli.RegisterTelemetryFlagsOn(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tel.Out = stdout
	tel.Err = stderr
	if err := tel.Begin("topobench"); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ckptPath, err := res.Path()
	if err != nil {
		fmt.Fprintf(stderr, "topobench: %v\n", err)
		return 2
	}

	if *campus {
		cfg := core.CampusConfig{
			Seed: *seed,
			Topo: topo.CampusConfig{
				Cells:           *cells,
				SwitchesPerCell: *cellSwitches,
				HostsPerSwitch:  *cellHosts,
				Spines:          *spines,
			},
			Horizon: sim.Duration(horizon.Nanoseconds()),
			INT:     tel.Collector != nil,
			SLO:     tel.SLOSpec,
			Workers: cli.Workers(*workers, *shards),
			// Observational knobs, never encoded in checkpoints: the
			// profiler rides -stats/-obs-addr, per-shard tracing rides
			// -trace, and the registry collects whenever either asked.
			Profile: tel.Registry != nil,
			Trace:   tel.Tracer != nil,
			Metrics: tel.Registry,
		}
		return runCampus(cfg, res.ResumePath, ckptPath, tel, stdout, stderr)
	}

	counts, err := cli.ParseInts(*clients)
	if err != nil {
		fmt.Fprintf(stderr, "topobench: bad -clients: %v\n", err)
		return 2
	}
	cfg := mltopo.Figure6Config{
		Seed: *seed, ClientCounts: counts, Horizon: *horizon,
		Workers: cli.Workers(*workers, *shards),
		Trace:   tel.Tracer, Metrics: tel.Registry,
		INT: tel.Collector != nil, Collector: tel.Collector,
	}
	results, err := mltopo.RunFigure6Resumable(cfg, ckptPath)
	if err != nil {
		fmt.Fprintf(stderr, "topobench: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, mltopo.RenderFigure6(results))
	var worst float64
	for _, r := range results {
		if r.LossRate > worst {
			worst = r.LossRate
		}
	}
	fmt.Fprintf(stdout, "worst-case request loss across cells: %.3f\n", worst)
	if err := tel.End(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}

// runCampus executes the campus experiment: a fresh build, or a
// deterministic replay-and-continue from a checkpoint. The worker count
// is never encoded in checkpoints, so a run saved under -shards=1 may
// resume under -shards=8 (and vice versa) with byte-identical output.
func runCampus(cfg core.CampusConfig, resumePath, ckptPath string, tel *cli.Telemetry, stdout, stderr io.Writer) int {
	var (
		h   *core.CampusHarness
		err error
	)
	if resumePath != "" {
		f, oerr := os.Open(resumePath)
		if oerr != nil {
			fmt.Fprintf(stderr, "topobench: -resume: %v\n", oerr)
			return 2
		}
		h, err = core.RestoreCampusWith(f, cfg.Workers, func(c *core.CampusConfig) {
			// Checkpoints carry only the scenario; re-arm this run's
			// observational knobs on the restored harness.
			c.Profile = cfg.Profile
			c.Trace = cfg.Trace
			c.Metrics = cfg.Metrics
		})
		f.Close()
	} else {
		h, err = core.NewCampusHarness(cfg)
	}
	if err != nil {
		fmt.Fprintf(stderr, "topobench: campus: %v\n", err)
		return 1
	}
	if tel.Obs != nil {
		// Live publishing: advance the horizon in slices and publish a
		// snapshot at each safe point. Slicing never changes output —
		// the window grid is anchored to event content, not deadlines.
		const slices = 64
		start, end := int64(h.Now()), int64(h.Horizon())
		for i := int64(1); i <= slices; i++ {
			h.AdvanceTo(sim.Time(start + (end-start)*i/slices))
			if mw := h.MergedWatchdog(); mw != nil {
				tel.Obs.PublishBreaches(mw.Breaches())
			}
			tel.PublishObs(h.ShardProfile(), int64(h.Now()))
		}
	} else {
		h.Run()
	}
	result := h.Result()
	fmt.Fprint(stdout, core.RenderCampus(result))
	if tel.Stats && h.Config().Profile {
		fmt.Fprint(stdout, core.RenderShardProfile(h.ShardProfile()))
	}
	if tel.Tracer != nil {
		// Hand the stitched cross-shard timeline to the session tracer
		// so -trace exports one causal JSONL/Perfetto document.
		tel.Tracer.AbsorbEvents(h.MergedTrace())
	}
	if ckptPath != "" {
		werr := func() error {
			f, err := os.Create(ckptPath)
			if err != nil {
				return err
			}
			if err := h.Save(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}()
		if werr != nil {
			fmt.Fprintf(stderr, "topobench: -checkpoint: %v\n", werr)
			return 1
		}
	}
	tel.AdoptCollector(h.MergedCollector())
	if tel.Watchdog != nil {
		if mw := h.MergedWatchdog(); mw != nil {
			tel.Watchdog.Absorb(mw)
		}
	}
	if err := tel.End(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}
