// Command topobench runs the ML-aware topology study (§5) and prints
// Fig. 6: mean inference latency versus client count for the industrial
// ring, a leaf-spine, and the traffic-aware topology, for both the
// object-identification and defect-detection workloads.
//
// Usage:
//
//	topobench [-seed N] [-clients list] [-horizon D] [-workers N]
//	          [-checkpoint FILE] [-resume FILE]
//	          [-trace FILE] [-stats] [-cpuprofile FILE]
//	          [-int FILE] [-slo SPEC] [-flightrec FILE]
//
// -trace exports the frame lifecycle of every cell as JSONL plus a
// Chrome/Perfetto timeline; -stats prints the component metrics
// snapshot. -int stamps camera requests with in-band telemetry and
// exports per-path digests; -slo watches objectives over those
// observations; -flightrec dumps the bounded flight recorder after
// the run. -stats forces the grid serial (large with default counts —
// prefer a single small cell, e.g. -clients 32); -trace and -int merge
// per-cell buffers and stay parallel, but checkpointed grids remain
// serial under any of the three. -checkpoint persists each completed
// grid cell; -resume restarts an interrupted grid from such a file,
// skipping finished cells.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"steelnet/internal/cli"
	"steelnet/internal/mltopo"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Uint64("seed", 1, "experiment seed")
	clients := fs.String("clients", "32,64,128,256", "comma-separated client counts")
	horizon := fs.Duration("horizon", 2*time.Second, "simulated time per cell")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = NumCPU, 1 = serial)")
	res := cli.RegisterResumeFlagsOn(fs)
	tel := cli.RegisterTelemetryFlagsOn(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tel.Out = stdout
	if err := tel.Begin("topobench"); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ckptPath, err := res.Path()
	if err != nil {
		fmt.Fprintf(stderr, "topobench: %v\n", err)
		return 2
	}

	counts, err := cli.ParseInts(*clients)
	if err != nil {
		fmt.Fprintf(stderr, "topobench: bad -clients: %v\n", err)
		return 2
	}
	cfg := mltopo.Figure6Config{
		Seed: *seed, ClientCounts: counts, Horizon: *horizon, Workers: *workers,
		Trace: tel.Tracer, Metrics: tel.Registry,
		INT: tel.Collector != nil, Collector: tel.Collector,
	}
	results, err := mltopo.RunFigure6Resumable(cfg, ckptPath)
	if err != nil {
		fmt.Fprintf(stderr, "topobench: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, mltopo.RenderFigure6(results))
	var worst float64
	for _, r := range results {
		if r.LossRate > worst {
			worst = r.LossRate
		}
	}
	fmt.Fprintf(stdout, "worst-case request loss across cells: %.3f\n", worst)
	if err := tel.End(); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	return 0
}
