// Command topobench runs the ML-aware topology study (§5) and prints
// Fig. 6: mean inference latency versus client count for the industrial
// ring, a leaf-spine, and the traffic-aware topology, for both the
// object-identification and defect-detection workloads.
//
// Usage:
//
//	topobench [-seed N] [-clients list] [-horizon D] [-workers N]
//	          [-trace FILE] [-stats] [-cpuprofile FILE]
//
// -trace exports the frame lifecycle of every cell as JSONL plus a
// Chrome/Perfetto timeline; -stats prints the component metrics
// snapshot. Both force the grid serial (large with default counts —
// prefer a single small cell, e.g. -clients 32).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"steelnet/internal/cli"
	"steelnet/internal/core"
	"steelnet/internal/mltopo"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	clients := flag.String("clients", "32,64,128,256", "comma-separated client counts")
	horizon := flag.Duration("horizon", 2*time.Second, "simulated time per cell")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = NumCPU, 1 = serial)")
	tel := cli.RegisterTelemetryFlags()
	flag.Parse()
	cli.Must(tel.Begin("topobench"))

	counts, err := cli.ParseInts(*clients)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topobench: bad -clients: %v\n", err)
		os.Exit(2)
	}
	cfg := mltopo.Figure6Config{
		Seed: *seed, ClientCounts: counts, Horizon: *horizon, Workers: *workers,
		Trace: tel.Tracer, Metrics: tel.Registry,
	}
	table, results := core.Figure6(cfg)
	fmt.Print(table)
	var worst float64
	for _, r := range results {
		if r.LossRate > worst {
			worst = r.LossRate
		}
	}
	fmt.Printf("worst-case request loss across cells: %.3f\n", worst)
	cli.Must(tel.End())
}
