package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// tiny keeps the Fig. 6 grid to its smallest useful shape: one client
// count, a short horizon, one worker.
func tiny(extra ...string) []string {
	return append([]string{"-clients", "4", "-horizon", "100ms", "-workers", "1"}, extra...)
}

func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(tiny(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if out == "" {
		t.Fatal("no figure output on stdout")
	}
	if !strings.Contains(out, "worst-case request loss") {
		t.Errorf("stdout missing loss summary:\n%s", out)
	}
}

// TestRunCheckpointResume completes the grid into a checkpoint, then
// resumes: all cells are skipped and the table must come out identical.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig6.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run(tiny("-checkpoint", ckpt), &first, &stderr); code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tiny("-resume", ckpt), &second, &stderr); code != 0 {
		t.Fatalf("resume run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

// tinyCampus keeps the campus experiment small enough for unit tests:
// two 2-switch cells with one host each, a 2 ms horizon.
func tinyCampus(extra ...string) []string {
	return append([]string{
		"-campus", "-cells", "2", "-cell-switches", "2", "-cell-hosts", "1",
		"-spines", "1", "-horizon", "2ms",
	}, extra...)
}

func TestRunCampusSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(tinyCampus("-shards", "1"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"campus", "cell", "frames"} {
		if !strings.Contains(out, want) {
			t.Errorf("campus output missing %q:\n%s", want, out)
		}
	}
}

// TestRunCampusShardInvariant pins the CLI-level determinism contract:
// the full stdout of a campus run is byte-identical for -shards=1 and
// -shards=8.
func TestRunCampusShardInvariant(t *testing.T) {
	var serial, wide, stderr bytes.Buffer
	if code := run(tinyCampus("-shards", "1"), &serial, &stderr); code != 0 {
		t.Fatalf("-shards=1: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tinyCampus("-shards", "8"), &wide, &stderr); code != 0 {
		t.Fatalf("-shards=8: exit %d, stderr:\n%s", code, stderr.String())
	}
	if serial.String() != wide.String() {
		t.Errorf("campus stdout differs across -shards:\n--- shards=1\n%s--- shards=8\n%s",
			serial.String(), wide.String())
	}
}

// TestRunCampusCheckpointResume saves the finished campus run, then
// resumes the checkpoint under a different shard count: the replay must
// reproduce the identical table.
func TestRunCampusCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campus.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run(tinyCampus("-shards", "2", "-checkpoint", ckpt), &first, &stderr); code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tinyCampus("-shards", "8", "-resume", ckpt), &second, &stderr); code != 0 {
		t.Fatalf("resume run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed campus output differs from original:\n--- first\n%s--- second\n%s",
			first.String(), second.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-resume", filepath.Join(t.TempDir(), "missing.ckpt")},
		{"-clients", "none"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
