package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tiny keeps the Fig. 6 grid to its smallest useful shape: one client
// count, a short horizon, one worker.
func tiny(extra ...string) []string {
	return append([]string{"-clients", "4", "-horizon", "100ms", "-workers", "1"}, extra...)
}

func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(tiny(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if out == "" {
		t.Fatal("no figure output on stdout")
	}
	if !strings.Contains(out, "worst-case request loss") {
		t.Errorf("stdout missing loss summary:\n%s", out)
	}
}

// TestRunCheckpointResume completes the grid into a checkpoint, then
// resumes: all cells are skipped and the table must come out identical.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig6.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run(tiny("-checkpoint", ckpt), &first, &stderr); code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tiny("-resume", ckpt), &second, &stderr); code != 0 {
		t.Fatalf("resume run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

// tinyCampus keeps the campus experiment small enough for unit tests:
// two 2-switch cells with one host each, a 2 ms horizon.
func tinyCampus(extra ...string) []string {
	return append([]string{
		"-campus", "-cells", "2", "-cell-switches", "2", "-cell-hosts", "1",
		"-spines", "1", "-horizon", "2ms",
	}, extra...)
}

func TestRunCampusSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(tinyCampus("-shards", "1"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"campus", "cell", "frames"} {
		if !strings.Contains(out, want) {
			t.Errorf("campus output missing %q:\n%s", want, out)
		}
	}
}

// TestRunCampusShardInvariant pins the CLI-level determinism contract:
// the full stdout of a campus run is byte-identical for -shards=1 and
// -shards=8.
func TestRunCampusShardInvariant(t *testing.T) {
	var serial, wide, stderr bytes.Buffer
	if code := run(tinyCampus("-shards", "1"), &serial, &stderr); code != 0 {
		t.Fatalf("-shards=1: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tinyCampus("-shards", "8"), &wide, &stderr); code != 0 {
		t.Fatalf("-shards=8: exit %d, stderr:\n%s", code, stderr.String())
	}
	if serial.String() != wide.String() {
		t.Errorf("campus stdout differs across -shards:\n--- shards=1\n%s--- shards=8\n%s",
			serial.String(), wide.String())
	}
}

// TestRunCampusCheckpointResume saves the finished campus run, then
// resumes the checkpoint under a different shard count: the replay must
// reproduce the identical table.
func TestRunCampusCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campus.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run(tinyCampus("-shards", "2", "-checkpoint", ckpt), &first, &stderr); code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tinyCampus("-shards", "8", "-resume", ckpt), &second, &stderr); code != 0 {
		t.Fatalf("resume run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed campus output differs from original:\n--- first\n%s--- second\n%s",
			first.String(), second.String())
	}
}

// TestRunCampusStatsProfileTable: -stats on a sharded campus run prints
// the per-shard profile table alongside the metrics snapshot.
func TestRunCampusStatsProfileTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(tinyCampus("-shards", "2", "-stats"), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"shard profile:", "ev/chunk", "outbox msgs", "metrics", "sim_shard_events_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// command under test to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunCampusObsEndpoint drives the live telemetry endpoint end to
// end: a campus run serving -obs-addr must expose shard metrics and the
// JSON shard profile over HTTP while (and shortly after) it runs, and
// its stdout must stay byte-identical to a run nobody watched.
func TestRunCampusObsEndpoint(t *testing.T) {
	addr := freeAddr(t)
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(tinyCampus("-shards", "2", "-obs-addr", addr, "-obs-linger", "2s"), &stdout, &stderr)
	}()

	base := "http://" + addr
	get := func(path string) (int, string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), err
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, body, err := get("/metrics"); err == nil && strings.Contains(body, "sim_shard_events_total") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("obs endpoint never served shard metrics")
		}
		time.Sleep(20 * time.Millisecond)
	}

	code, body, err := get("/shards")
	if err != nil || code != 200 {
		t.Fatalf("/shards: %d %v", code, err)
	}
	var prof struct {
		Shards   int              `json:"shards"`
		PerShard []map[string]any `json:"per_shard"`
	}
	if err := json.Unmarshal([]byte(body), &prof); err != nil {
		t.Fatalf("/shards not JSON: %v\n%s", err, body)
	}
	if prof.Shards != 3 || len(prof.PerShard) != 3 { // spine + 2 cells
		t.Fatalf("/shards profile = %+v, want 3 shards with lanes", prof)
	}
	if code, body, err := get("/healthz"); err != nil || code != 200 || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("/healthz: %d %q %v", code, body, err)
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish")
	}
	if !strings.Contains(stderr.String(), "obs: serving on http://"+addr) {
		t.Errorf("listen notice missing from stderr:\n%s", stderr.String())
	}

	// Watching must not alter the experiment's stdout.
	var plain, plainErr bytes.Buffer
	if code := run(tinyCampus("-shards", "2"), &plain, &plainErr); code != 0 {
		t.Fatalf("plain run: exit %d, stderr:\n%s", code, plainErr.String())
	}
	if stdout.String() != plain.String() {
		t.Errorf("-obs-addr changed stdout:\n--- observed\n%s--- plain\n%s", stdout.String(), plain.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-resume", filepath.Join(t.TempDir(), "missing.ckpt")},
		{"-clients", "none"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
