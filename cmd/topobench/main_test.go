package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// tiny keeps the Fig. 6 grid to its smallest useful shape: one client
// count, a short horizon, one worker.
func tiny(extra ...string) []string {
	return append([]string{"-clients", "4", "-horizon", "100ms", "-workers", "1"}, extra...)
}

func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(tiny(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if out == "" {
		t.Fatal("no figure output on stdout")
	}
	if !strings.Contains(out, "worst-case request loss") {
		t.Errorf("stdout missing loss summary:\n%s", out)
	}
}

// TestRunCheckpointResume completes the grid into a checkpoint, then
// resumes: all cells are skipped and the table must come out identical.
func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig6.ckpt")
	var first, second, stderr bytes.Buffer
	if code := run(tiny("-checkpoint", ckpt), &first, &stderr); code != 0 {
		t.Fatalf("checkpoint run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if code := run(tiny("-resume", ckpt), &second, &stderr); code != 0 {
		t.Fatalf("resume run: exit %d, stderr:\n%s", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("resumed output differs from original:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestRunBadUsage(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-resume", filepath.Join(t.TempDir(), "missing.ckpt")},
		{"-clients", "none"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
