// ML factory: the §5 scenario as an application. A casting line adds
// camera-based defect detection: inference clients ship frames to fog
// servers while deterministic control traffic keeps running. The
// example walks the paper's chain of reasoning end to end:
//
//  1. network-induced degradation (compression, loss, jitter) costs
//     model accuracy — the quality/quantity trade;
//  2. the same inference fleet is placed on an industrial ring, a
//     leaf-spine and the traffic-aware (ML-aware) topology, and the
//     latency gap is measured (Fig. 6's mechanism);
//  3. the ML-aware optimizer's plan is inspected: where it put the fog
//     servers and which links it dimensioned.
package main

import (
	"fmt"
	"time"

	"steelnet/internal/mltopo"
	"steelnet/internal/mlwork"
)

func main() {
	p := mlwork.DefectDetection

	fmt.Println("=== 1. input degradation vs model accuracy ===")
	for _, d := range []mlwork.Degradation{
		{CompressionRatio: 1},
		{CompressionRatio: 4},
		{CompressionRatio: 16},
		{CompressionRatio: 4, LossRate: 0.05},
		{CompressionRatio: 4, Jitter: 4 * time.Millisecond},
	} {
		fmt.Printf("compression=%4.0fx loss=%4.2f jitter=%-6v -> accuracy %.3f (frame %d KB)\n",
			d.CompressionRatio, d.LossRate, d.Jitter, p.Accuracy(d), p.WireBytes(d)>>10)
	}
	best := p.ChooseCompression(0.94, []float64{1, 2, 4, 8, 16})
	fmt.Printf("highest compression holding >=94%% accuracy: %.0fx\n\n", best)

	fmt.Println("=== 2. the same fleet on three topologies (64 clients) ===")
	for _, kind := range []mltopo.Kind{mltopo.Ring, mltopo.LeafSpine, mltopo.MLAware} {
		sc := mltopo.DefaultScenario(kind, p, 64)
		sc.Horizon = time.Second
		r := mltopo.Run(sc)
		fmt.Printf("%-11s mean=%.2fms p99=%.2fms loss=%.3f\n",
			kind, r.MeanLatencyMS, r.P99LatencyMS, r.LossRate)
	}
	fmt.Println()

	fmt.Println("=== 3. inside the ML-aware plan ===")
	perClient := float64(p.WireBytes(mlwork.Degradation{CompressionRatio: best})) / p.Period.Seconds()
	demands := make([]mltopo.Demand, 64)
	for i := range demands {
		demands[i] = mltopo.Demand{ClientIdx: i, BytesPerSecond: perClient, Pod: i / 16}
	}
	plan := mltopo.Optimize(demands, 4, 4, 0.4)
	fmt.Printf("fog servers at pods: %v\n", plan.PodOfServer)
	fmt.Printf("demand served in-pod: %.0f%%\n", plan.LocalityFraction(demands)*100)
	for pod, bps := range plan.PodTrunkBps {
		fmt.Printf("pod %d trunk dimensioned to %.1f Gb/s\n", pod, bps/1e9)
	}
}
