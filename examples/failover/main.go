// Failover: the Fig. 5 scenario as an application. Two virtual PLCs —
// a primary and a hot standby — control one I/O device through an
// InstaPLC programmable switch. The primary is killed mid-run; the
// data-plane watchdog detects the silence within two IO cycles and
// switches the standby in without the device ever noticing. The same
// scenario is then repeated through a plain switch (no InstaPLC) and
// with the classic hardware redundant pair, to reproduce the paper's
// comparison: only the in-network approach stays inside the device's
// watchdog budget.
package main

import (
	"fmt"
	"time"

	"steelnet/internal/core"
	"steelnet/internal/instaplc"
)

func main() {
	cfg := instaplc.DefaultExperimentConfig()

	fmt.Println("=== with InstaPLC (in-network failover) ===")
	table, res := core.Figure5(cfg)
	fmt.Print(table)
	fmt.Printf("switchover %v after failure; device failsafes: %d\n\n",
		res.SwitchoverAt.Sub(res.FailAt), res.FailsafeEvents)

	fmt.Println("=== without InstaPLC (plain switch, no standby path) ===")
	base := cfg
	base.DisableInstaPLC = true
	_, bres := core.Figure5(base)
	fmt.Printf("device failsafes: %d (production halted for safety)\n\n", bres.FailsafeEvents)

	fmt.Println("=== availability over a simulated year (§2.2) ===")
	fmt.Print(core.RenderAvailability(core.RunAvailabilityComparison(core.DefaultAvailabilityConfig())))

	fmt.Println()
	fmt.Println("InstaPLC needs no dedicated sync links between the vPLCs,")
	fmt.Println("and its switchover is bounded by IO cycles, not by " +
		(150 * time.Millisecond).String() + "-class")
	fmt.Println("hardware takeover times.")
}
