// TSN ring: the engineered OT network of §1.1/§2.3 end to end. Three
// cyclic control flows share a multi-hop trunk; a TSN schedule is
// synthesized so they never contend (zero queueing jitter by
// construction); PTP disciplines a drifting station clock against the
// grandmaster — including the asymmetric-path residual that motivates
// Traffic Reflection's single-clock tap; and an MRP-style ring manager
// shows bounded recovery from a cable cut.
package main

import (
	"fmt"
	"time"

	"steelnet/internal/clock"
	"steelnet/internal/frame"
	"steelnet/internal/metrics"
	"steelnet/internal/mrp"
	"steelnet/internal/ptp"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/tsn"
)

func main() {
	fmt.Println("=== 1. TSN schedule synthesis ===")
	flows := []tsn.FlowSpec{
		{ID: 1, Period: time.Millisecond, FrameBytes: 64},
		{ID: 2, Period: time.Millisecond, FrameBytes: 200},
		{ID: 3, Period: 2 * time.Millisecond, FrameBytes: 128},
	}
	path := tsn.PathSpec{Hops: 3, LinkBps: 100e6, SwitchLatency: 2 * time.Microsecond, GuardBand: 2 * time.Microsecond}
	sched, err := tsn.Synthesize(flows, path)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hyperperiod %v, schedule valid: %v\n", sched.Hyperperiod, sched.Validate() == nil)
	for _, a := range sched.Assignments {
		fmt.Printf("flow %d: offset %v, reserves %v per hyperperiod instance\n", a.Flow.ID, a.Offset, a.Window)
	}
	fmt.Println()

	fmt.Println("=== 2. PTP sync and the asymmetry residual ===")
	e := sim.NewEngine(1)
	gm := ptp.NewMaster(e, "gm", frame.NewMAC(1), clock.Perfect{})
	station := ptp.NewSlave(e, "station", frame.NewMAC(2), clock.Drifting{DriftPPM: 40})
	link := simnet.Connect(e, "ptp", gm.Host().Port(), station.Host().Port(), 1e9, 5*sim.Microsecond)
	gm.Start(station.Host().MAC(), 100*time.Millisecond)
	e.RunUntil(sim.Time(3 * time.Second))
	fmt.Printf("symmetric path:  offset error %v (drift 40ppm, servoed)\n", station.OffsetError(e.Now()).Round(10*time.Nanosecond))
	link.SetAsymmetry(0, 100*time.Microsecond)
	e.RunUntil(sim.Time(6 * time.Second))
	fmt.Printf("asymmetric path: offset error %v (residual = asym/2 — invisible to PTP itself)\n",
		station.OffsetError(e.Now()).Round(time.Microsecond))
	fmt.Println()

	fmt.Println("=== 3. MRP ring failover ===")
	e2 := sim.NewEngine(2)
	n := 4
	sws := make([]*simnet.Switch, n)
	hosts := make([]*simnet.Host, n)
	for i := 0; i < n; i++ {
		sws[i] = simnet.NewSwitch(e2, "sw", 3, simnet.SwitchConfig{Latency: sim.Microsecond})
		hosts[i] = simnet.NewHost(e2, "h", frame.NewMAC(uint32(i+1)))
		simnet.Connect(e2, "h", hosts[i].Port(), sws[i].Port(2), 100e6, 0)
	}
	links := make([]*simnet.Link, n)
	for i := 0; i < n; i++ {
		links[i] = simnet.Connect(e2, "ring", sws[i].Port(1), sws[(i+1)%n].Port(0), 100e6, 500*sim.Nanosecond)
	}
	mgr := mrp.Attach(e2, sws[0], 0, 1, mrp.Config{TestInterval: time.Millisecond, TestTolerance: 2})
	for i := 1; i < n; i++ {
		mrp.AttachClient(sws[i], 0, 1)
	}
	// A 1 ms heartbeat across the ring; count gaps around the cut.
	arrivals := []int64{}
	hosts[2].OnReceive(func(f *frame.Frame) {
		if f.Type == frame.TypeProfinet {
			arrivals = append(arrivals, int64(e2.Now()))
		}
	})
	e2.Every(0, time.Millisecond, func() {
		hosts[0].Send(&frame.Frame{Dst: hosts[2].MAC(), Type: frame.TypeProfinet, Payload: make([]byte, 20)})
	})
	e2.RunUntil(sim.Time(500 * time.Millisecond))
	cutAt := e2.Now()
	links[2].SetUp(false)
	e2.RunUntil(sim.Time(1500 * time.Millisecond))
	jit := metrics.InterArrivalJitter(arrivals, time.Millisecond)
	fmt.Printf("ring state after cut: %v (transitions %d)\n", mgr.State(), mgr.Transitions)
	fmt.Printf("heartbeats delivered: %d; longest gap %v (cut at %v)\n",
		len(arrivals), time.Duration(jit.Max()).Round(100*time.Microsecond)+time.Millisecond, cutAt)
}
