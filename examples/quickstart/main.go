// Quickstart: build a one-cell factory — an I/O device and a virtual
// PLC exchanging cyclic PROFINET-style IO at a 1.6 ms cycle over a
// simulated industrial network — run it for two simulated seconds and
// inspect its health. This is the smallest end-to-end use of the
// steelnet core API.
package main

import (
	"fmt"
	"time"

	"steelnet/internal/core"
)

func main() {
	// A factory is a list of production cells plus a fabric. DefaultCell
	// gives motion-control-ish parameters: 1.6 ms cycle, 3-cycle safety
	// watchdog, 20-byte IO payloads (§2.3's time-critical traffic).
	factory := core.NewFactory(core.FactoryConfig{
		Seed:  42,
		Cells: []core.CellConfig{core.DefaultCell("press-1")},
	})

	// Start connects every vPLC to its device (connect handshake, then
	// cyclic IO), and RunFor advances virtual time deterministically.
	factory.Start(0)
	factory.RunFor(2 * time.Second)

	for _, h := range factory.Health() {
		fmt.Printf("cell %-10s state=%-8v cyclic frames: vPLC=%d device=%d failsafes=%d\n",
			h.Cell, h.DeviceState, h.PrimaryTx, h.DeviceTx, h.FailsafeEvents)
	}

	// The same cell, after its controller crashes: the device's safety
	// watchdog halts the cell (failsafe) within 3 cycles — this is the
	// availability problem §2.2 is about, and examples/failover shows
	// how InstaPLC removes it.
	factory.Cells[0].Primary.Fail()
	factory.RunFor(time.Second)
	h := factory.Health()[0]
	fmt.Printf("after vPLC crash: state=%v failsafes=%d\n", h.DeviceState, h.FailsafeEvents)
}
