// Production line: a three-cell line — feeder, press, and inspection —
// where each cell's vPLC runs real IEC-61131-style instruction-list
// logic over its process image, and the cells are chained through
// their IO: the feeder's "part ready" output becomes the press's
// input, and so on down the line. A jam is then injected at the press
// and the line's interlock logic reacts. This exercises the PLC
// runtime, the IL interpreter (latches and on-delay timers), the
// PROFINET-style cyclic exchange and the watchdog machinery on a
// scenario shaped like the ones §2.1 says evaluations usually lack.
package main

import (
	"fmt"
	"time"

	"steelnet/internal/core"
	"steelnet/internal/plc"
	"steelnet/internal/sim"
)

func main() {
	// Feeder logic: a start/stop latch on %Q0.0 (motor run) — set by
	// start button %I0.0, reset by stop %I0.1 — plus a TON that raises
	// "part ready" (%Q0.1) 80 ms after the motor runs.
	feederLogic := &plc.ILProgram{Name: "feeder", Insns: []plc.ILInsn{
		plc.LD(plc.I(0, 0)), plc.SET(plc.Q(0, 0)),
		plc.LD(plc.I(0, 1)), plc.RST(plc.Q(0, 0)),
		plc.LD(plc.Q(0, 0)), plc.TON(0, 80), plc.ST(plc.Q(0, 1)),
	}}
	// Press logic: press (%Q0.0) runs while a part is present (%I0.2)
	// and there is no jam (%I0.3). A CTU counts pressed parts (one per
	// rising edge of the part sensor) and raises the batch-done lamp
	// (%Q0.1) after 100 parts; the jam detector resets the batch.
	pressLogic := &plc.ILProgram{Name: "press", Insns: []plc.ILInsn{
		plc.LD(plc.I(0, 2)), plc.ANDN(plc.I(0, 3)), plc.ST(plc.Q(0, 0)),
		plc.LD(plc.I(0, 2)), plc.CTU(0, 100), plc.ST(plc.Q(0, 1)),
		plc.LD(plc.I(0, 3)), plc.CTUR(0),
	}}

	// Physical processes: each device's sensors reflect its actuators
	// and the upstream cell's state, coupled through package-level
	// variables (the simulated plant floor).
	var partAtPress, jam bool
	feederProcess := func(_ sim.Time, out, in []byte) {
		// Sensors: start button held, no stop. Actuator out[0] bit1 is
		// "part ready": it moves a part to the press.
		in[0] = 0b001
		partAtPress = out[0]&0b10 != 0
	}
	pressProcess := func(_ sim.Time, out, in []byte) {
		in[0] = 0
		if partAtPress {
			in[0] |= 0b100 // %I0.2 part present
		}
		if jam {
			in[0] |= 0b1000 // %I0.3 jam detector
		}
	}

	feeder := core.DefaultCell("feeder")
	feeder.Logic = feederLogic
	feeder.Process = feederProcess
	press := core.DefaultCell("press")
	press.Logic = pressLogic
	press.Process = pressProcess
	inspect := core.DefaultCell("inspection")

	factory := core.NewFactory(core.FactoryConfig{
		Seed:  7,
		Cells: []core.CellConfig{feeder, press, inspect},
	})
	factory.Start(0)

	status := func(label string) {
		pressOut := factory.Cells[1].Device.Outputs()
		running := len(pressOut) > 0 && pressOut[0]&1 != 0
		fmt.Printf("%-22s press-running=%-5v states:", label, running)
		for _, h := range factory.Health() {
			fmt.Printf(" %s=%v", h.Cell, h.DeviceState)
		}
		fmt.Println()
	}

	factory.RunFor(500 * time.Millisecond)
	status("steady state")

	// Inject a jam: the press must stop within one IO cycle + scan.
	jam = true
	factory.RunFor(50 * time.Millisecond)
	status("jam injected")

	jam = false
	factory.RunFor(50 * time.Millisecond)
	status("jam cleared")

	// The inspection cell's controller dies: only that cell failsafes,
	// the rest of the line keeps producing (fault containment, §2.2).
	factory.Cells[2].Primary.Fail()
	factory.RunFor(100 * time.Millisecond)
	status("inspection vPLC dead")

	for _, h := range factory.Health() {
		fmt.Printf("cell %-11s scans=%-6d failsafes=%d\n",
			h.Cell, scanCount(factory, h.Cell), h.FailsafeEvents)
	}
}

func scanCount(f *core.Factory, name string) uint64 {
	for _, c := range f.Cells {
		if c.Config.Name == name {
			return c.Primary.ScanCount
		}
	}
	return 0
}
