// Benchmarks regenerating every figure and requirement table of the
// paper, one per artifact:
//
//	BenchmarkFigure1TermMining           Fig. 1  research-gap bar counts
//	BenchmarkFigure4DelayCDF             Fig. 4L delay CDF of 6 eBPF variants
//	BenchmarkFigure4JitterCDF            Fig. 4R jitter CDF, 1 vs 25 flows
//	BenchmarkFigure5Switchover           Fig. 5  InstaPLC failover series
//	BenchmarkFigure6TopologyLatency      Fig. 6  topology latency sweep
//	BenchmarkSection21TimingRequirements §2.1    stack vs timing table
//	BenchmarkSection22Availability       §2.2    availability in nines
//	BenchmarkSection23TrafficMix         §2.3    traffic-mix taxonomy
//
// plus the DESIGN.md ablations (shaper none/CBS/TAS, watchdog
// threshold, PREEMPT_RT, optimizer halves) and the §2.1 scaling study
// (BenchmarkScalingVPLCsPerHost). Each benchmark prints its table once
// per run and reports headline values as custom metrics, so
// `go test -bench=. -benchmem` regenerates the whole evaluation.
package steelnet_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"steelnet/internal/core"
	"steelnet/internal/host"
	"steelnet/internal/instaplc"
	"steelnet/internal/mltopo"
	"steelnet/internal/mlwork"
	"steelnet/internal/placement"
	"steelnet/internal/reflection"
	"steelnet/internal/trafficgen"
)

// printOnce prints each figure table a single time per test-binary run,
// however many benchmark iterations happen.
var printOnce sync.Map

func printTable(key, table string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println()
		fmt.Print(table)
	}
}

func BenchmarkFigure1TermMining(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		table, counts := core.Figure1(1)
		printTable("fig1", table)
		by := map[string]int{}
		for _, c := range counts {
			by[c.Label] = c.Occurrences
		}
		gap = float64(by["Datacenter"]) / float64(maxi(by["MQTT/OPC UA/VXLAN"], 1))
	}
	b.ReportMetric(gap, "gap-ratio")
}

func benchReflectionConfig() reflection.Config {
	cfg := reflection.DefaultConfig()
	cfg.Cycles = 800
	return cfg
}

func BenchmarkFigure4DelayCDF(b *testing.B) {
	var ringShift float64
	for i := 0; i < b.N; i++ {
		table, results := core.Figure4Delay(benchReflectionConfig())
		printTable("fig4l", table)
		by := map[string]float64{}
		for _, r := range results {
			by[r.Variant] = r.Delays.Median()
		}
		ringShift = by[reflection.VariantTSRB] - by[reflection.VariantBase]
	}
	b.ReportMetric(ringShift, "ringbuf-shift-µs")
}

func BenchmarkFigure4JitterCDF(b *testing.B) {
	var widening float64
	for i := 0; i < b.N; i++ {
		table, results := core.Figure4Jitter(benchReflectionConfig())
		printTable("fig4r", table)
		widening = results[1].Jitter.P99() / maxf(results[0].Jitter.P99(), 1)
	}
	b.ReportMetric(widening, "25flow-jitter-x")
}

func BenchmarkFigure5Switchover(b *testing.B) {
	var gapMS float64
	var failsafes float64
	for i := 0; i < b.N; i++ {
		table, res := core.Figure5(instaplc.DefaultExperimentConfig())
		printTable("fig5", table)
		gapMS = res.SwitchoverAt.Sub(res.FailAt).Seconds() * 1e3
		failsafes = float64(res.FailsafeEvents)
	}
	b.ReportMetric(gapMS, "switchover-ms")
	b.ReportMetric(failsafes, "failsafe-events")
}

func BenchmarkFigure6TopologyLatency(b *testing.B) {
	cfg := mltopo.Figure6Config{Seed: 1, ClientCounts: []int{32, 64, 128, 256}, Horizon: time.Second}
	var ringAt256, mlaAt256 float64
	for i := 0; i < b.N; i++ {
		table, results := core.Figure6(cfg)
		printTable("fig6", table)
		if r, ok := mltopo.Cell(results, mlwork.ObjectIdentification.Name, mltopo.Ring, 256); ok {
			ringAt256 = r.MeanLatencyMS
		}
		if r, ok := mltopo.Cell(results, mlwork.ObjectIdentification.Name, mltopo.MLAware, 256); ok {
			mlaAt256 = r.MeanLatencyMS
		}
	}
	b.ReportMetric(ringAt256, "ring@256-ms")
	b.ReportMetric(mlaAt256, "mlaware@256-ms")
}

func BenchmarkSection21TimingRequirements(b *testing.B) {
	var worstJitterUS float64
	for i := 0; i < b.N; i++ {
		results := core.Section21TimingCheck(host.PreemptRT, 1, 20000)
		printTable("s21", core.RenderTimingCheck(results))
		worstJitterUS = results[0].MeasuredWorstJitterNS / 1e3
	}
	b.ReportMetric(worstJitterUS, "worst-jitter-µs")
}

func BenchmarkSection22Availability(b *testing.B) {
	var instaNines float64
	for i := 0; i < b.N; i++ {
		results := core.RunAvailabilityComparison(core.DefaultAvailabilityConfig())
		printTable("s22", core.RenderAvailability(results))
		for _, r := range results {
			if r.Strategy == core.InstaPLCPair {
				instaNines = r.Report.Nines()
			}
		}
	}
	b.ReportMetric(instaNines, "instaplc-nines")
}

func BenchmarkSection23TrafficMix(b *testing.B) {
	var misclassified float64
	for i := 0; i < b.N; i++ {
		r := core.Section23TrafficMix(1, trafficgen.DefaultMix)
		printTable("s23", core.RenderTrafficMix(r))
		misclassified = float64(r.Misclassified)
	}
	b.ReportMetric(misclassified, "misclassified-vplc-flows")
}

// --- Ablations (DESIGN.md) ---

func BenchmarkAblationTAS(b *testing.B) {
	var tasP99, cbsP99, noneP99 float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultTASAblationConfig()
		tasP99 = core.RunShaperAblation(cfg, core.ShaperTAS).JitterP99NS / 1e3
		cbsP99 = core.RunShaperAblation(cfg, core.ShaperCBS).JitterP99NS / 1e3
		noneP99 = core.RunShaperAblation(cfg, core.ShaperNone).JitterP99NS / 1e3
	}
	b.ReportMetric(tasP99, "tas-p99-jitter-µs")
	b.ReportMetric(cbsP99, "cbs-p99-jitter-µs")
	b.ReportMetric(noneP99, "none-p99-jitter-µs")
}

func BenchmarkAblationWatchdog(b *testing.B) {
	for _, cycles := range []int{1, 3, 10} {
		cycles := cycles
		b.Run(fmt.Sprintf("cycles=%d", cycles), func(b *testing.B) {
			var gapMS, spurious float64
			for i := 0; i < b.N; i++ {
				cfg := instaplc.DefaultExperimentConfig()
				cfg.Horizon = 2 * time.Second
				cfg.InstaWatchdogCycles = cycles
				cfg.DeviceWatchdogFactor = 12 // keep the device out of the way
				res := instaplc.RunExperiment(cfg)
				// A too-tight watchdog (1 cycle) trips on ordinary
				// jitter before the real failure: count those
				// separately instead of reporting a negative gap.
				if res.SwitchoverAt > res.FailAt {
					gapMS = res.SwitchoverAt.Sub(res.FailAt).Seconds() * 1e3
				} else {
					gapMS = 0
				}
				if res.Switchovers > 1 || (res.SwitchoverAt > 0 && res.SwitchoverAt < res.FailAt) {
					spurious = float64(res.Switchovers)
				}
			}
			b.ReportMetric(gapMS, "switchover-ms")
			b.ReportMetric(spurious, "spurious-failovers")
		})
	}
}

func BenchmarkAblationPreemptRT(b *testing.B) {
	for _, prof := range []host.Profile{host.PreemptRT, host.Standard} {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			var p999 float64
			for i := 0; i < b.N; i++ {
				cfg := benchReflectionConfig()
				cfg.Profile = prof
				res := reflection.Run(cfg, reflection.NewBase())
				p999 = res.Delays.P999()
			}
			b.ReportMetric(p999, "p99.9-delay-µs")
		})
	}
}

func BenchmarkAblationOptimizer(b *testing.B) {
	for _, placementOnly := range []bool{false, true} {
		placementOnly := placementOnly
		name := "placement+dimensioning"
		if placementOnly {
			name = "placement-only"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				sc := mltopo.DefaultScenario(mltopo.MLAware, mlwork.DefectDetection, 128)
				sc.Horizon = time.Second
				// Constrain compute to half the pods so cross-pod
				// traffic exists and dimensioning has something to do.
				sc.ClientsPerServer = 32
				sc.PlacementOnly = placementOnly
				mean = mltopo.Run(sc).MeanLatencyMS
			}
			b.ReportMetric(mean, "mean-latency-ms")
		})
	}
}

func BenchmarkScalingVPLCsPerHost(b *testing.B) {
	// The §2.1 scaling study: p99 cycle jitter as vPLCs consolidate.
	var j1, j16, j64 float64
	for i := 0; i < b.N; i++ {
		curve := placement.ScalingCurve(host.PreemptRT, []int{1, 16, 64}, 1)
		printTable("scaling", placement.RenderScalingCurve(host.PreemptRT, curve))
		j1, j16, j64 = curve[1], curve[16], curve[64]
	}
	b.ReportMetric(j1, "1-tenant-p99-ns")
	b.ReportMetric(j16, "16-tenant-p99-ns")
	b.ReportMetric(j64, "64-tenant-p99-ns")
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
