module steelnet

go 1.24
