#!/usr/bin/env bash
# benchdiff.sh — run the allocation-sensitive micro-benchmarks and emit
# a machine-readable report (BENCH_sim.json) for CI artifact diffing.
#
# Usage: scripts/benchdiff.sh [output.json]
#
# The report is a JSON array of {name, ns_per_op, bytes_per_op,
# allocs_per_op} rows parsed from `go test -bench -benchmem` output.
# The script fails if BenchmarkEngineScheduleAndRun or
# BenchmarkSwitchForwarding report any steady-state allocations: the
# pooled-event arena and the telemetry layer's zero-overhead contract
# are both 0 allocs/op with tracing disabled, and a regression there
# silently re-introduces GC churn into every figure sweep. The
# INT-enabled path (BenchmarkSwitchForwardingINT) has its own budget,
# asserted separately: 2 allocs/op (the stack header and its hop
# slice), so in-band telemetry stays cheap without pretending to be
# free.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_sim.json}"

raw=$(go test -run '^$' -bench \
  'BenchmarkEngineScheduleAndRun|BenchmarkTickerChain|BenchmarkPriorityQueue|BenchmarkSwitchForwarding' \
  -benchmem -benchtime 10000x ./internal/sim ./internal/simnet)
echo "$raw"

echo "$raw" | awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = $3; bytes = $5; allocs = $7
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
}
END { print "\n]" }
' >"$out"
echo "wrote $out"

if echo "$raw" | awk '/^BenchmarkEngineScheduleAndRun/ { exit ($7 != 0) ? 0 : 1 }'; then
    echo "FAIL: BenchmarkEngineScheduleAndRun allocates in steady state" >&2
    exit 1
fi

# The disabled-path pattern must not also match the INT variant: the
# name is followed by either the -GOMAXPROCS suffix or whitespace.
if echo "$raw" | awk '/^BenchmarkSwitchForwarding(-[0-9]+)?[[:space:]]/ { exit ($7 != 0) ? 0 : 1 }'; then
    echo "FAIL: BenchmarkSwitchForwarding allocates in steady state (telemetry disabled must be 0 allocs/op)" >&2
    exit 1
fi

if echo "$raw" | awk '/^BenchmarkSwitchForwardingINT/ { exit ($7 > 2) ? 0 : 1 }'; then
    echo "FAIL: BenchmarkSwitchForwardingINT exceeds its 2 allocs/op budget (INT stack + hop slice)" >&2
    exit 1
fi
