#!/usr/bin/env bash
# benchdiff.sh — run the allocation-sensitive micro-benchmarks, emit a
# machine-readable report, and diff it against the committed baseline
# (BENCH_10.json) with a per-benchmark delta table.
#
# Usage: scripts/benchdiff.sh [output.json] [--baseline FILE] [--check PCT]
#
#   output.json      where to write the fresh report (default BENCH_sim.json)
#   --baseline FILE  committed baseline to diff against (default BENCH_10.json)
#   --check PCT      fail when any benchmark's ns/op regresses more than
#                    PCT percent against the baseline (CI passes 10)
#
# The report is a JSON array of {name, ns_per_op, bytes_per_op,
# allocs_per_op} rows parsed from `go test -bench -benchmem` output.
#
# Allocation guards (always enforced, independent of --check):
#   BenchmarkEngineScheduleAndRun   0 allocs/op  (pooled event arena)
#   BenchmarkEngineBatchDrain       0 allocs/op  (batched dequeue reuses
#                                                 its staging buffer)
#   BenchmarkSwitchForwarding       0 allocs/op  (telemetry disabled)
#   BenchmarkSwitchForwardingINT    0 allocs/op  (pooled INT stacks: the
#                                                 source Gets from and the
#                                                 sink Puts to one free list)
#   BenchmarkVMReflectorProgram     0 allocs/op  (compiled program reuses
#                                                 its scratch context)
#   BenchmarkEngineShardedLocalSteady
#                                   0 allocs/op  (per-shard arenas: window
#                                                 barriers run GC-free)
#   BenchmarkEngineShardedCross     0 allocs/op  (outbox xmsg slots and the
#                                                 barrier merge buffer are
#                                                 reused across windows;
#                                                 with the shard profiler
#                                                 disabled the coordinator
#                                                 adds one pointer test per
#                                                 window, nothing per event)
#   BenchmarkHubPublish/subs=*      0 allocs/op  (steelnetd fan-out hub: one
#                                                 non-blocking channel send
#                                                 per subscriber, the Frame
#                                                 passed by value and the
#                                                 payload bytes shared)
#   BenchmarkAppendTagsPayload      0 allocs/op  (frame assembly appends
#                                                 into a reused buffer)
#   BenchmarkHistoryAppend          0 allocs/op  (tshist ring writes: the
#                                                 safe-point publish path
#                                                 records history GC-free)
#   BenchmarkJournalAppend          0 allocs/op  (lifecycle records append
#                                                 into the per-run buffer;
#                                                 growth amortizes to zero)
#   BenchmarkJournaledPublish       0 allocs/op  (the whole observable
#                                                 slice: history + journal
#                                                 + 1024-subscriber fan-out)
# A regression on any of these silently re-introduces GC churn into
# every figure sweep.
#
# BenchmarkGatewayFanout (M=8 sims × N=1000 subscribers through one hub)
# is the ISSUE 9 macro number: whole fleets per iteration, so its
# allocs/op is scheduling-dependent and carries no exact guard — the
# baseline diff allows it the slack described below.
#
# The BenchmarkCampus10kShards{1,2,4,8} rows are macro numbers (a
# 10k-switch campus built and run end to end at each shard worker
# count); they carry no alloc guard and their cross-shard-count ratios
# are only meaningful on a multi-core machine — the committed baseline
# was measured single-core (GOMAXPROCS=1), where the shard workers
# time-slice one CPU and the ladder mostly measures coordinator
# overhead. Re-record on multi-core hardware before quoting a speedup.
set -euo pipefail

cd "$(dirname "$0")/.."

out="BENCH_sim.json"
baseline="BENCH_10.json"
check_pct=""
while [ $# -gt 0 ]; do
    case "$1" in
    --baseline)
        baseline="$2"
        shift 2
        ;;
    --check)
        check_pct="$2"
        shift 2
        ;;
    *)
        out="$1"
        shift
        ;;
    esac
done

# Time-based samples (50ms each) and -count 7: iteration-count samples
# of nanosecond-scale ops are ±20-30% noisy on shared runners. The
# report keeps each benchmark's median ns/op — robust against both the
# occasional descheduled sample and the occasional lucky one — and the
# worst-case allocs/op so alloc guards can never pass on a lucky sample.
raw=$(go test -run '^$' -bench \
  'BenchmarkEngineScheduleAndRun|BenchmarkEngineBatchDrain|BenchmarkTickerChain|BenchmarkPriorityQueue|BenchmarkSwitchForwarding|BenchmarkVMReflectorProgram|BenchmarkEngineSharded|BenchmarkCampus10k|BenchmarkGatewayFanout|BenchmarkHubPublish|BenchmarkAppendTagsPayload|BenchmarkHistoryAppend|BenchmarkHistoryQuery|BenchmarkJournalAppend|BenchmarkJournaledPublish' \
  -benchmem -benchtime 50ms -count 7 ./internal/sim ./internal/simnet ./internal/ebpf ./internal/core ./internal/steelnetd ./internal/tshist)
echo "$raw"

# Columns are found by their unit suffix, not position: benchmarks that
# b.ReportMetric extra columns (msg/s, p50-ns) would otherwise shift
# B/op and allocs/op out of the fixed fields.
echo "$raw" | awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = 0; bytes = 0; allocs = 0
    for (f = 2; f <= NF; f++) {
        if ($f == "ns/op") ns = $(f - 1) + 0
        else if ($f == "B/op") bytes = $(f - 1) + 0
        else if ($f == "allocs/op") allocs = $(f - 1) + 0
    }
    cnt[name]++
    samples[name, cnt[name]] = ns
    if (bytes > maxB[name]) maxB[name] = bytes
    if (allocs > maxA[name]) maxA[name] = allocs
    if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
}
END {
    print "["
    for (i = 0; i < n; i++) {
        name = order[i]
        m = cnt[name]
        for (a = 1; a <= m; a++) v[a] = samples[name, a]
        for (a = 2; a <= m; a++) { # insertion sort: m is tiny
            x = v[a]
            for (b = a - 1; b >= 1 && v[b] > x; b--) v[b + 1] = v[b]
            v[b + 1] = x
        }
        med = (m % 2) ? v[(m + 1) / 2] : (v[m / 2] + v[m / 2 + 1]) / 2
        printf "  {\"name\": \"%s\", \"ns_per_op\": %g, \"bytes_per_op\": %d, \"allocs_per_op\": %d}%s\n",
            name, med, maxB[name], maxA[name], (i < n - 1) ? "," : ""
    }
    print "]"
}
' >"$out"
echo "wrote $out"

# --- Allocation guards (on the fresh numbers) -------------------------

guard_allocs() { # name budget message
    # The name must be followed by the -GOMAXPROCS suffix or whitespace,
    # so e.g. SwitchForwarding never also matches SwitchForwardingINT.
    # Every -count sample must satisfy the budget. A guard whose
    # benchmark no longer appears in the run is a hard failure, not a
    # silent pass: a renamed or deleted benchmark would otherwise retire
    # its own alloc guard without anyone noticing.
    local rc=0
    echo "$raw" | awk -v b="$2" \
        "/^$1(-[0-9]+)?[[:space:]]/ { seen = 1; if (\$7 > b) bad = 1 } END { if (!seen) exit 2; exit bad ? 1 : 0 }" || rc=$?
    case "$rc" in
    0) ;;
    2)
        echo "FAIL: $1 not found in the benchmark run; its $2 allocs/op guard protects nothing (renamed? update this script)" >&2
        exit 1
        ;;
    *)
        echo "FAIL: $1 exceeds its $2 allocs/op budget ($3)" >&2
        exit 1
        ;;
    esac
}

guard_allocs BenchmarkEngineScheduleAndRun 0 "pooled event arena must stay allocation-free"
guard_allocs BenchmarkEngineBatchDrain 0 "batched dequeue must reuse its staging buffer"
guard_allocs BenchmarkSwitchForwarding 0 "telemetry disabled must be 0 allocs/op"
guard_allocs BenchmarkSwitchForwardingINT 0 "pooled INT stacks must recycle, not allocate"
guard_allocs BenchmarkVMReflectorProgram 0 "compiled eBPF must reuse its scratch context"
guard_allocs BenchmarkEngineShardedLocalSteady 0 "sharded window barriers must run arena- and GC-free"
guard_allocs BenchmarkEngineShardedCross 0 "cross-shard outboxes and the barrier merge must recycle, not allocate"
guard_allocs 'BenchmarkHubPublish\/subs=1' 0 "hub publish must be one channel send, no per-frame allocation"
guard_allocs 'BenchmarkHubPublish\/subs=64' 0 "hub fan-out must not allocate per subscriber"
guard_allocs 'BenchmarkHubPublish\/subs=1024' 0 "hub fan-out must stay allocation-free at SSE-fleet scale"
guard_allocs BenchmarkAppendTagsPayload 0 "tag-frame assembly must append into its reused buffer"
guard_allocs BenchmarkHistoryAppend 0 "history recording on the publish path must not allocate"
guard_allocs BenchmarkJournalAppend 0 "journal records must amortize into the per-run buffer"
guard_allocs BenchmarkJournaledPublish 0 "the observable slice (history + journal + fan-out) must stay GC-free"

# --- Baseline diff ----------------------------------------------------

if [ ! -f "$baseline" ]; then
    echo "no baseline at $baseline; skipping delta table"
    exit 0
fi

# Compare new vs baseline per benchmark. Output columns:
#   name  base-ns  new-ns  delta%  base-allocs  new-allocs
# With CHECK non-empty, exit nonzero when any ns/op delta exceeds it or
# any benchmark allocates more than its baseline did.
if ! python3 - "$baseline" "$out" "${check_pct:-}" <<'EOF'
import json, sys

baseline_path, fresh_path, check = sys.argv[1], sys.argv[2], sys.argv[3]
base = {r["name"]: r for r in json.load(open(baseline_path))}
new = {r["name"]: r for r in json.load(open(fresh_path))}

rows, failures = [], []
for name, nr in new.items():
    br = base.get(name)
    if br is None:
        rows.append((name, "-", f'{nr["ns_per_op"]:.1f}', "new", "-", str(nr["allocs_per_op"])))
        continue
    delta = (nr["ns_per_op"] - br["ns_per_op"]) / br["ns_per_op"] * 100
    rows.append((name, f'{br["ns_per_op"]:.1f}', f'{nr["ns_per_op"]:.1f}',
                 f"{delta:+.1f}%", str(br["allocs_per_op"]), str(nr["allocs_per_op"])))
    if check:
        if delta > float(check):
            failures.append(f"{name}: ns/op regressed {delta:+.1f}% (> {check}%)")
        # Alloc budget: tiny slack (max of +10% and +4 absolute) so macro
        # benchmarks whose counts wobble with goroutine scheduling (the
        # gateway fan-out runs whole fleets per iteration) do not flap,
        # while the zero-alloc micro set is still pinned exactly by the
        # guard_allocs checks above.
        if nr["allocs_per_op"] > max(br["allocs_per_op"] * 1.10, br["allocs_per_op"] + 4):
            failures.append(f'{name}: allocs/op grew {br["allocs_per_op"]} -> {nr["allocs_per_op"]}')
# A baseline benchmark missing from the fresh run fails even without
# --check: it usually means a rename silently dropped the benchmark from
# the bench regex, and every delta below it would be comparing nothing.
missing = [name for name in base if name not in new]
for name in missing:
    print(f"FAIL: {name}: in baseline {baseline_path} but missing from the fresh run "
          "(renamed or deleted? fix the bench regex or re-record the baseline)", file=sys.stderr)

hdr = ("benchmark", "base ns/op", "new ns/op", "delta", "base allocs", "new allocs")
widths = [max(len(r[i]) for r in rows + [hdr]) for i in range(6)]
fmt = "  ".join(f"{{:<{w}}}" for w in widths)
print()
print(fmt.format(*hdr))
print(fmt.format(*("-" * w for w in widths)))
for r in sorted(rows):
    print(fmt.format(*r))

if failures:
    print()
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
if failures or missing:
    sys.exit(1)
EOF
then
    echo "benchdiff: regression against $baseline" >&2
    exit 1
fi
