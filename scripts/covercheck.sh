#!/usr/bin/env bash
# covercheck.sh — fail CI when total statement coverage drops below the
# committed floor. The floor is exactly that, not a target: raise it
# when a PR meaningfully improves coverage, never lower it to make a
# red build green.
#
# Coverage is measured with -coverpkg across internal/ and cmd/, so a
# statement counts as covered no matter which package's tests reach it
# (the checkpoint codecs, for example, are driven mostly by
# internal/checkpoint's differential-replay tests and the cmd smoke
# tests). Every package is included — new packages are not exempt.
#
# scripts/coverage_baseline.txt holds the enforced total floor plus
# per-package reference points; on failure the script prints a
# per-package delta table against those references so the regression
# is attributable without re-running anything.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/coverage_baseline.txt
floor=$(awk '$1 == "total" {print $2}' "$baseline")
if [ -z "$floor" ]; then
    echo "FAIL: no 'total' floor in $baseline" >&2
    exit 1
fi

go test -count=1 -coverpkg=./internal/...,./cmd/... -coverprofile=coverage.out ./... >/dev/null

# Aggregate the profile per package. Blocks appear once per test
# package that instruments them, so dedupe by position and call a
# block covered when any run hit it.
current=$(awk 'NR>1 {
    pos = $1; stmts = $2; cnt = $3
    if (!(pos in S)) S[pos] = stmts
    if (cnt > 0) H[pos] = 1
}
END {
    for (k in S) {
        file = k; sub(/:.*/, "", file)
        pkg = file; sub(/\/[^\/]*$/, "", pkg)
        tot[pkg] += S[k]; T += S[k]
        if (k in H) { cov[pkg] += S[k]; C += S[k] }
    }
    for (p in tot) printf "%s %.1f\n", p, 100 * cov[p] / tot[p]
    printf "total %.1f\n", 100 * C / T
}' coverage.out)
rm -f coverage.out

total=$(echo "$current" | awk '$1 == "total" {print $2}')
echo "total coverage: ${total}% (floor: ${floor}%)"

if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t + 0 < f + 0) }'; then
    echo "FAIL: coverage ${total}% fell below the ${floor}% floor" >&2
    echo >&2
    echo "per-package delta against $baseline:" >&2
    printf '%-42s %9s %9s %8s\n' "package" "baseline" "current" "delta" >&2
    echo "$current" | sort | while read -r pkg pct; do
        [ "$pkg" = total ] && continue
        base=$(awk -v p="$pkg" '$1 == p {print $2}' "$baseline")
        if [ -z "$base" ]; then
            printf '%-42s %9s %8.1f%% %8s\n' "$pkg" "(new)" "$pct" "-" >&2
        else
            printf '%-42s %8.1f%% %8.1f%% %+7.1f%%\n' "$pkg" "$base" "$pct" \
                "$(awk -v a="$pct" -v b="$base" 'BEGIN {printf "%.1f", a - b}')" >&2
        fi
    done
    exit 1
fi
exit 0
