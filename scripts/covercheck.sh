#!/usr/bin/env bash
# covercheck.sh — fail CI when total statement coverage drops below the
# committed baseline. The baseline is a floor, not a target: raise it
# when a PR meaningfully improves coverage, never lower it to make a
# red build green.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=$(cat scripts/coverage_baseline.txt)
go test -count=1 -coverprofile=coverage.out ./... >/dev/null
total=$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
rm -f coverage.out

echo "total coverage: ${total}% (baseline: ${baseline}%)"
awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t+0 < b+0) }' && {
    echo "FAIL: coverage ${total}% fell below the ${baseline}% baseline" >&2
    exit 1
}
exit 0
