// Package host models the end-host path the paper blames for broken OT
// timing (§2.1): NIC processing, the PCIe crossing whose per-packet toll
// dominates small-frame latency (>90% of NIC latency per [9,77]), the
// kernel path (standard vs PREEMPT_RT scheduling noise), and host-level
// contention that grows with the number of co-resident flows (§2.1,
// Fig. 4 right). The reflection harness and the vPLC runtime both sample
// their per-packet and per-cycle delays from this model.
package host

import (
	"fmt"

	"steelnet/internal/sim"
)

// Profile parameterizes one host software/hardware stack.
type Profile struct {
	Name string

	// PCIeBase is the fixed cost of one PCIe crossing; PCIePerByteNs adds
	// the payload-size-dependent part. Small industrial frames pay
	// almost the whole base cost per packet, which is the paper's point.
	PCIeBase      sim.Duration
	PCIePerByteNs float64

	// NICBase is MAC/DMA processing per packet.
	NICBase sim.Duration

	// KernelBase is the fixed driver+softirq cost up to the XDP hook.
	KernelBase sim.Duration

	// SchedJitterSD is the standard deviation of scheduling noise added
	// to every crossing.
	SchedJitterSD sim.Duration

	// SpikeProb is the per-packet probability of a kernel-induced latency
	// spike (IRQ storms, timer ticks, memory stalls); SpikeScale is the
	// Pareto minimum of the spike size. PREEMPT_RT reduces both but — as
	// §2.1 stresses — does not eliminate them.
	SpikeProb  float64
	SpikeScale sim.Duration

	// ContentionPerFlowSD is extra jitter standard deviation added per
	// additional co-resident flow sharing the host (NIC RSS, NUMA and
	// cache contention per [22,107]).
	ContentionPerFlowSD sim.Duration
}

// PreemptRT is a tuned PREEMPT_RT host: tight scheduling noise, rare and
// small spikes. Values are calibrated so a reflection experiment
// reproduces Fig. 4's bands: ~10-20 µs one-way XDP delay and sub-µs
// jitter for one flow.
var PreemptRT = Profile{
	Name:          "preempt-rt",
	PCIeBase:      900 * sim.Nanosecond,
	PCIePerByteNs: 0.8,
	NICBase:       500 * sim.Nanosecond,
	KernelBase:    2500 * sim.Nanosecond,
	SchedJitterSD: 25 * sim.Nanosecond,
	SpikeProb:     0.0008,
	SpikeScale:    300 * sim.Nanosecond,

	ContentionPerFlowSD: 7 * sim.Nanosecond,
}

// Standard is a stock low-latency-tuned kernel without PREEMPT_RT:
// same base path, noticeably noisier tail.
var Standard = Profile{
	Name:          "standard",
	PCIeBase:      900 * sim.Nanosecond,
	PCIePerByteNs: 0.8,
	NICBase:       500 * sim.Nanosecond,
	KernelBase:    2500 * sim.Nanosecond,
	SchedJitterSD: 120 * sim.Nanosecond,
	SpikeProb:     0.02,
	SpikeScale:    2 * sim.Microsecond,

	ContentionPerFlowSD: 18 * sim.Nanosecond,
}

// Stack is a live host stack: a profile plus dynamic contention state.
type Stack struct {
	Profile Profile
	rng     *sim.RNG
	flows   int
}

// NewStack builds a stack drawing noise from rng.
func NewStack(p Profile, rng *sim.RNG) *Stack {
	if rng == nil {
		panic("host: nil RNG")
	}
	return &Stack{Profile: p, rng: rng, flows: 1}
}

// SetActiveFlows sets the number of concurrent flows sharing the host.
// Fewer than 1 is clamped to 1.
func (s *Stack) SetActiveFlows(n int) {
	if n < 1 {
		n = 1
	}
	s.flows = n
}

// ActiveFlows returns the current contention level.
func (s *Stack) ActiveFlows() int { return s.flows }

// jitter draws one sample of scheduling + contention noise (>= 0).
func (s *Stack) jitter() sim.Duration {
	sd := float64(s.Profile.SchedJitterSD) + float64(s.Profile.ContentionPerFlowSD)*float64(s.flows-1)
	j := s.rng.Norm(0, sd)
	if j < 0 {
		j = -j
	}
	d := sim.Duration(j)
	if s.Profile.SpikeProb > 0 && s.rng.Bool(s.Profile.SpikeProb) {
		d += sim.Duration(s.rng.Pareto(float64(s.Profile.SpikeScale), 2.0))
	}
	return d
}

// RxToXDP samples the delay from wire arrival to the XDP hook for a
// packet of size bytes: NIC + PCIe + driver path + noise.
func (s *Stack) RxToXDP(size int) sim.Duration {
	return s.Profile.NICBase +
		s.pcie(size) +
		s.Profile.KernelBase/2 + // XDP runs early in the driver path
		s.jitter()
}

// XDPToWire samples the delay from an XDP_TX verdict back to the wire:
// the reflected packet re-crosses PCIe and the NIC.
func (s *Stack) XDPToWire(size int) sim.Duration {
	return s.pcie(size) + s.Profile.NICBase + s.jitter()
}

// FullKernelRx samples the delay from wire to a userspace socket — the
// path a vPLC without XDP acceleration pays on every cycle.
func (s *Stack) FullKernelRx(size int) sim.Duration {
	return s.Profile.NICBase + s.pcie(size) + s.Profile.KernelBase + s.jitter() + s.jitter()
}

// FullKernelTx samples the userspace-to-wire delay.
func (s *Stack) FullKernelTx(size int) sim.Duration {
	return s.Profile.KernelBase + s.pcie(size) + s.Profile.NICBase + s.jitter() + s.jitter()
}

// SchedulingNoise samples one wakeup-latency deviation for a periodic
// task (a vPLC scan cycle wakeup).
func (s *Stack) SchedulingNoise() sim.Duration { return s.jitter() }

func (s *Stack) pcie(size int) sim.Duration {
	if size < 0 {
		size = 0
	}
	return s.Profile.PCIeBase + sim.Duration(float64(size)*s.Profile.PCIePerByteNs)
}

// String identifies the stack.
func (s *Stack) String() string {
	return fmt.Sprintf("host.Stack{%s, flows=%d}", s.Profile.Name, s.flows)
}
