package host

import (
	"strings"
	"testing"

	"steelnet/internal/metrics"
	"steelnet/internal/sim"
)

func stack(p Profile, seed uint64) *Stack {
	return NewStack(p, sim.NewEngine(seed).RNG("host"))
}

func sample(s *Stack, n int, f func() sim.Duration) *metrics.Series {
	out := metrics.NewSeries(n)
	for i := 0; i < n; i++ {
		out.AddDuration(f())
	}
	return out
}

func TestNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil RNG accepted")
		}
	}()
	NewStack(PreemptRT, nil)
}

func TestRxDelayPositiveAndBounded(t *testing.T) {
	s := stack(PreemptRT, 1)
	ser := sample(s, 20000, func() sim.Duration { return s.RxToXDP(64) })
	if ser.Min() <= 0 {
		t.Fatal("non-positive rx delay")
	}
	// Base path ≈ 0.5+0.9+0.05(pcie/byte)+1.25 ≈ 2.7µs; must sit in the
	// low-µs range that makes round trips land in Fig. 4's 10-20µs band.
	if m := ser.Mean(); m < 2000 || m > 5000 {
		t.Fatalf("mean rx = %vns, want 2-5µs", m)
	}
}

func TestSmallPacketsPayAlmostFullPCIeToll(t *testing.T) {
	s := stack(PreemptRT, 1)
	small := sample(s, 5000, func() sim.Duration { return s.RxToXDP(64) })
	big := sample(s, 5000, func() sim.Duration { return s.RxToXDP(1500) })
	// The per-byte part for 1500B is ~1.2µs; the fixed part dominates for
	// small frames: per-byte cost of the small frame is < 5% of its total.
	perByteSmall := 64 * s.Profile.PCIePerByteNs
	if perByteSmall/small.Mean() > 0.05 {
		t.Fatalf("small-frame variable share = %.3f", perByteSmall/small.Mean())
	}
	if big.Mean() <= small.Mean() {
		t.Fatal("size-dependence missing")
	}
}

func TestStandardKernelNoisierThanPreemptRT(t *testing.T) {
	rt := stack(PreemptRT, 2)
	std := stack(Standard, 2)
	jrt := metrics.Jitter(sample(rt, 30000, func() sim.Duration { return rt.RxToXDP(64) }))
	jstd := metrics.Jitter(sample(std, 30000, func() sim.Duration { return std.RxToXDP(64) }))
	if jstd.P99() <= jrt.P99() {
		t.Fatalf("standard p99 jitter %v <= RT %v", jstd.P99(), jrt.P99())
	}
	if jstd.Quantile(0.999) <= jrt.Quantile(0.999) {
		t.Fatal("standard tail not heavier")
	}
}

func TestContentionWidensJitter(t *testing.T) {
	one := stack(PreemptRT, 3)
	many := stack(PreemptRT, 3)
	many.SetActiveFlows(25)
	j1 := metrics.Jitter(sample(one, 30000, func() sim.Duration { return one.RxToXDP(64) }))
	j25 := metrics.Jitter(sample(many, 30000, func() sim.Duration { return many.RxToXDP(64) }))
	if j25.P99() <= j1.P99() {
		t.Fatalf("25-flow p99 jitter %v <= 1-flow %v", j25.P99(), j1.P99())
	}
}

func TestActiveFlowsClamped(t *testing.T) {
	s := stack(PreemptRT, 4)
	s.SetActiveFlows(0)
	if s.ActiveFlows() != 1 {
		t.Fatalf("flows = %d", s.ActiveFlows())
	}
	s.SetActiveFlows(-5)
	if s.ActiveFlows() != 1 {
		t.Fatalf("flows = %d", s.ActiveFlows())
	}
}

func TestFullKernelSlowerThanXDP(t *testing.T) {
	s := stack(PreemptRT, 5)
	xdp := sample(s, 10000, func() sim.Duration { return s.RxToXDP(64) })
	full := sample(s, 10000, func() sim.Duration { return s.FullKernelRx(64) })
	if full.Mean() <= xdp.Mean() {
		t.Fatal("full kernel path not slower than XDP hook path")
	}
}

func TestSchedulingNoiseNonNegative(t *testing.T) {
	s := stack(Standard, 6)
	for i := 0; i < 10000; i++ {
		if s.SchedulingNoise() < 0 {
			t.Fatal("negative scheduling noise")
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := stack(PreemptRT, 7)
	b := stack(PreemptRT, 7)
	for i := 0; i < 1000; i++ {
		if a.RxToXDP(64) != b.RxToXDP(64) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestNegativeSizeTreatedAsZero(t *testing.T) {
	s := stack(PreemptRT, 8)
	if d := s.XDPToWire(-10); d <= 0 {
		t.Fatalf("delay = %v", d)
	}
}

func TestStringContainsProfile(t *testing.T) {
	s := stack(PreemptRT, 9)
	if !strings.Contains(s.String(), "preempt-rt") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestPreemptRTMeetsSub1usJitterAtP99(t *testing.T) {
	// §2.1's requirement: <1 µs jitter. A single-flow PREEMPT_RT stack
	// must achieve it at p99 (though not at the absolute worst case —
	// that is the paper's point about soft real-time).
	s := stack(PreemptRT, 10)
	j := metrics.Jitter(sample(s, 50000, func() sim.Duration { return s.RxToXDP(64) }))
	if p := j.P99(); p >= 1000 {
		t.Fatalf("p99 jitter = %vns, want <1µs", p)
	}
}
