package plc

import (
	"testing"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/iodevice"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// haRig builds primary+standby controllers and a device on one switch,
// plus the redundant-pair coupling.
func haRig(t *testing.T, cfg RedundancyConfig) (*sim.Engine, *RedundantPair, *iodevice.Device) {
	t.Helper()
	e := sim.NewEngine(1)
	p := NewController(e, "plcA", frame.NewMAC(1), ControllerConfig{Primary: true})
	s := NewController(e, "plcB", frame.NewMAC(3), ControllerConfig{})
	dev := iodevice.New(e, "io", frame.NewMAC(2), nil, nil)
	sw := simnet.NewSwitch(e, "sw", 3, simnet.DefaultSwitchConfig)
	simnet.Connect(e, "p", p.Host().Port(), sw.Port(0), 100e6, 0)
	simnet.Connect(e, "s", s.Host().Port(), sw.Port(1), 100e6, 0)
	simnet.Connect(e, "d", dev.Host().Port(), sw.Port(2), 100e6, 0)
	cfg.Specs = []ConnectSpec{{
		Device: frame.NewMAC(2),
		Req:    connReq(7, 1600, 3, 4, 4),
	}}
	pair := NewRedundantPair(e, p, s, cfg)
	return e, pair, dev
}

func TestPairRunsWithoutPromotionWhenHealthy(t *testing.T) {
	e, pair, dev := haRig(t, DefaultRedundancyConfig)
	pair.Start()
	e.RunUntil(sim.Time(time.Second))
	if promoted, _ := pair.Promoted(); promoted {
		t.Fatal("standby promoted with healthy primary")
	}
	if dev.FailsafeEvents != 0 {
		t.Fatal("device tripped with healthy primary")
	}
	if pair.HeartbeatsSeen < 90 {
		t.Fatalf("heartbeats seen = %d", pair.HeartbeatsSeen)
	}
	pair.Stop()
}

func TestStandbyPromotesOnPrimaryFailure(t *testing.T) {
	cfg := DefaultRedundancyConfig
	e, pair, dev := haRig(t, cfg)
	pair.Start()
	e.RunUntil(sim.Time(500 * time.Millisecond))
	failAt := e.Now()
	pair.Primary.Fail()
	e.RunUntil(sim.Time(2 * time.Second))
	promoted, at := pair.Promoted()
	if !promoted {
		t.Fatal("standby never promoted")
	}
	// Promotion completes after miss window (30 ms) + switchover (150 ms).
	gap := at.Sub(failAt)
	if gap < 150*time.Millisecond || gap > 400*time.Millisecond {
		t.Fatalf("promotion took %v, want ≈180ms", gap)
	}
	// The device must be controlled again by the standby.
	if dev.Controller() != pair.Standby.Host().MAC() {
		t.Fatal("device not controlled by standby")
	}
	if dev.State() != iodevice.StateOperate {
		t.Fatalf("device state = %v", dev.State())
	}
}

func TestHardwarePairCausesFailsafeGap(t *testing.T) {
	// The paper's point: the 50-300 ms hardware switchover exceeds the
	// device watchdog (4.8 ms), so a failsafe event is unavoidable —
	// unlike with InstaPLC.
	e, pair, dev := haRig(t, DefaultRedundancyConfig)
	pair.Start()
	e.RunUntil(sim.Time(500 * time.Millisecond))
	pair.Primary.Fail()
	e.RunUntil(sim.Time(2 * time.Second))
	if dev.FailsafeEvents == 0 {
		t.Fatal("hardware switchover avoided failsafe (too fast to be honest)")
	}
	// But operation recovers afterwards.
	if dev.State() != iodevice.StateOperate {
		t.Fatalf("device state = %v", dev.State())
	}
}

func TestPairStopSilencesHeartbeats(t *testing.T) {
	e, pair, _ := haRig(t, DefaultRedundancyConfig)
	pair.Start()
	e.RunUntil(sim.Time(200 * time.Millisecond))
	pair.Stop()
	sent := pair.HeartbeatsSent
	e.RunUntil(sim.Time(400 * time.Millisecond))
	if pair.HeartbeatsSent != sent {
		t.Fatal("heartbeats after Stop")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	e := sim.NewEngine(1)
	p := NewController(e, "a", frame.NewMAC(1), ControllerConfig{})
	s := NewController(e, "b", frame.NewMAC(2), ControllerConfig{})
	pair := NewRedundantPair(e, p, s, RedundancyConfig{})
	if pair.cfg.HeartbeatEvery != DefaultRedundancyConfig.HeartbeatEvery {
		t.Fatal("heartbeat default not applied")
	}
	if pair.cfg.SwitchoverDelay != DefaultRedundancyConfig.SwitchoverDelay {
		t.Fatal("switchover default not applied")
	}
}
