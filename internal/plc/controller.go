package plc

import (
	"fmt"
	"sort"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/host"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// ConnState tracks one communication relationship's lifecycle.
type ConnState int

// Connection states.
const (
	StateConnecting ConnState = iota
	StateRunning
	StatePeerLost
	StateRejected
)

// String names the state.
func (s ConnState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateRunning:
		return "running"
	case StatePeerLost:
		return "peer-lost"
	case StateRejected:
		return "rejected"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ConnectSpec describes one device connection: the CR parameters plus
// where the device's IO maps into the controller's process image.
type ConnectSpec struct {
	Device    frame.MAC
	Req       profinet.ConnectRequest
	InOffset  int // device inputs land at Image.Inputs[InOffset:]
	OutOffset int // device outputs come from Image.Outputs[OutOffset:]
}

// deviceConn is the controller-side CR state.
type deviceConn struct {
	spec     ConnectSpec
	state    ConnState
	inputs   []byte
	counter  uint16
	lastRx   uint16
	watchdog *profinet.Watchdog
	ticker   *sim.Ticker
	retry    *sim.Ticker
}

// ControllerConfig parameterizes a controller.
type ControllerConfig struct {
	// Logic, when non-nil, runs every scan over the process image.
	Logic *ILProgram
	// ImageSize is the size of each process-image area in bytes.
	ImageSize int
	// Stack, when non-nil, makes this a virtual PLC: scan wakeups and
	// frame transmissions pay the host stack's scheduling noise and
	// kernel path (§2.1). Hardware PLCs leave it nil.
	Stack *host.Stack
	// Primary marks the cyclic frames with the redundancy-primary bit.
	Primary bool
}

// Controller is a (v)PLC in the PROFINET controller role: it owns the
// process image, runs the logic scan, and exchanges cyclic IO with one
// or more devices.
type Controller struct {
	name   string
	engine *sim.Engine
	hst    *simnet.Host
	cfg    ControllerConfig
	runner *Runner
	image  Image
	conns  map[uint32]*deviceConn
	failed bool

	discoveries map[uint32]map[frame.MAC]Station
	nextXID     uint32

	// OnConnected fires when a CR is accepted.
	OnConnected func(arid uint32)
	// OnRejected fires when a CR is refused.
	OnRejected func(arid uint32, reason uint8)
	// OnPeerLost fires when a device's watchdog expires.
	OnPeerLost func(arid uint32)

	// TxCyclic and RxCyclic count cyclic frames exchanged.
	TxCyclic, RxCyclic uint64
	// ScanCount counts completed logic scans.
	ScanCount uint64
}

// NewController builds a controller host.
func NewController(e *sim.Engine, name string, mac frame.MAC, cfg ControllerConfig) *Controller {
	if cfg.ImageSize <= 0 {
		cfg.ImageSize = 64
	}
	c := &Controller{
		name:   name,
		engine: e,
		hst:    simnet.NewHost(e, name, mac),
		cfg:    cfg,
		conns:  make(map[uint32]*deviceConn),
		image: Image{
			Inputs:  make([]byte, cfg.ImageSize),
			Outputs: make([]byte, cfg.ImageSize),
		},
	}
	if cfg.Logic != nil {
		c.runner = NewRunner(cfg.Logic)
	}
	c.hst.OnReceive(c.onFrame)
	return c
}

// Host returns the underlying simnet host for wiring.
func (c *Controller) Host() *simnet.Host { return c.hst }

// Image exposes the process image (HMI/test access).
func (c *Controller) Image() *Image { return &c.image }

// State returns the CR state for arid, or StateConnecting when unknown.
func (c *Controller) State(arid uint32) ConnState {
	if conn, ok := c.conns[arid]; ok {
		return conn.state
	}
	return StateConnecting
}

// Inputs returns the latest input data from the device on arid.
func (c *Controller) Inputs(arid uint32) []byte {
	if conn, ok := c.conns[arid]; ok {
		return append([]byte(nil), conn.inputs...)
	}
	return nil
}

// Connect establishes a CR per spec, retrying the request every 100 ms
// until the device answers.
func (c *Controller) Connect(spec ConnectSpec) {
	conn := &deviceConn{spec: spec, state: StateConnecting, inputs: make([]byte, spec.Req.InputLen)}
	c.conns[spec.Req.ARID] = conn
	send := func() {
		if c.failed || conn.state != StateConnecting {
			return
		}
		c.send(spec.Device, spec.Req.Marshal())
	}
	conn.retry = c.engine.Every(c.engine.Now(), 100*time.Millisecond, send)
}

// send transmits a PROFINET payload, paying the vPLC kernel path when
// configured.
func (c *Controller) send(dst frame.MAC, payload []byte) {
	f := &frame.Frame{
		Dst:      dst,
		Tagged:   true,
		Priority: frame.PrioRT,
		VID:      10,
		Type:     frame.TypeProfinet,
		Payload:  payload,
	}
	if c.cfg.Stack != nil {
		d := c.cfg.Stack.FullKernelTx(len(payload) + 18)
		c.engine.After(d, func() {
			if !c.failed {
				c.hst.Send(f)
			}
		})
		return
	}
	c.hst.Send(f)
}

func (c *Controller) onFrame(f *frame.Frame) {
	if c.failed || f.Type != frame.TypeProfinet {
		return
	}
	id, err := profinet.PeekFrameID(f.Payload)
	if err != nil {
		return
	}
	switch id {
	case profinet.FrameIDConnectResp:
		resp, err := profinet.UnmarshalConnectResponse(f.Payload)
		if err != nil {
			return
		}
		c.onConnectResp(resp)
	case profinet.FrameIDCyclic:
		cd, err := profinet.UnmarshalCyclicData(f.Payload)
		if err != nil {
			return
		}
		c.onCyclic(cd)
	case profinet.FrameIDAlarm:
		// Alarms are surfaced through OnPeerLost when relevant; other
		// alarm handling is device-specific and out of scope here.
	case profinet.FrameIDDCPIdentifyResp:
		resp, err := profinet.UnmarshalDCPIdentifyResponse(f.Payload)
		if err != nil {
			return
		}
		if d, ok := c.discoveries[resp.XID]; ok {
			d[f.Src] = Station{Name: resp.StationName, MAC: f.Src, Role: resp.DeviceRole}
		}
	}
}

// Station is one DCP-discovered network participant.
type Station struct {
	Name string
	MAC  frame.MAC
	Role uint8
}

// Discover broadcasts a DCP Identify with the given station-name filter
// and collects responses for window, then invokes done with the
// stations found. This is the commissioning step that turns "a device
// named press-1/io exists somewhere" into a MAC to Connect to.
func (c *Controller) Discover(filter string, window time.Duration, done func([]Station)) {
	if c.discoveries == nil {
		c.discoveries = make(map[uint32]map[frame.MAC]Station)
	}
	xid := c.nextXID
	c.nextXID++
	found := make(map[frame.MAC]Station)
	c.discoveries[xid] = found
	c.send(frame.Broadcast, profinet.DCPIdentify{XID: xid, Filter: filter}.Marshal())
	c.engine.After(window, func() {
		delete(c.discoveries, xid)
		out := make([]Station, 0, len(found))
		for _, s := range found {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		if done != nil {
			done(out)
		}
	})
}

func (c *Controller) onConnectResp(resp profinet.ConnectResponse) {
	conn, ok := c.conns[resp.ARID]
	if !ok || conn.state != StateConnecting {
		return
	}
	conn.retry.Stop()
	if !resp.Accepted {
		conn.state = StateRejected
		if c.OnRejected != nil {
			c.OnRejected(resp.ARID, resp.Reason)
		}
		return
	}
	conn.state = StateRunning
	cycle := conn.spec.Req.Cycle()
	arid := resp.ARID
	conn.watchdog = profinet.NewWatchdog(c.engine, cycle, int(conn.spec.Req.WatchdogFactor), func() {
		conn.state = StatePeerLost
		if c.OnPeerLost != nil {
			c.OnPeerLost(arid)
		}
	}, func() {
		conn.state = StateRunning
	})
	conn.watchdog.Feed()
	conn.ticker = c.engine.Every(c.engine.Now(), cycle, func() { c.cycleTick(conn) })
	if c.OnConnected != nil {
		c.OnConnected(arid)
	}
}

// cycleTick is one IO cycle: run the scan, emit outputs.
func (c *Controller) cycleTick(conn *deviceConn) {
	if c.failed || conn.state == StateRejected {
		return
	}
	fire := func() {
		if c.failed {
			return
		}
		c.scan()
		out := c.image.Outputs[conn.spec.OutOffset : conn.spec.OutOffset+int(conn.spec.Req.OutputLen)]
		status := profinet.StatusRun | profinet.StatusValid
		if c.cfg.Primary {
			status |= profinet.StatusPrimary
		}
		cd := profinet.CyclicData{
			ARID:         conn.spec.Req.ARID,
			CycleCounter: conn.counter,
			Status:       status,
			Data:         append([]byte(nil), out...),
		}
		conn.counter++
		c.TxCyclic++
		c.send(conn.spec.Device, cd.Marshal())
	}
	if c.cfg.Stack != nil {
		// vPLC: the scan task wakes up late by the host's scheduling
		// noise before it can transmit.
		c.engine.After(c.cfg.Stack.SchedulingNoise(), fire)
		return
	}
	fire()
}

// scan runs the logic once over the process image.
func (c *Controller) scan() {
	if c.runner == nil {
		return
	}
	if err := c.runner.Scan(c.image, time.Duration(c.engine.Now())); err != nil {
		panic(err) // logic addressing errors are programming bugs
	}
	c.ScanCount++
}

func (c *Controller) onCyclic(cd profinet.CyclicData) {
	conn, ok := c.conns[cd.ARID]
	if !ok || conn.state == StateConnecting || conn.state == StateRejected {
		return
	}
	if !cd.Valid() {
		return
	}
	c.RxCyclic++
	conn.lastRx = cd.CycleCounter
	copy(conn.inputs, cd.Data)
	copy(c.image.Inputs[conn.spec.InOffset:], cd.Data)
	if conn.watchdog != nil {
		conn.watchdog.Feed()
	}
}

// Fail simulates an abrupt controller crash (VM kill): all traffic
// stops instantly, with no goodbye. Fig. 5's "vPLC1 stops".
func (c *Controller) Fail() {
	c.failed = true
	for _, conn := range c.conns {
		if conn.ticker != nil {
			conn.ticker.Stop()
		}
		if conn.retry != nil {
			conn.retry.Stop()
		}
		if conn.watchdog != nil {
			conn.watchdog.Stop()
		}
	}
}

// Failed reports whether Fail was called.
func (c *Controller) Failed() bool { return c.failed }

// Restart brings a failed controller back: state is cold (process image
// cleared, like a rebooted VM) and every configured CR is re-established
// from scratch.
func (c *Controller) Restart() {
	if !c.failed {
		return
	}
	c.failed = false
	for i := range c.image.Inputs {
		c.image.Inputs[i] = 0
	}
	for i := range c.image.Outputs {
		c.image.Outputs[i] = 0
	}
	specs := make([]ConnectSpec, 0, len(c.conns))
	for _, conn := range c.conns {
		specs = append(specs, conn.spec)
	}
	c.conns = make(map[uint32]*deviceConn)
	for _, spec := range specs {
		c.Connect(spec)
	}
}
