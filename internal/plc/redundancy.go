package plc

import (
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// RedundantPair is the classic hardware-style HA baseline §4 describes:
// an active primary and a passive standby coupled by a dedicated sync
// link carrying heartbeats and state. When the standby misses
// HeartbeatMiss heartbeats it promotes itself after SwitchoverDelay —
// the 50–300 ms figure the paper cites for S7-1500R/H-class systems
// [98]. Contrast with InstaPLC, which needs no dedicated link and
// switches in the data plane within a watchdog window.
type RedundantPair struct {
	engine  *sim.Engine
	Primary *Controller
	Standby *Controller

	cfg        RedundancyConfig
	syncA      *simnet.Host // primary's sync-link endpoint
	syncB      *simnet.Host // standby's sync-link endpoint
	hbTicker   *sim.Ticker
	hbWatch    sim.Event
	promoted   bool
	promotedAt sim.Time

	// HeartbeatsSent and HeartbeatsSeen count sync-link traffic.
	HeartbeatsSent, HeartbeatsSeen uint64
}

// RedundancyConfig parameterizes the pair.
type RedundancyConfig struct {
	// HeartbeatEvery is the sync-link heartbeat period.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many consecutive missed heartbeats the
	// standby tolerates before promoting.
	HeartbeatMiss int
	// SwitchoverDelay is the time the standby needs to take over after
	// deciding to (state loading, output enabling) — 50-300 ms for
	// hardware pairs.
	SwitchoverDelay time.Duration
	// Specs are the device connections the active controller maintains;
	// on promotion the standby connects to the same devices.
	Specs []ConnectSpec
}

// DefaultRedundancyConfig matches a mid-range hardware pair.
var DefaultRedundancyConfig = RedundancyConfig{
	HeartbeatEvery:  10 * time.Millisecond,
	HeartbeatMiss:   3,
	SwitchoverDelay: 150 * time.Millisecond,
}

// NewRedundantPair wires primary and standby with a dedicated 1 Gb/s
// sync link (the special hardware requirement InstaPLC removes).
func NewRedundantPair(e *sim.Engine, primary, standby *Controller, cfg RedundancyConfig) *RedundantPair {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultRedundancyConfig.HeartbeatEvery
	}
	if cfg.HeartbeatMiss < 1 {
		cfg.HeartbeatMiss = DefaultRedundancyConfig.HeartbeatMiss
	}
	if cfg.SwitchoverDelay <= 0 {
		cfg.SwitchoverDelay = DefaultRedundancyConfig.SwitchoverDelay
	}
	p := &RedundantPair{
		engine:  e,
		Primary: primary,
		Standby: standby,
		cfg:     cfg,
		syncA:   simnet.NewHost(e, primary.name+"-sync", frame.NewMAC(0xff00)),
		syncB:   simnet.NewHost(e, standby.name+"-sync", frame.NewMAC(0xff01)),
	}
	simnet.Connect(e, "plc-sync", p.syncA.Port(), p.syncB.Port(), 1e9, 500*sim.Nanosecond)
	p.syncB.OnReceive(func(*frame.Frame) {
		p.HeartbeatsSeen++
		p.armWatch()
	})
	return p
}

// Start begins operation: the primary connects to all devices and
// heartbeats flow on the sync link.
func (p *RedundantPair) Start() {
	for _, spec := range p.cfg.Specs {
		p.Primary.Connect(spec)
	}
	p.hbTicker = p.engine.Every(p.engine.Now(), p.cfg.HeartbeatEvery, func() {
		if p.Primary.Failed() {
			return
		}
		p.HeartbeatsSent++
		p.syncA.Send(&frame.Frame{Dst: p.syncB.MAC(), Type: frame.TypeProfinet, Payload: []byte{0xbe, 0xa7}})
	})
	p.armWatch()
}

func (p *RedundantPair) armWatch() {
	if p.promoted {
		return
	}
	p.hbWatch.Cancel()
	timeout := time.Duration(p.cfg.HeartbeatMiss) * p.cfg.HeartbeatEvery
	p.hbWatch = p.engine.After(timeout, p.promote)
}

// promote switches the standby to active after the switchover delay.
func (p *RedundantPair) promote() {
	if p.promoted {
		return
	}
	p.promoted = true
	p.engine.After(p.cfg.SwitchoverDelay, func() {
		p.promotedAt = p.engine.Now()
		for _, spec := range p.cfg.Specs {
			// The standby opens fresh CRs with its own ARIDs offset to
			// avoid clashing with the dead primary's.
			s := spec
			s.Req.ARID += 1 << 16
			p.Standby.Connect(s)
		}
	})
}

// Promoted reports whether the standby has taken over, and when it
// finished doing so (zero until then).
func (p *RedundantPair) Promoted() (bool, sim.Time) { return p.promoted, p.promotedAt }

// Stop halts heartbeats and the promotion watch.
func (p *RedundantPair) Stop() {
	if p.hbTicker != nil {
		p.hbTicker.Stop()
	}
	p.hbWatch.Cancel()
}
