package plc

import (
	"sort"

	"steelnet/internal/checkpoint"
)

// FoldState folds the controller's connection state machine, process
// image, retentive logic memory and cyclic counters. Connections fold
// in sorted AR-id order.
func (c *Controller) FoldState(d *checkpoint.Digest) {
	d.Bool(c.failed)
	d.U64(uint64(c.nextXID))
	d.U64(c.TxCyclic)
	d.U64(c.RxCyclic)
	d.U64(c.ScanCount)
	d.Bytes(c.image.Inputs)
	d.Bytes(c.image.Outputs)
	if c.runner != nil {
		d.Bytes(c.runner.Memory())
	}
	arids := make([]int, 0, len(c.conns))
	for arid := range c.conns {
		arids = append(arids, int(arid))
	}
	sort.Ints(arids)
	d.Int(len(arids))
	for _, arid := range arids {
		conn := c.conns[uint32(arid)]
		d.Int(arid)
		d.Int(int(conn.state))
		d.Bytes(conn.inputs)
		d.U64(uint64(conn.counter))
		d.U64(uint64(conn.lastRx))
	}
	c.hst.FoldState(d)
}
