package plc

import (
	"strings"
	"testing"
	"time"
)

func scanOnce(t *testing.T, r *Runner, img Image, now time.Duration) {
	t.Helper()
	if err := r.Scan(img, now); err != nil {
		t.Fatal(err)
	}
}

func TestLoadStoreBit(t *testing.T) {
	p := &ILProgram{Name: "copy", Insns: []ILInsn{LD(I(0, 0)), ST(Q(0, 0))}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{1}, Outputs: []byte{0}}
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 == 0 {
		t.Fatal("bit not copied")
	}
	img.Inputs[0] = 0
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 != 0 {
		t.Fatal("bit not cleared")
	}
}

func TestBooleanOps(t *testing.T) {
	// Q0.0 = (I0.0 AND NOT I0.1) OR I0.2
	p := &ILProgram{Name: "bool", Insns: []ILInsn{
		LD(I(0, 0)), ANDN(I(0, 1)), OR(I(0, 2)), ST(Q(0, 0)),
	}}
	cases := []struct {
		in   byte
		want bool
	}{
		{0b000, false}, {0b001, true}, {0b010, false},
		{0b011, false}, {0b100, true}, {0b101, true}, {0b111, true},
	}
	for _, c := range cases {
		r := NewRunner(p)
		img := Image{Inputs: []byte{c.in}, Outputs: []byte{0}}
		scanOnce(t, r, img, 0)
		got := img.Outputs[0]&1 != 0
		if got != c.want {
			t.Errorf("in=%03b: got %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSetResetLatch(t *testing.T) {
	// Classic start/stop latch: SET on I0.0, RST on I0.1, output Q0.0.
	p := &ILProgram{Name: "latch", Insns: []ILInsn{
		LD(I(0, 0)), SET(Q(0, 0)),
		LD(I(0, 1)), RST(Q(0, 0)),
	}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{0}, Outputs: []byte{0}}
	// Press start.
	img.Inputs[0] = 1
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 == 0 {
		t.Fatal("latch did not set")
	}
	// Release start: stays on.
	img.Inputs[0] = 0
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 == 0 {
		t.Fatal("latch dropped")
	}
	// Press stop.
	img.Inputs[0] = 2
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 != 0 {
		t.Fatal("latch did not reset")
	}
}

func TestMemoryRetentive(t *testing.T) {
	p := &ILProgram{Name: "mem", Insns: []ILInsn{
		LD(I(0, 0)), SET(M(0, 0)),
		LD(M(0, 0)), ST(Q(0, 0)),
	}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{1}, Outputs: []byte{0}}
	scanOnce(t, r, img, 0)
	img.Inputs[0] = 0
	img.Outputs[0] = 0
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 == 0 {
		t.Fatal("memory bit not retained across scans")
	}
	if r.Memory()[0]&1 == 0 {
		t.Fatal("Memory() accessor broken")
	}
}

func TestWordArithmetic(t *testing.T) {
	// %QW2 = %IW0 + %IW2 - 5
	p := &ILProgram{Name: "word", Insns: []ILInsn{
		{Op: ILLoadW, Addr: I(0, 0)},
		{Op: ILAddW, Addr: I(2, 0)},
		{Op: ILLoadWI, Imm: 0}, // overwritten below; keep acc semantics simple
	}}
	// Rebuild properly: load IW0, add IW2, sub imm via memory word.
	p = &ILProgram{Name: "word", Insns: []ILInsn{
		{Op: ILLoadW, Addr: I(0, 0)},
		{Op: ILAddW, Addr: I(2, 0)},
		{Op: ILStoreW, Addr: Q(2, 0)},
	}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{0x01, 0x00, 0x00, 0x2a}, Outputs: make([]byte, 4)}
	scanOnce(t, r, img, 0) // 0x0100 + 0x002a = 0x012a
	if img.Outputs[2] != 0x01 || img.Outputs[3] != 0x2a {
		t.Fatalf("outputs = % x", img.Outputs)
	}
}

func TestLoadWordImmediate(t *testing.T) {
	p := &ILProgram{Name: "imm", Insns: []ILInsn{
		{Op: ILLoadWI, Imm: 1234},
		{Op: ILStoreW, Addr: Q(0, 0)},
	}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{}, Outputs: make([]byte, 2)}
	scanOnce(t, r, img, 0)
	if got := uint16(img.Outputs[0])<<8 | uint16(img.Outputs[1]); got != 1234 {
		t.Fatalf("stored %d", got)
	}
}

func TestTonTimer(t *testing.T) {
	// Q0.0 goes high 50 ms after I0.0 rises.
	p := &ILProgram{Name: "ton", Insns: []ILInsn{
		LD(I(0, 0)), TON(0, 50), ST(Q(0, 0)),
	}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{1}, Outputs: []byte{0}}
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 != 0 {
		t.Fatal("timer done immediately")
	}
	scanOnce(t, r, img, 30*time.Millisecond)
	if img.Outputs[0]&1 != 0 {
		t.Fatal("timer done early")
	}
	scanOnce(t, r, img, 50*time.Millisecond)
	if img.Outputs[0]&1 == 0 {
		t.Fatal("timer not done at preset")
	}
	// Input drop resets the timer.
	img.Inputs[0] = 0
	scanOnce(t, r, img, 60*time.Millisecond)
	if img.Outputs[0]&1 != 0 {
		t.Fatal("timer did not reset")
	}
	img.Inputs[0] = 1
	scanOnce(t, r, img, 70*time.Millisecond)
	if img.Outputs[0]&1 != 0 {
		t.Fatal("timer restarted as done")
	}
}

func TestXorAndNot(t *testing.T) {
	p := &ILProgram{Name: "xor", Insns: []ILInsn{
		LD(I(0, 0)), {Op: ILXor, Addr: I(0, 1)}, {Op: ILNot}, ST(Q(0, 0)),
	}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{0b01}, Outputs: []byte{0}}
	scanOnce(t, r, img, 0) // 1 xor 0 = 1, not = 0
	if img.Outputs[0]&1 != 0 {
		t.Fatal("xor/not wrong")
	}
	img.Inputs[0] = 0b11
	scanOnce(t, r, img, 0) // 1 xor 1 = 0, not = 1
	if img.Outputs[0]&1 == 0 {
		t.Fatal("xor/not wrong for equal bits")
	}
}

func TestOutOfRangeAddressErrors(t *testing.T) {
	p := &ILProgram{Name: "oob", Insns: []ILInsn{LD(I(10, 0))}}
	r := NewRunner(p)
	err := r.Scan(Image{Inputs: []byte{0}, Outputs: []byte{0}}, 0)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadTimerIndexErrors(t *testing.T) {
	p := &ILProgram{Name: "badtimer", Insns: []ILInsn{
		LD(I(0, 0)), {Op: ILTon, Timer: MaxTimers, Imm: 10},
	}}
	r := NewRunner(p)
	if err := r.Scan(Image{Inputs: []byte{0}, Outputs: []byte{0}}, 0); err == nil {
		t.Fatal("bad timer accepted")
	}
}

func TestAddrString(t *testing.T) {
	if I(0, 3).String() != "%I0.3" || Q(2, 7).String() != "%Q2.7" || M(1, 0).String() != "%M1.0" {
		t.Fatal("address rendering broken")
	}
}

func TestCtuCountsRisingEdges(t *testing.T) {
	// Q0.0 after 3 parts detected on I0.0; I0.1 resets the batch.
	p := &ILProgram{Name: "batch", Insns: []ILInsn{
		LD(I(0, 0)), CTU(0, 3), ST(Q(0, 0)),
		LD(I(0, 1)), CTUR(0),
	}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{0}, Outputs: []byte{0}}
	pulse := func() {
		img.Inputs[0] |= 1
		scanOnce(t, r, img, 0)
		img.Inputs[0] &^= 1
		scanOnce(t, r, img, 0)
	}
	pulse()
	pulse()
	if img.Outputs[0]&1 != 0 {
		t.Fatal("Q set after 2 counts")
	}
	pulse()
	if img.Outputs[0]&1 == 0 {
		t.Fatal("Q not set after 3 counts")
	}
	// Raising the input again is one more edge (count 4); holding it
	// high afterwards must not keep counting.
	img.Inputs[0] |= 1
	scanOnce(t, r, img, 0)
	scanOnce(t, r, img, 0)
	scanOnce(t, r, img, 0)
	if r.state.counters[0].count != 4 {
		t.Fatalf("count = %d, level-triggered by mistake", r.state.counters[0].count)
	}
	// Reset. The CTUR rung runs after the Q rung, so Q reflects the
	// reset one scan later — standard PLC scan semantics.
	img.Inputs[0] = 2
	scanOnce(t, r, img, 0)
	if r.state.counters[0].count != 0 {
		t.Fatal("reset failed")
	}
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 != 0 {
		t.Fatal("Q still set one scan after reset")
	}
}

func TestRtrigOneScanPulse(t *testing.T) {
	// Q0.0 = one-scan pulse per rising edge of I0.0; count pulses into
	// a counter for observability.
	p := &ILProgram{Name: "edge", Insns: []ILInsn{
		LD(I(0, 0)), RTRIG(0), ST(Q(0, 0)),
	}}
	r := NewRunner(p)
	img := Image{Inputs: []byte{1}, Outputs: []byte{0}}
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 == 0 {
		t.Fatal("no pulse on rising edge")
	}
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 != 0 {
		t.Fatal("pulse lasted more than one scan")
	}
	img.Inputs[0] = 0
	scanOnce(t, r, img, 0)
	img.Inputs[0] = 1
	scanOnce(t, r, img, 0)
	if img.Outputs[0]&1 == 0 {
		t.Fatal("no pulse on second rising edge")
	}
}

func TestCounterIndexOutOfRange(t *testing.T) {
	for _, insn := range []ILInsn{
		{Op: ILCtu, Timer: MaxTimers},
		{Op: ILCtuR, Timer: MaxTimers},
		{Op: ILRtrig, Timer: MaxTimers},
	} {
		p := &ILProgram{Name: "bad", Insns: []ILInsn{LD(I(0, 0)), insn}}
		if err := NewRunner(p).Scan(Image{Inputs: []byte{0}, Outputs: []byte{0}}, 0); err == nil {
			t.Fatalf("op %d accepted bad index", insn.Op)
		}
	}
}

func TestCtuSaturatesAtMax(t *testing.T) {
	p := &ILProgram{Name: "sat", Insns: []ILInsn{LD(I(0, 0)), CTU(0, 1)}}
	r := NewRunner(p)
	r.state.counters[0].count = 0xffff
	img := Image{Inputs: []byte{1}, Outputs: []byte{0}}
	scanOnce(t, r, img, 0)
	if r.state.counters[0].count != 0xffff {
		t.Fatal("counter overflowed")
	}
}
