package plc

import (
	"testing"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/host"
	"steelnet/internal/iodevice"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/tap"
)

// cell wires one controller and one device through a switch and returns
// both plus the engine.
func cell(t *testing.T, cfg ControllerConfig) (*sim.Engine, *Controller, *iodevice.Device) {
	t.Helper()
	e := sim.NewEngine(1)
	ctrl := NewController(e, "plc1", frame.NewMAC(1), cfg)
	dev := iodevice.New(e, "io1", frame.NewMAC(2), nil, nil)
	sw := simnet.NewSwitch(e, "sw", 2, simnet.DefaultSwitchConfig)
	simnet.Connect(e, "c", ctrl.Host().Port(), sw.Port(0), 100e6, 500*sim.Nanosecond)
	simnet.Connect(e, "d", dev.Host().Port(), sw.Port(1), 100e6, 500*sim.Nanosecond)
	return e, ctrl, dev
}

// connReq builds a profinet.ConnectRequest, keeping call sites short.
func connReq(arid, cycleUS uint32, wd, in, out uint16) profinet.ConnectRequest {
	return profinet.ConnectRequest{ARID: arid, CycleUS: cycleUS, WatchdogFactor: wd, InputLen: in, OutputLen: out}
}

func TestConnectEstablishesCR(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	connected := false
	ctrl.OnConnected = func(arid uint32) { connected = true }
	ctrl.Connect(ConnectSpec{
		Device: frame.NewMAC(2),
		Req:    connReq(7, 1600, 3, 4, 4),
	})
	e.RunUntil(sim.Time(100 * time.Millisecond))
	if !connected {
		t.Fatal("CR not established")
	}
	if ctrl.State(7) != StateRunning {
		t.Fatalf("state = %v", ctrl.State(7))
	}
	if dev.State() != iodevice.StateOperate {
		t.Fatalf("device state = %v", dev.State())
	}
}

func TestCyclicDataFlowsBothWays(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(500 * time.Millisecond))
	if ctrl.TxCyclic < 250 || dev.TxCyclic < 250 {
		t.Fatalf("tx counts: ctrl=%d dev=%d", ctrl.TxCyclic, dev.TxCyclic)
	}
	if ctrl.RxCyclic < 250 || dev.RxCyclic < 250 {
		t.Fatalf("rx counts: ctrl=%d dev=%d", ctrl.RxCyclic, dev.RxCyclic)
	}
	if dev.FailsafeEvents != 0 {
		t.Fatal("failsafe during normal operation")
	}
}

func TestOutputsReachDeviceActuators(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(50 * time.Millisecond))
	ctrl.Image().Outputs[0] = 0xaa
	e.RunUntil(sim.Time(100 * time.Millisecond))
	if dev.Outputs()[0] != 0xaa {
		t.Fatalf("device outputs = % x", dev.Outputs())
	}
}

func TestEchoProcessFeedsInputsBack(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	_ = dev
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(50 * time.Millisecond))
	ctrl.Image().Outputs[0] = 0x55
	e.RunUntil(sim.Time(100 * time.Millisecond))
	if ctrl.Inputs(7)[0] != 0x55 {
		t.Fatalf("inputs = % x", ctrl.Inputs(7))
	}
}

func TestLogicRunsEveryCycle(t *testing.T) {
	logic := &ILProgram{Name: "copy", Insns: []ILInsn{LD(I(0, 0)), ST(Q(0, 0))}}
	e, ctrl, dev := cell(t, ControllerConfig{Logic: logic})
	_ = dev
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(200 * time.Millisecond))
	if ctrl.ScanCount < 100 {
		t.Fatalf("scans = %d", ctrl.ScanCount)
	}
}

func TestControllerFailStopsTraffic(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(100 * time.Millisecond))
	tx := ctrl.TxCyclic
	ctrl.Fail()
	e.RunUntil(sim.Time(200 * time.Millisecond))
	if ctrl.TxCyclic != tx {
		t.Fatal("failed controller kept transmitting")
	}
	if dev.State() != iodevice.StateFailsafe {
		t.Fatalf("device state = %v, want failsafe", dev.State())
	}
	if dev.FailsafeEvents != 1 {
		t.Fatalf("failsafe events = %d", dev.FailsafeEvents)
	}
}

func TestDeviceWatchdogTripsAfterFactorCycles(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	var failAt, tripAt sim.Time
	dev.OnFailsafe = func() { tripAt = e.Now() }
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(100 * time.Millisecond))
	failAt = e.Now()
	ctrl.Fail()
	e.RunUntil(sim.Time(200 * time.Millisecond))
	gap := tripAt.Sub(failAt)
	// Watchdog = 3 × 1.6 ms = 4.8 ms (+ up to one in-flight cycle).
	if gap < 4*time.Millisecond || gap > 8*time.Millisecond {
		t.Fatalf("failsafe after %v, want ≈4.8ms", gap)
	}
}

func TestControllerDetectsDeviceLoss(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	lost := false
	ctrl.OnPeerLost = func(arid uint32) { lost = true }
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(100 * time.Millisecond))
	// Cut the device's link.
	dev.Host().Port().Link().SetUp(false)
	e.RunUntil(sim.Time(200 * time.Millisecond))
	if !lost {
		t.Fatal("controller never noticed device loss")
	}
	if ctrl.State(7) != StatePeerLost {
		t.Fatalf("state = %v", ctrl.State(7))
	}
}

func TestSecondControllerRejectedBusy(t *testing.T) {
	e := sim.NewEngine(1)
	c1 := NewController(e, "plc1", frame.NewMAC(1), ControllerConfig{})
	c2 := NewController(e, "plc2", frame.NewMAC(3), ControllerConfig{})
	dev := iodevice.New(e, "io1", frame.NewMAC(2), nil, nil)
	sw := simnet.NewSwitch(e, "sw", 3, simnet.DefaultSwitchConfig)
	simnet.Connect(e, "c1", c1.Host().Port(), sw.Port(0), 100e6, 0)
	simnet.Connect(e, "c2", c2.Host().Port(), sw.Port(1), 100e6, 0)
	simnet.Connect(e, "d", dev.Host().Port(), sw.Port(2), 100e6, 0)
	var rejected uint8
	c2.OnRejected = func(_ uint32, reason uint8) { rejected = reason }
	c1.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(50 * time.Millisecond))
	c2.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(8, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(150 * time.Millisecond))
	if rejected != 2-1 { // ReasonBusy == 1
		t.Fatalf("rejection reason = %d, want busy", rejected)
	}
	if dev.RejectedConnects == 0 {
		t.Fatal("device did not count rejection")
	}
}

func TestVPLCJitterVisibleInCycleSpacing(t *testing.T) {
	e := sim.NewEngine(1)
	stack := host.NewStack(host.Standard, e.RNG("vplc"))
	ctrl := NewController(e, "vplc", frame.NewMAC(1), ControllerConfig{Stack: stack})
	dev := iodevice.New(e, "io", frame.NewMAC(2), nil, nil)
	// A tap between the vPLC and the device records exact emission times.
	tp := tap.New(e, "tap", tap.DefaultConfig)
	var arrivals []int64
	tp.OnCapture = func(c tap.Capture) {
		if c.Dir == tap.AtoB && c.Type == frame.TypeProfinet {
			arrivals = append(arrivals, c.Timestamp)
		}
	}
	simnet.Connect(e, "c", ctrl.Host().Port(), tp.PortA(), 100e6, 0)
	simnet.Connect(e, "d", tp.PortB(), dev.Host().Port(), 100e6, 0)
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 2000, 3, 4, 4)})
	e.RunUntil(sim.Time(400 * time.Millisecond))
	if len(arrivals) < 100 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// With Standard kernel jitter, inter-arrival spacing must vary.
	varied := false
	for i := 2; i < len(arrivals); i++ {
		if arrivals[i]-arrivals[i-1] != arrivals[i-1]-arrivals[i-2] {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("vPLC cycles perfectly regular despite host jitter")
	}
}

func TestConnectRetriesUntilDeviceAppears(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	// Device link starts down; comes up after 350 ms.
	link := dev.Host().Port().Link()
	link.SetUp(false)
	connected := false
	ctrl.OnConnected = func(uint32) { connected = true }
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(350 * time.Millisecond))
	if connected {
		t.Fatal("connected through downed link")
	}
	link.SetUp(true)
	e.RunUntil(sim.Time(600 * time.Millisecond))
	if !connected {
		t.Fatal("connect retry never succeeded")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[ConnState]string{
		StateConnecting: "connecting", StateRunning: "running",
		StatePeerLost: "peer-lost", StateRejected: "rejected",
	} {
		if s.String() != want {
			t.Fatalf("%d = %q", s, s.String())
		}
	}
}

func TestDiscoverFindsDevicesByName(t *testing.T) {
	e := sim.NewEngine(1)
	ctrl := NewController(e, "plc", frame.NewMAC(1), ControllerConfig{})
	devA := iodevice.New(e, "cell-a/io", frame.NewMAC(2), nil, nil)
	devB := iodevice.New(e, "cell-b/io", frame.NewMAC(3), nil, nil)
	sw := simnet.NewSwitch(e, "sw", 3, simnet.DefaultSwitchConfig)
	simnet.Connect(e, "c", ctrl.Host().Port(), sw.Port(0), 100e6, 0)
	simnet.Connect(e, "a", devA.Host().Port(), sw.Port(1), 100e6, 0)
	simnet.Connect(e, "b", devB.Host().Port(), sw.Port(2), 100e6, 0)

	var all, filtered []Station
	ctrl.Discover("", 10*time.Millisecond, func(s []Station) { all = s })
	e.RunUntil(sim.Time(20 * time.Millisecond))
	ctrl.Discover("cell-b/io", 10*time.Millisecond, func(s []Station) { filtered = s })
	e.RunUntil(sim.Time(40 * time.Millisecond))

	if len(all) != 2 || all[0].Name != "cell-a/io" || all[1].Name != "cell-b/io" {
		t.Fatalf("all = %+v", all)
	}
	if all[0].MAC != devA.Host().MAC() {
		t.Fatal("MAC not learned from response source")
	}
	if len(filtered) != 1 || filtered[0].Name != "cell-b/io" {
		t.Fatalf("filtered = %+v", filtered)
	}
	// Discovered MAC is directly connectable.
	connected := false
	ctrl.OnConnected = func(uint32) { connected = true }
	ctrl.Connect(ConnectSpec{Device: filtered[0].MAC, Req: connReq(5, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(100 * time.Millisecond))
	if !connected {
		t.Fatal("connect to discovered device failed")
	}
}

func TestDiscoverEmptyNetwork(t *testing.T) {
	e := sim.NewEngine(1)
	ctrl := NewController(e, "plc", frame.NewMAC(1), ControllerConfig{})
	peer := simnet.NewHost(e, "peer", frame.NewMAC(9))
	simnet.Connect(e, "l", ctrl.Host().Port(), peer.Port(), 100e6, 0)
	var got []Station
	called := false
	ctrl.Discover("", 5*time.Millisecond, func(s []Station) { got = s; called = true })
	e.RunUntil(sim.Time(20 * time.Millisecond))
	if !called {
		t.Fatal("done callback never ran")
	}
	if len(got) != 0 {
		t.Fatalf("got = %+v", got)
	}
}

func TestControllerRestartReestablishesCR(t *testing.T) {
	e, ctrl, dev := cell(t, ControllerConfig{})
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(100 * time.Millisecond))
	ctrl.Fail()
	e.RunUntil(sim.Time(200 * time.Millisecond))
	if dev.State() != iodevice.StateFailsafe {
		t.Fatalf("device state = %v", dev.State())
	}
	ctrl.Restart()
	e.RunUntil(sim.Time(500 * time.Millisecond))
	if dev.State() != iodevice.StateOperate {
		t.Fatalf("device state after restart = %v", dev.State())
	}
	if ctrl.State(7) != StateRunning {
		t.Fatalf("CR state = %v", ctrl.State(7))
	}
}

func TestRestartOnHealthyControllerIsNoop(t *testing.T) {
	e, ctrl, _ := cell(t, ControllerConfig{})
	ctrl.Connect(ConnectSpec{Device: frame.NewMAC(2), Req: connReq(7, 1600, 3, 4, 4)})
	e.RunUntil(sim.Time(100 * time.Millisecond))
	tx := ctrl.TxCyclic
	ctrl.Restart() // not failed: must not reset anything
	e.RunUntil(sim.Time(150 * time.Millisecond))
	if ctrl.TxCyclic <= tx {
		t.Fatal("healthy controller disturbed by Restart")
	}
}
