// Package plc implements the Programmable Logic Controller runtime at
// the heart of the factory (§1.1): a scan-cycle executor (read inputs →
// run logic → write outputs) over a process image, a small IEC
// 61131-3-style instruction-list (IL) interpreter for the control logic
// itself, a PROFINET controller role that exchanges cyclic IO with
// devices, virtual-PLC timing that couples the scan cycle to the host
// virtualization stack (§2.1), and the classic redundant pair with a
// dedicated sync link (§4's hardware baseline, S7-1500R-style [98]).
package plc

import (
	"fmt"
	"time"
)

// Area selects a process-image region in an operand address.
type Area uint8

// Operand areas, IEC style: %I inputs, %Q outputs, %M memory flags.
const (
	AreaInput  Area = iota // %I
	AreaOutput             // %Q
	AreaMemory             // %M
)

// String returns the IEC prefix.
func (a Area) String() string {
	switch a {
	case AreaInput:
		return "%I"
	case AreaOutput:
		return "%Q"
	case AreaMemory:
		return "%M"
	}
	return fmt.Sprintf("area(%d)", uint8(a))
}

// BitAddr addresses one bit, byte.bit style (e.g. %I0.3).
type BitAddr struct {
	Area Area
	Byte uint16
	Bit  uint8 // 0-7
}

// String renders the address IEC style.
func (b BitAddr) String() string { return fmt.Sprintf("%s%d.%d", b.Area, b.Byte, b.Bit) }

// ILOp is an instruction-list operation.
type ILOp uint8

// IL operations. The accumulator (RLO, "result of logic operation") is
// boolean; word operations use a separate integer accumulator.
const (
	ILLoad   ILOp = iota // RLO = bit
	ILLoadN              // RLO = !bit
	ILAnd                // RLO &= bit
	ILAndN               // RLO &= !bit
	ILOr                 // RLO |= bit
	ILOrN                // RLO |= !bit
	ILXor                // RLO ^= bit
	ILStore              // bit = RLO
	ILStoreN             // bit = !RLO
	ILSet                // if RLO { bit = 1 }
	ILReset              // if RLO { bit = 0 }
	ILNot                // RLO = !RLO

	ILLoadW  // ACC = word at Byte (big-endian uint16)
	ILAddW   // ACC += word
	ILSubW   // ACC -= word
	ILStoreW // word at Byte = ACC
	ILLoadWI // ACC = Imm

	ILTon // on-delay timer: RLO gates timer Timer with preset Imm ms

	// ILCtu is an up-counter: a rising edge of RLO increments counter
	// Timer; RLO becomes Q = (count >= Imm). ILCtuR resets counter
	// Timer when RLO is true. ILRtrig turns RLO into a one-scan pulse
	// on its rising edge (R_TRIG), using edge-memory slot Timer.
	ILCtu
	ILCtuR
	ILRtrig
)

// ILInsn is one IL instruction.
type ILInsn struct {
	Op    ILOp
	Addr  BitAddr
	Imm   uint16
	Timer uint8 // timer index for ILTon
}

// MaxTimers bounds the per-program TON timer pool.
const MaxTimers = 16

// ILProgram is a compiled instruction list.
type ILProgram struct {
	Name  string
	Insns []ILInsn
}

// ilState is the retentive state of one program instance.
type ilState struct {
	memory   [256]byte
	timers   [MaxTimers]tonState
	counters [MaxTimers]ctuState
	edges    [MaxTimers]bool
}

type ctuState struct {
	count uint16
	prev  bool
}

type tonState struct {
	running bool
	started time.Duration // scan-time when the input went true
	done    bool
}

// Image is the process image a scan operates on.
type Image struct {
	Inputs  []byte
	Outputs []byte
}

// Runner executes an ILProgram scan by scan, keeping retentive memory
// and timer state between scans.
type Runner struct {
	prog  *ILProgram
	state ilState
}

// NewRunner instantiates a program.
func NewRunner(p *ILProgram) *Runner { return &Runner{prog: p} }

// Program returns the underlying program.
func (r *Runner) Program() *ILProgram { return r.prog }

// Memory exposes the retentive %M area (for tests and HMI access).
func (r *Runner) Memory() []byte { return r.state.memory[:] }

// Scan executes one pass over img at scan time now (used by timers).
// It returns an error on out-of-range operand addresses.
func (r *Runner) Scan(img Image, now time.Duration) error {
	rlo := false
	var acc uint16
	for pc, in := range r.prog.Insns {
		area, err := r.area(img, in.Addr.Area)
		if err != nil {
			return fmt.Errorf("plc: %s insn %d: %w", r.prog.Name, pc, err)
		}
		switch in.Op {
		case ILLoad, ILLoadN, ILAnd, ILAndN, ILOr, ILOrN, ILXor, ILStore, ILStoreN, ILSet, ILReset:
			if int(in.Addr.Byte) >= len(area) {
				return fmt.Errorf("plc: %s insn %d: address %s out of range", r.prog.Name, pc, in.Addr)
			}
			bit := area[in.Addr.Byte]&(1<<in.Addr.Bit) != 0
			switch in.Op {
			case ILLoad:
				rlo = bit
			case ILLoadN:
				rlo = !bit
			case ILAnd:
				rlo = rlo && bit
			case ILAndN:
				rlo = rlo && !bit
			case ILOr:
				rlo = rlo || bit
			case ILOrN:
				rlo = rlo || !bit
			case ILXor:
				rlo = rlo != bit
			case ILStore:
				setBit(area, in.Addr, rlo)
			case ILStoreN:
				setBit(area, in.Addr, !rlo)
			case ILSet:
				if rlo {
					setBit(area, in.Addr, true)
				}
			case ILReset:
				if rlo {
					setBit(area, in.Addr, false)
				}
			}
		case ILNot:
			rlo = !rlo
		case ILLoadWI:
			acc = in.Imm
		case ILLoadW, ILAddW, ILSubW, ILStoreW:
			if int(in.Addr.Byte)+2 > len(area) {
				return fmt.Errorf("plc: %s insn %d: word address %s out of range", r.prog.Name, pc, in.Addr)
			}
			w := uint16(area[in.Addr.Byte])<<8 | uint16(area[in.Addr.Byte+1])
			switch in.Op {
			case ILLoadW:
				acc = w
			case ILAddW:
				acc += w
			case ILSubW:
				acc -= w
			case ILStoreW:
				area[in.Addr.Byte] = byte(acc >> 8)
				area[in.Addr.Byte+1] = byte(acc)
			}
		case ILCtu:
			if int(in.Timer) >= MaxTimers {
				return fmt.Errorf("plc: %s insn %d: counter %d out of range", r.prog.Name, pc, in.Timer)
			}
			ct := &r.state.counters[in.Timer]
			if rlo && !ct.prev && ct.count < 0xffff {
				ct.count++
			}
			ct.prev = rlo
			rlo = ct.count >= in.Imm
		case ILCtuR:
			if int(in.Timer) >= MaxTimers {
				return fmt.Errorf("plc: %s insn %d: counter %d out of range", r.prog.Name, pc, in.Timer)
			}
			if rlo {
				r.state.counters[in.Timer].count = 0
			}
		case ILRtrig:
			if int(in.Timer) >= MaxTimers {
				return fmt.Errorf("plc: %s insn %d: edge slot %d out of range", r.prog.Name, pc, in.Timer)
			}
			prev := r.state.edges[in.Timer]
			r.state.edges[in.Timer] = rlo
			rlo = rlo && !prev
		case ILTon:
			if int(in.Timer) >= MaxTimers {
				return fmt.Errorf("plc: %s insn %d: timer %d out of range", r.prog.Name, pc, in.Timer)
			}
			t := &r.state.timers[in.Timer]
			preset := time.Duration(in.Imm) * time.Millisecond
			if rlo {
				if !t.running {
					t.running = true
					t.started = now
					t.done = false
				}
				if now-t.started >= preset {
					t.done = true
				}
			} else {
				t.running = false
				t.done = false
			}
			rlo = t.done
		default:
			return fmt.Errorf("plc: %s insn %d: unknown op %d", r.prog.Name, pc, in.Op)
		}
	}
	return nil
}

func (r *Runner) area(img Image, a Area) ([]byte, error) {
	switch a {
	case AreaInput:
		return img.Inputs, nil
	case AreaOutput:
		return img.Outputs, nil
	case AreaMemory:
		return r.state.memory[:], nil
	}
	return nil, fmt.Errorf("unknown area %d", a)
}

func setBit(area []byte, a BitAddr, v bool) {
	if v {
		area[a.Byte] |= 1 << a.Bit
	} else {
		area[a.Byte] &^= 1 << a.Bit
	}
}

// Convenience constructors for readable programs.

// I returns an input bit address.
func I(byteIdx uint16, bit uint8) BitAddr { return BitAddr{AreaInput, byteIdx, bit} }

// Q returns an output bit address.
func Q(byteIdx uint16, bit uint8) BitAddr { return BitAddr{AreaOutput, byteIdx, bit} }

// M returns a memory bit address.
func M(byteIdx uint16, bit uint8) BitAddr { return BitAddr{AreaMemory, byteIdx, bit} }

// LD emits RLO = addr.
func LD(a BitAddr) ILInsn { return ILInsn{Op: ILLoad, Addr: a} }

// LDN emits RLO = !addr.
func LDN(a BitAddr) ILInsn { return ILInsn{Op: ILLoadN, Addr: a} }

// AND emits RLO &= addr.
func AND(a BitAddr) ILInsn { return ILInsn{Op: ILAnd, Addr: a} }

// ANDN emits RLO &= !addr.
func ANDN(a BitAddr) ILInsn { return ILInsn{Op: ILAndN, Addr: a} }

// OR emits RLO |= addr.
func OR(a BitAddr) ILInsn { return ILInsn{Op: ILOr, Addr: a} }

// ST emits addr = RLO.
func ST(a BitAddr) ILInsn { return ILInsn{Op: ILStore, Addr: a} }

// STN emits addr = !RLO.
func STN(a BitAddr) ILInsn { return ILInsn{Op: ILStoreN, Addr: a} }

// SET emits a set-latch.
func SET(a BitAddr) ILInsn { return ILInsn{Op: ILSet, Addr: a} }

// RST emits a reset-latch.
func RST(a BitAddr) ILInsn { return ILInsn{Op: ILReset, Addr: a} }

// TON emits an on-delay timer with preset in milliseconds.
func TON(timer uint8, presetMS uint16) ILInsn { return ILInsn{Op: ILTon, Timer: timer, Imm: presetMS} }

// CTU emits an up-counter with the given preset.
func CTU(counter uint8, preset uint16) ILInsn {
	return ILInsn{Op: ILCtu, Timer: counter, Imm: preset}
}

// CTUR emits a counter reset gated by RLO.
func CTUR(counter uint8) ILInsn { return ILInsn{Op: ILCtuR, Timer: counter} }

// RTRIG emits a rising-edge one-scan pulse using edge slot.
func RTRIG(slot uint8) ILInsn { return ILInsn{Op: ILRtrig, Timer: slot} }
