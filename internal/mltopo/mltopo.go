// Package mltopo reproduces §5's simulation-based topology comparison
// (Fig. 6): the same population of ML inference clients is placed on a
// classic industrial ring, an IT leaf-spine, and a traffic-aware
// ("ML-aware") topology produced by a placement-and-dimensioning
// optimizer, and per-request latency is measured as the client count
// grows. The ring suffers trunk sharing and long converge paths; the
// leaf-spine fixes the fabric but still funnels requests across it to
// centrally-pooled servers; the ML-aware design co-locates fog servers
// with client pods and dimensions the few links that stay hot — which
// is exactly the paper's argument for traffic-aware industrial design.
package mltopo

import (
	"fmt"
	"time"

	"steelnet/internal/frame"
	intnet "steelnet/internal/int"
	"steelnet/internal/mlwork"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/telemetry"
	"steelnet/internal/topo"
)

// intMaxHops bounds mltopo INT stacks: ring topologies can cross far
// more than the frame-level default of 8 switches.
const intMaxHops = 16

// Kind selects one of the three compared topologies.
type Kind int

// Topology kinds, in the paper's legend order.
const (
	LeafSpine Kind = iota
	Ring
	MLAware
)

// String names the kind as in Fig. 6's legend.
func (k Kind) String() string {
	switch k {
	case LeafSpine:
		return "Leaf Spine"
	case Ring:
		return "Ring"
	case MLAware:
		return "ML-aware"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists all compared topologies.
var Kinds = []Kind{LeafSpine, Ring, MLAware}

// Scenario is one simulation cell of Fig. 6.
type Scenario struct {
	Seed    uint64
	Kind    Kind
	Clients int
	Profile mlwork.Profile
	// Deg is the input degradation clients apply (compression chosen by
	// the quality/quantity trade; see mlwork.ChooseCompression).
	Deg mlwork.Degradation
	// Horizon bounds the simulated time.
	Horizon time.Duration
	// ClientsPerServer sets the shared compute budget: one server per
	// this many clients, identical across topologies so only the
	// network differs.
	ClientsPerServer int
	// PlacementOnly disables the ML-aware optimizer's link
	// dimensioning (trunks stay at the 1 Gb/s floor and fog servers on
	// 1 Gb/s attachments) — the ablation separating the two halves of
	// the traffic-aware design.
	PlacementOnly bool
	// Trace, when non-nil, records the cell's frame lifecycle; Metrics,
	// when non-nil, receives every component counter. A shared registry
	// forces Fig. 6 sweeps serial; tracing merges per-cell (see
	// RunFigure6).
	Trace   *telemetry.Tracer
	Metrics *telemetry.Registry
	// INT makes every camera an INT source (flow = client id) and every
	// inference server a sink: request frames arrive carrying the per-
	// switch residence times of their actual path through the fabric.
	INT bool
	// Collector receives terminated stacks (nil with INT set means the
	// harness creates one; see Harness.Collector).
	Collector *intnet.Collector
}

// DefaultScenario fills the Fig. 6 defaults for a kind/app/client cell.
// The legacy topologies (ring, leaf-spine) carry raw camera streams —
// they are network-only designs. The ML-aware design additionally
// applies the quality/quantity trade the paper cites as its input
// ([88]): clients compress as far as a ≥94% predicted-accuracy floor
// allows, which is part of what "aligns inference accuracy with
// network dimensioning".
func DefaultScenario(kind Kind, p mlwork.Profile, clients int) Scenario {
	deg := mlwork.Degradation{CompressionRatio: 1}
	if kind == MLAware {
		deg.CompressionRatio = p.ChooseCompression(0.94, []float64{1, 2, 4, 8})
	}
	return Scenario{
		Seed:             1,
		Kind:             kind,
		Clients:          clients,
		Profile:          p,
		Deg:              deg,
		Horizon:          2 * time.Second,
		ClientsPerServer: 16,
	}
}

// Result is one measured cell.
type Result struct {
	Kind    Kind
	App     string
	Clients int
	// MeanLatencyMS and P99LatencyMS summarize request latency.
	MeanLatencyMS, P99LatencyMS float64
	// LossRate is the fraction of requests with no reply.
	LossRate float64
	// Requests counts completed request/response pairs.
	Requests uint64
}

// built is the instantiated simulation: hosts wired, ready to start.
type built struct {
	engine  *sim.Engine
	net     *simnet.Network
	clients []*mlwork.Client
	servers []*mlwork.Server
	coll    *intnet.Collector
}

// Run executes one scenario and returns its measurements. It is the
// straight-through form of the Harness.
func Run(sc Scenario) Result {
	h := NewHarness(sc)
	h.AdvanceTo(h.Horizon())
	return h.Result()
}

func serverCount(sc Scenario) int {
	n := (sc.Clients + sc.ClientsPerServer - 1) / sc.ClientsPerServer
	if n < 1 {
		n = 1
	}
	return n
}

// assign spreads clients over servers round-robin (hash assignment, as
// a location-unaware orchestrator would).
func assign(i, servers int) int { return i % servers }

// buildRing: the legacy OT shape. One switch per 8 clients closed into
// a ring of 1 Gb/s trunks; all inference servers sit in the control
// cabinet at switch 0 (where compute traditionally lives), so requests
// converge over shared trunk links.
func buildRing(sc Scenario) built {
	e := sim.NewEngine(sc.Seed)
	// One switch per two stations, as on a daisy-chained production
	// line: the ring's diameter grows with the plant.
	nSw := sc.Clients / 2
	if nSw < 4 {
		nSw = 4
	}
	g := topo.NewGraph("ml-ring")
	sw := make([]topo.NodeID, nSw)
	for i := range sw {
		sw[i] = g.AddNode(fmt.Sprintf("sw%d", i), topo.KindSwitch)
		if i > 0 {
			g.AddEdge(sw[i-1], sw[i], 1e9, 500)
		}
	}
	g.AddEdge(sw[nSw-1], sw[0], 1e9, 500)
	nSrv := serverCount(sc)
	clientNode := make([]topo.NodeID, sc.Clients)
	serverNode := make([]topo.NodeID, nSrv)
	for i := 0; i < sc.Clients; i++ {
		clientNode[i] = g.AddNode(fmt.Sprintf("cam%d", i), topo.KindHost)
		g.AddEdge(sw[(i/2)%nSw], clientNode[i], 1e9, 500)
	}
	for i := 0; i < nSrv; i++ {
		serverNode[i] = g.AddNode(fmt.Sprintf("srv%d", i), topo.KindServer)
		g.AddEdge(sw[0], serverNode[i], 1e9, 500)
	}
	return instantiate(e, g, sc, clientNode, serverNode, nil)
}

// buildLeafSpine: the IT shape. 4 spines, one leaf per 16 endpoints,
// 2.5 Gb/s fabric (a mid-range industrial-DC build), 1 Gb/s access.
// Servers are pooled on a dedicated compute leaf, so most requests
// cross the fabric (the paper: "the leaf spine can only slightly
// improve the performance").
func buildLeafSpine(sc Scenario) built {
	e := sim.NewEngine(sc.Seed)
	nSrv := serverCount(sc)
	leaves := (sc.Clients+15)/16 + 1 // +1 compute leaf
	g := topo.NewGraph("ml-leafspine")
	spines := make([]topo.NodeID, 4)
	for i := range spines {
		spines[i] = g.AddNode(fmt.Sprintf("spine%d", i), topo.KindSwitch)
	}
	leaf := make([]topo.NodeID, leaves)
	for i := range leaf {
		leaf[i] = g.AddNode(fmt.Sprintf("leaf%d", i), topo.KindSwitch)
		for _, s := range spines {
			g.AddEdge(leaf[i], s, 2.5e9, 500)
		}
	}
	clientNode := make([]topo.NodeID, sc.Clients)
	for i := 0; i < sc.Clients; i++ {
		clientNode[i] = g.AddNode(fmt.Sprintf("cam%d", i), topo.KindHost)
		g.AddEdge(leaf[i/16], clientNode[i], 1e9, 500)
	}
	serverNode := make([]topo.NodeID, nSrv)
	compute := leaf[leaves-1]
	for i := 0; i < nSrv; i++ {
		serverNode[i] = g.AddNode(fmt.Sprintf("srv%d", i), topo.KindServer)
		g.AddEdge(compute, serverNode[i], 1e9, 500)
	}
	return instantiate(e, g, sc, clientNode, serverNode, nil)
}

// instantiate wires the graph and creates clients/servers; assignFn
// nil means round-robin assignment.
func instantiate(e *sim.Engine, g *topo.Graph, sc Scenario, clientNode, serverNode []topo.NodeID, assignFn func(i int) int) built {
	net := simnet.Build(e, g, simnet.DefaultSwitchConfig)
	// Byte-deep buffers: commodity switches hold hundreds of KB per
	// port; the default 256-frame class limit would incast-drop the
	// fragmented camera frames and turn queueing into loss.
	net.SetSwitchQueueDepth(4096)
	net.InstallStaticRoutes()
	if sc.Trace != nil {
		net.SetTracer(sc.Trace)
	}
	if sc.Metrics != nil {
		net.RegisterMetrics(sc.Metrics)
	}
	b := built{engine: e, net: net}
	var intPool *frame.INTPool
	if sc.INT {
		b.coll = sc.Collector
		if b.coll == nil {
			b.coll = intnet.NewCollector()
		}
		// One stack free list per cell: camera sources Get, server
		// sinks Put — telemetry stacks recycle like frames do.
		intPool = &frame.INTPool{}
	}
	// One frame pool per cell: request fragments die at the server and
	// responses die at the client, so per-endpoint pools leave every
	// client allocating fresh ~MTU payloads forever while the server
	// free list grows. A shared pool closes that loop; recycled payload
	// bodies are zero either way (only the 13-byte header is written),
	// so frame bytes — and digests — are unchanged.
	pool := &frame.Pool{}
	servers := make([]*mlwork.Server, len(serverNode))
	for i, n := range serverNode {
		servers[i] = mlwork.AttachServer(e, net.Host(n), sc.Profile)
		servers[i].UsePool(pool)
		if b.coll != nil {
			net.Host(n).SetINTSink(b.coll)
			net.Host(n).SetINTPool(intPool)
		}
	}
	clients := make([]*mlwork.Client, len(clientNode))
	for i, n := range clientNode {
		sIdx := assign(i, len(serverNode))
		if assignFn != nil {
			sIdx = assignFn(i)
		}
		clients[i] = mlwork.AttachClient(e, net.Host(n), uint32(i+1), net.Host(serverNode[sIdx]).MAC(), sc.Profile, sc.Deg)
		clients[i].UsePool(pool)
		if b.coll != nil {
			// Flow = client id, matching mlwork's request flow labels.
			// Non-strict: telemetry must never cost a camera frame.
			net.Host(n).SetINTSource(uint32(i+1), intMaxHops, false)
			net.Host(n).SetINTPool(intPool)
		}
	}
	b.clients = clients
	b.servers = servers
	return b
}
