package mltopo

import (
	"strings"
	"testing"
	"time"

	"steelnet/internal/mlwork"
)

// quickScenario trims the horizon so unit tests stay fast; the full
// 2 s horizon is used by the Figure 6 bench.
func quickScenario(kind Kind, p mlwork.Profile, clients int) Scenario {
	sc := DefaultScenario(kind, p, clients)
	sc.Horizon = 800 * time.Millisecond
	return sc
}

func TestFigure6OrderingObjectIdentification(t *testing.T) {
	for _, clients := range []int{32, 128} {
		var lat [3]float64
		for i, kind := range []Kind{MLAware, LeafSpine, Ring} {
			lat[i] = Run(quickScenario(kind, mlwork.ObjectIdentification, clients)).MeanLatencyMS
		}
		if !(lat[0] < lat[1] && lat[1] < lat[2]) {
			t.Fatalf("clients=%d: MLA=%.2f LS=%.2f Ring=%.2f, want strictly increasing", clients, lat[0], lat[1], lat[2])
		}
	}
}

func TestFigure6OrderingDefectDetection(t *testing.T) {
	for _, clients := range []int{32, 128} {
		var lat [3]float64
		for i, kind := range []Kind{MLAware, LeafSpine, Ring} {
			lat[i] = Run(quickScenario(kind, mlwork.DefectDetection, clients)).MeanLatencyMS
		}
		if !(lat[0] < lat[1] && lat[1] < lat[2]) {
			t.Fatalf("clients=%d: MLA=%.2f LS=%.2f Ring=%.2f, want strictly increasing", clients, lat[0], lat[1], lat[2])
		}
	}
}

func TestRingDegradesFastestWithScale(t *testing.T) {
	growth := func(kind Kind) float64 {
		small := Run(quickScenario(kind, mlwork.ObjectIdentification, 32)).MeanLatencyMS
		big := Run(quickScenario(kind, mlwork.ObjectIdentification, 256)).MeanLatencyMS
		return big - small
	}
	ring := growth(Ring)
	ls := growth(LeafSpine)
	mla := growth(MLAware)
	if !(ring > ls && ls > mla) {
		t.Fatalf("growth ring=%.2f ls=%.2f mla=%.2f, want ring steepest", ring, ls, mla)
	}
	if mla > 0.3 {
		t.Fatalf("ML-aware growth = %.2fms, want ≈flat", mla)
	}
}

func TestLatenciesInLowMillisecondBand(t *testing.T) {
	for _, kind := range Kinds {
		r := Run(quickScenario(kind, mlwork.ObjectIdentification, 64))
		if r.MeanLatencyMS < 0.5 || r.MeanLatencyMS > 10 {
			t.Fatalf("%v mean = %.2fms, outside the paper's low-ms band", kind, r.MeanLatencyMS)
		}
	}
}

func TestLowLossEverywhere(t *testing.T) {
	for _, kind := range Kinds {
		r := Run(quickScenario(kind, mlwork.ObjectIdentification, 128))
		if r.LossRate > 0.05 {
			t.Fatalf("%v loss = %.3f", kind, r.LossRate)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := quickScenario(Ring, mlwork.ObjectIdentification, 32)
	a, b := Run(sc), Run(sc)
	if a.MeanLatencyMS != b.MeanLatencyMS || a.Requests != b.Requests {
		t.Fatal("same seed diverged")
	}
}

func TestRunRejectsBadScenario(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero clients accepted")
		}
	}()
	Run(Scenario{Clients: 0, Kind: Ring, Profile: mlwork.ObjectIdentification})
}

func TestOptimizePlacesComputeAtDemand(t *testing.T) {
	// Pod 2 has triple demand: it must get the first server.
	demands := []Demand{
		{ClientIdx: 0, BytesPerSecond: 1e6, Pod: 0},
		{ClientIdx: 1, BytesPerSecond: 1e6, Pod: 1},
		{ClientIdx: 2, BytesPerSecond: 3e6, Pod: 2},
	}
	plan := Optimize(demands, 1, 3, 0.4)
	if plan.PodOfServer[0] != 2 {
		t.Fatalf("server placed at pod %d, want 2", plan.PodOfServer[0])
	}
	if plan.ServerOfClient[2] != 0 {
		t.Fatal("heavy client not assigned to its local server")
	}
}

func TestOptimizeLocalityHighWithEnoughServers(t *testing.T) {
	demands := make([]Demand, 64)
	for i := range demands {
		demands[i] = Demand{ClientIdx: i, BytesPerSecond: 1e6, Pod: i / 16}
	}
	plan := Optimize(demands, 4, 4, 0.4)
	if f := plan.LocalityFraction(demands); f != 1 {
		t.Fatalf("locality = %.2f, want 1 with one server per pod", f)
	}
}

func TestOptimizeDimensionsHotTrunks(t *testing.T) {
	// All demand in pod 0, but server forced elsewhere by placing two
	// servers with one pod dominating: cross traffic must raise trunks.
	demands := make([]Demand, 32)
	for i := range demands {
		demands[i] = Demand{ClientIdx: i, BytesPerSecond: 50e6, Pod: i % 2}
	}
	plan := Optimize(demands, 1, 2, 0.4)
	// One server serves both pods: the server-less pod's trunk must be
	// dimensioned above the 1G floor (16×50MB/s×8/0.4 = 16Gb/s).
	crossPod := 1 - plan.PodOfServer[0]
	if plan.PodTrunkBps[crossPod] <= 1e9 {
		t.Fatalf("hot trunk = %v bps, want dimensioned above floor", plan.PodTrunkBps[crossPod])
	}
}

func TestOptimizeDefaults(t *testing.T) {
	plan := Optimize([]Demand{{ClientIdx: 0, BytesPerSecond: 1, Pod: 0}}, 0, 1, -1)
	if len(plan.PodOfServer) != 1 {
		t.Fatal("server floor not applied")
	}
	if plan.AggBps < 10e9 {
		t.Fatal("agg floor not applied")
	}
}

func TestMLAwareUsesCompressionTrade(t *testing.T) {
	scRaw := DefaultScenario(Ring, mlwork.ObjectIdentification, 32)
	scMLA := DefaultScenario(MLAware, mlwork.ObjectIdentification, 32)
	if scRaw.Deg.CompressionRatio != 1 {
		t.Fatalf("legacy topology compresses: %v", scRaw.Deg.CompressionRatio)
	}
	if scMLA.Deg.CompressionRatio <= 1 {
		t.Fatal("ML-aware does not use the quality/quantity trade")
	}
	// The compression chosen still honors the accuracy floor.
	acc := mlwork.ObjectIdentification.Accuracy(mlwork.Degradation{CompressionRatio: scMLA.Deg.CompressionRatio})
	if acc < 0.94 {
		t.Fatalf("accuracy = %.3f under floor", acc)
	}
}

func TestCellLookup(t *testing.T) {
	results := []Result{{Kind: Ring, App: "a", Clients: 32, MeanLatencyMS: 5}}
	if _, ok := Cell(results, "a", Ring, 32); !ok {
		t.Fatal("cell not found")
	}
	if _, ok := Cell(results, "a", Ring, 64); ok {
		t.Fatal("phantom cell found")
	}
}

func TestRenderFigure6(t *testing.T) {
	cfg := DefaultFigure6Config()
	cfg.ClientCounts = []int{16}
	cfg.Horizon = 400 * time.Millisecond
	out := RenderFigure6(RunFigure6(cfg))
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "ML-aware") {
		t.Fatalf("render = %q", out)
	}
	if !strings.Contains(out, "object-identification") || !strings.Contains(out, "defect-detection") {
		t.Fatal("missing app panels")
	}
}

func TestKindString(t *testing.T) {
	if Ring.String() != "Ring" || LeafSpine.String() != "Leaf Spine" || MLAware.String() != "ML-aware" {
		t.Fatal("kind names broken")
	}
}
