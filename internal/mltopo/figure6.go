package mltopo

import (
	"fmt"

	intnet "steelnet/internal/int"
	"steelnet/internal/metrics"
	"steelnet/internal/mlwork"
	"steelnet/internal/sweep"
	"steelnet/internal/telemetry"
)

// Apps are the two Fig. 6 applications in panel order.
var Apps = []mlwork.Profile{mlwork.ObjectIdentification, mlwork.DefectDetection}

// figure6Cell is one grid coordinate of the sweep.
type figure6Cell struct {
	app     mlwork.Profile
	clients int
	kind    Kind
}

// figure6Grid expands the config into the cell list (app-major,
// kind-minor order) and the effective worker count.
func figure6Grid(cfg Figure6Config) ([]figure6Cell, int) {
	if len(cfg.ClientCounts) == 0 {
		cfg.ClientCounts = DefaultFigure6Config().ClientCounts
	}
	cells := make([]figure6Cell, 0, len(Apps)*len(cfg.ClientCounts)*len(Kinds))
	for _, app := range Apps {
		for _, clients := range cfg.ClientCounts {
			for _, kind := range Kinds {
				cells = append(cells, figure6Cell{app: app, clients: clients, kind: kind})
			}
		}
	}
	workers := cfg.Workers
	if cfg.Trace != nil || cfg.Metrics != nil || cfg.INT {
		// A shared tracer, registry, or INT collector cannot be written
		// from parallel cells; telemetry-attached resumable sweeps run
		// serially (RunFigure6 merges per-cell buffers instead).
		workers = 1
	}
	return cells, workers
}

// figure6Fn is the cell body: one independent scenario per index.
func figure6Fn(cfg Figure6Config, cells []figure6Cell) func(i int) Result {
	return func(i int) Result {
		c := cells[i]
		sc := DefaultScenario(c.kind, c.app, c.clients)
		sc.Seed = cfg.Seed
		if cfg.Horizon > 0 {
			sc.Horizon = cfg.Horizon
		}
		sc.Trace = cfg.Trace
		sc.Metrics = cfg.Metrics
		sc.INT = cfg.INT
		sc.Collector = cfg.Collector
		return Run(sc)
	}
}

// RunFigure6 sweeps apps × topologies × client counts and returns all
// cells, in app-major, kind-minor order. Each cell is an independent
// scenario with its own engine, so the grid runs across cfg.Workers
// goroutines; results merge in the same order as a serial sweep, and
// the rendered panels are byte-identical for any worker count. Tracing
// and INT collection stay parallel: each cell writes private buffers
// that merge into cfg.Trace / cfg.Collector in cell order afterwards.
// Only a shared metrics registry forces the sweep serial.
func RunFigure6(cfg Figure6Config) []Result {
	cells, _ := figure6Grid(cfg)
	workers := cfg.Workers
	if cfg.Metrics != nil {
		workers = 1
	}
	type cellOut struct {
		res  Result
		tr   *telemetry.Tracer
		coll *intnet.Collector
	}
	outs := sweep.Run(workers, len(cells), func(i int) cellOut {
		c := cfg
		var o cellOut
		if cfg.Trace != nil {
			o.tr = telemetry.NewTracer(nil) // bound to the cell's engine by NewHarness
			c.Trace = o.tr
		}
		if cfg.INT {
			o.coll = intnet.NewCollector()
			c.Collector = o.coll
		}
		o.res = figure6Fn(c, cells)(i)
		return o
	})
	results := make([]Result, len(outs))
	for i, o := range outs {
		results[i] = o.res
		if o.tr != nil {
			cfg.Trace.MergeFrom(o.tr)
		}
		if o.coll != nil && cfg.Collector != nil {
			cfg.Collector.Absorb(o.coll)
		}
	}
	return results
}

// RunFigure6Resumable is RunFigure6 with sweep-level checkpointing:
// completed cells persist to path and are skipped when the sweep is
// restarted with the same configuration.
func RunFigure6Resumable(cfg Figure6Config, path string) ([]Result, error) {
	cells, workers := figure6Grid(cfg)
	return sweep.RunResumable(workers, len(cells), figure6Checkpointer(path), figure6Fn(cfg, cells))
}

// Cell finds the result for (app, kind, clients), or false.
func Cell(results []Result, app string, kind Kind, clients int) (Result, bool) {
	for _, r := range results {
		if r.App == app && r.Kind == kind && r.Clients == clients {
			return r, true
		}
	}
	return Result{}, false
}

// RenderFigure6 renders the sweep as the paper's two panels.
func RenderFigure6(results []Result) string {
	var out string
	for _, app := range Apps {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 6 (%s): mean inference latency (ms)", app.Name),
			"clients", Ring.String(), LeafSpine.String(), MLAware.String())
		counts := map[int]bool{}
		var order []int
		for _, r := range results {
			if r.App == app.Name && !counts[r.Clients] {
				counts[r.Clients] = true
				order = append(order, r.Clients)
			}
		}
		for _, n := range order {
			row := []string{fmt.Sprintf("%d", n)}
			for _, kind := range []Kind{Ring, LeafSpine, MLAware} {
				if r, ok := Cell(results, app.Name, kind, n); ok {
					row = append(row, fmt.Sprintf("%.2f", r.MeanLatencyMS))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
		out += t.String()
	}
	return out
}
