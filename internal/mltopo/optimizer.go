package mltopo

import (
	"fmt"
	"time"

	intnet "steelnet/internal/int"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
	"steelnet/internal/topo"
)

// Demand describes one client's offered load for the optimizer.
type Demand struct {
	ClientIdx int
	// BytesPerSecond is the client's mean request volume after the
	// quality/quantity compression trade.
	BytesPerSecond float64
	// Pod is the client's physical location (production cell index);
	// the optimizer cannot move clients, only compute and links.
	Pod int
}

// Plan is the optimizer's output: where fog servers go, how clients
// map to them, and which links get dimensioned up.
type Plan struct {
	// PodOfServer maps each server to the pod switch it is placed at.
	PodOfServer []int
	// ServerOfClient maps each client index to its server index.
	ServerOfClient []int
	// PodTrunkBps is the dimensioned uplink rate per pod.
	PodTrunkBps []float64
	// AggBps is the rate of the aggregation links.
	AggBps float64
}

// Optimize is the traffic-aware placement-and-dimensioning heuristic
// behind the "ML-aware" topology: group clients by physical pod, place
// the compute budget (nServers) greedily at the pods with the highest
// residual demand so requests stay local, assign every client to the
// nearest (same-pod, else least-loaded) server, and dimension each pod
// trunk to a target utilization of its remaining cross-pod traffic.
func Optimize(demands []Demand, nServers, nPods int, targetUtil float64) Plan {
	if nServers < 1 {
		nServers = 1
	}
	if targetUtil <= 0 || targetUtil > 1 {
		targetUtil = 0.4
	}
	podDemand := make([]float64, nPods)
	for _, d := range demands {
		podDemand[d.Pod] += d.BytesPerSecond
	}
	// Greedy placement: repeatedly give a server to the pod with the
	// most unserved demand. A server "serves" up to its fair share.
	plan := Plan{
		PodOfServer:    make([]int, nServers),
		ServerOfClient: make([]int, len(demands)),
		PodTrunkBps:    make([]float64, nPods),
	}
	var total float64
	for _, d := range podDemand {
		total += d
	}
	perServer := total / float64(nServers)
	residual := append([]float64(nil), podDemand...)
	for s := 0; s < nServers; s++ {
		best := 0
		for p := 1; p < nPods; p++ {
			if residual[p] > residual[best] {
				best = p
			}
		}
		plan.PodOfServer[s] = best
		residual[best] -= perServer
	}
	// Assignment: same-pod server with the least load, else the
	// globally least-loaded server.
	load := make([]float64, nServers)
	for i, d := range demands {
		bestIdx, bestLoad := -1, 0.0
		for s := 0; s < nServers; s++ {
			if plan.PodOfServer[s] != d.Pod {
				continue
			}
			if bestIdx == -1 || load[s] < bestLoad {
				bestIdx, bestLoad = s, load[s]
			}
		}
		if bestIdx == -1 {
			for s := 0; s < nServers; s++ {
				if bestIdx == -1 || load[s] < bestLoad {
					bestIdx, bestLoad = s, load[s]
				}
			}
		}
		plan.ServerOfClient[i] = bestIdx
		load[bestIdx] += d.BytesPerSecond
	}
	// Dimensioning: each pod trunk carries the traffic of its clients
	// served remotely plus remote clients served here; provision for
	// targetUtil, with a 1 Gb/s floor.
	cross := make([]float64, nPods)
	for i, d := range demands {
		sPod := plan.PodOfServer[plan.ServerOfClient[i]]
		if sPod != d.Pod {
			cross[d.Pod] += d.BytesPerSecond
			cross[sPod] += d.BytesPerSecond
		}
	}
	var maxTrunk float64
	for p := 0; p < nPods; p++ {
		bps := cross[p] * 8 / targetUtil
		if bps < 1e9 {
			bps = 1e9
		}
		plan.PodTrunkBps[p] = bps
		if bps > maxTrunk {
			maxTrunk = bps
		}
	}
	plan.AggBps = maxTrunk * 2
	if plan.AggBps < 10e9 {
		plan.AggBps = 10e9
	}
	return plan
}

// LocalityFraction returns the fraction of demand served in-pod — the
// optimizer's headline metric.
func (p Plan) LocalityFraction(demands []Demand) float64 {
	var local, total float64
	for i, d := range demands {
		total += d.BytesPerSecond
		if p.PodOfServer[p.ServerOfClient[i]] == d.Pod {
			local += d.BytesPerSecond
		}
	}
	if total == 0 {
		return 1
	}
	return local / total
}

// buildMLAware: the traffic-aware design. Clients stay in their pods
// (one pod switch per 16 clients, as in the leaf-spine); the optimizer
// places the same server budget at pod switches, assigns clients to
// local fog servers, and dimensions pod trunks to two aggregation
// switches.
func buildMLAware(sc Scenario) built {
	e := sim.NewEngine(sc.Seed)
	nSrv := serverCount(sc)
	nPods := (sc.Clients + 15) / 16
	if nPods < 1 {
		nPods = 1
	}
	bytesPerSec := float64(sc.Profile.WireBytes(sc.Deg)) / sc.Profile.Period.Seconds()
	demands := make([]Demand, sc.Clients)
	for i := range demands {
		demands[i] = Demand{ClientIdx: i, BytesPerSecond: bytesPerSec, Pod: i / 16}
	}
	plan := Optimize(demands, nSrv, nPods, 0.4)
	trunk := func(p int) float64 {
		if sc.PlacementOnly {
			return 1e9
		}
		return plan.PodTrunkBps[p]
	}
	fogAttach := 10e9
	if sc.PlacementOnly {
		fogAttach = 1e9
	}

	g := topo.NewGraph("ml-aware")
	agg := []topo.NodeID{
		g.AddNode("agg0", topo.KindSwitch),
		g.AddNode("agg1", topo.KindSwitch),
	}
	pods := make([]topo.NodeID, nPods)
	for p := 0; p < nPods; p++ {
		pods[p] = g.AddNode(fmt.Sprintf("pod%d", p), topo.KindSwitch)
		for _, a := range agg {
			g.AddEdge(pods[p], a, trunk(p), 500)
		}
	}
	clientNode := make([]topo.NodeID, sc.Clients)
	for i := 0; i < sc.Clients; i++ {
		clientNode[i] = g.AddNode(fmt.Sprintf("cam%d", i), topo.KindHost)
		g.AddEdge(pods[i/16], clientNode[i], 1e9, 500)
	}
	serverNode := make([]topo.NodeID, nSrv)
	for s := 0; s < nSrv; s++ {
		serverNode[s] = g.AddNode(fmt.Sprintf("fog%d", s), topo.KindServer)
		g.AddEdge(pods[plan.PodOfServer[s]], serverNode[s], fogAttach, 500)
	}
	return instantiate(e, g, sc, clientNode, serverNode, func(i int) int {
		return plan.ServerOfClient[i]
	})
}

// Figure6Config parameterizes the full Fig. 6 sweep.
type Figure6Config struct {
	Seed         uint64
	ClientCounts []int
	Horizon      time.Duration
	// Workers bounds the goroutines running sweep cells. <= 0 selects
	// runtime.NumCPU(); 1 runs serially. Output is identical either way.
	Workers int
	// Trace and Metrics, when non-nil, are attached to every cell. A
	// shared registry forces the sweep serial; tracing stays parallel
	// (cells trace privately and merge in cell order). Resumable sweeps
	// still force serial under either.
	Trace   *telemetry.Tracer
	Metrics *telemetry.Registry
	// INT attaches in-band telemetry to every cell; per-cell collectors
	// are absorbed into Collector (when non-nil) in cell order.
	INT       bool
	Collector *intnet.Collector
}

// DefaultFigure6Config matches the paper's x-axis.
func DefaultFigure6Config() Figure6Config {
	return Figure6Config{Seed: 1, ClientCounts: []int{32, 64, 128, 256}, Horizon: 2 * time.Second}
}
