package mltopo

import (
	"fmt"
	"io"
	"time"

	"steelnet/internal/checkpoint"
	intnet "steelnet/internal/int"
	"steelnet/internal/metrics"
	"steelnet/internal/mlwork"
	"steelnet/internal/sim"
	"steelnet/internal/sweep"
	"steelnet/internal/telemetry"
)

// CheckpointKind tags this experiment's checkpoint files.
const CheckpointKind = "mltopo"

// Harness is the resumable form of one Fig. 6 cell: topology built,
// clients started, advanced in steps, checkpointable at any instant.
type Harness struct {
	sc Scenario
	b  built
}

// NewHarness builds one cell without running it: the topology is
// instantiated and every client's first request is scheduled.
func NewHarness(sc Scenario) *Harness {
	if sc.Clients < 1 {
		panic("mltopo: need at least one client")
	}
	if sc.ClientsPerServer < 1 {
		sc.ClientsPerServer = 16
	}
	if sc.Deg.CompressionRatio < 1 {
		sc.Deg.CompressionRatio = 1
	}
	var b built
	switch sc.Kind {
	case Ring:
		b = buildRing(sc)
	case LeafSpine:
		b = buildLeafSpine(sc)
	case MLAware:
		b = buildMLAware(sc)
	default:
		panic(fmt.Sprintf("mltopo: unknown kind %d", sc.Kind))
	}
	// Desynchronize clients across the period, as independent cameras
	// would be.
	rng := b.engine.RNG("phase")
	for _, c := range b.clients {
		c.Start(sim.Time(rng.DurationRange(0, sc.Profile.Period)))
	}
	return &Harness{sc: sc, b: b}
}

// Engine returns the harness's engine.
func (h *Harness) Engine() *sim.Engine { return h.b.engine }

// Collector returns the INT collector (nil unless sc.INT).
func (h *Harness) Collector() *intnet.Collector { return h.b.coll }

// Horizon returns the configured end of the run.
func (h *Harness) Horizon() sim.Time { return sim.Time(h.sc.Horizon) }

// AdvanceTo runs the cell up to instant t.
func (h *Harness) AdvanceTo(t sim.Time) { h.b.engine.RunUntil(t) }

// Result collects the cell's measurements at the current instant. It is
// non-destructive: the harness can keep advancing afterwards.
func (h *Harness) Result() Result {
	lat := metrics.NewSeries(1024)
	var completed uint64
	for _, c := range h.b.clients {
		for _, v := range c.Latencies.Samples() {
			lat.Add(v)
		}
		completed += c.Completed
	}
	res := Result{
		Kind:          h.sc.Kind,
		App:           h.sc.Profile.Name,
		Clients:       h.sc.Clients,
		MeanLatencyMS: lat.Mean(),
		P99LatencyMS:  lat.P99(),
		Requests:      completed,
	}
	var lost, total float64
	for _, c := range h.b.clients {
		lost += c.LossRate()
		total++
	}
	res.LossRate = lost / total
	return res
}

// FoldState folds the cell's live state: engine, the whole network
// (switches, hosts, links), every client and server.
func (h *Harness) FoldState(d *checkpoint.Digest) {
	h.b.engine.FoldState(d)
	h.b.net.FoldState(d)
	d.Int(len(h.b.clients))
	for _, c := range h.b.clients {
		c.FoldState(d)
	}
	d.Int(len(h.b.servers))
	for _, s := range h.b.servers {
		s.FoldState(d)
	}
	if h.b.coll != nil {
		h.b.coll.FoldState(d)
	}
}

// Digest returns the state digest at the current instant.
func (h *Harness) Digest() uint64 {
	d := checkpoint.NewDigest()
	h.FoldState(d)
	return d.Sum()
}

// Save writes a replay-anchored checkpoint of the cell to w.
func (h *Harness) Save(w io.Writer) error {
	e := checkpoint.NewEncoder()
	encodeScenario(e, h.sc)
	return checkpoint.WriteHarness(w, CheckpointKind, e.Data(), int64(h.b.engine.Now()), h.Digest())
}

// Restore reads a checkpoint, rebuilds the cell and replays to the
// checkpointed instant, verifying the state digest.
func Restore(r io.Reader, tracer *telemetry.Tracer, registry *telemetry.Registry) (*Harness, error) {
	return RestoreWithCollector(r, tracer, registry, nil)
}

// RestoreWithCollector is Restore with an INT collector attachment:
// when the checkpointed scenario has INT enabled and coll is non-nil,
// the replay feeds coll (and anything chained on its OnSink — the SLO
// watchdog) instead of a private collector. coll must be empty; replay
// repopulates it from instant zero.
func RestoreWithCollector(r io.Reader, tracer *telemetry.Tracer, registry *telemetry.Registry, coll *intnet.Collector) (*Harness, error) {
	cfgBytes, at, digest, err := checkpoint.ReadHarness(r, CheckpointKind)
	if err != nil {
		return nil, err
	}
	d := checkpoint.NewDecoder(cfgBytes)
	sc := decodeScenario(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("mltopo: bad checkpoint config: %w", err)
	}
	sc.Trace = tracer
	sc.Metrics = registry
	sc.Collector = coll
	h := NewHarness(sc)
	h.AdvanceTo(sim.Time(at))
	if got := h.Digest(); got != digest {
		return nil, &checkpoint.DivergenceError{Kind: CheckpointKind, At: at, Recorded: digest, Replayed: got}
	}
	return h, nil
}

// figure6Checkpointer persists completed Fig. 6 cells for resumable
// sweeps (see sweep.RunResumable).
func figure6Checkpointer(path string) sweep.Checkpointer[Result] {
	return sweep.Checkpointer[Result]{
		Path: path,
		Kind: "figure6",
		Encode: func(e *checkpoint.Encoder, r Result) {
			e.Int(int(r.Kind))
			e.Str(r.App)
			e.Int(r.Clients)
			e.F64(r.MeanLatencyMS)
			e.F64(r.P99LatencyMS)
			e.F64(r.LossRate)
			e.U64(r.Requests)
		},
		Decode: func(d *checkpoint.Decoder) Result {
			return Result{
				Kind:          Kind(d.Int()),
				App:           d.Str(),
				Clients:       d.Int(),
				MeanLatencyMS: d.F64(),
				P99LatencyMS:  d.F64(),
				LossRate:      d.F64(),
				Requests:      d.U64(),
			}
		},
	}
}

func encodeScenario(e *checkpoint.Encoder, sc Scenario) {
	e.U64(sc.Seed)
	e.Int(int(sc.Kind))
	e.Int(sc.Clients)
	e.Str(sc.Profile.Name)
	e.Int(sc.Profile.FrameBytes)
	e.Int(sc.Profile.ResultBytes)
	e.I64(int64(sc.Profile.Period))
	e.I64(int64(sc.Profile.InferCPU))
	e.I64(int64(sc.Profile.Deadline))
	e.F64(sc.Profile.BaseAccuracy)
	e.F64(sc.Profile.CompressionSensitivity)
	e.F64(sc.Profile.LossSensitivity)
	e.F64(sc.Profile.JitterSensitivity)
	e.F64(sc.Deg.CompressionRatio)
	e.F64(sc.Deg.LossRate)
	e.I64(int64(sc.Deg.Jitter))
	e.I64(int64(sc.Horizon))
	e.Int(sc.ClientsPerServer)
	e.Bool(sc.PlacementOnly)
	e.Bool(sc.INT)
}

func decodeScenario(d *checkpoint.Decoder) Scenario {
	return Scenario{
		Seed:    d.U64(),
		Kind:    Kind(d.Int()),
		Clients: d.Int(),
		Profile: mlwork.Profile{
			Name:                   d.Str(),
			FrameBytes:             d.Int(),
			ResultBytes:            d.Int(),
			Period:                 time.Duration(d.I64()),
			InferCPU:               time.Duration(d.I64()),
			Deadline:               time.Duration(d.I64()),
			BaseAccuracy:           d.F64(),
			CompressionSensitivity: d.F64(),
			LossSensitivity:        d.F64(),
			JitterSensitivity:      d.F64(),
		},
		Deg: mlwork.Degradation{
			CompressionRatio: d.F64(),
			LossRate:         d.F64(),
			Jitter:           time.Duration(d.I64()),
		},
		Horizon:          time.Duration(d.I64()),
		ClientsPerServer: d.Int(),
		PlacementOnly:    d.Bool(),
		INT:              d.Bool(),
	}
}
