package cli

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"steelnet/internal/frame"
	"steelnet/internal/telemetry"
)

func TestParseInts(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"32,64,128", []int{32, 64, 128}, false},
		{" 1 ,, 2 ", []int{1, 2}, false}, // blanks between commas skipped
		{"7", []int{7}, false},
		{"", nil, true},
		{",,", nil, true},
		{"1,x", nil, true},
		{"0", nil, true},  // not positive
		{"-3", nil, true}, // not positive
	} {
		got, err := ParseInts(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseInts(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// The flag trio must land on the default flag set under the canonical
// names every command shares.
func TestRegisterTelemetryFlags(t *testing.T) {
	tel := RegisterTelemetryFlags()
	for _, name := range []string{"trace", "stats", "cpuprofile"} {
		if flag.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if tel.TracePath != "" || tel.Stats || tel.CPUProfilePath != "" {
		t.Fatalf("defaults not zero: %+v", tel)
	}
	// With no flag given, Begin materializes nothing: the nil
	// Tracer/Registry keep the run on the zero-overhead path.
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	if tel.Tracer != nil || tel.Registry != nil {
		t.Fatal("Begin allocated telemetry without flags")
	}
	if err := tel.End(); err != nil {
		t.Fatal(err)
	}
}

// Begin/End with every flag set: the tracer's events must come back out
// as a loadable JSONL trace plus a valid Chrome trace, the registry
// must exist, and the CPU profile file must be non-empty.
func TestBeginEndWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	tel := &Telemetry{
		TracePath:      filepath.Join(dir, "run.jsonl"),
		Stats:          true,
		CPUProfilePath: filepath.Join(dir, "cpu.prof"),
	}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	if tel.Tracer == nil || tel.Registry == nil {
		t.Fatal("Begin did not materialize tracer/registry")
	}
	tel.Tracer.HostTx("h", &frame.Frame{})
	if err := tel.End(); err != nil {
		t.Fatal(err)
	}

	jf, err := os.Open(tel.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	events, err := telemetry.ReadJSONL(jf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != telemetry.KindHostTx {
		t.Fatalf("replayed events = %+v", events)
	}

	cb, err := os.ReadFile(tel.TracePath + ".chrome.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(cb, &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace empty")
	}

	if st, err := os.Stat(tel.CPUProfilePath); err != nil || st.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
}

func TestEndReportsUnwritableTracePath(t *testing.T) {
	tel := &Telemetry{TracePath: filepath.Join(t.TempDir(), "no-such-dir", "x.jsonl")}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	tel.Tracer.HostTx("h", &frame.Frame{})
	if err := tel.End(); err == nil {
		t.Fatal("End succeeded writing into a missing directory")
	}
}

func TestBeginReportsUnwritableProfilePath(t *testing.T) {
	tel := &Telemetry{CPUProfilePath: filepath.Join(t.TempDir(), "no-such-dir", "cpu.prof")}
	if err := tel.Begin("test"); err == nil {
		t.Fatal("Begin succeeded with unwritable -cpuprofile")
	}
}

func TestMustNilIsNoOp(t *testing.T) {
	Must(nil) // must not exit
}
