package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"steelnet/internal/frame"
	intnet "steelnet/internal/int"
	"steelnet/internal/telemetry"
)

func TestParseInts(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"32,64,128", []int{32, 64, 128}, false},
		{" 1 ,, 2 ", []int{1, 2}, false}, // blanks between commas skipped
		{"7", []int{7}, false},
		{"", nil, true},
		{",,", nil, true},
		{"1,x", nil, true},
		{"0", nil, true},  // not positive
		{"-3", nil, true}, // not positive
	} {
		got, err := ParseInts(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseInts(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseInts(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// -shards overrides -workers when set; otherwise the legacy value
// passes through untouched (including the 0 = NumCPU convention).
func TestWorkersResolution(t *testing.T) {
	for _, tc := range []struct{ workers, shards, want int }{
		{0, 0, 0},
		{3, 0, 3},
		{3, 8, 8},
		{0, 1, 1},
	} {
		if got := Workers(tc.workers, tc.shards); got != tc.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tc.workers, tc.shards, got, tc.want)
		}
	}
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	shards := RegisterShardsFlagOn(fs)
	if err := fs.Parse([]string{"-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	if *shards != 4 {
		t.Fatalf("-shards parsed to %d, want 4", *shards)
	}
}

// The flag trio must land on the default flag set under the canonical
// names every command shares.
func TestRegisterTelemetryFlags(t *testing.T) {
	tel := RegisterTelemetryFlags()
	for _, name := range []string{"trace", "stats", "cpuprofile"} {
		if flag.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if tel.TracePath != "" || tel.Stats || tel.CPUProfilePath != "" {
		t.Fatalf("defaults not zero: %+v", tel)
	}
	// With no flag given, Begin materializes nothing: the nil
	// Tracer/Registry keep the run on the zero-overhead path.
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	if tel.Tracer != nil || tel.Registry != nil {
		t.Fatal("Begin allocated telemetry without flags")
	}
	if err := tel.End(); err != nil {
		t.Fatal(err)
	}
}

// Begin/End with every flag set: the tracer's events must come back out
// as a loadable JSONL trace plus a valid Chrome trace, the registry
// must exist, and the CPU profile file must be non-empty.
func TestBeginEndWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	tel := &Telemetry{
		TracePath:      filepath.Join(dir, "run.jsonl"),
		Stats:          true,
		CPUProfilePath: filepath.Join(dir, "cpu.prof"),
	}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	if tel.Tracer == nil || tel.Registry == nil {
		t.Fatal("Begin did not materialize tracer/registry")
	}
	tel.Tracer.HostTx("h", &frame.Frame{})
	if err := tel.End(); err != nil {
		t.Fatal(err)
	}

	jf, err := os.Open(tel.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	events, err := telemetry.ReadJSONL(jf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != telemetry.KindHostTx {
		t.Fatalf("replayed events = %+v", events)
	}

	cb, err := os.ReadFile(tel.TracePath + ".chrome.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(cb, &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace empty")
	}

	if st, err := os.Stat(tel.CPUProfilePath); err != nil || st.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
}

func TestEndReportsUnwritableTracePath(t *testing.T) {
	tel := &Telemetry{TracePath: filepath.Join(t.TempDir(), "no-such-dir", "x.jsonl")}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	tel.Tracer.HostTx("h", &frame.Frame{})
	if err := tel.End(); err == nil {
		t.Fatal("End succeeded writing into a missing directory")
	}
}

func TestBeginReportsUnwritableProfilePath(t *testing.T) {
	tel := &Telemetry{CPUProfilePath: filepath.Join(t.TempDir(), "no-such-dir", "cpu.prof")}
	if err := tel.Begin("test"); err == nil {
		t.Fatal("Begin succeeded with unwritable -cpuprofile")
	}
}

func TestMustNilIsNoOp(t *testing.T) {
	Must(nil) // must not exit
}

// sinkOne feeds one INT-stamped frame into the collector, e2eNS after
// its source stamp — the shape experiments hand the CLI's collector.
func sinkOne(c *intnet.Collector, seq uint32, e2eNS int64) {
	f := &frame.Frame{}
	f.AttachINT("src", 1, seq, 1000, 4)
	c.SinkINT("dst", f, 1000+e2eNS)
}

// -slo alone implies INT collection, chains the watchdog on the
// collector, and End prints the breach summary without writing files.
func TestBeginSLOImpliesINTCollection(t *testing.T) {
	var out strings.Builder
	tel := &Telemetry{SLOSpec: "latency:*<1µs", Out: &out}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	if tel.Collector == nil || tel.Watchdog == nil {
		t.Fatalf("Begin with -slo: collector=%v watchdog=%v", tel.Collector, tel.Watchdog)
	}
	if tel.Tracer != nil || tel.Recorder != nil || tel.Registry != nil {
		t.Fatal("Begin materialized more than -slo asked for")
	}
	for seq := uint32(1); seq <= 3; seq++ { // 3 consecutive over-bound = breach
		sinkOne(tel.Collector, seq, 2000)
	}
	if err := tel.End(); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "slo: 1 breach(es) recorded\n" {
		t.Fatalf("summary = %q", got)
	}
}

func TestBeginRejectsBadSLOSpec(t *testing.T) {
	tel := &Telemetry{SLOSpec: "latency:*>1µs"}
	err := tel.Begin("test")
	if err == nil || !strings.Contains(err.Error(), "-slo") {
		t.Fatalf("Begin with bad spec: %v", err)
	}
}

// The full in-band trio: -int writes the path digests, -slo adds the
// breach log next to them, -flightrec dumps the recorder (which rode
// the retain-off tracer Begin allocated just for it).
func TestEndWritesINTArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	tel := &Telemetry{
		INTPath:       filepath.Join(dir, "run.int.jsonl"),
		SLOSpec:       "latency:*<1µs",
		FlightRecPath: filepath.Join(dir, "run.rec.jsonl"),
		Out:           &out,
	}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	if tel.Tracer == nil {
		t.Fatal("-flightrec did not allocate its event-bus tracer")
	}
	if tel.Tracer.Len() != 0 {
		t.Fatal("flightrec-only tracer retains events")
	}
	for seq := uint32(1); seq <= 3; seq++ {
		sinkOne(tel.Collector, seq, 2000)
	}
	if err := tel.End(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ path, want string }{
		{tel.INTPath, `"type":"path"`},
		{tel.INTPath + ".slo.jsonl", `"objective":"latency:*\u003c1µs"`},
		{tel.FlightRecPath, "slo-breach"}, // breach trigger reached the recorder via the tracer
	} {
		b, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
			if !json.Valid([]byte(line)) {
				t.Fatalf("%s line %d is not JSON: %s", tc.path, i+1, line)
			}
		}
		if !strings.Contains(string(b), tc.want) {
			t.Fatalf("%s missing %q:\n%s", tc.path, tc.want, b)
		}
	}
	if !strings.Contains(out.String(), "slo: 1 breach(es) recorded") {
		t.Fatalf("summary = %q", out.String())
	}
}

// AdoptCollector re-points the watchdog at a collector built elsewhere
// (the resume path's RestoreWithCollector shape).
func TestAdoptCollectorReattachesWatchdog(t *testing.T) {
	tel := &Telemetry{SLOSpec: "latency:*<1µs", Out: &strings.Builder{}}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	tel.AdoptCollector(nil)           // no-op
	tel.AdoptCollector(tel.Collector) // no-op
	fresh := intnet.NewCollector()
	tel.AdoptCollector(fresh)
	if tel.Collector != fresh {
		t.Fatal("collector not adopted")
	}
	for seq := uint32(1); seq <= 3; seq++ {
		sinkOne(fresh, seq, 2000)
	}
	if len(tel.Watchdog.Breaches()) != 1 {
		t.Fatalf("watchdog not re-attached: %d breaches", len(tel.Watchdog.Breaches()))
	}
}

// Merge-based parallel sweeps bypass the live observer; End must feed
// the merged trace through the recorder so -flightrec still dumps it.
func TestEndFlightRecCatchesUpFromMergedTrace(t *testing.T) {
	dir := t.TempDir()
	tel := &Telemetry{
		TracePath:     filepath.Join(dir, "run.jsonl"),
		FlightRecPath: filepath.Join(dir, "run.rec.jsonl"),
	}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	cell := telemetry.NewTracer(nil)
	cell.HostTx("h", &frame.Frame{})
	tel.Tracer.MergeFrom(cell)
	if err := tel.End(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(tel.FlightRecPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "host-tx") {
		t.Fatalf("merged event did not reach the flight recorder:\n%s", b)
	}
}

func TestEndReportsUnwritableINTArtifacts(t *testing.T) {
	for _, tc := range []struct {
		name string
		tel  Telemetry
		want string
	}{
		{"int", Telemetry{INTPath: filepath.Join(t.TempDir(), "no-such-dir", "x.jsonl")}, "-int"},
		{"flightrec", Telemetry{FlightRecPath: filepath.Join(t.TempDir(), "no-such-dir", "x.jsonl")}, "-flightrec"},
	} {
		if err := tc.tel.Begin("test"); err != nil {
			t.Fatal(err)
		}
		err := tc.tel.End()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: End into missing dir: %v", tc.name, err)
		}
	}
}

// TestBeginEndObsEndpoint: -obs-addr implies a registry, serves the
// endpoint for the run's lifetime (plus linger), announces the URL on
// Err — never Out, whose bytes CI compares — and End publishes a final
// snapshot before closing the listener.
func TestBeginEndObsEndpoint(t *testing.T) {
	var out, errw bytes.Buffer
	tel := &Telemetry{ObsAddr: "127.0.0.1:0", Out: &out, Err: &errw}
	if err := tel.Begin("test"); err != nil {
		t.Fatal(err)
	}
	if tel.Registry == nil {
		t.Fatal("-obs-addr did not imply a registry")
	}
	if tel.Obs == nil || tel.ObsServer == nil {
		t.Fatal("Begin did not start the obs server")
	}
	addr := tel.ObsServer.Addr()
	if !strings.Contains(errw.String(), "obs: serving on http://"+addr) {
		t.Fatalf("listen notice not on Err: %q", errw.String())
	}
	if out.Len() != 0 {
		t.Fatalf("obs wrote to Out: %q", out.String())
	}

	n := uint64(7)
	tel.Registry.Counter("cli_obs_total", nil, "", func() uint64 { return n })
	tel.PublishObs(nil, 42)
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "cli_obs_total 7") {
		t.Fatalf("metrics missing published counter:\n%s", body)
	}

	if err := tel.End(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("obs server still serving after End")
	}
	// Without -stats the registry snapshot must not leak into Out.
	if strings.Contains(out.String(), "metrics") {
		t.Fatalf("End printed the registry without -stats: %q", out.String())
	}
}
