// Package cli carries the flag plumbing shared by the steelnet
// commands: the uniform observability flag set
// (-trace/-stats/-cpuprofile/-int/-slo/-flightrec) and the
// comma-separated integer-list parser every sweep CLI needs. Keeping
// it in one place means every command spells the flags the same way
// and produces the same artifact layout.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	intnet "steelnet/internal/int"
	"steelnet/internal/obs"
	"steelnet/internal/telemetry"
	"steelnet/internal/tshist"
)

// Telemetry is the observability flag set. When no flag is given the
// Tracer, Registry and Collector stay nil, every instrumentation call
// site short-circuits, and the run is byte- and allocation-identical
// to an uninstrumented binary.
type Telemetry struct {
	// TracePath receives -trace ("" disables tracing).
	TracePath string
	// Stats receives -stats.
	Stats bool
	// CPUProfilePath receives -cpuprofile ("" disables profiling).
	CPUProfilePath string
	// INTPath receives -int: collect in-band telemetry and write the
	// collector's path digests to this file as JSONL ("" disables).
	INTPath string
	// SLOSpec receives -slo: a comma-joined objective list in
	// "kind:target<bound" grammar (see intnet.ParseObjective). A
	// non-empty spec implies INT collection even without -int.
	SLOSpec string
	// FlightRecPath receives -flightrec: keep a bounded flight recorder
	// on the trace stream and dump it to this file after the run.
	FlightRecPath string
	// ObsAddr receives -obs-addr: serve live telemetry over HTTP on
	// this address ("" disables). Implies a metrics Registry.
	ObsAddr string
	// ObsLinger receives -obs-linger: keep the endpoint up this long
	// after the run finishes so external scrapers can read the final
	// state (CI starts the run in the background and curls it).
	ObsLinger time.Duration

	// Tracer and Registry are allocated by Begin when the matching flag
	// was set; pass them into experiment configs.
	Tracer   *telemetry.Tracer
	Registry *telemetry.Registry
	// Collector is allocated by Begin when -int or -slo was set; pass
	// it (with INT=true) into experiment configs. Resume paths that
	// rebuild their own collector must hand it back via AdoptCollector.
	Collector *intnet.Collector
	// Watchdog is allocated by Begin when -slo was set and is attached
	// to Collector; breaches land in the trace (when tracing) and in
	// the breach log End writes.
	Watchdog *intnet.Watchdog
	// Recorder is allocated by Begin when -flightrec was set and rides
	// the Tracer's observer hook.
	Recorder *intnet.Recorder
	// Obs and ObsServer are allocated by Begin when -obs-addr was set:
	// the broker is the publish seam commands feed at safe points (End
	// always publishes a final snapshot), the server the HTTP frontend.
	Obs       *obs.Broker
	ObsServer *obs.Server

	// Out receives the -stats snapshot and the -slo summary line
	// (default os.Stdout); commands running in-process under test point
	// it at their own writer.
	Out io.Writer
	// Err receives operational notices (the obs listen URL, the linger
	// note). Default os.Stderr — never Out: several CI jobs byte-compare
	// stdout across runs, and a kernel-assigned port must not differ it.
	Err io.Writer

	cmd     string
	cpuFile *os.File
}

// RegisterTelemetryFlags installs -trace, -stats and -cpuprofile on the
// default flag set. Call it before flag.Parse.
func RegisterTelemetryFlags() *Telemetry {
	return RegisterTelemetryFlagsOn(flag.CommandLine)
}

// RegisterTelemetryFlagsOn installs the telemetry flag trio on an
// explicit flag set — the form the commands use so their main paths can
// run in-process under test.
func RegisterTelemetryFlagsOn(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	fs.StringVar(&t.TracePath, "trace", "",
		"write a JSONL frame-lifecycle trace to this `file` (plus file.chrome.json for chrome://tracing / Perfetto)")
	fs.BoolVar(&t.Stats, "stats", false,
		"collect component metrics and print the registry snapshot after the run")
	fs.StringVar(&t.CPUProfilePath, "cpuprofile", "",
		"write a CPU profile to this `file` (sweep workers carry pprof labels)")
	fs.StringVar(&t.INTPath, "int", "",
		"collect in-band network telemetry and write per-path digests to this `file` as JSONL (plus file.slo.jsonl when -slo is set)")
	fs.StringVar(&t.SLOSpec, "slo", "",
		"watch SLO `objectives` (comma-joined \"kind:target<bound\", e.g. latency:refl<250us,loss:refl<0.01); implies INT collection")
	fs.StringVar(&t.FlightRecPath, "flightrec", "",
		"keep a bounded flight recorder on the trace stream and dump it to this `file` as JSONL after the run")
	fs.StringVar(&t.ObsAddr, "obs-addr", "",
		"serve live telemetry on this `addr` (host:port, port 0 picks one): Prometheus /metrics, JSON /shards profile, SSE /events, /debug/pprof; implies metrics collection")
	fs.DurationVar(&t.ObsLinger, "obs-linger", 0,
		"keep the -obs-addr endpoint up this `duration` after the run so scrapers can read the final state")
	return t
}

// RegisterShardsFlagOn installs -shards on fs: the shared
// execution-parallelism knob. It sets how many worker goroutines
// advance the deterministic partition of the work — the window shards
// of a sharded campus engine, the cells of a sweep grid elsewhere. The
// partition itself is part of the scenario (derived from the topology
// or the grid), so every output is byte-identical for any -shards
// value; the flag only trades wall-clock time.
func RegisterShardsFlagOn(fs *flag.FlagSet) *int {
	return fs.Int("shards", 0,
		"worker goroutines advancing the partitioned simulation (0 = NumCPU, 1 = serial); any value produces byte-identical output")
}

// Workers resolves the effective worker count from a command's legacy
// -workers value and -shards; -shards wins when set.
func Workers(workers, shards int) int {
	if shards > 0 {
		return shards
	}
	return workers
}

// Resume is the checkpoint/resume flag pair shared by the commands:
// -checkpoint names the file periodic checkpoints are written to, and
// -resume additionally requires the file to exist (a typo'd resume
// path must not silently start a fresh run).
type Resume struct {
	CheckpointPath string
	ResumePath     string
}

// RegisterResumeFlagsOn installs -checkpoint and -resume on fs.
func RegisterResumeFlagsOn(fs *flag.FlagSet) *Resume {
	r := &Resume{}
	fs.StringVar(&r.CheckpointPath, "checkpoint", "",
		"write periodic checkpoints to this `file` (resume later with -resume)")
	fs.StringVar(&r.ResumePath, "resume", "",
		"resume from this checkpoint `file` and keep checkpointing to it")
	return r
}

// Path resolves the two flags to the single checkpoint path ("" when
// neither was given). With -resume the file must already exist.
func (r *Resume) Path() (string, error) {
	if r.ResumePath != "" {
		if _, err := os.Stat(r.ResumePath); err != nil {
			return "", fmt.Errorf("-resume: %w", err)
		}
		return r.ResumePath, nil
	}
	return r.CheckpointPath, nil
}

// Begin materializes what the parsed flags asked for: the tracer, the
// registry, INT collection, the SLO watchdog, the flight recorder and
// CPU profiling. cmd names the command in errors.
func (t *Telemetry) Begin(cmd string) error {
	t.cmd = cmd
	var plan intnet.SLOPlan
	if t.SLOSpec != "" {
		var err error
		plan, err = intnet.ParseSLOPlan(t.SLOSpec)
		if err != nil {
			return fmt.Errorf("%s: -slo: %w", cmd, err)
		}
	}
	if t.TracePath != "" {
		// Unbound until an experiment adopts it (experiments Bind the
		// tracer to their engine before traffic flows).
		t.Tracer = telemetry.NewTracer(nil)
	}
	if t.FlightRecPath != "" {
		if t.Tracer == nil {
			// Flight recording without -trace: the tracer is a pure event
			// bus — nothing retained, only the recorder's bounded rings.
			t.Tracer = telemetry.NewTracer(nil)
			t.Tracer.SetRetain(false)
		}
		t.Recorder = intnet.NewRecorder(0)
		t.Recorder.Attach(t.Tracer)
	}
	if t.INTPath != "" || t.SLOSpec != "" {
		t.Collector = intnet.NewCollector()
		if t.SLOSpec != "" {
			t.Watchdog = intnet.NewWatchdog(plan, 0, t.Tracer)
			t.Watchdog.Attach(t.Collector)
		}
	}
	if t.Stats {
		t.Registry = telemetry.NewRegistry()
	}
	if t.ObsAddr != "" {
		if t.Registry == nil {
			// The endpoint is useless without metrics; -obs-addr implies
			// collection even when -stats (printing) was not asked for.
			t.Registry = telemetry.NewRegistry()
		}
		t.Obs = obs.NewBroker()
		t.Obs.SetState("running")
		t.Obs.SetRecorder(tshist.NewRecorder(0, 0, 0))
		srv, err := obs.Listen(t.ObsAddr, t.Obs)
		if err != nil {
			return fmt.Errorf("%s: -obs-addr: %w", cmd, err)
		}
		t.ObsServer = srv
		fmt.Fprintf(t.errw(), "obs: serving on http://%s (/metrics /shards /history /events /debug/pprof)\n", srv.Addr())
	}
	if t.CPUProfilePath != "" {
		f, err := os.Create(t.CPUProfilePath)
		if err != nil {
			return fmt.Errorf("%s: -cpuprofile: %w", cmd, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: -cpuprofile: %w", cmd, err)
		}
		t.cpuFile = f
	}
	return nil
}

// AdoptCollector swaps in a collector built elsewhere and re-attaches
// the watchdog to it. Resume paths need it: a restored harness that
// was not handed the CLI collector (RestoreWithCollector) builds its
// own, and End must export that one.
func (t *Telemetry) AdoptCollector(c *intnet.Collector) {
	if c == nil || c == t.Collector {
		return
	}
	t.Collector = c
	if t.Watchdog != nil {
		t.Watchdog.Attach(c)
	}
}

// End flushes everything Begin started: it stops the CPU profile,
// writes the JSONL trace plus its Chrome/Perfetto twin, exports the
// INT digests, the SLO breach log and the flight-recorder dump, and
// prints the registry snapshot to stdout when -stats was set.
func (t *Telemetry) End() error {
	if t.cpuFile != nil {
		pprof.StopCPUProfile()
		err := t.cpuFile.Close()
		t.cpuFile = nil
		if err != nil {
			return fmt.Errorf("%s: -cpuprofile: %w", t.cmd, err)
		}
	}
	if t.TracePath != "" && t.Tracer != nil {
		if err := writeTraces(t.TracePath, t.Tracer.Events()); err != nil {
			return fmt.Errorf("%s: -trace: %w", t.cmd, err)
		}
	}
	if t.INTPath != "" && t.Collector != nil {
		if err := WriteFile(t.INTPath, t.Collector.WriteJSONL); err != nil {
			return fmt.Errorf("%s: -int: %w", t.cmd, err)
		}
	}
	w := t.Out
	if w == nil {
		w = os.Stdout
	}
	if t.Watchdog != nil {
		if t.INTPath != "" {
			if err := WriteFile(t.INTPath+".slo.jsonl", t.Watchdog.WriteBreachLog); err != nil {
				return fmt.Errorf("%s: -slo: %w", t.cmd, err)
			}
		}
		fmt.Fprintf(w, "slo: %d breach(es) recorded\n", len(t.Watchdog.Breaches()))
	}
	if t.FlightRecPath != "" && t.Recorder != nil {
		// Merge-based parallel sweeps trace into per-cell buffers that
		// bypass the live observer; feed the merged log through the
		// recorder before dumping so -flightrec composes with -workers.
		if t.Recorder.Empty() && t.Tracer.Len() > 0 {
			for _, e := range t.Tracer.Events() {
				t.Recorder.Observe(e)
			}
		}
		if err := t.Recorder.DumpToFile(t.FlightRecPath); err != nil {
			return fmt.Errorf("%s: -flightrec: %w", t.cmd, err)
		}
	}
	if t.Stats && t.Registry != nil {
		fmt.Fprint(w, t.Registry.Snapshot())
	}
	if t.Obs != nil {
		// Final snapshot: whatever the command published (or didn't)
		// during the run, the endpoint ends up serving the completed
		// state. -1 marks "no clock here" — commands that publish
		// in-run pass real sim times via PublishObs.
		if t.Watchdog != nil {
			t.Obs.PublishBreaches(t.Watchdog.Breaches())
		}
		if err := t.Obs.Publish(t.Registry, nil, -1); err != nil {
			return fmt.Errorf("%s: -obs-addr: %w", t.cmd, err)
		}
		t.Obs.SetState("done")
	}
	if t.ObsServer != nil {
		if t.ObsLinger > 0 {
			fmt.Fprintf(t.errw(), "obs: lingering %v for scrapes\n", t.ObsLinger)
			time.Sleep(t.ObsLinger)
		}
		t.ObsServer.Close()
		t.ObsServer = nil
	}
	return nil
}

// errw resolves the notice writer (default os.Stderr).
func (t *Telemetry) errw() io.Writer {
	if t.Err != nil {
		return t.Err
	}
	return os.Stderr
}

// PublishObs publishes a live snapshot (metrics plus an optional shard
// profile) at a simulation safe point. No-op without -obs-addr, so
// commands call it unconditionally from their run loops.
func (t *Telemetry) PublishObs(profile any, simNS int64) {
	if t.Obs == nil {
		return
	}
	if t.Watchdog != nil {
		t.Obs.PublishBreaches(t.Watchdog.Breaches())
	}
	if err := t.Obs.Publish(t.Registry, profile, simNS); err != nil {
		fmt.Fprintf(t.errw(), "obs: publish: %v\n", err)
	}
}

// WriteFile creates path and streams write into it. Exported so the
// steelnetd command reuses the same dump idiom for its publish logs.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTraces writes the JSONL trace to path and the Chrome trace to
// path+".chrome.json".
func writeTraces(path string, events []telemetry.Event) error {
	jf, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(jf, events); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(path + ".chrome.json")
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(cf, events); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

// Must prints err to stderr and exits with status 2 — the CLIs' shared
// flag-error shape. A nil err is a no-op.
func Must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// ParseInts parses a comma-separated list of positive integers
// ("32,64,128"); blanks between commas are skipped, an empty list is an
// error.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("%q is not a positive integer", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
