package frame

import "testing"

func TestPoolDoubleReleasePanics(t *testing.T) {
	var p Pool
	f := p.Get(16)
	p.Put(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(f)
}

func TestPoolReleaseAfterReuseIsFine(t *testing.T) {
	// Get must clear the pooled mark, otherwise the first legitimate Put
	// of a recycled frame would false-positive as a double release.
	var p Pool
	f := p.Get(8)
	p.Put(f)
	g := p.Get(8)
	if g != f {
		t.Fatal("pool did not recycle the frame object")
	}
	p.Put(g) // must not panic
	if p.Puts != 2 {
		t.Fatalf("Puts = %d, want 2", p.Puts)
	}
}

func TestPoolOutstandingAccounting(t *testing.T) {
	var p Pool
	if p.Outstanding() != 0 {
		t.Fatalf("fresh pool Outstanding = %d", p.Outstanding())
	}
	a, b, c := p.Get(1), p.Get(2), p.Get(3)
	if p.Outstanding() != 3 {
		t.Fatalf("Outstanding = %d after 3 Gets, want 3", p.Outstanding())
	}
	p.Put(a)
	p.Put(b)
	if p.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d after 2 Puts, want 1", p.Outstanding())
	}
	d := p.Get(4) // reuse, still counts as handed out
	if p.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d after reuse Get, want 2", p.Outstanding())
	}
	p.Put(c)
	p.Put(d)
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after full return, want 0", p.Outstanding())
	}
	if p.News != 3 || p.Reused != 1 || p.Puts != 4 {
		t.Fatalf("News/Reused/Puts = %d/%d/%d, want 3/1/4", p.News, p.Reused, p.Puts)
	}
}

func TestPoolCloneOfPooledFrameIsReleasable(t *testing.T) {
	// Pool.Clone copies the source wholesale and must scrub the pooled
	// mark; both source and clone then return to the pool independently.
	var p Pool
	src := p.Get(4)
	copy(src.Payload, []byte{1, 2, 3, 4})
	g := p.Clone(src)
	p.Put(src)
	p.Put(g) // must not panic
	if p.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d, want 0", p.Outstanding())
	}
}

func TestFrameCloneClearsPooledMark(t *testing.T) {
	// Frame.Clone (the non-pooled deep copy) of a pool-owned frame must
	// also produce a frame the pool will accept exactly once.
	var p Pool
	src := p.Get(4)
	g := src.Clone()
	p.Put(src)
	p.Put(g)
	if p.Puts != 2 {
		t.Fatalf("Puts = %d, want 2", p.Puts)
	}
}

func TestPoolMixedFramesFromOtherPools(t *testing.T) {
	// Frames migrate between pools (a server recycles request frames into
	// responses); Outstanding sums to zero across the set even though the
	// per-pool values go negative/positive.
	var a, b Pool
	f := a.Get(8)
	b.Put(f) // consumed by the other endpoint
	if sum := a.Outstanding() + b.Outstanding(); sum != 0 {
		t.Fatalf("cross-pool Outstanding sum = %d, want 0", sum)
	}
	if a.Outstanding() != 1 || b.Outstanding() != -1 {
		t.Fatalf("per-pool Outstanding = %d/%d, want 1/-1", a.Outstanding(), b.Outstanding())
	}
}
