// Package frame models Ethernet-level frames as they traverse the
// simulated factory network: MAC addressing, 802.1Q VLAN/PCP tagging,
// and the binary payload encodings the industrial protocol and the ML
// workload use. Frames marshal to and from wire bytes so the eBPF VM,
// the programmable data plane and the tap all operate on real octets,
// exactly like their hardware counterparts.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// NewMAC builds a locally-administered unicast MAC from a 32-bit station
// id, giving every simulated node a stable, readable address.
func NewMAC(station uint32) MAC {
	var m MAC
	m[0] = 0x02 // locally administered, unicast
	m[1] = 0x5e
	binary.BigEndian.PutUint32(m[2:], station)
	return m
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// String renders the address in canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// EtherType identifies the frame payload protocol.
type EtherType uint16

// EtherTypes used in the simulation. ProfinetRT uses the real PROFINET
// value; the others are from reserved-for-documentation space.
const (
	TypeIPv4      EtherType = 0x0800
	TypeVLAN      EtherType = 0x8100
	TypeProfinet  EtherType = 0x8892 // PROFINET RT, real assignment
	TypePTP       EtherType = 0x88f7 // IEEE 1588
	TypeMLData    EtherType = 0x88b5 // experimental 1: ML inference frames
	TypeBenchEcho EtherType = 0x88b6 // experimental 2: reflection probes
)

// PCP is an 802.1Q priority code point (0-7). Industrial RT traffic
// conventionally rides at 6; best effort at 0.
type PCP uint8

// Priority levels used across the repository.
const (
	PrioBestEffort PCP = 0
	PrioML         PCP = 3
	PrioRT         PCP = 6
	PrioNetControl PCP = 7
)

// Frame is a parsed Ethernet frame. VLAN tagging is optional; when Tagged
// is false VID/Priority are ignored on the wire.
type Frame struct {
	Dst, Src MAC
	Tagged   bool
	Priority PCP
	VID      uint16 // 12-bit VLAN id
	Type     EtherType
	Payload  []byte

	// Simulation metadata, not serialized: these travel with the frame
	// object inside one node but are lost across marshal/unmarshal,
	// mirroring how real metadata lives in descriptors, not packets.
	Meta Meta

	// INT is the optional in-band telemetry stack (see int.go). Unlike
	// Meta it IS byte-accounted — WireLen grows with every stamped hop —
	// but like Meta it rides in the descriptor: marshaling strips it,
	// the way an INT sink strips the stack before host delivery.
	INT *INTStack

	// pooled marks a frame currently sitting in a Pool free list, so a
	// double Put panics at the release site instead of corrupting the
	// list and surfacing as aliased payloads much later.
	pooled bool
}

// Meta carries per-frame simulation metadata (ingress port, timestamps).
type Meta struct {
	IngressPort int
	CreatedAt   int64 // ns, set by the original sender
	FlowID      uint32
	// TraceID is the telemetry tracer's frame id, assigned lazily at the
	// frame's first traced event; 0 means untraced. Clones keep the id,
	// so flooded copies share one lifecycle line in the trace.
	TraceID uint64
}

// headerLen returns the byte length of the L2 header.
func (f *Frame) headerLen() int {
	if f.Tagged {
		return 18
	}
	return 14
}

// WireLen returns the total serialized length in bytes, before any
// minimum-size padding. Ethernet's 64-byte minimum (incl. FCS) is applied
// by the link model, not here, so tiny industrial payloads stay visible.
// An attached INT stack counts: telemetry-bearing frames pay real
// serialization and bandwidth for every stamped hop.
func (f *Frame) WireLen() int {
	n := f.headerLen() + len(f.Payload)
	if f.INT != nil {
		n += f.INT.WireBytes()
	}
	return n
}

// Marshal serializes the frame to wire bytes. The INT stack is not
// serialized — it lives in the descriptor and is read by sinks before
// any marshal/unmarshal boundary.
func (f *Frame) Marshal() []byte {
	buf := make([]byte, f.headerLen()+len(f.Payload))
	copy(buf[0:6], f.Dst[:])
	copy(buf[6:12], f.Src[:])
	off := 12
	if f.Tagged {
		binary.BigEndian.PutUint16(buf[off:], uint16(TypeVLAN))
		tci := uint16(f.Priority&7)<<13 | f.VID&0x0fff
		binary.BigEndian.PutUint16(buf[off+2:], tci)
		off += 4
	}
	binary.BigEndian.PutUint16(buf[off:], uint16(f.Type))
	copy(buf[off+2:], f.Payload)
	return buf
}

// ErrTruncated reports a frame shorter than its headers claim.
var ErrTruncated = errors.New("frame: truncated")

// Unmarshal parses wire bytes into f, replacing its contents. The payload
// aliases data; callers that mutate must copy.
func Unmarshal(data []byte) (*Frame, error) {
	if len(data) < 14 {
		return nil, ErrTruncated
	}
	f := &Frame{}
	copy(f.Dst[:], data[0:6])
	copy(f.Src[:], data[6:12])
	et := EtherType(binary.BigEndian.Uint16(data[12:14]))
	off := 14
	if et == TypeVLAN {
		if len(data) < 18 {
			return nil, ErrTruncated
		}
		tci := binary.BigEndian.Uint16(data[14:16])
		f.Tagged = true
		f.Priority = PCP(tci >> 13)
		f.VID = tci & 0x0fff
		et = EtherType(binary.BigEndian.Uint16(data[16:18]))
		off = 18
	}
	f.Type = et
	f.Payload = data[off:]
	return f, nil
}

// Clone returns a deep copy of the frame, including metadata. Switching
// elements clone before mirroring so downstream mutation cannot alias.
func (f *Frame) Clone() *Frame {
	g := *f
	g.pooled = false
	g.Payload = make([]byte, len(f.Payload))
	copy(g.Payload, f.Payload)
	if f.INT != nil {
		g.INT = f.INT.Clone()
	}
	return &g
}

// EffectivePriority returns the scheduling priority: the PCP when tagged,
// else best effort.
func (f *Frame) EffectivePriority() PCP {
	if f.Tagged {
		return f.Priority
	}
	return PrioBestEffort
}

// String renders a compact one-line description.
func (f *Frame) String() string {
	tag := ""
	if f.Tagged {
		tag = fmt.Sprintf(" vlan=%d pcp=%d", f.VID, f.Priority)
	}
	return fmt.Sprintf("%s->%s type=0x%04x%s len=%d", f.Src, f.Dst, uint16(f.Type), tag, f.WireLen())
}
