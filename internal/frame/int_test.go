package frame

import (
	"bytes"
	"testing"
)

func TestAttachINTDefaults(t *testing.T) {
	f := &Frame{Payload: []byte{1, 2, 3}}
	st := f.AttachINT("src", 7, 1, 100, 0)
	if st == nil || f.INT != st {
		t.Fatal("AttachINT did not install the stack on the frame")
	}
	if st.Source != "src" || st.FlowID != 7 || st.Seq != 1 || st.SourceNS != 100 {
		t.Fatalf("stack identity = %+v", st)
	}
	if st.MaxHops != DefaultINTMaxHops {
		t.Fatalf("MaxHops = %d, want default %d", st.MaxHops, DefaultINTMaxHops)
	}

	// Re-attaching replaces the stack (a source restamping a recycled
	// descriptor must not inherit stale hops).
	st.PushHop(INTHop{Node: "sw"})
	st2 := f.AttachINT("src2", 8, 2, 200, 4)
	if f.INT != st2 || st2.Source != "src2" || st2.MaxHops != 4 || len(st2.Hops) != 0 {
		t.Fatalf("re-attach left stale state: %+v", st2)
	}
}

func TestINTPushHopBound(t *testing.T) {
	f := &Frame{}
	st := f.AttachINT("src", 1, 1, 0, 2)
	if !st.PushHop(INTHop{Node: "a"}) || !st.PushHop(INTHop{Node: "b"}) {
		t.Fatal("PushHop refused within MaxHops")
	}
	if st.PushHop(INTHop{Node: "c"}) {
		t.Fatal("PushHop accepted past MaxHops")
	}
	if len(st.Hops) != 2 {
		t.Fatalf("got %d hops, want 2", len(st.Hops))
	}
}

func TestINTWireAccounting(t *testing.T) {
	f := &Frame{Payload: make([]byte, 46)}
	base := f.WireLen()
	st := f.AttachINT("src", 1, 1, 0, 8)
	if got, want := f.WireLen(), base+INTShimBytes; got != want {
		t.Fatalf("WireLen with empty stack = %d, want %d", got, want)
	}
	st.PushHop(INTHop{Node: "sw1"})
	st.PushHop(INTHop{Node: "sw2"})
	if got, want := f.WireLen(), base+INTShimBytes+2*INTHopBytes; got != want {
		t.Fatalf("WireLen with 2 hops = %d, want %d", got, want)
	}
	if got, want := st.WireBytes(), INTShimBytes+2*INTHopBytes; got != want {
		t.Fatalf("WireBytes = %d, want %d", got, want)
	}

	// Marshal carries only the L2 bytes: the INT stack lives in the
	// descriptor and is stripped by sinks, never serialized.
	withINT := f.Marshal()
	f.INT = nil
	if !bytes.Equal(withINT, f.Marshal()) {
		t.Fatal("Marshal output changed with INT attached")
	}
	if len(withINT) != base {
		t.Fatalf("Marshal length = %d, want header+payload %d", len(withINT), base)
	}
}

func TestINTHopLatency(t *testing.T) {
	h := INTHop{Node: "sw", IngressNS: 100, EgressNS: 450}
	if got := h.HopLatencyNS(); got != 350 {
		t.Fatalf("HopLatencyNS = %d, want 350", got)
	}
}

func TestINTCloneIndependence(t *testing.T) {
	f := &Frame{Payload: []byte{1}}
	st := f.AttachINT("src", 1, 5, 10, 4)
	st.PushHop(INTHop{Node: "sw1", IngressNS: 1, EgressNS: 2})

	g := f.Clone()
	if g.INT == f.INT {
		t.Fatal("Clone aliased the INT stack")
	}
	if g.INT.Seq != 5 || len(g.INT.Hops) != 1 || g.INT.Hops[0].Node != "sw1" {
		t.Fatalf("clone stack = %+v", g.INT)
	}
	// The clone keeps headroom: flooded copies are stamped independently.
	if !g.INT.PushHop(INTHop{Node: "sw2"}) {
		t.Fatal("clone lost MaxHops capacity")
	}
	if len(f.INT.Hops) != 1 {
		t.Fatalf("pushing on the clone mutated the original: %d hops", len(f.INT.Hops))
	}

	// Cloning a plain frame must stay INT-free.
	if (&Frame{}).Clone().INT != nil {
		t.Fatal("clone of INT-free frame grew a stack")
	}
}
