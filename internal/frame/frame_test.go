package frame

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestMACConstruction(t *testing.T) {
	m := NewMAC(0x01020304)
	if m.String() != "02:5e:01:02:03:04" {
		t.Fatalf("MAC = %s", m)
	}
	if m.IsBroadcast() || m.IsMulticast() {
		t.Fatal("unicast MAC misclassified")
	}
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Fatal("broadcast MAC misclassified")
	}
}

func TestMarshalRoundTripUntagged(t *testing.T) {
	f := &Frame{
		Dst:     NewMAC(1),
		Src:     NewMAC(2),
		Type:    TypeProfinet,
		Payload: []byte{1, 2, 3, 4},
	}
	wire := f.Marshal()
	if len(wire) != 18 {
		t.Fatalf("wire len = %d", len(wire))
	}
	g, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.Type != f.Type {
		t.Fatalf("roundtrip header mismatch: %+v vs %+v", g, f)
	}
	if !bytes.Equal(g.Payload, f.Payload) {
		t.Fatal("payload mismatch")
	}
	if g.Tagged {
		t.Fatal("untagged frame parsed as tagged")
	}
}

func TestMarshalRoundTripTagged(t *testing.T) {
	f := &Frame{
		Dst:      NewMAC(1),
		Src:      NewMAC(2),
		Tagged:   true,
		Priority: PrioRT,
		VID:      100,
		Type:     TypeBenchEcho,
		Payload:  []byte{9, 9},
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Tagged || g.Priority != PrioRT || g.VID != 100 || g.Type != TypeBenchEcho {
		t.Fatalf("tagged roundtrip = %+v", g)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 13)); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
	// Claims VLAN but too short for the tag.
	buf := make([]byte, 14)
	buf[12], buf[13] = 0x81, 0x00
	if _, err := Unmarshal(buf); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
}

func TestVIDMaskedTo12Bits(t *testing.T) {
	f := &Frame{Tagged: true, VID: 0xffff, Priority: 7, Type: TypeIPv4}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.VID != 0x0fff {
		t.Fatalf("VID = %#x", g.VID)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(dst, src uint32, tagged bool, pcp uint8, vid uint16, payload []byte) bool {
		in := &Frame{
			Dst: NewMAC(dst), Src: NewMAC(src),
			Tagged: tagged, Priority: PCP(pcp & 7), VID: vid & 0x0fff,
			Type: TypeMLData, Payload: payload,
		}
		out, err := Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		return out.Dst == in.Dst && out.Src == in.Src &&
			out.Tagged == in.Tagged &&
			(!tagged || (out.Priority == in.Priority && out.VID == in.VID)) &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := &Frame{Payload: []byte{1, 2, 3}, Meta: Meta{FlowID: 7}}
	g := f.Clone()
	g.Payload[0] = 99
	if f.Payload[0] != 1 {
		t.Fatal("clone aliases payload")
	}
	if g.Meta.FlowID != 7 {
		t.Fatal("clone lost metadata")
	}
}

func TestEffectivePriority(t *testing.T) {
	f := &Frame{Tagged: false, Priority: PrioRT}
	if f.EffectivePriority() != PrioBestEffort {
		t.Fatal("untagged frame has non-default priority")
	}
	f.Tagged = true
	if f.EffectivePriority() != PrioRT {
		t.Fatal("tagged priority lost")
	}
}

func TestFrameString(t *testing.T) {
	f := &Frame{Dst: NewMAC(1), Src: NewMAC(2), Tagged: true, VID: 5, Type: TypeProfinet}
	if s := f.String(); !strings.Contains(s, "vlan=5") || !strings.Contains(s, "0x8892") {
		t.Fatalf("String = %q", s)
	}
}

func TestProbeRoundTrip(t *testing.T) {
	p := Probe{Seq: 42, FlowID: 7, TS1: 1111, TS2: 2222, Padding: []byte{0xaa}}
	buf, err := MarshalProbe(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 32 {
		t.Fatalf("len = %d", len(buf))
	}
	q, err := UnmarshalProbe(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Seq != 42 || q.FlowID != 7 || q.TS1 != 1111 || q.TS2 != 2222 {
		t.Fatalf("roundtrip = %+v", q)
	}
	if q.Padding[0] != 0xaa {
		t.Fatal("padding lost")
	}
}

func TestProbeMinimumSize(t *testing.T) {
	if _, err := MarshalProbe(Probe{}, 20); err != ErrProbeTooShort {
		t.Fatalf("20-byte probe err = %v (fixed fields need 24)", err)
	}
	if _, err := UnmarshalProbe(make([]byte, 10)); err != ErrProbeTooShort {
		t.Fatalf("err = %v", err)
	}
}

func TestProbeTimestampOffsetsMatchEncoding(t *testing.T) {
	p := Probe{TS1: 0x1122334455667788, TS2: 0x99aabbccddeeff00}
	buf, err := MarshalProbe(p, 24)
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := ProbeTimestampOffsets()
	if buf[o1] != 0x11 || buf[o2] != 0x99 {
		t.Fatalf("offsets wrong: buf[%d]=%#x buf[%d]=%#x", o1, buf[o1], o2, buf[o2])
	}
}

func TestWireLen(t *testing.T) {
	f := &Frame{Payload: make([]byte, 50)}
	if f.WireLen() != 64 {
		t.Fatalf("untagged WireLen = %d", f.WireLen())
	}
	f.Tagged = true
	if f.WireLen() != 68 {
		t.Fatalf("tagged WireLen = %d", f.WireLen())
	}
}

func TestUnmarshalArbitraryBytesNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		fr, err := Unmarshal(raw)
		if err == nil {
			// A parsed frame re-marshals without panicking too.
			_ = fr.Marshal()
		}
		_, _ = UnmarshalProbe(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolReusesFramesAndBuffers(t *testing.T) {
	var p Pool
	f := p.Get(64)
	if len(f.Payload) != 64 {
		t.Fatalf("payload len = %d", len(f.Payload))
	}
	f.Dst = NewMAC(9)
	f.Tagged = true
	f.Meta.FlowID = 7
	buf := &f.Payload[0]
	p.Put(f)
	g := p.Get(32)
	if g != f {
		t.Fatal("pool did not reuse the frame object")
	}
	if &g.Payload[0] != buf {
		t.Fatal("pool did not reuse the payload buffer")
	}
	if g.Tagged || g.Dst != (MAC{}) || g.Meta.FlowID != 0 {
		t.Fatalf("Get returned stale header/meta: %+v", g)
	}
	if len(g.Payload) != 32 {
		t.Fatalf("reused payload len = %d, want 32", len(g.Payload))
	}
	// Growing beyond the recycled capacity reallocates.
	p.Put(g)
	h := p.Get(128)
	if len(h.Payload) != 128 {
		t.Fatalf("grown payload len = %d", len(h.Payload))
	}
	if p.News != 1 || p.Reused != 2 {
		t.Fatalf("News/Reused = %d/%d, want 1/2", p.News, p.Reused)
	}
}

func TestPoolCloneDetaches(t *testing.T) {
	var p Pool
	src := &Frame{Dst: NewMAC(1), Src: NewMAC(2), Tagged: true, Priority: 6, VID: 10,
		Type: TypeProfinet, Payload: []byte{1, 2, 3}, Meta: Meta{FlowID: 42}}
	g := p.Clone(src)
	if g == src {
		t.Fatal("clone aliases source frame")
	}
	if g.Dst != src.Dst || g.Src != src.Src || !g.Tagged || g.Priority != 6 ||
		g.VID != 10 || g.Type != TypeProfinet || g.Meta.FlowID != 42 {
		t.Fatalf("clone fields differ: %+v", g)
	}
	src.Payload[0] = 99
	if g.Payload[0] != 1 {
		t.Fatal("clone payload aliases source")
	}
}

func TestPoolPutNilIsNoop(t *testing.T) {
	var p Pool
	p.Put(nil)
	if f := p.Get(4); f == nil || len(f.Payload) != 4 {
		t.Fatal("pool corrupted by nil Put")
	}
}
