package frame

import "steelnet/internal/checkpoint"

// FoldState folds the pool's allocation accounting — the basis of the
// frame-conservation identity (Outstanding == frames alive in the
// network).
func (p *Pool) FoldState(d *checkpoint.Digest) {
	d.U64(p.News)
	d.U64(p.Reused)
	d.U64(p.Puts)
	d.Int(len(p.free))
}
