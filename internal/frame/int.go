package frame

// In-band network telemetry (INT), modeled on the P4 INT source /
// transit / sink roles: a source attaches a bounded metadata stack to a
// frame, every transit node pushes one per-hop record (timestamps,
// egress queue depth, drop risk), and a sink strips the stack and folds
// it into path digests (internal/int). Like Meta, the stack travels in
// the frame descriptor rather than in Payload — but unlike Meta it is
// byte-accounted: WireLen grows by the shim plus one hop record per
// stamped hop, so INT-bearing frames pay real serialization time and
// bandwidth, exactly the cost the technique has on hardware.

// INT wire-size model: a fixed shim header plus a fixed-size record per
// hop (node id, two timestamps, queue depth, flags — the paper-typical
// INT-MD layout rounded to 8-byte alignment).
const (
	INTShimBytes = 4
	INTHopBytes  = 24
)

// DefaultINTMaxHops bounds the stack when the source does not choose:
// deep enough for every topology in the repository (the leaf-spine's
// longest path is 4 forwarding hops).
const DefaultINTMaxHops = 8

// INTHop is one transit node's record.
type INTHop struct {
	// Node names the transit element. It always aliases a name that
	// outlives the run (switch/tap/pipeline names) — stamping never
	// builds strings.
	Node string
	// IngressNS and EgressNS are the node-local receive and forward
	// instants in simulated nanoseconds.
	IngressNS int64
	EgressNS  int64
	// QueueDepth is the egress queue depth the frame saw ahead of
	// itself when the node chose its output port.
	QueueDepth int32
	// DropRisk flags an egress queue at or above 3/4 of its per-class
	// capacity — the congestion early-warning the SLO watchdog reads.
	DropRisk bool
}

// HopLatencyNS is the node's residence time for this frame.
func (h INTHop) HopLatencyNS() int64 { return h.EgressNS - h.IngressNS }

// INTStack is the metadata stack one frame carries. A nil *INTStack on
// a Frame means INT is off for that frame; every transit check is a
// single pointer test, keeping the disabled hot path allocation-free.
type INTStack struct {
	// Source names the node that attached the stack; SourceNS is when.
	Source   string
	SourceNS int64
	// FlowID and Seq identify the frame within its flow so sinks can
	// measure loss from sequence gaps.
	FlowID uint32
	Seq    uint32
	// MaxHops bounds the stack; Strict selects the hop-exceeded policy:
	// strict stacks drop the frame at the transit node that cannot
	// stamp (counted as an INT drop), lenient stacks forward unstamped
	// — the two behaviors real INT deployments choose between.
	MaxHops int
	Strict  bool
	// Hops holds the transit records in path order.
	Hops []INTHop
}

// AttachINT makes the frame an INT source frame: it attaches a fresh
// stack with room for maxHops records (<=0 selects DefaultINTMaxHops)
// and returns it. Any previously attached stack is replaced.
func (f *Frame) AttachINT(source string, flow, seq uint32, nowNS int64, maxHops int) *INTStack {
	if maxHops <= 0 {
		maxHops = DefaultINTMaxHops
	}
	f.INT = &INTStack{
		Source:   source,
		SourceNS: nowNS,
		FlowID:   flow,
		Seq:      seq,
		MaxHops:  maxHops,
		Hops:     make([]INTHop, 0, maxHops),
	}
	return f.INT
}

// INTPool is a free list of INT stacks for allocation-free telemetry:
// sources Get a stack per frame and sinks Put it back after folding it,
// closing the same loop Pool closes for frames. Like Pool it is
// engine-local and not safe for concurrent use; unlike frames, stacks
// never travel between cells, so one pool per cell suffices. A Get
// resets every field and truncates Hops, so a recycled stack is
// byte-for-byte what AttachINT would have built fresh — checkpoint
// digests fold stack contents only and cannot tell the difference.
type INTPool struct {
	free []*INTStack

	// News counts stacks allocated because the pool was empty; Reused
	// counts stacks served from the free list; Puts counts returns.
	News, Reused, Puts uint64
}

// Get returns a stack initialized exactly as AttachINT initializes one
// (<=0 maxHops selects DefaultINTMaxHops). The hop storage is reused
// when its capacity covers maxHops.
func (p *INTPool) Get(source string, flow, seq uint32, nowNS int64, maxHops int) *INTStack {
	if maxHops <= 0 {
		maxHops = DefaultINTMaxHops
	}
	var s *INTStack
	if k := len(p.free) - 1; k >= 0 {
		s = p.free[k]
		p.free[k] = nil
		p.free = p.free[:k]
		p.Reused++
	} else {
		s = &INTStack{}
		p.News++
	}
	hops := s.Hops[:0]
	if cap(hops) < maxHops {
		hops = make([]INTHop, 0, maxHops)
	}
	*s = INTStack{
		Source:   source,
		SourceNS: nowNS,
		FlowID:   flow,
		Seq:      seq,
		MaxHops:  maxHops,
		Hops:     hops,
	}
	return s
}

// Put returns s to the free list. The caller must not touch s (or its
// Hops) afterwards. Nil is a no-op.
func (p *INTPool) Put(s *INTStack) {
	if s == nil {
		return
	}
	p.Puts++
	p.free = append(p.free, s)
}

// PushHop appends one transit record. It reports false when the stack
// is already at MaxHops; the caller then applies the stack's policy
// (see Strict).
func (s *INTStack) PushHop(h INTHop) bool {
	if len(s.Hops) >= s.MaxHops {
		return false
	}
	s.Hops = append(s.Hops, h)
	return true
}

// WireBytes is the stack's current on-wire footprint: the shim plus the
// stamped hop records.
func (s *INTStack) WireBytes() int { return INTShimBytes + len(s.Hops)*INTHopBytes }

// Clone returns a deep copy with independent hop storage (and the same
// remaining capacity, so later transits stamp the copy without
// reallocating past MaxHops).
func (s *INTStack) Clone() *INTStack {
	c := *s
	capHops := s.MaxHops
	if capHops < len(s.Hops) {
		capHops = len(s.Hops)
	}
	c.Hops = make([]INTHop, len(s.Hops), capHops)
	copy(c.Hops, s.Hops)
	return &c
}
