package frame

// In-band network telemetry (INT), modeled on the P4 INT source /
// transit / sink roles: a source attaches a bounded metadata stack to a
// frame, every transit node pushes one per-hop record (timestamps,
// egress queue depth, drop risk), and a sink strips the stack and folds
// it into path digests (internal/int). Like Meta, the stack travels in
// the frame descriptor rather than in Payload — but unlike Meta it is
// byte-accounted: WireLen grows by the shim plus one hop record per
// stamped hop, so INT-bearing frames pay real serialization time and
// bandwidth, exactly the cost the technique has on hardware.

// INT wire-size model: a fixed shim header plus a fixed-size record per
// hop (node id, two timestamps, queue depth, flags — the paper-typical
// INT-MD layout rounded to 8-byte alignment).
const (
	INTShimBytes = 4
	INTHopBytes  = 24
)

// DefaultINTMaxHops bounds the stack when the source does not choose:
// deep enough for every topology in the repository (the leaf-spine's
// longest path is 4 forwarding hops).
const DefaultINTMaxHops = 8

// INTHop is one transit node's record.
type INTHop struct {
	// Node names the transit element. It always aliases a name that
	// outlives the run (switch/tap/pipeline names) — stamping never
	// builds strings.
	Node string
	// IngressNS and EgressNS are the node-local receive and forward
	// instants in simulated nanoseconds.
	IngressNS int64
	EgressNS  int64
	// QueueDepth is the egress queue depth the frame saw ahead of
	// itself when the node chose its output port.
	QueueDepth int32
	// DropRisk flags an egress queue at or above 3/4 of its per-class
	// capacity — the congestion early-warning the SLO watchdog reads.
	DropRisk bool
}

// HopLatencyNS is the node's residence time for this frame.
func (h INTHop) HopLatencyNS() int64 { return h.EgressNS - h.IngressNS }

// INTStack is the metadata stack one frame carries. A nil *INTStack on
// a Frame means INT is off for that frame; every transit check is a
// single pointer test, keeping the disabled hot path allocation-free.
type INTStack struct {
	// Source names the node that attached the stack; SourceNS is when.
	Source   string
	SourceNS int64
	// FlowID and Seq identify the frame within its flow so sinks can
	// measure loss from sequence gaps.
	FlowID uint32
	Seq    uint32
	// MaxHops bounds the stack; Strict selects the hop-exceeded policy:
	// strict stacks drop the frame at the transit node that cannot
	// stamp (counted as an INT drop), lenient stacks forward unstamped
	// — the two behaviors real INT deployments choose between.
	MaxHops int
	Strict  bool
	// Hops holds the transit records in path order.
	Hops []INTHop
}

// AttachINT makes the frame an INT source frame: it attaches a fresh
// stack with room for maxHops records (<=0 selects DefaultINTMaxHops)
// and returns it. Any previously attached stack is replaced.
func (f *Frame) AttachINT(source string, flow, seq uint32, nowNS int64, maxHops int) *INTStack {
	if maxHops <= 0 {
		maxHops = DefaultINTMaxHops
	}
	f.INT = &INTStack{
		Source:   source,
		SourceNS: nowNS,
		FlowID:   flow,
		Seq:      seq,
		MaxHops:  maxHops,
		Hops:     make([]INTHop, 0, maxHops),
	}
	return f.INT
}

// PushHop appends one transit record. It reports false when the stack
// is already at MaxHops; the caller then applies the stack's policy
// (see Strict).
func (s *INTStack) PushHop(h INTHop) bool {
	if len(s.Hops) >= s.MaxHops {
		return false
	}
	s.Hops = append(s.Hops, h)
	return true
}

// WireBytes is the stack's current on-wire footprint: the shim plus the
// stamped hop records.
func (s *INTStack) WireBytes() int { return INTShimBytes + len(s.Hops)*INTHopBytes }

// Clone returns a deep copy with independent hop storage (and the same
// remaining capacity, so later transits stamp the copy without
// reallocating past MaxHops).
func (s *INTStack) Clone() *INTStack {
	c := *s
	capHops := s.MaxHops
	if capHops < len(s.Hops) {
		capHops = len(s.Hops)
	}
	c.Hops = make([]INTHop, len(s.Hops), capHops)
	copy(c.Hops, s.Hops)
	return &c
}
