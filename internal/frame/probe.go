package frame

import (
	"encoding/binary"
	"errors"
)

// Probe is the payload of a TypeBenchEcho reflection frame (Fig. 3): a
// sequence number plus two timestamp slots the reflector's eBPF program
// may overwrite in place (the TS-OW variant). The sender zeroes the slots;
// sizes below 20 bytes are rejected because §2.3's smallest industrial
// payload is 20 bytes and the probe must fit its own fields.
type Probe struct {
	Seq     uint32
	FlowID  uint32
	TS1     uint64 // filled by reflector variant TS-OW
	TS2     uint64
	Padding []byte // brings the payload to the experiment's target size
}

// probeFixedLen is the byte size of the fixed probe fields.
const probeFixedLen = 4 + 4 + 8 + 8

// ErrProbeTooShort reports a probe payload below the fixed field size.
var ErrProbeTooShort = errors.New("frame: probe payload too short")

// MarshalProbe encodes p into a payload of exactly size bytes.
// size must be at least the fixed field length (24).
func MarshalProbe(p Probe, size int) ([]byte, error) {
	if size < probeFixedLen {
		return nil, ErrProbeTooShort
	}
	buf := make([]byte, size)
	if err := MarshalProbeInto(p, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// MarshalProbeInto encodes p into buf (typically a pooled payload),
// writing the fixed fields and padding. Bytes of buf beyond the fixed
// fields and p.Padding are left untouched.
func MarshalProbeInto(p Probe, buf []byte) error {
	if len(buf) < probeFixedLen {
		return ErrProbeTooShort
	}
	binary.BigEndian.PutUint32(buf[0:], p.Seq)
	binary.BigEndian.PutUint32(buf[4:], p.FlowID)
	binary.BigEndian.PutUint64(buf[8:], p.TS1)
	binary.BigEndian.PutUint64(buf[16:], p.TS2)
	copy(buf[probeFixedLen:], p.Padding)
	return nil
}

// UnmarshalProbe decodes a probe payload.
func UnmarshalProbe(data []byte) (Probe, error) {
	if len(data) < probeFixedLen {
		return Probe{}, ErrProbeTooShort
	}
	p := Probe{
		Seq:    binary.BigEndian.Uint32(data[0:]),
		FlowID: binary.BigEndian.Uint32(data[4:]),
		TS1:    binary.BigEndian.Uint64(data[8:]),
		TS2:    binary.BigEndian.Uint64(data[16:]),
	}
	if len(data) > probeFixedLen {
		p.Padding = data[probeFixedLen:]
	}
	return p, nil
}

// ProbeTimestampOffsets returns the byte offsets of the TS1/TS2 slots
// within the payload — the locations the TS-OW eBPF variant pokes.
func ProbeTimestampOffsets() (ts1, ts2 int) { return 8, 16 }
