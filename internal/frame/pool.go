package frame

// Pool is a free list of Frame objects and their payload buffers for
// allocation-free transmit paths: a sender Gets a frame per packet, and
// whichever endpoint consumes the frame Puts it back once its handler is
// done with it. Frames need not return to the pool they came from — any
// engine-local pool works as a free list, so request frames recycled by
// a server naturally become its response frames.
//
// A Pool is not safe for concurrent use. Each simulation engine runs on
// one goroutine (see internal/sweep), so pools must not be shared across
// scenario cells.
type Pool struct {
	free []*Frame

	// News counts frames allocated because the pool was empty; Reused
	// counts frames served from the free list; Puts counts returns.
	News, Reused, Puts uint64
}

// Outstanding returns frames handed out and not yet returned. Across a
// set of pools whose frames migrate between them, the sum is the number
// of frames alive in the network — zero once a drained simulation has
// reclaimed every drop (the chaos suite's no-leak invariant).
func (p *Pool) Outstanding() int64 {
	return int64(p.News+p.Reused) - int64(p.Puts)
}

// Get returns a frame whose Payload has length n. All header fields and
// metadata are zeroed. Payload bytes are NOT zeroed on reuse: callers
// must write every byte they expect a receiver to read, exactly as with
// a recycled DMA buffer.
func (p *Pool) Get(n int) *Frame {
	if k := len(p.free) - 1; k >= 0 {
		f := p.free[k]
		p.free[k] = nil
		p.free = p.free[:k]
		pl := f.Payload
		*f = Frame{}
		if cap(pl) < n {
			pl = make([]byte, n)
		}
		f.Payload = pl[:n]
		p.Reused++
		return f
	}
	p.News++
	return &Frame{Payload: make([]byte, n)}
}

// Clone returns a pooled deep copy of f — the pooled counterpart of
// Frame.Clone for transmit paths that re-emit a received frame.
func (p *Pool) Clone(f *Frame) *Frame {
	g := p.Get(len(f.Payload))
	pl := g.Payload
	*g = *f
	g.pooled = false
	g.Payload = pl
	copy(g.Payload, f.Payload)
	if f.INT != nil {
		g.INT = f.INT.Clone()
	}
	return g
}

// Put returns f to the pool. The caller must not touch f afterwards; the
// next Get may hand it out again. Putting nil is a no-op; putting a
// frame that is already on a free list panics — a double release means
// two owners believe they hold the frame, and the next two Gets would
// hand out aliases of one buffer.
func (p *Pool) Put(f *Frame) {
	if f == nil {
		return
	}
	if f.pooled {
		panic("frame: double release to pool")
	}
	f.pooled = true
	p.Puts++
	p.free = append(p.free, f)
}
