package intnet

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"steelnet/internal/checkpoint"
	"steelnet/internal/telemetry"
)

// SLO objectives are declared with a compact spec grammar in the style
// of internal/faults plans:
//
//	kind:target<bound[,kind:target<bound...]
//
// where kind is latency, jitter or loss; target is a sink node name or
// "*" for every sink; and bound is a duration (latency/jitter) or a
// loss fraction (loss). Examples:
//
//	latency:vplc1<500µs          p0 latency objective on one sink
//	jitter:*<50µs,loss:*<0.01    network-wide jitter + 1% loss budget
//
// Parse and String round-trip exactly, so a plan can be logged, stored
// in a checkpoint config, and re-parsed without drift.

// ObjectiveKind selects what an objective bounds.
type ObjectiveKind uint8

// Objective kinds.
const (
	SLOLatency ObjectiveKind = iota
	SLOJitter
	SLOLoss
	numObjectiveKinds
)

var objectiveKindNames = [numObjectiveKinds]string{"latency", "jitter", "loss"}

// String returns the kind's spec-grammar name.
func (k ObjectiveKind) String() string {
	if int(k) < len(objectiveKindNames) {
		return objectiveKindNames[k]
	}
	return "unknown"
}

// Objective is one declarative service-level objective.
type Objective struct {
	Kind ObjectiveKind
	// Target is the sink node the objective applies to, or "*" for all.
	Target string
	// Bound is the latency/jitter ceiling (those kinds).
	Bound time.Duration
	// Frac is the loss-fraction ceiling (SLOLoss).
	Frac float64
}

// Matches reports whether the objective applies to observations at sink.
func (o Objective) Matches(sink string) bool {
	return o.Target == "*" || o.Target == sink
}

// String renders the objective in spec grammar.
func (o Objective) String() string {
	if o.Kind == SLOLoss {
		return fmt.Sprintf("%s:%s<%s", o.Kind, o.Target, strconv.FormatFloat(o.Frac, 'g', -1, 64))
	}
	return fmt.Sprintf("%s:%s<%s", o.Kind, o.Target, o.Bound)
}

// ParseObjective parses one spec-grammar objective.
func ParseObjective(s string) (Objective, error) {
	head, bound, ok := strings.Cut(s, "<")
	if !ok {
		return Objective{}, fmt.Errorf("intnet: objective %q: missing '<bound'", s)
	}
	kindStr, target, ok := strings.Cut(head, ":")
	if !ok {
		return Objective{}, fmt.Errorf("intnet: objective %q: missing 'kind:target'", s)
	}
	var o Objective
	found := false
	for i, n := range objectiveKindNames {
		if n == kindStr {
			o.Kind = ObjectiveKind(i)
			found = true
			break
		}
	}
	if !found {
		return Objective{}, fmt.Errorf("intnet: objective %q: unknown kind %q", s, kindStr)
	}
	if target == "" {
		return Objective{}, fmt.Errorf("intnet: objective %q: empty target", s)
	}
	o.Target = target
	if o.Kind == SLOLoss {
		f, err := strconv.ParseFloat(bound, 64)
		if err != nil {
			return Objective{}, fmt.Errorf("intnet: objective %q: bad loss fraction: %v", s, err)
		}
		if f <= 0 || f >= 1 {
			return Objective{}, fmt.Errorf("intnet: objective %q: loss fraction must be in (0,1)", s)
		}
		o.Frac = f
		return o, nil
	}
	d, err := time.ParseDuration(bound)
	if err != nil {
		return Objective{}, fmt.Errorf("intnet: objective %q: bad duration: %v", s, err)
	}
	if d <= 0 {
		return Objective{}, fmt.Errorf("intnet: objective %q: non-positive bound", s)
	}
	o.Bound = d
	return o, nil
}

// SLOPlan is an ordered list of objectives.
type SLOPlan []Objective

// String renders the plan as a comma-joined spec; ParsePlan inverts it.
func (p SLOPlan) String() string {
	parts := make([]string, len(p))
	for i, o := range p {
		parts[i] = o.String()
	}
	return strings.Join(parts, ",")
}

// ParseSLOPlan parses a comma-joined objective list ("" is an empty
// plan).
func ParseSLOPlan(s string) (SLOPlan, error) {
	if s == "" {
		return nil, nil
	}
	var p SLOPlan
	for _, part := range strings.Split(s, ",") {
		o, err := ParseObjective(part)
		if err != nil {
			return nil, err
		}
		p = append(p, o)
	}
	return p, nil
}

// Breach is one watchdog excursion: an objective exceeded at a sink,
// open until the matching clear. ClearedAtNS is -1 while open.
type Breach struct {
	Objective   string `json:"objective"`
	Sink        string `json:"sink"`
	AtNS        int64  `json:"at_ns"`
	Measured    int64  `json:"measured"`
	ClearedAtNS int64  `json:"cleared_at_ns"`
}

// stateKey identifies one objective's evaluation state at one sink.
type stateKey struct {
	obj  int
	sink string
}

// objState is the hysteresis state of one (objective, sink) pair.
type objState struct {
	inBreach bool
	over     int // consecutive observations exceeding the bound
	under    int // consecutive observations within the bound
	openIdx  int // index into breaches of the open excursion
	received uint64
	lost     uint64
}

// Watchdog evaluates an SLOPlan against the collector's observation
// stream. Breach state uses consecutive-observation hysteresis: an
// objective flips to breached after Consecutive observations over the
// bound and clears after the same number within it, so a single
// outlier frame does not flap the state. Breach and clear transitions
// are emitted to the tracer as spans in the Perfetto "slo" lane.
type Watchdog struct {
	plan        SLOPlan
	specs       []string // cached Objective.String per objective
	consecutive int
	tr          *telemetry.Tracer
	states      map[stateKey]*objState
	skeys       []stateKey // first-seen order, for deterministic folds
	breaches    []Breach
}

// DefaultConsecutive is the hysteresis depth when the caller passes 0.
const DefaultConsecutive = 3

// NewWatchdog builds a watchdog for plan. consecutive <= 0 selects
// DefaultConsecutive; tr may be nil (breaches are still logged).
func NewWatchdog(plan SLOPlan, consecutive int, tr *telemetry.Tracer) *Watchdog {
	if consecutive <= 0 {
		consecutive = DefaultConsecutive
	}
	w := &Watchdog{
		plan:        plan,
		consecutive: consecutive,
		tr:          tr,
		states:      make(map[stateKey]*objState),
	}
	for _, o := range plan {
		w.specs = append(w.specs, o.String())
	}
	return w
}

// Attach subscribes the watchdog to c's observation stream, chaining
// any observer already installed.
func (w *Watchdog) Attach(c *Collector) {
	prev := c.OnSink
	c.OnSink = func(obs Observation) {
		if prev != nil {
			prev(obs)
		}
		w.Observe(obs)
	}
}

// Observe evaluates one observation against every matching objective.
func (w *Watchdog) Observe(obs Observation) {
	for i, o := range w.plan {
		if !o.Matches(obs.Sink) {
			continue
		}
		key := stateKey{obj: i, sink: obs.Sink}
		st := w.states[key]
		if st == nil {
			st = &objState{openIdx: -1}
			w.states[key] = st
			w.skeys = append(w.skeys, key)
		}
		var measured int64
		var exceeded bool
		switch o.Kind {
		case SLOLatency:
			measured = obs.E2ENS
			exceeded = measured > int64(o.Bound)
		case SLOJitter:
			measured = obs.JitterNS
			exceeded = measured > int64(o.Bound)
		case SLOLoss:
			st.received++
			st.lost += obs.NewlyLost
			frac := float64(st.lost) / float64(st.lost+st.received)
			measured = int64(frac * 1e6) // lost per million, for the trace
			exceeded = st.lost > 0 && frac > o.Frac
		}
		w.step(st, i, obs.Sink, obs.AtNS, measured, exceeded)
	}
}

// step advances one state's hysteresis and records transitions.
func (w *Watchdog) step(st *objState, obj int, sink string, atNS, measured int64, exceeded bool) {
	if exceeded {
		st.over++
		st.under = 0
		if !st.inBreach && st.over >= w.consecutive {
			st.inBreach = true
			st.openIdx = len(w.breaches)
			w.breaches = append(w.breaches, Breach{
				Objective: w.specs[obj], Sink: sink,
				AtNS: atNS, Measured: measured, ClearedAtNS: -1,
			})
			w.tr.SLOBreach(sink, w.specs[obj], measured)
		}
		return
	}
	st.under++
	st.over = 0
	if st.inBreach && st.under >= w.consecutive {
		st.inBreach = false
		w.breaches[st.openIdx].ClearedAtNS = atNS
		st.openIdx = -1
		w.tr.SLOClear(sink, w.specs[obj])
	}
}

// Absorb merges another watchdog's hysteresis states and breach log
// into w, preserving other's first-seen state order and onset order.
// Sharded runs keep one watchdog per shard (hysteresis state is
// per-(objective, sink) and every sink host lives on exactly one
// shard), then absorb them in fixed shard order — the combined log is
// deterministic for any worker count, exactly like Collector.Absorb.
// The two watchdogs must track disjoint sinks and share the same plan;
// violating either makes the merged hysteresis meaningless, so Absorb
// panics.
func (w *Watchdog) Absorb(other *Watchdog) {
	if other == nil {
		return
	}
	if other.plan.String() != w.plan.String() || other.consecutive != w.consecutive {
		panic("intnet: Absorb across different SLO plans")
	}
	offset := len(w.breaches)
	for _, key := range other.skeys {
		if _, dup := w.states[key]; dup {
			panic(fmt.Sprintf("intnet: Absorb saw sink %q under objective %d in both watchdogs; shards must own disjoint sinks", key.sink, key.obj))
		}
		st := *other.states[key]
		if st.openIdx >= 0 {
			st.openIdx += offset
		}
		w.states[key] = &st
		w.skeys = append(w.skeys, key)
	}
	w.breaches = append(w.breaches, other.breaches...)
}

// Breaches returns every recorded excursion in onset order (open ones
// have ClearedAtNS == -1).
func (w *Watchdog) Breaches() []Breach { return w.breaches }

// InBreach reports whether any objective is currently breached.
func (w *Watchdog) InBreach() bool {
	for _, st := range w.states {
		if st.inBreach {
			return true
		}
	}
	return false
}

// WriteBreachLog exports the breach log as JSON lines in onset order.
func (w *Watchdog) WriteBreachLog(out io.Writer) error {
	enc := json.NewEncoder(out)
	for _, b := range w.breaches {
		if err := enc.Encode(b); err != nil {
			return err
		}
	}
	return nil
}

// FoldState folds the watchdog's plan, per-state hysteresis and breach
// log in deterministic order.
func (w *Watchdog) FoldState(d *checkpoint.Digest) {
	d.Str(w.plan.String())
	d.Int(w.consecutive)
	d.Int(len(w.skeys))
	for _, key := range w.skeys {
		st := w.states[key]
		d.Int(key.obj)
		d.Str(key.sink)
		d.Bool(st.inBreach)
		d.Int(st.over)
		d.Int(st.under)
		d.Int(st.openIdx)
		d.U64(st.received)
		d.U64(st.lost)
	}
	d.Int(len(w.breaches))
	for _, b := range w.breaches {
		d.Str(b.Objective)
		d.Str(b.Sink)
		d.I64(b.AtNS)
		d.I64(b.Measured)
		d.I64(b.ClearedAtNS)
	}
}
