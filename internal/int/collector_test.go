package intnet

import (
	"bytes"
	"testing"

	"steelnet/internal/checkpoint"
	"steelnet/internal/frame"
)

// sinkFrame builds a frame carrying an INT stack with the given hop
// records and sinks it, the way a host or pipeline sink action would.
func sinkFrame(c *Collector, sink, source string, flow, seq uint32, srcNS, nowNS int64, hops ...frame.INTHop) {
	f := &frame.Frame{}
	st := f.AttachINT(source, flow, seq, srcNS, 0)
	for _, h := range hops {
		st.PushHop(h)
	}
	c.SinkINT(sink, f, nowNS)
	f.INT = nil
}

func TestCollectorPathDigest(t *testing.T) {
	c := NewCollector()
	hop := func(in, out int64) frame.INTHop {
		return frame.INTHop{Node: "sw", IngressNS: in, EgressNS: out, QueueDepth: 2}
	}
	sinkFrame(c, "dst", "src", 7, 1, 0, 1000, hop(100, 400))
	sinkFrame(c, "dst", "src", 7, 2, 2000, 3200, hop(2100, 2600))

	if c.Observations != 2 {
		t.Fatalf("Observations = %d, want 2", c.Observations)
	}
	ds := c.Digests()
	if len(ds) != 1 {
		t.Fatalf("got %d digests, want 1", len(ds))
	}
	p := ds[0]
	if p.Sink != "dst" || p.Source != "src" || p.Flow != 7 {
		t.Fatalf("digest identity = %s->%s flow %d", p.Source, p.Sink, p.Flow)
	}
	if p.Count != 2 || p.MinNS != 1000 || p.MaxNS != 1200 || p.SumNS != 2200 {
		t.Fatalf("e2e aggregate = count %d min %d max %d sum %d", p.Count, p.MinNS, p.MaxNS, p.SumNS)
	}
	// Jitter: |1200 - 1000| = 200, one interval.
	if p.JitterSumNS != 200 || p.JitterMaxNS != 200 || p.MeanJitterNS() != 200 {
		t.Fatalf("jitter aggregate = sum %d max %d mean %.0f", p.JitterSumNS, p.JitterMaxNS, p.MeanJitterNS())
	}
	if len(p.Hops) != 1 || p.Hops[0] != "sw" {
		t.Fatalf("hops = %v", p.Hops)
	}
	a := p.HopAggs[0]
	if a.Count != 2 || a.MinNS != 300 || a.MaxNS != 500 || a.SumNS != 800 || a.QueueMax != 2 {
		t.Fatalf("hop aggregate = %+v", a)
	}
	if got, want := p.MeanNS(), 1100.0; got != want {
		t.Fatalf("MeanNS = %v, want %v", got, want)
	}
}

func TestCollectorLossAndReorder(t *testing.T) {
	c := NewCollector()
	sinkFrame(c, "dst", "src", 1, 1, 0, 10)
	sinkFrame(c, "dst", "src", 1, 4, 0, 20) // 2,3 missing
	sinkFrame(c, "dst", "src", 1, 3, 0, 30) // late arrival
	sinkFrame(c, "dst", "src", 1, 5, 0, 40)

	recv, lost, reord := c.FlowLoss("dst", 1)
	if recv != 4 || lost != 2 || reord != 1 {
		t.Fatalf("FlowLoss = recv %d lost %d reordered %d, want 4/2/1", recv, lost, reord)
	}
	if r, l, o := c.FlowLoss("dst", 99); r != 0 || l != 0 || o != 0 {
		t.Fatalf("unknown flow reported %d/%d/%d", r, l, o)
	}
}

func TestCollectorPathChange(t *testing.T) {
	c := NewCollector()
	via := func(node string) frame.INTHop { return frame.INTHop{Node: node, IngressNS: 1, EgressNS: 2} }
	sinkFrame(c, "dst", "src", 1, 1, 0, 100, via("sw1"))
	sinkFrame(c, "dst", "src", 1, 2, 0, 200, via("sw1"))
	// Failover: frames 3 and 4 are lost, frame 5 arrives via sw2.
	sinkFrame(c, "dst", "src", 1, 5, 0, 900, via("sw2"))

	if len(c.Digests()) != 2 {
		t.Fatalf("got %d digests, want one per path", len(c.Digests()))
	}
	chs := c.PathChanges()
	if len(chs) != 1 {
		t.Fatalf("got %d path changes, want 1", len(chs))
	}
	ch := chs[0]
	if ch.Sink != "dst" || ch.Flow != 1 || ch.AtSeq != 5 {
		t.Fatalf("change identity = %+v", ch)
	}
	if ch.GapNS != 700 {
		t.Fatalf("GapNS = %d, want 700 (silence between last-old and first-new)", ch.GapNS)
	}
	if ch.Silent != 2 {
		t.Fatalf("Silent = %d, want 2 (seqs 3,4)", ch.Silent)
	}
	if ch.From == "" || ch.From == ch.To {
		t.Fatalf("change keys: from %q to %q", ch.From, ch.To)
	}
}

func TestCollectorObserverStream(t *testing.T) {
	c := NewCollector()
	var got []Observation
	c.OnSink = func(o Observation) { got = append(got, o) }
	sinkFrame(c, "dst", "src", 1, 1, 0, 100)
	sinkFrame(c, "dst", "src", 1, 3, 50, 250)

	if len(got) != 2 {
		t.Fatalf("observer saw %d observations, want 2", len(got))
	}
	if got[0].E2ENS != 100 || got[0].JitterNS != 0 || got[0].NewlyLost != 0 {
		t.Fatalf("first observation = %+v", got[0])
	}
	if got[1].E2ENS != 200 || got[1].JitterNS != 100 || got[1].NewlyLost != 1 {
		t.Fatalf("second observation = %+v", got[1])
	}
}

// feed replays one deterministic synthetic workload into c, cell by
// cell: offset displaces the timestamps, as disjoint sweep cells would.
func feed(c *Collector, offset int64) {
	via := func(node string, at int64) frame.INTHop {
		return frame.INTHop{Node: node, IngressNS: at, EgressNS: at + 300, QueueDepth: int32(at % 5)}
	}
	for seq := uint32(1); seq <= 20; seq++ {
		at := offset + int64(seq)*1000
		node := "sw1"
		if seq > 12 { // path change two thirds in
			node = "sw2"
		}
		if seq%7 == 0 {
			continue // a lost frame
		}
		// Constant e2e latency: consecutive-frame jitter is zero on both
		// sides of a cell boundary, so serial and Absorb-merged feeds
		// must agree exactly (Absorb cannot stitch jitter across cells).
		sinkFrame(c, "dst", "src", 1, seq, at, at+500, via(node, at+100))
	}
}

func digestOf(c *Collector) uint64 {
	d := checkpoint.NewDigest()
	c.FoldState(d)
	return d.Sum()
}

func TestCollectorAbsorb(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	feed(a, 0)
	feed(b, 1_000_000)
	merged := NewCollector()
	merged.Absorb(a)
	merged.Absorb(b)

	if want := a.Observations + b.Observations; merged.Observations != want {
		t.Fatalf("Observations = %d, want %d", merged.Observations, want)
	}
	// Both cells traverse the same two paths (sw1 then sw2): shared
	// paths merge their aggregates instead of duplicating digests.
	if len(merged.Digests()) != 2 {
		t.Fatalf("got %d digests, want 2", len(merged.Digests()))
	}
	for i, p := range merged.Digests() {
		pa, pb := a.Digests()[i], b.Digests()[i]
		if p.Count != pa.Count+pb.Count || p.SumNS != pa.SumNS+pb.SumNS {
			t.Fatalf("path %d aggregates: %d/%d, want %d/%d", i, p.Count, p.SumNS, pa.Count+pb.Count, pa.SumNS+pb.SumNS)
		}
		if p.HopAggs[0].Count != pa.HopAggs[0].Count+pb.HopAggs[0].Count {
			t.Fatalf("path %d hop counts did not add", i)
		}
	}
	ar, al, _ := a.FlowLoss("dst", 1)
	br, bl, _ := b.FlowLoss("dst", 1)
	mr, ml, _ := merged.FlowLoss("dst", 1)
	if mr != ar+br || ml != al+bl {
		t.Fatalf("flow counters = %d/%d, want %d/%d", mr, ml, ar+br, al+bl)
	}
	if len(merged.PathChanges()) != len(a.PathChanges())+len(b.PathChanges()) {
		t.Fatalf("path changes = %d, want %d", len(merged.PathChanges()), len(a.PathChanges())+len(b.PathChanges()))
	}

	// Absorbing into an empty collector deep-copies: mutating the merged
	// view must not reach back into the source cells.
	merged.Digests()[0].Count += 99
	if a.Digests()[0].Count+b.Digests()[0].Count == merged.Digests()[0].Count {
		t.Fatal("Absorb aliased the source digest")
	}
}

// TestCollectorMergeOrderInvariance mimics the sweep harnesses' merge:
// per-cell private collectors absorbed in cell order must produce the
// same bytes no matter how the cells were scheduled (the merge order is
// fixed, so this reduces to determinism of Absorb itself).
func TestCollectorMergeOrderInvariance(t *testing.T) {
	mkMerged := func() *Collector {
		cells := make([]*Collector, 3)
		for i := range cells {
			cells[i] = NewCollector()
			feed(cells[i], int64(i)*1_000_000)
		}
		m := NewCollector()
		for _, c := range cells {
			m.Absorb(c)
		}
		return m
	}
	var b1, b2 bytes.Buffer
	if err := mkMerged().WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mkMerged().WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical cell merges produced different JSONL")
	}
}

func TestCollectorExportDeterministic(t *testing.T) {
	mk := func() *Collector {
		c := NewCollector()
		feed(c, 0)
		return c
	}
	c1, c2 := mk(), mk()
	var b1, b2 bytes.Buffer
	if err := c1.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two identical feeds produced different JSONL")
	}
	if digestOf(c1) != digestOf(c2) {
		t.Fatal("two identical feeds produced different fold digests")
	}
	if c1.Summary() != c2.Summary() {
		t.Fatal("two identical feeds produced different summaries")
	}
}
