package intnet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"steelnet/internal/telemetry"
)

func ev(node string, t int64) telemetry.Event {
	return telemetry.Event{T: t, Kind: telemetry.KindForward, Node: node, Port: 1}
}

func TestRecorderRingBounds(t *testing.T) {
	r := NewRecorder(4)
	if !r.Empty() {
		t.Fatal("fresh recorder not Empty")
	}
	for i := int64(1); i <= 10; i++ {
		r.Observe(ev("sw", i))
	}
	if r.Empty() {
		t.Fatal("recorder Empty after events")
	}

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want ring cap 4", len(lines))
	}
	// Oldest-first: only the last four events survive, in order.
	for i, line := range lines {
		var rec struct {
			Type string `json:"type"`
			T    int64  `json:"t"`
			Node string `json:"node"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Type != "event" || rec.Node != "sw" || rec.T != int64(7+i) {
			t.Fatalf("line %d = %+v, want event t=%d", i, rec, 7+i)
		}
	}
}

func TestRecorderAutoTriggers(t *testing.T) {
	r := NewRecorder(0)
	var hook []Trigger
	r.OnTrigger = func(tg Trigger) { hook = append(hook, tg) }

	r.Observe(ev("sw", 1))
	r.Observe(telemetry.Event{T: 5, Kind: telemetry.KindFaultInject, Node: "link", Detail: "linkdown:link@5ms"})
	r.Observe(telemetry.Event{T: 9, Kind: telemetry.KindSLOBreach, Node: "dst", Detail: "latency:dst<1µs"})
	r.Trigger("checkpoint-divergence", "digest mismatch", 12)

	tgs := r.Triggers()
	if len(tgs) != 3 {
		t.Fatalf("got %d triggers, want 3", len(tgs))
	}
	if tgs[0].Reason != "fault-inject" || tgs[0].Node != "link" || tgs[0].AtNS != 5 {
		t.Fatalf("fault trigger = %+v", tgs[0])
	}
	if tgs[1].Reason != "slo-breach" || tgs[1].Detail != "latency:dst<1µs" {
		t.Fatalf("slo trigger = %+v", tgs[1])
	}
	if tgs[2].Reason != "checkpoint-divergence" || tgs[2].AtNS != 12 {
		t.Fatalf("manual trigger = %+v", tgs[2])
	}
	if len(hook) != 3 {
		t.Fatalf("OnTrigger fired %d times, want 3", len(hook))
	}
}

func TestRecorderAttachObservesTracer(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	tr.SetRetain(false) // recorder must not depend on the tracer's log
	r := NewRecorder(0)
	r.Attach(tr)

	tr.FaultInject("sw", "partition:sw@1ms", 1000)
	tr.SLOBreach("dst", "latency:dst<1µs", 4200)
	if r.Empty() {
		t.Fatal("attached recorder saw nothing")
	}
	if got := len(r.Triggers()); got != 2 {
		t.Fatalf("got %d auto-triggers via Attach, want 2", got)
	}
	r2 := NewRecorder(0)
	r2.Attach(nil) // must not panic
}

func TestRecorderDumpDeterministicOrder(t *testing.T) {
	mk := func() *Recorder {
		r := NewRecorder(8)
		// First-seen order z, a — the dump must still sort by node name,
		// with triggers first.
		r.Observe(ev("z", 1))
		r.Observe(ev("a", 2))
		r.Observe(ev("z", 3))
		r.Trigger("test", "detail", 4)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := mk().WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("identical recorders dumped different bytes")
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want 4", len(lines))
	}
	wantOrder := []string{`"trigger"`, `"a"`, `"z"`, `"z"`}
	for i, frag := range wantOrder {
		if !strings.Contains(lines[i], frag) {
			t.Fatalf("line %d = %s, want it to contain %s", i, lines[i], frag)
		}
	}
}

// failedTest fakes a failing testing.T for the dump-on-failure helper.
type failedTest struct {
	name   string
	failed bool
}

func (f failedTest) Failed() bool { return f.failed }
func (f failedTest) Name() string { return f.name }

func TestDumpOnFailure(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(FlightRecDirEnv, dir)

	r := NewRecorder(0)
	r.Observe(ev("sw", 1))

	DumpOnFailure(failedTest{name: "TestPassed", failed: false}, r)
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatal("dump written for a passing test")
	}

	DumpOnFailure(failedTest{name: "TestX/sub case", failed: true}, r)
	path := filepath.Join(dir, "flightrec-TestX_sub_case.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("expected dump at %s: %v", path, err)
	}
	if !strings.Contains(string(data), `"reason":"test-failure"`) {
		t.Fatalf("dump missing test-failure trigger:\n%s", data)
	}
}
