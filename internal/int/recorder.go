package intnet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"steelnet/internal/checkpoint"
	"steelnet/internal/telemetry"
)

// Recorder is the always-on flight recorder: a fixed-size ring of the
// most recent trace events per component, fed live off a Tracer's
// observer hook. Unlike the tracer's full log it is bounded — a
// multi-hour run costs the same memory as a short one — and its job is
// the post-mortem dump: when a fault fires, an SLO breaches, a
// checkpoint diverges or a test fails, Dump writes the last moments of
// every component's life, deterministically, to JSONL.
type Recorder struct {
	cap   int
	rings map[string]*eventRing
	order []string // first-seen node order

	// triggers lists dump-worthy moments in occurrence order.
	triggers []Trigger

	// OnTrigger, when set, fires on every automatic or manual trigger —
	// the CLI hooks dump-file writing here.
	OnTrigger func(Trigger)
}

// Trigger is one dump-worthy moment.
type Trigger struct {
	Reason string `json:"reason"`
	Node   string `json:"node,omitempty"`
	Detail string `json:"detail,omitempty"`
	AtNS   int64  `json:"at_ns"`
}

// eventRing holds one node's most recent events.
type eventRing struct {
	buf  []telemetry.Event
	head int
	n    int
}

func (r *eventRing) push(e telemetry.Event) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.head] = e
	r.head = (r.head + 1) % len(r.buf)
}

// events returns the ring's contents oldest-first.
func (r *eventRing) events() []telemetry.Event {
	out := make([]telemetry.Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// DefaultRecorderDepth is the per-node ring size when the caller
// passes 0: enough to cover several control cycles of every experiment
// without the recorder's memory mattering.
const DefaultRecorderDepth = 256

// NewRecorder creates a recorder keeping the last perNodeCap events per
// component (<= 0 selects DefaultRecorderDepth).
func NewRecorder(perNodeCap int) *Recorder {
	if perNodeCap <= 0 {
		perNodeCap = DefaultRecorderDepth
	}
	return &Recorder{cap: perNodeCap, rings: make(map[string]*eventRing)}
}

// Attach installs the recorder as tr's event observer. Fault
// injections and SLO breaches auto-trigger.
func (r *Recorder) Attach(tr *telemetry.Tracer) {
	if tr == nil {
		return
	}
	tr.SetObserver(r.Observe)
}

// Observe routes one event into its node's ring and fires automatic
// triggers. It is the telemetry observer the recorder installs, but can
// also be called directly when composing observers by hand.
func (r *Recorder) Observe(e telemetry.Event) {
	ring := r.rings[e.Node]
	if ring == nil {
		ring = &eventRing{buf: make([]telemetry.Event, r.cap)}
		r.rings[e.Node] = ring
		r.order = append(r.order, e.Node)
	}
	ring.push(e)
	switch e.Kind {
	case telemetry.KindFaultInject:
		r.fire(Trigger{Reason: "fault-inject", Node: e.Node, Detail: e.Detail, AtNS: e.T})
	case telemetry.KindSLOBreach:
		r.fire(Trigger{Reason: "slo-breach", Node: e.Node, Detail: e.Detail, AtNS: e.T})
	}
}

// Trigger records a manual dump-worthy moment (checkpoint divergence,
// test failure).
func (r *Recorder) Trigger(reason, detail string, atNS int64) {
	r.fire(Trigger{Reason: reason, Detail: detail, AtNS: atNS})
}

func (r *Recorder) fire(t Trigger) {
	r.triggers = append(r.triggers, t)
	if r.OnTrigger != nil {
		r.OnTrigger(t)
	}
}

// Triggers returns the recorded triggers in occurrence order.
func (r *Recorder) Triggers() []Trigger { return r.triggers }

// Empty reports whether the recorder has seen no events and no
// triggers — the CLI uses it to decide whether a merge-based sweep
// needs a catch-up feed from the retained trace.
func (r *Recorder) Empty() bool { return len(r.order) == 0 && len(r.triggers) == 0 }

// jsonTrigger is the dump wire form of a trigger line.
type jsonTrigger struct {
	Type string `json:"type"` // "trigger"
	Trigger
}

// jsonRecorded is the dump wire form of one recorded event.
type jsonRecorded struct {
	Type  string `json:"type"` // "event"
	T     int64  `json:"t"`
	Kind  string `json:"kind"`
	Cause string `json:"cause,omitempty"`
	Node  string `json:"node,omitempty"`
	Port  int32  `json:"port,omitempty"`
	Frame uint64 `json:"frame,omitempty"`
	Prio  uint8  `json:"prio,omitempty"`
	Aux   int64  `json:"aux,omitempty"`
	// Detail carries fault specs / SLO specs for those event kinds.
	Detail string `json:"detail,omitempty"`
}

// WriteJSONL dumps the recorder: every trigger in occurrence order,
// then every node's ring (sorted by node name) oldest event first. The
// output is deterministic — resume-equivalence demands byte identity.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, t := range r.triggers {
		if err := enc.Encode(jsonTrigger{Type: "trigger", Trigger: t}); err != nil {
			return err
		}
	}
	nodes := append([]string(nil), r.order...)
	sort.Strings(nodes)
	for _, node := range nodes {
		for _, e := range r.rings[node].events() {
			if err := enc.Encode(jsonRecorded{
				Type: "event", T: e.T, Kind: e.Kind.String(), Cause: e.Cause.String(),
				Node: e.Node, Port: e.Port, Frame: e.Frame, Prio: e.Prio,
				Aux: e.Aux, Detail: e.Detail,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// DumpToFile writes the recorder to path (atomically enough for CI:
// full write then close).
func (r *Recorder) DumpToFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FoldState folds every ring (first-seen node order, oldest event
// first) and the trigger log, so a restored run must rebuild the
// recorder exactly.
func (r *Recorder) FoldState(d *checkpoint.Digest) {
	d.Int(r.cap)
	d.Int(len(r.order))
	for _, node := range r.order {
		ring := r.rings[node]
		d.Str(node)
		d.Int(ring.n)
		for i := 0; i < ring.n; i++ {
			e := ring.buf[(ring.head+i)%len(ring.buf)]
			d.I64(e.T)
			d.U64(uint64(e.Kind))
			d.U64(uint64(e.Cause))
			d.U64(uint64(e.Prio))
			d.I64(int64(e.Port))
			d.U64(e.Frame)
			d.I64(e.Aux)
			d.Str(e.Node)
			d.Str(e.Detail)
		}
	}
	d.Int(len(r.triggers))
	for _, t := range r.triggers {
		d.Str(t.Reason)
		d.Str(t.Node)
		d.Str(t.Detail)
		d.I64(t.AtNS)
	}
}

// FailingTest is the subset of testing.TB the dump-on-failure helper
// needs (kept as an interface so the package does not import testing).
type FailingTest interface {
	Failed() bool
	Name() string
}

// FlightRecDirEnv names the environment variable CI sets to collect
// flight-recorder dumps from failing tests as artifacts.
const FlightRecDirEnv = "STEELNET_FLIGHTREC_DIR"

// DumpOnFailure writes the recorder to $STEELNET_FLIGHTREC_DIR when the
// test has failed (no-op otherwise, or when the variable is unset).
// Call it from a defer:
//
//	rec := intnet.NewRecorder(0)
//	rec.Attach(tr)
//	defer intnet.DumpOnFailure(t, rec)
func DumpOnFailure(t FailingTest, r *Recorder) {
	dir := os.Getenv(FlightRecDirEnv)
	if dir == "" || !t.Failed() {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	name := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			return c
		default:
			return '_'
		}
	}, t.Name())
	r.Trigger("test-failure", t.Name(), -1)
	_ = r.DumpToFile(filepath.Join(dir, fmt.Sprintf("flightrec-%s.jsonl", name)))
}
