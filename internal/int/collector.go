// Package intnet is the sink side of in-band network telemetry (INT):
// the Collector that terminates INT stacks (frame.INTStack) and folds
// them into per-path latency/jitter digests, the SLO Watchdog that
// evaluates declarative objectives against those observations, and the
// flight Recorder that keeps a bounded ring of recent trace events per
// component for post-mortem dumps.
//
// The package models the P4 INT sink role: sources and transits live in
// simnet/dataplane/tap; everything that *reads* the telemetry the
// network carried lives here. (The directory is internal/int; the
// package name is intnet because `int` would shadow the builtin.)
package intnet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"steelnet/internal/checkpoint"
	"steelnet/internal/frame"
)

// HopAgg aggregates one path position's per-hop records.
type HopAgg struct {
	// Node is the transit node at this position.
	Node string
	// Count is the number of frames that stamped this position.
	Count uint64
	// MinNS/MaxNS/SumNS aggregate the hop residence time.
	MinNS, MaxNS, SumNS int64
	// QueueMax is the deepest egress queue any frame saw here.
	QueueMax int32
	// DropRisk counts frames whose record carried the drop-risk flag.
	DropRisk uint64
}

// MeanNS is the mean hop residence time.
func (h *HopAgg) MeanNS() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNS) / float64(h.Count)
}

// PathDigest aggregates every INT stack that arrived at one sink from
// one source over one exact hop sequence. A flow that fails over to a
// different path produces a second digest — the split is the point: the
// collector sees path changes the way the data plane caused them.
type PathDigest struct {
	// Sink and Source name the terminating and originating nodes; Flow
	// is the source's flow id.
	Sink, Source string
	Flow         uint32
	// Hops lists the transit nodes in path order.
	Hops []string
	// Count is the number of frames folded in.
	Count uint64
	// MinNS/MaxNS/SumNS aggregate source→sink latency.
	MinNS, MaxNS, SumNS int64
	// JitterSumNS/JitterMaxNS aggregate |Δ| between consecutive frames'
	// latencies on this path (RFC 3550-style packet delay variation).
	JitterSumNS, JitterMaxNS int64
	// FirstAtNS/LastAtNS bracket the digest's observation window.
	FirstAtNS, LastAtNS int64
	// HopAggs aggregates per hop, aligned with Hops.
	HopAggs []HopAgg

	lastNS    int64 // previous frame's e2e latency
	hasJitter bool
}

// MeanNS is the mean end-to-end latency.
func (p *PathDigest) MeanNS() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.SumNS) / float64(p.Count)
}

// MeanJitterNS is the mean consecutive-frame delay variation.
func (p *PathDigest) MeanJitterNS() float64 {
	if p.Count < 2 {
		return 0
	}
	return float64(p.JitterSumNS) / float64(p.Count-1)
}

// PathChange records a flow arriving at a sink over a different hop
// sequence than its previous frame — the data-plane-visible signature
// of a failover. GapNS is the silence between the last frame on the old
// path and the first on the new one: observed failover latency.
type PathChange struct {
	Sink   string
	Flow   uint32
	From   string // previous path key ("" for a flow's first path)
	To     string
	AtNS   int64
	GapNS  int64
	AtSeq  uint32
	Silent uint32 // sequence numbers missing across the change
}

// Observation is the per-frame view the collector hands to OnSink
// subscribers (the SLO watchdog): one terminated stack, already folded.
type Observation struct {
	Sink, Source string
	Flow         uint32
	AtNS         int64
	// E2ENS is source→sink latency; JitterNS is |Δ| against the
	// previous frame on the same path (0 for a path's first frame).
	E2ENS    int64
	JitterNS int64
	// NewlyLost is how many sequence numbers this arrival exposed as
	// missing (0 when in order); DropRisk reports any hop flagged risk.
	NewlyLost uint64
	DropRisk  bool
	Path      *PathDigest
}

// flowKey identifies one flow at one sink.
type flowKey struct {
	sink string
	flow uint32
}

// flowState tracks per-flow sequence continuity and the current path.
type flowState struct {
	lastSeq   uint32
	lastAtNS  int64
	path      string // current path key
	received  uint64
	lost      uint64
	reordered uint64
}

// Collector terminates INT stacks. It satisfies simnet.INTSink and the
// dataplane's INTCollector structurally — one collector instance serves
// host sinks and data-plane sink actions alike. Not safe for concurrent
// use: like a Tracer it is engine-affine, and parallel sweeps give each
// cell a private collector merged afterwards with Absorb.
type Collector struct {
	paths map[string]*PathDigest
	order []*PathDigest // first-seen order, the deterministic export order
	flows map[flowKey]*flowState
	fkeys []flowKey // first-seen order
	// changes lists path changes in observation order.
	changes []PathChange
	// scratch builds path-map keys without allocating per lookup.
	scratch []byte

	// Observations counts terminated stacks.
	Observations uint64

	// OnSink, when set, sees every observation as it is folded — the
	// hook the SLO watchdog rides on.
	OnSink func(Observation)
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		paths: make(map[string]*PathDigest),
		flows: make(map[flowKey]*flowState),
	}
}

// pathKey builds the digest-map key for (sink, stack) into c.scratch.
// Map lookup via m[string(scratch)] does not allocate; only a genuinely
// new path pays for the string.
func (c *Collector) pathKey(sink string, st *frame.INTStack) []byte {
	b := c.scratch[:0]
	b = append(b, sink...)
	b = append(b, 0)
	b = append(b, byte(st.FlowID), byte(st.FlowID>>8), byte(st.FlowID>>16), byte(st.FlowID>>24))
	b = append(b, st.Source...)
	for _, h := range st.Hops {
		b = append(b, 0)
		b = append(b, h.Node...)
	}
	c.scratch = b
	return b
}

// SinkINT terminates f's INT stack at sink node at simulated time
// nowNS, folding it into the path digest and flow state. The caller
// strips the stack from the frame afterwards.
func (c *Collector) SinkINT(node string, f *frame.Frame, nowNS int64) {
	st := f.INT
	if st == nil {
		return
	}
	c.Observations++
	e2e := nowNS - st.SourceNS

	key := c.pathKey(node, st)
	p := c.paths[string(key)]
	if p == nil {
		p = &PathDigest{
			Sink: node, Source: st.Source, Flow: st.FlowID,
			MinNS: e2e, MaxNS: e2e, FirstAtNS: nowNS,
			Hops:    make([]string, len(st.Hops)),
			HopAggs: make([]HopAgg, len(st.Hops)),
		}
		for i, h := range st.Hops {
			p.Hops[i] = h.Node
			p.HopAggs[i] = HopAgg{Node: h.Node, MinNS: h.HopLatencyNS(), MaxNS: h.HopLatencyNS()}
		}
		c.paths[string(key)] = p
		c.order = append(c.order, p)
	}

	var jitter int64
	if p.hasJitter {
		jitter = e2e - p.lastNS
		if jitter < 0 {
			jitter = -jitter
		}
		p.JitterSumNS += jitter
		if jitter > p.JitterMaxNS {
			p.JitterMaxNS = jitter
		}
	}
	p.hasJitter = true
	p.lastNS = e2e
	p.Count++
	p.SumNS += e2e
	if e2e < p.MinNS {
		p.MinNS = e2e
	}
	if e2e > p.MaxNS {
		p.MaxNS = e2e
	}
	p.LastAtNS = nowNS

	dropRisk := false
	for i := range st.Hops {
		h := &st.Hops[i]
		a := &p.HopAggs[i]
		lat := h.HopLatencyNS()
		a.Count++
		a.SumNS += lat
		if lat < a.MinNS {
			a.MinNS = lat
		}
		if lat > a.MaxNS {
			a.MaxNS = lat
		}
		if h.QueueDepth > a.QueueMax {
			a.QueueMax = h.QueueDepth
		}
		if h.DropRisk {
			a.DropRisk++
			dropRisk = true
		}
	}

	fk := flowKey{sink: node, flow: st.FlowID}
	fs := c.flows[fk]
	if fs == nil {
		fs = &flowState{}
		c.flows[fk] = fs
		c.fkeys = append(c.fkeys, fk)
	}
	prevSeq := fs.lastSeq
	var newlyLost uint64
	switch {
	case prevSeq != 0 && st.Seq > prevSeq+1:
		newlyLost = uint64(st.Seq - prevSeq - 1)
		fs.lost += newlyLost
		fs.lastSeq = st.Seq
	case prevSeq != 0 && st.Seq <= prevSeq:
		fs.reordered++
	default:
		fs.lastSeq = st.Seq
	}
	fs.received++
	if fs.path != string(key) {
		if fs.path != "" {
			var silent uint32
			if st.Seq > prevSeq+1 {
				silent = st.Seq - prevSeq - 1
			}
			c.changes = append(c.changes, PathChange{
				Sink: node, Flow: st.FlowID, From: fs.path, To: string(key),
				AtNS: nowNS, GapNS: nowNS - fs.lastAtNS, AtSeq: st.Seq, Silent: silent,
			})
		}
		fs.path = string(key)
	}
	fs.lastAtNS = nowNS

	if c.OnSink != nil {
		c.OnSink(Observation{
			Sink: node, Source: st.Source, Flow: st.FlowID, AtNS: nowNS,
			E2ENS: e2e, JitterNS: jitter, NewlyLost: newlyLost,
			DropRisk: dropRisk, Path: p,
		})
	}
}

// Digests returns the path digests in first-seen order. The slice is
// the collector's own; callers must not mutate it.
func (c *Collector) Digests() []*PathDigest { return c.order }

// PathChanges returns recorded path changes in observation order.
func (c *Collector) PathChanges() []PathChange { return c.changes }

// FlowLoss returns the received/lost/reordered counters for one flow at
// one sink (zeros when never seen).
func (c *Collector) FlowLoss(sink string, flow uint32) (received, lost, reordered uint64) {
	if fs := c.flows[flowKey{sink: sink, flow: flow}]; fs != nil {
		return fs.received, fs.lost, fs.reordered
	}
	return 0, 0, 0
}

// Absorb merges other's state into c: digests for paths c has not seen
// are appended in other's first-seen order, shared paths merge their
// aggregates, flow counters add, and path changes append. Parallel
// sweeps call Absorb in deterministic cell order, which keeps the merged
// export byte-identical regardless of worker count. Consecutive-frame
// jitter cannot be stitched across the merge boundary, so each cell's
// jitter aggregates simply add — exact for sweeps, where cells are
// disjoint simulations.
func (c *Collector) Absorb(other *Collector) {
	for _, op := range other.order {
		key := c.absorbKey(op)
		p := c.paths[key]
		if p == nil {
			cp := *op
			cp.Hops = append([]string(nil), op.Hops...)
			cp.HopAggs = append([]HopAgg(nil), op.HopAggs...)
			c.paths[key] = &cp
			c.order = append(c.order, &cp)
			continue
		}
		p.Count += op.Count
		p.SumNS += op.SumNS
		if op.MinNS < p.MinNS {
			p.MinNS = op.MinNS
		}
		if op.MaxNS > p.MaxNS {
			p.MaxNS = op.MaxNS
		}
		p.JitterSumNS += op.JitterSumNS
		if op.JitterMaxNS > p.JitterMaxNS {
			p.JitterMaxNS = op.JitterMaxNS
		}
		if op.FirstAtNS < p.FirstAtNS {
			p.FirstAtNS = op.FirstAtNS
		}
		if op.LastAtNS > p.LastAtNS {
			p.LastAtNS = op.LastAtNS
		}
		for i := range op.HopAggs {
			a, oa := &p.HopAggs[i], &op.HopAggs[i]
			a.Count += oa.Count
			a.SumNS += oa.SumNS
			if oa.MinNS < a.MinNS {
				a.MinNS = oa.MinNS
			}
			if oa.MaxNS > a.MaxNS {
				a.MaxNS = oa.MaxNS
			}
			if oa.QueueMax > a.QueueMax {
				a.QueueMax = oa.QueueMax
			}
			a.DropRisk += oa.DropRisk
		}
	}
	for _, fk := range other.fkeys {
		ofs := other.flows[fk]
		fs := c.flows[fk]
		if fs == nil {
			cp := *ofs
			c.flows[fk] = &cp
			c.fkeys = append(c.fkeys, fk)
			continue
		}
		fs.received += ofs.received
		fs.lost += ofs.lost
		fs.reordered += ofs.reordered
	}
	c.changes = append(c.changes, other.changes...)
	c.Observations += other.Observations
}

// absorbKey rebuilds the digest-map key from a digest (Absorb has no
// frame to key from).
func (c *Collector) absorbKey(p *PathDigest) string {
	b := c.scratch[:0]
	b = append(b, p.Sink...)
	b = append(b, 0)
	b = append(b, byte(p.Flow), byte(p.Flow>>8), byte(p.Flow>>16), byte(p.Flow>>24))
	b = append(b, p.Source...)
	for _, h := range p.Hops {
		b = append(b, 0)
		b = append(b, h...)
	}
	c.scratch = b
	return string(b)
}

// FoldState folds the collector's digests (first-seen order), flow
// states (first-seen order) and path changes into a checkpoint digest,
// so resumed runs must reproduce the collector byte-for-byte.
func (c *Collector) FoldState(d *checkpoint.Digest) {
	d.U64(c.Observations)
	d.Int(len(c.order))
	for _, p := range c.order {
		d.Str(p.Sink)
		d.Str(p.Source)
		d.U64(uint64(p.Flow))
		d.Int(len(p.Hops))
		for i, h := range p.Hops {
			d.Str(h)
			a := &p.HopAggs[i]
			d.U64(a.Count)
			d.I64(a.MinNS)
			d.I64(a.MaxNS)
			d.I64(a.SumNS)
			d.I64(int64(a.QueueMax))
			d.U64(a.DropRisk)
		}
		d.U64(p.Count)
		d.I64(p.MinNS)
		d.I64(p.MaxNS)
		d.I64(p.SumNS)
		d.I64(p.JitterSumNS)
		d.I64(p.JitterMaxNS)
		d.I64(p.FirstAtNS)
		d.I64(p.LastAtNS)
		d.I64(p.lastNS)
		d.Bool(p.hasJitter)
	}
	d.Int(len(c.fkeys))
	for _, fk := range c.fkeys {
		fs := c.flows[fk]
		d.Str(fk.sink)
		d.U64(uint64(fk.flow))
		d.U64(uint64(fs.lastSeq))
		d.I64(fs.lastAtNS)
		d.Str(fs.path)
		d.U64(fs.received)
		d.U64(fs.lost)
		d.U64(fs.reordered)
	}
	d.Int(len(c.changes))
	for _, ch := range c.changes {
		d.Str(ch.Sink)
		d.U64(uint64(ch.Flow))
		d.Str(ch.From)
		d.Str(ch.To)
		d.I64(ch.AtNS)
		d.I64(ch.GapNS)
		d.U64(uint64(ch.AtSeq))
		d.U64(uint64(ch.Silent))
	}
}

// jsonHop is the JSONL wire form of one hop's aggregate.
type jsonHop struct {
	Node     string `json:"node"`
	Count    uint64 `json:"count"`
	MinNS    int64  `json:"min_ns"`
	MaxNS    int64  `json:"max_ns"`
	SumNS    int64  `json:"sum_ns"`
	QueueMax int32  `json:"queue_max,omitempty"`
	DropRisk uint64 `json:"drop_risk,omitempty"`
}

// jsonPath is the JSONL wire form of one path digest.
type jsonPath struct {
	Type        string    `json:"type"` // "path"
	Sink        string    `json:"sink"`
	Source      string    `json:"source"`
	Flow        uint32    `json:"flow"`
	Count       uint64    `json:"count"`
	MinNS       int64     `json:"min_ns"`
	MaxNS       int64     `json:"max_ns"`
	SumNS       int64     `json:"sum_ns"`
	JitterSumNS int64     `json:"jitter_sum_ns"`
	JitterMaxNS int64     `json:"jitter_max_ns"`
	FirstAtNS   int64     `json:"first_at_ns"`
	LastAtNS    int64     `json:"last_at_ns"`
	Hops        []jsonHop `json:"hops"`
}

// jsonChange is the JSONL wire form of one path change.
type jsonChange struct {
	Type   string `json:"type"` // "path-change"
	Sink   string `json:"sink"`
	Flow   uint32 `json:"flow"`
	AtNS   int64  `json:"at_ns"`
	GapNS  int64  `json:"gap_ns"`
	AtSeq  uint32 `json:"at_seq"`
	Silent uint32 `json:"silent,omitempty"`
}

// jsonFlow is the JSONL wire form of one flow's loss counters.
type jsonFlow struct {
	Type      string `json:"type"` // "flow"
	Sink      string `json:"sink"`
	Flow      uint32 `json:"flow"`
	Received  uint64 `json:"received"`
	Lost      uint64 `json:"lost,omitempty"`
	Reordered uint64 `json:"reordered,omitempty"`
}

// WriteJSONL exports the collector as JSON lines: path digests in
// first-seen order, then path changes in observation order, then flow
// loss counters in first-seen order. The output is deterministic, which
// is what lets the resume-equivalence test demand byte identity.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, p := range c.order {
		jp := jsonPath{
			Type: "path", Sink: p.Sink, Source: p.Source, Flow: p.Flow,
			Count: p.Count, MinNS: p.MinNS, MaxNS: p.MaxNS, SumNS: p.SumNS,
			JitterSumNS: p.JitterSumNS, JitterMaxNS: p.JitterMaxNS,
			FirstAtNS: p.FirstAtNS, LastAtNS: p.LastAtNS,
			Hops: make([]jsonHop, len(p.HopAggs)),
		}
		for i := range p.HopAggs {
			a := &p.HopAggs[i]
			jp.Hops[i] = jsonHop{
				Node: a.Node, Count: a.Count, MinNS: a.MinNS, MaxNS: a.MaxNS,
				SumNS: a.SumNS, QueueMax: a.QueueMax, DropRisk: a.DropRisk,
			}
		}
		if err := enc.Encode(jp); err != nil {
			return err
		}
	}
	for _, ch := range c.changes {
		if err := enc.Encode(jsonChange{
			Type: "path-change", Sink: ch.Sink, Flow: ch.Flow,
			AtNS: ch.AtNS, GapNS: ch.GapNS, AtSeq: ch.AtSeq, Silent: ch.Silent,
		}); err != nil {
			return err
		}
	}
	for _, fk := range c.fkeys {
		fs := c.flows[fk]
		if err := enc.Encode(jsonFlow{
			Type: "flow", Sink: fk.sink, Flow: fk.flow,
			Received: fs.received, Lost: fs.lost, Reordered: fs.reordered,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a compact multi-line text overview, one line per path
// digest, sorted export order. Used by the CLIs' -stats output.
func (c *Collector) Summary() string {
	var b []byte
	for _, p := range c.order {
		b = append(b, fmt.Sprintf("int: %s->%s flow=%d frames=%d path=%v mean=%.0fns min=%dns max=%dns jitter=%.0fns\n",
			p.Source, p.Sink, p.Flow, p.Count, p.Hops, p.MeanNS(), p.MinNS, p.MaxNS, p.MeanJitterNS())...)
	}
	keys := append([]flowKey(nil), c.fkeys...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sink != keys[j].sink {
			return keys[i].sink < keys[j].sink
		}
		return keys[i].flow < keys[j].flow
	})
	for _, fk := range keys {
		fs := c.flows[fk]
		if fs.lost > 0 || fs.reordered > 0 {
			b = append(b, fmt.Sprintf("int: %s flow=%d lost=%d reordered=%d of %d\n",
				fk.sink, fk.flow, fs.lost, fs.reordered, fs.received)...)
		}
	}
	for _, ch := range c.changes {
		b = append(b, fmt.Sprintf("int: path-change sink=%s flow=%d at=%dns gap=%dns\n",
			ch.Sink, ch.Flow, ch.AtNS, ch.GapNS)...)
	}
	return string(b)
}
