package intnet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"steelnet/internal/checkpoint"
	"steelnet/internal/telemetry"
)

func TestObjectiveRoundTrip(t *testing.T) {
	specs := []string{
		"latency:vplc1<500µs",
		"jitter:*<50µs",
		"loss:*<0.01",
		"latency:refl<250µs,loss:refl<0.1",
	}
	for _, s := range specs {
		p, err := ParseSLOPlan(s)
		if err != nil {
			t.Fatalf("ParseSLOPlan(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
	if p, err := ParseSLOPlan(""); err != nil || p != nil {
		t.Fatalf("empty spec = %v, %v; want nil plan", p, err)
	}
}

func TestObjectiveParseErrors(t *testing.T) {
	bad := map[string]string{
		"latency:vplc1":     "missing '<bound'",
		"latency<500µs":     "missing 'kind:target'",
		"p99:vplc1<500µs":   "unknown kind",
		"latency:<500µs":    "empty target",
		"latency:vplc1<web": "bad duration",
		"latency:vplc1<-1s": "non-positive bound",
		"loss:*<zero":       "bad loss fraction",
		"loss:*<0":          "loss fraction must be in (0,1)",
		"loss:*<1.5":        "loss fraction must be in (0,1)",
	}
	for spec, want := range bad {
		_, err := ParseObjective(spec)
		if err == nil {
			t.Fatalf("ParseObjective(%q) accepted", spec)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("ParseObjective(%q) = %v, want mention of %q", spec, err, want)
		}
	}
}

// obs builds a minimal observation for watchdog tests.
func obs(sink string, atNS, e2e int64) Observation {
	return Observation{Sink: sink, Source: "src", Flow: 1, AtNS: atNS, E2ENS: e2e}
}

func TestWatchdogHysteresis(t *testing.T) {
	plan, err := ParseSLOPlan("latency:dst<1µs")
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(nil)
	w := NewWatchdog(plan, 3, tr)

	over, under := int64(2000), int64(500)
	at := int64(0)
	feed := func(e2e int64, n int) {
		for i := 0; i < n; i++ {
			at += 100
			w.Observe(obs("dst", at, e2e))
		}
	}

	feed(over, 2) // two over: not enough
	if w.InBreach() {
		t.Fatal("breached after 2 consecutive over (hysteresis 3)")
	}
	feed(under, 1) // resets the over counter
	feed(over, 2)
	if w.InBreach() {
		t.Fatal("breached across a reset over-run")
	}
	feed(over, 1) // third consecutive: breach opens
	if !w.InBreach() {
		t.Fatal("not breached after 3 consecutive over")
	}
	breachAt := at
	feed(under, 2)
	if !w.InBreach() {
		t.Fatal("cleared after only 2 consecutive under")
	}
	feed(under, 1)
	if w.InBreach() {
		t.Fatal("still breached after 3 consecutive under")
	}

	bs := w.Breaches()
	if len(bs) != 1 {
		t.Fatalf("got %d breaches, want 1", len(bs))
	}
	b := bs[0]
	if b.Sink != "dst" || b.Objective != "latency:dst<1µs" {
		t.Fatalf("breach identity = %+v", b)
	}
	if b.AtNS != breachAt || b.Measured != over {
		t.Fatalf("breach onset = at %d measured %d, want %d/%d", b.AtNS, b.Measured, breachAt, over)
	}
	if b.ClearedAtNS != at {
		t.Fatalf("ClearedAtNS = %d, want %d", b.ClearedAtNS, at)
	}

	// Exactly one breach and one clear span in the trace's "slo" lane.
	var breaches, clears int
	for _, e := range tr.Events() {
		switch e.Kind {
		case telemetry.KindSLOBreach:
			breaches++
			if e.Node != "dst" || e.Detail != "latency:dst<1µs" || e.Aux != over {
				t.Fatalf("breach event = %+v", e)
			}
		case telemetry.KindSLOClear:
			clears++
		}
	}
	if breaches != 1 || clears != 1 {
		t.Fatalf("trace saw %d breach / %d clear events, want 1/1", breaches, clears)
	}
}

func TestWatchdogLossObjective(t *testing.T) {
	plan, err := ParseSLOPlan("loss:*<0.1")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(plan, 1, nil) // no hysteresis, nil tracer must be safe
	w.Observe(Observation{Sink: "dst", AtNS: 10})
	if w.InBreach() {
		t.Fatal("breached with zero loss")
	}
	// One arrival exposing 3 lost frames: 3/(3+2) = 60% > 10%.
	w.Observe(Observation{Sink: "dst", AtNS: 20, NewlyLost: 3})
	if !w.InBreach() {
		t.Fatal("not breached at 60% cumulative loss")
	}
	if m := w.Breaches()[0].Measured; m != 600_000 {
		t.Fatalf("Measured = %d lost-per-million, want 600000", m)
	}
}

func TestWatchdogWildcardTargets(t *testing.T) {
	plan, _ := ParseSLOPlan("latency:*<1µs")
	w := NewWatchdog(plan, 1, nil)
	w.Observe(obs("a", 1, 5000))
	w.Observe(obs("b", 2, 5000))
	if got := len(w.Breaches()); got != 2 {
		t.Fatalf("wildcard opened %d breaches, want one per sink", got)
	}

	scoped := NewWatchdog(SLOPlan{{Kind: SLOLatency, Target: "a", Bound: time.Microsecond}}, 1, nil)
	scoped.Observe(obs("b", 1, 5000))
	if len(scoped.Breaches()) != 0 {
		t.Fatal("scoped objective fired on a different sink")
	}
}

func TestWatchdogAttachChains(t *testing.T) {
	c := NewCollector()
	var chained int
	c.OnSink = func(Observation) { chained++ }
	plan, _ := ParseSLOPlan("latency:dst<1µs")
	w := NewWatchdog(plan, 1, nil)
	w.Attach(c)

	sinkFrame(c, "dst", "src", 1, 1, 0, 5000)
	if chained != 1 {
		t.Fatalf("previous observer called %d times, want 1", chained)
	}
	if len(w.Breaches()) != 1 {
		t.Fatalf("watchdog saw %d breaches through Attach, want 1", len(w.Breaches()))
	}
}

func TestWatchdogBreachLogJSONL(t *testing.T) {
	plan, _ := ParseSLOPlan("latency:dst<1µs")
	w := NewWatchdog(plan, 1, nil)
	w.Observe(obs("dst", 100, 9000)) // opens, never clears

	var buf bytes.Buffer
	if err := w.WriteBreachLog(&buf); err != nil {
		t.Fatal(err)
	}
	var got Breach
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("breach log line is not JSON: %v", err)
	}
	want := Breach{Objective: "latency:dst<1µs", Sink: "dst", AtNS: 100, Measured: 9000, ClearedAtNS: -1}
	if got != want {
		t.Fatalf("breach = %+v, want %+v", got, want)
	}
}

func TestWatchdogFoldDeterministic(t *testing.T) {
	mk := func() *Watchdog {
		plan, _ := ParseSLOPlan("latency:*<1µs,loss:*<0.5")
		w := NewWatchdog(plan, 2, nil)
		for i := int64(1); i <= 6; i++ {
			w.Observe(obs("a", i*10, 2000))
			w.Observe(obs("b", i*10+5, 400))
		}
		return w
	}
	fold := func(w *Watchdog) uint64 {
		d := checkpoint.NewDigest()
		w.FoldState(d)
		return d.Sum()
	}
	if fold(mk()) != fold(mk()) {
		t.Fatal("identical watchdog histories folded differently")
	}
}

func TestWatchdogAbsorb(t *testing.T) {
	plan, err := ParseSLOPlan("latency:*<1µs")
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(nil)
	// Two shard-local watchdogs over disjoint sinks: sinkA breaches and
	// clears; sinkB breaches and stays open.
	wa := NewWatchdog(plan, 2, tr)
	for i := 0; i < 2; i++ {
		wa.Observe(obs("sinkA", int64(100+i), 5000))
	}
	for i := 0; i < 2; i++ {
		wa.Observe(obs("sinkA", int64(200+i), 100))
	}
	wb := NewWatchdog(plan, 2, tr)
	for i := 0; i < 2; i++ {
		wb.Observe(obs("sinkB", int64(150+i), 9000))
	}

	merged := NewWatchdog(plan, 2, tr)
	merged.Absorb(wa)
	merged.Absorb(wb)
	bs := merged.Breaches()
	if len(bs) != 2 {
		t.Fatalf("merged %d breaches, want 2", len(bs))
	}
	if bs[0].Sink != "sinkA" || bs[0].ClearedAtNS == -1 {
		t.Fatalf("breach 0 = %+v, want cleared sinkA", bs[0])
	}
	if bs[1].Sink != "sinkB" || bs[1].ClearedAtNS != -1 {
		t.Fatalf("breach 1 = %+v, want open sinkB", bs[1])
	}
	if !merged.InBreach() {
		t.Fatal("merged watchdog lost sinkB's open breach")
	}
	// The open breach's state index survived the offset: clearing it
	// through the merged watchdog must close the right log entry.
	for i := 0; i < 2; i++ {
		merged.Observe(obs("sinkB", int64(300+i), 100))
	}
	if merged.InBreach() {
		t.Fatal("absorbed open breach did not clear")
	}
	if merged.Breaches()[1].ClearedAtNS != 301 {
		t.Fatalf("cleared at %d, want 301", merged.Breaches()[1].ClearedAtNS)
	}
	// Same shard-merge order, same digest: absorb is deterministic.
	again := NewWatchdog(plan, 2, tr)
	again.Absorb(wa)
	again.Absorb(wb)
	for i := 0; i < 2; i++ {
		again.Observe(obs("sinkB", int64(300+i), 100))
	}
	d1, d2 := checkpoint.NewDigest(), checkpoint.NewDigest()
	merged.FoldState(d1)
	again.FoldState(d2)
	if d1.Sum() != d2.Sum() {
		t.Fatalf("absorb not deterministic: %#x != %#x", d1.Sum(), d2.Sum())
	}
}

func TestWatchdogAbsorbRejectsOverlapAndPlanMismatch(t *testing.T) {
	plan, _ := ParseSLOPlan("latency:*<1µs")
	other, _ := ParseSLOPlan("jitter:*<1µs")
	tr := telemetry.NewTracer(nil)
	a := NewWatchdog(plan, 2, tr)
	a.Observe(obs("s", 1, 10))
	b := NewWatchdog(plan, 2, tr)
	b.Observe(obs("s", 1, 10))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overlapping sinks did not panic")
			}
		}()
		a.Absorb(b)
	}()
	c := NewWatchdog(other, 2, tr)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("plan mismatch did not panic")
			}
		}()
		a.Absorb(c)
	}()
}
