// Package tsn synthesizes pre-computed transmission schedules for
// cyclic real-time flows — the "arbitrary scheduling algorithms that
// define pre-computed transmission schedules for pre-defined flows"
// the paper credits TSN with (§1.1, [95]). Given a set of periodic
// flows sharing a multi-hop trunk, Synthesize assigns each flow a
// transmission offset inside its period such that no two transmissions
// ever contend for a link, across the whole hyperperiod and along
// every hop (no-wait wave scheduling with guard bands). The result
// converts into per-port 802.1Qbv gate control lists, and — because
// contention is designed away — the flows see zero queueing jitter by
// construction, which the tests verify against the simulator.
package tsn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// FlowSpec is one cyclic flow to schedule.
type FlowSpec struct {
	ID uint32
	// Period is the flow's cycle time.
	Period time.Duration
	// FrameBytes is the wire size of one transmission.
	FrameBytes int
}

// PathSpec is the shared trunk every flow traverses.
type PathSpec struct {
	// Hops is the number of links in the trunk chain.
	Hops int
	// LinkBps is the trunk rate.
	LinkBps float64
	// SwitchLatency is the per-switch forwarding delay.
	SwitchLatency time.Duration
	// GuardBand pads every transmission window (clock error, jitter).
	GuardBand time.Duration
}

// Assignment is one flow's computed slot.
type Assignment struct {
	Flow FlowSpec
	// Offset is the transmission time within each period at hop 0.
	Offset time.Duration
	// Ser is the flow's per-hop serialization time.
	Ser time.Duration
	// Window is the reserved occupancy at hop 0: Hops×Ser plus the
	// guard band. The reservation is wormhole-conservative: frames
	// advance per hop by their *own* serialization plus the switch
	// latency, so a small frame following a large one converges on it
	// downstream — reserving Hops×Ser at the first hop guarantees the
	// gap survives every hop.
	Window time.Duration
}

// Schedule is a complete synthesis result.
type Schedule struct {
	Path        PathSpec
	Hyperperiod time.Duration
	Assignments []Assignment
}

// Errors.
var (
	ErrInfeasible = errors.New("tsn: no feasible offset assignment")
	ErrBadSpec    = errors.New("tsn: invalid specification")
)

// granularity is the offset search step.
const granularity = time.Microsecond

// Synthesize computes offsets via first-fit over the hyperperiod,
// longest-window flows first (a decreasing-fit heuristic). It returns
// ErrInfeasible when the flows cannot fit.
func Synthesize(flows []FlowSpec, path PathSpec) (*Schedule, error) {
	if len(flows) == 0 || path.Hops < 1 || path.LinkBps <= 0 {
		return nil, ErrBadSpec
	}
	for _, f := range flows {
		if f.Period <= 0 || f.FrameBytes <= 0 {
			return nil, fmt.Errorf("%w: flow %d", ErrBadSpec, f.ID)
		}
	}
	hyper := flows[0].Period
	for _, f := range flows[1:] {
		hyper = lcm(hyper, f.Period)
		if hyper <= 0 || hyper > time.Second {
			return nil, fmt.Errorf("%w: hyperperiod overflow", ErrBadSpec)
		}
	}
	// Sort by window length descending (bigger frames are harder to
	// place), then by period (faster flows first), for determinism.
	order := append([]FlowSpec(nil), flows...)
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := window(order[i], path), window(order[j], path)
		if wi != wj {
			return wi > wj
		}
		return order[i].Period < order[j].Period
	})

	var occupied []interval // busy intervals at hop 0, within hyperperiod
	sched := &Schedule{Path: path, Hyperperiod: hyper}
	for _, f := range order {
		w := window(f, path)
		if w >= f.Period {
			return nil, fmt.Errorf("%w: flow %d window %v exceeds period %v", ErrInfeasible, f.ID, w, f.Period)
		}
		placed := false
		for off := time.Duration(0); off+w <= f.Period; off += granularity {
			if fits(occupied, f, off, w, hyper) {
				reps := int(hyper / f.Period)
				for k := 0; k < reps; k++ {
					start := time.Duration(k)*f.Period + off
					occupied = append(occupied, interval{start, start + w})
				}
				sched.Assignments = append(sched.Assignments, Assignment{Flow: f, Offset: off, Ser: ser(f, path), Window: w})
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("%w: flow %d", ErrInfeasible, f.ID)
		}
	}
	sort.Slice(sched.Assignments, func(i, j int) bool {
		return sched.Assignments[i].Flow.ID < sched.Assignments[j].Flow.ID
	})
	return sched, nil
}

// ser is a flow's per-hop serialization time.
func ser(f FlowSpec, path PathSpec) time.Duration {
	bytes := f.FrameBytes
	if bytes < 64 {
		bytes = 64
	}
	return time.Duration(float64(bytes*8) / path.LinkBps * 1e9)
}

// window is a flow's reservation at hop 0 (see Assignment.Window).
func window(f FlowSpec, path PathSpec) time.Duration {
	return time.Duration(path.Hops)*ser(f, path) + path.GuardBand
}

type interval struct{ start, end time.Duration }

// fits reports whether flow f at offset off collides with any occupied
// interval across its repetitions in the hyperperiod.
func fits(occupied []interval, f FlowSpec, off, w, hyper time.Duration) bool {
	reps := int(hyper / f.Period)
	for k := 0; k < reps; k++ {
		start := time.Duration(k)*f.Period + off
		end := start + w
		for _, iv := range occupied {
			if start < iv.end && iv.start < end {
				return false
			}
		}
	}
	return true
}

// OffsetAt returns when flow id's frame starts transmission at hop
// (0-based): each hop shifts by the flow's own serialization plus the
// switch latency. false when the flow is not scheduled.
func (s *Schedule) OffsetAt(id uint32, hop int) (time.Duration, bool) {
	for _, a := range s.Assignments {
		if a.Flow.ID == id {
			return a.Offset + time.Duration(hop)*(a.Ser+s.Path.SwitchLatency), true
		}
	}
	return 0, false
}

// Validate re-checks the non-overlap invariant at every hop using the
// frames' actual per-hop occupancies (their own serialization shifts),
// not the conservative reservations; a nil return means the schedule
// is contention-free end to end.
func (s *Schedule) Validate() error {
	for hop := 0; hop < s.Path.Hops; hop++ {
		var ivs []interval
		for _, a := range s.Assignments {
			reps := int(s.Hyperperiod / a.Flow.Period)
			base := a.Offset + time.Duration(hop)*(a.Ser+s.Path.SwitchLatency)
			for k := 0; k < reps; k++ {
				start := (time.Duration(k)*a.Flow.Period + base) % s.Hyperperiod
				ivs = append(ivs, interval{start, start + a.Ser})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				return fmt.Errorf("tsn: overlap at hop %d: [%v,%v) vs [%v,%v)",
					hop, ivs[i-1].start, ivs[i-1].end, ivs[i].start, ivs[i].end)
			}
		}
	}
	return nil
}

// GateScheduleAt builds the 802.1Qbv gate control list for the egress
// port at hop: RT-exclusive gates exactly over the reserved windows,
// everything open in between. The hyperperiod is the gate cycle.
func (s *Schedule) GateScheduleAt(hop int) (*simnet.GateSchedule, error) {
	var raw []interval
	for _, a := range s.Assignments {
		reps := int(s.Hyperperiod / a.Flow.Period)
		base := a.Offset + time.Duration(hop)*(a.Ser+s.Path.SwitchLatency)
		for k := 0; k < reps; k++ {
			start := (time.Duration(k)*a.Flow.Period + base) % s.Hyperperiod
			end := start + a.Ser + s.Path.GuardBand
			if end > s.Hyperperiod {
				// Split wrap-around windows.
				raw = append(raw, interval{start, s.Hyperperiod}, interval{0, end - s.Hyperperiod})
				continue
			}
			raw = append(raw, interval{start, end})
		}
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].start < raw[j].start })
	// Merge touching/overlapping guard-extended windows.
	var ivs []interval
	for _, iv := range raw {
		if n := len(ivs); n > 0 && iv.start <= ivs[n-1].end {
			if iv.end > ivs[n-1].end {
				ivs[n-1].end = iv.end
			}
			continue
		}
		ivs = append(ivs, iv)
	}
	var windows []simnet.GateWindow
	rt := simnet.MaskOf(frame.PrioRT, frame.PrioNetControl)
	cursor := time.Duration(0)
	for _, iv := range ivs {
		if iv.start > cursor {
			windows = append(windows, simnet.GateWindow{
				Offset: sim.Duration(cursor), Duration: sim.Duration(iv.start - cursor), Mask: simnet.MaskAll,
			})
		}
		windows = append(windows, simnet.GateWindow{
			Offset: sim.Duration(iv.start), Duration: sim.Duration(iv.end - iv.start), Mask: rt,
		})
		cursor = iv.end
	}
	if cursor < s.Hyperperiod {
		windows = append(windows, simnet.GateWindow{
			Offset: sim.Duration(cursor), Duration: sim.Duration(s.Hyperperiod - cursor), Mask: simnet.MaskAll,
		})
	}
	return simnet.NewGateSchedule(sim.Duration(s.Hyperperiod), windows)
}

func gcd(a, b time.Duration) time.Duration {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b time.Duration) time.Duration { return a / gcd(a, b) * b }
