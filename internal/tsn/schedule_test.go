package tsn

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/metrics"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

func path() PathSpec {
	return PathSpec{Hops: 3, LinkBps: 100e6, SwitchLatency: 2 * time.Microsecond, GuardBand: 2 * time.Microsecond}
}

func TestSynthesizeSimpleFlows(t *testing.T) {
	flows := []FlowSpec{
		{ID: 1, Period: time.Millisecond, FrameBytes: 64},
		{ID: 2, Period: time.Millisecond, FrameBytes: 64},
		{ID: 3, Period: 2 * time.Millisecond, FrameBytes: 128},
	}
	s, err := Synthesize(flows, path())
	if err != nil {
		t.Fatal(err)
	}
	if s.Hyperperiod != 2*time.Millisecond {
		t.Fatalf("hyperperiod = %v", s.Hyperperiod)
	}
	if len(s.Assignments) != 3 {
		t.Fatalf("assignments = %d", len(s.Assignments))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeRejectsBadSpecs(t *testing.T) {
	if _, err := Synthesize(nil, path()); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Synthesize([]FlowSpec{{ID: 1, Period: 0, FrameBytes: 64}}, path()); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v", err)
	}
	p := path()
	p.Hops = 0
	if _, err := Synthesize([]FlowSpec{{ID: 1, Period: time.Millisecond, FrameBytes: 64}}, p); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("err = %v", err)
	}
}

func TestSynthesizeInfeasibleOverload(t *testing.T) {
	// 200 flows of 7.7µs windows in a 500µs period cannot fit.
	var flows []FlowSpec
	for i := 0; i < 200; i++ {
		flows = append(flows, FlowSpec{ID: uint32(i), Period: 500 * time.Microsecond, FrameBytes: 64})
	}
	if _, err := Synthesize(flows, path()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestSynthesizeWindowExceedsPeriod(t *testing.T) {
	flows := []FlowSpec{{ID: 1, Period: 50 * time.Microsecond, FrameBytes: 1500}}
	if _, err := Synthesize(flows, path()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v", err)
	}
}

func TestValidatePropertyOnRandomFlowSets(t *testing.T) {
	f := func(seed uint8, counts [4]uint8) bool {
		var flows []FlowSpec
		periods := []time.Duration{500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
		id := uint32(1)
		for i, c := range counts {
			for k := 0; k < int(c%4); k++ {
				flows = append(flows, FlowSpec{ID: id, Period: periods[i], FrameBytes: 64 + int(seed)%200})
				id++
			}
		}
		if len(flows) == 0 {
			return true
		}
		s, err := Synthesize(flows, path())
		if err != nil {
			return errors.Is(err, ErrInfeasible) // rejection must be typed
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetAt(t *testing.T) {
	flows := []FlowSpec{{ID: 7, Period: time.Millisecond, FrameBytes: 64}}
	s, err := Synthesize(flows, path())
	if err != nil {
		t.Fatal(err)
	}
	o0, ok := s.OffsetAt(7, 0)
	if !ok {
		t.Fatal("flow not found")
	}
	o2, _ := s.OffsetAt(7, 2)
	perHop := s.Assignments[0].Ser + s.Path.SwitchLatency
	if o2 != o0+2*perHop {
		t.Fatalf("hop offsets: %v vs %v (per-hop %v)", o0, o2, perHop)
	}
	if _, ok := s.OffsetAt(99, 0); ok {
		t.Fatal("phantom flow found")
	}
}

func TestGateScheduleTilesHyperperiod(t *testing.T) {
	flows := []FlowSpec{
		{ID: 1, Period: time.Millisecond, FrameBytes: 64},
		{ID: 2, Period: 2 * time.Millisecond, FrameBytes: 256},
	}
	s, err := Synthesize(flows, path())
	if err != nil {
		t.Fatal(err)
	}
	for hop := 0; hop < s.Path.Hops; hop++ {
		g, err := s.GateScheduleAt(hop)
		if err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
		if g.Cycle != sim.Duration(s.Hyperperiod) {
			t.Fatalf("cycle = %v", g.Cycle)
		}
	}
}

// TestScheduledFlowsHaveZeroQueueingJitter is the synthesis-vs-
// simulator cross check: senders transmit at their assigned offsets
// over a shared 3-switch line; because the schedule is contention-free,
// every frame finds every queue empty and inter-arrival jitter at the
// sink is zero (up to nothing at all — the path is deterministic).
func TestScheduledFlowsHaveZeroQueueingJitter(t *testing.T) {
	flows := []FlowSpec{
		{ID: 1, Period: time.Millisecond, FrameBytes: 64},
		{ID: 2, Period: time.Millisecond, FrameBytes: 200},
		{ID: 3, Period: 2 * time.Millisecond, FrameBytes: 128},
	}
	p := path()
	s, err := Synthesize(flows, p)
	if err != nil {
		t.Fatal(err)
	}

	e := sim.NewEngine(1)
	// Line: senders -> sw0 -> sw1 -> sw2 -> sink; trunk = 3 hops.
	sws := make([]*simnet.Switch, 3)
	for i := range sws {
		// Deterministic switches: scheduled networks assume bounded,
		// constant forwarding latency.
		sws[i] = simnet.NewSwitch(e, "sw", 8, simnet.SwitchConfig{Latency: sim.Duration(p.SwitchLatency)})
	}
	simnet.Connect(e, "t0", sws[0].Port(6), sws[1].Port(7), p.LinkBps, 0)
	simnet.Connect(e, "t1", sws[1].Port(6), sws[2].Port(7), p.LinkBps, 0)
	sink := simnet.NewHost(e, "sink", frame.NewMAC(100))
	simnet.Connect(e, "sink", sws[2].Port(5), sink.Port(), p.LinkBps, 0)

	arrivals := map[uint32][]int64{}
	sink.OnReceive(func(f *frame.Frame) {
		arrivals[f.Meta.FlowID] = append(arrivals[f.Meta.FlowID], int64(e.Now()))
	})

	for i, fl := range flows {
		fl := fl
		src := simnet.NewHost(e, "src", frame.NewMAC(uint32(i+1)))
		simnet.Connect(e, "acc", src.Port(), sws[0].Port(i), 1e9, 0)
		off, _ := s.OffsetAt(fl.ID, 0)
		e.Every(sim.Time(off), fl.Period, func() {
			src.Send(&frame.Frame{
				Dst: sink.MAC(), Tagged: true, Priority: frame.PrioRT, VID: 10,
				Type:    frame.TypeProfinet,
				Payload: make([]byte, fl.FrameBytes-18),
				Meta:    frame.Meta{FlowID: fl.ID},
			})
		})
	}
	// Static routes to the sink.
	for _, sw := range sws {
		sw.AddStatic(sink.MAC(), map[*simnet.Switch]int{sws[0]: 6, sws[1]: 6, sws[2]: 5}[sw])
	}
	e.RunUntil(sim.Time(200 * time.Millisecond))

	for _, fl := range flows {
		got := arrivals[fl.ID]
		want := int(200*time.Millisecond/fl.Period) - 1
		if len(got) < want {
			t.Fatalf("flow %d delivered %d, want >= %d", fl.ID, len(got), want)
		}
		jit := metrics.InterArrivalJitter(got, fl.Period)
		if jit.Max() != 0 {
			t.Fatalf("flow %d max jitter = %vns, want 0 (contention-free)", fl.ID, jit.Max())
		}
	}
}

func TestUnscheduledFlowsDoQueue(t *testing.T) {
	// Control: the same flows all transmitting at offset 0 collide and
	// pick up queueing jitter — showing the schedule is what removes it.
	p := path()
	e := sim.NewEngine(1)
	sw := simnet.NewSwitch(e, "sw", 8, simnet.SwitchConfig{Latency: sim.Duration(p.SwitchLatency)})
	sink := simnet.NewHost(e, "sink", frame.NewMAC(100))
	simnet.Connect(e, "sink", sw.Port(7), sink.Port(), p.LinkBps, 0)
	sw.AddStatic(sink.MAC(), 7)
	arrivals := map[uint32][]int64{}
	sink.OnReceive(func(f *frame.Frame) {
		arrivals[f.Meta.FlowID] = append(arrivals[f.Meta.FlowID], int64(e.Now()))
	})
	for i := 0; i < 3; i++ {
		id := uint32(i + 1)
		src := simnet.NewHost(e, "src", frame.NewMAC(id))
		simnet.Connect(e, "acc", src.Port(), sw.Port(i), 1e9, 0)
		e.Every(0, time.Millisecond, func() {
			src.Send(&frame.Frame{
				Dst: sink.MAC(), Tagged: true, Priority: frame.PrioRT, VID: 10,
				Type: frame.TypeProfinet, Payload: make([]byte, 100),
				Meta: frame.Meta{FlowID: id},
			})
		})
	}
	e.RunUntil(sim.Time(100 * time.Millisecond))
	// The last flow in FIFO order waits behind two 118-byte frames.
	jit := metrics.InterArrivalJitter(arrivals[3], time.Millisecond)
	_ = jit
	// At least one flow must see nonzero queueing-induced arrival skew
	// relative to another (they cannot all arrive at their send phase).
	var skews []int64
	for id := uint32(1); id <= 3; id++ {
		if len(arrivals[id]) > 0 {
			skews = append(skews, arrivals[id][0])
		}
	}
	if len(skews) < 3 || (skews[0] == skews[1] && skews[1] == skews[2]) {
		t.Fatalf("colliding flows arrived identically: %v", skews)
	}
}
