// Package checkpoint is the versioned, deterministic serialization
// layer under steelnet's checkpoint/restore subsystem. A checkpoint file
// carries a format version, the kind of run it snapshots, a set of named
// opaque sections, and a trailing content digest that detects truncation
// or corruption before any section is interpreted.
//
// The simulator schedules Go closures, which cannot be serialized, so
// steelnet checkpoints are replay-anchored: a checkpoint records the
// run's full configuration, the simulated instant it was taken at, and
// an incremental Digest of all live state. Restore rebuilds the scenario
// from the configuration, replays deterministically to the recorded
// instant, and verifies the replayed state digest against the recorded
// one — a mismatch fails loudly instead of resuming from a state the
// original run never had. What the digest folds per subsystem is listed
// in DESIGN.md ("Checkpoint & replay").
package checkpoint

import (
	"errors"
	"fmt"
	"io"
)

// magic identifies a steelnet checkpoint file.
var magic = [8]byte{'S', 'T', 'E', 'E', 'L', 'C', 'K', 'P'}

// FormatVersion is the current encoding version. Bump it ONLY with a
// migration path: readers reject any other version, and the golden
// corpus under testdata/ pins the byte-level encoding of every
// experiment's checkpoint against accidental drift.
//
// History:
//
//	1: initial format.
//	2: in-band telemetry. Scenario codecs gained the INT enable bit
//	   (instaplc, reflection, mltopo) and chaos cells persist
//	   INTObservations; state digests fold INT counters (per-port and
//	   per-switch INTDrops, host INT sequence numbers), so v1 digests
//	   no longer verify against replayed v2 state.
//	3: sharded execution. Every engine's state digest now begins with a
//	   shard-layout prefix (shard index, shard count, clock), shard
//	   groups fold per-shard digests in fixed shard order plus any
//	   messages held in window outboxes, and the campus experiment kind
//	   was added. v2 digests no longer verify against replayed v3
//	   state; there is no in-place migration — rerun the experiment and
//	   checkpoint again under v3.
const FormatVersion = 3

// ErrVersion wraps version-mismatch failures for errors.Is.
var ErrVersion = errors.New("checkpoint: format version mismatch")

// ErrCorrupt wraps integrity failures (bad magic, bad trailing digest,
// truncated payloads) for errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt file")

// Section is one named opaque payload inside a checkpoint file.
type Section struct {
	Name string
	Data []byte
}

// File is a decoded checkpoint.
type File struct {
	Version  uint32
	Kind     string
	Sections []Section
}

// Section returns the named section's payload, or false.
func (f *File) Section(name string) ([]byte, bool) {
	for _, s := range f.Sections {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

// Write serializes a checkpoint of the given kind to w. Sections are
// written in the order given; callers must use a fixed order so files
// are byte-stable across runs.
func Write(w io.Writer, kind string, sections []Section) error {
	e := NewEncoder()
	e.buf = append(e.buf, magic[:]...)
	e.U32(FormatVersion)
	e.Str(kind)
	e.U32(uint32(len(sections)))
	for _, s := range sections {
		e.Str(s.Name)
		e.Bytes(s.Data)
	}
	d := NewDigest()
	d.Bytes(e.Data())
	e.U64(d.Sum())
	_, err := w.Write(e.Data())
	return err
}

// Read decodes a checkpoint from r, verifying magic, version and the
// trailing content digest. A version mismatch is rejected with explicit
// migration instructions — resuming across encodings would silently
// desynchronize the restored state from the recorded digest.
func Read(r io.Reader) (*File, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	if len(raw) < len(magic)+4+8 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than any checkpoint", ErrCorrupt, len(raw))
	}
	for i := range magic {
		if raw[i] != magic[i] {
			return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, raw[:len(magic)])
		}
	}
	body, trailer := raw[:len(raw)-8], raw[len(raw)-8:]
	d := NewDigest()
	d.Bytes(body)
	if got := NewDecoder(trailer).U64(); got != d.Sum() {
		return nil, fmt.Errorf("%w: content digest %#x does not match trailer %#x (truncated or modified file)",
			ErrCorrupt, d.Sum(), got)
	}
	dec := NewDecoder(body[len(magic):])
	f := &File{Version: dec.U32()}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("%w: file is version %d, this build reads version %d.\n"+
			"Migration: re-create the checkpoint with a build matching its version, let the run finish\n"+
			"(or resume and re-checkpoint), then switch builds. If this file is a golden corpus entry\n"+
			"under internal/checkpoint/testdata/, the encoding drifted without a FormatVersion bump:\n"+
			"restore the old encoding, or bump FormatVersion, document the change in DESIGN.md\n"+
			"(\"Checkpoint & replay\"), and regenerate the corpus with `go test ./internal/checkpoint -run TestGolden -update`.",
			ErrVersion, f.Version, FormatVersion)
	}
	f.Kind = dec.Str()
	n := int(dec.U32())
	for i := 0; i < n && dec.Err() == nil; i++ {
		f.Sections = append(f.Sections, Section{Name: dec.Str(), Data: dec.BytesVal()})
	}
	if dec.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, dec.Err())
	}
	return f, nil
}

// Harness checkpoints — the single-run layout shared by all resumable
// experiment harnesses: a "config" section (experiment-specific
// encoding), the simulated instant the snapshot was taken at, and the
// state digest at that instant.

// WriteHarness writes a single-run harness checkpoint.
func WriteHarness(w io.Writer, kind string, config []byte, at int64, digest uint64) error {
	prog := NewEncoder()
	prog.I64(at)
	prog.U64(digest)
	return Write(w, kind, []Section{
		{Name: "config", Data: config},
		{Name: "progress", Data: prog.Data()},
	})
}

// ReadHarness reads a single-run harness checkpoint, checking the kind.
func ReadHarness(r io.Reader, wantKind string) (config []byte, at int64, digest uint64, err error) {
	f, err := Read(r)
	if err != nil {
		return nil, 0, 0, err
	}
	if f.Kind != wantKind {
		return nil, 0, 0, fmt.Errorf("checkpoint: file holds a %q checkpoint, want %q", f.Kind, wantKind)
	}
	config, ok := f.Section("config")
	if !ok {
		return nil, 0, 0, fmt.Errorf("%w: missing config section", ErrCorrupt)
	}
	prog, ok := f.Section("progress")
	if !ok {
		return nil, 0, 0, fmt.Errorf("%w: missing progress section", ErrCorrupt)
	}
	dec := NewDecoder(prog)
	at = dec.I64()
	digest = dec.U64()
	if dec.Err() != nil {
		return nil, 0, 0, fmt.Errorf("%w: %v", ErrCorrupt, dec.Err())
	}
	return config, at, digest, nil
}

// DivergenceError reports a restore whose replay did not reproduce the
// recorded state digest — the checkpoint and the current build (or
// configuration) disagree about what happened before the snapshot.
type DivergenceError struct {
	Kind     string
	At       int64
	Recorded uint64
	Replayed uint64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("checkpoint: %s replay diverged at t=%dns: recorded state digest %#x, replayed %#x "+
		"(the binary or configuration no longer reproduces the checkpointed run)",
		e.Kind, e.At, e.Recorded, e.Replayed)
}
