package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder builds a deterministic binary payload: fixed-width
// little-endian primitives, length-prefixed strings and slices, no
// reflection and no map-order dependence. The same value sequence always
// produces the same bytes — the property the golden-corpus compatibility
// test and the byte-identical resume contract both rest on.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Data returns the encoded bytes.
func (e *Encoder) Data() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 by its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes appends a u32 length prefix and the bytes.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// F64Slice appends a length-prefixed []float64.
func (e *Encoder) F64Slice(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// IntSlice appends a length-prefixed []int.
func (e *Encoder) IntSlice(vs []int) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.Int(v)
	}
}

// Decoder reads what Encoder wrote. Errors are sticky: after the first
// short read every accessor returns the zero value and Err() reports the
// failure, so decode sequences read linearly without per-call checks.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("checkpoint: truncated payload: need %d bytes at offset %d of %d", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64-encoded int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a boolean byte.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// F64 reads an IEEE-754 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// BytesVal reads a length-prefixed byte slice (copied).
func (d *Decoder) BytesVal() []byte {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// F64Slice reads a length-prefixed []float64.
func (d *Decoder) F64Slice() []float64 {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.F64())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// IntSlice reads a length-prefixed []int.
func (d *Decoder) IntSlice() []int {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Int())
	}
	if d.err != nil {
		return nil
	}
	return out
}
