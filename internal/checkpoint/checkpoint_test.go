package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	secs := []Section{
		{Name: "config", Data: []byte{1, 2, 3}},
		{Name: "progress", Data: []byte{}},
		{Name: "extra", Data: bytes.Repeat([]byte{0xab}, 300)},
	}
	var buf bytes.Buffer
	if err := Write(&buf, "reflection", secs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if f.Version != FormatVersion || f.Kind != "reflection" {
		t.Fatalf("header = v%d kind %q", f.Version, f.Kind)
	}
	if len(f.Sections) != len(secs) {
		t.Fatalf("got %d sections, want %d", len(f.Sections), len(secs))
	}
	for i, s := range secs {
		if f.Sections[i].Name != s.Name || !bytes.Equal(f.Sections[i].Data, s.Data) {
			t.Errorf("section %d mismatch: %q", i, f.Sections[i].Name)
		}
	}
	if _, ok := f.Section("missing"); ok {
		t.Error("Section(missing) = ok")
	}
}

func TestWriteDeterministic(t *testing.T) {
	secs := []Section{{Name: "a", Data: []byte("payload")}}
	var b1, b2 bytes.Buffer
	if err := Write(&b1, "k", secs); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, "k", secs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two writes of the same checkpoint differ")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "k", []Section{{Name: "s", Data: []byte("data")}}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(good); cut++ {
			if _, err := Read(bytes.NewReader(good[:len(good)-cut])); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d: err = %v, want ErrCorrupt", cut, err)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for i := range good {
			bad := bytes.Clone(good)
			bad[i] ^= 0x40
			_, err := Read(bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("bit flip at offset %d accepted", i)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestReadRejectsVersionDrift(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "k", nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Patch the version field (right after magic) and re-seal the trailer
	// digest so only the version check can fire.
	raw[len(magic)] = FormatVersion + 1
	body := raw[:len(raw)-8]
	d := NewDigest()
	d.Bytes(body)
	e := &Encoder{buf: body}
	e.U64(d.Sum())
	_, err := Read(bytes.NewReader(e.Data()))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	for _, want := range []string{"Migration", "FormatVersion", "testdata"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("version error lacks %q instructions:\n%s", want, err)
		}
	}
}

func TestHarnessRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := []byte("encoded-config")
	if err := WriteHarness(&buf, "instaplc", cfg, 123456789, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	gotCfg, at, dig, err := ReadHarness(bytes.NewReader(buf.Bytes()), "instaplc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCfg, cfg) || at != 123456789 || dig != 0xdeadbeefcafe {
		t.Fatalf("round trip = (%q, %d, %#x)", gotCfg, at, dig)
	}
	if _, _, _, err := ReadHarness(bytes.NewReader(buf.Bytes()), "mrp"); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U8(7)
	e.U16(65500)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(-7)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.14159)
	e.Bytes([]byte{9, 8, 7})
	e.Str("héllo")
	e.F64Slice([]float64{1.5, -2.5})
	e.IntSlice([]int{3, -4, 5})

	d := NewDecoder(e.Data())
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U16(); v != 65500 {
		t.Errorf("U16 = %d", v)
	}
	if v := d.U32(); v != 1<<30 {
		t.Errorf("U32 = %d", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != -7 {
		t.Errorf("Int = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool order wrong")
	}
	if v := d.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if v := d.BytesVal(); !bytes.Equal(v, []byte{9, 8, 7}) {
		t.Errorf("BytesVal = %v", v)
	}
	if v := d.Str(); v != "héllo" {
		t.Errorf("Str = %q", v)
	}
	if v := d.F64Slice(); len(v) != 2 || v[0] != 1.5 || v[1] != -2.5 {
		t.Errorf("F64Slice = %v", v)
	}
	if v := d.IntSlice(); len(v) != 3 || v[0] != 3 || v[1] != -4 || v[2] != 5 {
		t.Errorf("IntSlice = %v", v)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if v := d.U64(); v != 0 || d.Err() == nil {
		t.Fatalf("short U64 = %d err=%v", v, d.Err())
	}
	// Every later read must stay zero-valued with the original error.
	first := d.Err()
	if d.U8() != 0 || d.Str() != "" || d.Bool() {
		t.Error("reads after error not zero-valued")
	}
	if d.Err() != first {
		t.Error("error was replaced")
	}
}

func TestDigestDistinguishesFoldShapes(t *testing.T) {
	sum := func(fold func(d *Digest)) uint64 {
		d := NewDigest()
		fold(d)
		return d.Sum()
	}
	// Length prefixes keep ("ab","c") and ("a","bc") apart.
	a := sum(func(d *Digest) { d.Str("ab"); d.Str("c") })
	b := sum(func(d *Digest) { d.Str("a"); d.Str("bc") })
	if a == b {
		t.Error("digest conflates string boundaries")
	}
	if sum(func(d *Digest) { d.U64(1) }) == sum(func(d *Digest) { d.U64(2) }) {
		t.Error("digest conflates values")
	}
	if sum(func(d *Digest) { d.Bool(true) }) == sum(func(d *Digest) { d.Bool(false) }) {
		t.Error("digest conflates booleans")
	}
	// Same fold sequence must be stable.
	if sum(func(d *Digest) { d.F64(1.5); d.Bytes([]byte{1}) }) != sum(func(d *Digest) { d.F64(1.5); d.Bytes([]byte{1}) }) {
		t.Error("digest not deterministic")
	}
}
