package checkpoint_test

// Differential-replay verification: for every experiment harness, run
// straight to 2N with a checkpoint taken at N, then separately restore
// that checkpoint and run to 2N. The restored run must be
// byte-identical — rendered figures, telemetry JSONL timelines,
// metrics snapshots and frame-conservation accounts. This is the
// strongest determinism test in the repo: any hidden state the
// checkpoint digest misses, any RNG stream the rebuild wires
// differently, any iteration-order dependence shows up as a diff here.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"steelnet/internal/checkpoint"
	"steelnet/internal/core"
	"steelnet/internal/instaplc"
	"steelnet/internal/mltopo"
	"steelnet/internal/mlwork"
	"steelnet/internal/mrp"
	"steelnet/internal/reflection"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// resumable is what every experiment harness offers the verifier.
type resumable interface {
	AdvanceTo(t sim.Time)
	Horizon() sim.Time
	Digest() uint64
	Save(w io.Writer) error
}

// resumeCase builds one harness kind with telemetry attached and knows
// how to restore it and render its observable output.
type resumeCase struct {
	name    string
	build   func(tr *telemetry.Tracer, reg *telemetry.Registry) resumable
	restore func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error)
	render  func(h resumable) string
}

func smallInstaplcConfig() instaplc.ExperimentConfig {
	cfg := instaplc.DefaultExperimentConfig()
	cfg.SecondaryJoinAt = 100 * time.Millisecond
	cfg.FailAt = 300 * time.Millisecond
	cfg.Horizon = 800 * time.Millisecond
	return cfg
}

func resumeCases() []resumeCase {
	reflCfg := reflection.DefaultConfig()
	reflCfg.Cycles = 120

	mrpCfg := mrp.DefaultRingExperimentConfig()
	mrpCfg.Horizon = 1200 * time.Millisecond

	mlSc := mltopo.DefaultScenario(mltopo.Ring, mlwork.ObjectIdentification, 8)
	mlSc.Horizon = 400 * time.Millisecond

	chaosCfg := core.DefaultChaosConfig()
	chaosCfg.Base = smallInstaplcConfig()

	return []resumeCase{
		{
			name: "instaplc",
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry) resumable {
				cfg := smallInstaplcConfig()
				cfg.Trace = tr
				cfg.Metrics = reg
				return instaplc.NewHarness(cfg)
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return instaplc.Restore(r, tr, reg)
			},
			render: func(h resumable) string {
				res := h.(*instaplc.Harness).Result()
				return instaplc.RenderFigure5(res) +
					fmt.Sprintf("%+v\n", res.Accounting) +
					res.FaultTrace
			},
		},
		{
			name: "reflection",
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry) resumable {
				cfg := reflCfg
				cfg.Trace = tr
				cfg.Metrics = reg
				return reflection.NewHarness(cfg, reflection.NewBase())
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return reflection.Restore(r, tr, reg)
			},
			render: func(h resumable) string {
				res := h.(*reflection.Harness).Result()
				return reflection.DelayTable([]reflection.Result{res}) +
					reflection.JitterTable([]reflection.Result{res})
			},
		},
		{
			name: "mrp",
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry) resumable {
				cfg := mrpCfg
				cfg.Trace = tr
				cfg.Metrics = reg
				return mrp.NewHarness(cfg)
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return mrp.Restore(r, tr, reg)
			},
			render: func(h resumable) string {
				return fmt.Sprintf("%+v", h.(*mrp.Harness).Result())
			},
		},
		{
			name: "mltopo",
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry) resumable {
				sc := mlSc
				sc.Trace = tr
				sc.Metrics = reg
				return mltopo.NewHarness(sc)
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return mltopo.Restore(r, tr, reg)
			},
			render: func(h resumable) string {
				return fmt.Sprintf("%+v", h.(*mltopo.Harness).Result())
			},
		},
		{
			// A chaos cell is the instaplc harness under a generated fault
			// plan; its checkpoint carries the whole plan, so it restores
			// through the instaplc codec.
			name: "chaos",
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry) resumable {
				cfg := core.ChaosCellConfig(chaosCfg, 7) // intensity 4, trial 1
				cfg.Trace = tr
				cfg.Metrics = reg
				return instaplc.NewHarness(cfg)
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return instaplc.Restore(r, tr, reg)
			},
			render: func(h resumable) string {
				res := h.(*instaplc.Harness).Result()
				return instaplc.RenderFigure5(res) +
					fmt.Sprintf("%+v\n", res.Accounting) +
					res.FaultTrace
			},
		},
	}
}

// observe renders everything the run can show a user: the figure, the
// telemetry JSONL timeline, and the metrics snapshot.
func observe(t *testing.T, c resumeCase, h resumable, tr *telemetry.Tracer, reg *telemetry.Registry) (figure, jsonl, snapshot string) {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return c.render(h), buf.String(), reg.Snapshot()
}

func TestResumeEquivalence(t *testing.T) {
	for _, c := range resumeCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()

			// Straight run: advance to N, checkpoint, keep going to 2N.
			trA := telemetry.NewTracer(nil)
			regA := telemetry.NewRegistry()
			a := c.build(trA, regA)
			n := a.Horizon() / 2
			a.AdvanceTo(n)
			var ckpt bytes.Buffer
			if err := a.Save(&ckpt); err != nil {
				t.Fatalf("Save at N: %v", err)
			}
			a.AdvanceTo(a.Horizon())
			digestA := a.Digest()
			figA, jsonlA, snapA := observe(t, c, a, trA, regA)

			// Restored run: rebuild from the checkpoint (which replays
			// 0..N and verifies the digest), then run N..2N.
			trB := telemetry.NewTracer(nil)
			regB := telemetry.NewRegistry()
			b, err := c.restore(bytes.NewReader(ckpt.Bytes()), trB, regB)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			b.AdvanceTo(b.Horizon())
			if got := b.Digest(); got != digestA {
				t.Fatalf("state digest diverged after resume: straight %#x, resumed %#x", digestA, got)
			}
			figB, jsonlB, snapB := observe(t, c, b, trB, regB)

			if figA != figB {
				t.Errorf("rendered figure diverged after resume:\nstraight:\n%s\nresumed:\n%s", figA, figB)
			}
			if jsonlA != jsonlB {
				t.Errorf("telemetry JSONL diverged after resume (straight %d bytes, resumed %d bytes)",
					len(jsonlA), len(jsonlB))
			}
			if snapA != snapB {
				t.Errorf("metrics snapshot diverged after resume:\nstraight:\n%s\nresumed:\n%s", snapA, snapB)
			}
		})
	}
}

// TestRestoreDetectsDivergence rewrites a checkpoint with a wrong
// recorded digest and asserts the restore fails loudly with a
// DivergenceError rather than silently resuming a different run.
func TestRestoreDetectsDivergence(t *testing.T) {
	cfg := smallInstaplcConfig()
	h := instaplc.NewHarness(cfg)
	h.AdvanceTo(h.Horizon() / 2)
	var orig bytes.Buffer
	if err := h.Save(&orig); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cfgBytes, at, _, err := checkpoint.ReadHarness(bytes.NewReader(orig.Bytes()), instaplc.CheckpointKind)
	if err != nil {
		t.Fatalf("ReadHarness: %v", err)
	}
	var forged bytes.Buffer
	if err := checkpoint.WriteHarness(&forged, instaplc.CheckpointKind, cfgBytes, at, h.Digest()^1); err != nil {
		t.Fatalf("WriteHarness: %v", err)
	}
	_, err = instaplc.Restore(&forged, nil, nil)
	var div *checkpoint.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("Restore with wrong digest: got %v, want DivergenceError", err)
	}
}
