package checkpoint_test

// Differential-replay verification: for every experiment harness, run
// straight to 2N with a checkpoint taken at N, then separately restore
// that checkpoint and run to 2N. The restored run must be
// byte-identical — rendered figures, telemetry JSONL timelines,
// metrics snapshots, frame-conservation accounts, and (where the
// harness supports in-band telemetry) INT path digests, SLO breach logs
// and flight-recorder dumps. This is the strongest determinism test in
// the repo: any hidden state the checkpoint digest misses, any RNG
// stream the rebuild wires differently, any iteration-order dependence
// shows up as a diff here.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"steelnet/internal/checkpoint"
	"steelnet/internal/core"
	"steelnet/internal/instaplc"
	intnet "steelnet/internal/int"
	"steelnet/internal/mltopo"
	"steelnet/internal/mlwork"
	"steelnet/internal/mrp"
	"steelnet/internal/reflection"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// resumable is what every experiment harness offers the verifier.
type resumable interface {
	AdvanceTo(t sim.Time)
	Horizon() sim.Time
	Digest() uint64
	Save(w io.Writer) error
}

// resumeCase builds one harness kind with telemetry attached and knows
// how to restore it and render its observable output. Harnesses with
// in-band telemetry set int and take a collector in build/restore (the
// restore path hands it to RestoreWithCollector so the replayed window
// feeds the collector — and the watchdog chained on it — from t=0).
type resumeCase struct {
	name    string
	int     bool
	build   func(tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) resumable
	restore func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) (resumable, error)
	render  func(h resumable) string
}

func smallInstaplcConfig() instaplc.ExperimentConfig {
	cfg := instaplc.DefaultExperimentConfig()
	cfg.SecondaryJoinAt = 100 * time.Millisecond
	cfg.FailAt = 300 * time.Millisecond
	cfg.Horizon = 800 * time.Millisecond
	return cfg
}

func resumeCases() []resumeCase {
	reflCfg := reflection.DefaultConfig()
	reflCfg.Cycles = 120

	mrpCfg := mrp.DefaultRingExperimentConfig()
	mrpCfg.Horizon = 1200 * time.Millisecond

	mlSc := mltopo.DefaultScenario(mltopo.Ring, mlwork.ObjectIdentification, 8)
	mlSc.Horizon = 400 * time.Millisecond

	chaosCfg := core.DefaultChaosConfig()
	chaosCfg.Base = smallInstaplcConfig()

	return []resumeCase{
		{
			name: "instaplc",
			int:  true,
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) resumable {
				cfg := smallInstaplcConfig()
				cfg.Trace = tr
				cfg.Metrics = reg
				cfg.INT = coll != nil
				cfg.Collector = coll
				return instaplc.NewHarness(cfg)
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) (resumable, error) {
				return instaplc.RestoreWithCollector(r, tr, reg, coll)
			},
			render: func(h resumable) string {
				res := h.(*instaplc.Harness).Result()
				return instaplc.RenderFigure5(res) +
					fmt.Sprintf("%+v\n", res.Accounting) +
					fmt.Sprintf("int=%d changes=%+v\n", res.INTObservations, res.PathChanges) +
					res.FaultTrace
			},
		},
		{
			name: "reflection",
			int:  true,
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) resumable {
				cfg := reflCfg
				cfg.Trace = tr
				cfg.Metrics = reg
				cfg.INT = coll != nil
				cfg.Collector = coll
				return reflection.NewHarness(cfg, reflection.NewBase())
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) (resumable, error) {
				return reflection.RestoreWithCollector(r, tr, reg, coll)
			},
			render: func(h resumable) string {
				res := h.(*reflection.Harness).Result()
				return reflection.DelayTable([]reflection.Result{res}) +
					reflection.JitterTable([]reflection.Result{res})
			},
		},
		{
			name: "mrp",
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry, _ *intnet.Collector) resumable {
				cfg := mrpCfg
				cfg.Trace = tr
				cfg.Metrics = reg
				return mrp.NewHarness(cfg)
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry, _ *intnet.Collector) (resumable, error) {
				return mrp.Restore(r, tr, reg)
			},
			render: func(h resumable) string {
				return fmt.Sprintf("%+v", h.(*mrp.Harness).Result())
			},
		},
		{
			name: "mltopo",
			int:  true,
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) resumable {
				sc := mlSc
				sc.Trace = tr
				sc.Metrics = reg
				sc.INT = coll != nil
				sc.Collector = coll
				return mltopo.NewHarness(sc)
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) (resumable, error) {
				return mltopo.RestoreWithCollector(r, tr, reg, coll)
			},
			render: func(h resumable) string {
				return fmt.Sprintf("%+v", h.(*mltopo.Harness).Result())
			},
		},
		{
			// A chaos cell is the instaplc harness under a generated fault
			// plan; its checkpoint carries the whole plan, so it restores
			// through the instaplc codec.
			name: "chaos",
			int:  true,
			build: func(tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) resumable {
				cfg := core.ChaosCellConfig(chaosCfg, 7) // intensity 4, trial 1
				cfg.Trace = tr
				cfg.Metrics = reg
				cfg.INT = coll != nil
				cfg.Collector = coll
				return instaplc.NewHarness(cfg)
			},
			restore: func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry, coll *intnet.Collector) (resumable, error) {
				return instaplc.RestoreWithCollector(r, tr, reg, coll)
			},
			render: func(h resumable) string {
				res := h.(*instaplc.Harness).Result()
				return instaplc.RenderFigure5(res) +
					fmt.Sprintf("%+v\n", res.Accounting) +
					fmt.Sprintf("int=%d changes=%+v\n", res.INTObservations, res.PathChanges) +
					res.FaultTrace
			},
		},
	}
}

// intAttachments is the full observability stack one run carries: the
// collector, an SLO watchdog chained on its observation stream, and a
// flight recorder riding the tracer. The 1µs bound is deliberately
// unattainable so every INT-capable case records real breaches.
type intAttachments struct {
	coll *intnet.Collector
	wd   *intnet.Watchdog
	rec  *intnet.Recorder
}

// sidedTest gives the straight and resumed runs' flight-recorder dumps
// distinct file names under $STEELNET_FLIGHTREC_DIR on failure.
type sidedTest struct {
	*testing.T
	side string
}

func (s sidedTest) Name() string { return s.T.Name() + "/" + s.side }

func attachObservability(t *testing.T, c resumeCase, side string, tr *telemetry.Tracer) intAttachments {
	t.Helper()
	var a intAttachments
	a.rec = intnet.NewRecorder(0)
	a.rec.Attach(tr)
	t.Cleanup(func() { intnet.DumpOnFailure(sidedTest{t, side}, a.rec) })
	if !c.int {
		return a
	}
	a.coll = intnet.NewCollector()
	plan, err := intnet.ParseSLOPlan("latency:*<1µs")
	if err != nil {
		t.Fatalf("ParseSLOPlan: %v", err)
	}
	a.wd = intnet.NewWatchdog(plan, 0, tr)
	a.wd.Attach(a.coll)
	return a
}

// renderINT serializes every in-band artifact for byte comparison.
func renderINT(t *testing.T, a intAttachments) (digests, breaches, flightrec string) {
	t.Helper()
	var d, b, f bytes.Buffer
	if a.coll != nil {
		if err := a.coll.WriteJSONL(&d); err != nil {
			t.Fatalf("collector WriteJSONL: %v", err)
		}
	}
	if a.wd != nil {
		if err := a.wd.WriteBreachLog(&b); err != nil {
			t.Fatalf("WriteBreachLog: %v", err)
		}
	}
	if err := a.rec.WriteJSONL(&f); err != nil {
		t.Fatalf("recorder WriteJSONL: %v", err)
	}
	return d.String(), b.String(), f.String()
}

// observe renders everything the run can show a user: the figure, the
// telemetry JSONL timeline, and the metrics snapshot.
func observe(t *testing.T, c resumeCase, h resumable, tr *telemetry.Tracer, reg *telemetry.Registry) (figure, jsonl, snapshot string) {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, tr.Events()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return c.render(h), buf.String(), reg.Snapshot()
}

func TestResumeEquivalence(t *testing.T) {
	for _, c := range resumeCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()

			// Straight run: advance to N, checkpoint, keep going to 2N.
			trA := telemetry.NewTracer(nil)
			regA := telemetry.NewRegistry()
			attA := attachObservability(t, c, "straight", trA)
			a := c.build(trA, regA, attA.coll)
			n := a.Horizon() / 2
			a.AdvanceTo(n)
			var ckpt bytes.Buffer
			if err := a.Save(&ckpt); err != nil {
				t.Fatalf("Save at N: %v", err)
			}
			a.AdvanceTo(a.Horizon())
			digestA := a.Digest()
			figA, jsonlA, snapA := observe(t, c, a, trA, regA)
			intA, breachA, recA := renderINT(t, attA)

			// Restored run: rebuild from the checkpoint (which replays
			// 0..N and verifies the digest), then run N..2N. The fresh
			// collector/watchdog/recorder see the replayed window too, so
			// every artifact must come out byte-identical.
			trB := telemetry.NewTracer(nil)
			regB := telemetry.NewRegistry()
			attB := attachObservability(t, c, "resumed", trB)
			b, err := c.restore(bytes.NewReader(ckpt.Bytes()), trB, regB, attB.coll)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			b.AdvanceTo(b.Horizon())
			if got := b.Digest(); got != digestA {
				t.Fatalf("state digest diverged after resume: straight %#x, resumed %#x", digestA, got)
			}
			figB, jsonlB, snapB := observe(t, c, b, trB, regB)
			intB, breachB, recB := renderINT(t, attB)

			if figA != figB {
				t.Errorf("rendered figure diverged after resume:\nstraight:\n%s\nresumed:\n%s", figA, figB)
			}
			if jsonlA != jsonlB {
				t.Errorf("telemetry JSONL diverged after resume (straight %d bytes, resumed %d bytes)",
					len(jsonlA), len(jsonlB))
			}
			if snapA != snapB {
				t.Errorf("metrics snapshot diverged after resume:\nstraight:\n%s\nresumed:\n%s", snapA, snapB)
			}
			if intA != intB {
				t.Errorf("INT digest JSONL diverged after resume (straight %d bytes, resumed %d bytes)",
					len(intA), len(intB))
			}
			if breachA != breachB {
				t.Errorf("SLO breach log diverged after resume:\nstraight:\n%s\nresumed:\n%s", breachA, breachB)
			}
			if recA != recB {
				t.Errorf("flight-recorder dump diverged after resume (straight %d bytes, resumed %d bytes)",
					len(recA), len(recB))
			}
			if c.int {
				// The comparisons must compare something real: traffic was
				// collected and the unattainable objective breached.
				if attA.coll.Observations == 0 {
					t.Error("INT-capable case collected no observations")
				}
				if len(attA.wd.Breaches()) == 0 {
					t.Error("1µs objective never breached; breach-log equality is vacuous")
				}
				if attA.rec.Empty() {
					t.Error("flight recorder stayed empty")
				}
			}
		})
	}
}

// TestRestoreDetectsDivergence rewrites a checkpoint with a wrong
// recorded digest and asserts the restore fails loudly with a
// DivergenceError rather than silently resuming a different run.
func TestRestoreDetectsDivergence(t *testing.T) {
	cfg := smallInstaplcConfig()
	h := instaplc.NewHarness(cfg)
	h.AdvanceTo(h.Horizon() / 2)
	var orig bytes.Buffer
	if err := h.Save(&orig); err != nil {
		t.Fatalf("Save: %v", err)
	}
	cfgBytes, at, _, err := checkpoint.ReadHarness(bytes.NewReader(orig.Bytes()), instaplc.CheckpointKind)
	if err != nil {
		t.Fatalf("ReadHarness: %v", err)
	}
	var forged bytes.Buffer
	if err := checkpoint.WriteHarness(&forged, instaplc.CheckpointKind, cfgBytes, at, h.Digest()^1); err != nil {
		t.Fatalf("WriteHarness: %v", err)
	}
	_, err = instaplc.Restore(&forged, nil, nil)
	var div *checkpoint.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("Restore with wrong digest: got %v, want DivergenceError", err)
	}
}
