package checkpoint_test

// Golden checkpoint corpus: one small serialized checkpoint per
// experiment, committed under testdata/. TestGolden asserts both that
// today's writer reproduces the committed bytes exactly and that
// today's reader can restore them. Any format change — container
// layout, config codecs, digest fold order — trips this test; that is
// the point. To change the format deliberately:
//
//  1. bump checkpoint.FormatVersion,
//  2. add a migration path (or document the break) in DESIGN.md,
//  3. regenerate:  go test ./internal/checkpoint -run TestGolden -update
//
// Never regenerate to silence a failure you cannot explain: a golden
// diff without a code change you made on purpose means checkpoints in
// the field just became unreadable.

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"steelnet/internal/checkpoint"
	"steelnet/internal/core"
	"steelnet/internal/instaplc"
	"steelnet/internal/mltopo"
	"steelnet/internal/mlwork"
	"steelnet/internal/mrp"
	"steelnet/internal/reflection"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
	"steelnet/internal/topo"
)

var update = flag.Bool("update", false, "rewrite the golden checkpoint corpus")

// goldenCase builds a deterministic tiny harness, checkpointed at a
// fixed instant, and restores its committed form.
type goldenCase struct {
	name    string
	at      sim.Time
	build   func() resumable
	restore func(r io.Reader) (resumable, error)
}

func goldenCases() []goldenCase {
	nilRestore := func(f func(io.Reader, *telemetry.Tracer, *telemetry.Registry) (resumable, error)) func(io.Reader) (resumable, error) {
		return func(r io.Reader) (resumable, error) { return f(r, nil, nil) }
	}
	reflCfg := reflection.DefaultConfig()
	reflCfg.Cycles = 40
	mrpCfg := mrp.DefaultRingExperimentConfig()
	mrpCfg.Horizon = 700 * time.Millisecond
	mlSc := mltopo.DefaultScenario(mltopo.Ring, mlwork.ObjectIdentification, 4)
	mlSc.Horizon = 200 * time.Millisecond
	chaosCfg := core.DefaultChaosConfig()
	chaosCfg.Base = smallInstaplcConfig()
	campusCfg := core.CampusConfig{
		Seed: 11,
		Topo: topo.CampusConfig{
			Cells: 3, SwitchesPerCell: 3, HostsPerSwitch: 2,
			Spines: 2, Fanout: 2,
		},
		Horizon: 2 * sim.Millisecond,
		Period:  50 * sim.Microsecond,
		INT:     true,
		SLO:     "latency:*<15µs",
	}
	return []goldenCase{
		{
			name:  "instaplc",
			at:    sim.Time(200 * sim.Millisecond),
			build: func() resumable { return instaplc.NewHarness(smallInstaplcConfig()) },
			restore: nilRestore(func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return instaplc.Restore(r, tr, reg)
			}),
		},
		{
			name:  "reflection",
			at:    sim.Time(30 * sim.Millisecond),
			build: func() resumable { return reflection.NewHarness(reflCfg, reflection.NewBase()) },
			restore: nilRestore(func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return reflection.Restore(r, tr, reg)
			}),
		},
		{
			name:  "mrp",
			at:    sim.Time(300 * sim.Millisecond),
			build: func() resumable { return mrp.NewHarness(mrpCfg) },
			restore: nilRestore(func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return mrp.Restore(r, tr, reg)
			}),
		},
		{
			name:  "mltopo",
			at:    sim.Time(100 * sim.Millisecond),
			build: func() resumable { return mltopo.NewHarness(mlSc) },
			restore: nilRestore(func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return mltopo.Restore(r, tr, reg)
			}),
		},
		{
			name:  "chaos",
			at:    sim.Time(200 * sim.Millisecond),
			build: func() resumable { return core.NewChaosCellHarness(chaosCfg, 7) },
			restore: nilRestore(func(r io.Reader, tr *telemetry.Tracer, reg *telemetry.Registry) (resumable, error) {
				return instaplc.Restore(r, tr, reg)
			}),
		},
		{
			name: "campus",
			at:   sim.Time(700 * sim.Microsecond),
			build: func() resumable {
				h, err := core.NewCampusHarness(campusCfg)
				if err != nil {
					panic(err)
				}
				return h
			},
			restore: func(r io.Reader) (resumable, error) {
				return core.RestoreCampus(r, 2)
			},
		},
	}
}

// TestV2FixtureRejected pins the migration failure mode: a committed
// format-v2 file (written before the sharded-execution digest change)
// must be rejected with ErrVersion and actionable migration text, never
// silently restored against v3 replay state.
func TestV2FixtureRejected(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "v2-instaplc.ckpt"))
	if err != nil {
		t.Fatalf("missing v2 fixture (committed, never regenerated): %v", err)
	}
	f, err := checkpoint.Read(bytes.NewReader(raw))
	if err == nil {
		t.Fatalf("v2 file read as version %d without error", f.Version)
	}
	if !errors.Is(err, checkpoint.ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	for _, want := range []string{"Migration", "FormatVersion"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("version error lacks %q guidance:\n%v", want, err)
		}
	}
	if _, err := instaplc.Restore(bytes.NewReader(raw), nil, nil); !errors.Is(err, checkpoint.ErrVersion) {
		t.Fatalf("harness restore of v2 file: err = %v, want ErrVersion", err)
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden-"+name+".ckpt")
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			h := c.build()
			h.AdvanceTo(c.at)
			var buf bytes.Buffer
			if err := h.Save(&buf); err != nil {
				t.Fatalf("Save: %v", err)
			}
			path := goldenPath(c.name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden corpus file: %v\n(generate with: go test ./internal/checkpoint -run TestGolden -update)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("checkpoint bytes for %q no longer match the committed corpus (%d bytes written, %d committed).\n%s",
					c.name, buf.Len(), len(want), goldenMigrationHelp())
			}
			// The committed bytes must still restore: replay to the
			// recorded instant and re-verify the digest.
			h2, err := c.restore(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("restoring committed corpus for %q: %v\n%s", c.name, err, goldenMigrationHelp())
			}
			if got, wantD := h2.Digest(), h.Digest(); got != wantD {
				t.Fatalf("restored digest %#x, want %#x", got, wantD)
			}
		})
	}
}

// TestGoldenVersionPinned fails when FormatVersion changes without the
// corpus being regenerated: the committed files carry the version they
// were written with.
func TestGoldenVersionPinned(t *testing.T) {
	for _, c := range goldenCases() {
		raw, err := os.ReadFile(goldenPath(c.name))
		if err != nil {
			t.Fatalf("missing golden corpus file: %v\n(generate with: go test ./internal/checkpoint -run TestGolden -update)", err)
		}
		f, err := checkpoint.Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("reading %s: %v\n%s", goldenPath(c.name), err, goldenMigrationHelp())
		}
		if f.Version != checkpoint.FormatVersion {
			t.Fatalf("golden corpus %q is FormatVersion %d, code is %d.\n%s",
				c.name, f.Version, checkpoint.FormatVersion, goldenMigrationHelp())
		}
	}
}

func goldenMigrationHelp() string {
	return fmt.Sprintf(`The checkpoint format changed. If that was intentional:
  1. bump checkpoint.FormatVersion (currently %d) so old files are rejected loudly,
  2. document the change (DESIGN.md, "Checkpoint & replay"),
  3. regenerate the corpus:  go test ./internal/checkpoint -run TestGolden -update
If it was NOT intentional, find the encoder/digest change that caused it:
checkpoints written by released binaries can no longer be restored.`, checkpoint.FormatVersion)
}
