package checkpoint

import "math"

// Digest is an incremental 64-bit state hash (FNV-1a core). Harnesses
// fold their live state into a Digest at a checkpoint instant; a restore
// replays to the same instant and must reproduce the same sum, which is
// how a checkpoint detects divergence instead of silently continuing
// from a state the original run never had. Folding is cheap (a multiply
// and a xor per byte-group), so snapshots cost microseconds even on
// large scenarios.
//
// The fold order matters: callers must fold fields in a fixed, documented
// order (sorted where the underlying container is a map). Two digests are
// comparable only when produced by the same fold sequence.
type Digest struct {
	h uint64
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{h: fnvOffset} }

// U64 folds one 64-bit value.
func (d *Digest) U64(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	d.h = h
}

// I64 folds one signed 64-bit value.
func (d *Digest) I64(v int64) { d.U64(uint64(v)) }

// Int folds an int.
func (d *Digest) Int(v int) { d.U64(uint64(int64(v))) }

// Bool folds a boolean.
func (d *Digest) Bool(v bool) {
	if v {
		d.U64(1)
	} else {
		d.U64(0)
	}
}

// F64 folds a float64 by its IEEE-754 bits (bit-exact, like the
// determinism contract it guards).
func (d *Digest) F64(v float64) { d.U64(math.Float64bits(v)) }

// Bytes folds a byte slice, length-prefixed so ("ab","c") and ("a","bc")
// fold differently.
func (d *Digest) Bytes(b []byte) {
	d.U64(uint64(len(b)))
	h := d.h
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	d.h = h
}

// Str folds a string, length-prefixed.
func (d *Digest) Str(s string) {
	d.U64(uint64(len(s)))
	h := d.h
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	d.h = h
}

// Sum returns the current digest value. Folding may continue afterwards.
func (d *Digest) Sum() uint64 { return d.h }
