package corpus

import (
	"fmt"
	"strings"

	"steelnet/internal/sim"
)

// Fig1Targets are the published occurrence counts of Fig. 1. The
// synthetic proceedings are generated to contain exactly these counts,
// so mining them reproduces the figure bar for bar.
var Fig1Targets = map[string]int{
	"vPLC":                  0,
	"Industry 4.0/5.0":      1,
	"IIoT":                  1,
	"PLC":                   2,
	"Industrial Informatic": 4,
	"Cyber Physical System": 6,
	"IT/OT":                 7,
	"Industrial Network":    14,
	"PROFINET/EtherCAT/TSN": 17,
	"MQTT/OPC UA/VXLAN":     21,
	"Datacenter":            1943,
	"Internet":              2289,
	"TCP/UDP/IPv4/IPv6":     3005,
}

// termSentences are templates carrying exactly one countable mention;
// %s is replaced by the variant surface form. Sentence edges use
// gap-safe words so no cross-sentence token pair forms another term.
var termSentences = []string{
	"We revisit %s performance under realistic workloads.",
	"Our evaluation studies %s behaviour at scale.",
	"This paper presents a new approach to %s measurement.",
	"Prior work on %s leaves tail behaviour unexplored.",
	"We propose a scheduler that improves %s utilization.",
}

// fillerSentences contain no countable term and no token that could
// join with a neighbouring sentence to form one.
var fillerSentences = []string{
	"We evaluate our prototype on a 128-node testbed.",
	"The scheduler reduces tail latency by up to 37 percent.",
	"Our measurement study spans three years of traces.",
	"We formalize the problem and prove the bound tight.",
	"A user study confirms the observed gains.",
	"The proposed encoding halves bandwidth requirements.",
	"Extensive simulations validate the analytical model.",
	"We release our tooling as open source.",
	"Experiments show consistent gains across workloads.",
	"The design generalizes to heterogeneous deployments.",
}

var venues = []struct {
	name  string
	years []int
}{
	{"SIGCOMM", []int{2022, 2023}},
	{"HotNets", []int{2022, 2023}},
}

// GenerateProceedings builds the deterministic synthetic corpus: a set
// of paper-like documents whose term-occurrence totals equal
// Fig1Targets exactly. The seed shuffles sentence placement only; the
// totals are invariant.
func GenerateProceedings(seed uint64) []Document {
	rng := sim.NewRNG(seed)

	// Build the exact multiset of countable sentences.
	var sentences []string
	si := 0
	for _, g := range Fig1Groups() {
		target := Fig1Targets[g.Label]
		if target == 0 || len(g.Variants) == 0 {
			continue
		}
		for i := 0; i < target; i++ {
			variant := g.Variants[i%len(g.Variants)]
			tpl := termSentences[si%len(termSentences)]
			si++
			sentences = append(sentences, fmt.Sprintf(tpl, variant))
		}
	}
	// Pad with filler so every document gets perDoc sentences; the
	// document count follows from the sentence total (~8 per paper).
	const perDoc = 8
	docCount := (len(sentences) + perDoc - 1) / perDoc
	if docCount < 400 {
		docCount = 400 // four proceedings of ≥100 papers
	}
	for len(sentences) < docCount*perDoc {
		sentences = append(sentences, fillerSentences[len(sentences)%len(fillerSentences)])
	}
	rng.Shuffle(len(sentences), func(i, j int) {
		sentences[i], sentences[j] = sentences[j], sentences[i]
	})

	docs := make([]Document, 0, docCount)
	idx := 0
	for d := 0; d < docCount; d++ {
		v := venues[d%len(venues)]
		year := v.years[(d/len(venues))%len(v.years)]
		n := perDoc
		if rem := len(sentences) - idx; rem < n {
			n = rem
		}
		body := strings.Join(sentences[idx:idx+n], " ")
		idx += n
		docs = append(docs, Document{
			Venue: v.name,
			Year:  year,
			Title: fmt.Sprintf("Paper %d: On the Design of Scalable Systems", d),
			Text:  body,
		})
	}
	return docs
}

// MineFigure1 generates the corpus and mines it in one call.
func MineFigure1(seed uint64) ([]Count, int) {
	docs := GenerateProceedings(seed)
	counts := NewMiner(Fig1Groups()).Mine(docs)
	return counts, len(docs)
}
