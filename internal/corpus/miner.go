package corpus

import (
	"fmt"
	"sort"
	"strings"

	"steelnet/internal/metrics"
)

// Document is one paper (title + abstract + body text) of a proceedings.
type Document struct {
	Venue string
	Year  int
	Title string
	Text  string
}

// Count is one group's mined occurrence count.
type Count struct {
	Label       string
	Occurrences int
}

// Miner counts term-group occurrences over tokenized documents.
type Miner struct {
	groups []TermGroup
	// variant phrases pre-tokenized, per group.
	phrases [][][]string
}

// NewMiner compiles the term groups. Variants that normalize to the
// same token sequence ("data center" / "data-center") collapse into
// one phrase so a single mention is never counted twice.
func NewMiner(groups []TermGroup) *Miner {
	m := &Miner{groups: groups}
	for _, g := range groups {
		var ps [][]string
		seen := map[string]bool{}
		for _, v := range g.Variants {
			toks := normalize(v)
			if len(toks) == 0 {
				continue
			}
			key := strings.Join(toks, " ")
			if seen[key] {
				continue
			}
			seen[key] = true
			ps = append(ps, toks)
		}
		m.phrases = append(m.phrases, ps)
	}
	return m
}

// CountDocument returns per-group occurrence counts within one document.
// Matches of one variant do not overlap with themselves; distinct
// variants are counted independently (as "with permutations" implies).
func (m *Miner) CountDocument(d Document) []int {
	tokens := normalize(d.Title + " " + d.Text)
	out := make([]int, len(m.groups))
	for gi, ps := range m.phrases {
		for _, phrase := range ps {
			out[gi] += countPhrase(tokens, phrase)
		}
	}
	return out
}

// countPhrase counts non-overlapping occurrences of phrase in tokens.
func countPhrase(tokens, phrase []string) int {
	if len(phrase) == 0 || len(tokens) < len(phrase) {
		return 0
	}
	count := 0
	for i := 0; i+len(phrase) <= len(tokens); {
		match := true
		for j, p := range phrase {
			if tokens[i+j] != p {
				match = false
				break
			}
		}
		if match {
			count++
			i += len(phrase)
		} else {
			i++
		}
	}
	return count
}

// Mine counts across all documents and returns totals in group order.
func (m *Miner) Mine(docs []Document) []Count {
	totals := make([]int, len(m.groups))
	for _, d := range docs {
		for gi, c := range m.CountDocument(d) {
			totals[gi] += c
		}
	}
	out := make([]Count, len(m.groups))
	for i, g := range m.groups {
		out[i] = Count{Label: g.Label, Occurrences: totals[i]}
	}
	return out
}

// ByLabel indexes counts by label.
func ByLabel(counts []Count) map[string]int {
	out := make(map[string]int, len(counts))
	for _, c := range counts {
		out[c.Label] = c.Occurrences
	}
	return out
}

// GapRatio returns the ratio between the smallest IT-side count and the
// largest OT-side count — Fig. 1's "research gap" in one number.
func GapRatio(counts []Count) float64 {
	by := ByLabel(counts)
	minIT := -1
	for _, l := range ITLabels {
		if v := by[l]; minIT == -1 || v < minIT {
			minIT = v
		}
	}
	maxOT := 0
	for _, l := range OTLabels {
		if v := by[l]; v > maxOT {
			maxOT = v
		}
	}
	if maxOT == 0 {
		maxOT = 1 // avoid division by zero; the gap is then trivially huge
	}
	return float64(minIT) / float64(maxOT)
}

// RenderFigure1 renders the counts as the paper's bar list, sorted
// ascending like the figure.
func RenderFigure1(counts []Count, docs int) string {
	sorted := append([]Count(nil), counts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Occurrences < sorted[j].Occurrences })
	t := metrics.NewTable(
		fmt.Sprintf("Figure 1: term occurrences (with permutations) over %d documents", docs),
		"term", "occurrences")
	for _, c := range sorted {
		t.AddRow(c.Label, fmt.Sprintf("%d", c.Occurrences))
	}
	return t.String()
}
