// Package corpus reproduces the paper's research-gap analysis (§1,
// Fig. 1): a permutation-aware term miner run over recent SIGCOMM and
// HotNets proceedings, showing that industrial-networking terminology
// is nearly absent while data-center terminology is everywhere. The
// miner — tokenization, phrase matching, permutation expansion — is the
// real artifact; the proceedings themselves are substituted with a
// deterministic synthetic corpus of abstracts statistically shaped to
// the published occurrence counts (we cannot redistribute the original
// texts).
package corpus

import "strings"

// TermGroup is one bar of Fig. 1: a label plus every accepted surface
// form ("permutation") of the term.
type TermGroup struct {
	Label    string
	Variants []string
}

// Fig1Groups returns the thirteen term groups of Fig. 1, bottom to top
// (research-gap side first), with the permutations the counter accepts.
func Fig1Groups() []TermGroup {
	return []TermGroup{
		{Label: "vPLC", Variants: []string{
			"vplc", "virtual plc", "virtualized plc", "virtual programmable logic controller",
		}},
		{Label: "Industry 4.0/5.0", Variants: []string{
			"industry 4.0", "industry 5.0", "industrie 4.0",
		}},
		{Label: "IIoT", Variants: []string{
			"iiot", "industrial internet of things",
		}},
		{Label: "PLC", Variants: []string{
			"plc", "programmable logic controller", "programmable logic controllers",
		}},
		{Label: "Industrial Informatic", Variants: []string{
			"industrial informatic", "industrial informatics",
		}},
		{Label: "Cyber Physical System", Variants: []string{
			"cyber physical system", "cyber physical systems", "cyber-physical system", "cyber-physical systems",
		}},
		{Label: "IT/OT", Variants: []string{
			"it/ot", "ot/it",
		}},
		{Label: "Industrial Network", Variants: []string{
			"industrial network", "industrial networks", "industrial control network",
		}},
		{Label: "PROFINET/EtherCAT/TSN", Variants: []string{
			"profinet", "ethercat", "tsn", "time sensitive networking", "time-sensitive networking",
		}},
		{Label: "MQTT/OPC UA/VXLAN", Variants: []string{
			"mqtt", "opc ua", "opc-ua", "vxlan",
		}},
		{Label: "Datacenter", Variants: []string{
			"datacenter", "datacenters", "data center", "data centers", "data-center",
		}},
		{Label: "Internet", Variants: []string{
			"internet",
		}},
		{Label: "TCP/UDP/IPv4/IPv6", Variants: []string{
			"tcp", "udp", "ipv4", "ipv6",
		}},
	}
}

// OTLabels lists the groups on the research-gap (OT) side of Fig. 1.
var OTLabels = []string{
	"vPLC", "Industry 4.0/5.0", "IIoT", "PLC", "Industrial Informatic",
	"Cyber Physical System", "IT/OT", "Industrial Network",
	"PROFINET/EtherCAT/TSN", "MQTT/OPC UA/VXLAN",
}

// ITLabels lists the groups on the IT side.
var ITLabels = []string{"Datacenter", "Internet", "TCP/UDP/IPv4/IPv6"}

// normalize lowercases text and flattens the separators permutations
// differ by (slash, hyphen, underscore) into spaces, so "IT/OT",
// "it-ot" and "IT OT" all tokenize identically. Dots survive inside
// number-ish tokens ("4.0") but are stripped at token edges.
func normalize(text string) []string {
	var b strings.Builder
	b.Grow(len(text))
	for _, r := range text {
		switch {
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.':
			b.WriteRune(r)
		case r == '/', r == '-', r == '_':
			b.WriteByte(' ')
		default:
			b.WriteByte(' ')
		}
	}
	fields := strings.Fields(b.String())
	out := fields[:0]
	for _, f := range fields {
		f = strings.Trim(f, ".")
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}
