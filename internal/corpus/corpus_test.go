package corpus

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeFlattensSeparators(t *testing.T) {
	got := normalize("IT/OT Convergence, in Industry-4.0!")
	want := []string{"it", "ot", "convergence", "in", "industry", "4.0"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}

func TestNormalizeTrimsEdgeDots(t *testing.T) {
	got := normalize("end. Start")
	if got[0] != "end" || got[1] != "start" {
		t.Fatalf("tokens = %v", got)
	}
	// Dots inside version-like tokens survive.
	got = normalize("industry 4.0")
	if got[1] != "4.0" {
		t.Fatalf("tokens = %v", got)
	}
}

func TestCountPhraseNonOverlapping(t *testing.T) {
	tokens := []string{"a", "a", "a"}
	if n := countPhrase(tokens, []string{"a", "a"}); n != 1 {
		t.Fatalf("count = %d, want 1 (non-overlapping)", n)
	}
	if n := countPhrase(tokens, []string{"a"}); n != 3 {
		t.Fatalf("count = %d", n)
	}
	if n := countPhrase(tokens, []string{"b"}); n != 0 {
		t.Fatalf("count = %d", n)
	}
	if n := countPhrase([]string{"a"}, []string{"a", "b"}); n != 0 {
		t.Fatal("phrase longer than text matched")
	}
}

func TestMinerCountsPermutations(t *testing.T) {
	m := NewMiner(Fig1Groups())
	d := Document{Text: "IT/OT convergence meets OT/IT integration and it-ot convergence."}
	counts := ByLabel(m.Mine([]Document{d}))
	// "it/ot", "ot/it" and "it-ot convergence" are all permutations;
	// the third normalizes to "it ot convergence" whose "it ot" prefix
	// also matches — the variant and the shorter form both count, as
	// the paper's "with permutations" counting does.
	if counts["IT/OT"] < 3 {
		t.Fatalf("IT/OT count = %d, want >= 3", counts["IT/OT"])
	}
}

func TestMinerPhraseAcrossPunctuation(t *testing.T) {
	m := NewMiner(Fig1Groups())
	d := Document{Text: "We study data-center networks and the data center of tomorrow."}
	counts := ByLabel(m.Mine([]Document{d}))
	if counts["Datacenter"] != 2 {
		t.Fatalf("Datacenter count = %d, want 2", counts["Datacenter"])
	}
}

func TestMinerTitleCounted(t *testing.T) {
	m := NewMiner(Fig1Groups())
	d := Document{Title: "TCP Over Lossy Links", Text: "Nothing relevant here."}
	counts := ByLabel(m.Mine([]Document{d}))
	if counts["TCP/UDP/IPv4/IPv6"] != 1 {
		t.Fatalf("count = %d", counts["TCP/UDP/IPv4/IPv6"])
	}
}

func TestMinerCaseInsensitive(t *testing.T) {
	m := NewMiner(Fig1Groups())
	d := Document{Text: "PROFINET profinet ProFiNet"}
	counts := ByLabel(m.Mine([]Document{d}))
	if counts["PROFINET/EtherCAT/TSN"] != 3 {
		t.Fatalf("count = %d", counts["PROFINET/EtherCAT/TSN"])
	}
}

func TestGeneratedCorpusMatchesFig1Exactly(t *testing.T) {
	counts, docs := MineFigure1(1)
	if docs == 0 {
		t.Fatal("no documents")
	}
	by := ByLabel(counts)
	for label, want := range Fig1Targets {
		if by[label] != want {
			t.Fatalf("%s = %d, want %d", label, by[label], want)
		}
	}
}

func TestCorpusCountsInvariantAcrossSeeds(t *testing.T) {
	f := func(seed uint64) bool {
		counts, _ := MineFigure1(seed)
		by := ByLabel(counts)
		for label, want := range Fig1Targets {
			if by[label] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestResearchGapRatio(t *testing.T) {
	counts, _ := MineFigure1(1)
	// Smallest IT-side bar (1943) vs largest OT-side bar (21): ~92x.
	if r := GapRatio(counts); r < 50 {
		t.Fatalf("gap ratio = %.1f, want the chasm the paper shows", r)
	}
}

func TestFillerSentencesCarryNoTerms(t *testing.T) {
	m := NewMiner(Fig1Groups())
	for _, s := range fillerSentences {
		counts := m.Mine([]Document{{Text: s}})
		for _, c := range counts {
			if c.Occurrences != 0 {
				t.Fatalf("filler %q contains %s", s, c.Label)
			}
		}
	}
}

func TestTermSentencesCarryExactlyOneMention(t *testing.T) {
	m := NewMiner(Fig1Groups())
	for _, g := range Fig1Groups() {
		for _, v := range g.Variants {
			for _, tpl := range termSentences {
				d := Document{Text: strings.ReplaceAll(tpl, "%s", v)}
				counts := ByLabel(m.Mine([]Document{d}))
				if counts[g.Label] < 1 {
					t.Fatalf("sentence %q lost its %s mention", d.Text, g.Label)
				}
			}
		}
	}
}

func TestNoCrossSentenceFalsePositives(t *testing.T) {
	// Every ordered pair of filler sentences joined together must still
	// count zero: sentence boundaries disappear in normalization, so
	// edge words must not combine into terms.
	m := NewMiner(Fig1Groups())
	for _, a := range fillerSentences {
		for _, b := range fillerSentences {
			counts := m.Mine([]Document{{Text: a + " " + b}})
			for _, c := range counts {
				if c.Occurrences != 0 {
					t.Fatalf("%q + %q produced %s", a, b, c.Label)
				}
			}
		}
	}
}

func TestRenderFigure1SortedAscending(t *testing.T) {
	counts, docs := MineFigure1(1)
	out := RenderFigure1(counts, docs)
	if !strings.Contains(out, "Figure 1") {
		t.Fatalf("render = %q", out)
	}
	// vPLC (0) renders before TCP/UDP/IPv4/IPv6 (3005).
	if strings.Index(out, "vPLC") > strings.Index(out, "TCP/UDP/IPv4/IPv6") {
		t.Fatal("bars not ascending")
	}
}

func TestVenueYearSpread(t *testing.T) {
	docs := GenerateProceedings(1)
	seen := map[string]bool{}
	for _, d := range docs {
		seen[d.Venue] = true
	}
	if !seen["SIGCOMM"] || !seen["HotNets"] {
		t.Fatalf("venues = %v", seen)
	}
}

func BenchmarkMineFigure1(b *testing.B) {
	docs := GenerateProceedings(1)
	m := NewMiner(Fig1Groups())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mine(docs)
	}
}
