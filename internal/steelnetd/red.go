package steelnetd

import (
	"net/http"
	"sync/atomic"
	"time"

	"steelnet/internal/telemetry"
)

// httpClasses are the status classes the RED metrics bucket responses
// into. Informational and redirect statuses count as successes — the
// gateway never emits them, and a probe cares about the error split.
var httpClasses = [...]string{"2xx", "4xx", "5xx"}

func classIdx(status int) int {
	switch {
	case status >= 500:
		return 2
	case status >= 400:
		return 1
	default:
		return 0
	}
}

// routeMetrics is one route's RED instruments: request counts split by
// status class, and a wall-latency histogram.
type routeMetrics struct {
	classes [len(httpClasses)]atomic.Uint64
	durNS   *telemetry.AtomicHistogram
}

// httpMetrics instruments the gateway's HTTP surface: every route wraps
// in a middleware that counts requests per status class, observes wall
// latency, and (when gateway tracing is on) records one request span
// anchored at the fleet's latest published simulated instant — which is
// what lets the Perfetto view show which simulation state a request
// observed.
type httpMetrics struct {
	g      *Gateway
	routes map[string]*routeMetrics
}

func newHTTPMetrics(g *Gateway) *httpMetrics {
	return &httpMetrics{g: g, routes: map[string]*routeMetrics{}}
}

// durBounds spans microseconds (cache-hit JSON) to seconds (slow SSE
// handshakes), in nanoseconds.
var durBounds = []float64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// wrap registers route's metric families on the hub registry and
// returns h wrapped in the recording middleware. route is the label
// value ("/runs/{id}" etc.), registered once per mux build.
func (m *httpMetrics) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{}
		m.routes[route] = rm
		reg := m.g.Hub().Registry()
		rm.durNS = reg.NewAtomicHistogram("steelnetd_http_request_duration_ns",
			telemetry.L("route", route), "HTTP request wall latency, nanoseconds.", durBounds)
		for i, class := range httpClasses {
			c := &rm.classes[i]
			reg.Counter("steelnetd_http_requests_total",
				telemetry.L("route", route, "class", class),
				"HTTP requests served, by route and status class.", c.Load)
		}
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		d := time.Since(start).Nanoseconds()
		rm.durNS.Observe(d)
		rm.classes[classIdx(sr.status)].Add(1)
		if m.g.trace != nil {
			m.g.trace.Add(telemetry.Event{T: m.g.latestSimNS.Load(),
				Kind: telemetry.KindHTTPRequest, Node: "http",
				Detail: route, Aux: d, Frame: uint64(sr.status)})
		}
	}
}

// statusRecorder captures the response status for the middleware. It
// passes Flush through so SSE handlers still see a Flusher — wrapping
// must not break streaming.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
