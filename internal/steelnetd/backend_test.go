package steelnetd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFakeBackendPartitionOrder(t *testing.T) {
	f := NewFakeKafka()
	if f.Name() != "kafka" {
		t.Fatalf("Name() = %q", f.Name())
	}
	// Interleave two keys on one topic plus a second topic.
	mustPublish(t, f, "alerts", "run-b", `{"n":1}`)
	mustPublish(t, f, "alerts", "run-a", `{"n":2}`)
	mustPublish(t, f, "alerts", "run-b", `{"n":3}`)
	mustPublish(t, f, "slo", "run-a", `{"n":4}`)
	if f.Total() != 4 {
		t.Fatalf("Total() = %d, want 4", f.Total())
	}

	recs := f.Records()
	want := []Record{
		{Topic: "alerts", Key: "run-a", Seq: 1, Payload: `{"n":2}`},
		{Topic: "alerts", Key: "run-b", Seq: 1, Payload: `{"n":1}`},
		{Topic: "alerts", Key: "run-b", Seq: 2, Payload: `{"n":3}`},
		{Topic: "slo", Key: "run-a", Seq: 1, Payload: `{"n":4}`},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}

	var buf bytes.Buffer
	if err := f.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Topic   string          `json:"topic"`
			Key     string          `json:"key"`
			Seq     uint64          `json:"seq"`
			Payload json.RawMessage `json:"payload"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %d %q is not JSON: %v", i, line, err)
		}
		if rec.Topic != want[i].Topic || rec.Key != want[i].Key || rec.Seq != want[i].Seq {
			t.Errorf("log line %d = %+v, want %+v", i, rec, want[i])
		}
	}
}

func TestFakeBackendRejectsEmptyTopic(t *testing.T) {
	if err := NewFakeMQTT().Publish("", "k", []byte("{}")); err == nil {
		t.Fatal("empty topic accepted")
	}
}

// TestFakeBackendLogOrderIndependent pins the determinism contract:
// the dump depends only on what each key published, not on the
// interleaving across keys.
func TestFakeBackendLogOrderIndependent(t *testing.T) {
	pub := func(order []int) string {
		f := NewFakeBackend("x")
		seq := map[int]int{}
		for _, run := range order {
			seq[run]++
			key := fmt.Sprintf("run-%d", run)
			mustPublish(t, f, "t", key, fmt.Sprintf(`{"run":%d,"n":%d}`, run, seq[run]))
		}
		var buf bytes.Buffer
		if err := f.WriteLog(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := pub([]int{0, 0, 1, 1, 2, 2})
	b := pub([]int{2, 1, 0, 2, 1, 0})
	if a != b {
		t.Fatalf("dump depends on cross-key interleaving:\n%s\nvs\n%s", a, b)
	}
}

func TestFakeBackendConcurrentPublish(t *testing.T) {
	f := NewFakeKafka()
	var wg sync.WaitGroup
	const keys, msgs = 8, 50
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("run-%d", k)
			for i := 0; i < msgs; i++ {
				mustPublish(t, f, "t", key, fmt.Sprintf(`{"i":%d}`, i))
			}
		}(k)
	}
	wg.Wait()
	if f.Total() != keys*msgs {
		t.Fatalf("Total() = %d, want %d", f.Total(), keys*msgs)
	}
	// Within each partition, order is publish order.
	for _, r := range f.Records() {
		want := fmt.Sprintf(`{"i":%d}`, r.Seq-1)
		if r.Payload != want {
			t.Fatalf("partition %s/%s seq %d holds %q, want %q", r.Topic, r.Key, r.Seq, r.Payload, want)
		}
	}
}

func TestLogBackend(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogBackend(&buf)
	if l.Name() != "log" {
		t.Fatalf("Name() = %q", l.Name())
	}
	mustPublish(t, l, "alerts", "run-1", `{"v":1}`)
	if got, want := buf.String(), "alerts run-1 {\"v\":1}\n"; got != want {
		t.Fatalf("log line %q, want %q", got, want)
	}
}

func TestDefaultBackendsAndResolve(t *testing.T) {
	b := DefaultBackends(&bytes.Buffer{})
	for _, name := range []string{"kafka", "mqtt", "log"} {
		if _, ok := b[name]; !ok {
			t.Errorf("DefaultBackends missing %q", name)
		}
	}
	ok := mustRuleSet(t, "loss:*>0.1->kafka:t;breach:*>0->log:slo")
	if err := b.Resolve(ok); err != nil {
		t.Errorf("Resolve rejected known backends: %v", err)
	}
	bad := mustRuleSet(t, "loss:*>0.1->nats:t")
	if err := b.Resolve(bad); err == nil {
		t.Error("Resolve accepted an unknown backend")
	}
}

func mustPublish(t *testing.T, p Publisher, topic, key, payload string) {
	t.Helper()
	if err := p.Publish(topic, key, []byte(payload)); err != nil {
		t.Fatalf("publish %s/%s: %v", topic, key, err)
	}
}
