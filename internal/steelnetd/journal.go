package steelnetd

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"steelnet/internal/enc"
)

// Journal is the gateway's run-lifecycle audit log: every state
// transition (created, started, paused, saved, resumed, stopped, done,
// failed) and every rule firing appends one JSONL record.
//
// Determinism is the contract: records are sequenced *per run*, not
// globally, and buffered per run, so concurrent runs never interleave
// inside each other's logs. WriteLog dumps the runs sorted by id —
// which makes the full journal a pure function of the hosted run
// specs, byte-identical across reruns, -max-concurrent settings, and
// pause/save/resume partitions (a resumed run's journal concatenates
// onto its pre-pause one's). The golden tests pin exactly that.
//
// The append path allocates nothing steady-state: records render with
// strconv appends into a per-run byte buffer whose doubling growth
// amortizes to zero per record.
type Journal struct {
	mu    sync.Mutex
	runs  map[string]*journalLog
	total atomic.Uint64
}

// journalLog is one run's record buffer and sequence counter.
type journalLog struct {
	buf []byte
	seq uint64
}

// Journal event names. Firings record the fired rule in "detail".
const (
	JournalCreated = "created"
	JournalResumed = "resumed"
	JournalStarted = "started"
	JournalPaused  = "paused"
	JournalSaved   = "saved"
	JournalStopped = "stopped"
	JournalDone    = "done"
	JournalFailed  = "failed"
	JournalFiring  = "firing"
)

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{runs: map[string]*journalLog{}}
}

// Record appends one lifecycle record for run:
//
//	{"run":"mill","seq":3,"event":"paused","sim_ns":150000000}
func (j *Journal) Record(run, event string, simNS int64) {
	j.record(run, event, simNS, "")
}

// RecordDetail appends one record with a detail field — rule firings
// record the fired rule's spec, failures the error:
//
//	{"run":"mill","seq":4,"event":"firing","sim_ns":…,"detail":"loss:*>0.1->kafka:alerts"}
func (j *Journal) RecordDetail(run, event string, simNS int64, detail string) {
	j.record(run, event, simNS, detail)
}

func (j *Journal) record(run, event string, simNS int64, detail string) {
	j.mu.Lock()
	l := j.runs[run]
	if l == nil {
		l = &journalLog{}
		j.runs[run] = l
	}
	l.seq++
	b := l.buf
	b = append(b, `{"run":`...)
	b = enc.AppendString(b, run)
	b = append(b, `,"seq":`...)
	b = enc.AppendUint(b, l.seq)
	b = append(b, `,"event":`...)
	b = enc.AppendString(b, event)
	b = append(b, `,"sim_ns":`...)
	b = enc.AppendInt(b, simNS)
	if detail != "" {
		b = append(b, `,"detail":`...)
		b = enc.AppendString(b, detail)
	}
	b = append(b, "}\n"...)
	l.buf = b
	j.mu.Unlock()
	j.total.Add(1)
}

// Total returns the number of records appended so far.
func (j *Journal) Total() uint64 { return j.total.Load() }

// Seq returns the named run's latest sequence number (0 = no records).
func (j *Journal) Seq(run string) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if l := j.runs[run]; l != nil {
		return l.seq
	}
	return 0
}

// WriteLog dumps the journal as JSONL, runs sorted by id, each run's
// records in sequence order — the canonical deterministic rendering.
func (j *Journal) WriteLog(w io.Writer) error {
	j.mu.Lock()
	ids := make([]string, 0, len(j.runs))
	for id := range j.runs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	bufs := make([][]byte, len(ids))
	for i, id := range ids {
		// Snapshot the buffer reference; appenders replace l.buf on
		// growth, so written bytes are never mutated under us.
		bufs[i] = j.runs[id].buf
	}
	j.mu.Unlock()
	for _, b := range bufs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
