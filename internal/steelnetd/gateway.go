package steelnetd

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"steelnet/internal/core"
	"steelnet/internal/enc"
	"steelnet/internal/obs"
	"steelnet/internal/telemetry"
	"steelnet/internal/tshist"
)

// RunSpec declares one hosted run: the core run spec plus the rule set
// evaluated over its sample stream. It is the gateway's POST /runs wire
// format.
type RunSpec struct {
	// ID names the run; empty picks "run-<n>". IDs key the northbound
	// partition logs, so two gateways hosting the same specs under the
	// same IDs produce identical logs.
	ID string `json:"id,omitempty"`
	// Run is the simulation spec (see core.HeadlessConfig).
	Run core.HeadlessConfig `json:"run"`
	// Rules is a rule-set spec (see ParseRuleSet); empty disables the
	// engine for this run.
	Rules string `json:"rules,omitempty"`
	// StopAfter pauses the run after that many slices (0 = run to the
	// horizon). A paused run can be checkpointed with Gateway.Save and
	// continued on another gateway with Resume.
	StopAfter uint64 `json:"stop_after,omitempty"`
}

// RunState is a hosted run's lifecycle phase.
type RunState string

// Run states. Runs move running → done | paused | stopped | failed.
const (
	StateRunning RunState = "running"
	StateDone    RunState = "done"    // reached the horizon
	StatePaused  RunState = "paused"  // hit StopAfter; checkpointable
	StateStopped RunState = "stopped" // cancelled via Stop
	StateFailed  RunState = "failed"
)

// RunStatus is one run's listing entry.
type RunStatus struct {
	ID      string   `json:"id"`
	State   RunState `json:"state"`
	Seq     uint64   `json:"seq"`
	SimNS   int64    `json:"sim_ns"`
	Rules   string   `json:"rules,omitempty"`
	Firings uint64   `json:"firings"`
	Error   string   `json:"error,omitempty"`
}

// run is one hosted simulation and its gateway-side state.
type run struct {
	id     string
	spec   RunSpec
	rules  RuleSet
	broker *obs.Broker
	drv    *core.Headless
	hist   *tshist.Recorder
	resume bool

	cancel chan struct{}
	stop   sync.Once
	done   chan struct{}

	mu      sync.Mutex
	state   RunState
	seq     uint64
	simNS   int64
	firings uint64
	err     error
}

func (r *run) status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{ID: r.id, State: r.state, Seq: r.seq, SimNS: r.simNS, Rules: r.rules.Name, Firings: r.firings}
	if r.err != nil {
		st.Error = r.err.Error()
	}
	return st
}

// GatewayConfig configures a Gateway.
type GatewayConfig struct {
	// Backends routes rule actions; nil installs DefaultBackends with
	// the log backend discarded.
	Backends Backends
	// MaxConcurrent bounds how many runs step at once (0 = unlimited).
	// Queued runs wait in start order. Because northbound logs are
	// keyed per run, the dumps are identical at any setting — the
	// golden tests pin that.
	MaxConcurrent int
	// Trace records the gateway plane's own trace events (run windows,
	// rule firings, HTTP request spans) for WriteTrace's stitched
	// Chrome/Perfetto export. Per-run simulation lanes additionally
	// require Trace in the run spec.
	Trace bool
}

// Gateway hosts many concurrent simulation runs behind one surface:
// each run steps a core.Headless driver on its own goroutine,
// publishes its telemetry through a per-run obs.Broker, fans changed
// tags and rule firings out through the shared Hub, and routes rule
// firings to the northbound backends.
type Gateway struct {
	hub      *Hub
	backends Backends
	sem      chan struct{}
	journal  *Journal
	trace    *TraceLog // nil unless GatewayConfig.Trace

	mu     sync.Mutex
	runs   map[string]*run
	order  []string
	nextID int

	started atomic.Uint64
	active  atomic.Int64
	// transitions counts every run state entered, per state — the
	// steelnetd_run_transitions_total{state=…} family.
	transitions map[RunState]*atomic.Uint64
	// latestSimNS is the newest simulated instant any run has published
	// — the anchor WriteTrace stitches wall-clock HTTP spans to.
	latestSimNS atomic.Int64
}

// NewGateway builds an idle gateway.
func NewGateway(cfg GatewayConfig) *Gateway {
	g := &Gateway{
		hub:         NewHub(),
		backends:    cfg.Backends,
		runs:        map[string]*run{},
		journal:     NewJournal(),
		transitions: map[RunState]*atomic.Uint64{},
	}
	if g.backends == nil {
		g.backends = DefaultBackends(io.Discard)
	}
	if cfg.MaxConcurrent > 0 {
		g.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	if cfg.Trace {
		g.trace = &TraceLog{}
	}
	reg := g.hub.Registry()
	reg.Counter("steelnetd_runs_started_total", nil,
		"Runs accepted by the gateway.", g.started.Load)
	reg.Gauge("steelnetd_runs_active", nil,
		"Runs currently stepping.", func() float64 { return float64(g.active.Load()) })
	reg.Counter("steelnetd_journal_records_total", nil,
		"Lifecycle journal records appended.", g.journal.Total)
	for _, st := range []RunState{StateRunning, StateDone, StatePaused, StateStopped, StateFailed} {
		c := &atomic.Uint64{}
		g.transitions[st] = c
		reg.Counter("steelnetd_run_transitions_total", telemetry.L("state", string(st)),
			"Run state transitions, by state entered.", c.Load)
	}
	// Backends that keep a count (the fakes) expose it per backend.
	names := make([]string, 0, len(g.backends))
	for name := range g.backends {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if t, ok := g.backends[name].(interface{ Total() uint64 }); ok {
			reg.Counter("steelnetd_backend_published_total", telemetry.L("backend", name),
				"Messages published northbound, by backend.", t.Total)
		}
	}
	return g
}

// Journal returns the gateway's run-lifecycle audit journal.
func (g *Gateway) Journal() *Journal { return g.journal }

// Trace returns the gateway-plane trace log (nil unless enabled).
func (g *Gateway) Trace() *TraceLog { return g.trace }

// History returns a run's time-series history recorder.
func (g *Gateway) History(id string) (*tshist.Recorder, bool) {
	r, ok := g.get(id)
	if !ok {
		return nil, false
	}
	return r.hist, true
}

// Hub returns the fleet-wide fan-out hub.
func (g *Gateway) Hub() *Hub { return g.hub }

// Backend returns a named northbound backend.
func (g *Gateway) Backend(name string) (Publisher, bool) {
	p, ok := g.backends[name]
	return p, ok
}

// Start validates spec, registers the run and begins stepping it on its
// own goroutine. It returns the run ID immediately.
func (g *Gateway) Start(spec RunSpec) (string, error) {
	return g.launch(spec, nil)
}

// Resume is Start for a checkpointed run: cp is a stream written by
// Save, spec must be the spec the run was started from. The restored
// driver replays to the checkpoint instant, the change detector and
// rule engine prime on the restore-point sample without publishing, and
// the continued northbound stream is byte-identical to an unpaused
// run's from that point on.
func (g *Gateway) Resume(spec RunSpec, cp io.Reader) (string, error) {
	if cp == nil {
		return "", fmt.Errorf("steelnetd: resume without a checkpoint")
	}
	return g.launch(spec, cp)
}

func (g *Gateway) launch(spec RunSpec, cp io.Reader) (string, error) {
	rules, err := ParseRuleSet(spec.Rules)
	if err != nil {
		return "", err
	}
	if err := g.backends.Resolve(rules); err != nil {
		return "", err
	}
	var drv *core.Headless
	if cp != nil {
		drv, err = core.RestoreHeadless(cp, spec.Run)
	} else {
		drv, err = core.NewHeadless(spec.Run)
	}
	if err != nil {
		return "", err
	}
	spec.Run = drv.Config()

	g.mu.Lock()
	if spec.ID == "" {
		g.nextID++
		spec.ID = "run-" + strconv.Itoa(g.nextID)
	}
	if _, dup := g.runs[spec.ID]; dup {
		g.mu.Unlock()
		return "", fmt.Errorf("steelnetd: run %q already exists", spec.ID)
	}
	r := &run{
		id: spec.ID, spec: spec, rules: rules, drv: drv, resume: cp != nil,
		broker: obs.NewBroker(),
		hist:   tshist.NewRecorder(0, 0, 0),
		cancel: make(chan struct{}), done: make(chan struct{}),
		state: StateRunning, seq: drv.Sample().Seq, simNS: drv.Now(),
	}
	g.runs[spec.ID] = r
	g.order = append(g.order, spec.ID)
	g.mu.Unlock()
	g.started.Add(1)
	r.broker.SetState(string(StateRunning))
	if cp != nil {
		g.journal.Record(r.id, JournalResumed, drv.Now())
	} else {
		g.journal.Record(r.id, JournalCreated, drv.Now())
	}
	go g.drive(r)
	return spec.ID, nil
}

// drive is the run goroutine: acquire a concurrency slot, step slice by
// slice, publish, evaluate rules, until the horizon / StopAfter / Stop.
func (g *Gateway) drive(r *run) {
	defer close(r.done)
	if g.sem != nil {
		select {
		case g.sem <- struct{}{}:
			defer func() { <-g.sem }()
		case <-r.cancel:
			g.finish(r, StateStopped, nil)
			return
		}
	}
	g.active.Add(1)
	defer g.active.Add(-1)
	g.journal.Record(r.id, JournalStarted, r.drv.Now())
	g.transitions[StateRunning].Add(1)

	engine := NewEngine(r.rules)
	prev := map[string]float64{}
	if r.resume {
		// Prime the change detector and the engine's edge state on the
		// restore-point sample so the continued publish stream picks up
		// exactly where the straight run's would.
		s := r.drv.Sample()
		for _, t := range s.Tags {
			prev[t.Name] = t.Value
		}
		engine.Prime(&s)
	}

	var steps uint64
	var payload, frame []byte
	var batch []TagChange
	prevSim := r.drv.Now()
	for !r.drv.Done() {
		select {
		case <-r.cancel:
			g.finish(r, StateStopped, nil)
			return
		default:
		}
		if r.spec.StopAfter > 0 && steps >= r.spec.StopAfter {
			g.finish(r, StatePaused, nil)
			return
		}
		r.drv.Step()
		steps++
		s := r.drv.Sample()
		r.mu.Lock()
		r.seq, r.simNS = s.Seq, s.SimNS
		r.mu.Unlock()

		if err := r.broker.Publish(r.drv.Registry(), nil, s.SimNS); err != nil {
			g.finish(r, StateFailed, err)
			return
		}
		r.broker.PublishBreaches(s.Breaches)

		// History: every sampled tag, every slice — the recorder's
		// bounded rings make this O(1) memory per metric, and its
		// determinism makes /history a pure function of the run spec.
		for _, t := range s.Tags {
			r.hist.Append(t.Name, s.SimNS, t.Value)
		}
		if s.SimNS > g.latestSimNS.Load() {
			g.latestSimNS.Store(s.SimNS) // racy max across runs is fine
		}
		if g.trace != nil {
			g.trace.Add(telemetry.Event{T: prevSim, Kind: telemetry.KindRunWindow,
				Node: "run/" + r.id, Frame: s.Seq, Aux: s.SimNS - prevSim})
		}
		prevSim = s.SimNS

		// Change-detection filtering: republish only tags whose value
		// moved since the last slice.
		batch = batch[:0]
		for _, t := range s.Tags {
			if v, seen := prev[t.Name]; !seen || v != t.Value {
				prev[t.Name] = t.Value
				batch = append(batch, TagChange{Name: t.Name, Value: t.Value})
			}
		}
		if len(batch) > 0 {
			payload = appendTagsPayload(payload[:0], r.id, s.Seq, s.SimNS, batch)
			frame = sseFrame("tags", payload)
			g.hub.Publish(Frame{Run: r.id, Data: frame})
		}

		for _, f := range engine.Eval(&s) {
			fp := appendFiringPayload(nil, r.id, f)
			if p, ok := g.backends[f.Backend]; ok {
				if err := p.Publish(f.Topic, r.id, fp); err != nil {
					g.finish(r, StateFailed, err)
					return
				}
			}
			g.hub.Publish(Frame{Run: r.id, Data: sseFrame("firing", fp)})
			g.journal.RecordDetail(r.id, JournalFiring, f.SimNS, f.Rule)
			if g.trace != nil {
				g.trace.Add(telemetry.Event{T: f.SimNS, Kind: telemetry.KindRuleFiring,
					Node: "run/" + r.id, Detail: f.Rule, Aux: int64(f.Seq)})
			}
			r.mu.Lock()
			r.firings++
			r.mu.Unlock()
		}
	}
	g.finish(r, StateDone, nil)
}

// finish moves a run into a terminal (or paused) state: the status
// struct, the per-run broker's healthz state, the transition counter
// and the journal all see the same transition.
func (g *Gateway) finish(r *run, s RunState, err error) {
	r.mu.Lock()
	r.state, r.err = s, err
	r.mu.Unlock()
	r.broker.SetState(string(s))
	g.transitions[s].Add(1)
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	g.journal.RecordDetail(r.id, string(s), r.drv.Now(), detail)
}

// appendFiringPayload renders one firing as JSON, keyed by run:
//
//	{"run":"r1","rule":"loss:*>0.01->kafka:alerts","seq":3,"sim_ns":…,"value":0.02}
func appendFiringPayload(b []byte, run string, f Firing) []byte {
	b = append(b, `{"run":`...)
	b = enc.AppendString(b, run)
	b = append(b, `,"rule":`...)
	b = enc.AppendString(b, f.Rule)
	b = append(b, `,"seq":`...)
	b = enc.AppendUint(b, f.Seq)
	b = append(b, `,"sim_ns":`...)
	b = enc.AppendInt(b, f.SimNS)
	b = append(b, `,"value":`...)
	b = enc.AppendFloat(b, f.Value)
	b = append(b, '}')
	return b
}

// Stop cancels a run. Idempotent; stopping a finished run is a no-op.
func (g *Gateway) Stop(id string) error {
	r, ok := g.get(id)
	if !ok {
		return fmt.Errorf("steelnetd: no run %q", id)
	}
	r.stop.Do(func() { close(r.cancel) })
	return nil
}

// Wait blocks until the run's goroutine has exited (done, paused,
// stopped or failed) and returns its terminal error, if any.
func (g *Gateway) Wait(id string) error {
	r, ok := g.get(id)
	if !ok {
		return fmt.Errorf("steelnetd: no run %q", id)
	}
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Save checkpoints a run that is no longer stepping (paused or done);
// saving a live run would race its goroutine. The stream restores with
// Resume under the same spec.
func (g *Gateway) Save(id string, w io.Writer) error {
	r, ok := g.get(id)
	if !ok {
		return fmt.Errorf("steelnetd: no run %q", id)
	}
	select {
	case <-r.done:
	default:
		return fmt.Errorf("steelnetd: run %q is still stepping; Stop or StopAfter first", id)
	}
	if err := r.drv.Save(w); err != nil {
		return err
	}
	g.journal.Record(id, JournalSaved, r.drv.Now())
	return nil
}

// Remove forgets a finished run (its broker and status). The northbound
// logs keep its records.
func (g *Gateway) Remove(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	if !ok {
		return fmt.Errorf("steelnetd: no run %q", id)
	}
	select {
	case <-r.done:
	default:
		return fmt.Errorf("steelnetd: run %q is still stepping; Stop it first", id)
	}
	delete(g.runs, id)
	for i, oid := range g.order {
		if oid == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	return nil
}

// Status returns one run's listing entry.
func (g *Gateway) Status(id string) (RunStatus, bool) {
	r, ok := g.get(id)
	if !ok {
		return RunStatus{}, false
	}
	return r.status(), true
}

// Broker returns a run's obs.Broker for mounting its HTTP endpoints.
func (g *Gateway) Broker(id string) (*obs.Broker, bool) {
	r, ok := g.get(id)
	if !ok {
		return nil, false
	}
	return r.broker, true
}

// List returns every hosted run's status in start order.
func (g *Gateway) List() []RunStatus {
	g.mu.Lock()
	rs := make([]*run, 0, len(g.runs))
	for _, id := range g.order {
		rs = append(rs, g.runs[id])
	}
	g.mu.Unlock()
	sts := make([]RunStatus, len(rs))
	for i, r := range rs {
		sts[i] = r.status()
	}
	return sts
}

// BackendNames lists the installed northbound backends, sorted.
func (g *Gateway) BackendNames() []string {
	names := make([]string, 0, len(g.backends))
	for n := range g.backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close stops every run and waits for their goroutines.
func (g *Gateway) Close() {
	g.mu.Lock()
	rs := make([]*run, 0, len(g.runs))
	for _, r := range g.runs {
		rs = append(rs, r)
	}
	g.mu.Unlock()
	for _, r := range rs {
		r.stop.Do(func() { close(r.cancel) })
	}
	for _, r := range rs {
		<-r.done
	}
}

func (g *Gateway) get(id string) (*run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	return r, ok
}
