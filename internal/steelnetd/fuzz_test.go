package steelnetd

import (
	"errors"
	"strings"
	"testing"
)

// fuzzSeedSpecs are accepted rule specs spanning every condition kind,
// both ops, both threshold syntaxes and multi-rule sets; the mutator
// explores the grammar's boundary from both sides.
func fuzzSeedSpecs() []string {
	return []string{
		"latency:press-sink>250µs->kafka:alerts",
		"jitter:*<1ms->mqtt:plant/jitter",
		"loss:*>0.01->mqtt:plant/loss",
		"breach:instaplc-switch.out2>0->log:slo",
		`tag:steelnet_host_rx_total{node="io"}>100->kafka:tags`,
		"tag:x>1e-9->kafka:t",
		"loss:*>0.01->kafka:alerts;breach:*>0->log:slo",
		" loss : * > 0.5 -> kafka: alerts ",
		"",
		"loss:*>",
		"x",
		"latency:*>abc->k:t",
		"loss:*>1->:t",
	}
}

// FuzzParseRule pins the grammar's contract: the parser never panics;
// every rejection is a *ParseError whose position lands inside (or
// just past) the spec; and every accepted set round-trips exactly —
// String() is a parse fixed point that reproduces the same rules.
func FuzzParseRule(f *testing.F) {
	for _, s := range fuzzSeedSpecs() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		rs, err := ParseRuleSet(spec)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is %T, not *ParseError: %v", err, err)
			}
			if pe.Pos < 0 || pe.Pos > len(spec) {
				t.Fatalf("error position %d outside spec of length %d", pe.Pos, len(spec))
			}
			if pe.Spec != spec {
				t.Fatalf("ParseError.Spec = %q, want the input spec", pe.Spec)
			}
			return
		}
		if err := rs.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid set: %v", err)
		}
		canon := rs.String()
		rs2, err := ParseRuleSet(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if got := rs2.String(); got != canon {
			t.Fatalf("String is not a parse fixed point: %q -> %q", canon, got)
		}
		if len(rs2.Rules) != len(rs.Rules) {
			t.Fatalf("round trip changed rule count: %d -> %d", len(rs.Rules), len(rs2.Rules))
		}
		for i := range rs.Rules {
			if rs2.Rules[i] != rs.Rules[i] {
				t.Fatalf("rule %d changed across round trip:\n  %+v\n  %+v", i, rs.Rules[i], rs2.Rules[i])
			}
		}
		// Rendering individual rules agrees with rendering the set.
		if len(rs.Rules) == 1 && !strings.Contains(canon, ";") {
			r, err := ParseRule(canon)
			if err != nil || r != rs.Rules[0] {
				t.Fatalf("ParseRule and ParseRuleSet disagree on %q: %+v vs %+v (%v)", canon, r, rs.Rules[0], err)
			}
		}
	})
}
