package steelnetd

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Publisher is the northbound seam: rule firings and republish batches
// leave the gateway through one of these. Implementations must be safe
// for concurrent use — every run goroutine publishes into the same
// backend.
type Publisher interface {
	// Name identifies the backend in rule specs ("kafka", "mqtt", "log").
	Name() string
	// Publish delivers one message. key partitions the topic (the
	// gateway uses the run ID), mirroring Kafka partition keys and
	// MQTT topic levels: ordering is guaranteed within a (topic, key)
	// partition and unspecified across partitions.
	Publish(topic, key string, payload []byte) error
}

// Record is one published message as a fake backend logged it.
type Record struct {
	Topic string `json:"topic"`
	Key   string `json:"key"`
	// Seq is the record's position within its (topic, key) partition,
	// from 1.
	Seq     uint64 `json:"seq"`
	Payload string `json:"payload"`
}

// FakeBackend is an in-process stand-in for a Kafka or MQTT northbound:
// it appends every publish to a per-(topic, key) partition log. Because
// concurrent runs publish under distinct keys, the partition logs — and
// therefore WriteLog's sorted dump — are a pure function of the hosted
// run specs, regardless of goroutine interleaving. That determinism is
// what the golden tests pin.
type FakeBackend struct {
	name string

	mu    sync.Mutex
	parts map[partKey][]string
	total uint64
}

type partKey struct{ topic, key string }

// NewFakeKafka returns a fake backend named "kafka".
func NewFakeKafka() *FakeBackend { return &FakeBackend{name: "kafka", parts: map[partKey][]string{}} }

// NewFakeMQTT returns a fake backend named "mqtt".
func NewFakeMQTT() *FakeBackend { return &FakeBackend{name: "mqtt", parts: map[partKey][]string{}} }

// NewFakeBackend returns a fake backend with an arbitrary name.
func NewFakeBackend(name string) *FakeBackend {
	return &FakeBackend{name: name, parts: map[partKey][]string{}}
}

// Name implements Publisher.
func (f *FakeBackend) Name() string { return f.name }

// Publish implements Publisher by appending to the partition log.
func (f *FakeBackend) Publish(topic, key string, payload []byte) error {
	if topic == "" {
		return fmt.Errorf("steelnetd: %s: publish with empty topic", f.name)
	}
	f.mu.Lock()
	pk := partKey{topic, key}
	f.parts[pk] = append(f.parts[pk], string(payload))
	f.total++
	f.mu.Unlock()
	return nil
}

// Total returns the number of messages published so far.
func (f *FakeBackend) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Records returns every logged message sorted by (topic, key, seq) —
// the canonical deterministic order.
func (f *FakeBackend) Records() []Record {
	f.mu.Lock()
	keys := make([]partKey, 0, len(f.parts))
	for pk := range f.parts {
		keys = append(keys, pk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].topic != keys[j].topic {
			return keys[i].topic < keys[j].topic
		}
		return keys[i].key < keys[j].key
	})
	var recs []Record
	for _, pk := range keys {
		for i, payload := range f.parts[pk] {
			recs = append(recs, Record{Topic: pk.topic, Key: pk.key, Seq: uint64(i + 1), Payload: payload})
		}
	}
	f.mu.Unlock()
	return recs
}

// WriteLog dumps the backend's full log as JSONL in (topic, key, seq)
// order. Two gateways that hosted the same run specs dump byte-identical
// logs, at any concurrency.
func (f *FakeBackend) WriteLog(w io.Writer) error {
	for _, r := range f.Records() {
		if _, err := fmt.Fprintf(w, `{"topic":%q,"key":%q,"seq":%d,"payload":%s}`+"\n",
			r.Topic, r.Key, r.Seq, r.Payload); err != nil {
			return err
		}
	}
	return nil
}

// LogBackend writes each publish immediately as one line — smoke-test
// and debugging output. Line order follows publish order, so it is NOT
// deterministic across concurrent runs; goldens use FakeBackend.
type LogBackend struct {
	name string
	mu   sync.Mutex
	w    io.Writer
}

// NewLogBackend returns a backend named "log" writing to w.
func NewLogBackend(w io.Writer) *LogBackend { return &LogBackend{name: "log", w: w} }

// Name implements Publisher.
func (l *LogBackend) Name() string { return l.name }

// Publish implements Publisher.
func (l *LogBackend) Publish(topic, key string, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := fmt.Fprintf(l.w, "%s %s %s\n", topic, key, payload)
	return err
}

// Backends is a named set of publishers, the gateway's action-routing
// table.
type Backends map[string]Publisher

// DefaultBackends returns the standard trio: fake kafka, fake mqtt, and
// a log backend writing to w.
func DefaultBackends(w io.Writer) Backends {
	k, m, l := NewFakeKafka(), NewFakeMQTT(), NewLogBackend(w)
	return Backends{k.Name(): k, m.Name(): m, l.Name(): l}
}

// Resolve checks that every backend a rule set routes to exists.
func (b Backends) Resolve(rs RuleSet) error {
	for i, r := range rs.Rules {
		if _, ok := b[r.Backend]; !ok {
			return fmt.Errorf("steelnetd: rule %d (%s): unknown backend %q", i, r, r.Backend)
		}
	}
	return nil
}
