package steelnetd

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// dumpObsPlane runs the specs on a fresh gateway at the given
// concurrency and returns the lifecycle journal dump plus a canonical
// rendering of every run's time-series history.
func dumpObsPlane(t *testing.T, maxConcurrent int, specs []RunSpec) (journal, history string) {
	t.Helper()
	g := NewGateway(GatewayConfig{MaxConcurrent: maxConcurrent})
	defer g.Close()
	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, err := g.Start(spec)
		if err != nil {
			t.Fatalf("start %q: %v", spec.ID, err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if err := g.Wait(id); err != nil {
			t.Fatalf("wait %q: %v", id, err)
		}
	}
	var jb bytes.Buffer
	if err := g.Journal().WriteLog(&jb); err != nil {
		t.Fatal(err)
	}
	return jb.String(), dumpHistory(t, g, ids)
}

// dumpHistory renders every run's full-resolution history in a fixed
// text form: one line per (run, metric) with every retained point.
func dumpHistory(t *testing.T, g *Gateway, ids []string) string {
	t.Helper()
	var b strings.Builder
	for _, id := range ids {
		rec, ok := g.History(id)
		if !ok {
			t.Fatalf("no history for %q", id)
		}
		for _, name := range rec.Names() {
			pts, fold, ok := rec.Query(name, 0, 0)
			if !ok {
				t.Fatalf("%s: metric %q vanished", id, name)
			}
			fmt.Fprintf(&b, "%s %s fold=%d", id, name, fold)
			for _, p := range pts {
				fmt.Fprintf(&b, " %d:%g", p.TNS, p.V)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestJournalAndHistoryGoldenAcrossConcurrency extends the PR 9 golden
// suite to the observability plane: the lifecycle journal and every
// run's /history are pure functions of the hosted run specs —
// byte-identical at any -max-concurrent setting and across reruns.
func TestJournalAndHistoryGoldenAcrossConcurrency(t *testing.T) {
	specs := goldenSpecs()
	baseJournal, baseHistory := dumpObsPlane(t, 1, specs)
	if baseJournal == "" || baseHistory == "" {
		t.Fatalf("golden fleet recorded nothing: journal=%d bytes, history=%d bytes",
			len(baseJournal), len(baseHistory))
	}
	if !strings.Contains(baseJournal, `"event":"firing"`) {
		t.Fatalf("journal recorded no firings:\n%s", baseJournal)
	}
	for conc := 0; conc <= 4; conc += 2 {
		j, h := dumpObsPlane(t, conc, specs)
		if j != baseJournal {
			t.Errorf("-max-concurrent=%d changed the journal:\n--- conc=1\n%s\n--- conc=%d\n%s", conc, baseJournal, conc, j)
		}
		if h != baseHistory {
			t.Errorf("-max-concurrent=%d changed the history", conc)
		}
	}
	// Rerun at the same setting: byte-identical again.
	j, h := dumpObsPlane(t, 1, specs)
	if j != baseJournal || h != baseHistory {
		t.Error("rerun changed the journal or history")
	}
}

// TestHistoryStraightVsResume pins the recorder's pause/resume
// contract: a straight run's retained points equal the pre-pause
// recorder's followed by the resumed recorder's, per metric.
func TestHistoryStraightVsResume(t *testing.T) {
	spec := RunSpec{ID: "hist-cut", Run: testRun(42), Rules: testRules}

	g := NewGateway(GatewayConfig{})
	id, err := g.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	straight, _ := g.History(id)
	g.Close()
	if len(straight.Names()) == 0 {
		t.Fatal("straight run recorded no history")
	}

	for cut := uint64(1); cut <= 7; cut += 3 {
		paused := spec
		paused.StopAfter = cut
		g1 := NewGateway(GatewayConfig{})
		id1, err := g1.Start(paused)
		if err != nil {
			t.Fatal(err)
		}
		if err := g1.Wait(id1); err != nil {
			t.Fatal(err)
		}
		var cp bytes.Buffer
		if err := g1.Save(id1, &cp); err != nil {
			t.Fatal(err)
		}
		part1, _ := g1.History(id1)
		g1.Close()

		g2 := NewGateway(GatewayConfig{})
		id2, err := g2.Resume(spec, &cp)
		if err != nil {
			t.Fatal(err)
		}
		if err := g2.Wait(id2); err != nil {
			t.Fatal(err)
		}
		part2, _ := g2.History(id2)
		g2.Close()

		for _, name := range straight.Names() {
			want, _, _ := straight.Query(name, 0, 0)
			p1, _, ok1 := part1.Query(name, 0, 0)
			p2, _, ok2 := part2.Query(name, 0, 0)
			if !ok1 && !ok2 {
				t.Errorf("cut=%d: metric %q missing from both partitions", cut, name)
				continue
			}
			joined := append(p1[:len(p1):len(p1)], p2...)
			if len(joined) != len(want) {
				t.Errorf("cut=%d: metric %q has %d points, want %d", cut, name, len(joined), len(want))
				continue
			}
			for i := range want {
				if joined[i] != want[i] {
					t.Errorf("cut=%d: metric %q point %d = %+v, want %+v", cut, name, i, joined[i], want[i])
				}
			}
		}
	}
}

// TestJournalLifecycle pins the journal's record sequence for the
// paused → saved → resumed lifecycle, including per-run sequencing and
// firing details.
func TestJournalLifecycle(t *testing.T) {
	spec := RunSpec{ID: "jl", Run: testRun(42), Rules: testRules, StopAfter: 2}
	g := NewGateway(GatewayConfig{})
	id, err := g.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	var cp bytes.Buffer
	if err := g.Save(id, &cp); err != nil {
		t.Fatal(err)
	}
	var jb bytes.Buffer
	if err := g.Journal().WriteLog(&jb); err != nil {
		t.Fatal(err)
	}
	g.Close()
	lines := strings.Split(strings.TrimSpace(jb.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal has %d records, want >= 4:\n%s", len(lines), jb.String())
	}
	wantPrefix := []string{`"event":"created"`, `"event":"started"`}
	for i, want := range wantPrefix {
		if !strings.Contains(lines[i], want) {
			t.Errorf("record %d = %s, want %s", i, lines[i], want)
		}
		if !strings.Contains(lines[i], fmt.Sprintf(`"seq":%d`, i+1)) {
			t.Errorf("record %d lacks seq %d: %s", i, i+1, lines[i])
		}
	}
	last, prev := lines[len(lines)-1], lines[len(lines)-2]
	if !strings.Contains(prev, `"event":"paused"`) || !strings.Contains(last, `"event":"saved"`) {
		t.Errorf("journal tail = %s / %s, want paused then saved", prev, last)
	}

	// Resume on a second gateway: resumed, started, …, done.
	g2 := NewGateway(GatewayConfig{})
	id2, err := g2.Resume(RunSpec{ID: "jl", Run: testRun(42), Rules: testRules}, &cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Wait(id2); err != nil {
		t.Fatal(err)
	}
	jb.Reset()
	if err := g2.Journal().WriteLog(&jb); err != nil {
		t.Fatal(err)
	}
	g2.Close()
	lines = strings.Split(strings.TrimSpace(jb.String()), "\n")
	if !strings.Contains(lines[0], `"event":"resumed"`) || !strings.Contains(lines[1], `"event":"started"`) {
		t.Errorf("resumed journal head:\n%s\n%s", lines[0], lines[1])
	}
	if !strings.Contains(lines[len(lines)-1], `"event":"done"`) {
		t.Errorf("resumed journal tail: %s", lines[len(lines)-1])
	}
	if g2.Journal().Seq("jl") != uint64(len(lines)) {
		t.Errorf("Seq = %d, lines = %d", g2.Journal().Seq("jl"), len(lines))
	}
}

// TestJournalStopAndFail pins the stopped and transition-counter paths.
func TestJournalStopAndFail(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	long := testRun(1)
	long.Horizon = 30_000_000_000 // 30s: will not finish on its own
	id, err := g.Start(RunSpec{ID: "victim", Run: long})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Stop(id); err != nil {
		t.Fatal(err)
	}
	g.Wait(id) //nolint:errcheck
	var jb bytes.Buffer
	if err := g.Journal().WriteLog(&jb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), `"event":"stopped"`) {
		t.Errorf("journal lacks stopped record:\n%s", jb.String())
	}
	g.Close()
}

// TestGatewayTraceStitching pins the cross-layer trace: a traced run on
// a traced gateway exports one Chrome file holding the sim lanes
// (prefixed by run id), the gateway's run windows and rule firings.
func TestGatewayTraceStitching(t *testing.T) {
	g := NewGateway(GatewayConfig{Trace: true})
	spec := RunSpec{ID: "tr", Run: testRun(42), Rules: testRules}
	spec.Run.Trace = true
	id, err := g.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	g.Close()
	out := buf.String()
	for _, want := range []string{
		`"steelnetd"`,  // gateway process metadata
		`"run/tr"`,     // run-window lane
		`"tr/`,         // sim lanes prefixed by run id
		`"cat":"rule"`, // rule-firing instants
		`"name":"slice"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace lacks %s", want)
		}
	}
}
