package steelnetd

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"steelnet/internal/obs"
	"steelnet/internal/tshist"
)

// NewServeMux builds the gateway's HTTP surface on a private mux:
//
//	/                       index
//	/healthz                liveness + fleet counters
//	/metrics                Prometheus exposition of the hub registry
//	/journal                run-lifecycle audit journal (JSONL)
//	/trace                  stitched fleet Chrome/Perfetto trace
//	/runs                   GET list, POST start (RunSpec JSON body)
//	/runs/{id}              GET status, DELETE stop
//	/runs/{id}/metrics      the run's Prometheus exposition
//	/runs/{id}/shards       the run's shard profile (404: not sharded)
//	/runs/{id}/history      the run's time-series history (tshist)
//	/runs/{id}/events       the run's SSE stream (deltas + breaches)
//	/events                 fleet-wide SSE fan-out (?run= filters)
//	/backends               installed northbound backends
//	/backends/{name}/log    a fake backend's JSONL publish log
//
// Every route is wrapped in the RED middleware: request counts by
// status class, latency histograms and (with tracing on) request spans
// all land on the daemon /metrics and /trace, labeled by the route
// pattern. Build the mux once per gateway — registration appends to
// the hub registry.
func NewServeMux(g *Gateway) *http.ServeMux {
	mux := http.NewServeMux()
	m := newHTTPMetrics(g)
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, m.wrap(route, h))
	}
	handle("/{$}", "/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "steelnetd gateway\n\n/healthz\n/metrics\n/journal\n/trace\n/runs\n/runs/{id}\n/runs/{id}/{metrics,shards,history,events}\n/events (SSE)\n/backends\n/backends/{name}/log\n")
	})
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := g.Hub()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"runs":%d,"subscribers":%d,"published":%d,"dropped":%d,"evicted":%d,"queue_high_water":%d,"journal_records":%d}`+"\n",
			len(g.List()), h.Subscribers(), h.Published(), h.Dropped(), h.Evicted(), h.QueueHighWater(), g.Journal().Total())
	})
	handle("GET /metrics", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.Hub().Registry().WritePrometheus(w) //nolint:errcheck // client went away
	})
	handle("GET /journal", "/journal", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		g.Journal().WriteLog(w) //nolint:errcheck // client went away
	})
	handle("GET /trace", "/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		g.WriteTrace(w) //nolint:errcheck // client went away
	})
	handle("GET /runs", "/runs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.List())
	})
	handle("POST /runs", "/runs", func(w http.ResponseWriter, r *http.Request) {
		var spec RunSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, "bad run spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		id, err := g.Start(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, map[string]string{"id": id})
	})
	handle("GET /runs/{id}", "/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := g.Status(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, st)
	})
	handle("DELETE /runs/{id}", "/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := g.Stop(id); err != nil {
			http.NotFound(w, r)
			return
		}
		g.Wait(id) //nolint:errcheck // terminal state reported by status
		st, _ := g.Status(id)
		writeJSON(w, st)
	})
	// Per-run telemetry: mount the run's obs.Broker handlers.
	brokerRoute := func(pattern, route string, serve func(b *obs.Broker, w http.ResponseWriter, r *http.Request)) {
		handle(pattern, route, func(w http.ResponseWriter, r *http.Request) {
			b, ok := g.Broker(r.PathValue("id"))
			if !ok {
				http.NotFound(w, r)
				return
			}
			serve(b, w, r)
		})
	}
	brokerRoute("GET /runs/{id}/metrics", "/runs/{id}/metrics", (*obs.Broker).ServeMetrics)
	brokerRoute("GET /runs/{id}/shards", "/runs/{id}/shards", (*obs.Broker).ServeShards)
	brokerRoute("GET /runs/{id}/events", "/runs/{id}/events", (*obs.Broker).ServeEvents)
	handle("GET /runs/{id}/history", "/runs/{id}/history", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		rec, ok := g.History(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		tshist.ServeQuery(w, r, rec, id)
	})
	handle("GET /events", "/events", func(w http.ResponseWriter, r *http.Request) {
		serveHubEvents(g.Hub(), w, r)
	})
	handle("GET /backends", "/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, g.BackendNames())
	})
	handle("GET /backends/{name}/log", "/backends/{name}/log", func(w http.ResponseWriter, r *http.Request) {
		p, ok := g.Backend(r.PathValue("name"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		f, ok := p.(*FakeBackend)
		if !ok {
			http.Error(w, "backend keeps no log", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		f.WriteLog(w) //nolint:errcheck // client went away
	})
	return mux
}

// serveHubEvents streams the fleet-wide fan-out over SSE until the
// client disconnects or the hub evicts the subscription.
func serveHubEvents(h *Hub, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	hd := w.Header()
	hd.Set("Content-Type", "text/event-stream")
	hd.Set("Cache-Control", "no-cache")
	hd.Set("Connection", "keep-alive")
	ch, cancel := h.Subscribe(r.URL.Query().Get("run"))
	defer cancel()
	fmt.Fprintf(w, "event: hello\ndata: {\"subscribers\":%d}\n\n", h.Subscribers())
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case f, ok := <-ch:
			if !ok {
				return // evicted by the hub
			}
			if _, err := w.Write(f.Data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client went away
}

// Server is the gateway's HTTP server.
type Server struct {
	g    *Gateway
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Listen starts serving g on addr (host:port; port 0 picks a free one)
// and returns immediately; the accept loop runs on its own goroutine.
func Listen(addr string, g *Gateway) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{g: g, ln: ln, srv: &http.Server{Handler: NewServeMux(g)}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	}()
	return s, nil
}

// Done is closed when the accept loop exits (after Close, or a listener
// failure). The daemon selects on it next to its signal channel.
func (s *Server) Done() <-chan struct{} { return s.done }

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP server (SSE streams see their contexts
// cancelled) and then the gateway's runs.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.g.Close()
	return err
}
