package steelnetd

import (
	"fmt"
	"testing"
	"time"

	"steelnet/internal/tshist"
)

// BenchmarkGatewayFanout is ISSUE 9's headline load shape: M=8 sims
// fanning out through one hub to N=1000 SSE-equivalent subscribers. One
// iteration is a whole fleet run; the reported extras are delivered
// messages per second and the hub's per-publish fan-out latency
// quantiles.
func BenchmarkGatewayFanout(b *testing.B) {
	cfg := LoadConfig{
		Sims:        8,
		Subscribers: 1000,
		Run:         testRun(1),
		Rules:       testRules,
	}
	var last LoadResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := RunLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Dropped != 0 || res.Delivered != res.Frames*uint64(res.Subscribers) {
			b.Fatalf("lossy fan-out: %+v", res)
		}
		last = res
	}
	b.ReportMetric(last.MsgPerSec, "msg/s")
	b.ReportMetric(last.FanoutP50NS, "p50-ns")
	b.ReportMetric(last.FanoutP99NS, "p99-ns")
}

// BenchmarkHubPublish pins the per-publish cost of the hub hot path at a
// realistic subscriber count; its allocs/op figure is the alloc budget
// benchdiff guards.
func BenchmarkHubPublish(b *testing.B) {
	for _, subs := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			h := NewHub()
			h.SetLimits(b.N+subs+64, 0)
			for i := 0; i < subs; i++ {
				ch, cancel := h.Subscribe("")
				defer cancel()
				go func() {
					for range ch {
					}
				}()
			}
			f := Frame{Run: "bench", Data: []byte(`event: tags` + "\n" + `data: {"run":"bench","seq":1}` + "\n\n")}
			// Warm the drainer goroutines so their stack growth happens
			// outside the timed (and alloc-counted) window.
			for i := 0; i < 64; i++ {
				h.Publish(f)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Publish(f)
			}
		})
	}
}

// BenchmarkJournalAppend pins the lifecycle journal's record cost: one
// strconv-append render into the per-run buffer. The growth allocations
// amortize to zero — benchdiff guards the allocs/op figure.
func BenchmarkJournalAppend(b *testing.B) {
	j := NewJournal()
	j.RecordDetail("bench", JournalFiring, 0, "warm") // allocate the run's log
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.RecordDetail("bench", JournalFiring, int64(i)*int64(50*time.Millisecond), `loss:*>0.1->kafka:alerts`)
	}
}

// BenchmarkJournaledPublish is ISSUE 10's observable-slice hot path: the
// history recorder takes every sampled tag, the journal takes a firing
// record, and the hub fans the prebuilt frame out to 1024 subscribers —
// all without allocating.
func BenchmarkJournaledPublish(b *testing.B) {
	const subs = 1024
	h := NewHub()
	h.SetLimits(b.N+subs+64, 0)
	for i := 0; i < subs; i++ {
		ch, cancel := h.Subscribe("")
		defer cancel()
		go func() {
			for range ch {
			}
		}()
	}
	j := NewJournal()
	rec := tshist.NewRecorder(0, 0, 0)
	tags := []TagChange{
		{Name: `steelnet_host_rx_total{node="io"}`, Value: 250},
		{Name: "int/instaplc-switch.out0/press/1/mean_ns", Value: 3000},
		{Name: "loss/instaplc-switch.out1", Value: 0.55},
		{Name: "slo/breaches", Value: 3},
	}
	f := Frame{Run: "bench", Data: []byte(`event: tags` + "\n" + `data: {"run":"bench","seq":1}` + "\n\n")}
	for _, tg := range tags { // warm the recorder's rings
		rec.Append(tg.Name, 0, tg.Value)
	}
	j.RecordDetail("bench", JournalFiring, 0, "warm")
	for i := 0; i < 64; i++ { // warm the drainer goroutines' stacks
		h.Publish(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tns := int64(i+1) * int64(50*time.Millisecond)
		for _, tg := range tags {
			rec.Append(tg.Name, tns, tg.Value)
		}
		j.RecordDetail("bench", JournalFiring, tns, `loss:*>0.1->kafka:alerts`)
		h.Publish(f)
	}
}

// BenchmarkAppendTagsPayload measures the frame-assembly path that runs
// once per slice per run, independent of subscriber count.
func BenchmarkAppendTagsPayload(b *testing.B) {
	changes := []TagChange{
		{Name: `steelnet_host_rx_total{node="io"}`, Value: 250},
		{Name: "int/instaplc-switch.out0/press/1/mean_ns", Value: 3000},
		{Name: "loss/instaplc-switch.out1", Value: 0.55},
		{Name: "slo/breaches", Value: 3},
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendTagsPayload(buf[:0], "run-1", uint64(i), int64(i)*int64(50*time.Millisecond), changes)
	}
}
