package steelnetd

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkGatewayFanout is ISSUE 9's headline load shape: M=8 sims
// fanning out through one hub to N=1000 SSE-equivalent subscribers. One
// iteration is a whole fleet run; the reported extras are delivered
// messages per second and the hub's per-publish fan-out latency
// quantiles.
func BenchmarkGatewayFanout(b *testing.B) {
	cfg := LoadConfig{
		Sims:        8,
		Subscribers: 1000,
		Run:         testRun(1),
		Rules:       testRules,
	}
	var last LoadResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := RunLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Dropped != 0 || res.Delivered != res.Frames*uint64(res.Subscribers) {
			b.Fatalf("lossy fan-out: %+v", res)
		}
		last = res
	}
	b.ReportMetric(last.MsgPerSec, "msg/s")
	b.ReportMetric(last.FanoutP50NS, "p50-ns")
	b.ReportMetric(last.FanoutP99NS, "p99-ns")
}

// BenchmarkHubPublish pins the per-publish cost of the hub hot path at a
// realistic subscriber count; its allocs/op figure is the alloc budget
// benchdiff guards.
func BenchmarkHubPublish(b *testing.B) {
	for _, subs := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			h := NewHub()
			h.SetLimits(b.N+subs, 0)
			for i := 0; i < subs; i++ {
				ch, cancel := h.Subscribe("")
				defer cancel()
				go func() {
					for range ch {
					}
				}()
			}
			f := Frame{Run: "bench", Data: []byte(`event: tags` + "\n" + `data: {"run":"bench","seq":1}` + "\n\n")}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Publish(f)
			}
		})
	}
}

// BenchmarkAppendTagsPayload measures the frame-assembly path that runs
// once per slice per run, independent of subscriber count.
func BenchmarkAppendTagsPayload(b *testing.B) {
	changes := []TagChange{
		{Name: `steelnet_host_rx_total{node="io"}`, Value: 250},
		{Name: "int/instaplc-switch.out0/press/1/mean_ns", Value: 3000},
		{Name: "loss/instaplc-switch.out1", Value: 0.55},
		{Name: "slo/breaches", Value: 3},
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendTagsPayload(buf[:0], "run-1", uint64(i), int64(i)*int64(50*time.Millisecond), changes)
	}
}
