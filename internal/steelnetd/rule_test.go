package steelnetd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"steelnet/internal/core"
	intnet "steelnet/internal/int"
)

func TestParseRuleRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want Rule
	}{
		{"latency:press-sink>250µs->kafka:alerts",
			Rule{Kind: CondLatency, Subject: "press-sink", Op: '>', Bound: 250 * time.Microsecond, Backend: "kafka", Topic: "alerts"}},
		{"jitter:*<1ms->mqtt:plant/jitter",
			Rule{Kind: CondJitter, Subject: "*", Op: '<', Bound: time.Millisecond, Backend: "mqtt", Topic: "plant/jitter"}},
		{"loss:*>0.01->mqtt:plant/loss",
			Rule{Kind: CondLoss, Subject: "*", Op: '>', Threshold: 0.01, Backend: "mqtt", Topic: "plant/loss"}},
		{"breach:instaplc-switch.out2>0->log:slo",
			Rule{Kind: CondBreach, Subject: "instaplc-switch.out2", Op: '>', Backend: "log", Topic: "slo"}},
		{`tag:steelnet_host_rx_total{node="io"}>100->kafka:tags`,
			Rule{Kind: CondTag, Subject: `steelnet_host_rx_total{node="io"}`, Op: '>', Threshold: 100, Backend: "kafka", Topic: "tags"}},
	}
	for _, c := range cases {
		r, err := ParseRule(c.spec)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", c.spec, err)
		}
		if r != c.want {
			t.Errorf("ParseRule(%q) = %+v, want %+v", c.spec, r, c.want)
		}
		if got := r.String(); got != c.spec {
			t.Errorf("String() = %q, want exact round trip %q", got, c.spec)
		}
	}
}

func TestParseRuleTrimsWhitespace(t *testing.T) {
	r, err := ParseRule("  loss : * > 0.5 -> kafka: alerts ")
	if err != nil {
		t.Fatal(err)
	}
	if want := "loss:*>0.5->kafka:alerts"; r.String() != want {
		t.Fatalf("canonical form %q, want %q", r.String(), want)
	}
	// The canonical form is a parse fixed point.
	r2, err := ParseRule(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r {
		t.Fatalf("re-parse of canonical form diverged: %+v vs %+v", r2, r)
	}
}

func TestParseRuleErrorsWithPosition(t *testing.T) {
	cases := []struct {
		spec    string
		wantPos int
		wantMsg string
	}{
		{"loss:*>0.5", 10, "missing \"->\""},
		{"bogus:*>1->kafka:t", 0, "unknown condition kind"},
		{"nocolon->kafka:t", 0, "missing \"kind:\""},
		{"loss:*0.5->kafka:t", 9, "missing comparison"},
		{"loss:>0.5->kafka:t", 5, "empty subject"},
		{"loss:*>->kafka:t", 7, "empty threshold"},
		{"loss:*>abc->kafka:t", 7, "bad threshold"},
		{"latency:*>abc->kafka:t", 10, "bad duration"},
		{"loss:*>1->kafkat", 10, "missing \"backend:topic\""},
		{"loss:*>1->:t", 10, "empty backend"},
		{"loss:*>1->kafka:", 16, "empty topic"},
		{"loss:*>1->ka fka:t", 10, "reserved characters"},
		{"loss:*>1->kafka:t opic", 16, "reserved characters"},
	}
	for _, c := range cases {
		_, err := ParseRule(c.spec)
		if err == nil {
			t.Errorf("ParseRule(%q): want error, got nil", c.spec)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("ParseRule(%q): error %T is not *ParseError", c.spec, err)
			continue
		}
		if pe.Pos != c.wantPos {
			t.Errorf("ParseRule(%q): pos %d, want %d (%v)", c.spec, pe.Pos, c.wantPos, err)
		}
		if !strings.Contains(pe.Msg, c.wantMsg) {
			t.Errorf("ParseRule(%q): msg %q does not contain %q", c.spec, pe.Msg, c.wantMsg)
		}
		if pe.Spec != c.spec {
			t.Errorf("ParseRule(%q): ParseError.Spec = %q", c.spec, pe.Spec)
		}
		if !strings.Contains(pe.Error(), "pos ") {
			t.Errorf("Error() %q does not mention the position", pe.Error())
		}
	}
}

func TestParseRuleSet(t *testing.T) {
	spec := "loss:*>0.01->kafka:alerts;breach:*>0->log:slo"
	rs, err := ParseRuleSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rs.Rules))
	}
	if rs.Name != spec {
		t.Errorf("Name = %q, want the spec", rs.Name)
	}
	if rs.String() != spec {
		t.Errorf("String() = %q, want exact round trip %q", rs.String(), spec)
	}
	if rs.Empty() {
		t.Error("Empty() on a two-rule set")
	}
	if err := rs.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}

	// Error positions are offsets into the full set spec.
	_, err = ParseRuleSet("loss:*>0.01->kafka:alerts;loss:*>abc->kafka:t")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Pos != 33 {
		t.Errorf("set error pos %d, want 33 (offset of the bad threshold)", pe.Pos)
	}

	empty, err := ParseRuleSet("   ")
	if err != nil || !empty.Empty() {
		t.Errorf("blank spec: got (%+v, %v), want empty set", empty, err)
	}
}

func TestRuleSetValidate(t *testing.T) {
	bad := []RuleSet{
		{Rules: []Rule{{Kind: CondKind(99), Subject: "x", Op: '>', Backend: "b", Topic: "t"}}},
		{Rules: []Rule{{Kind: CondTag, Subject: "x", Op: '=', Backend: "b", Topic: "t"}}},
		{Rules: []Rule{{Kind: CondTag, Subject: "", Op: '>', Backend: "b", Topic: "t"}}},
		{Rules: []Rule{{Kind: CondLoss, Subject: "*", Op: '>', Threshold: 1.5, Backend: "b", Topic: "t"}}},
	}
	for i, rs := range bad {
		if err := rs.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, rs.Rules[0])
		}
	}
}

func TestCondKindNames(t *testing.T) {
	for k := CondKind(0); k < numCondKinds; k++ {
		got, ok := CondKindFromString(k.String())
		if !ok || got != k {
			t.Errorf("kind %d does not round-trip through %q", int(k), k.String())
		}
	}
	if _, ok := CondKindFromString("nope"); ok {
		t.Error("CondKindFromString accepted an unknown name")
	}
	if s := CondKind(42).String(); !strings.Contains(s, "42") {
		t.Errorf("out-of-range kind String() = %q", s)
	}
}

// ruleSample builds a hand-rolled sample covering every condition kind.
func ruleSample(seq uint64) core.Sample {
	d1 := &intnet.PathDigest{Sink: "s1", Source: "a", Flow: 1, Count: 2, SumNS: 6000, MaxNS: 4000, JitterSumNS: 150}
	d2 := &intnet.PathDigest{Sink: "s2", Source: "b", Flow: 1, Count: 2, SumNS: 2000, MaxNS: 1500, JitterSumNS: 45}
	return core.Sample{
		Seq:   seq,
		SimNS: int64(seq) * 1000,
		Tags: []core.Tag{
			{Name: "x", Value: float64(seq)},
			{Name: "y", Value: 7},
		},
		Digests: []*intnet.PathDigest{d1, d2},
		Breaches: []intnet.Breach{
			{Objective: "latency:s1<1µs", Sink: "s1", AtNS: 10, ClearedAtNS: -1},
			{Objective: "latency:s2<1µs", Sink: "s2", AtNS: 20, ClearedAtNS: 30},
		},
		Loss: []core.SinkLoss{
			{Sink: "s1", Received: 90, Lost: 10},
			{Sink: "s2", Received: 100, Lost: 0},
		},
	}
}

func TestRuleEval(t *testing.T) {
	s := ruleSample(3)
	cases := []struct {
		spec string
		hold bool
		v    float64
	}{
		{"tag:x>2->log:t", true, 3},
		{"tag:x<2->log:t", false, 3},
		{"tag:missing>0->log:t", false, 0},
		{"latency:s1>2µs->log:t", true, 3000},  // d1 mean 3000ns
		{"latency:*>2.9µs->log:t", true, 3000}, // worst across sinks
		{"latency:s2>2µs->log:t", false, 1000}, // d2 mean 1000ns
		{"jitter:s1>100ns->log:t", true, 150},  // d1 jitter 150ns
		{"jitter:s2<100ns->log:t", true, 45},   // d2 jitter 45ns
		{"loss:s1>0.05->log:t", true, 0.1},     // 10/100
		{"loss:*>0.05->log:t", true, 0.1},      // worst sink
		{"loss:s2>0.05->log:t", false, 0},      // clean sink
		{"loss:nosuch>0->log:t", false, 0},     // absent sink: false
		{"breach:*>1->log:t", true, 2},         // both breaches
		{"breach:s1>0->log:t", true, 1},        // one at s1
		{"breach:nosuch>0->log:t", false, 0},   // count 0, not absent
		{"latency:nosuch>0s->log:t", false, 0}, // no digest: false
	}
	for _, c := range cases {
		r, err := ParseRule(c.spec)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", c.spec, err)
		}
		hold, v := r.eval(&s)
		if hold != c.hold || v != c.v {
			t.Errorf("%q: eval = (%v, %g), want (%v, %g)", c.spec, hold, v, c.hold, c.v)
		}
	}
}

func TestEngineEdgeTriggered(t *testing.T) {
	rs, err := ParseRuleSet("tag:x>2->kafka:alerts")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rs)

	below, above := ruleSample(1), ruleSample(5)
	if fs := e.Eval(&below); len(fs) != 0 {
		t.Fatalf("fired below threshold: %+v", fs)
	}
	fs := e.Eval(&above)
	if len(fs) != 1 {
		t.Fatalf("want 1 firing on the rising edge, got %d", len(fs))
	}
	f := fs[0]
	if f.Rule != "tag:x>2->kafka:alerts" || f.Seq != 5 || f.SimNS != 5000 || f.Value != 5 ||
		f.Backend != "kafka" || f.Topic != "alerts" {
		t.Fatalf("firing = %+v", f)
	}
	// Still true: no re-fire.
	if fs := e.Eval(&above); len(fs) != 0 {
		t.Fatalf("re-fired while condition held: %+v", fs)
	}
	// False re-arms, next true fires again.
	e.Eval(&below)
	if fs := e.Eval(&above); len(fs) != 1 {
		t.Fatalf("did not re-fire after re-arm: %+v", fs)
	}
}

func TestEngineFiresOnFirstSampleWhenTrue(t *testing.T) {
	e := NewEngine(mustRuleSet(t, "tag:y>1->log:t"))
	s := ruleSample(1)
	if fs := e.Eval(&s); len(fs) != 1 {
		t.Fatalf("condition true at first sample should fire once, got %d", len(fs))
	}
}

func TestEnginePrime(t *testing.T) {
	e := NewEngine(mustRuleSet(t, "tag:x>2->log:t"))
	above := ruleSample(5)
	e.Prime(&above)
	// Primed true: the same condition holding does not fire.
	if fs := e.Eval(&above); len(fs) != 0 {
		t.Fatalf("fired after priming true: %+v", fs)
	}
	below := ruleSample(1)
	e.Eval(&below)
	if fs := e.Eval(&above); len(fs) != 1 {
		t.Fatal("edge after primed state did not fire")
	}
}

func mustRuleSet(t *testing.T, spec string) RuleSet {
	t.Helper()
	rs, err := ParseRuleSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}
