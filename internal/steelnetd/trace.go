package steelnetd

import (
	"io"
	"sort"
	"sync"

	"steelnet/internal/telemetry"
)

// TraceLog collects the gateway's own trace events — run windows, rule
// firings, HTTP requests — in the same telemetry.Event currency the
// simulation uses, so one Chrome/Perfetto export stitches the gateway
// plane above the sim lanes. Safe for concurrent use: run goroutines
// record windows and firings while HTTP handlers record requests.
type TraceLog struct {
	mu     sync.Mutex
	events []telemetry.Event
}

// Add records one event.
func (t *TraceLog) Add(e telemetry.Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *TraceLog) Events() []telemetry.Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]telemetry.Event, len(t.events))
	copy(out, t.events)
	return out
}

// WriteTrace exports the stitched fleet trace in Chrome trace-event
// format: every finished run's simulation-level events (lanes prefixed
// "<run id>/" so runs never collide), plus the gateway plane's run
// windows, rule firings and HTTP request spans in their own "steelnetd"
// process. Runs still stepping are skipped — their tracers are owned by
// live goroutines — so call after the runs of interest finished (the
// daemon dumps at shutdown). Events merge in stable simulated-time
// order; HTTP spans are anchored at the fleet's latest published sim
// instant at request time, putting wall-clock traffic in causal context
// with the simulation activity it observed.
func (g *Gateway) WriteTrace(w io.Writer) error {
	g.mu.Lock()
	rs := make([]*run, 0, len(g.runs))
	for _, id := range g.order {
		rs = append(rs, g.runs[id])
	}
	g.mu.Unlock()
	sort.Slice(rs, func(i, j int) bool { return rs[i].id < rs[j].id })

	var events []telemetry.Event
	for _, r := range rs {
		select {
		case <-r.done:
		default:
			continue // still stepping; its tracer is not ours to read
		}
		for _, e := range r.drv.TraceEvents() {
			e.Node = r.id + "/" + e.Node
			events = append(events, e)
		}
	}
	events = append(events, g.trace.Events()...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	return telemetry.WriteChromeTrace(w, events)
}
