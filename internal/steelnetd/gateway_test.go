package steelnetd

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"steelnet/internal/core"
)

// testRun is a short scenario whose failover, loss and SLO breaches all
// land inside a 400 ms horizon — every rule kind has something to fire
// on, and a run completes in milliseconds of wall time.
func testRun(seed uint64) core.HeadlessConfig {
	return core.HeadlessConfig{
		Seed:    seed,
		Horizon: 400 * time.Millisecond,
		Slice:   50 * time.Millisecond,
		SLO:     "latency:*<1µs",
	}
}

const testRules = `loss:*>0.1->kafka:alerts;breach:*>0->mqtt:plant/slo;tag:steelnet_host_rx_total{node="io"}>100->kafka:io`

func TestGatewayRunLifecycle(t *testing.T) {
	kafka := NewFakeKafka()
	mqtt := NewFakeMQTT()
	g := NewGateway(GatewayConfig{Backends: Backends{"kafka": kafka, "mqtt": mqtt}})
	defer g.Close()

	id, err := g.Start(RunSpec{ID: "mill", Run: testRun(1), Rules: testRules})
	if err != nil {
		t.Fatal(err)
	}
	if id != "mill" {
		t.Fatalf("id = %q", id)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	st, ok := g.Status(id)
	if !ok || st.State != StateDone {
		t.Fatalf("status = %+v, want done", st)
	}
	if st.Seq != 8 { // 400ms / 50ms slices
		t.Errorf("final seq = %d, want 8", st.Seq)
	}
	if st.SimNS != int64(400*time.Millisecond) {
		t.Errorf("final sim_ns = %d", st.SimNS)
	}
	if st.Firings == 0 {
		t.Error("no rule firings in a run with loss, breaches and traffic")
	}
	if kafka.Total() == 0 || mqtt.Total() == 0 {
		t.Errorf("northbound publishes: kafka=%d mqtt=%d, want both > 0", kafka.Total(), mqtt.Total())
	}
	// Every record is keyed by the run and carries valid firing JSON.
	for _, r := range kafka.Records() {
		if r.Key != "mill" {
			t.Fatalf("kafka record keyed %q, want the run ID", r.Key)
		}
		var f struct {
			Run  string `json:"run"`
			Rule string `json:"rule"`
			Seq  uint64 `json:"seq"`
		}
		if err := json.Unmarshal([]byte(r.Payload), &f); err != nil {
			t.Fatalf("payload %q: %v", r.Payload, err)
		}
		if f.Run != "mill" || f.Rule == "" || f.Seq == 0 {
			t.Fatalf("firing payload %+v", f)
		}
	}
}

func TestGatewayStartErrors(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	defer g.Close()
	if _, err := g.Start(RunSpec{Run: testRun(1), Rules: "bogus:*>1->kafka:t"}); err == nil {
		t.Error("bad rule spec accepted")
	}
	if _, err := g.Start(RunSpec{Run: testRun(1), Rules: "loss:*>0.1->nats:t"}); err == nil {
		t.Error("unknown backend accepted")
	}
	bad := testRun(1)
	bad.Slice = time.Second // exceeds horizon
	if _, err := g.Start(RunSpec{Run: bad}); err == nil {
		t.Error("bad run spec accepted")
	}
	if _, err := g.Start(RunSpec{ID: "dup", Run: testRun(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Start(RunSpec{ID: "dup", Run: testRun(2)}); err == nil {
		t.Error("duplicate run ID accepted")
	}
	if err := g.Stop("nosuch"); err == nil {
		t.Error("Stop on unknown run succeeded")
	}
	if err := g.Wait("nosuch"); err == nil {
		t.Error("Wait on unknown run succeeded")
	}
	if _, ok := g.Status("nosuch"); ok {
		t.Error("Status on unknown run succeeded")
	}
	if _, ok := g.Broker("nosuch"); ok {
		t.Error("Broker on unknown run succeeded")
	}
	if err := g.Remove("nosuch"); err == nil {
		t.Error("Remove on unknown run succeeded")
	}
	if err := g.Save("nosuch", &bytes.Buffer{}); err == nil {
		t.Error("Save on unknown run succeeded")
	}
}

func TestGatewayAutoIDAndList(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	defer g.Close()
	id1, err := g.Start(RunSpec{Run: testRun(1)})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := g.Start(RunSpec{Run: testRun(2)})
	if err != nil {
		t.Fatal(err)
	}
	if id1 != "run-1" || id2 != "run-2" {
		t.Fatalf("auto IDs %q, %q", id1, id2)
	}
	list := g.List()
	if len(list) != 2 || list[0].ID != id1 || list[1].ID != id2 {
		t.Fatalf("List() = %+v, want start order", list)
	}
	g.Wait(id1) //nolint:errcheck
	g.Wait(id2) //nolint:errcheck
	if err := g.Remove(id1); err != nil {
		t.Fatal(err)
	}
	if list := g.List(); len(list) != 1 || list[0].ID != id2 {
		t.Fatalf("List() after Remove = %+v", list)
	}
}

func TestGatewayStop(t *testing.T) {
	g := NewGateway(GatewayConfig{MaxConcurrent: 1})
	defer g.Close()
	long := testRun(1)
	long.Horizon = 30 * time.Second // long enough to catch mid-flight
	id1, err := g.Start(RunSpec{ID: "long", Run: long})
	if err != nil {
		t.Fatal(err)
	}
	// A second run queues behind MaxConcurrent=1; stopping it while
	// queued must release it without it ever stepping.
	id2, err := g.Start(RunSpec{ID: "queued", Run: testRun(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Stop(id2); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id2); err != nil {
		t.Fatal(err)
	}
	if st, _ := g.Status(id2); st.State != StateStopped {
		t.Fatalf("queued run state = %s, want stopped", st.State)
	}
	if err := g.Stop(id1); err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id1); err != nil {
		t.Fatal(err)
	}
	if st, _ := g.Status(id1); st.State != StateStopped {
		t.Fatalf("state = %s, want stopped", st.State)
	}
	if err := g.Stop(id1); err != nil {
		t.Error("second Stop not idempotent:", err)
	}
}

func TestGatewaySaveRefusesLiveRun(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	defer g.Close()
	long := testRun(1)
	long.Horizon = 30 * time.Second
	id, err := g.Start(RunSpec{Run: long})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Save(id, &bytes.Buffer{}); err == nil {
		t.Error("Save on a live run succeeded")
	}
	g.Stop(id) //nolint:errcheck
	g.Wait(id) //nolint:errcheck
	if err := g.Remove("nosuch"); err == nil {
		t.Error("Remove unknown run succeeded")
	}
}

func TestGatewayPauseSaveResume(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	defer g.Close()
	spec := RunSpec{ID: "cut", Run: testRun(3), Rules: testRules, StopAfter: 4}
	id, err := g.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	st, _ := g.Status(id)
	if st.State != StatePaused || st.Seq != 4 {
		t.Fatalf("paused status = %+v", st)
	}
	var cp bytes.Buffer
	if err := g.Save(id, &cp); err != nil {
		t.Fatal(err)
	}

	g2 := NewGateway(GatewayConfig{})
	defer g2.Close()
	resumed := spec
	resumed.StopAfter = 0
	id2, err := g2.Resume(resumed, &cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Wait(id2); err != nil {
		t.Fatal(err)
	}
	st2, _ := g2.Status(id2)
	if st2.State != StateDone || st2.Seq != 8 {
		t.Fatalf("resumed status = %+v, want done at seq 8", st2)
	}
}

func TestGatewayResumeNeedsCheckpoint(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	defer g.Close()
	if _, err := g.Resume(RunSpec{Run: testRun(1)}, nil); err == nil {
		t.Error("Resume without a checkpoint succeeded")
	}
}

func TestGatewayBrokerPublishes(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	defer g.Close()
	id, err := g.Start(RunSpec{ID: "obs", Run: testRun(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	b, ok := g.Broker(id)
	if !ok {
		t.Fatal("no broker for the run")
	}
	snap := b.Current()
	if snap.Seq != 8 {
		t.Errorf("broker snapshot seq = %d, want one per slice (8)", snap.Seq)
	}
	if !strings.Contains(snap.Metrics, "steelnet_host_rx_total") {
		t.Error("broker snapshot missing host metrics")
	}
}

func TestGatewayHubSeesTagsAndFirings(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	defer g.Close()
	g.Hub().SetLimits(4096, 0)
	ch, cancel := g.Hub().Subscribe("")
	defer cancel()
	id, err := g.Start(RunSpec{ID: "hubbed", Run: testRun(1), Rules: testRules})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	var tags, firings int
	for done := false; !done; {
		select {
		case f := <-ch:
			s := string(f.Data)
			if f.Run != id {
				t.Fatalf("frame from run %q", f.Run)
			}
			switch {
			case strings.HasPrefix(s, "event: tags\n"):
				tags++
			case strings.HasPrefix(s, "event: firing\n"):
				firings++
			default:
				t.Fatalf("unexpected frame %q", s)
			}
		default:
			done = true
		}
	}
	if tags == 0 || firings == 0 {
		t.Fatalf("hub saw %d tag frames, %d firing frames; want both > 0", tags, firings)
	}
}

func TestGatewayBackendNames(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	defer g.Close()
	names := g.BackendNames()
	if len(names) != 3 || names[0] != "kafka" || names[1] != "log" || names[2] != "mqtt" {
		t.Fatalf("BackendNames() = %v", names)
	}
	if _, ok := g.Backend("kafka"); !ok {
		t.Error("Backend(kafka) missing")
	}
	if _, ok := g.Backend("nats"); ok {
		t.Error("Backend(nats) exists")
	}
}
