package steelnetd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"steelnet/internal/core"
)

// LoadConfig declares a fan-out load test: M concurrent sims publishing
// through one hub to N subscribers, with change-detection filtering on.
type LoadConfig struct {
	// Sims (M) and Subscribers (N) set the fan-out shape.
	Sims        int
	Subscribers int
	// Run is the per-sim spec template; sim i runs it with
	// Seed = Run.Seed + i under ID "load-<i>".
	Run core.HeadlessConfig
	// Rules is the rule set installed on every sim.
	Rules string
	// MaxConcurrent caps how many sims step at once (0 = all).
	MaxConcurrent int
}

// LoadResult reports one load run. The message counts are pure
// functions of the config (the determinism the load tests pin); the
// timing numbers are measurements.
type LoadResult struct {
	Sims        int `json:"sims"`
	Subscribers int `json:"subscribers"`
	// Frames is how many frames the hub published; Delivered is the
	// total received across all subscribers (= Frames × Subscribers
	// when nothing drops); Dropped/Evicted count fan-out losses.
	Frames    uint64 `json:"frames"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Evicted   uint64 `json:"evicted"`
	// Firings is the total northbound messages across fake backends.
	Firings uint64 `json:"firings"`
	// Bytes is the total payload bytes delivered to subscribers.
	Bytes uint64 `json:"bytes"`
	// Wall-clock measurements: total elapsed, delivered messages per
	// second, and the hub's per-publish fan-out latency quantiles.
	Elapsed     time.Duration `json:"elapsed_ns"`
	MsgPerSec   float64       `json:"msg_per_sec"`
	FanoutP50NS float64       `json:"fanout_p50_ns"`
	FanoutP99NS float64       `json:"fanout_p99_ns"`
}

// RunLoad drives one fan-out load test and returns its result plus the
// fake backends (for golden comparison of the northbound logs).
// Subscriber queues are sized to hold the whole run, so counts are
// deterministic: no frame ever drops because a reader was slow.
func RunLoad(cfg LoadConfig) (LoadResult, Backends, error) {
	if cfg.Sims <= 0 || cfg.Subscribers < 0 {
		return LoadResult{}, nil, fmt.Errorf("steelnetd: load config needs sims > 0")
	}
	backends := Backends{}
	for _, f := range []*FakeBackend{NewFakeKafka(), NewFakeMQTT()} {
		backends[f.Name()] = f
	}
	g := NewGateway(GatewayConfig{Backends: backends, MaxConcurrent: cfg.MaxConcurrent})
	defer g.Close()

	// Size subscriber queues for the worst case: every slice of every
	// sim publishes a tag batch plus every rule firing.
	norm, err := core.NewHeadless(cfg.Run)
	if err != nil {
		return LoadResult{}, nil, err
	}
	run := norm.Config()
	slices := int(run.Horizon/run.Slice) + 2
	rules, err := ParseRuleSet(cfg.Rules)
	if err != nil {
		return LoadResult{}, nil, err
	}
	worst := cfg.Sims * slices * (1 + len(rules.Rules))
	g.Hub().SetLimits(worst, 0)

	var delivered, bytes atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		ch, cancel := g.Hub().Subscribe("")
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cancel()
			for {
				select {
				case f, ok := <-ch:
					if !ok {
						return
					}
					delivered.Add(1)
					bytes.Add(uint64(len(f.Data)))
				case <-done:
					// Publishing has stopped; drain what is queued.
					for {
						select {
						case f := <-ch:
							delivered.Add(1)
							bytes.Add(uint64(len(f.Data)))
						default:
							return
						}
					}
				}
			}
		}()
	}

	start := time.Now()
	ids := make([]string, cfg.Sims)
	for i := range ids {
		spec := RunSpec{ID: fmt.Sprintf("load-%d", i), Run: run, Rules: cfg.Rules}
		spec.Run.Seed = run.Seed + uint64(i)
		id, err := g.Start(spec)
		if err != nil {
			close(done)
			wg.Wait()
			return LoadResult{}, nil, err
		}
		ids[i] = id
	}
	var firings uint64
	for _, id := range ids {
		if err := g.Wait(id); err != nil {
			close(done)
			wg.Wait()
			return LoadResult{}, nil, err
		}
		st, _ := g.Status(id)
		firings += st.Firings
	}
	close(done)
	wg.Wait()
	elapsed := time.Since(start)

	h := g.Hub()
	res := LoadResult{
		Sims: cfg.Sims, Subscribers: cfg.Subscribers,
		Frames: h.Published(), Delivered: delivered.Load(),
		Dropped: h.Dropped(), Evicted: h.Evicted(),
		Firings: firings, Bytes: bytes.Load(),
		Elapsed:     elapsed,
		FanoutP50NS: h.FanoutQuantile(0.50),
		FanoutP99NS: h.FanoutQuantile(0.99),
	}
	if s := elapsed.Seconds(); s > 0 {
		res.MsgPerSec = float64(res.Delivered) / s
	}
	return res, backends, nil
}
