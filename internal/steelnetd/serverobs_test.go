package steelnetd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// TestServerObsPlaneEndpoints drives the PR 10 HTTP surface end to end:
// journal, per-run history (JSON and Prometheus range form), healthz
// fleet counters, and the steelnetd_* self-telemetry families.
func TestServerObsPlaneEndpoints(t *testing.T) {
	g, srv := testServer(t)
	id := postRun(t, srv.URL, RunSpec{ID: "obs-run", Run: testRun(1), Rules: testRules})
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}

	// Lifecycle journal: JSONL with the run's whole arc.
	resp, err := http.Get(srv.URL + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	jb := readAll(t, resp)
	if ct := resp.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Fatalf("journal Content-Type %q", ct)
	}
	for _, want := range []string{`"event":"created"`, `"event":"started"`, `"event":"firing"`, `"event":"done"`} {
		if !strings.Contains(jb, want) {
			t.Errorf("journal lacks %s:\n%s", want, jb)
		}
	}

	// History: metric listing, then one series in both dialects.
	code, body := getBody(t, srv.URL+"/runs/"+id+"/history")
	if code != 200 || !strings.Contains(body, `"metrics":[`) {
		t.Fatalf("history listing: %d %s", code, body)
	}
	var listing struct {
		Run     string   `json:"run"`
		Metrics []string `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Run != id || len(listing.Metrics) == 0 {
		t.Fatalf("listing %+v", listing)
	}
	metric := listing.Metrics[0]
	q := url.Values{"metric": {metric}}.Encode()
	code, body = getBody(t, srv.URL+"/runs/"+id+"/history?"+q)
	if code != 200 || !strings.Contains(body, `"tier_fold":1`) || !strings.Contains(body, `"points":[[`) {
		t.Fatalf("history series: %d %s", code, body)
	}
	code, body = getBody(t, srv.URL+"/runs/"+id+"/history?"+q+"&format=prom")
	if code != 200 || !strings.Contains(body, `"resultType":"matrix"`) {
		t.Fatalf("history prom: %d %s", code, body)
	}
	code, _ = getBody(t, srv.URL+"/runs/"+id+"/history?"+url.Values{"metric": {"nosuch"}}.Encode())
	if code != http.StatusNotFound {
		t.Fatalf("unknown metric: %d, want 404", code)
	}
	code, _ = getBody(t, srv.URL+"/runs/nosuch/history")
	if code != http.StatusNotFound {
		t.Fatalf("unknown run history: %d, want 404", code)
	}

	// Healthz now carries the fleet early-warning counters.
	code, body = getBody(t, srv.URL+"/healthz")
	if code != 200 || !strings.Contains(body, `"queue_high_water":`) || !strings.Contains(body, `"journal_records":`) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// A 404 should land in the 4xx class of the /runs/{id} route.
	getBody(t, srv.URL+"/runs/nosuch")

	// Self-telemetry on the daemon registry: RED families per route,
	// lifecycle transition counters, hub gauges, backend throughput.
	_, metrics := getBody(t, srv.URL+"/metrics")
	assertMetricLine(t, metrics, "steelnetd_http_requests_total", `route="/healthz"`, `class="2xx"`)
	assertMetricLine(t, metrics, "steelnetd_http_requests_total", `route="/runs/{id}"`, `class="4xx"`)
	assertMetricLine(t, metrics, "steelnetd_http_request_duration_ns", `route="/runs/{id}/history"`)
	assertMetricLine(t, metrics, "steelnetd_run_transitions_total", `state="done"`)
	assertMetricLine(t, metrics, "steelnetd_run_transitions_total", `state="running"`)
	assertMetricLine(t, metrics, "steelnetd_hub_queue_high_water")
	assertMetricLine(t, metrics, "steelnetd_hub_max_lag")
	assertMetricLine(t, metrics, "steelnetd_journal_records_total")
	assertMetricLine(t, metrics, "steelnetd_backend_published_total", `backend="kafka"`)
}

// assertMetricLine asserts the exposition has a sample line for family
// carrying every given label fragment.
func assertMetricLine(t *testing.T, exposition, family string, labels ...string) {
	t.Helper()
line:
	for _, ln := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(ln, family) || strings.HasPrefix(ln, "#") {
			continue
		}
		for _, l := range labels {
			if !strings.Contains(ln, l) {
				continue line
			}
		}
		return
	}
	t.Errorf("no %s sample with labels %v", family, labels)
}

// readAll drains an http.Response body (and closes it).
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}

// TestServerSSEReconnect pins connection churn: a fleet SSE client that
// disconnects and reconnects gets a fresh hello, and frames published
// after the reconnect reach the new connection.
func TestServerSSEReconnect(t *testing.T) {
	g, srv := testServer(t)

	first, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := readSSE(t, first.Body, "hello"); !ok {
		t.Fatal("no hello on the first connection")
	}
	first.Body.Close() // client goes away mid-stream

	second, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if _, ok := readSSE(t, second.Body, "hello"); !ok {
		t.Fatal("no hello on the reconnect")
	}

	// A run started after the churn must stream to the survivor.
	id := postRun(t, srv.URL, RunSpec{ID: "churn", Run: testRun(1), Rules: testRules})
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := readSSE(t, second.Body, "tags"); !ok {
		t.Fatal("no tags frame on the reconnected stream")
	}
}

// stallWriter is a Flusher-capable ResponseWriter whose Write blocks
// until released — a slow SSE consumer under test control.
type stallWriter struct {
	hdr     http.Header
	release chan struct{}
}

func (s *stallWriter) Header() http.Header { return s.hdr }
func (s *stallWriter) WriteHeader(int)     {}
func (s *stallWriter) Flush()              {}
func (s *stallWriter) Write(p []byte) (int, error) {
	<-s.release
	return len(p), nil
}

// TestServeHubEventsSlowConsumerEviction pins the HTTP half of hub
// eviction: a handler stuck writing to a dead-slow client fills its
// queue, the hub drops then evicts it, and the handler unwinds cleanly
// once the socket drains.
func TestServeHubEventsSlowConsumerEviction(t *testing.T) {
	h := NewHub()
	h.SetLimits(1, 2) // queue depth 1, evict on the 2nd consecutive drop
	sw := &stallWriter{hdr: http.Header{}, release: make(chan struct{})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		serveHubEvents(h, sw, httptest.NewRequest("GET", "/events", nil))
	}()
	// The handler subscribes before its hello write blocks on sw.
	waitFor(t, func() bool { return h.Subscribers() == 1 })

	// One frame fills the depth-1 queue; two more are consecutive drops,
	// which crosses the eviction threshold.
	f := Frame{Run: "r", Data: sseFrame("tags", []byte(`{}`))}
	for i := 0; i < 3; i++ {
		h.Publish(f)
	}
	if h.Evicted() != 1 || h.Dropped() != 2 {
		t.Fatalf("evicted=%d dropped=%d, want 1/2", h.Evicted(), h.Dropped())
	}

	close(sw.release) // the slow client finally drains
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not unwind after eviction")
	}
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after eviction", h.Subscribers())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerHistoryBackfillGapFree pins the backfill contract a
// dashboard relies on: the live SSE stream's seqs are contiguous from
// 1, and after the run the /history series holds a point for every
// publish slice — a client merging backfill with live frames misses
// nothing.
func TestServerHistoryBackfillGapFree(t *testing.T) {
	g, srv := testServer(t)

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, ok := readSSE(t, resp.Body, "hello"); !ok {
		t.Fatal("no hello")
	}

	id := postRun(t, srv.URL, RunSpec{ID: "backfill", Run: testRun(1)})
	data, ok := readSSE(t, resp.Body, "tags")
	if !ok {
		t.Fatal("no tags frame on the live stream")
	}
	var fr struct {
		Seq   uint64 `json:"seq"`
		SimNS int64  `json:"sim_ns"`
	}
	if err := json.Unmarshal([]byte(data), &fr); err != nil {
		t.Fatalf("tags data %q: %v", data, err)
	}
	const sliceNS = int64(50 * time.Millisecond)
	if fr.Seq < 1 || fr.SimNS != int64(fr.Seq)*sliceNS {
		t.Fatalf("live frame off the slice grid: %+v", fr)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}

	// The recorder must hold one point per slice: the 400 ms / 50 ms test
	// run publishes on a fixed 50 ms grid, so a client that backfills
	// [0, live seq) from /history and follows the stream from there sees
	// every instant exactly once.
	rec, ok := g.History(id)
	if !ok {
		t.Fatal("no history")
	}
	sawFull := false
	for _, name := range rec.Names() {
		pts, _, _ := rec.Query(name, 0, 0)
		if len(pts) == 0 || len(pts) > 8 {
			t.Fatalf("metric %q has %d points, want 1..8", name, len(pts))
		}
		// A metric may be born mid-run, but once recorded it must land on
		// every remaining slice through the 400 ms horizon — no gaps.
		for i, p := range pts {
			if want := pts[0].TNS + int64(i)*sliceNS; p.TNS != want {
				t.Fatalf("metric %q point %d at %d ns, want %d (gap in the grid)", name, i, p.TNS, want)
			}
		}
		if pts[len(pts)-1].TNS != 8*sliceNS {
			t.Fatalf("metric %q ends at %d ns, want %d", name, pts[len(pts)-1].TNS, 8*sliceNS)
		}
		sawFull = sawFull || len(pts) == 8
	}
	if !sawFull {
		t.Fatal("no metric covered all 8 slices")
	}
}
