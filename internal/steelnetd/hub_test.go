package steelnetd

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"steelnet/internal/enc"
)

func TestHubFanoutAndFilter(t *testing.T) {
	h := NewHub()
	all, cancelAll := h.Subscribe("")
	only2, cancel2 := h.Subscribe("run-2")
	defer cancelAll()
	defer cancel2()
	if h.Subscribers() != 2 {
		t.Fatalf("Subscribers() = %d, want 2", h.Subscribers())
	}

	h.Publish(Frame{Run: "run-1", Data: []byte("a")})
	h.Publish(Frame{Run: "run-2", Data: []byte("b")})
	if got := string((<-all).Data) + string((<-all).Data); got != "ab" {
		t.Fatalf("unfiltered subscriber saw %q, want \"ab\"", got)
	}
	f := <-only2
	if f.Run != "run-2" || string(f.Data) != "b" {
		t.Fatalf("filtered subscriber saw %+v", f)
	}
	select {
	case f := <-only2:
		t.Fatalf("filtered subscriber leaked %+v", f)
	default:
	}
	if h.Published() != 2 {
		t.Fatalf("Published() = %d, want 2", h.Published())
	}
	cancelAll()
	if h.Subscribers() != 1 {
		t.Fatalf("Subscribers() after cancel = %d, want 1", h.Subscribers())
	}
	cancelAll() // idempotent
}

func TestHubDropOnFullAndEviction(t *testing.T) {
	h := NewHub()
	h.SetLimits(4, 3) // queue of 4, evict after 3 consecutive drops
	ch, cancel := h.Subscribe("")
	defer cancel()

	for i := 0; i < 4; i++ {
		h.Publish(Frame{Run: "r", Data: []byte{byte(i)}})
	}
	if h.Dropped() != 0 {
		t.Fatalf("Dropped() = %d before the queue filled", h.Dropped())
	}
	// Queue full: two more drop but survive, the third evicts.
	h.Publish(Frame{Run: "r", Data: []byte("x")})
	h.Publish(Frame{Run: "r", Data: []byte("x")})
	if h.Dropped() != 2 || h.Evicted() != 0 {
		t.Fatalf("dropped=%d evicted=%d, want 2, 0", h.Dropped(), h.Evicted())
	}
	h.Publish(Frame{Run: "r", Data: []byte("x")})
	if h.Dropped() != 3 || h.Evicted() != 1 || h.Subscribers() != 0 {
		t.Fatalf("dropped=%d evicted=%d subs=%d, want 3, 1, 0", h.Dropped(), h.Evicted(), h.Subscribers())
	}
	// Eviction closed the channel after the 4 buffered frames.
	for i := 0; i < 4; i++ {
		if _, ok := <-ch; !ok {
			t.Fatalf("frame %d missing from the evicted subscriber's buffer", i)
		}
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after eviction")
	}
	cancel() // safe after eviction
}

func TestHubDeliveryResetsDropCount(t *testing.T) {
	h := NewHub()
	h.SetLimits(1, 2)
	ch, cancel := h.Subscribe("")
	defer cancel()
	for round := 0; round < 5; round++ {
		h.Publish(Frame{Run: "r", Data: []byte("a")}) // delivered
		h.Publish(Frame{Run: "r", Data: []byte("b")}) // dropped (queue of 1)
		<-ch                                          // drain; next publish delivers again
	}
	if h.Evicted() != 0 {
		t.Fatalf("evicted a subscriber whose drops never ran consecutively (dropped=%d)", h.Dropped())
	}
	if h.Dropped() != 5 {
		t.Fatalf("Dropped() = %d, want 5", h.Dropped())
	}
}

func TestHubMetricsRegistry(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe("")
	defer cancel()
	h.Publish(Frame{Run: "r", Data: []byte("x")})
	<-ch
	var sb strings.Builder
	if err := h.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"steelnetd_hub_subscribers 1",
		"steelnetd_hub_frames_published_total 1",
		"steelnetd_hub_frames_dropped_total 0",
		"steelnetd_hub_evicted_total 0",
		"steelnetd_hub_fanout_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if q := h.FanoutQuantile(0.99); q <= 0 {
		t.Errorf("FanoutQuantile(0.99) = %g after a publish", q)
	}
}

// TestHubConcurrentChurn races subscribe/unsubscribe against publishes;
// run under -race it pins the hub's locking.
func TestHubConcurrentChurn(t *testing.T) {
	h := NewHub()
	h.SetLimits(2, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ch, cancel := h.Subscribe("")
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		h.Publish(Frame{Run: "r", Data: []byte("x")})
	}
	close(stop)
	wg.Wait()
	if h.Published() != 2000 {
		t.Fatalf("Published() = %d, want 2000", h.Published())
	}
}

func TestSSEFrame(t *testing.T) {
	got := string(sseFrame("tags", []byte(`{"a":1}`)))
	if want := "event: tags\ndata: {\"a\":1}\n\n"; got != want {
		t.Fatalf("sseFrame = %q, want %q", got, want)
	}
}

func TestAppendTagsPayload(t *testing.T) {
	b := appendTagsPayload(nil, "run-1", 3, 150000000, []TagChange{
		{Name: `steelnet_host_rx_total{node="io"}`, Value: 250},
		{Name: "loss/s1", Value: 0.125},
	})
	var v struct {
		Run   string `json:"run"`
		Seq   uint64 `json:"seq"`
		SimNS int64  `json:"sim_ns"`
		Tags  []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"tags"`
	}
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("payload %s is not JSON: %v", b, err)
	}
	if v.Run != "run-1" || v.Seq != 3 || v.SimNS != 150000000 || len(v.Tags) != 2 {
		t.Fatalf("payload decoded to %+v", v)
	}
	if v.Tags[0].Name != `steelnet_host_rx_total{node="io"}` || v.Tags[0].Value != 250 {
		t.Fatalf("tag 0 = %+v", v.Tags[0])
	}
	if v.Tags[1].Value != 0.125 {
		t.Fatalf("tag 1 = %+v", v.Tags[1])
	}
}

func TestAppendJSONFloatNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := appendTagsPayload(nil, "r", 1, 0, []TagChange{{Name: "x", Value: v}})
		if !json.Valid(b) {
			t.Errorf("payload with %v is not valid JSON: %s", v, b)
		}
		if !strings.Contains(string(b), "null") {
			t.Errorf("non-finite %v not clamped to null: %s", v, b)
		}
	}
	// A plain float stays a number.
	if got := string(enc.AppendFloat(nil, 0.25)); got != "0.25" {
		t.Errorf("enc.AppendFloat(0.25) = %q", got)
	}
}

func TestAppendFiringPayload(t *testing.T) {
	b := appendFiringPayload(nil, "run-7", Firing{
		Rule: "loss:*>0.01->kafka:alerts", Seq: 4, SimNS: 200, Value: 0.5,
	})
	var f struct {
		Run   string  `json:"run"`
		Rule  string  `json:"rule"`
		Seq   uint64  `json:"seq"`
		SimNS int64   `json:"sim_ns"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(b, &f); err != nil {
		t.Fatalf("firing payload %s: %v", b, err)
	}
	if f.Run != "run-7" || f.Rule != "loss:*>0.01->kafka:alerts" || f.Seq != 4 || f.SimNS != 200 || f.Value != 0.5 {
		t.Fatalf("firing decoded to %+v", f)
	}
}

func TestHubManySubscribersAllDelivered(t *testing.T) {
	h := NewHub()
	const subs, frames = 50, 20
	h.SetLimits(frames, 0)
	chans := make([]<-chan Frame, subs)
	for i := range chans {
		ch, cancel := h.Subscribe("")
		defer cancel()
		chans[i] = ch
	}
	for i := 0; i < frames; i++ {
		h.Publish(Frame{Run: "r", Data: []byte(fmt.Sprintf("%d", i))})
	}
	if h.Dropped() != 0 {
		t.Fatalf("Dropped() = %d with adequately sized queues", h.Dropped())
	}
	for i, ch := range chans {
		for j := 0; j < frames; j++ {
			f := <-ch
			if string(f.Data) != fmt.Sprintf("%d", j) {
				t.Fatalf("subscriber %d frame %d = %q", i, j, f.Data)
			}
		}
	}
}
