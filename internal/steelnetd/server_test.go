package steelnetd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) (*Gateway, *httptest.Server) {
	t.Helper()
	g := NewGateway(GatewayConfig{})
	srv := httptest.NewServer(NewServeMux(g))
	t.Cleanup(func() { srv.Close(); g.Close() })
	return g, srv
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func postRun(t *testing.T, base string, spec RunSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /runs: %d: %s", resp.StatusCode, b)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out["id"]
}

func TestServerRunsEndToEnd(t *testing.T) {
	g, srv := testServer(t)

	id := postRun(t, srv.URL, RunSpec{ID: "http-run", Run: testRun(1), Rules: testRules})
	if id != "http-run" {
		t.Fatalf("id = %q", id)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}

	code, body := getBody(t, srv.URL+"/runs")
	if code != 200 || !strings.Contains(body, `"http-run"`) {
		t.Fatalf("GET /runs: %d %s", code, body)
	}
	code, body = getBody(t, srv.URL+"/runs/http-run")
	if code != 200 {
		t.Fatalf("GET /runs/{id}: %d", code)
	}
	var st RunStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Firings == 0 {
		t.Fatalf("status %+v", st)
	}

	code, body = getBody(t, srv.URL+"/runs/http-run/metrics")
	if code != 200 || !strings.Contains(body, "steelnet_host_rx_total") {
		t.Fatalf("run metrics: %d, body %d bytes", code, len(body))
	}
	code, _ = getBody(t, srv.URL+"/runs/http-run/shards")
	if code != http.StatusNotFound {
		t.Fatalf("shards on an unsharded run: %d, want 404", code)
	}

	code, body = getBody(t, srv.URL+"/backends")
	if code != 200 || !strings.Contains(body, `"kafka"`) {
		t.Fatalf("GET /backends: %d %s", code, body)
	}
	code, body = getBody(t, srv.URL+"/backends/kafka/log")
	if code != 200 || !strings.Contains(body, `"rule":"loss:`) {
		t.Fatalf("GET /backends/kafka/log: %d %s", code, body)
	}
	code, _ = getBody(t, srv.URL+"/backends/log/log")
	if code != http.StatusNotFound {
		t.Fatalf("log backend has no log dump: %d, want 404", code)
	}
	code, _ = getBody(t, srv.URL+"/backends/nats/log")
	if code != http.StatusNotFound {
		t.Fatalf("unknown backend: %d, want 404", code)
	}

	code, body = getBody(t, srv.URL+"/metrics")
	if code != 200 || !strings.Contains(body, "steelnetd_hub_frames_published_total") {
		t.Fatalf("GET /metrics: %d %s", code, body)
	}
	code, body = getBody(t, srv.URL+"/healthz")
	if code != 200 || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("GET /healthz: %d %s", code, body)
	}
	code, body = getBody(t, srv.URL+"/")
	if code != 200 || !strings.Contains(body, "steelnetd") {
		t.Fatalf("GET /: %d %s", code, body)
	}
	code, _ = getBody(t, srv.URL+"/nosuch")
	if code != http.StatusNotFound {
		t.Fatalf("GET /nosuch: %d", code)
	}
	code, _ = getBody(t, srv.URL+"/runs/nosuch")
	if code != http.StatusNotFound {
		t.Fatalf("GET /runs/nosuch: %d", code)
	}
	code, _ = getBody(t, srv.URL+"/runs/nosuch/metrics")
	if code != http.StatusNotFound {
		t.Fatalf("GET /runs/nosuch/metrics: %d", code)
	}
}

func TestServerPostRunRejectsBadSpecs(t *testing.T) {
	_, srv := testServer(t)
	for _, body := range []string{
		"{not json",
		`{"run":{"horizon":1,"slice":50000000}}`,          // slice > horizon
		`{"run":{"seed":1},"rules":"bogus:*>1->kafka:t"}`, // bad rule
		`{"run":{"seed":1},"rules":"loss:*>0.1->nats:t"}`, // unknown backend
	} {
		resp, err := http.Post(srv.URL+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestServerDeleteStopsRun(t *testing.T) {
	_, srv := testServer(t)
	long := testRun(1)
	long.Horizon = 30 * time.Second
	postRun(t, srv.URL, RunSpec{ID: "victim", Run: long})

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/runs/victim", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateStopped {
		t.Fatalf("DELETE returned state %s, want stopped", st.State)
	}

	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/runs/nosuch", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE /runs/nosuch: %d", resp2.StatusCode)
	}
}

// readSSE reads SSE frames off resp until an event of the wanted type
// arrives (returning its data line) or the stream ends.
func readSSE(t *testing.T, body io.Reader, wantEvent string) (string, bool) {
	t.Helper()
	sc := bufio.NewScanner(body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if event == wantEvent {
				return strings.TrimPrefix(line, "data: "), true
			}
		}
	}
	return "", false
}

func TestServerFleetSSE(t *testing.T) {
	g, srv := testServer(t)
	// Subscribe to the fleet stream first, then start a run; its tag
	// batches and firings must arrive over HTTP.
	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	id := postRun(t, srv.URL, RunSpec{ID: "sse-run", Run: testRun(1), Rules: testRules})
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	data, ok := readSSE(t, resp.Body, "firing")
	if !ok {
		t.Fatal("no firing event on the fleet stream")
	}
	var f struct {
		Run  string `json:"run"`
		Rule string `json:"rule"`
	}
	if err := json.Unmarshal([]byte(data), &f); err != nil {
		t.Fatalf("firing data %q: %v", data, err)
	}
	if f.Run != "sse-run" || f.Rule == "" {
		t.Fatalf("firing %+v", f)
	}
}

func TestServerPerRunSSE(t *testing.T) {
	g, srv := testServer(t)
	long := testRun(1)
	long.Horizon = 2 * time.Second // keep publishing while we attach
	id := postRun(t, srv.URL, RunSpec{ID: "stream", Run: long})
	resp, err := http.Get(fmt.Sprintf("%s/runs/%s/events", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, ok := readSSE(t, resp.Body, "hello"); !ok {
		t.Fatal("no hello event on the per-run stream")
	}
	g.Stop(id) //nolint:errcheck
	g.Wait(id) //nolint:errcheck
}

func TestListenAndClose(t *testing.T) {
	g := NewGateway(GatewayConfig{})
	s, err := Listen("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}
	code, body := getBody(t, "http://"+s.Addr()+"/healthz")
	if code != 200 || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("healthz over Listen: %d %s", code, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done() not closed after Close")
	}
	if _, err := Listen("256.0.0.1:0", g); err == nil {
		t.Error("Listen on an invalid address succeeded")
	}
}
