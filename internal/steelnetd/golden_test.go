package steelnetd

import (
	"bytes"
	"fmt"
	"testing"
)

// goldenSpecs is the fixed fleet the golden tests replay: four runs
// with distinct seeds under pinned IDs, all carrying the same rule set.
func goldenSpecs() []RunSpec {
	specs := make([]RunSpec, 4)
	for i := range specs {
		specs[i] = RunSpec{
			ID:    fmt.Sprintf("golden-%d", i),
			Run:   testRun(uint64(10 + i)),
			Rules: testRules,
		}
	}
	return specs
}

// dumpLogs runs the specs on a fresh gateway at the given concurrency
// and returns each fake backend's JSONL dump.
func dumpLogs(t *testing.T, maxConcurrent int, specs []RunSpec) map[string]string {
	t.Helper()
	kafka, mqtt := NewFakeKafka(), NewFakeMQTT()
	g := NewGateway(GatewayConfig{
		Backends:      Backends{"kafka": kafka, "mqtt": mqtt},
		MaxConcurrent: maxConcurrent,
	})
	defer g.Close()
	ids := make([]string, len(specs))
	for i, spec := range specs {
		id, err := g.Start(spec)
		if err != nil {
			t.Fatalf("start %q: %v", spec.ID, err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if err := g.Wait(id); err != nil {
			t.Fatalf("wait %q: %v", id, err)
		}
	}
	out := map[string]string{}
	for name, f := range map[string]*FakeBackend{"kafka": kafka, "mqtt": mqtt} {
		var buf bytes.Buffer
		if err := f.WriteLog(&buf); err != nil {
			t.Fatal(err)
		}
		out[name] = buf.String()
	}
	return out
}

// TestGoldenLogsAcrossConcurrency pins the gateway's core determinism
// claim: the northbound publish logs are a pure function of the hosted
// run specs, byte-identical whether runs step one at a time or all at
// once (the concurrency knob only reorders goroutine interleavings,
// which the per-run partition keys make invisible).
func TestGoldenLogsAcrossConcurrency(t *testing.T) {
	specs := goldenSpecs()
	base := dumpLogs(t, 1, specs)
	if base["kafka"] == "" || base["mqtt"] == "" {
		t.Fatalf("golden fleet published nothing: kafka=%d bytes, mqtt=%d bytes",
			len(base["kafka"]), len(base["mqtt"]))
	}
	for conc := 2; conc <= 4; conc++ {
		got := dumpLogs(t, conc, specs)
		for name := range base {
			if got[name] != base[name] {
				t.Errorf("-max-concurrent=%d changed the %s log:\n--- concurrent=1\n%s\n--- concurrent=%d\n%s",
					conc, name, base[name], conc, got[name])
			}
		}
	}
}

// TestGoldenLogsStraightVsResume pins checkpoint transparency: pausing
// a run mid-flight, checkpointing it and resuming it on a different
// gateway yields the same northbound stream as never pausing. The
// resumed backend starts empty, so the comparison concatenates the
// part-1 and part-2 payload sequences per (topic, key) partition.
func TestGoldenLogsStraightVsResume(t *testing.T) {
	spec := RunSpec{ID: "gold-cut", Run: testRun(42), Rules: testRules}

	straightKafka, straightMQTT := NewFakeKafka(), NewFakeMQTT()
	g := NewGateway(GatewayConfig{Backends: Backends{"kafka": straightKafka, "mqtt": straightMQTT}})
	id, err := g.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Wait(id); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if straightKafka.Total() == 0 {
		t.Fatal("straight run published nothing to kafka")
	}

	for cut := uint64(1); cut <= 7; cut += 3 {
		part1Kafka, part1MQTT := NewFakeKafka(), NewFakeMQTT()
		g1 := NewGateway(GatewayConfig{Backends: Backends{"kafka": part1Kafka, "mqtt": part1MQTT}})
		paused := spec
		paused.StopAfter = cut
		id, err := g1.Start(paused)
		if err != nil {
			t.Fatal(err)
		}
		if err := g1.Wait(id); err != nil {
			t.Fatal(err)
		}
		var cp bytes.Buffer
		if err := g1.Save(id, &cp); err != nil {
			t.Fatal(err)
		}
		g1.Close()

		part2Kafka, part2MQTT := NewFakeKafka(), NewFakeMQTT()
		g2 := NewGateway(GatewayConfig{Backends: Backends{"kafka": part2Kafka, "mqtt": part2MQTT}})
		id2, err := g2.Resume(spec, &cp)
		if err != nil {
			t.Fatal(err)
		}
		if err := g2.Wait(id2); err != nil {
			t.Fatal(err)
		}
		g2.Close()

		comparePartitions(t, fmt.Sprintf("kafka cut=%d", cut), straightKafka, part1Kafka, part2Kafka)
		comparePartitions(t, fmt.Sprintf("mqtt cut=%d", cut), straightMQTT, part1MQTT, part2MQTT)
	}
}

// comparePartitions asserts straight's per-partition payload sequences
// equal part1's followed by part2's.
func comparePartitions(t *testing.T, label string, straight, part1, part2 *FakeBackend) {
	t.Helper()
	collect := func(f *FakeBackend) map[string][]string {
		m := map[string][]string{}
		for _, r := range f.Records() {
			k := r.Topic + "\x00" + r.Key
			m[k] = append(m[k], r.Payload)
		}
		return m
	}
	want := collect(straight)
	got := collect(part1)
	for k, tail := range collect(part2) {
		got[k] = append(got[k], tail...)
	}
	if len(got) != len(want) {
		t.Errorf("%s: partition sets differ: got %d, want %d", label, len(got), len(want))
		return
	}
	for k, w := range want {
		g := got[k]
		if len(g) != len(w) {
			t.Errorf("%s: partition %q length %d, want %d", label, k, len(g), len(w))
			continue
		}
		for i := range w {
			if g[i] != w[i] {
				t.Errorf("%s: partition %q message %d:\n  got  %s\n  want %s", label, k, i, g[i], w[i])
			}
		}
	}
}

// TestGoldenRerunIdentical reruns the same fleet twice at full
// concurrency and requires byte-identical logs — the acceptance
// criterion's "rule firings byte-identical across reruns".
func TestGoldenRerunIdentical(t *testing.T) {
	specs := goldenSpecs()
	a := dumpLogs(t, 0, specs)
	b := dumpLogs(t, 0, specs)
	for name := range a {
		if a[name] != b[name] {
			t.Errorf("rerun changed the %s log", name)
		}
	}
}
