package steelnetd

import (
	"sync"
	"sync/atomic"
	"time"

	"steelnet/internal/enc"
	"steelnet/internal/telemetry"
)

// hubSubBuf bounds each hub subscriber's pending frame queue, and
// hubEvictAfter is the consecutive-drop eviction threshold — the same
// discipline as obs.Broker's SSE fan-out, at fleet scale.
const (
	hubSubBuf     = 64
	hubEvictAfter = 256
)

// Frame is one fan-out message: a fully formatted SSE frame plus the
// run it came from, so subscribers can filter per run without parsing.
type Frame struct {
	Run  string
	Data []byte // "event: …\ndata: …\n\n"
}

// hubSub is one subscriber slot.
type hubSub struct {
	ch    chan Frame
	run   string // "" = the whole fleet
	drops int
}

// Hub is the fleet-wide fan-out: every hosted run publishes its changed
// tags, rule firings and SLO breaches here, and every gateway SSE
// client receives them through a bounded queue. Publishing never
// blocks: a full subscriber drops the frame (counted), and a subscriber
// that keeps dropping is evicted (its channel closed). The hot path
// does no allocation beyond the frame the caller already built — the
// Frame struct is sent by value and the payload bytes are shared.
type Hub struct {
	mu         sync.Mutex
	subs       map[*hubSub]struct{}
	evictAfter int
	buf        int

	published atomic.Uint64
	dropped   atomic.Uint64
	evicted   atomic.Uint64
	// queueHW is the deepest any subscriber queue has ever been — the
	// early-warning gauge: it climbs toward the buffer size long before
	// drops start.
	queueHW  atomic.Int64
	fanoutNS *telemetry.AtomicHistogram
	reg      *telemetry.Registry
}

// NewHub builds a hub and registers its metric families (subscriber
// count, frames published/dropped, evictions, fan-out latency
// histogram) on its own registry, rendered by the gateway's /metrics.
func NewHub() *Hub {
	h := &Hub{
		subs:       map[*hubSub]struct{}{},
		evictAfter: hubEvictAfter,
		buf:        hubSubBuf,
		reg:        telemetry.NewRegistry(),
	}
	h.reg.Gauge("steelnetd_hub_subscribers", nil, "Current hub fan-out width.",
		func() float64 { return float64(h.Subscribers()) })
	h.reg.Counter("steelnetd_hub_frames_published_total", nil, "Frames offered to the hub.",
		h.published.Load)
	h.reg.Counter("steelnetd_hub_frames_dropped_total", nil, "Frames dropped on full subscriber queues.",
		h.dropped.Load)
	h.reg.Counter("steelnetd_hub_evicted_total", nil, "Subscribers evicted for not draining.",
		h.evicted.Load)
	h.reg.Gauge("steelnetd_hub_queue_high_water", nil, "Deepest subscriber queue ever seen.",
		func() float64 { return float64(h.queueHW.Load()) })
	h.reg.Gauge("steelnetd_hub_max_lag", nil, "Deepest subscriber queue right now.",
		func() float64 { return float64(h.MaxLag()) })
	h.fanoutNS = h.reg.NewAtomicHistogram("steelnetd_hub_fanout_ns", nil,
		"Wall time to offer one frame to every subscriber, nanoseconds.",
		[]float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8})
	return h
}

// Registry returns the hub's metric registry. All its values are
// atomic-backed, so rendering concurrently with publishes is safe.
func (h *Hub) Registry() *telemetry.Registry { return h.reg }

// SetLimits overrides the subscriber queue depth and eviction threshold
// (n <= 0 keeps the current value). Call before subscribers attach.
func (h *Hub) SetLimits(buf, evictAfter int) {
	h.mu.Lock()
	if buf > 0 {
		h.buf = buf
	}
	if evictAfter > 0 {
		h.evictAfter = evictAfter
	}
	h.mu.Unlock()
}

// Subscribe registers a fan-out slot. run filters to one run's frames
// ("" = the whole fleet). The hub closes ch on eviction; cancel is
// idempotent and safe after eviction.
func (h *Hub) Subscribe(run string) (ch <-chan Frame, cancel func()) {
	h.mu.Lock()
	sub := &hubSub{ch: make(chan Frame, h.buf), run: run}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub.ch, func() {
		h.mu.Lock()
		delete(h.subs, sub)
		h.mu.Unlock()
	}
}

// Subscribers returns the current fan-out width.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Published, Dropped and Evicted expose the hub counters.
func (h *Hub) Published() uint64 { return h.published.Load() }
func (h *Hub) Dropped() uint64   { return h.dropped.Load() }
func (h *Hub) Evicted() uint64   { return h.evicted.Load() }

// QueueHighWater returns the deepest any subscriber queue has been.
func (h *Hub) QueueHighWater() int { return int(h.queueHW.Load()) }

// MaxLag returns the deepest current subscriber queue — how far the
// slowest attached consumer is behind, in pending frames.
func (h *Hub) MaxLag() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	max := 0
	for sub := range h.subs {
		if d := len(sub.ch); d > max {
			max = d
		}
	}
	return max
}

// FanoutQuantile returns the q quantile of per-publish fan-out wall
// time in nanoseconds (bucket upper-bound estimate).
func (h *Hub) FanoutQuantile(q float64) float64 { return h.fanoutNS.Quantile(q) }

// Publish offers one frame to every matching subscriber without
// blocking. Full queues drop the frame; hubEvictAfter consecutive drops
// evict the subscriber.
func (h *Hub) Publish(f Frame) {
	start := time.Now()
	h.published.Add(1)
	h.mu.Lock()
	for sub := range h.subs {
		if sub.run != "" && sub.run != f.Run {
			continue
		}
		select {
		case sub.ch <- f:
			sub.drops = 0
			if d := int64(len(sub.ch)); d > h.queueHW.Load() {
				h.queueHW.Store(d) // racy max is fine: writers hold h.mu
			}
		default:
			h.dropped.Add(1)
			sub.drops++
			if sub.drops >= h.evictAfter {
				delete(h.subs, sub)
				close(sub.ch)
				h.evicted.Add(1)
			}
		}
	}
	h.mu.Unlock()
	h.fanoutNS.Observe(time.Since(start).Nanoseconds())
}

// sseFrame formats one SSE frame: "event: <event>\ndata: <data>\n\n".
// The payload is built once per publish and shared by every subscriber.
func sseFrame(event string, data []byte) []byte {
	return enc.AppendSSE(make([]byte, 0, len(event)+len(data)+18), event, data)
}

// appendTagsPayload renders a changed-tag batch as JSON:
//
//	{"run":"r1","seq":3,"sim_ns":150000000,"tags":[{"name":"…","value":1}, …]}
//
// Hand-rolled (strconv appends into one buffer) because this runs once
// per slice per run — the gateway's hottest serialization — and
// encoding/json would allocate per tag.
func appendTagsPayload(b []byte, run string, seq uint64, simNS int64, tags []TagChange) []byte {
	b = append(b, `{"run":`...)
	b = enc.AppendString(b, run)
	b = append(b, `,"seq":`...)
	b = enc.AppendUint(b, seq)
	b = append(b, `,"sim_ns":`...)
	b = enc.AppendInt(b, simNS)
	b = append(b, `,"tags":[`...)
	for i, t := range tags {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = enc.AppendString(b, t.Name)
		b = append(b, `,"value":`...)
		b = enc.AppendFloat(b, t.Value)
		b = append(b, '}')
	}
	b = append(b, "]}"...)
	return b
}

// TagChange is one changed tag in a republish batch.
type TagChange struct {
	Name  string
	Value float64
}
