package steelnetd

import (
	"bytes"
	"testing"
	"time"
)

func loadConfig(sims, subs int) LoadConfig {
	return LoadConfig{
		Sims:        sims,
		Subscribers: subs,
		Run:         testRun(100),
		Rules:       testRules,
	}
}

func TestRunLoadDeterministicCounts(t *testing.T) {
	res, backends, err := RunLoad(loadConfig(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sims != 3 || res.Subscribers != 7 {
		t.Fatalf("shape %d×%d", res.Sims, res.Subscribers)
	}
	if res.Frames == 0 {
		t.Fatal("no frames published")
	}
	if res.Dropped != 0 || res.Evicted != 0 {
		t.Fatalf("dropped=%d evicted=%d with worst-case queues", res.Dropped, res.Evicted)
	}
	if res.Delivered != res.Frames*uint64(res.Subscribers) {
		t.Fatalf("delivered %d, want frames(%d) × subscribers(%d)", res.Delivered, res.Frames, res.Subscribers)
	}
	if res.Firings == 0 {
		t.Error("no rule firings under loss, breach and tag rules")
	}
	if res.Bytes == 0 {
		t.Error("no payload bytes counted")
	}
	if res.MsgPerSec <= 0 || res.Elapsed <= 0 {
		t.Errorf("timing not measured: %g msg/s over %v", res.MsgPerSec, res.Elapsed)
	}
	var total uint64
	for _, name := range []string{"kafka", "mqtt"} {
		f, ok := backends[name].(*FakeBackend)
		if !ok {
			t.Fatalf("backend %q is not a FakeBackend", name)
		}
		total += f.Total()
	}
	if total != res.Firings {
		t.Errorf("backend records %d != firings %d", total, res.Firings)
	}
}

// TestRunLoadRerunIdentical reruns the same load config and requires the
// message counts and northbound logs to match exactly — the fan-out path
// must not leak scheduling noise into what subscribers or backends see.
func TestRunLoadRerunIdentical(t *testing.T) {
	dump := func() (LoadResult, map[string]string) {
		t.Helper()
		res, backends, err := RunLoad(loadConfig(4, 5))
		if err != nil {
			t.Fatal(err)
		}
		logs := map[string]string{}
		for name, p := range backends {
			f := p.(*FakeBackend)
			var buf bytes.Buffer
			if err := f.WriteLog(&buf); err != nil {
				t.Fatal(err)
			}
			logs[name] = buf.String()
		}
		return res, logs
	}
	resA, logsA := dump()
	resB, logsB := dump()
	if resA.Frames != resB.Frames || resA.Delivered != resB.Delivered || resA.Firings != resB.Firings || resA.Bytes != resB.Bytes {
		t.Errorf("rerun counts diverged: %+v vs %+v", resA, resB)
	}
	for name := range logsA {
		if logsA[name] != logsB[name] {
			t.Errorf("rerun changed the %s log", name)
		}
	}
}

// TestRunLoadConcurrencyInvariant pins the counts against the
// MaxConcurrent knob: stepping sims one at a time or all at once must
// publish the same frames and firings.
func TestRunLoadConcurrencyInvariant(t *testing.T) {
	cfg := loadConfig(4, 3)
	cfg.MaxConcurrent = 1
	serial, _, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxConcurrent = 0
	parallel, _, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Frames != parallel.Frames || serial.Firings != parallel.Firings || serial.Delivered != parallel.Delivered {
		t.Errorf("serial %+v vs parallel %+v", serial, parallel)
	}
}

func TestRunLoadZeroSubscribers(t *testing.T) {
	res, _, err := RunLoad(loadConfig(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Frames == 0 {
		t.Fatalf("delivered=%d frames=%d with no subscribers", res.Delivered, res.Frames)
	}
}

func TestRunLoadErrors(t *testing.T) {
	if _, _, err := RunLoad(LoadConfig{Sims: 0}); err == nil {
		t.Error("accepted zero sims")
	}
	bad := loadConfig(1, 1)
	bad.Rules = "bogus:*>1->kafka:t"
	if _, _, err := RunLoad(bad); err == nil {
		t.Error("accepted a bad rule set")
	}
	badRun := loadConfig(1, 1)
	badRun.Run.Slice = time.Hour // exceeds horizon
	if _, _, err := RunLoad(badRun); err == nil {
		t.Error("accepted a bad run template")
	}
}
