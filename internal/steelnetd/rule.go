// Package steelnetd is the multi-simulation gateway: the paper's
// "data centers manufacturing steel" thesis turned into a server. Where
// internal/obs serves one run's telemetry, steelnetd hosts many
// concurrent runs (each a core.Headless driver on its own goroutine,
// publishing through a per-run obs.Broker), fans the fleet's changed
// tags out to thousands of SSE subscribers WarLogix-style (change
// detection, bounded drop-on-full queues, eviction of dead readers),
// and evaluates a declarative rule engine whose firings publish to
// pluggable northbound backends — in-process fake Kafka/MQTT/log
// implementations, so every firing and republish batch is
// deterministic in tests.
package steelnetd

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"steelnet/internal/core"
)

// CondKind selects what a rule's condition measures.
type CondKind int

// Condition kinds. Each kind reads one namespace of a core.Sample and
// reduces it to a single float the threshold compares against.
const (
	// CondTag compares one tag's value (exact name match in the run's
	// flattened tag space, labels included).
	CondTag CondKind = iota
	// CondLatency compares the worst mean one-way INT latency over the
	// paths observed at the subject sink ("*" = any sink).
	CondLatency
	// CondJitter is CondLatency for mean jitter.
	CondJitter
	// CondLoss compares the subject sink's cumulative loss fraction
	// ("*" = worst sink).
	CondLoss
	// CondBreach compares the count of SLO breaches logged at the
	// subject sink ("*" = all sinks).
	CondBreach
	numCondKinds
)

var condKindNames = [...]string{
	CondTag:     "tag",
	CondLatency: "latency",
	CondJitter:  "jitter",
	CondLoss:    "loss",
	CondBreach:  "breach",
}

// String returns the kind's spec name (the one ParseRule accepts).
func (k CondKind) String() string {
	if k >= 0 && int(k) < len(condKindNames) {
		return condKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// CondKindFromString resolves a spec name to a CondKind.
func CondKindFromString(s string) (CondKind, bool) {
	for k, n := range condKindNames {
		if n == s {
			return CondKind(k), true
		}
	}
	return 0, false
}

// durational reports whether the kind's threshold is a duration
// (latency, jitter) rather than a plain float.
func (k CondKind) durational() bool { return k == CondLatency || k == CondJitter }

// Rule is one condition → action binding: when the measured value
// crosses the threshold (edge-triggered: a false→true transition fires
// once, and the rule re-arms when the condition goes false again), the
// firing publishes to the named northbound backend and topic.
type Rule struct {
	// Kind and Subject select the measurement; see the CondKind docs.
	Kind    CondKind
	Subject string
	// Op is '<' or '>'.
	Op byte
	// Threshold is the bound for tag/loss/breach kinds; Bound is the
	// bound for latency/jitter kinds. Exactly one is meaningful.
	Threshold float64
	Bound     time.Duration
	// Backend and Topic address the action's publish.
	Backend string
	Topic   string
}

// String renders the rule in ParseRule's spec syntax, a fixed point:
// ParseRule(r.String()) reproduces r exactly.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Kind.String())
	b.WriteByte(':')
	b.WriteString(r.Subject)
	b.WriteByte(r.Op)
	if r.Kind.durational() {
		b.WriteString(r.Bound.String())
	} else {
		b.WriteString(strconv.FormatFloat(r.Threshold, 'g', -1, 64))
	}
	b.WriteString("->")
	b.WriteString(r.Backend)
	b.WriteByte(':')
	b.WriteString(r.Topic)
	return b.String()
}

// RuleSet is an ordered list of rules sharing one spec string.
type RuleSet struct {
	// Name labels the set in logs and run listings (ParseRuleSet sets
	// it to the spec).
	Name  string
	Rules []Rule
}

// Empty reports whether the set has no rules.
func (rs RuleSet) Empty() bool { return len(rs.Rules) == 0 }

// String renders the set as a semicolon-separated spec ParseRuleSet
// accepts.
func (rs RuleSet) String() string {
	parts := make([]string, len(rs.Rules))
	for i, r := range rs.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// ParseError reports a rejected rule spec with the byte offset of the
// offending token.
type ParseError struct {
	Spec string // the full spec handed to ParseRule/ParseRuleSet
	Pos  int    // byte offset into Spec
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("steelnetd: rule spec %q: pos %d: %s", e.Spec, e.Pos, e.Msg)
}

// ParseRuleSet parses a semicolon-separated list of rule specs. Rules
// separate on ';' (not ',' like fault plans) because tag subjects may
// contain commas inside Prometheus label lists. An empty or blank spec
// is an empty set.
func ParseRuleSet(spec string) (RuleSet, error) {
	rs := RuleSet{Name: spec}
	if strings.TrimSpace(spec) == "" {
		return rs, nil
	}
	off := 0
	for _, part := range strings.SplitAfter(spec, ";") {
		body := strings.TrimSuffix(part, ";")
		r, err := parseRule(spec, body, off)
		if err != nil {
			return RuleSet{}, err
		}
		rs.Rules = append(rs.Rules, r)
		off += len(part)
	}
	return rs, nil
}

// ParseRule parses one rule spec:
//
//	kind:subject(<|>)threshold->backend:topic
//
// e.g. "latency:press-sink>250µs->kafka:alerts",
// "loss:*>0.01->mqtt:plant/loss", "breach:press-sink>0->log:slo".
// Thresholds are Go durations for latency/jitter and floats for
// tag/loss/breach. Whitespace around tokens is accepted and dropped
// from the canonical String form.
func ParseRule(spec string) (Rule, error) {
	return parseRule(spec, spec, 0)
}

// parseRule parses one rule out of full[base:]. Positions in errors are
// relative to full, so set errors point into the set spec.
func parseRule(full, s string, base int) (Rule, error) {
	var r Rule
	fail := func(pos int, format string, args ...any) (Rule, error) {
		return Rule{}, &ParseError{Spec: full, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	arrow := strings.LastIndex(s, "->")
	if arrow < 0 {
		return fail(base+len(s), "missing \"->\" action")
	}
	cond, action := s[:arrow], s[arrow+2:]

	// Condition: kind ":" subject op threshold. The op is the last
	// '<' or '>' in the condition, so subjects may contain comparison
	// characters (quoted label values).
	colon := strings.Index(cond, ":")
	if colon < 0 {
		return fail(base, "condition %q missing \"kind:\"", cond)
	}
	kindStr := strings.TrimSpace(cond[:colon])
	kind, ok := CondKindFromString(kindStr)
	if !ok {
		return fail(base, "unknown condition kind %q", kindStr)
	}
	r.Kind = kind
	opIdx := strings.LastIndexAny(cond, "<>")
	if opIdx < colon {
		return fail(base+len(cond), "condition %q missing comparison (< or >)", cond)
	}
	r.Op = cond[opIdx]
	r.Subject = strings.TrimSpace(cond[colon+1 : opIdx])
	if r.Subject == "" {
		return fail(base+colon+1, "empty subject")
	}
	thresholdStr := strings.TrimSpace(cond[opIdx+1:])
	if thresholdStr == "" {
		return fail(base+opIdx+1, "empty threshold")
	}
	if kind.durational() {
		d, err := time.ParseDuration(thresholdStr)
		if err != nil {
			return fail(base+opIdx+1, "bad duration threshold %q", thresholdStr)
		}
		r.Bound = d
	} else {
		v, err := strconv.ParseFloat(thresholdStr, 64)
		if err != nil {
			return fail(base+opIdx+1, "bad threshold %q", thresholdStr)
		}
		if kind == CondLoss && !(v >= 0 && v <= 1) {
			return fail(base+opIdx+1, "loss fraction %v outside [0,1]", v)
		}
		r.Threshold = v
	}

	// Action: backend ":" topic.
	backend, topic, ok := strings.Cut(action, ":")
	if !ok {
		return fail(base+arrow+2, "action %q missing \"backend:topic\"", action)
	}
	r.Backend = strings.TrimSpace(backend)
	r.Topic = strings.TrimSpace(topic)
	if r.Backend == "" {
		return fail(base+arrow+2, "empty backend")
	}
	if r.Topic == "" {
		return fail(base+arrow+2+len(backend)+1, "empty topic")
	}
	for _, tok := range []struct {
		name, v string
		pos     int
	}{
		{"subject", r.Subject, base + colon + 1},
		{"backend", r.Backend, base + arrow + 2},
		{"topic", r.Topic, base + arrow + 2 + len(backend) + 1},
	} {
		if i := strings.IndexAny(tok.v, ";\n"); i >= 0 {
			return fail(tok.pos+i, "%s %q contains %q", tok.name, tok.v, tok.v[i])
		}
	}
	if strings.ContainsAny(r.Backend, "<>: \t") {
		return fail(base+arrow+2, "backend %q contains reserved characters", r.Backend)
	}
	if strings.ContainsAny(r.Topic, "<> \t") {
		return fail(base+arrow+2+len(backend)+1, "topic %q contains reserved characters", r.Topic)
	}
	return r, nil
}

// Validate checks rule fields built as literals (ParseRule output is
// always valid): known kinds, a real comparison op, non-empty
// addressing, and loss thresholds inside [0,1].
func (rs RuleSet) Validate() error {
	for i, r := range rs.Rules {
		if r.Kind < 0 || r.Kind >= numCondKinds {
			return fmt.Errorf("steelnetd: rule %d: unknown kind %d", i, int(r.Kind))
		}
		if r.Op != '<' && r.Op != '>' {
			return fmt.Errorf("steelnetd: rule %d: op %q is not < or >", i, string(r.Op))
		}
		if r.Subject == "" || r.Backend == "" || r.Topic == "" {
			return fmt.Errorf("steelnetd: rule %d: empty subject, backend or topic", i)
		}
		if r.Kind == CondLoss && (r.Threshold < 0 || r.Threshold > 1) {
			return fmt.Errorf("steelnetd: rule %d: loss fraction %v outside [0,1]", i, r.Threshold)
		}
	}
	return nil
}

// measure reduces a sample to the rule's measured value. ok is false
// when the subject is absent from the sample (condition false).
func (r Rule) measure(s *core.Sample) (v float64, ok bool) {
	switch r.Kind {
	case CondTag:
		for _, t := range s.Tags {
			if t.Name == r.Subject {
				return t.Value, true
			}
		}
		return 0, false
	case CondLatency, CondJitter:
		for _, p := range s.Digests {
			if r.Subject != "*" && p.Sink != r.Subject {
				continue
			}
			m := p.MeanNS()
			if r.Kind == CondJitter {
				m = p.MeanJitterNS()
			}
			if !ok || m > v {
				v, ok = m, true
			}
		}
		return v, ok
	case CondLoss:
		for _, l := range s.Loss {
			if r.Subject != "*" && l.Sink != r.Subject {
				continue
			}
			if f := l.Fraction(); !ok || f > v {
				v, ok = f, true
			}
		}
		return v, ok
	case CondBreach:
		n := 0
		for _, b := range s.Breaches {
			if r.Subject == "*" || b.Sink == r.Subject {
				n++
			}
		}
		return float64(n), true
	}
	return 0, false
}

// eval reports whether the condition holds for s and the measured value.
func (r Rule) eval(s *core.Sample) (bool, float64) {
	v, ok := r.measure(s)
	if !ok {
		return false, v
	}
	bound := r.Threshold
	if r.Kind.durational() {
		bound = float64(r.Bound.Nanoseconds())
	}
	if r.Op == '<' {
		return v < bound, v
	}
	return v > bound, v
}

// Firing is one rule firing: the edge where a condition went from
// false to true. Fields are pure functions of the run spec, so firing
// streams are byte-identical across replays.
type Firing struct {
	// Rule is the canonical spec of the rule that fired.
	Rule string `json:"rule"`
	// Seq and SimNS locate the firing sample.
	Seq   uint64 `json:"seq"`
	SimNS int64  `json:"sim_ns"`
	// Value is the measured value that crossed the threshold.
	Value float64 `json:"value"`
	// Backend and Topic address the northbound publish.
	Backend string `json:"-"`
	Topic   string `json:"-"`
}

// Engine evaluates a rule set over a run's sample stream with
// edge-triggered firing. Not safe for concurrent use; each run owns one
// engine on its stepping goroutine.
type Engine struct {
	rules []Rule
	specs []string // canonical String() per rule, rendered once
	prev  []bool   // last evaluation; a firing needs prev false
}

// NewEngine builds an engine for rs. All conditions start false, so a
// condition already true at the first sample fires on it.
func NewEngine(rs RuleSet) *Engine {
	e := &Engine{rules: rs.Rules, specs: make([]string, len(rs.Rules)), prev: make([]bool, len(rs.Rules))}
	for i, r := range rs.Rules {
		e.specs[i] = r.String()
	}
	return e
}

// Eval evaluates every rule against s and returns the firings (rules
// whose condition went false→true), in rule order.
func (e *Engine) Eval(s *core.Sample) []Firing {
	var fs []Firing
	for i, r := range e.rules {
		hold, v := r.eval(s)
		if hold && !e.prev[i] {
			fs = append(fs, Firing{
				Rule: e.specs[i], Seq: s.Seq, SimNS: s.SimNS, Value: v,
				Backend: r.Backend, Topic: r.Topic,
			})
		}
		e.prev[i] = hold
	}
	return fs
}

// Prime sets the engine's edge state from s without firing. A resumed
// run primes on its restore-point sample so the continued firing stream
// matches a straight run's exactly.
func (e *Engine) Prime(s *core.Sample) {
	for i, r := range e.rules {
		e.prev[i], _ = r.eval(s)
	}
}
