package dataplane

import (
	"strings"
	"testing"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/telemetry"
)

// rig wires n hosts to an n-port pipeline and returns per-host receive
// counters.
func rig(t *testing.T, n int) (*sim.Engine, *Pipeline, []*simnet.Host, []*int) {
	t.Helper()
	e := sim.NewEngine(1)
	p := New(e, "dp", n, Config{Latency: sim.Microsecond})
	hosts := make([]*simnet.Host, n)
	counts := make([]*int, n)
	for i := 0; i < n; i++ {
		hosts[i] = simnet.NewHost(e, string(rune('a'+i)), frame.NewMAC(uint32(i+1)))
		simnet.Connect(e, "l", hosts[i].Port(), p.Port(i), 1e9, 0)
		c := new(int)
		counts[i] = c
		hosts[i].OnReceive(func(*frame.Frame) { *c++ })
	}
	return e, p, hosts, counts
}

func TestParseExtractsProfinetFields(t *testing.T) {
	cd := profinet.CyclicData{ARID: 42, CycleCounter: 7, Status: profinet.StatusValid}
	f := &frame.Frame{Src: frame.NewMAC(1), Dst: frame.NewMAC(2), Type: frame.TypeProfinet, Payload: cd.Marshal()}
	fl := Parse(3, f)
	if !fl.PNValid || fl.FrameID != profinet.FrameIDCyclic || fl.ARID != 42 || fl.InPort != 3 {
		t.Fatalf("fields = %+v", fl)
	}
}

func TestParseNonProfinet(t *testing.T) {
	f := &frame.Frame{Type: frame.TypeIPv4, Payload: []byte{1, 2, 3, 4, 5, 6}}
	if fl := Parse(0, f); fl.PNValid {
		t.Fatal("IPv4 parsed as PROFINET")
	}
}

func TestMatchWildcardsAndConstraints(t *testing.T) {
	fl := Fields{InPort: 1, EtherType: frame.TypeProfinet, PNValid: true, FrameID: profinet.FrameIDCyclic, ARID: 5}
	if !(Match{}).Matches(fl) {
		t.Fatal("all-wildcard did not match")
	}
	if !(Match{InPort: Ptr(1), ARID: Ptr(uint32(5))}).Matches(fl) {
		t.Fatal("exact match failed")
	}
	if (Match{InPort: Ptr(2)}).Matches(fl) {
		t.Fatal("wrong port matched")
	}
	if (Match{FrameID: Ptr(profinet.FrameIDAlarm)}).Matches(fl) {
		t.Fatal("wrong frame id matched")
	}
	// PROFINET constraints never match non-PROFINET frames.
	if (Match{ARID: Ptr(uint32(0))}).Matches(Fields{}) {
		t.Fatal("ARID constraint matched non-PN frame")
	}
}

func TestOutputForwards(t *testing.T) {
	e, p, hosts, counts := rig(t, 3)
	tbl := p.AddTable("fwd", Drop())
	tbl.Insert(Entry{Match: Match{InPort: Ptr(0)}, Action: Output(2)})
	hosts[0].Send(&frame.Frame{Dst: hosts[2].MAC(), Payload: make([]byte, 20)})
	e.Run()
	if *counts[2] != 1 || *counts[1] != 0 {
		t.Fatalf("counts = %d/%d", *counts[1], *counts[2])
	}
}

func TestDefaultActionApplies(t *testing.T) {
	e, p, hosts, counts := rig(t, 2)
	p.AddTable("t", Drop())
	hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC()})
	e.Run()
	if *counts[1] != 0 {
		t.Fatal("dropped frame delivered")
	}
	if p.Dropped != 1 {
		t.Fatalf("dropped = %d", p.Dropped)
	}
}

func TestPriorityOrdersEntries(t *testing.T) {
	e, p, hosts, counts := rig(t, 3)
	tbl := p.AddTable("t", Drop())
	tbl.Insert(Entry{Priority: 1, Match: Match{}, Action: Output(1)})
	tbl.Insert(Entry{Priority: 10, Match: Match{InPort: Ptr(0)}, Action: Output(2)})
	hosts[0].Send(&frame.Frame{Dst: hosts[2].MAC()})
	e.Run()
	if *counts[2] != 1 || *counts[1] != 0 {
		t.Fatalf("high-priority entry not preferred: %d/%d", *counts[1], *counts[2])
	}
}

func TestMultiLegOutputMirrors(t *testing.T) {
	e, p, hosts, counts := rig(t, 3)
	tbl := p.AddTable("t", Drop())
	tbl.Insert(Entry{Match: Match{InPort: Ptr(0)}, Action: OutputLegs(
		PortAction{Port: 1, SetDst: Ptr(hosts[1].MAC())},
		PortAction{Port: 2, SetDst: Ptr(hosts[2].MAC())},
	)})
	hosts[0].Send(&frame.Frame{Dst: frame.NewMAC(99)})
	e.Run()
	if *counts[1] != 1 || *counts[2] != 1 {
		t.Fatalf("mirror counts = %d/%d", *counts[1], *counts[2])
	}
}

func TestEgressARIDRewrite(t *testing.T) {
	e, p, hosts, _ := rig(t, 2)
	var gotARID uint32
	hosts[1].OnReceive(func(f *frame.Frame) {
		cd, err := profinet.UnmarshalCyclicData(f.Payload)
		if err == nil {
			gotARID = cd.ARID
		}
	})
	tbl := p.AddTable("t", Drop())
	tbl.Insert(Entry{Match: Match{InPort: Ptr(0)}, Action: OutputLegs(
		PortAction{Port: 1, SetARID: Ptr(uint32(777))},
	)})
	cd := profinet.CyclicData{ARID: 5, Status: profinet.StatusValid, Data: []byte{1}}
	hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC(), Type: frame.TypeProfinet, Payload: cd.Marshal()})
	e.Run()
	if gotARID != 777 {
		t.Fatalf("ARID = %d, want 777", gotARID)
	}
}

func TestEgressRewriteDoesNotAliasOtherLegs(t *testing.T) {
	e, p, hosts, _ := rig(t, 3)
	var arids []uint32
	rec := func(f *frame.Frame) {
		if cd, err := profinet.UnmarshalCyclicData(f.Payload); err == nil {
			arids = append(arids, cd.ARID)
		}
	}
	hosts[1].OnReceive(rec)
	hosts[2].OnReceive(rec)
	tbl := p.AddTable("t", Drop())
	tbl.Insert(Entry{Match: Match{InPort: Ptr(0)}, Action: OutputLegs(
		PortAction{Port: 1, SetDst: Ptr(hosts[1].MAC()), SetARID: Ptr(uint32(100))},
		PortAction{Port: 2, SetDst: Ptr(hosts[2].MAC())},
	)})
	cd := profinet.CyclicData{ARID: 5, Status: profinet.StatusValid}
	hosts[0].Send(&frame.Frame{Dst: frame.NewMAC(50), Type: frame.TypeProfinet, Payload: cd.Marshal()})
	e.Run()
	if len(arids) != 2 {
		t.Fatalf("arids = %v", arids)
	}
	seen := map[uint32]bool{arids[0]: true, arids[1]: true}
	if !seen[100] || !seen[5] {
		t.Fatalf("arids = %v, want one rewritten (100) and one original (5)", arids)
	}
}

func TestPacketInPunts(t *testing.T) {
	e, p, hosts, counts := rig(t, 2)
	var events []PacketInEvent
	p.OnPacketIn = func(ev PacketInEvent) { events = append(events, ev) }
	tbl := p.AddTable("t", Drop())
	tbl.Insert(Entry{Match: Match{FrameID: Ptr(profinet.FrameIDConnectReq)}, Action: PacketIn("connect")})
	req := profinet.ConnectRequest{ARID: 3, CycleUS: 1000, WatchdogFactor: 3}
	hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC(), Type: frame.TypeProfinet, Payload: req.Marshal()})
	e.Run()
	if len(events) != 1 || events[0].Reason != "connect" || events[0].Fields.ARID != 3 {
		t.Fatalf("events = %+v", events)
	}
	if *counts[1] != 0 {
		t.Fatal("punted frame also forwarded")
	}
}

func TestContinueFallsThroughTables(t *testing.T) {
	e, p, hosts, counts := rig(t, 2)
	t1 := p.AddTable("acl", Continue())
	t1.Insert(Entry{Match: Match{Src: Ptr(frame.NewMAC(99))}, Action: Drop()})
	t2 := p.AddTable("fwd", Drop())
	t2.Insert(Entry{Match: Match{InPort: Ptr(0)}, Action: Output(1)})
	hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC()})
	e.Run()
	if *counts[1] != 1 {
		t.Fatal("frame did not traverse both tables")
	}
}

func TestCountersTrackHits(t *testing.T) {
	e, p, hosts, _ := rig(t, 2)
	tbl := p.AddTable("t", Drop())
	ent := tbl.Insert(Entry{Match: Match{InPort: Ptr(0)}, Action: Output(1)})
	for i := 0; i < 5; i++ {
		hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC(), Payload: make([]byte, 50)})
	}
	e.Run()
	if ent.Hits != 5 {
		t.Fatalf("hits = %d", ent.Hits)
	}
	if ent.Bytes != 5*64 {
		t.Fatalf("bytes = %d", ent.Bytes)
	}
}

func TestIdleTimeoutFiresOnceWhenTrafficStops(t *testing.T) {
	e, p, hosts, _ := rig(t, 2)
	idled := 0
	tbl := p.AddTable("t", Drop())
	tbl.Insert(Entry{
		Match:       Match{InPort: Ptr(0)},
		Action:      Output(1),
		IdleTimeout: 5 * time.Millisecond,
		OnIdle:      func(*Entry) { idled++ },
	})
	// Traffic every 1 ms for 20 ms, then silence.
	tk := e.Every(0, time.Millisecond, func() {
		hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC()})
	})
	e.RunUntil(sim.Time(20 * time.Millisecond))
	tk.Stop()
	if idled != 0 {
		t.Fatal("idle fired while traffic flowed")
	}
	e.RunUntil(sim.Time(100 * time.Millisecond))
	if idled != 1 {
		t.Fatalf("idle fired %d times, want 1", idled)
	}
}

func TestIdleTimeoutCancelledByDelete(t *testing.T) {
	e, p, _, _ := rig(t, 2)
	tbl := p.AddTable("t", Drop())
	ent := tbl.Insert(Entry{
		Match:       Match{InPort: Ptr(0)},
		Action:      Output(1),
		IdleTimeout: time.Millisecond,
		OnIdle:      func(*Entry) { t.Fatal("idle fired after delete") },
	})
	tbl.Delete(ent)
	e.RunUntil(sim.Time(10 * time.Millisecond))
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestInjectPacketOut(t *testing.T) {
	e, p, hosts, counts := rig(t, 2)
	p.AddTable("t", Drop())
	p.Inject(1, &frame.Frame{Src: frame.NewMAC(0xcc), Dst: hosts[1].MAC()})
	e.Run()
	if *counts[1] != 1 {
		t.Fatal("packet-out not delivered")
	}
}

func TestNoTablesDrops(t *testing.T) {
	e, p, hosts, counts := rig(t, 2)
	hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC()})
	e.Run()
	if *counts[1] != 0 || p.Dropped != 1 {
		t.Fatal("tableless pipeline forwarded")
	}
}

func TestOutputToInvalidPortIgnored(t *testing.T) {
	e, p, hosts, _ := rig(t, 2)
	tbl := p.AddTable("t", Drop())
	tbl.Insert(Entry{Match: Match{}, Action: Output(9)})
	hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC()})
	e.Run() // must not panic
}

func TestOnMatchObservesFrames(t *testing.T) {
	e, p, hosts, _ := rig(t, 2)
	tbl := p.AddTable("t", Drop())
	var seen int
	tbl.Insert(Entry{
		Match:   Match{InPort: Ptr(0)},
		Action:  Output(1),
		OnMatch: func(*Entry, *frame.Frame) { seen++ },
	})
	for i := 0; i < 3; i++ {
		hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC()})
	}
	e.Run()
	if seen != 3 {
		t.Fatalf("OnMatch saw %d frames", seen)
	}
}

// Telemetry surface: tracing the pipeline records the punt and the
// forward, metrics registration exposes the verdict counters live, and
// Entries returns a copy in match order.
func TestPipelineTelemetryHooks(t *testing.T) {
	e, p, hosts, counts := rig(t, 2)
	if p.Name() != "dp" || p.NumPorts() != 2 {
		t.Fatalf("identity: name=%q ports=%d", p.Name(), p.NumPorts())
	}

	tr := telemetry.NewTracer(nil)
	tr.Bind(e)
	p.SetTracer(tr)
	r := telemetry.NewRegistry()
	p.RegisterMetrics(r)

	tbl := p.AddTable("t", Drop())
	lo := Entry{Priority: 1, Match: Match{InPort: Ptr(0)}, Action: Output(1)}
	hi := Entry{Priority: 2, Match: Match{InPort: Ptr(0)}, Action: Output(1)}
	tbl.Insert(lo)
	tbl.Insert(hi)
	ents := tbl.Entries()
	if len(ents) != 2 || ents[0].Priority != 2 {
		t.Fatalf("Entries not in match order: %+v", ents)
	}

	hosts[0].Send(&frame.Frame{Dst: hosts[1].MAC(), Payload: make([]byte, 30)})
	// No entry matches ingress port 1: the table's default Drop applies
	// and must be traced with the pipeline cause.
	hosts[1].Send(&frame.Frame{Dst: hosts[0].MAC(), Payload: make([]byte, 30)})
	e.Run()
	if *counts[1] != 1 {
		t.Fatal("frame did not cross the traced pipeline")
	}
	var sawEgress, sawDrop bool
	for _, ev := range tr.Events() {
		if ev.Kind == telemetry.KindEnqueue && ev.Node == "dp" && ev.Port == 1 {
			sawEgress = true
		}
		if ev.Kind == telemetry.KindDrop && ev.Node == "dp" && ev.Cause == telemetry.CausePipeline {
			sawDrop = true
		}
	}
	if !sawEgress || !sawDrop {
		t.Fatalf("egress=%v drop=%v in %+v", sawEgress, sawDrop, tr.Events())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `steelnet_pipeline_processed_total{node="dp"} 2`) {
		t.Fatalf("processed counter not live:\n%s", sb.String())
	}
}
