// Package dataplane implements the programmable match-action switch
// InstaPLC (§4) runs on — the simulated counterpart of the paper's DPDK
// SWX + P4 pipeline. A Pipeline is a multi-port forwarding element whose
// behaviour is entirely table-driven: a parser extracts protocol fields
// (including PROFINET frame ids and AR ids), ordered tables match on
// them with priorities and wildcards, and actions drop, output (with
// per-port header rewrites — the egress modification InstaPLC needs to
// retarget cyclic frames between redundant controllers), or punt to the
// control plane as packet-ins. Entries support idle timeouts, the
// data-plane watchdog primitive that lets InstaPLC detect a dead primary
// without any control-plane polling.
package dataplane

import (
	"encoding/binary"
	"fmt"

	"steelnet/internal/frame"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/telemetry"
)

// Fields is the parsed header view the pipeline matches on.
type Fields struct {
	InPort    int
	Src, Dst  frame.MAC
	EtherType frame.EtherType
	// PNValid is true for parseable PROFINET payloads; FrameID and ARID
	// are then populated (ARID only for message types that carry one).
	PNValid bool
	FrameID profinet.FrameID
	ARID    uint32
}

// Parse extracts Fields from a frame arriving on port inPort.
func Parse(inPort int, f *frame.Frame) Fields {
	fl := Fields{InPort: inPort, Src: f.Src, Dst: f.Dst, EtherType: f.Type}
	if f.Type != frame.TypeProfinet || len(f.Payload) < 2 {
		return fl
	}
	id, err := profinet.PeekFrameID(f.Payload)
	if err != nil {
		return fl
	}
	fl.PNValid = true
	fl.FrameID = id
	switch id {
	case profinet.FrameIDCyclic, profinet.FrameIDConnectReq,
		profinet.FrameIDConnectResp, profinet.FrameIDAlarm, profinet.FrameIDRelease:
		if len(f.Payload) >= 6 {
			fl.ARID = binary.BigEndian.Uint32(f.Payload[2:])
		}
	}
	return fl
}

// Match is a ternary match: nil fields are wildcards.
type Match struct {
	InPort    *int
	Src       *frame.MAC
	Dst       *frame.MAC
	EtherType *frame.EtherType
	FrameID   *profinet.FrameID
	ARID      *uint32
}

// Matches reports whether fl satisfies every non-nil constraint.
func (m Match) Matches(fl Fields) bool {
	if m.InPort != nil && *m.InPort != fl.InPort {
		return false
	}
	if m.Src != nil && *m.Src != fl.Src {
		return false
	}
	if m.Dst != nil && *m.Dst != fl.Dst {
		return false
	}
	if m.EtherType != nil && *m.EtherType != fl.EtherType {
		return false
	}
	if m.FrameID != nil && (!fl.PNValid || *m.FrameID != fl.FrameID) {
		return false
	}
	if m.ARID != nil && (!fl.PNValid || *m.ARID != fl.ARID) {
		return false
	}
	return true
}

// Ptr is a small helper for building Match literals.
func Ptr[T any](v T) *T { return &v }

// ActionKind selects what an entry does.
type ActionKind int

// Action kinds.
const (
	// ActDrop discards the frame.
	ActDrop ActionKind = iota
	// ActOutput emits the frame on one or more ports, each with
	// optional header rewrites.
	ActOutput
	// ActPacketIn punts the frame to the control plane.
	ActPacketIn
	// ActContinue falls through to the next table.
	ActContinue
	// ActINTSource attaches an in-band telemetry stack to the frame
	// (P4 INT source role), then continues to the next table. The
	// stack's source label is the pipeline's ingress-port label, so
	// sink-side path digests distinguish which port traffic entered on
	// — the failover observable.
	ActINTSource
	// ActINTSink terminates the frame's INT stack mid-pipeline (hands
	// it to the action's collector and strips it), then continues.
	ActINTSink
)

// INTCollector consumes terminated INT stacks. It is structurally
// identical to simnet.INTSink, so one intnet.Collector serves host
// sinks and data-plane sink actions alike.
type INTCollector interface {
	SinkINT(node string, f *frame.Frame, nowNS int64)
}

// PortAction is one output leg with optional egress rewrites. INTSink,
// when set, terminates the clone's INT stack at egress (P4-faithful:
// the sink strips telemetry before the frame leaves toward a host).
type PortAction struct {
	Port    int
	SetDst  *frame.MAC
	SetSrc  *frame.MAC
	SetARID *uint32
	INTSink INTCollector
}

// Action is what a matching entry performs.
type Action struct {
	Kind    ActionKind
	Outputs []PortAction
	Reason  string // packet-in annotation

	// INT source parameters (ActINTSource).
	INTFlow    uint32
	INTMaxHops int
	INTStrict  bool
	// INT sink collector (ActINTSink).
	INTSink INTCollector
}

// Drop is the drop action.
func Drop() Action { return Action{Kind: ActDrop} }

// Output builds a simple single-port output action.
func Output(port int) Action {
	return Action{Kind: ActOutput, Outputs: []PortAction{{Port: port}}}
}

// OutputLegs builds a multi-leg output action.
func OutputLegs(legs ...PortAction) Action { return Action{Kind: ActOutput, Outputs: legs} }

// PacketIn builds a punt-to-controller action.
func PacketIn(reason string) Action { return Action{Kind: ActPacketIn, Reason: reason} }

// Continue falls through to the next table.
func Continue() Action { return Action{Kind: ActContinue} }

// INTSource builds a source action: matching frames gain a telemetry
// stack for flow with room for maxHops records (<=0 = default).
func INTSource(flow uint32, maxHops int, strict bool) Action {
	return Action{Kind: ActINTSource, INTFlow: flow, INTMaxHops: maxHops, INTStrict: strict}
}

// INTSinkTo builds a mid-pipeline sink action feeding c.
func INTSinkTo(c INTCollector) Action { return Action{Kind: ActINTSink, INTSink: c} }

// Entry is one table row.
type Entry struct {
	ID       int
	Priority int // higher wins
	Match    Match
	Action   Action
	// IdleTimeout, when positive, arms a data-plane idle watchdog: if
	// the entry goes unmatched for the duration, OnIdle fires once.
	IdleTimeout sim.Duration
	OnIdle      func(*Entry)
	// OnMatch, when set, observes every matching frame — the
	// clone-to-CPU/digest primitive control planes use to monitor
	// data-plane traffic without punting it.
	OnMatch func(*Entry, *frame.Frame)

	// Hits and Bytes count matched traffic.
	Hits  uint64
	Bytes uint64

	idleTimer sim.Event
	table     *Table
	deleted   bool
}

// Table is an ordered set of entries with a default action.
type Table struct {
	Name    string
	Default Action
	entries []*Entry
	nextID  int
	pl      *Pipeline
}

// Insert adds an entry and returns it. Entries with equal priority match
// in insertion order.
func (t *Table) Insert(e Entry) *Entry {
	e.ID = t.nextID
	t.nextID++
	ent := &e
	ent.table = t
	// Keep sorted by priority descending, stable.
	pos := len(t.entries)
	for i, x := range t.entries {
		if x.Priority < ent.Priority {
			pos = i
			break
		}
	}
	t.entries = append(t.entries, nil)
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = ent
	if ent.IdleTimeout > 0 {
		t.pl.armIdle(ent)
	}
	return ent
}

// Delete removes an entry.
func (t *Table) Delete(e *Entry) {
	for i, x := range t.entries {
		if x == e {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			break
		}
	}
	e.deleted = true
	e.idleTimer.Cancel()
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Entries returns the entries in match order.
func (t *Table) Entries() []*Entry { return append([]*Entry(nil), t.entries...) }

// lookup returns the first matching entry, or nil.
func (t *Table) lookup(fl Fields) *Entry {
	for _, e := range t.entries {
		if e.Match.Matches(fl) {
			return e
		}
	}
	return nil
}

// PacketInEvent is a frame punted to the control plane.
type PacketInEvent struct {
	Reason string
	Fields Fields
	Frame  *frame.Frame
}

// Config sets the pipeline's forwarding-latency model.
type Config struct {
	Latency sim.Duration
	Jitter  sim.Duration
}

// DefaultConfig models a software (DPDK-class) pipeline: ~3 µs, small
// jitter.
var DefaultConfig = Config{Latency: 3 * sim.Microsecond, Jitter: 100 * sim.Nanosecond}

// Pipeline is the forwarding element.
type Pipeline struct {
	name   string
	engine *sim.Engine
	ports  []*simnet.Port
	tables []*Table
	cfg    Config
	rng    *sim.RNG
	tr     *telemetry.Tracer

	// inLabels/outLabels are per-port node labels ("name.inN" /
	// "name.outN"), prebuilt so INT stamping never constructs strings.
	inLabels, outLabels []string
	// intSeq is the per-flow sequence counter behind ActINTSource.
	intSeq map[uint32]uint32

	// OnPacketIn receives punted frames (the control-plane channel).
	OnPacketIn func(PacketInEvent)

	// Processed, Dropped, PacketIns count pipeline verdicts.
	Processed, Dropped, PacketIns uint64
	// INTDrops counts frames destroyed because a strict INT stack was
	// full when the pipeline tried to stamp its transit record.
	INTDrops uint64
}

// New creates a pipeline with nports ports.
func New(engine *sim.Engine, name string, nports int, cfg Config) *Pipeline {
	p := &Pipeline{name: name, engine: engine, cfg: cfg, rng: engine.RNG("dataplane/" + name),
		intSeq: make(map[uint32]uint32)}
	for i := 0; i < nports; i++ {
		p.ports = append(p.ports, simnet.NewPort(p, i))
		p.inLabels = append(p.inLabels, fmt.Sprintf("%s.in%d", name, i))
		p.outLabels = append(p.outLabels, fmt.Sprintf("%s.out%d", name, i))
	}
	return p
}

// Name implements simnet.Node.
func (p *Pipeline) Name() string { return p.name }

// Port returns port i.
func (p *Pipeline) Port(i int) *simnet.Port {
	if i < 0 || i >= len(p.ports) {
		panic(fmt.Sprintf("dataplane: %s has no port %d", p.name, i))
	}
	return p.ports[i]
}

// NumPorts returns the port count.
func (p *Pipeline) NumPorts() int { return len(p.ports) }

// SetTracer attaches a lifecycle tracer to the pipeline and its ports.
func (p *Pipeline) SetTracer(t *telemetry.Tracer) {
	p.tr = t
	for _, port := range p.ports {
		port.SetTracer(t)
	}
}

// RegisterMetrics exposes the pipeline's verdict counters and all its
// ports' counters on r.
func (p *Pipeline) RegisterMetrics(r *telemetry.Registry) {
	ls := telemetry.L("node", p.name)
	r.Counter("steelnet_pipeline_processed_total", ls, "frames that entered the pipeline", func() uint64 { return p.Processed })
	r.Counter("steelnet_pipeline_dropped_total", ls, "frames dropped by table verdict", func() uint64 { return p.Dropped })
	r.Counter("steelnet_pipeline_packet_ins_total", ls, "frames punted to the control plane", func() uint64 { return p.PacketIns })
	r.Counter("steelnet_pipeline_int_drops_total", ls, "frames dropped on strict INT stack overflow", func() uint64 { return p.INTDrops })
	for _, port := range p.ports {
		simnet.RegisterPortMetrics(r, port)
	}
}

// AddTable appends a table with the given default action and returns it.
func (p *Pipeline) AddTable(name string, def Action) *Table {
	t := &Table{Name: name, Default: def, pl: p}
	p.tables = append(p.tables, t)
	return t
}

// Receive implements simnet.Node: parse, walk tables, act. The receive
// instant is carried to process so INT transit records can report the
// frame's true pipeline residence time.
func (p *Pipeline) Receive(port *simnet.Port, f *frame.Frame) {
	d := p.cfg.Latency
	if p.cfg.Jitter > 0 {
		d = p.rng.NormDuration(p.cfg.Latency, p.cfg.Jitter, p.cfg.Latency/2)
	}
	in := port.Index
	rxNS := int64(p.engine.Now())
	p.engine.After(d, func() { p.process(in, rxNS, f) })
}

func (p *Pipeline) process(inPort int, rxNS int64, f *frame.Frame) {
	p.Processed++
	fl := Parse(inPort, f)
	for _, t := range p.tables {
		var act Action
		if e := t.lookup(fl); e != nil {
			e.Hits++
			e.Bytes += uint64(f.WireLen())
			if e.IdleTimeout > 0 {
				p.armIdle(e)
			}
			if e.OnMatch != nil {
				e.OnMatch(e, f)
			}
			act = e.Action
		} else {
			act = t.Default
		}
		switch act.Kind {
		case ActContinue:
			continue
		case ActINTSource:
			// Idempotent: a frame that already carries a stack (e.g. one
			// re-walked after a control-plane detour) keeps its original
			// source record.
			if f.INT == nil {
				p.intSeq[act.INTFlow]++
				st := f.AttachINT(p.inLabels[inPort], act.INTFlow, p.intSeq[act.INTFlow], rxNS, act.INTMaxHops)
				st.Strict = act.INTStrict
			}
			continue
		case ActINTSink:
			if f.INT != nil && act.INTSink != nil {
				act.INTSink.SinkINT(p.inLabels[inPort], f, int64(p.engine.Now()))
				f.INT = nil
			}
			continue
		case ActDrop:
			p.Dropped++
			if p.tr != nil {
				p.tr.Drop(p.name, inPort, f, telemetry.CausePipeline)
			}
			return
		case ActPacketIn:
			p.PacketIns++
			if p.tr != nil {
				p.tr.PacketIn(p.name, inPort, f)
			}
			// In-band telemetry ends where the data plane ends: a punted
			// frame sheds its INT stack before the control plane sees it,
			// so slow-path reinjections never leak telemetry bytes onto
			// the wire.
			f.INT = nil
			if p.OnPacketIn != nil {
				p.OnPacketIn(PacketInEvent{Reason: act.Reason, Fields: fl, Frame: f})
			}
			return
		case ActOutput:
			p.emit(act.Outputs, rxNS, f)
			return
		}
	}
	// Fell off the last table: drop, like a pipeline with no verdict.
	p.Dropped++
	if p.tr != nil {
		p.tr.Drop(p.name, inPort, f, telemetry.CausePipeline)
	}
}

// emit sends the frame out each leg, applying egress rewrites to a copy.
// INT-bearing clones get the pipeline's transit record stamped per leg;
// legs with an INTSink terminate the clone's stack at egress.
func (p *Pipeline) emit(legs []PortAction, rxNS int64, f *frame.Frame) {
	for _, leg := range legs {
		if leg.Port < 0 || leg.Port >= len(p.ports) {
			continue
		}
		g := f.Clone()
		if leg.SetDst != nil {
			g.Dst = *leg.SetDst
		}
		if leg.SetSrc != nil {
			g.Src = *leg.SetSrc
		}
		if leg.SetARID != nil {
			rewriteARID(g, *leg.SetARID)
		}
		if g.INT != nil {
			if !p.stampINT(g, rxNS, leg.Port) {
				p.INTDrops++
				p.ports[leg.Port].INTDrops++
				if p.tr != nil {
					p.tr.Drop(p.name, leg.Port, g, telemetry.CauseINT)
				}
				continue
			}
			if leg.INTSink != nil {
				leg.INTSink.SinkINT(p.outLabels[leg.Port], g, int64(p.engine.Now()))
				g.INT = nil
			}
		}
		p.ports[leg.Port].Send(g)
	}
}

// stampINT pushes the pipeline's transit record onto g's stack. A frame
// the pipeline itself sourced this pass has IngressNS == SourceNS, so
// its transit hop degenerates to the residual in-pipeline time — never
// negative. It reports false when a strict stack is full.
func (p *Pipeline) stampINT(g *frame.Frame, rxNS int64, out int) bool {
	in := rxNS
	if g.INT.SourceNS > in {
		in = g.INT.SourceNS
	}
	ok := g.INT.PushHop(frame.INTHop{
		Node:       p.name,
		IngressNS:  in,
		EgressNS:   int64(p.engine.Now()),
		QueueDepth: int32(p.ports[out].QueueDepth()),
	})
	return ok || !g.INT.Strict
}

// rewriteARID patches the AR id of a PROFINET payload in place (egress
// header rewrite). Non-PROFINET or short payloads are left untouched.
func rewriteARID(f *frame.Frame, arid uint32) {
	if f.Type != frame.TypeProfinet || len(f.Payload) < 6 {
		return
	}
	binary.BigEndian.PutUint32(f.Payload[2:], arid)
}

// Inject performs a packet-out: the control plane emits a frame on a
// port, bypassing the tables.
func (p *Pipeline) Inject(port int, f *frame.Frame) {
	p.Port(port).Send(f)
}

// armIdle (re)arms an entry's idle watchdog.
func (p *Pipeline) armIdle(e *Entry) {
	e.idleTimer.Cancel()
	e.idleTimer = p.engine.After(e.IdleTimeout, func() {
		if e.deleted {
			return
		}
		if e.OnIdle != nil {
			e.OnIdle(e)
		}
	})
}
