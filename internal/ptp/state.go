package ptp

import "steelnet/internal/checkpoint"

// FoldState folds the master's sequence counter, sync count and host.
func (m *Master) FoldState(d *checkpoint.Digest) {
	d.U64(uint64(m.seq))
	d.U64(m.SyncsSent)
	m.host.FoldState(d)
}

// FoldState folds the slave's servo state: the correction applied to
// the oscillator, the in-progress exchange timestamps, the completed
// round count, every recorded offset sample, and the host.
func (s *Slave) FoldState(d *checkpoint.Digest) {
	d.I64(s.corr)
	d.I64(s.t1)
	d.I64(s.t2)
	d.I64(s.t3)
	d.Bool(s.haveSync)
	d.U64(uint64(s.curSeq))
	d.U64(s.Rounds)
	s.OffsetSamples.FoldState(d)
	s.host.FoldState(d)
}
