// Package ptp implements a two-step IEEE 1588 Precision Time Protocol
// exchange over the simulated network: Sync/Follow_Up from the master,
// Delay_Req/Delay_Resp from the slave, and an offset servo on the
// slave's local oscillator. It exists to make §3's argument measurable:
// PTP can discipline a drifting clock to sub-µs offsets, but its offset
// estimate assumes symmetric paths — any forward/backward delay
// asymmetry leaves a residual error of half the asymmetry that no
// amount of synchronization traffic removes. That residual is why
// Traffic Reflection measures with a single tap clock instead.
package ptp

import (
	"encoding/binary"
	"errors"
	"time"

	"steelnet/internal/clock"
	"steelnet/internal/frame"
	"steelnet/internal/metrics"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// Message types.
const (
	msgSync      = 1
	msgFollowUp  = 2
	msgDelayReq  = 3
	msgDelayResp = 4
)

// message is the wire form: type(1) seq(2) timestamp(8).
const msgLen = 11

var errShort = errors.New("ptp: short message")

func marshal(typ uint8, seq uint16, ts int64) []byte {
	b := make([]byte, msgLen)
	b[0] = typ
	binary.BigEndian.PutUint16(b[1:], seq)
	binary.BigEndian.PutUint64(b[3:], uint64(ts))
	return b
}

func unmarshal(b []byte) (typ uint8, seq uint16, ts int64, err error) {
	if len(b) < msgLen {
		return 0, 0, 0, errShort
	}
	return b[0], binary.BigEndian.Uint16(b[1:]), int64(binary.BigEndian.Uint64(b[3:])), nil
}

// Master is the grandmaster: it owns the reference clock and answers
// delay requests.
type Master struct {
	host   *simnet.Host
	engine *sim.Engine
	clk    clock.Clock
	seq    uint16
	ticker *sim.Ticker

	// SyncsSent counts sync rounds initiated.
	SyncsSent uint64
}

// NewMaster creates a grandmaster with reference clock clk.
func NewMaster(e *sim.Engine, name string, mac frame.MAC, clk clock.Clock) *Master {
	m := &Master{host: simnet.NewHost(e, name, mac), engine: e, clk: clk}
	m.host.OnReceive(m.onFrame)
	return m
}

// Host returns the underlying host for wiring.
func (m *Master) Host() *simnet.Host { return m.host }

// Start begins sync rounds towards slave every interval.
func (m *Master) Start(slave frame.MAC, interval time.Duration) {
	m.ticker = m.engine.Every(m.engine.Now(), interval, func() {
		seq := m.seq
		m.seq++
		m.SyncsSent++
		// Two-step: Sync goes out, then Follow_Up carries the precise
		// transmit timestamp t1 taken at send time.
		t1 := m.clk.Read(m.engine.Now())
		m.send(slave, marshal(msgSync, seq, 0))
		m.send(slave, marshal(msgFollowUp, seq, t1))
	})
}

// Stop halts sync rounds.
func (m *Master) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

func (m *Master) onFrame(f *frame.Frame) {
	if f.Type != frame.TypePTP {
		return
	}
	typ, seq, _, err := unmarshal(f.Payload)
	if err != nil || typ != msgDelayReq {
		return
	}
	// t4: arrival of the delay request at the master.
	t4 := m.clk.Read(m.engine.Now())
	m.send(f.Src, marshal(msgDelayResp, seq, t4))
}

func (m *Master) send(dst frame.MAC, payload []byte) {
	m.host.Send(&frame.Frame{
		Dst: dst, Tagged: true, Priority: frame.PrioNetControl, VID: 10,
		Type: frame.TypePTP, Payload: payload,
	})
}

// Slave disciplines a drifting local oscillator against the master.
type Slave struct {
	host   *simnet.Host
	engine *sim.Engine
	osc    clock.Clock // free-running local oscillator
	corr   int64       // servo correction added to the oscillator

	t1, t2, t3 int64
	haveSync   bool
	curSeq     uint16

	// OffsetSamples records the servo's computed offsets (ns) per round.
	OffsetSamples *metrics.Series
	// Rounds counts completed sync exchanges.
	Rounds uint64
}

// NewSlave creates a slave with free-running oscillator osc.
func NewSlave(e *sim.Engine, name string, mac frame.MAC, osc clock.Clock) *Slave {
	s := &Slave{
		host: simnet.NewHost(e, name, mac), engine: e, osc: osc,
		OffsetSamples: metrics.NewSeries(128),
	}
	s.host.OnReceive(s.onFrame)
	return s
}

// Host returns the underlying host for wiring.
func (s *Slave) Host() *simnet.Host { return s.host }

// Now returns the slave's disciplined time at virtual instant now.
func (s *Slave) Now(now sim.Time) int64 { return s.osc.Read(now) + s.corr }

// OffsetError returns the slave's error vs true time at now — the
// quantity a real deployment can never observe directly.
func (s *Slave) OffsetError(now sim.Time) time.Duration {
	return time.Duration(s.Now(now) - int64(now))
}

func (s *Slave) onFrame(f *frame.Frame) {
	if f.Type != frame.TypePTP {
		return
	}
	typ, seq, ts, err := unmarshal(f.Payload)
	if err != nil {
		return
	}
	switch typ {
	case msgSync:
		s.curSeq = seq
		s.t2 = s.Now(s.engine.Now())
		s.haveSync = true
	case msgFollowUp:
		if !s.haveSync || seq != s.curSeq {
			return
		}
		s.t1 = ts
		// Kick off the delay measurement.
		s.t3 = s.Now(s.engine.Now())
		s.host.Send(&frame.Frame{
			Dst: f.Src, Tagged: true, Priority: frame.PrioNetControl, VID: 10,
			Type: frame.TypePTP, Payload: marshal(msgDelayReq, seq, 0),
		})
	case msgDelayResp:
		if !s.haveSync || seq != s.curSeq {
			return
		}
		t4 := ts
		// offset = ((t2-t1) - (t4-t3)) / 2; exact only when the two
		// directions have equal delay.
		offset := ((s.t2 - s.t1) - (t4 - s.t3)) / 2
		s.corr -= offset
		s.OffsetSamples.Add(float64(offset))
		s.Rounds++
		s.haveSync = false
	}
}
