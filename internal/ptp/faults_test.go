package ptp

import (
	"testing"
	"time"

	"steelnet/internal/clock"
	"steelnet/internal/faults"
	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// faultRig is rig with an Adjustable oscillator so drift/step faults can
// retune the slave's crystal mid-run.
func faultRig(t *testing.T, ppm float64) (*sim.Engine, *Master, *Slave, *clock.Adjustable) {
	t.Helper()
	e := sim.NewEngine(1)
	osc := clock.NewAdjustable(0, ppm)
	m := NewMaster(e, "gm", frame.NewMAC(1), clock.Perfect{})
	s := NewSlave(e, "slave", frame.NewMAC(2), osc)
	simnet.Connect(e, "ptp", m.Host().Port(), s.Host().Port(), 1e9, 5*sim.Microsecond)
	return e, m, s, osc
}

// TestServoRidesOutDriftFault heats the slave's crystal mid-run via a
// declarative fault plan: a 200 ppm frequency excursion for one second.
// The servo must absorb the excursion round by round and return to its
// converged error band once the fault recovers.
func TestServoRidesOutDriftFault(t *testing.T) {
	e, m, s, osc := faultRig(t, 20)
	in := faults.NewInjector(e)
	in.RegisterClock("slave-osc", osc)
	plan, err := faults.ParsePlan("clockdrift:slave-osc@2s+1s*200")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(plan); err != nil {
		t.Fatal(err)
	}

	m.Start(s.Host().MAC(), 100*time.Millisecond)
	// Converged before the fault.
	e.RunUntil(sim.Time(2 * time.Second))
	if err := s.OffsetError(e.Now()); err < -5*time.Microsecond || err > 5*time.Microsecond {
		t.Fatalf("not converged before fault: %v", err)
	}
	// Mid-fault: 200 ppm × 100 ms sync interval = 20 µs of fresh error
	// per round, so the error band widens but stays bounded by roughly
	// one interval's accumulation — the servo keeps re-zeroing it.
	e.RunUntil(sim.Time(3 * time.Second))
	if err := s.OffsetError(e.Now()); err < -40*time.Microsecond || err > 40*time.Microsecond {
		t.Fatalf("servo lost the clock during drift fault: %v", err)
	}
	// After recovery the oscillator is back at 20 ppm and the band is tight.
	e.RunUntil(sim.Time(5 * time.Second))
	m.Stop()
	if osc.DriftPPM() != 20 {
		t.Fatalf("fault recovery left drift at %v ppm, want 20", osc.DriftPPM())
	}
	if err := s.OffsetError(e.Now()); err < -5*time.Microsecond || err > 5*time.Microsecond {
		t.Fatalf("not re-converged after fault: %v", err)
	}
	if in.Injected != 1 || len(in.Trace) != 2 {
		t.Fatalf("injected=%d trace=%d, want 1 fault / 2 records", in.Injected, len(in.Trace))
	}
}

// TestServoCorrectsStepFault kicks the slave's phase by +500 µs with a
// clockstep event. One complete sync exchange later the servo has
// measured and removed the jump.
func TestServoCorrectsStepFault(t *testing.T) {
	e, m, s, osc := faultRig(t, 0)
	in := faults.NewInjector(e)
	in.RegisterClock("slave-osc", osc)
	// Inject mid-interval (syncs tick at multiples of 100 ms) so the jump
	// is observable before the next exchange measures it away.
	if err := in.Apply(faults.Plan{Events: []faults.Event{
		{At: 2*time.Second + 50*time.Millisecond, Kind: faults.KindClockStep, Target: "slave-osc",
			Magnitude: float64(500 * time.Microsecond)},
	}}); err != nil {
		t.Fatal(err)
	}

	m.Start(s.Host().MAC(), 100*time.Millisecond)
	e.RunUntil(sim.Time(2*time.Second + 90*time.Millisecond))
	if err := s.OffsetError(e.Now()); err < 490*time.Microsecond || err > 510*time.Microsecond {
		t.Fatalf("step not visible right after injection: %v", err)
	}
	e.RunUntil(sim.Time(3 * time.Second))
	m.Stop()
	if err := s.OffsetError(e.Now()); err < -5*time.Microsecond || err > 5*time.Microsecond {
		t.Fatalf("step not servoed out: %v", err)
	}
}

// TestDriftFaultDeterministic replays the drift scenario twice and
// demands identical servo trajectories — the determinism contract
// extends through the clock fault path.
func TestDriftFaultDeterministic(t *testing.T) {
	runOnce := func() []float64 {
		e, m, s, osc := faultRig(t, 20)
		in := faults.NewInjector(e)
		in.RegisterClock("slave-osc", osc)
		plan, _ := faults.ParsePlan("clockdrift:slave-osc@1s+500ms*150,clockstep:slave-osc@2s*100000")
		if err := in.Apply(plan); err != nil {
			t.Fatal(err)
		}
		m.Start(s.Host().MAC(), 50*time.Millisecond)
		e.RunUntil(sim.Time(3 * time.Second))
		m.Stop()
		return append([]float64(nil), s.OffsetSamples.Samples()...)
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("servo trajectory diverges at round %d: %v vs %v", i, a[i], b[i])
		}
	}
}
