package ptp

import (
	"testing"
	"time"

	"steelnet/internal/clock"
	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// rig wires master and slave over one link and returns them plus the
// link for asymmetry injection. The slave oscillator drifts +driftPPM
// and starts offset by startOffset.
func rig(t *testing.T, driftPPM float64, startOffset time.Duration) (*sim.Engine, *Master, *Slave, *simnet.Link) {
	t.Helper()
	e := sim.NewEngine(1)
	m := NewMaster(e, "gm", frame.NewMAC(1), clock.Perfect{})
	s := NewSlave(e, "slave", frame.NewMAC(2), clock.Drifting{Offset: startOffset, DriftPPM: driftPPM})
	l := simnet.Connect(e, "ptp", m.Host().Port(), s.Host().Port(), 1e9, 5*sim.Microsecond)
	return e, m, s, l
}

func TestMessageRoundTrip(t *testing.T) {
	typ, seq, ts, err := unmarshal(marshal(msgFollowUp, 42, 123456789))
	if err != nil || typ != msgFollowUp || seq != 42 || ts != 123456789 {
		t.Fatalf("roundtrip = %d,%d,%d,%v", typ, seq, ts, err)
	}
	if _, _, _, err := unmarshal([]byte{1, 2}); err != errShort {
		t.Fatalf("err = %v", err)
	}
}

func TestSlaveConvergesOnSymmetricPath(t *testing.T) {
	e, m, s, _ := rig(t, 20, 500*time.Microsecond)
	m.Start(s.Host().MAC(), 100*time.Millisecond)
	e.RunUntil(sim.Time(5 * time.Second))
	m.Stop()
	if s.Rounds < 40 {
		t.Fatalf("rounds = %d", s.Rounds)
	}
	// Converged error: bounded by drift accumulated in one interval
	// (20 ppm × 100 ms = 2 µs) — sub-µs right after a round, a few µs
	// at worst. The 500 µs initial offset must be long gone.
	if err := s.OffsetError(e.Now()); err < -5*time.Microsecond || err > 5*time.Microsecond {
		t.Fatalf("offset error = %v", err)
	}
}

func TestSlaveTracksDriftContinuously(t *testing.T) {
	e, m, s, _ := rig(t, 50, 0)
	m.Start(s.Host().MAC(), 50*time.Millisecond)
	// Without the servo, 50 ppm over 3 s would be 150 µs of error.
	e.RunUntil(sim.Time(3 * time.Second))
	if err := s.OffsetError(e.Now()); err < -10*time.Microsecond || err > 10*time.Microsecond {
		t.Fatalf("offset error = %v, drift not servoed out", err)
	}
}

func TestAsymmetryLeavesResidualError(t *testing.T) {
	// §3's point: with +100 µs extra on the master->slave direction the
	// servo converges to a standing error of asymmetry/2 = 50 µs that
	// no further syncing removes.
	e, m, s, l := rig(t, 0, 0)
	l.SetAsymmetry(0, 100*time.Microsecond) // master is end 0
	m.Start(s.Host().MAC(), 100*time.Millisecond)
	e.RunUntil(sim.Time(3 * time.Second))
	err := s.OffsetError(e.Now())
	// The slave believes it is synchronized; really it runs behind by
	// half the asymmetry (the inflated t2-t1 makes the servo
	// over-correct downward).
	if err > -40*time.Microsecond || err < -60*time.Microsecond {
		t.Fatalf("residual = %v, want ≈-50µs (asym/2)", err)
	}
	// And the servo reports near-zero offsets, hiding the error.
	recent := s.OffsetSamples.Samples()
	last := recent[len(recent)-1]
	if last > 1000 || last < -1000 {
		t.Fatalf("servo still sees %vns offset; should believe it is synced", last)
	}
}

func TestPerfectOscillatorStaysPut(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMaster(e, "gm", frame.NewMAC(1), clock.Perfect{})
	s := NewSlave(e, "slave", frame.NewMAC(2), clock.Perfect{})
	simnet.Connect(e, "ptp", m.Host().Port(), s.Host().Port(), 1e9, sim.Microsecond)
	m.Start(s.Host().MAC(), 100*time.Millisecond)
	e.RunUntil(sim.Time(2 * time.Second))
	if err := s.OffsetError(e.Now()); err < -time.Microsecond || err > time.Microsecond {
		t.Fatalf("perfect oscillator perturbed: %v", err)
	}
}

func TestMasterCountsSyncs(t *testing.T) {
	e, m, s, _ := rig(t, 0, 0)
	m.Start(s.Host().MAC(), 100*time.Millisecond)
	e.RunUntil(sim.Time(time.Second))
	m.Stop()
	if m.SyncsSent < 9 || m.SyncsSent > 11 {
		t.Fatalf("syncs = %d", m.SyncsSent)
	}
	sent := m.SyncsSent
	e.RunUntil(sim.Time(2 * time.Second))
	if m.SyncsSent != sent {
		t.Fatal("master kept syncing after Stop")
	}
}

func TestStaleFollowUpIgnored(t *testing.T) {
	// A Follow_Up with a mismatched sequence must not corrupt state.
	e := sim.NewEngine(1)
	s := NewSlave(e, "slave", frame.NewMAC(2), clock.Perfect{})
	injector := simnet.NewHost(e, "inj", frame.NewMAC(9))
	simnet.Connect(e, "l", injector.Port(), s.Host().Port(), 1e9, 0)
	injector.Send(&frame.Frame{Dst: s.Host().MAC(), Type: frame.TypePTP, Payload: marshal(msgFollowUp, 99, 12345)})
	injector.Send(&frame.Frame{Dst: s.Host().MAC(), Type: frame.TypePTP, Payload: marshal(msgDelayResp, 99, 12345)})
	e.Run()
	if s.Rounds != 0 {
		t.Fatal("stale messages completed a round")
	}
	if s.OffsetError(e.Now()) != 0 {
		t.Fatal("stale messages moved the clock")
	}
}

func TestLinkAsymmetryValidation(t *testing.T) {
	e, _, _, l := rig(t, 0, 0)
	_ = e
	defer func() {
		if recover() == nil {
			t.Fatal("bad end accepted")
		}
	}()
	l.SetAsymmetry(2, time.Microsecond)
}
