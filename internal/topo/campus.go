package topo

import "fmt"

// CampusConfig sizes a synthetic plant-campus topology: Cells
// production cells, each a tree of SwitchesPerCell switches (the tree
// root doubles as the cell gateway) with HostsPerSwitch field devices
// per switch, joined by a spine backbone of Spines switches. Every
// gateway uplinks to every spine, so the backbone is the only cut
// between cells — and its propagation delay is the natural conservative
// lookahead for sharded execution.
type CampusConfig struct {
	Cells           int
	SwitchesPerCell int
	HostsPerSwitch  int
	Spines          int
	// Fanout is the in-cell switch tree arity (default 4).
	Fanout int
	// Access wires hosts to switches, Trunk wires in-cell switch trees,
	// Backbone wires gateways to spines. Backbone.PropNs must be
	// positive: it is the cross-shard lookahead. Campus-scale backbones
	// run long fiber, so the default is 5 µs.
	Access, Trunk, Backbone LinkSpec
}

func (c *CampusConfig) setDefaults() {
	if c.Cells <= 0 {
		c.Cells = 4
	}
	if c.SwitchesPerCell <= 0 {
		c.SwitchesPerCell = 8
	}
	if c.HostsPerSwitch < 0 {
		c.HostsPerSwitch = 0
	}
	if c.Spines <= 0 {
		c.Spines = 2
	}
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Access == (LinkSpec{}) {
		c.Access = LinkOT1G
	}
	if c.Trunk == (LinkSpec{}) {
		c.Trunk = LinkDC10G
	}
	if c.Backbone == (LinkSpec{}) {
		c.Backbone = LinkSpec{RateBps: 100e9, PropNs: 5000}
	}
}

// CampusTopo is a generated campus graph plus the structural indexes a
// sharded simulation needs: which switches form each cell tree (index 0
// is the gateway/root, parent of index i is (i-1)/Fanout), which hosts
// hang off which switch, and the spine IDs.
type CampusTopo struct {
	Graph *Graph
	Cfg   CampusConfig
	// Spines lists the backbone switch node IDs.
	Spines []NodeID
	// CellSwitches[c][i] is switch i of cell c; i=0 is the gateway.
	CellSwitches [][]NodeID
	// CellHosts[c][i*HostsPerSwitch+h] is host h on switch i of cell c.
	CellHosts [][]NodeID
}

// Campus generates the topology. Node and edge IDs are assigned in a
// fixed order (spines, then per cell: switches, hosts, then links), so
// the same config always yields the identical graph.
func Campus(cfg CampusConfig) *CampusTopo {
	cfg.setDefaults()
	g := NewGraph(fmt.Sprintf("campus-%dx%d", cfg.Cells, cfg.SwitchesPerCell))
	ct := &CampusTopo{
		Graph:        g,
		Cfg:          cfg,
		Spines:       make([]NodeID, cfg.Spines),
		CellSwitches: make([][]NodeID, cfg.Cells),
		CellHosts:    make([][]NodeID, cfg.Cells),
	}
	for s := 0; s < cfg.Spines; s++ {
		ct.Spines[s] = g.AddNode(fmt.Sprintf("spine%d", s), KindSwitch)
	}
	for c := 0; c < cfg.Cells; c++ {
		sw := make([]NodeID, cfg.SwitchesPerCell)
		for i := range sw {
			sw[i] = g.AddNode(fmt.Sprintf("c%d.s%d", c, i), KindSwitch)
			if i > 0 {
				g.AddEdge(sw[(i-1)/cfg.Fanout], sw[i], cfg.Trunk.RateBps, cfg.Trunk.PropNs)
			}
		}
		hosts := make([]NodeID, 0, cfg.SwitchesPerCell*cfg.HostsPerSwitch)
		for i := range sw {
			for h := 0; h < cfg.HostsPerSwitch; h++ {
				id := g.AddNode(fmt.Sprintf("c%d.s%d.h%d", c, i, h), KindHost)
				g.AddEdge(sw[i], id, cfg.Access.RateBps, cfg.Access.PropNs)
				hosts = append(hosts, id)
			}
		}
		// Gateway uplinks: the cell's only exits, all through the spine.
		for s := 0; s < cfg.Spines; s++ {
			g.AddEdge(sw[0], ct.Spines[s], cfg.Backbone.RateBps, cfg.Backbone.PropNs)
		}
		ct.CellSwitches[c] = sw
		ct.CellHosts[c] = hosts
	}
	return ct
}

// Partition returns the campus's native shard layout: the spine is
// shard 0 and cell c is shard c+1. Every cut edge is a backbone link,
// so the lookahead is Backbone.PropNs — the layout is a function of the
// topology alone, independent of worker counts.
func (ct *CampusTopo) Partition() Partition {
	p := Partition{Shards: ct.Cfg.Cells + 1, Of: make([]int, ct.Graph.NumNodes())}
	for _, id := range ct.Spines {
		p.Of[id] = 0
	}
	for c := range ct.CellSwitches {
		for _, id := range ct.CellSwitches[c] {
			p.Of[id] = c + 1
		}
		for _, id := range ct.CellHosts[c] {
			p.Of[id] = c + 1
		}
	}
	return p
}
