package topo

import "fmt"

// LinkSpec gives the capacity and propagation delay used when a generator
// creates a class of links.
type LinkSpec struct {
	RateBps float64
	PropNs  int64
}

// Common link classes. Factory cabling is short (sub-µs propagation);
// the paper's OT networks are typically 100 Mb/s–1 Gb/s while DC fabrics
// run 10–100 Gb/s.
var (
	LinkOT100M = LinkSpec{RateBps: 100e6, PropNs: 500}
	LinkOT1G   = LinkSpec{RateBps: 1e9, PropNs: 500}
	LinkDC10G  = LinkSpec{RateBps: 10e9, PropNs: 500}
	LinkDC40G  = LinkSpec{RateBps: 40e9, PropNs: 500}
	LinkDC100G = LinkSpec{RateBps: 100e9, PropNs: 500}
)

// Line builds the classic OT daisy-chain: switches in a row, hostsPer
// hosts hanging off each switch. Common along conveyor lines.
func Line(switches, hostsPer int, trunk, access LinkSpec) *Graph {
	g := NewGraph(fmt.Sprintf("line-%d", switches))
	addChain(g, switches, hostsPer, trunk, access, false)
	return g
}

// Ring builds the dominant resilient OT topology: a closed chain of
// switches (MRP-style ring) with hosts per switch.
func Ring(switches, hostsPer int, trunk, access LinkSpec) *Graph {
	g := NewGraph(fmt.Sprintf("ring-%d", switches))
	sw := addChain(g, switches, hostsPer, trunk, access, false)
	if switches > 2 {
		g.AddEdge(sw[len(sw)-1], sw[0], trunk.RateBps, trunk.PropNs)
	}
	return g
}

func addChain(g *Graph, switches, hostsPer int, trunk, access LinkSpec, _ bool) []NodeID {
	if switches < 1 {
		panic("topo: need at least one switch")
	}
	sw := make([]NodeID, switches)
	for i := range sw {
		sw[i] = g.AddNode(fmt.Sprintf("sw%d", i), KindSwitch)
		if i > 0 {
			g.AddEdge(sw[i-1], sw[i], trunk.RateBps, trunk.PropNs)
		}
	}
	for i, s := range sw {
		for h := 0; h < hostsPer; h++ {
			host := g.AddNode(fmt.Sprintf("h%d.%d", i, h), KindHost)
			g.AddEdge(s, host, access.RateBps, access.PropNs)
		}
	}
	return sw
}

// Star builds one central switch with leaves hosts.
func Star(leaves int, access LinkSpec) *Graph {
	g := NewGraph(fmt.Sprintf("star-%d", leaves))
	c := g.AddNode("sw0", KindSwitch)
	for i := 0; i < leaves; i++ {
		h := g.AddNode(fmt.Sprintf("h%d", i), KindHost)
		g.AddEdge(c, h, access.RateBps, access.PropNs)
	}
	return g
}

// Tree builds a balanced switch tree of the given depth and fanout with
// hostsPerLeaf hosts under each leaf switch. Depth 1 is a single switch.
func Tree(depth, fanout, hostsPerLeaf int, trunk, access LinkSpec) *Graph {
	if depth < 1 || fanout < 1 {
		panic("topo: tree needs depth >= 1 and fanout >= 1")
	}
	g := NewGraph(fmt.Sprintf("tree-d%d-f%d", depth, fanout))
	level := []NodeID{g.AddNode("sw-root", KindSwitch)}
	for d := 1; d < depth; d++ {
		var next []NodeID
		for pi, parent := range level {
			for c := 0; c < fanout; c++ {
				s := g.AddNode(fmt.Sprintf("sw-%d.%d.%d", d, pi, c), KindSwitch)
				g.AddEdge(parent, s, trunk.RateBps, trunk.PropNs)
				next = append(next, s)
			}
		}
		level = next
	}
	for li, leaf := range level {
		for h := 0; h < hostsPerLeaf; h++ {
			host := g.AddNode(fmt.Sprintf("h%d.%d", li, h), KindHost)
			g.AddEdge(leaf, host, access.RateBps, access.PropNs)
		}
	}
	return g
}

// LeafSpine builds the standard two-tier DC fabric: every leaf connects
// to every spine; hostsPerLeaf servers hang off each leaf.
func LeafSpine(spines, leaves, hostsPerLeaf int, fabric, access LinkSpec) *Graph {
	if spines < 1 || leaves < 1 {
		panic("topo: leaf-spine needs spines >= 1 and leaves >= 1")
	}
	g := NewGraph(fmt.Sprintf("leafspine-%dx%d", spines, leaves))
	sp := make([]NodeID, spines)
	for i := range sp {
		sp[i] = g.AddNode(fmt.Sprintf("spine%d", i), KindSwitch)
	}
	for l := 0; l < leaves; l++ {
		leaf := g.AddNode(fmt.Sprintf("leaf%d", l), KindSwitch)
		for _, s := range sp {
			g.AddEdge(leaf, s, fabric.RateBps, fabric.PropNs)
		}
		for h := 0; h < hostsPerLeaf; h++ {
			host := g.AddNode(fmt.Sprintf("srv%d.%d", l, h), KindServer)
			g.AddEdge(leaf, host, access.RateBps, access.PropNs)
		}
	}
	return g
}

// FatTree builds a k-ary fat tree (k even): (k/2)² core switches, k pods
// of k/2 aggregation and k/2 edge switches, and (k/2) servers per edge.
func FatTree(k int, spec LinkSpec) *Graph {
	if k < 2 || k%2 != 0 {
		panic("topo: fat tree needs even k >= 2")
	}
	g := NewGraph(fmt.Sprintf("fattree-k%d", k))
	half := k / 2
	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = g.AddNode(fmt.Sprintf("core%d", i), KindSwitch)
	}
	for p := 0; p < k; p++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = g.AddNode(fmt.Sprintf("agg%d.%d", p, i), KindSwitch)
			edges[i] = g.AddNode(fmt.Sprintf("edge%d.%d", p, i), KindSwitch)
		}
		for i, a := range aggs {
			// Aggregation switch i connects to core group i.
			for j := 0; j < half; j++ {
				g.AddEdge(a, core[i*half+j], spec.RateBps, spec.PropNs)
			}
			for _, e := range edges {
				g.AddEdge(a, e, spec.RateBps, spec.PropNs)
			}
		}
		for i, e := range edges {
			for s := 0; s < half; s++ {
				srv := g.AddNode(fmt.Sprintf("srv%d.%d.%d", p, i, s), KindServer)
				g.AddEdge(e, srv, spec.RateBps, spec.PropNs)
			}
		}
	}
	return g
}
