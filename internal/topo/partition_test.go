package topo

import "testing"

func TestCampusShape(t *testing.T) {
	cfg := CampusConfig{Cells: 3, SwitchesPerCell: 5, HostsPerSwitch: 2, Spines: 2}
	ct := Campus(cfg)
	g := ct.Graph
	wantNodes := 2 + 3*(5+5*2)
	if g.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	// Edges: per cell 4 trunk + 10 access + 2 backbone.
	if want := 3 * (4 + 10 + 2); g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if !g.Connected() {
		t.Fatal("campus graph is disconnected")
	}
	for c, sw := range ct.CellSwitches {
		if len(sw) != 5 {
			t.Fatalf("cell %d has %d switches", c, len(sw))
		}
		if len(ct.CellHosts[c]) != 10 {
			t.Fatalf("cell %d has %d hosts", c, len(ct.CellHosts[c]))
		}
	}
}

func TestCampusPartitionCutIsBackbone(t *testing.T) {
	ct := Campus(CampusConfig{Cells: 4, SwitchesPerCell: 6, HostsPerSwitch: 1, Spines: 3})
	p := ct.Partition()
	if err := p.Validate(ct.Graph); err != nil {
		t.Fatal(err)
	}
	if p.Shards != 5 {
		t.Fatalf("shards = %d, want 5", p.Shards)
	}
	cut := p.CutEdges(ct.Graph)
	if want := 4 * 3; len(cut) != want {
		t.Fatalf("cut has %d edges, want %d (gateways x spines)", len(cut), want)
	}
	for _, id := range cut {
		e := ct.Graph.Edge(id)
		if e.PropNs != ct.Cfg.Backbone.PropNs {
			t.Fatalf("cut edge %d has prop %d, want backbone %d", id, e.PropNs, ct.Cfg.Backbone.PropNs)
		}
	}
	min, ok := p.MinCutPropNs(ct.Graph)
	if !ok || min != ct.Cfg.Backbone.PropNs {
		t.Fatalf("min cut prop = %d,%v, want %d,true", min, ok, ct.Cfg.Backbone.PropNs)
	}
}

func TestCampusDeterministic(t *testing.T) {
	cfg := CampusConfig{Cells: 2, SwitchesPerCell: 4, HostsPerSwitch: 2, Spines: 2}
	a, b := Campus(cfg), Campus(cfg)
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same config produced different graph sizes")
	}
	for i, n := range a.Graph.Nodes() {
		if m := b.Graph.Nodes()[i]; n != m {
			t.Fatalf("node %d differs: %+v vs %+v", i, n, m)
		}
	}
	for i, e := range a.Graph.Edges() {
		if f := b.Graph.Edges()[i]; e != f {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e, f)
		}
	}
}

func TestPartitionGreedy(t *testing.T) {
	g := Ring(12, 1, LinkOT1G, LinkOT1G)
	for _, k := range []int{1, 2, 3, 4} {
		p := PartitionGreedy(g, k)
		if err := p.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Deterministic: same input, same partition.
		q := PartitionGreedy(g, k)
		for i := range p.Of {
			if p.Of[i] != q.Of[i] {
				t.Fatalf("k=%d not deterministic at node %d", k, i)
			}
		}
	}
	// More shards than nodes clamps.
	tiny := NewGraph("tiny")
	tiny.AddNode("a", KindSwitch)
	tiny.AddNode("b", KindSwitch)
	p := PartitionGreedy(tiny, 5)
	if p.Shards != 2 {
		t.Fatalf("clamped shards = %d, want 2", p.Shards)
	}
	if err := p.Validate(tiny); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionValidateRejects(t *testing.T) {
	g := Star(3, LinkOT1G)
	if err := (Partition{Shards: 2, Of: []int{0, 1}}).Validate(g); err == nil {
		t.Fatal("short Of accepted")
	}
	bad := Partition{Shards: 2, Of: make([]int, g.NumNodes())}
	bad.Of[0] = 7
	if err := bad.Validate(g); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	empty := Partition{Shards: 3, Of: make([]int, g.NumNodes())}
	if err := empty.Validate(g); err == nil {
		t.Fatal("empty shard accepted")
	}
}
