package topo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph("g")
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindSwitch)
	e := g.AddEdge(a, b, 1e9, 100)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.Edge(e).Other(a) != b || g.Edge(e).Other(b) != a {
		t.Fatal("Other broken")
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatal("degree broken")
	}
	if ns := g.Neighbors(a); len(ns) != 1 || ns[0] != b {
		t.Fatalf("neighbors = %v", ns)
	}
	if g.Node(a).Kind != KindHost {
		t.Fatal("kind lost")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := NewGraph("g")
	a := g.AddNode("a", KindHost)
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	g.AddEdge(a, a, 1, 1)
}

func TestEdgeOtherPanicsForForeignNode(t *testing.T) {
	g := NewGraph("g")
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	c := g.AddNode("c", KindHost)
	e := g.AddEdge(a, b, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Other with foreign node did not panic")
		}
	}()
	g.Edge(e).Other(c)
}

func TestNodesOfKind(t *testing.T) {
	g := NewGraph("g")
	g.AddNode("s", KindSwitch)
	g.AddNode("h1", KindHost)
	g.AddNode("h2", KindHost)
	if got := g.NodesOfKind(KindHost); len(got) != 2 {
		t.Fatalf("hosts = %v", got)
	}
	if got := g.NodesOfKind(KindServer); len(got) != 0 {
		t.Fatalf("servers = %v", got)
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph("g")
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	g.AddEdge(a, b, 1, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestLineTopology(t *testing.T) {
	g := Line(4, 2, LinkOT1G, LinkOT100M)
	if got := len(g.NodesOfKind(KindSwitch)); got != 4 {
		t.Fatalf("switches = %d", got)
	}
	if got := len(g.NodesOfKind(KindHost)); got != 8 {
		t.Fatalf("hosts = %d", got)
	}
	if g.NumEdges() != 3+8 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if !g.Connected() {
		t.Fatal("line disconnected")
	}
}

func TestRingClosesLoop(t *testing.T) {
	g := Ring(6, 1, LinkOT1G, LinkOT100M)
	if g.NumEdges() != 6+6 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Every switch in a ring has exactly 2 trunk neighbors + 1 host.
	for _, s := range g.NodesOfKind(KindSwitch) {
		if d := g.Degree(s); d != 3 {
			t.Fatalf("switch degree = %d", d)
		}
	}
}

func TestRingOfTwoHasNoParallelEdge(t *testing.T) {
	g := Ring(2, 0, LinkOT1G, LinkOT100M)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestStar(t *testing.T) {
	g := Star(5, LinkOT100M)
	if g.NumNodes() != 6 || g.NumEdges() != 5 {
		t.Fatalf("nodes/edges = %d/%d", g.NumNodes(), g.NumEdges())
	}
}

func TestTreeCounts(t *testing.T) {
	g := Tree(3, 2, 2, LinkOT1G, LinkOT100M)
	// 1 + 2 + 4 switches, 4 leaves * 2 hosts.
	if got := len(g.NodesOfKind(KindSwitch)); got != 7 {
		t.Fatalf("switches = %d", got)
	}
	if got := len(g.NodesOfKind(KindHost)); got != 8 {
		t.Fatalf("hosts = %d", got)
	}
	if !g.Connected() {
		t.Fatal("tree disconnected")
	}
}

func TestLeafSpine(t *testing.T) {
	g := LeafSpine(4, 8, 4, LinkDC40G, LinkDC10G)
	if got := len(g.NodesOfKind(KindSwitch)); got != 12 {
		t.Fatalf("switches = %d", got)
	}
	if got := len(g.NodesOfKind(KindServer)); got != 32 {
		t.Fatalf("servers = %d", got)
	}
	if g.NumEdges() != 4*8+32 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Any server-to-server path crosses at most 3 switches (leaf-spine-leaf).
	r := NewRouter(g, HopCount)
	servers := g.NodesOfKind(KindServer)
	p, err := r.Path(servers[0], servers[31])
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 4 {
		t.Fatalf("cross-leaf hops = %d, want 4", p.Hops())
	}
}

func TestFatTreeCounts(t *testing.T) {
	k := 4
	g := FatTree(k, LinkDC10G)
	// k=4: 4 core, 8 agg, 8 edge, 16 servers.
	if got := len(g.NodesOfKind(KindSwitch)); got != 20 {
		t.Fatalf("switches = %d", got)
	}
	if got := len(g.NodesOfKind(KindServer)); got != 16 {
		t.Fatalf("servers = %d", got)
	}
	if !g.Connected() {
		t.Fatal("fat tree disconnected")
	}
}

func TestFatTreeOddKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd k did not panic")
		}
	}()
	FatTree(3, LinkDC10G)
}

func TestRouterShortestOnRing(t *testing.T) {
	g := Ring(6, 0, LinkOT1G, LinkOT100M)
	r := NewRouter(g, HopCount)
	// Opposite nodes on a 6-ring are 3 hops apart.
	if d := r.Distance(0, 3); d != 3 {
		t.Fatalf("distance = %v", d)
	}
	p, err := r.Path(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 3 || !p.Valid(g) {
		t.Fatalf("path = %+v", p)
	}
}

func TestRouterNoPath(t *testing.T) {
	g := NewGraph("g")
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	r := NewRouter(g, HopCount)
	if !math.IsInf(r.Distance(a, b), 1) {
		t.Fatal("distance finite for disconnected pair")
	}
	if _, err := r.Path(a, b); err == nil {
		t.Fatal("no error for unreachable path")
	}
}

func TestRouterDeterministicTieBreak(t *testing.T) {
	g := LeafSpine(4, 2, 1, LinkDC40G, LinkDC10G)
	r := NewRouter(g, HopCount)
	servers := g.NodesOfKind(KindServer)
	p1, _ := r.Path(servers[0], servers[1])
	p2, _ := r.Path(servers[0], servers[1])
	if len(p1.Edges) != len(p2.Edges) {
		t.Fatal("path lengths differ")
	}
	for i := range p1.Edges {
		if p1.Edges[i] != p2.Edges[i] {
			t.Fatal("tie-break not deterministic")
		}
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	g := LeafSpine(4, 2, 1, LinkDC40G, LinkDC10G)
	r := NewRouter(g, HopCount)
	servers := g.NodesOfKind(KindServer)
	spines := map[NodeID]bool{}
	for key := uint64(0); key < 64; key++ {
		p, err := r.ECMPPath(servers[0], servers[1], key)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Valid(g) || p.Hops() != 4 {
			t.Fatalf("ecmp path invalid: %+v", p)
		}
		spines[p.Nodes[2]] = true
	}
	if len(spines) < 2 {
		t.Fatalf("ECMP used %d spines, want >=2", len(spines))
	}
}

func TestECMPSameKeySamePath(t *testing.T) {
	g := LeafSpine(4, 2, 1, LinkDC40G, LinkDC10G)
	r := NewRouter(g, HopCount)
	servers := g.NodesOfKind(KindServer)
	a, _ := r.ECMPPath(servers[0], servers[1], 42)
	b, _ := r.ECMPPath(servers[0], servers[1], 42)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same key chose different paths")
		}
	}
}

func TestPathValidProperty(t *testing.T) {
	g := FatTree(4, LinkDC10G)
	r := NewRouter(g, HopCount)
	servers := g.NodesOfKind(KindServer)
	f := func(i, j uint8, key uint64) bool {
		src := servers[int(i)%len(servers)]
		dst := servers[int(j)%len(servers)]
		if src == dst {
			return true
		}
		p, err := r.ECMPPath(src, dst, key)
		if err != nil {
			return false
		}
		return p.Valid(g) && p.Nodes[0] == src && p.Nodes[len(p.Nodes)-1] == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationCostRouting(t *testing.T) {
	g := NewGraph("g")
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	mid := g.AddNode("m", KindSwitch)
	g.AddEdge(a, b, 1e9, 10000) // direct but slow
	g.AddEdge(a, mid, 1e9, 100)
	g.AddEdge(mid, b, 1e9, 100)
	r := NewRouter(g, PropagationCost)
	p, err := r.Path(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 2 {
		t.Fatalf("took direct slow edge: %+v", p)
	}
	if PropagationNs(g, p) != 200 {
		t.Fatalf("prop = %d", PropagationNs(g, p))
	}
}

func TestKindString(t *testing.T) {
	if KindSwitch.String() != "switch" || NodeKind(99).String() == "" {
		t.Fatal("kind strings broken")
	}
}
