// Package topo provides the topology layer the paper contrasts in §2.3
// and §5: classic OT shapes (line, ring, star, tree) that mirror the
// physical plant layout, and IT data-center shapes (leaf-spine, fat-tree)
// built for bisection bandwidth. Graphs are undirected multigraph-free
// node/edge structures with link capacities, plus shortest-path routing
// with equal-cost multipath enumeration. The ML-aware topology optimizer
// in internal/mltopo builds on these generators.
package topo

import (
	"fmt"
	"sort"
)

// NodeKind classifies a node for placement and routing policy.
type NodeKind int

// Node kinds.
const (
	KindSwitch NodeKind = iota
	KindHost
	KindIODevice
	KindServer // data-center compute (vPLC / ML inference)
)

var kindNames = map[NodeKind]string{
	KindSwitch: "switch", KindHost: "host", KindIODevice: "io", KindServer: "server",
}

// String returns the kind name.
func (k NodeKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// NodeID identifies a node within a Graph.
type NodeID int

// Node is a vertex with a kind and a human-readable name.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
}

// EdgeID identifies an edge within a Graph.
type EdgeID int

// Edge is an undirected link between two nodes with a capacity in bits
// per second and a propagation delay in nanoseconds.
type Edge struct {
	ID      EdgeID
	A, B    NodeID
	RateBps float64
	PropNs  int64
}

// Other returns the endpoint opposite n; it panics when n is not an
// endpoint.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.A:
		return e.B
	case e.B:
		return e.A
	}
	panic(fmt.Sprintf("topo: node %d not on edge %d", n, e.ID))
}

// Graph is a mutable undirected graph.
type Graph struct {
	Name  string
	nodes []Node
	edges []Edge
	adj   map[NodeID][]EdgeID
}

// NewGraph returns an empty graph with the given name.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, adj: make(map[NodeID][]EdgeID)}
}

// AddNode appends a node and returns its id.
func (g *Graph) AddNode(name string, kind NodeKind) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Kind: kind})
	return id
}

// AddEdge connects a and b and returns the edge id. Self-loops panic.
func (g *Graph) AddEdge(a, b NodeID, rateBps float64, propNs int64) EdgeID {
	if a == b {
		panic("topo: self-loop")
	}
	g.mustHave(a)
	g.mustHave(b)
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, A: a, B: b, RateBps: rateBps, PropNs: propNs})
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	return id
}

func (g *Graph) mustHave(n NodeID) {
	if int(n) < 0 || int(n) >= len(g.nodes) {
		panic(fmt.Sprintf("topo: unknown node %d", n))
	}
}

// Node returns the node with id n.
func (g *Graph) Node(n NodeID) Node { g.mustHave(n); return g.nodes[n] }

// Edge returns the edge with id e.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// Nodes returns all nodes in id order.
func (g *Graph) Nodes() []Node { return append([]Node(nil), g.nodes...) }

// Edges returns all edges in id order.
func (g *Graph) Edges() []Edge { return append([]Edge(nil), g.edges...) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Incident returns the edge ids incident to n.
func (g *Graph) Incident(n NodeID) []EdgeID {
	g.mustHave(n)
	return append([]EdgeID(nil), g.adj[n]...)
}

// Degree returns the number of edges incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Neighbors returns the neighbor node ids of n, sorted.
func (g *Graph) Neighbors(n NodeID) []NodeID {
	out := make([]NodeID, 0, len(g.adj[n]))
	for _, eid := range g.adj[n] {
		out = append(out, g.edges[eid].Other(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodesOfKind returns the ids of all nodes with the given kind, in order.
func (g *Graph) NodesOfKind(kind NodeKind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.adj[n] {
			m := g.edges[eid].Other(n)
			if !seen[m] {
				seen[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	return count == len(g.nodes)
}
