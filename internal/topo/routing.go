package topo

import (
	"container/heap"
	"fmt"
	"math"
)

// Path is a route through the graph: the node sequence and the edges
// taken between consecutive nodes (len(Edges) == len(Nodes)-1).
type Path struct {
	Nodes []NodeID
	Edges []EdgeID
}

// Hops returns the number of links traversed.
func (p Path) Hops() int { return len(p.Edges) }

// Valid reports whether the path's nodes and edges are consistent in g.
func (p Path) Valid(g *Graph) bool {
	if len(p.Nodes) == 0 || len(p.Edges) != len(p.Nodes)-1 {
		return false
	}
	for i, eid := range p.Edges {
		e := g.Edge(eid)
		if !(e.A == p.Nodes[i] && e.B == p.Nodes[i+1]) &&
			!(e.B == p.Nodes[i] && e.A == p.Nodes[i+1]) {
			return false
		}
	}
	return true
}

// EdgeWeight assigns a routing cost to an edge. HopCount treats every
// edge as cost 1; PropagationCost uses the edge's propagation delay.
type EdgeWeight func(Edge) float64

// HopCount weighs every edge 1.
func HopCount(Edge) float64 { return 1 }

// PropagationCost weighs an edge by its propagation delay plus one —
// the +1 keeps zero-delay edges from forming zero-cost cycles in path
// enumeration.
func PropagationCost(e Edge) float64 { return float64(e.PropNs) + 1 }

type pqItem struct {
	node NodeID
	dist float64
	idx  int
}

type pq []*pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x any)        { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Router computes and caches shortest paths over a fixed graph.
type Router struct {
	g      *Graph
	weight EdgeWeight
	// dist[s] and via[s] are per-source Dijkstra results, lazily built.
	dist map[NodeID][]float64
	via  map[NodeID][][]EdgeID // all equal-cost predecessor edges
}

// NewRouter builds a router over g with the given weight function.
func NewRouter(g *Graph, weight EdgeWeight) *Router {
	if weight == nil {
		weight = HopCount
	}
	return &Router{
		g: g, weight: weight,
		dist: make(map[NodeID][]float64),
		via:  make(map[NodeID][][]EdgeID),
	}
}

func (r *Router) run(src NodeID) {
	if _, ok := r.dist[src]; ok {
		return
	}
	n := r.g.NumNodes()
	dist := make([]float64, n)
	via := make([][]EdgeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := &pq{}
	heap.Push(q, &pqItem{node: src, dist: 0})
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, eid := range r.g.adj[it.node] {
			e := r.g.Edge(eid)
			w := r.weight(e)
			if w < 0 {
				panic("topo: negative edge weight")
			}
			m := e.Other(it.node)
			nd := it.dist + w
			switch {
			case nd < dist[m]:
				dist[m] = nd
				via[m] = []EdgeID{eid}
				heap.Push(q, &pqItem{node: m, dist: nd})
			case nd == dist[m]:
				via[m] = append(via[m], eid)
			}
		}
	}
	r.dist[src] = dist
	r.via[src] = via
}

// Distance returns the shortest-path cost from src to dst, or +Inf when
// unreachable.
func (r *Router) Distance(src, dst NodeID) float64 {
	r.run(src)
	return r.dist[src][dst]
}

// ErrNoPath is returned when dst is unreachable from src.
type ErrNoPath struct{ Src, Dst NodeID }

func (e ErrNoPath) Error() string {
	return fmt.Sprintf("topo: no path from %d to %d", e.Src, e.Dst)
}

// Path returns one shortest path from src to dst. Among equal-cost
// options it picks the lowest edge id at each step, so the choice is
// deterministic.
func (r *Router) Path(src, dst NodeID) (Path, error) {
	r.run(src)
	if math.IsInf(r.dist[src][dst], 1) {
		return Path{}, ErrNoPath{src, dst}
	}
	var revNodes []NodeID
	var revEdges []EdgeID
	cur := dst
	for cur != src {
		revNodes = append(revNodes, cur)
		options := r.via[src][cur]
		best := options[0]
		for _, o := range options[1:] {
			if o < best {
				best = o
			}
		}
		revEdges = append(revEdges, best)
		cur = r.g.Edge(best).Other(cur)
	}
	revNodes = append(revNodes, src)
	p := Path{
		Nodes: make([]NodeID, len(revNodes)),
		Edges: make([]EdgeID, len(revEdges)),
	}
	for i := range revNodes {
		p.Nodes[i] = revNodes[len(revNodes)-1-i]
	}
	for i := range revEdges {
		p.Edges[i] = revEdges[len(revEdges)-1-i]
	}
	return p, nil
}

// NextHop returns the first edge on the shortest path from src to dst,
// making the same deterministic lowest-edge-id choice at every step as
// Path, without materializing the node and edge slices. It is the
// allocation-free form FIB installation wants: only the egress edge at
// src matters there.
func (r *Router) NextHop(src, dst NodeID) (EdgeID, error) {
	r.run(src)
	if math.IsInf(r.dist[src][dst], 1) {
		return 0, ErrNoPath{src, dst}
	}
	cur := dst
	var last EdgeID
	for cur != src {
		options := r.via[src][cur]
		best := options[0]
		for _, o := range options[1:] {
			if o < best {
				best = o
			}
		}
		last = best
		cur = r.g.Edge(best).Other(cur)
	}
	return last, nil
}

// ECMPPath returns the shortest path selected by hashing flowKey over the
// equal-cost predecessor sets — deterministic per flow, diverse across
// flows, like switch ECMP.
func (r *Router) ECMPPath(src, dst NodeID, flowKey uint64) (Path, error) {
	r.run(src)
	if math.IsInf(r.dist[src][dst], 1) {
		return Path{}, ErrNoPath{src, dst}
	}
	var revNodes []NodeID
	var revEdges []EdgeID
	h := flowKey
	cur := dst
	for cur != src {
		revNodes = append(revNodes, cur)
		options := r.via[src][cur]
		h = h*0x9e3779b97f4a7c15 + 0x7f4a7c159e3779b9
		pick := options[int(h%uint64(len(options)))]
		revEdges = append(revEdges, pick)
		cur = r.g.Edge(pick).Other(cur)
	}
	revNodes = append(revNodes, src)
	p := Path{
		Nodes: make([]NodeID, len(revNodes)),
		Edges: make([]EdgeID, len(revEdges)),
	}
	for i := range revNodes {
		p.Nodes[i] = revNodes[len(revNodes)-1-i]
	}
	for i := range revEdges {
		p.Edges[i] = revEdges[len(revEdges)-1-i]
	}
	return p, nil
}

// PropagationNs sums the propagation delay along p.
func PropagationNs(g *Graph, p Path) int64 {
	var total int64
	for _, eid := range p.Edges {
		total += g.Edge(eid).PropNs
	}
	return total
}
