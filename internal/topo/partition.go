package topo

import "fmt"

// Partition assigns every node of a graph to one of Shards spatial
// shards. The assignment is part of the scenario: simulation outputs
// depend on it (shard layouts are folded into checkpoint digests), so
// partitions must be derived deterministically from the topology —
// never from runtime knobs like worker counts.
type Partition struct {
	Shards int
	Of     []int // node ID -> shard index
}

// Validate checks the partition covers g exactly: one assignment per
// node, every shard index in range, and no empty shard.
func (p Partition) Validate(g *Graph) error {
	if p.Shards < 1 {
		return fmt.Errorf("topo: partition has %d shards", p.Shards)
	}
	if len(p.Of) != g.NumNodes() {
		return fmt.Errorf("topo: partition covers %d nodes, graph has %d", len(p.Of), g.NumNodes())
	}
	seen := make([]bool, p.Shards)
	for n, s := range p.Of {
		if s < 0 || s >= p.Shards {
			return fmt.Errorf("topo: node %d assigned to shard %d outside [0,%d)", n, s, p.Shards)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			return fmt.Errorf("topo: shard %d is empty", s)
		}
	}
	return nil
}

// CutEdges returns the IDs of edges whose endpoints live on different
// shards — the links that become cross-shard message channels.
func (p Partition) CutEdges(g *Graph) []EdgeID {
	var cut []EdgeID
	for _, e := range g.Edges() {
		if p.Of[e.A] != p.Of[e.B] {
			cut = append(cut, e.ID)
		}
	}
	return cut
}

// MinCutPropNs returns the minimum propagation delay across all cut
// edges — the conservative lookahead bound for this partition — and
// whether the cut is non-empty. A partition with no cut edges imposes
// no lookahead bound at all (shards never interact).
func (p Partition) MinCutPropNs(g *Graph) (int64, bool) {
	min, any := int64(0), false
	for _, e := range g.Edges() {
		if p.Of[e.A] == p.Of[e.B] {
			continue
		}
		if !any || e.PropNs < min {
			min, any = e.PropNs, true
		}
	}
	return min, any
}

// PartitionGreedy builds a k-shard partition by growing breadth-first
// regions of roughly equal node count from successive unassigned seeds.
// It is deterministic (seeds and frontiers follow node-ID order) and
// keeps dense neighborhoods together, which for cellular topologies
// approximates the min-cut cell grouping. Structured topologies should
// prefer their native partition (for example CampusTopo.Partition);
// this is the generic fallback for arbitrary graphs.
func PartitionGreedy(g *Graph, k int) Partition {
	n := g.NumNodes()
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	p := Partition{Shards: k, Of: make([]int, n)}
	for i := range p.Of {
		p.Of[i] = -1
	}
	target := (n + k - 1) / k
	assigned := 0
	seed := 0
	for shard := 0; shard < k; shard++ {
		// Remaining shards must each get at least one node.
		quota := target
		if rest := n - assigned - (k - shard - 1); quota > rest {
			quota = rest
		}
		var queue []NodeID
		take := func(id NodeID) bool {
			if p.Of[id] != -1 {
				return false
			}
			p.Of[id] = shard
			assigned++
			quota--
			queue = append(queue, id)
			return true
		}
		for quota > 0 {
			if len(queue) == 0 {
				// Region exhausted (or first seed): jump to the next
				// unassigned node so disconnected graphs still fill.
				for seed < n && p.Of[seed] != -1 {
					seed++
				}
				if seed >= n {
					break
				}
				take(NodeID(seed))
				continue
			}
			id := queue[0]
			queue = queue[1:]
			for _, nb := range g.Neighbors(id) {
				if quota <= 0 {
					break
				}
				take(nb)
			}
		}
	}
	// Backstop: anything still unassigned joins the last shard.
	for i := range p.Of {
		if p.Of[i] == -1 {
			p.Of[i] = p.Shards - 1
		}
	}
	return p
}
