// Package iodevice implements the PROFINET device role: the field-level
// I/O station that turns sensor readings into cyclic input frames and
// applies received output frames to its actuators. Its safety behaviour
// is the one the paper's availability argument hinges on (§2.1, §4):
// when no valid output data arrives for the configured number of
// consecutive cycles, the device trips its watchdog and enters failsafe
// — actuators go to a safe state and production halts. Fig. 5's claim
// is exactly that InstaPLC keeps this from ever happening during a vPLC
// failure.
package iodevice

import (
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// State is the device's operational state.
type State int

// Device states.
const (
	StateIdle     State = iota // no controller connected
	StateOperate               // exchanging valid IO data
	StateFailsafe              // watchdog expired; outputs forced safe
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateOperate:
		return "operate"
	case StateFailsafe:
		return "failsafe"
	}
	return "unknown"
}

// Process models the physical side of the station: given the current
// actuator outputs, produce the next sensor inputs. Called once per IO
// cycle.
type Process func(now sim.Time, outputs []byte, inputs []byte)

// EchoProcess is a simple default: inputs mirror outputs (a loopback
// test station).
func EchoProcess(_ sim.Time, outputs, inputs []byte) { copy(inputs, outputs) }

// Device is an I/O station.
type Device struct {
	name    string
	engine  *sim.Engine
	hst     *simnet.Host
	process Process

	state      State
	controller frame.MAC
	arid       uint32
	cycle      time.Duration
	inputs     []byte
	outputs    []byte
	safe       []byte
	counter    uint16
	watchdog   *profinet.Watchdog
	ticker     *sim.Ticker

	// OnFailsafe fires on each failsafe entry.
	OnFailsafe func()
	// OnConnected fires when a controller establishes the CR.
	OnConnected func(arid uint32)

	// Counters for experiment assertions.
	TxCyclic, RxCyclic uint64
	FailsafeEvents     uint64
	RejectedConnects   uint64
	OutputUpdates      uint64
}

// New creates a device. safeOutputs is the failsafe actuator state
// (nil means all-zero of the CR's output length).
func New(e *sim.Engine, name string, mac frame.MAC, process Process, safeOutputs []byte) *Device {
	if process == nil {
		process = EchoProcess
	}
	d := &Device{name: name, engine: e, hst: simnet.NewHost(e, name, mac), process: process, safe: safeOutputs}
	d.hst.OnReceive(d.onFrame)
	return d
}

// Host returns the underlying simnet host for wiring.
func (d *Device) Host() *simnet.Host { return d.hst }

// State returns the current device state.
func (d *Device) State() State { return d.state }

// Outputs returns a copy of the currently applied actuator outputs.
func (d *Device) Outputs() []byte { return append([]byte(nil), d.outputs...) }

// Controller returns the MAC of the controlling PLC (zero when idle).
func (d *Device) Controller() frame.MAC { return d.controller }

func (d *Device) onFrame(f *frame.Frame) {
	if f.Type != frame.TypeProfinet {
		return
	}
	id, err := profinet.PeekFrameID(f.Payload)
	if err != nil {
		return
	}
	switch id {
	case profinet.FrameIDConnectReq:
		req, err := profinet.UnmarshalConnectRequest(f.Payload)
		if err != nil {
			return
		}
		d.onConnect(f.Src, req)
	case profinet.FrameIDCyclic:
		cd, err := profinet.UnmarshalCyclicData(f.Payload)
		if err != nil {
			return
		}
		d.onCyclic(f.Src, cd)
	case profinet.FrameIDRelease:
		rel, err := profinet.UnmarshalRelease(f.Payload)
		if err != nil || rel.ARID != d.arid {
			return
		}
		d.teardown()
	case profinet.FrameIDDCPIdentify:
		req, err := profinet.UnmarshalDCPIdentify(f.Payload)
		if err != nil || !profinet.MatchesFilter(d.name, req.Filter) {
			return
		}
		d.reply(f.Src, profinet.DCPIdentifyResponse{
			XID: req.XID, StationName: d.name, DeviceRole: profinet.RoleIODevice,
		}.Marshal())
	}
}

func (d *Device) onConnect(src frame.MAC, req profinet.ConnectRequest) {
	busy := d.state != StateIdle && d.controller != src
	// A controller whose CR died (we are in failsafe) may be replaced:
	// accept a new controller when the old one is silent.
	if busy && d.state == StateFailsafe {
		busy = false
		d.teardown()
	}
	if busy {
		d.RejectedConnects++
		d.reply(src, profinet.ConnectResponse{ARID: req.ARID, Accepted: false, Reason: profinet.ReasonBusy}.Marshal())
		return
	}
	if req.CycleUS == 0 || req.WatchdogFactor == 0 {
		d.reply(src, profinet.ConnectResponse{ARID: req.ARID, Accepted: false, Reason: profinet.ReasonBadParameters}.Marshal())
		return
	}
	// (Re-)establish.
	if d.ticker != nil {
		d.ticker.Stop()
	}
	if d.watchdog != nil {
		d.watchdog.Stop()
	}
	d.controller = src
	d.arid = req.ARID
	d.cycle = req.Cycle()
	d.inputs = make([]byte, req.InputLen)
	d.outputs = make([]byte, req.OutputLen)
	if d.safe == nil {
		d.safe = make([]byte, req.OutputLen)
	}
	d.counter = 0
	d.state = StateOperate
	d.watchdog = profinet.NewWatchdog(d.engine, d.cycle, int(req.WatchdogFactor), d.failsafe, d.recover)
	d.watchdog.Feed()
	d.ticker = d.engine.Every(d.engine.Now(), d.cycle, d.cycleTick)
	d.reply(src, profinet.ConnectResponse{ARID: req.ARID, Accepted: true}.Marshal())
	if d.OnConnected != nil {
		d.OnConnected(req.ARID)
	}
}

// cycleTick sends one input frame per IO cycle, whatever the state —
// a failsafe device keeps publishing its sensor view, as real devices
// do, so a recovering controller can resynchronize.
func (d *Device) cycleTick() {
	d.process(d.engine.Now(), d.outputs, d.inputs)
	status := profinet.StatusValid
	if d.state == StateOperate {
		status |= profinet.StatusRun
	}
	cd := profinet.CyclicData{
		ARID:         d.arid,
		CycleCounter: d.counter,
		Status:       status,
		Data:         append([]byte(nil), d.inputs...),
	}
	d.counter++
	d.TxCyclic++
	d.reply(d.controller, cd.Marshal())
}

func (d *Device) onCyclic(src frame.MAC, cd profinet.CyclicData) {
	if cd.ARID != d.arid || !cd.Valid() {
		return
	}
	// Outputs are accepted from whichever station currently speaks this
	// ARID: InstaPLC switches the upstream producer transparently, and
	// the device — like a real one keyed on frame id — does not care
	// which MAC the data comes from.
	_ = src
	d.RxCyclic++
	copy(d.outputs, cd.Data)
	d.OutputUpdates++
	if d.watchdog != nil {
		d.watchdog.Feed()
	}
}

// failsafe forces safe outputs and counts the event.
func (d *Device) failsafe() {
	d.state = StateFailsafe
	d.FailsafeEvents++
	copy(d.outputs, d.safe)
	if d.OnFailsafe != nil {
		d.OnFailsafe()
	}
	// Raise an alarm towards the (dead) controller; in-network
	// observers (InstaPLC) can see it even if the controller cannot.
	d.reply(d.controller, profinet.Alarm{ARID: d.arid, Code: profinet.AlarmWatchdogExpired}.Marshal())
}

// recover returns to operate when fresh output data arrives after a
// failsafe, announcing the return of the peer.
func (d *Device) recover() {
	d.state = StateOperate
	d.reply(d.controller, profinet.Alarm{ARID: d.arid, Code: profinet.AlarmReturnOfPeer}.Marshal())
}

func (d *Device) teardown() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
	if d.watchdog != nil {
		d.watchdog.Stop()
		d.watchdog = nil
	}
	d.state = StateIdle
	d.controller = frame.MAC{}
	d.arid = 0
}

func (d *Device) reply(dst frame.MAC, payload []byte) {
	if dst == (frame.MAC{}) {
		return
	}
	d.hst.Send(&frame.Frame{
		Dst:      dst,
		Tagged:   true,
		Priority: frame.PrioRT,
		VID:      10,
		Type:     frame.TypeProfinet,
		Payload:  payload,
	})
}
