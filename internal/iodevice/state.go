package iodevice

import "steelnet/internal/checkpoint"

// FoldState folds the device's application-relation state machine,
// process data and event counters.
func (dev *Device) FoldState(d *checkpoint.Digest) {
	d.Int(int(dev.state))
	d.Bytes(dev.controller[:])
	d.U64(uint64(dev.arid))
	d.I64(int64(dev.cycle))
	d.Bytes(dev.inputs)
	d.Bytes(dev.outputs)
	d.U64(uint64(dev.counter))
	d.U64(dev.TxCyclic)
	d.U64(dev.RxCyclic)
	d.U64(dev.FailsafeEvents)
	d.U64(dev.RejectedConnects)
	d.U64(dev.OutputUpdates)
	dev.hst.FoldState(d)
}
