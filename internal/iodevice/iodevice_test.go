package iodevice

import (
	"testing"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// bench wires a device to a bare scripted host standing in for a
// controller, so protocol details can be driven frame by frame.
func bench(t *testing.T, process Process, safe []byte) (*sim.Engine, *simnet.Host, *Device, *[]profinet.FrameID) {
	t.Helper()
	e := sim.NewEngine(1)
	ctl := simnet.NewHost(e, "ctl", frame.NewMAC(1))
	dev := New(e, "dev", frame.NewMAC(2), process, safe)
	simnet.Connect(e, "l", ctl.Port(), dev.Host().Port(), 100e6, 0)
	var seen []profinet.FrameID
	ctl.OnReceive(func(f *frame.Frame) {
		if id, err := profinet.PeekFrameID(f.Payload); err == nil {
			seen = append(seen, id)
		}
	})
	return e, ctl, dev, &seen
}

func sendPN(ctl *simnet.Host, payload []byte) {
	ctl.Send(&frame.Frame{Dst: frame.NewMAC(2), Tagged: true, Priority: frame.PrioRT, VID: 10, Type: frame.TypeProfinet, Payload: payload})
}

func req(arid uint32) profinet.ConnectRequest {
	return profinet.ConnectRequest{ARID: arid, CycleUS: 1000, WatchdogFactor: 3, InputLen: 2, OutputLen: 2}
}

func TestIdleDeviceIgnoresCyclic(t *testing.T) {
	e, ctl, dev, _ := bench(t, nil, nil)
	sendPN(ctl, profinet.CyclicData{ARID: 1, Status: profinet.StatusValid, Data: []byte{1, 2}}.Marshal())
	e.Run()
	if dev.RxCyclic != 0 {
		t.Fatal("idle device consumed cyclic data")
	}
	if dev.State() != StateIdle {
		t.Fatalf("state = %v", dev.State())
	}
}

// feedOutputs drives the device with fresh output data every cycle,
// standing in for a live controller.
func feedOutputs(e *sim.Engine, ctl *simnet.Host, arid uint32, data []byte) *sim.Ticker {
	return e.Every(e.Now(), time.Millisecond, func() {
		sendPN(ctl, profinet.CyclicData{ARID: arid, Status: profinet.StatusValid | profinet.StatusRun, Data: data}.Marshal())
	})
}

func TestConnectAcceptAndCyclicStart(t *testing.T) {
	e, ctl, dev, seen := bench(t, nil, nil)
	sendPN(ctl, req(5).Marshal())
	e.RunUntil(sim.Time(time.Millisecond))
	feedOutputs(e, ctl, 5, []byte{0, 0})
	e.RunUntil(sim.Time(10 * time.Millisecond))
	if dev.State() != StateOperate {
		t.Fatalf("state = %v", dev.State())
	}
	// Controller saw a connect response and then cyclic input frames.
	if len(*seen) < 2 || (*seen)[0] != profinet.FrameIDConnectResp {
		t.Fatalf("seen = %v", *seen)
	}
	if dev.TxCyclic < 8 {
		t.Fatalf("cyclic frames = %d", dev.TxCyclic)
	}
}

func TestBadParametersRejected(t *testing.T) {
	e, ctl, dev, seen := bench(t, nil, nil)
	bad := profinet.ConnectRequest{ARID: 5, CycleUS: 0, WatchdogFactor: 3}
	sendPN(ctl, bad.Marshal())
	e.Run()
	if dev.State() != StateIdle {
		t.Fatal("bad request accepted")
	}
	if len(*seen) != 1 || (*seen)[0] != profinet.FrameIDConnectResp {
		t.Fatalf("seen = %v", *seen)
	}
}

func TestProcessTransformsOutputsToInputs(t *testing.T) {
	// Process: input[0] = output[0] + 1 (a counter station).
	proc := func(_ sim.Time, out, in []byte) {
		if len(out) > 0 && len(in) > 0 {
			in[0] = out[0] + 1
		}
	}
	e, ctl, dev, _ := bench(t, proc, nil)
	var lastInput byte
	sendPN(ctl, req(5).Marshal())
	ctl.OnReceive(func(f *frame.Frame) {
		if cd, err := profinet.UnmarshalCyclicData(f.Payload); err == nil {
			lastInput = cd.Data[0]
		}
	})
	e.RunUntil(sim.Time(time.Millisecond))
	feedOutputs(e, ctl, 5, []byte{41, 0})
	e.RunUntil(sim.Time(10 * time.Millisecond))
	if lastInput != 42 {
		t.Fatalf("input = %d, want 42", lastInput)
	}
	if dev.OutputUpdates == 0 {
		t.Fatal("output update not counted")
	}
}

func TestWatchdogFailsafeForcesSafeOutputs(t *testing.T) {
	e, ctl, dev, _ := bench(t, nil, []byte{0xde, 0xad})
	sendPN(ctl, req(5).Marshal())
	e.RunUntil(sim.Time(2 * time.Millisecond))
	sendPN(ctl, profinet.CyclicData{ARID: 5, Status: profinet.StatusValid, Data: []byte{1, 2}}.Marshal())
	e.RunUntil(sim.Time(4 * time.Millisecond))
	if dev.Outputs()[0] != 1 {
		t.Fatal("outputs not applied")
	}
	// Silence: watchdog (3 × 1 ms) trips, safe outputs forced.
	e.RunUntil(sim.Time(20 * time.Millisecond))
	if dev.State() != StateFailsafe {
		t.Fatalf("state = %v", dev.State())
	}
	out := dev.Outputs()
	if out[0] != 0xde || out[1] != 0xad {
		t.Fatalf("outputs = % x, want safe state", out)
	}
}

func TestFailsafeRaisesAlarm(t *testing.T) {
	e, ctl, _, seen := bench(t, nil, nil)
	sendPN(ctl, req(5).Marshal())
	e.RunUntil(sim.Time(2 * time.Millisecond))
	sendPN(ctl, profinet.CyclicData{ARID: 5, Status: profinet.StatusValid, Data: []byte{0, 0}}.Marshal())
	e.RunUntil(sim.Time(20 * time.Millisecond))
	found := false
	for _, id := range *seen {
		if id == profinet.FrameIDAlarm {
			found = true
		}
	}
	if !found {
		t.Fatal("no alarm on watchdog expiry")
	}
}

func TestRecoveryFromFailsafe(t *testing.T) {
	e, ctl, dev, _ := bench(t, nil, nil)
	sendPN(ctl, req(5).Marshal())
	e.RunUntil(sim.Time(2 * time.Millisecond))
	sendPN(ctl, profinet.CyclicData{ARID: 5, Status: profinet.StatusValid, Data: []byte{7, 7}}.Marshal())
	e.RunUntil(sim.Time(20 * time.Millisecond)) // trip
	if dev.State() != StateFailsafe {
		t.Fatalf("state = %v", dev.State())
	}
	// Fresh output data returns and keeps flowing: device recovers.
	feedOutputs(e, ctl, 5, []byte{8, 8})
	e.RunUntil(e.Now().Add(5 * time.Millisecond))
	if dev.State() != StateOperate {
		t.Fatalf("state after recovery = %v", dev.State())
	}
	if dev.Outputs()[0] != 8 {
		t.Fatal("recovered outputs not applied")
	}
}

func TestFailsafeDeviceKeepsPublishingInputs(t *testing.T) {
	e, ctl, dev, _ := bench(t, nil, nil)
	sendPN(ctl, req(5).Marshal())
	e.RunUntil(sim.Time(2 * time.Millisecond))
	sendPN(ctl, profinet.CyclicData{ARID: 5, Status: profinet.StatusValid, Data: []byte{0, 0}}.Marshal())
	e.RunUntil(sim.Time(20 * time.Millisecond))
	tx := dev.TxCyclic
	e.RunUntil(sim.Time(40 * time.Millisecond))
	if dev.TxCyclic <= tx {
		t.Fatal("failsafe device stopped publishing inputs")
	}
}

func TestControllerReplacementAfterFailsafe(t *testing.T) {
	e := sim.NewEngine(1)
	c1 := simnet.NewHost(e, "c1", frame.NewMAC(1))
	c2 := simnet.NewHost(e, "c2", frame.NewMAC(3))
	dev := New(e, "dev", frame.NewMAC(2), nil, nil)
	sw := simnet.NewSwitch(e, "sw", 3, simnet.SwitchConfig{Latency: sim.Microsecond})
	simnet.Connect(e, "1", c1.Port(), sw.Port(0), 100e6, 0)
	simnet.Connect(e, "2", c2.Port(), sw.Port(1), 100e6, 0)
	simnet.Connect(e, "d", dev.Host().Port(), sw.Port(2), 100e6, 0)
	var c2Accepted bool
	c2.OnReceive(func(f *frame.Frame) {
		if resp, err := profinet.UnmarshalConnectResponse(f.Payload); err == nil && resp.Accepted {
			c2Accepted = true
		}
	})
	c1.Send(&frame.Frame{Dst: frame.NewMAC(2), Type: frame.TypeProfinet, Payload: req(5).Marshal()})
	e.RunUntil(sim.Time(2 * time.Millisecond))
	// c1 dies silently; device trips at ~3 ms of silence.
	e.RunUntil(sim.Time(20 * time.Millisecond))
	if dev.State() != StateFailsafe {
		t.Fatalf("state = %v", dev.State())
	}
	// c2 takes over.
	c2.Send(&frame.Frame{Dst: frame.NewMAC(2), Type: frame.TypeProfinet, Payload: req(9).Marshal()})
	e.RunUntil(sim.Time(40 * time.Millisecond))
	if !c2Accepted {
		t.Fatal("replacement controller rejected")
	}
	if dev.Controller() != c2.MAC() {
		t.Fatal("controller not switched")
	}
}

func TestReleaseTearsDown(t *testing.T) {
	e, ctl, dev, _ := bench(t, nil, nil)
	sendPN(ctl, req(5).Marshal())
	e.RunUntil(sim.Time(5 * time.Millisecond))
	sendPN(ctl, profinet.Release{ARID: 5}.Marshal())
	e.RunUntil(sim.Time(10 * time.Millisecond))
	if dev.State() != StateIdle {
		t.Fatalf("state = %v", dev.State())
	}
	tx := dev.TxCyclic
	e.RunUntil(sim.Time(20 * time.Millisecond))
	if dev.TxCyclic != tx {
		t.Fatal("released device kept sending")
	}
}

func TestStateString(t *testing.T) {
	if StateIdle.String() != "idle" || StateOperate.String() != "operate" || StateFailsafe.String() != "failsafe" {
		t.Fatal("state names broken")
	}
}

func TestReturnOfPeerAlarmOnRecovery(t *testing.T) {
	e, ctl, dev, _ := bench(t, nil, nil)
	var codes []uint16
	ctl.OnReceive(func(f *frame.Frame) {
		if a, err := profinet.UnmarshalAlarm(f.Payload); err == nil {
			codes = append(codes, a.Code)
		}
	})
	sendPN(ctl, req(5).Marshal())
	e.RunUntil(sim.Time(2 * time.Millisecond))
	sendPN(ctl, profinet.CyclicData{ARID: 5, Status: profinet.StatusValid, Data: []byte{1, 1}}.Marshal())
	e.RunUntil(sim.Time(20 * time.Millisecond)) // silence -> failsafe
	feedOutputs(e, ctl, 5, []byte{2, 2})        // data returns
	e.RunUntil(sim.Time(30 * time.Millisecond))
	if dev.State() != StateOperate {
		t.Fatalf("state = %v", dev.State())
	}
	var sawExpiry, sawReturn bool
	for _, c := range codes {
		if c == profinet.AlarmWatchdogExpired {
			sawExpiry = true
		}
		if c == profinet.AlarmReturnOfPeer {
			sawReturn = true
		}
	}
	if !sawExpiry || !sawReturn {
		t.Fatalf("alarm codes = %v, want expiry then return-of-peer", codes)
	}
}
