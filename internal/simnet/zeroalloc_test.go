package simnet

import (
	"testing"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// fwdPath builds the minimal host→switch→host topology used by the
// zero-overhead guards and returns a closure that pushes one pooled
// frame end to end.
func fwdPath(seed uint64, tr *telemetry.Tracer) (*sim.Engine, func()) {
	e := sim.NewEngine(seed)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{Latency: sim.Microsecond})
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	Connect(e, "a", src.Port(), sw.Port(0), 10e9, 0)
	Connect(e, "b", dst.Port(), sw.Port(1), 10e9, 0)
	sw.AddStatic(dst.MAC(), 1)
	pool := &frame.Pool{}
	dst.OnReceive(pool.Put)
	if tr != nil {
		tr.Bind(e)
		sw.SetTracer(tr)
		src.SetTracer(tr)
		dst.SetTracer(tr)
	}
	return e, func() {
		f := pool.Get(64)
		f.Dst = dst.MAC()
		src.Send(f)
		e.Run()
	}
}

// TestForwardingHotPathZeroAllocs is the zero-overhead contract of the
// telemetry layer: with no tracer attached, a full host→switch→host
// frame journey — enqueue, serialization, pipeline delay, propagation,
// delivery, pool recycle — allocates nothing in steady state. CI runs
// this; see also BenchmarkSwitchForwarding.
func TestForwardingHotPathZeroAllocs(t *testing.T) {
	_, send := fwdPath(1, nil)
	// Warm every free list touched by the path: the frame pool, the
	// ports' flight contexts, the switch's forward contexts, the event
	// arena and the heap's backing array.
	for i := 0; i < 64; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("forwarding hot path allocates %.1f allocs/op with telemetry disabled; want 0", allocs)
	}
}

// TestQueuePathZeroAllocs pins the enqueue/dequeue path on its own: a
// saturated port draining through a warmed PriorityQueue.
func TestQueuePathZeroAllocs(t *testing.T) {
	q := NewPriorityQueue(64)
	frames := make([]*frame.Frame, 32)
	for i := range frames {
		frames[i] = &frame.Frame{Tagged: true, Priority: frame.PCP(i % 8)}
	}
	cycle := func() {
		for _, f := range frames {
			q.Push(f)
		}
		for q.Pop() != nil {
		}
	}
	cycle()
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("queue path allocates %.1f allocs/op; want 0", allocs)
	}
}

// TestDisabledTelemetryIdenticalToSeed checks the other half of the
// contract: attaching no tracer leaves counters exactly as a run that
// never imported telemetry — i.e. the instrumented build is
// observationally identical when disabled.
func TestDisabledTelemetryIdenticalToSeed(t *testing.T) {
	run := func(tr *telemetry.Tracer) (uint64, sim.Time) {
		e, send := fwdPath(42, tr)
		for i := 0; i < 100; i++ {
			send()
		}
		return e.Stats().EventsFired, e.Now()
	}
	fired0, now0 := run(nil)
	fired1, now1 := run(telemetry.NewTracer(nil))
	if fired0 != fired1 || now0 != now1 {
		t.Fatalf("tracing changed the simulation: disabled (%d events, t=%v) vs enabled (%d events, t=%v)",
			fired0, now0, fired1, now1)
	}
}

// TestTracerLifecycleEvents checks one frame's journey produces the
// expected lifecycle sequence with a tracer attached.
func TestTracerLifecycleEvents(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	_, send := fwdPath(1, tr)
	send()
	var kinds []telemetry.Kind
	for _, ev := range tr.Events() {
		kinds = append(kinds, ev.Kind)
	}
	want := []telemetry.Kind{
		telemetry.KindHostTx,  // src hands the frame down
		telemetry.KindEnqueue, // src port queue
		telemetry.KindTxStart, // src wire
		telemetry.KindDeliver, // arrives at sw port 0
		telemetry.KindForward, // FIB hit toward port 1
		telemetry.KindEnqueue, // sw port 1 queue
		telemetry.KindTxStart, // sw wire
		telemetry.KindDeliver, // arrives at dst
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (full: %v)", i, kinds[i], want[i], kinds)
		}
	}
	// All events carry the same frame id, assigned on first touch.
	for _, ev := range tr.Events() {
		if ev.Frame != 1 {
			t.Fatalf("event %v has frame id %d, want 1", ev.Kind, ev.Frame)
		}
	}
	// The final delivery reports a positive end-to-end latency.
	last := tr.Events()[len(tr.Events())-1]
	if last.Node != "dst" || last.Aux <= 0 {
		t.Fatalf("final deliver = %+v, want node dst with positive latency", last)
	}
}

// TestAccountingConservation drives traffic into an overflowing port and
// checks the ledger balances mid-run and after drain, and that the
// legacy Drops counter decomposes exactly into its new causes.
func TestAccountingConservation(t *testing.T) {
	e := sim.NewEngine(7)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{Latency: sim.Microsecond})
	sw.SetQueueDepth(4)
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	// Slow egress link so the switch queue overflows.
	Connect(e, "a", src.Port(), sw.Port(0), 1e9, 0)
	Connect(e, "b", dst.Port(), sw.Port(1), 1e6, 0)
	sw.AddStatic(dst.MAC(), 1)
	sw.AddStatic(src.MAC(), 0)
	pool := &frame.Pool{}
	dst.OnReceive(pool.Put)
	for _, p := range []*Port{src.Port(), dst.Port(), sw.Port(0), sw.Port(1)} {
		p.OnDrop = pool.Put
	}
	ports := []*Port{src.Port(), dst.Port(), sw.Port(0), sw.Port(1)}

	for burst := 0; burst < 20; burst++ {
		for i := 0; i < 10; i++ {
			f := pool.Get(200)
			f.Dst = dst.MAC()
			if !src.Send(f) {
				pool.Put(f)
			}
		}
		// Mid-run cut: frames are queued and in flight, the identity
		// must still balance.
		if err := Account(ports...).Check(); err != nil {
			t.Fatalf("mid-run burst %d: %v", burst, err)
		}
		e.RunFor(100 * sim.Microsecond)
	}
	e.Run()
	a := Account(ports...)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.Queued != 0 || a.InFlight != 0 {
		t.Fatalf("drained network still has queued=%d in-flight=%d", a.Queued, a.InFlight)
	}
	if a.OverflowDrops == 0 {
		t.Fatal("scenario was meant to overflow the switch egress queue")
	}
	if pool.Outstanding() != 0 {
		t.Fatalf("frame pool leak: %d outstanding", pool.Outstanding())
	}
	for _, p := range ports {
		if got := p.OverflowDrops + p.DownDrops + p.ShaperDrops + p.FlushedDrops; got != p.Drops {
			t.Fatalf("port %s/%d: Drops=%d but causes sum to %d", p.Owner.Name(), p.Index, p.Drops, got)
		}
	}
}
