package simnet

import (
	"testing"

	"steelnet/internal/frame"
)

func TestClassRingGrowthIsPowerOfTwo(t *testing.T) {
	// Grow through several doublings with a wrapped head each time: the
	// unroll in grow() must keep FIFO order, and capacity must stay a
	// power of two or the mask indexing silently corrupts the ring.
	var r classRing
	next, want := 0, 0
	mk := func(i int) *frame.Frame { return &frame.Frame{Meta: frame.Meta{FlowID: uint32(i)}} }
	for _, target := range []int{8, 16, 32, 64, 128} {
		// Wrap the head before forcing the next doubling.
		for i := 0; i < 3; i++ {
			r.push(mk(next))
			next++
		}
		for i := 0; i < 3; i++ {
			if f := r.pop(); int(f.Meta.FlowID) != want {
				t.Fatalf("pre-growth FIFO broken: got %d, want %d", f.Meta.FlowID, want)
			} else {
				want++
			}
		}
		for r.n < target {
			r.push(mk(next))
			next++
		}
		if got := len(r.buf); got != target {
			t.Fatalf("capacity after growing to %d frames = %d, want %d", r.n, got, target)
		}
		if len(r.buf)&(len(r.buf)-1) != 0 {
			t.Fatalf("capacity %d is not a power of two", len(r.buf))
		}
	}
	// Drain everything: order must hold across every doubling above.
	for f := r.pop(); f != nil; f = r.pop() {
		if int(f.Meta.FlowID) != want {
			t.Fatalf("post-growth FIFO broken: got %d, want %d", f.Meta.FlowID, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d frames, pushed %d", want, next)
	}
	if r.peek() != nil {
		t.Fatal("peek non-nil on empty ring")
	}
}

func TestPriorityQueuePerPCPOrdering(t *testing.T) {
	// Enqueue a round-robin mix over all eight classes, then verify the
	// global drain order: strictly descending PCP, FIFO within each.
	q := NewPriorityQueue(64)
	const perClass = 5
	for i := 0; i < perClass; i++ {
		for pcp := 0; pcp < 8; pcp++ {
			ok := q.Push(&frame.Frame{
				Tagged:   true,
				Priority: frame.PCP(pcp),
				Meta:     frame.Meta{FlowID: uint32(pcp*100 + i)},
			})
			if !ok {
				t.Fatalf("push pcp=%d i=%d rejected", pcp, i)
			}
		}
	}
	for pcp := 7; pcp >= 0; pcp-- {
		for i := 0; i < perClass; i++ {
			f := q.Pop()
			if f == nil {
				t.Fatalf("queue empty at pcp=%d i=%d", pcp, i)
			}
			if want := uint32(pcp*100 + i); f.Meta.FlowID != want {
				t.Fatalf("drain order: got flow %d, want %d", f.Meta.FlowID, want)
			}
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after full drain", q.Len())
	}
	for pcp := 0; pcp < 8; pcp++ {
		if q.EnqueuedPerClass[pcp] != perClass {
			t.Fatalf("EnqueuedPerClass[%d] = %d, want %d", pcp, q.EnqueuedPerClass[pcp], perClass)
		}
	}
}

func TestPriorityQueueUntaggedRidesBestEffort(t *testing.T) {
	// An untagged frame's Priority field is wire-meaningless and must not
	// buy it a better class: it queues at PCP 0 behind nothing and ahead
	// of nothing tagged.
	q := NewPriorityQueue(8)
	q.Push(&frame.Frame{Tagged: false, Priority: frame.PrioNetControl, Meta: frame.Meta{FlowID: 1}})
	q.Push(&frame.Frame{Tagged: true, Priority: frame.PrioML, Meta: frame.Meta{FlowID: 2}})
	if q.ClassLen(0) != 1 || q.ClassLen(frame.PrioNetControl) != 0 {
		t.Fatalf("untagged frame queued at PCP %d", frame.PrioNetControl)
	}
	if f := q.Pop(); f.Meta.FlowID != 2 {
		t.Fatalf("tagged ML frame did not outrank untagged: popped flow %d", f.Meta.FlowID)
	}
	if f := q.Pop(); f.Meta.FlowID != 1 {
		t.Fatalf("untagged frame lost: popped flow %d", f.Meta.FlowID)
	}
}

func TestPriorityQueueDrainOrderAndReset(t *testing.T) {
	q := NewPriorityQueue(8)
	for _, pcp := range []frame.PCP{0, 6, 3, 6, 0, 3} {
		q.Push(&frame.Frame{Tagged: true, Priority: pcp, Meta: frame.Meta{FlowID: uint32(pcp)}})
	}
	var got []frame.PCP
	q.Drain(func(f *frame.Frame) { got = append(got, frame.PCP(f.Meta.FlowID)) })
	want := []frame.PCP{6, 6, 3, 3, 0, 0}
	if len(got) != len(want) {
		t.Fatalf("drained %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
	if q.Len() != 0 || q.Pop() != nil {
		t.Fatal("Drain left frames behind")
	}
	// Draining an empty queue calls nothing.
	q.Drain(func(*frame.Frame) { t.Fatal("drain callback on empty queue") })
}

func TestPriorityQueueMinimumLimitClamp(t *testing.T) {
	q := NewPriorityQueue(0) // clamps to 1
	if !q.Push(&frame.Frame{}) {
		t.Fatal("first push rejected at clamped limit")
	}
	if q.Push(&frame.Frame{}) {
		t.Fatal("second push accepted above clamped limit")
	}
	if q.DroppedPerClass[0] != 1 {
		t.Fatalf("DroppedPerClass[0] = %d, want 1", q.DroppedPerClass[0])
	}
}
