package simnet

import (
	"testing"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
)

// captureSink records every INT stack handed to it, the way the
// collector does, without coupling the test to internal/int.
type captureSink struct {
	stacks []frame.INTStack
	atNS   []int64
}

func (c *captureSink) SinkINT(node string, f *frame.Frame, nowNS int64) {
	c.stacks = append(c.stacks, *f.INT.Clone())
	c.atNS = append(c.atNS, nowNS)
}

// intPath is fwdPath with the hosts playing INT source and sink roles.
func intPath(seed uint64, maxHops int, strict bool) (*sim.Engine, *Switch, *captureSink, func() bool) {
	e := sim.NewEngine(seed)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{Latency: sim.Microsecond})
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	Connect(e, "a", src.Port(), sw.Port(0), 10e9, 0)
	Connect(e, "b", dst.Port(), sw.Port(1), 10e9, 0)
	sw.AddStatic(dst.MAC(), 1)
	src.SetINTSource(7, maxHops, strict)
	sink := &captureSink{}
	dst.SetINTSink(sink)
	pool := &frame.Pool{}
	dst.OnReceive(func(f *frame.Frame) {
		if f.INT != nil {
			panic("INT stack reached the handler unstripped")
		}
		pool.Put(f)
	})
	return e, sw, sink, func() bool {
		f := pool.Get(64)
		f.Dst = dst.MAC()
		ok := src.Send(f)
		e.Run()
		return ok
	}
}

func TestINTEndToEndStamping(t *testing.T) {
	_, _, sink, send := intPath(1, 8, false)
	for i := 0; i < 3; i++ {
		send()
	}
	if len(sink.stacks) != 3 {
		t.Fatalf("sink saw %d stacks, want 3", len(sink.stacks))
	}
	for i, st := range sink.stacks {
		if st.Source != "src" || st.FlowID != 7 {
			t.Fatalf("stack %d identity = %s/%d", i, st.Source, st.FlowID)
		}
		if st.Seq != uint32(i+1) {
			t.Fatalf("stack %d seq = %d, want 1-based %d", i, st.Seq, i+1)
		}
		if len(st.Hops) != 1 || st.Hops[0].Node != "sw" {
			t.Fatalf("stack %d hops = %+v, want single sw transit", i, st.Hops)
		}
		// Jitter is zero, so the hop latency is exactly the switch's
		// configured pipeline latency.
		if got := st.Hops[0].HopLatencyNS(); got != int64(sim.Microsecond) {
			t.Fatalf("stack %d hop latency = %dns, want %dns", i, got, int64(sim.Microsecond))
		}
		if st.Hops[0].DropRisk {
			t.Fatalf("stack %d flags drop risk on an idle queue", i)
		}
		// End-to-end: sink time after source time, by at least the hop.
		if e2e := sink.atNS[i] - st.SourceNS; e2e < st.Hops[0].HopLatencyNS() {
			t.Fatalf("stack %d e2e %dns < hop latency", i, e2e)
		}
	}
}

func TestINTLenientOverflowForwardsUnstamped(t *testing.T) {
	e := sim.NewEngine(1)
	sw1 := NewSwitch(e, "sw1", 2, SwitchConfig{Latency: sim.Microsecond})
	sw2 := NewSwitch(e, "sw2", 2, SwitchConfig{Latency: sim.Microsecond})
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	Connect(e, "a", src.Port(), sw1.Port(0), 10e9, 0)
	Connect(e, "m", sw1.Port(1), sw2.Port(0), 10e9, 0)
	Connect(e, "b", dst.Port(), sw2.Port(1), 10e9, 0)
	sw1.AddStatic(dst.MAC(), 1)
	sw2.AddStatic(dst.MAC(), 1)
	src.SetINTSource(1, 1, false) // room for one hop, lenient
	sink := &captureSink{}
	dst.SetINTSink(sink)
	dst.OnReceive(func(*frame.Frame) {})

	f := &frame.Frame{Dst: dst.MAC(), Payload: make([]byte, 46)}
	src.Send(f)
	e.Run()

	if len(sink.stacks) != 1 {
		t.Fatalf("sink saw %d stacks, want 1", len(sink.stacks))
	}
	st := sink.stacks[0]
	if len(st.Hops) != 1 || st.Hops[0].Node != "sw1" {
		t.Fatalf("hops = %+v, want only sw1 (sw2 out of room)", st.Hops)
	}
	if sw1.INTDrops != 0 || sw2.INTDrops != 0 {
		t.Fatalf("lenient overflow counted drops: sw1=%d sw2=%d", sw1.INTDrops, sw2.INTDrops)
	}
}

func TestINTStrictOverflowDrops(t *testing.T) {
	e := sim.NewEngine(1)
	sw1 := NewSwitch(e, "sw1", 2, SwitchConfig{Latency: sim.Microsecond})
	sw2 := NewSwitch(e, "sw2", 2, SwitchConfig{Latency: sim.Microsecond})
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	Connect(e, "a", src.Port(), sw1.Port(0), 10e9, 0)
	Connect(e, "m", sw1.Port(1), sw2.Port(0), 10e9, 0)
	Connect(e, "b", dst.Port(), sw2.Port(1), 10e9, 0)
	sw1.AddStatic(dst.MAC(), 1)
	sw2.AddStatic(dst.MAC(), 1)
	src.SetINTSource(1, 1, true) // room for one hop, strict
	sink := &captureSink{}
	dst.SetINTSink(sink)
	pool := &frame.Pool{}
	dst.OnReceive(pool.Put)
	ports := []*Port{src.Port(), dst.Port(), sw1.Port(0), sw1.Port(1), sw2.Port(0), sw2.Port(1)}
	for _, p := range ports {
		p.OnDrop = pool.Put
	}

	const n = 5
	for i := 0; i < n; i++ {
		f := pool.Get(64)
		f.Dst = dst.MAC()
		src.Send(f)
		e.Run()
	}

	if len(sink.stacks) != 0 {
		t.Fatalf("sink saw %d stacks; strict frames must die at sw2", len(sink.stacks))
	}
	if sw1.INTDrops != 0 {
		t.Fatalf("sw1 counted %d INT drops, want 0 (stack fits there)", sw1.INTDrops)
	}
	if sw2.INTDrops != n {
		t.Fatalf("sw2 counted %d INT drops, want %d", sw2.INTDrops, n)
	}
	// INT drops are inside-switch deaths, outside the egress identity —
	// the ledger must still balance with them counted separately.
	a := Account(ports...)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.INTDrops != n {
		t.Fatalf("accounting INTDrops = %d, want %d", a.INTDrops, n)
	}
	if pool.Outstanding() != 0 {
		t.Fatalf("frame pool leak: %d outstanding after INT drops", pool.Outstanding())
	}
}

func TestINTQueueDepthAndDropRisk(t *testing.T) {
	e := sim.NewEngine(7)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{Latency: sim.Microsecond})
	sw.SetQueueDepth(4)
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	Connect(e, "a", src.Port(), sw.Port(0), 1e9, 0)
	// Slow egress so the switch queue backs up while we keep sending.
	Connect(e, "b", dst.Port(), sw.Port(1), 1e6, 0)
	sw.AddStatic(dst.MAC(), 1)
	src.SetINTSource(1, 8, false)
	sink := &captureSink{}
	dst.SetINTSink(sink)
	dst.OnReceive(func(*frame.Frame) {})
	for _, p := range []*Port{src.Port(), dst.Port(), sw.Port(0), sw.Port(1)} {
		p.OnDrop = func(*frame.Frame) {}
	}

	for i := 0; i < 12; i++ {
		f := &frame.Frame{Dst: dst.MAC(), Payload: make([]byte, 200)}
		src.Send(f)
	}
	e.Run()

	var sawDepth, sawRisk bool
	for _, st := range sink.stacks {
		if st.Hops[0].QueueDepth > 0 {
			sawDepth = true
		}
		if st.Hops[0].DropRisk {
			sawRisk = true
		}
	}
	if !sawDepth || !sawRisk {
		t.Fatalf("congested egress never surfaced in INT records: depth=%v risk=%v", sawDepth, sawRisk)
	}
}

// TestINTEnabledAllocBudget bounds the price of telemetry-bearing
// frames: attaching the stack and stamping one hop costs exactly the
// stack header and its hop slice — two allocations — per frame. The
// zero-alloc guard (TestForwardingHotPathZeroAllocs) covers INT
// disabled; this is the other half of the contract.
func TestINTEnabledAllocBudget(t *testing.T) {
	_, _, sink, send := intPath(1, 8, false)
	for i := 0; i < 64; i++ {
		send()
	}
	sink.stacks = nil // don't measure the capture slice growing
	sink.atNS = nil
	run := func() {
		sink.stacks = sink.stacks[:0]
		sink.atNS = sink.atNS[:0]
		send()
	}
	run()
	if allocs := testing.AllocsPerRun(200, run); allocs > 3 {
		t.Fatalf("INT-enabled path allocates %.1f allocs/op; budget is 3 (stack + hops + sink clone)", allocs)
	}
}

// TestINTPooledPathZeroAllocs is the pooled half of the telemetry cost
// contract: with source and sink sharing an INTPool (as the mltopo and
// reflection harnesses wire them) and a sink that folds without
// retaining, the whole INT-enabled journey allocates nothing in steady
// state — telemetry stacks recycle exactly like frames.
func TestINTPooledPathZeroAllocs(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{Latency: sim.Microsecond})
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	Connect(e, "a", src.Port(), sw.Port(0), 10e9, 0)
	Connect(e, "b", dst.Port(), sw.Port(1), 10e9, 0)
	sw.AddStatic(dst.MAC(), 1)
	src.SetINTSource(7, 8, false)
	dst.SetINTSink(discardSink{})
	intPool := &frame.INTPool{}
	src.SetINTPool(intPool)
	dst.SetINTPool(intPool)
	pool := &frame.Pool{}
	dst.OnReceive(pool.Put)
	send := func() {
		f := pool.Get(64)
		f.Dst = dst.MAC()
		src.Send(f)
		e.Run()
	}
	for i := 0; i < 64; i++ {
		send() // warm the frame and stack pools
	}
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("pooled INT path allocates %.1f allocs/op; want 0", allocs)
	}
	if intPool.Reused == 0 || intPool.News > intPool.Reused {
		t.Fatalf("stack pool not recycling: news=%d reused=%d puts=%d",
			intPool.News, intPool.Reused, intPool.Puts)
	}
}
