package simnet

import (
	"errors"
	"testing"

	"steelnet/internal/checkpoint"
	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/topo"
)

// twoCellGraph builds the smallest interesting sharded topology: two
// switches joined by one backbone edge with propagation prop, two hosts
// on each. The partition puts each switch and its hosts on its own
// shard, so the backbone is the only cut edge.
func twoCellGraph(prop int64) (*topo.Graph, topo.Partition) {
	g := topo.NewGraph("twocell")
	swA := g.AddNode("swA", topo.KindSwitch)
	swB := g.AddNode("swB", topo.KindSwitch)
	g.AddNode("a0", topo.KindHost)
	g.AddNode("a1", topo.KindHost)
	g.AddNode("b0", topo.KindHost)
	g.AddNode("b1", topo.KindHost)
	g.AddEdge(swA, swB, 1e9, prop)
	g.AddEdge(swA, 2, 1e9, 500)
	g.AddEdge(swA, 3, 1e9, 500)
	g.AddEdge(swB, 4, 1e9, 500)
	g.AddEdge(swB, 5, 1e9, 500)
	return g, topo.Partition{Shards: 2, Of: []int{0, 1, 0, 0, 1, 1}}
}

// installTwoCellRoutes programs both switches constructively: local
// hosts by static entry, everything else out the backbone default port.
func installTwoCellRoutes(sw *Switch, hostPorts map[frame.MAC]int, defPort int) {
	for mac, port := range hostPorts {
		sw.AddStatic(mac, port)
	}
	sw.SetDefaultPort(defPort)
}

// driveTwoCell wires periodic cross-shard traffic (a0->b0 and b1->a1)
// on a built sharded network, runs it to the horizon in barrier-aligned
// chunks checking conservation at each cut, and returns the combined
// group+equipment digest. Frames are pooled per shard; cross-shard
// frames migrate pools, so the sum of Outstanding over both pools must
// drain to zero.
func driveTwoCell(t *testing.T, workers int) uint64 {
	t.Helper()
	g, part := twoCellGraph(5000)
	n, err := NewSharded(42, g, part, SwitchConfig{Latency: sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if la := n.Group.Lookahead(); la != 5000 {
		t.Fatalf("lookahead = %v, want backbone prop 5000", la)
	}
	var pools [2]frame.Pool
	for id, h := range n.Hosts() {
		shard := part.Of[id]
		h.OnReceive(pools[shard].Put)
	}
	// OnDrop goes to the owning shard's pool, keyed by owner name (IDs
	// 0..5 as built by twoCellGraph).
	ownerShard := map[string]int{"swA": 0, "swB": 1, "a0": 0, "a1": 0, "b0": 1, "b1": 1}
	for _, p := range n.Ports() {
		s := ownerShard[p.Owner.Name()]
		p.OnDrop = pools[s].Put
	}
	swA, swB := n.Switch(0), n.Switch(1)
	installTwoCellRoutes(swA, map[frame.MAC]int{
		n.Host(2).MAC(): n.PortIndex(0, 1),
		n.Host(3).MAC(): n.PortIndex(0, 2),
	}, n.PortIndex(0, 0))
	installTwoCellRoutes(swB, map[frame.MAC]int{
		n.Host(4).MAC(): n.PortIndex(1, 3),
		n.Host(5).MAC(): n.PortIndex(1, 4),
	}, n.PortIndex(1, 0))

	a0, a1 := n.Host(2), n.Host(3)
	b0, b1 := n.Host(4), n.Host(5)
	const horizon = sim.Time(2_000_000)
	send := func(src *Host, dst frame.MAC, pool *frame.Pool) func() {
		return func() {
			if src.Engine().Now() > horizon-100_000 {
				return // stop sending; let the tail drain
			}
			f := pool.Get(128)
			f.Dst = dst
			if !src.Send(f) {
				pool.Put(f)
			}
		}
	}
	a0.Engine().Every(1000, 2000, send(a0, b0.MAC(), &pools[0]))
	b1.Engine().Every(1500, 3000, send(b1, a1.MAC(), &pools[1]))

	sawCrossWire := false
	for at := sim.Time(50_000); at <= horizon; at += 50_000 {
		n.Group.Run(at, workers)
		a := n.Account()
		if err := a.Check(); err != nil {
			t.Fatalf("barrier %v: %v", at, err)
		}
		if a.CrossWire > 0 {
			sawCrossWire = true
		}
	}
	if !sawCrossWire {
		t.Fatal("no barrier ever caught a frame on the cross-shard wire; the CrossWire term is untested")
	}
	final := n.Account()
	if final.CrossWire != 0 {
		t.Fatalf("drained run still has %d cross-wire frames", final.CrossWire)
	}
	if final.Delivered == 0 {
		t.Fatal("no frames delivered")
	}
	if out := pools[0].Outstanding() + pools[1].Outstanding(); out != 0 {
		t.Fatalf("pooled frames leaked across shards: outstanding sum = %d", out)
	}
	if b0.RxCount == 0 || a1.RxCount == 0 {
		t.Fatalf("cross-shard hosts got no traffic: b0=%d a1=%d", b0.RxCount, a1.RxCount)
	}
	d := checkpoint.NewDigest()
	n.Group.FoldState(d)
	n.FoldState(d)
	return d.Sum()
}

func TestShardedNetworkCrossTrafficConservesAndIsDeterministic(t *testing.T) {
	ref := driveTwoCell(t, 1)
	for _, workers := range []int{2, 4} {
		if got := driveTwoCell(t, workers); got != ref {
			t.Fatalf("workers=%d digest %#x != serial %#x", workers, got, ref)
		}
	}
}

// TestShardedMatchesUnshardedEquipment pins the physics: the same
// scenario built unsharded on one engine and sharded across two must
// leave every switch, host and link counter byte-identical — the
// equipment digest does not know how the simulation was executed.
func TestShardedMatchesUnshardedEquipment(t *testing.T) {
	run := func(sharded bool) uint64 {
		g, part := twoCellGraph(5000)
		const horizon = sim.Time(500_000)
		var (
			hostAt  func(id topo.NodeID) *Host
			swAt    func(id topo.NodeID) *Switch
			portIdx func(n topo.NodeID, e topo.EdgeID) int
			advance func()
			fold    func(d *checkpoint.Digest)
		)
		if sharded {
			n, err := NewSharded(7, g, part, SwitchConfig{Latency: sim.Microsecond})
			if err != nil {
				t.Fatal(err)
			}
			hostAt, swAt, portIdx = n.Host, n.Switch, n.PortIndex
			advance = func() { n.Group.Run(horizon, 2) }
			fold = n.FoldState
		} else {
			e := sim.NewEngine(7)
			n := Build(e, g, SwitchConfig{Latency: sim.Microsecond})
			hostAt, swAt = n.Host, n.Switch
			portIdx = func(nd topo.NodeID, ed topo.EdgeID) int {
				for i, eid := range g.Incident(nd) {
					if eid == ed {
						return i
					}
				}
				t.Fatalf("node %d not on edge %d", nd, ed)
				return -1
			}
			advance = func() { e.RunUntil(horizon) }
			fold = n.FoldState
		}
		installTwoCellRoutes(swAt(0), map[frame.MAC]int{
			hostAt(2).MAC(): portIdx(0, 1),
			hostAt(3).MAC(): portIdx(0, 2),
		}, portIdx(0, 0))
		installTwoCellRoutes(swAt(1), map[frame.MAC]int{
			hostAt(4).MAC(): portIdx(1, 3),
			hostAt(5).MAC(): portIdx(1, 4),
		}, portIdx(1, 0))
		a0, b0 := hostAt(2), hostAt(4)
		var pool [2]frame.Pool
		a0.OnReceive(pool[0].Put)
		b0.OnReceive(pool[1].Put)
		a0.Engine().Every(1000, 2000, func() {
			if a0.Engine().Now() > horizon-50_000 {
				return
			}
			f := pool[0].Get(96)
			f.Dst = b0.MAC()
			if !a0.Send(f) {
				pool[0].Put(f)
			}
		})
		b0.Engine().Every(1700, 2600, func() {
			if b0.Engine().Now() > horizon-50_000 {
				return
			}
			f := pool[1].Get(96)
			f.Dst = a0.MAC()
			if !b0.Send(f) {
				pool[1].Put(f)
			}
		})
		advance()
		d := checkpoint.NewDigest()
		fold(d)
		return d.Sum()
	}
	if sh, un := run(true), run(false); sh != un {
		t.Fatalf("sharded equipment digest %#x != unsharded %#x", sh, un)
	}
}

func TestShardedNetworkZeroLookaheadRejected(t *testing.T) {
	g, part := twoCellGraph(0)
	if _, err := NewSharded(1, g, part, DefaultSwitchConfig); !errors.Is(err, sim.ErrZeroLookahead) {
		t.Fatalf("zero-prop cut edge: got %v, want ErrZeroLookahead", err)
	}
	// Serial fallback contract: the same graph on a one-shard partition
	// builds fine — there is no cut, hence no lookahead constraint.
	serial := topo.Partition{Shards: 1, Of: make([]int, g.NumNodes())}
	n, err := NewSharded(1, g, serial, DefaultSwitchConfig)
	if err != nil {
		t.Fatalf("serial fallback rejected: %v", err)
	}
	if n.Group.Shards() != 1 {
		t.Fatalf("fallback built %d shards", n.Group.Shards())
	}
	for _, l := range n.links {
		if l.Cross() {
			t.Fatalf("one-shard build produced cross link %q", l.Name)
		}
	}
}

func TestCrossLinkSetUpPanics(t *testing.T) {
	g, part := twoCellGraph(5000)
	n, err := NewSharded(1, g, part, DefaultSwitchConfig)
	if err != nil {
		t.Fatal(err)
	}
	backbone := n.Link(0)
	if !backbone.Cross() {
		t.Fatal("backbone edge did not become a cross link")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetUp on a cross-shard link did not panic")
		}
	}()
	backbone.SetUp(false)
}

func TestAddCrossLinkIgnoresLocalLinks(t *testing.T) {
	e := sim.NewEngine(1)
	a := NewHost(e, "a", frame.NewMAC(1))
	b := NewHost(e, "b", frame.NewMAC(2))
	l := Connect(e, "l", a.Port(), b.Port(), 1e9, 100)
	var acct Accounting
	acct.AddCrossLink(l)
	if acct.CrossWire != 0 {
		t.Fatalf("local link contributed %d to CrossWire", acct.CrossWire)
	}
}
