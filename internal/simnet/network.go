package simnet

import (
	"fmt"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/topo"
)

// Network instantiates a topo.Graph as live simulated equipment: one
// Switch per switch node, one Host per host/server/io node, one Link per
// edge. It keeps the mapping both ways so experiments can reason about
// paths on the graph and observe counters on the equipment.
type Network struct {
	Engine *sim.Engine
	Graph  *topo.Graph

	switches map[topo.NodeID]*Switch
	hosts    map[topo.NodeID]*Host
	links    map[topo.EdgeID]*Link
	byMAC    map[frame.MAC]topo.NodeID
}

// Build instantiates g on engine. Switch ports are numbered by the order
// of the node's incident edges in the graph.
func Build(engine *sim.Engine, g *topo.Graph, cfg SwitchConfig) *Network {
	n := &Network{
		Engine:   engine,
		Graph:    g,
		switches: make(map[topo.NodeID]*Switch),
		hosts:    make(map[topo.NodeID]*Host),
		links:    make(map[topo.EdgeID]*Link),
		byMAC:    make(map[frame.MAC]topo.NodeID),
	}
	// Port index assignment: for each node, its incident edges in order.
	portOf := make(map[[2]int]int) // {node, edge} -> port index
	for _, node := range g.Nodes() {
		switch node.Kind {
		case topo.KindSwitch:
			inc := g.Incident(node.ID)
			sw := NewSwitch(engine, node.Name, len(inc), cfg)
			n.switches[node.ID] = sw
			for i, eid := range inc {
				portOf[[2]int{int(node.ID), int(eid)}] = i
			}
		default:
			mac := frame.NewMAC(uint32(node.ID))
			h := NewHost(engine, node.Name, mac)
			n.hosts[node.ID] = h
			n.byMAC[mac] = node.ID
			if deg := g.Degree(node.ID); deg > 1 {
				panic(fmt.Sprintf("simnet: host %s has %d links; hosts are single-homed", node.Name, deg))
			}
			for _, eid := range g.Incident(node.ID) {
				portOf[[2]int{int(node.ID), int(eid)}] = 0
			}
		}
	}
	for _, e := range g.Edges() {
		pa := n.portFor(e.A, e.ID, portOf)
		pb := n.portFor(e.B, e.ID, portOf)
		name := fmt.Sprintf("%s--%s", g.Node(e.A).Name, g.Node(e.B).Name)
		n.links[e.ID] = Connect(engine, name, pa, pb, e.RateBps, sim.Duration(e.PropNs))
	}
	return n
}

func (n *Network) portFor(node topo.NodeID, edge topo.EdgeID, portOf map[[2]int]int) *Port {
	idx := portOf[[2]int{int(node), int(edge)}]
	if sw, ok := n.switches[node]; ok {
		return sw.Port(idx)
	}
	return n.hosts[node].Port()
}

// Switch returns the switch instantiated for graph node id; it panics
// when id is not a switch.
func (n *Network) Switch(id topo.NodeID) *Switch {
	sw, ok := n.switches[id]
	if !ok {
		panic(fmt.Sprintf("simnet: node %d is not a switch", id))
	}
	return sw
}

// Host returns the host instantiated for graph node id; it panics when
// id is not a host.
func (n *Network) Host(id topo.NodeID) *Host {
	h, ok := n.hosts[id]
	if !ok {
		panic(fmt.Sprintf("simnet: node %d is not a host", id))
	}
	return h
}

// Link returns the link instantiated for graph edge id.
func (n *Network) Link(id topo.EdgeID) *Link {
	l, ok := n.links[id]
	if !ok {
		panic(fmt.Sprintf("simnet: unknown edge %d", id))
	}
	return l
}

// Hosts returns all hosts keyed by graph node id.
func (n *Network) Hosts() map[topo.NodeID]*Host { return n.hosts }

// NodeByMAC returns the graph node owning mac, or -1.
func (n *Network) NodeByMAC(mac frame.MAC) topo.NodeID {
	if id, ok := n.byMAC[mac]; ok {
		return id
	}
	return -1
}

// SetSwitchQueueDepth applies SetQueueDepth to every switch in the
// network (hosts keep their defaults).
func (n *Network) SetSwitchQueueDepth(perClassLimit int) {
	for _, sw := range n.switches {
		sw.SetQueueDepth(perClassLimit)
	}
}

// InstallStaticRoutes programs every switch's FIB with the shortest-path
// port toward every host, eliminating flooding. Industrial networks are
// engineered and static after commissioning (§2.3); this is that
// commissioning step.
func (n *Network) InstallStaticRoutes() {
	r := topo.NewRouter(n.Graph, topo.HopCount)
	for hostID, h := range n.hosts {
		for swID, sw := range n.switches {
			firstEdge, err := r.NextHop(swID, hostID)
			if err != nil {
				continue
			}
			for i, eid := range n.Graph.Incident(swID) {
				if eid == firstEdge {
					sw.AddStatic(h.MAC(), i)
					break
				}
			}
		}
	}
}
