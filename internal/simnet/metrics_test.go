package simnet

import (
	"strings"
	"testing"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
	"steelnet/internal/topo"
)

// Network-level registration: one call must expose every switch, host,
// link and the engine, with counters that read the live values.
func TestNetworkRegisterMetricsAndTracer(t *testing.T) {
	e := sim.NewEngine(1)
	g := topo.Line(2, 1, topo.LinkOT1G, topo.LinkOT1G)
	n := Build(e, g, SwitchConfig{Latency: sim.Microsecond})

	tr := telemetry.NewTracer(nil)
	n.SetTracer(tr)
	r := telemetry.NewRegistry()
	n.RegisterMetrics(r)

	hosts := g.NodesOfKind(topo.KindHost)
	h0, h1 := n.Host(hosts[0]), n.Host(hosts[1])
	h1.OnReceive(func(*frame.Frame) {})
	h0.Send(&frame.Frame{Dst: h1.MAC(), Payload: make([]byte, 30)})
	e.Run()

	if tr.Len() == 0 {
		t.Fatal("network tracer recorded nothing")
	}
	snap := r.Snapshot()
	for _, want := range []string{
		"steelnet_switch_forwarded_total",
		"steelnet_switch_flooded_total",
		"steelnet_host_rx_total",
		"steelnet_link_delivered_total",
		"steelnet_link_up",
		"steelnet_port_tx_frames_total",
		"steelnet_port_queue_high_water",
		"sim_events_fired_total",
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
	// Func-backed: the exposition reads the live counter, so the one
	// delivered frame is visible without any re-registration.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	if !strings.Contains(prom, `steelnet_host_rx_total{node="`+h1.Name()+`"} 1`) {
		t.Fatalf("host rx counter not live:\n%s", prom)
	}
	if !strings.Contains(prom, `steelnet_link_up{link="`) {
		t.Fatalf("link up gauge missing:\n%s", prom)
	}

	// Ports covers every switch port and every host port — the set a
	// whole-network conservation check wants.
	wantPorts := 0
	for _, id := range g.NodesOfKind(topo.KindSwitch) {
		wantPorts += n.Switch(id).NumPorts()
	}
	wantPorts += len(n.Hosts())
	ports := n.Ports()
	if len(ports) != wantPorts {
		t.Fatalf("Ports() = %d, want %d", len(ports), wantPorts)
	}
	acct := Account(ports...)
	if err := acct.Check(); err != nil {
		t.Fatal(err)
	}
	if acct.Accepted == 0 || acct.Delivered == 0 {
		t.Fatalf("accounting saw no traffic: %+v", acct)
	}
}

// Per-port drop counters carry their cause as a label, one time series
// per cause.
func TestPortMetricsDropCauses(t *testing.T) {
	e := sim.NewEngine(1)
	h := NewHost(e, "h", frame.NewMAC(1))
	r := telemetry.NewRegistry()
	RegisterPortMetrics(r, h.Port())
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, cause := range []string{"overflow", "link-down", "shaper", "flush", "wire", "injected", "switch-failed"} {
		want := `steelnet_port_drops_total{node="h",port="0",cause="` + cause + `"} 0`
		if !strings.Contains(out, want) {
			t.Errorf("missing per-cause drop series %q in:\n%s", want, out)
		}
	}
}

func TestAccountingCheckReportsViolation(t *testing.T) {
	a := Accounting{Accepted: 3, Delivered: 1}
	err := a.Check()
	if err == nil {
		t.Fatal("imbalanced ledger passed Check")
	}
	if !strings.Contains(err.Error(), "conservation violated") {
		t.Fatalf("unexpected error: %v", err)
	}
}
