package simnet

import (
	"fmt"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
)

// GateWindow is one entry of an 802.1Qbv gate control list: for Duration
// starting at Offset within the cycle, the gates for the priorities in
// Mask are open.
type GateWindow struct {
	Offset   sim.Duration
	Duration sim.Duration
	Mask     GateMask
}

// GateMask is a bitmask of open priority classes (bit i = PCP i).
type GateMask uint8

// MaskOf builds a mask from priority values.
func MaskOf(prios ...frame.PCP) GateMask {
	var m GateMask
	for _, p := range prios {
		m |= 1 << (p & 7)
	}
	return m
}

// MaskAll opens all eight gates.
const MaskAll GateMask = 0xff

// Open reports whether the gate for priority p is open in the mask.
func (m GateMask) Open(p frame.PCP) bool { return m&(1<<(p&7)) != 0 }

// GateSchedule is a repeating gate control list: the paper's TSN switches
// run pre-computed transmission schedules for pre-defined flows (§1.1).
// Windows must tile the cycle exactly, in order, without gaps — the
// constructor enforces it so a schedule can never silently blackhole a
// priority through a coverage hole.
type GateSchedule struct {
	Cycle   sim.Duration
	Windows []GateWindow
}

// NewGateSchedule validates and builds a schedule.
func NewGateSchedule(cycle sim.Duration, windows []GateWindow) (*GateSchedule, error) {
	if cycle <= 0 {
		return nil, fmt.Errorf("simnet: non-positive TAS cycle %v", cycle)
	}
	if len(windows) == 0 {
		return nil, fmt.Errorf("simnet: empty gate control list")
	}
	var at sim.Duration
	for i, w := range windows {
		if w.Offset != at {
			return nil, fmt.Errorf("simnet: window %d starts at %v, want %v (gap or overlap)", i, w.Offset, at)
		}
		if w.Duration <= 0 {
			return nil, fmt.Errorf("simnet: window %d has non-positive duration", i)
		}
		at += w.Duration
	}
	if at != cycle {
		return nil, fmt.Errorf("simnet: windows cover %v of %v cycle", at, cycle)
	}
	return &GateSchedule{Cycle: cycle, Windows: windows}, nil
}

// MustGateSchedule is NewGateSchedule that panics on error, for static
// schedules in tests and examples.
func MustGateSchedule(cycle sim.Duration, windows []GateWindow) *GateSchedule {
	g, err := NewGateSchedule(cycle, windows)
	if err != nil {
		panic(err)
	}
	return g
}

// RTGuardSchedule builds the canonical industrial schedule: each cycle
// opens an exclusive window of rtWindow for RT priority (PCP 6-7), and
// leaves the rest for everyone. This protects cyclic control traffic from
// best-effort bursts.
func RTGuardSchedule(cycle, rtWindow sim.Duration) *GateSchedule {
	if rtWindow >= cycle {
		panic("simnet: RT window must be shorter than the cycle")
	}
	return MustGateSchedule(cycle, []GateWindow{
		{Offset: 0, Duration: rtWindow, Mask: MaskOf(frame.PrioRT, frame.PrioNetControl)},
		{Offset: rtWindow, Duration: cycle - rtWindow, Mask: MaskAll},
	})
}

// NextOpen returns the earliest time >= now at which a frame of priority
// p needing ser transmission time may start so that it finishes within a
// single open window (the guard-band rule). ok is false when no window
// can ever fit the frame.
func (g *GateSchedule) NextOpen(now sim.Time, p frame.PCP, ser sim.Duration) (sim.Time, bool) {
	cyc := int64(g.Cycle)
	base := (int64(now) / cyc) * cyc
	// Search at most two cycles: if no window in a full cycle fits, none
	// ever will (the schedule repeats).
	for c := int64(0); c < 2; c++ {
		for _, w := range g.Windows {
			if !w.Mask.Open(p) || w.Duration < ser {
				continue
			}
			start := sim.Time(base + c*cyc + int64(w.Offset))
			latest := start.Add(w.Duration - ser) // must finish inside window
			if latest < now {
				continue
			}
			if start < now {
				start = now
			}
			return start, true
		}
	}
	return 0, false
}
