package simnet

import (
	"fmt"

	"sort"

	"steelnet/internal/checkpoint"
	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
	"steelnet/internal/topo"
)

// ShardedNetwork instantiates a topo.Graph across the shards of a
// sim.ShardGroup: every node lives on the engine of the shard its
// partition assigns it to, intra-shard edges are ordinary links, and
// edges cut by the partition become cross-shard links whose propagation
// leg travels as a timestamped group message. The partition is part of
// the scenario — it is derived from the topology (see topo.Partition)
// and folded into digests — while the worker count passed to
// Group.Run is free to vary without changing a single output byte.
type ShardedNetwork struct {
	Group *sim.ShardGroup
	Graph *topo.Graph
	Part  topo.Partition

	switches map[topo.NodeID]*Switch
	hosts    map[topo.NodeID]*Host
	links    map[topo.EdgeID]*Link
	byMAC    map[frame.MAC]topo.NodeID
	portIdx  map[[2]int]int // {node, edge} -> port index
}

// noCutLookahead is the window bound used when the partition has no cut
// edges at all: shards never interact, so any positive bound is sound;
// a huge one makes each Run a single window per shard.
const noCutLookahead = sim.Duration(1) << 56

// NewSharded builds g's equipment across a new shard group seeded with
// seed, one shard per partition class. The conservative lookahead is
// the minimum propagation delay over the partition's cut edges; a cut
// edge with zero propagation makes windowed sync unsound, so that
// returns sim.ErrZeroLookahead (wrapped) — callers repartition, fix the
// topology, or fall back to a single shard.
func NewSharded(seed uint64, g *topo.Graph, p topo.Partition, cfg SwitchConfig) (*ShardedNetwork, error) {
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	lookahead := noCutLookahead
	if min, ok := p.MinCutPropNs(g); ok {
		lookahead = sim.Duration(min)
	}
	group, err := sim.NewShardGroup(seed, p.Shards, lookahead)
	if err != nil {
		return nil, fmt.Errorf("simnet: partition of %q unusable: %w", g.Name, err)
	}
	n := &ShardedNetwork{
		Group:    group,
		Graph:    g,
		Part:     p,
		switches: make(map[topo.NodeID]*Switch),
		hosts:    make(map[topo.NodeID]*Host),
		links:    make(map[topo.EdgeID]*Link),
		byMAC:    make(map[frame.MAC]topo.NodeID),
		portIdx:  make(map[[2]int]int),
	}
	for _, node := range g.Nodes() {
		eng := group.Shard(p.Of[node.ID])
		switch node.Kind {
		case topo.KindSwitch:
			inc := g.Incident(node.ID)
			sw := NewSwitch(eng, node.Name, len(inc), cfg)
			n.switches[node.ID] = sw
			for i, eid := range inc {
				n.portIdx[[2]int{int(node.ID), int(eid)}] = i
			}
		default:
			mac := frame.NewMAC(uint32(node.ID))
			h := NewHost(eng, node.Name, mac)
			n.hosts[node.ID] = h
			n.byMAC[mac] = node.ID
			if deg := g.Degree(node.ID); deg > 1 {
				panic(fmt.Sprintf("simnet: host %s has %d links; hosts are single-homed", node.Name, deg))
			}
			for _, eid := range g.Incident(node.ID) {
				n.portIdx[[2]int{int(node.ID), int(eid)}] = 0
			}
		}
	}
	for _, e := range g.Edges() {
		pa := n.portFor(e.A, e.ID)
		pb := n.portFor(e.B, e.ID)
		name := fmt.Sprintf("%s--%s", g.Node(e.A).Name, g.Node(e.B).Name)
		n.links[e.ID] = ConnectCross(group, name, pa, pb, p.Of[e.A], p.Of[e.B], e.RateBps, sim.Duration(e.PropNs))
	}
	return n, nil
}

func (n *ShardedNetwork) portFor(node topo.NodeID, edge topo.EdgeID) *Port {
	idx := n.portIdx[[2]int{int(node), int(edge)}]
	if sw, ok := n.switches[node]; ok {
		return sw.Port(idx)
	}
	return n.hosts[node].Port()
}

// PortIndex returns which port of node attaches to edge. Constructive
// routing (static FIB entries plus default ports) is built from this.
func (n *ShardedNetwork) PortIndex(node topo.NodeID, edge topo.EdgeID) int {
	idx, ok := n.portIdx[[2]int{int(node), int(edge)}]
	if !ok {
		panic(fmt.Sprintf("simnet: node %d not on edge %d", node, edge))
	}
	return idx
}

// Switch returns the switch instantiated for graph node id; it panics
// when id is not a switch.
func (n *ShardedNetwork) Switch(id topo.NodeID) *Switch {
	sw, ok := n.switches[id]
	if !ok {
		panic(fmt.Sprintf("simnet: node %d is not a switch", id))
	}
	return sw
}

// Host returns the host instantiated for graph node id; it panics when
// id is not a host.
func (n *ShardedNetwork) Host(id topo.NodeID) *Host {
	h, ok := n.hosts[id]
	if !ok {
		panic(fmt.Sprintf("simnet: node %d is not a host", id))
	}
	return h
}

// Link returns the link instantiated for graph edge id.
func (n *ShardedNetwork) Link(id topo.EdgeID) *Link {
	l, ok := n.links[id]
	if !ok {
		panic(fmt.Sprintf("simnet: unknown edge %d", id))
	}
	return l
}

// Hosts returns all hosts keyed by graph node id.
func (n *ShardedNetwork) Hosts() map[topo.NodeID]*Host { return n.hosts }

// NodeByMAC returns the graph node owning mac, or -1.
func (n *ShardedNetwork) NodeByMAC(mac frame.MAC) topo.NodeID {
	if id, ok := n.byMAC[mac]; ok {
		return id
	}
	return -1
}

// SetSwitchQueueDepth applies SetQueueDepth to every switch (hosts keep
// their defaults).
func (n *ShardedNetwork) SetSwitchQueueDepth(perClassLimit int) {
	for _, sw := range n.switches {
		sw.SetQueueDepth(perClassLimit)
	}
}

// SetShardTracer attaches t to every switch and host living on shard s
// and binds it to that shard's engine. Tracers are per-shard under
// sharded execution — one tracer shared across shards would be written
// by concurrent workers. Merge per-shard traces in shard order for a
// deterministic combined stream.
func (n *ShardedNetwork) SetShardTracer(s int, t *telemetry.Tracer) {
	t.Bind(n.Group.Shard(s))
	for id, sw := range n.switches {
		if n.Part.Of[id] == s {
			sw.SetTracer(t)
		}
	}
	for id, h := range n.hosts {
		if n.Part.Of[id] == s {
			h.SetTracer(t)
		}
	}
}

// Ports returns all ports of the network's switches and hosts.
func (n *ShardedNetwork) Ports() []*Port {
	var out []*Port
	for _, sw := range n.switches {
		out = append(out, sw.ports...)
	}
	for _, h := range n.hosts {
		out = append(out, h.port)
	}
	return out
}

// Account builds the whole-network conservation ledger, including the
// cross-shard wire term. Call it at a window barrier (between Run
// calls): that is when the senders' and receivers' counters are
// ordered, and when every cross-shard in-flight frame is counted
// exactly once — by its link's sent/Delivered difference and by
// nothing else.
func (n *ShardedNetwork) Account() Accounting {
	a := Account(n.Ports()...)
	for _, l := range n.links {
		a.AddCrossLink(l)
	}
	return a
}

// FoldState folds every switch, host and link in sorted graph-ID order
// — identical ordering to Network.FoldState, so a sharded and an
// unsharded build of the same scenario fold the same equipment stream.
func (n *ShardedNetwork) FoldState(d *checkpoint.Digest) {
	swIDs := make([]int, 0, len(n.switches))
	for id := range n.switches {
		swIDs = append(swIDs, int(id))
	}
	sort.Ints(swIDs)
	for _, id := range swIDs {
		d.Int(id)
		n.switches[topo.NodeID(id)].FoldState(d)
	}
	hostIDs := make([]int, 0, len(n.hosts))
	for id := range n.hosts {
		hostIDs = append(hostIDs, int(id))
	}
	sort.Ints(hostIDs)
	for _, id := range hostIDs {
		d.Int(id)
		n.hosts[topo.NodeID(id)].FoldState(d)
	}
	linkIDs := make([]int, 0, len(n.links))
	for id := range n.links {
		linkIDs = append(linkIDs, int(id))
	}
	sort.Ints(linkIDs)
	for _, id := range linkIDs {
		d.Int(id)
		n.links[topo.EdgeID(id)].FoldState(d)
	}
}
