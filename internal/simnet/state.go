package simnet

import (
	"sort"

	"steelnet/internal/checkpoint"
	"steelnet/internal/frame"
	"steelnet/internal/topo"
)

// This file folds the network's live state into a checkpoint.Digest.
// Fold order is part of the checkpoint format: changing what is folded
// or in which order makes old digests incomparable, which the restore
// path reports as divergence — bump checkpoint.FormatVersion when that
// is intended.

// foldFrame folds one frame's wire-visible content plus the metadata
// that influences future behavior (CreatedAt feeds latency samples).
func foldFrame(d *checkpoint.Digest, f *frame.Frame) {
	d.Bytes(f.Dst[:])
	d.Bytes(f.Src[:])
	d.Bool(f.Tagged)
	d.U64(uint64(f.Priority))
	d.U64(uint64(f.VID))
	d.U64(uint64(f.Type))
	d.Bytes(f.Payload)
	d.I64(f.Meta.CreatedAt)
	d.U64(uint64(f.Meta.FlowID))
	d.Bool(f.INT != nil)
	if f.INT != nil {
		foldINT(d, f.INT)
	}
}

// foldINT folds a frame's in-band telemetry stack: the stamped hops
// change WireLen and the sink-side digests, so a queued INT frame's
// stack is part of the state that must replay identically.
func foldINT(d *checkpoint.Digest, s *frame.INTStack) {
	d.Str(s.Source)
	d.I64(s.SourceNS)
	d.U64(uint64(s.FlowID))
	d.U64(uint64(s.Seq))
	d.Int(s.MaxHops)
	d.Bool(s.Strict)
	d.Int(len(s.Hops))
	for _, h := range s.Hops {
		d.Str(h.Node)
		d.I64(h.IngressNS)
		d.I64(h.EgressNS)
		d.I64(int64(h.QueueDepth))
		d.Bool(h.DropRisk)
	}
}

// FoldState folds the queue's contents in drain order (highest class
// first, FIFO within a class) plus its accept/drop counters.
func (q *PriorityQueue) FoldState(d *checkpoint.Digest) {
	d.Int(q.length)
	for c := 7; c >= 0; c-- {
		r := &q.classes[c]
		d.Int(r.n)
		for i := 0; i < r.n; i++ {
			foldFrame(d, r.buf[(r.head+i)&(len(r.buf)-1)])
		}
	}
	for c := range q.EnqueuedPerClass {
		d.U64(q.EnqueuedPerClass[c])
		d.U64(q.DroppedPerClass[c])
	}
}

// FoldState folds the port's queue, transmission state and every
// counter that feeds figures or conservation accounting.
func (p *Port) FoldState(d *checkpoint.Digest) {
	p.queue.FoldState(d)
	d.Bool(p.busy)
	d.Bool(p.pausedTx.Pending())
	d.Int(p.inFlight)
	d.U64(p.TxFrames)
	d.U64(p.RxFrames)
	d.U64(p.TxBytes)
	d.U64(p.RxBytes)
	d.U64(p.Drops)
	d.U64(p.InjectedDrops)
	d.U64(p.CorruptedFrames)
	d.U64(p.OverflowDrops)
	d.U64(p.DownDrops)
	d.U64(p.ShaperDrops)
	d.U64(p.FlushedDrops)
	d.U64(p.WireDrops)
	d.U64(p.FailedDrops)
	d.U64(p.INTDrops)
	d.Int(p.QueueHighWater)
	d.F64(p.lossRate)
	d.F64(p.corruptRate)
}

// FoldState folds the switch's forwarding state: FIB and static entries
// in sorted MAC order, blocked ports in sorted index order, failure
// flag, forwarding counters, then every port.
func (s *Switch) FoldState(d *checkpoint.Digest) {
	macs := make([]frame.MAC, 0, len(s.fib))
	for mac := range s.fib {
		macs = append(macs, mac)
	}
	sort.Slice(macs, func(i, j int) bool {
		a, b := macs[i], macs[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	d.Int(len(macs))
	for _, mac := range macs {
		d.Bytes(mac[:])
		d.Int(s.fib[mac])
		d.Bool(s.static[mac])
	}
	blocked := make([]int, 0, len(s.blocked))
	for i, b := range s.blocked {
		if b {
			blocked = append(blocked, i)
		}
	}
	sort.Ints(blocked)
	d.Int(len(blocked))
	for _, i := range blocked {
		d.Int(i)
	}
	d.Bool(s.failed)
	d.U64(s.FloodedFrames)
	d.U64(s.ForwardedFrames)
	d.U64(s.DroppedWhileFailed)
	d.U64(s.BlockedDrops)
	d.U64(s.HairpinDrops)
	d.U64(s.INTDrops)
	for _, p := range s.ports {
		p.FoldState(d)
	}
}

// FoldState folds the host's delivery count, INT source sequence and
// its single port.
func (h *Host) FoldState(d *checkpoint.Digest) {
	d.Bytes(h.mac[:])
	d.U64(h.RxCount)
	d.U64(uint64(h.intSeq))
	h.port.FoldState(d)
}

// FoldState folds the link's carrier state and per-direction delivery
// counters. Frames in flight on the link are engine events; their
// timing is covered by the engine fold and their content by the sending
// port's counters.
func (l *Link) FoldState(d *checkpoint.Digest) {
	d.Bool(l.up)
	d.U64(l.Delivered[0])
	d.U64(l.Delivered[1])
	d.I64(int64(l.extra[0]))
	d.I64(int64(l.extra[1]))
}

// FoldState folds every switch, host and link in the network in sorted
// graph-id order.
func (n *Network) FoldState(d *checkpoint.Digest) {
	swIDs := make([]int, 0, len(n.switches))
	for id := range n.switches {
		swIDs = append(swIDs, int(id))
	}
	sort.Ints(swIDs)
	for _, id := range swIDs {
		d.Int(id)
		n.switches[topo.NodeID(id)].FoldState(d)
	}
	hostIDs := make([]int, 0, len(n.hosts))
	for id := range n.hosts {
		hostIDs = append(hostIDs, int(id))
	}
	sort.Ints(hostIDs)
	for _, id := range hostIDs {
		d.Int(id)
		n.hosts[topo.NodeID(id)].FoldState(d)
	}
	linkIDs := make([]int, 0, len(n.links))
	for id := range n.links {
		linkIDs = append(linkIDs, int(id))
	}
	sort.Ints(linkIDs)
	for _, id := range linkIDs {
		d.Int(id)
		n.links[topo.EdgeID(id)].FoldState(d)
	}
}
