package simnet

import (
	"fmt"
	"strconv"

	"steelnet/internal/telemetry"
)

// Accounting is the frame-conservation ledger of a set of egress ports:
// every frame a queue accepted must be delivered, destroyed for an
// enumerated cause, or still be sitting in a queue or on a wire. It is
// the observable-counter counterpart of the frame-pool Outstanding==0
// invariant — strong enough to hold mid-run, at any horizon cut, not
// just after a full drain.
type Accounting struct {
	// Accepted counts frames the egress queues accepted ("sent").
	Accepted uint64
	// Delivered counts frames that completed link traversal ("forwarded").
	Delivered uint64
	// Destroyed sums the terminal drop causes: shaper never-eligible,
	// flushes (link-down/switch-crash), wire deaths, and injected losses.
	Destroyed uint64
	// Queued and InFlight count frames still in the network at the
	// moment of the snapshot.
	Queued   uint64
	InFlight uint64

	// Per-cause breakdown, for error messages and per-cause assertions.
	ShaperDrops, FlushedDrops, WireDrops, InjectedDrops uint64
	// Refusals at Send. These frames were never accepted, so they sit
	// outside the conservation identity, but chaos assertions want them.
	OverflowDrops, DownDrops uint64
	// INTDrops counts frames a strict INT stack-overflow destroyed
	// inside a switch. The upstream link already counted those frames
	// Delivered (delivery is the identity's terminal state), so they
	// need no Destroyed term — the identity holds with INT on because
	// INT-bearing frames change only WireLen, never ownership, and
	// INT-caused deaths happen strictly between one port's Delivered
	// and the next port's Accepted. The counter is here so chaos
	// assertions can still demand the deaths be enumerated.
	INTDrops uint64

	// CrossWire counts frames in flight on cross-shard links: handed to
	// the shard group by the sending shard but not yet delivered by the
	// receiving one. Port.InFlight cannot see them (the sending port
	// decremented at hand-off; the receiving port never increments), so
	// a sharded network's identity needs this term — each cross-shard
	// frame appears here exactly once, via AddCrossLink on each link
	// exactly once. Meaningful only at window barriers, where the
	// senders' and receivers' counters are ordered.
	CrossWire uint64
}

// Add accumulates one port's counters into the ledger.
func (a *Accounting) Add(p *Port) {
	a.Accepted += p.Accepted()
	a.Delivered += p.DeliveredFrames()
	a.Destroyed += p.ShaperDrops + p.FlushedDrops + p.WireDrops + p.InjectedDrops
	a.Queued += uint64(p.QueueDepth())
	a.InFlight += uint64(p.InFlight())
	a.ShaperDrops += p.ShaperDrops
	a.FlushedDrops += p.FlushedDrops
	a.WireDrops += p.WireDrops
	a.InjectedDrops += p.InjectedDrops
	a.OverflowDrops += p.OverflowDrops
	a.DownDrops += p.DownDrops
	a.INTDrops += p.INTDrops
}

// AddCrossLink accumulates a cross-shard link's wire occupancy into the
// ledger. Call it once per cross-shard link, at a window barrier. Links
// that are not cross-shard contribute nothing (their in-flight frames
// are already in Port.InFlight).
func (a *Accounting) AddCrossLink(l *Link) {
	if l.cross == nil {
		return
	}
	for end := 0; end < 2; end++ {
		a.CrossWire += l.cross.sent[end] - l.Delivered[end]
	}
}

// Check returns an error unless delivered + destroyed + queued + in-flight
// frames exactly equal the frames accepted — the forwarded+dropped==sent
// identity the chaos suites assert per run. In-flight splits into
// intra-shard wires (InFlight) and cross-shard wires (CrossWire).
func (a Accounting) Check() error {
	got := a.Delivered + a.Destroyed + a.Queued + a.InFlight + a.CrossWire
	if got != a.Accepted {
		return fmt.Errorf("simnet: frame conservation violated: accepted=%d but delivered=%d + destroyed=%d + queued=%d + in-flight=%d + cross-wire=%d = %d",
			a.Accepted, a.Delivered, a.Destroyed, a.Queued, a.InFlight, a.CrossWire, got)
	}
	return nil
}

// Account builds the conservation ledger over the given ports.
func Account(ports ...*Port) Accounting {
	var a Accounting
	for _, p := range ports {
		a.Add(p)
	}
	return a
}

// portLabels builds the label set identifying one port.
func portLabels(p *Port) telemetry.Labels {
	return telemetry.L("node", p.Owner.Name(), "port", strconv.Itoa(p.Index))
}

// RegisterPortMetrics exposes a port's counters on r. All metrics are
// func-backed reads of the live counters: registration costs the hot
// path nothing.
func RegisterPortMetrics(r *telemetry.Registry, p *Port) {
	ls := portLabels(p)
	r.Counter("steelnet_port_tx_frames_total", ls, "frames that began transmission", func() uint64 { return p.TxFrames })
	r.Counter("steelnet_port_rx_frames_total", ls, "frames received", func() uint64 { return p.RxFrames })
	r.Counter("steelnet_port_tx_bytes_total", ls, "bytes transmitted", func() uint64 { return p.TxBytes })
	r.Counter("steelnet_port_rx_bytes_total", ls, "bytes received", func() uint64 { return p.RxBytes })
	r.Counter("steelnet_port_corrupted_total", ls, "frames damaged by corruption injection", func() uint64 { return p.CorruptedFrames })
	r.Gauge("steelnet_port_queue_depth", ls, "egress queue depth", func() float64 { return float64(p.QueueDepth()) })
	r.Gauge("steelnet_port_queue_high_water", ls, "deepest egress queue depth seen", func() float64 { return float64(p.QueueHighWater) })
	r.Gauge("steelnet_port_in_flight", ls, "frames on the wire from this port", func() float64 { return float64(p.InFlight()) })
	for _, dc := range []struct {
		cause string
		read  func() uint64
	}{
		{"overflow", func() uint64 { return p.OverflowDrops }},
		{"link-down", func() uint64 { return p.DownDrops }},
		{"shaper", func() uint64 { return p.ShaperDrops }},
		{"flush", func() uint64 { return p.FlushedDrops }},
		{"wire", func() uint64 { return p.WireDrops }},
		{"injected", func() uint64 { return p.InjectedDrops }},
		{"switch-failed", func() uint64 { return p.FailedDrops }},
		{"int-overflow", func() uint64 { return p.INTDrops }},
	} {
		cls := append(append(telemetry.Labels{}, ls...), telemetry.Label{K: "cause", V: dc.cause})
		r.Counter("steelnet_port_drops_total", cls, "frames dropped, by cause", dc.read)
	}
}

// RegisterSwitchMetrics exposes a switch's counters and those of all its
// ports on r.
func RegisterSwitchMetrics(r *telemetry.Registry, s *Switch) {
	ls := telemetry.L("node", s.Name())
	r.Counter("steelnet_switch_forwarded_total", ls, "frames forwarded (including floods)", func() uint64 { return s.ForwardedFrames })
	r.Counter("steelnet_switch_flooded_total", ls, "frames flooded", func() uint64 { return s.FloodedFrames })
	r.Counter("steelnet_switch_failed_drops_total", ls, "frames dropped while crashed", func() uint64 { return s.DroppedWhileFailed })
	r.Counter("steelnet_switch_blocked_drops_total", ls, "frames dropped at blocked ports", func() uint64 { return s.BlockedDrops })
	r.Counter("steelnet_switch_hairpin_drops_total", ls, "frames whose egress equals ingress", func() uint64 { return s.HairpinDrops })
	r.Counter("steelnet_switch_int_drops_total", ls, "frames dropped on strict INT stack overflow", func() uint64 { return s.INTDrops })
	for _, p := range s.ports {
		RegisterPortMetrics(r, p)
	}
}

// RegisterHostMetrics exposes a host's counters and its port's on r.
func RegisterHostMetrics(r *telemetry.Registry, h *Host) {
	ls := telemetry.L("node", h.Name())
	r.Counter("steelnet_host_rx_total", ls, "frames delivered to the host handler", func() uint64 { return h.RxCount })
	RegisterPortMetrics(r, h.port)
}

// RegisterLinkMetrics exposes a link's per-direction counters on r.
func RegisterLinkMetrics(r *telemetry.Registry, l *Link) {
	for end := 0; end < 2; end++ {
		end := end
		ls := telemetry.L("link", l.Name, "dir", strconv.Itoa(end))
		r.Counter("steelnet_link_delivered_total", ls, "frames that completed traversal", func() uint64 { return l.Delivered[end] })
	}
	r.Gauge("steelnet_link_up", telemetry.L("link", l.Name), "1 when the link carries traffic", func() float64 {
		if l.up {
			return 1
		}
		return 0
	})
}

// SetTracer attaches a lifecycle tracer to every switch, host and port
// in the network and binds it to the network's engine.
func (n *Network) SetTracer(t *telemetry.Tracer) {
	t.Bind(n.Engine)
	for _, sw := range n.switches {
		sw.SetTracer(t)
	}
	for _, h := range n.hosts {
		h.SetTracer(t)
	}
}

// RegisterMetrics exposes every component's counters plus the engine's
// internals on r. Output ordering is handled by the registry itself, so
// map iteration order here is harmless.
func (n *Network) RegisterMetrics(r *telemetry.Registry) {
	for _, sw := range n.switches {
		RegisterSwitchMetrics(r, sw)
	}
	for _, h := range n.hosts {
		RegisterHostMetrics(r, h)
	}
	for _, l := range n.links {
		RegisterLinkMetrics(r, l)
	}
	telemetry.RegisterEngineMetrics(r, n.Engine)
}

// Ports returns all ports of the network's switches and hosts — the
// set Account needs for a whole-network conservation check.
func (n *Network) Ports() []*Port {
	var out []*Port
	for _, sw := range n.switches {
		out = append(out, sw.ports...)
	}
	for _, h := range n.hosts {
		out = append(out, h.port)
	}
	return out
}
