package simnet

import (
	"testing"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/topo"
)

// pair wires two hosts with a direct link and returns them.
func pair(e *sim.Engine, rateBps float64, prop sim.Duration) (*Host, *Host) {
	a := NewHost(e, "a", frame.NewMAC(1))
	b := NewHost(e, "b", frame.NewMAC(2))
	Connect(e, "ab", a.Port(), b.Port(), rateBps, prop)
	return a, b
}

func TestLinkDeliversFrame(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 500*sim.Nanosecond)
	var got *frame.Frame
	var at sim.Time
	b.OnReceive(func(f *frame.Frame) { got = f; at = e.Now() })
	f := &frame.Frame{Dst: b.MAC(), Type: frame.TypeBenchEcho, Payload: make([]byte, 50)}
	if !a.Send(f) {
		t.Fatal("send failed")
	}
	e.Run()
	if got == nil {
		t.Fatal("frame not delivered")
	}
	// 64B min at 1 Gb/s = 512 ns serialization + 500 ns prop.
	if at != sim.Time(1012) {
		t.Fatalf("arrival at %v, want 1012ns", at)
	}
	if got.Src != a.MAC() {
		t.Fatal("source MAC not stamped")
	}
}

func TestSerializationUsesMinFrameSize(t *testing.T) {
	e := sim.NewEngine(1)
	l := &Link{RateBps: 1e9}
	if d := l.SerializationDelay(10); d != 512*sim.Nanosecond {
		t.Fatalf("min-size serialization = %v", d)
	}
	if d := l.SerializationDelay(125); d != 1000*sim.Nanosecond {
		t.Fatalf("125B serialization = %v", d)
	}
	_ = e
}

func TestLinkSerializesSequentially(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	var arrivals []sim.Time
	b.OnReceive(func(*frame.Frame) { arrivals = append(arrivals, e.Now()) })
	for i := 0; i < 3; i++ {
		a.Send(&frame.Frame{Dst: b.MAC(), Payload: make([]byte, 50)}) // 64B -> 512ns each
	}
	e.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	for i, want := range []sim.Time{512, 1024, 1536} {
		if arrivals[i] != want {
			t.Fatalf("arrivals = %v", arrivals)
		}
	}
}

func TestFullDuplexDirectionsIndependent(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	var aAt, bAt sim.Time
	a.OnReceive(func(*frame.Frame) { aAt = e.Now() })
	b.OnReceive(func(*frame.Frame) { bAt = e.Now() })
	a.Send(&frame.Frame{Dst: b.MAC(), Payload: make([]byte, 50)})
	b.Send(&frame.Frame{Dst: a.MAC(), Payload: make([]byte, 50)})
	e.Run()
	if aAt != 512 || bAt != 512 {
		t.Fatalf("full duplex broken: aAt=%v bAt=%v", aAt, bAt)
	}
}

func TestDownedLinkDropsTraffic(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	delivered := 0
	b.OnReceive(func(*frame.Frame) { delivered++ })
	a.Port().Link().SetUp(false)
	if a.Send(&frame.Frame{Dst: b.MAC()}) {
		t.Fatal("send on downed link succeeded")
	}
	e.Run()
	if delivered != 0 {
		t.Fatal("frame crossed downed link")
	}
	if a.Port().Drops != 1 {
		t.Fatalf("drops = %d", a.Port().Drops)
	}
	// Bring it back: traffic flows again.
	a.Port().Link().SetUp(true)
	a.Send(&frame.Frame{Dst: b.MAC()})
	e.Run()
	if delivered != 1 {
		t.Fatal("link did not recover")
	}
}

func TestLinkDownDropsInFlight(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 10*sim.Microsecond)
	delivered := 0
	b.OnReceive(func(*frame.Frame) { delivered++ })
	a.Send(&frame.Frame{Dst: b.MAC()})
	link := a.Port().Link()
	e.After(5*sim.Microsecond, func() { link.SetUp(false) }) // mid-propagation
	e.Run()
	if delivered != 0 {
		t.Fatal("in-flight frame survived link failure")
	}
}

func TestHostFiltersForeignUnicast(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	got := 0
	b.OnReceive(func(*frame.Frame) { got++ })
	a.Send(&frame.Frame{Dst: frame.NewMAC(99)}) // not b's MAC
	a.Send(&frame.Frame{Dst: frame.Broadcast})
	e.Run()
	if got != 1 {
		t.Fatalf("handler ran %d times, want 1 (broadcast only)", got)
	}
}

func TestPriorityQueueStrictOrder(t *testing.T) {
	q := NewPriorityQueue(10)
	lo := &frame.Frame{Tagged: true, Priority: frame.PrioBestEffort}
	hi := &frame.Frame{Tagged: true, Priority: frame.PrioRT}
	q.Push(lo)
	q.Push(hi)
	if q.Pop() != hi {
		t.Fatal("high priority did not preempt")
	}
	if q.Pop() != lo {
		t.Fatal("low priority lost")
	}
	if q.Pop() != nil {
		t.Fatal("empty pop not nil")
	}
}

func TestPriorityQueueTailDrop(t *testing.T) {
	q := NewPriorityQueue(2)
	f := func() *frame.Frame { return &frame.Frame{} }
	if !q.Push(f()) || !q.Push(f()) {
		t.Fatal("initial pushes failed")
	}
	if q.Push(f()) {
		t.Fatal("overfull push succeeded")
	}
	if q.DroppedPerClass[0] != 1 {
		t.Fatalf("drop counter = %d", q.DroppedPerClass[0])
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestPriorityQueueFIFOWithinClass(t *testing.T) {
	q := NewPriorityQueue(10)
	a := &frame.Frame{Meta: frame.Meta{FlowID: 1}}
	b := &frame.Frame{Meta: frame.Meta{FlowID: 2}}
	q.Push(a)
	q.Push(b)
	if q.Pop() != a || q.Pop() != b {
		t.Fatal("FIFO violated within class")
	}
}

func TestSwitchLearnsAndForwards(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, "sw", 3, SwitchConfig{Latency: sim.Microsecond})
	a := NewHost(e, "a", frame.NewMAC(1))
	b := NewHost(e, "b", frame.NewMAC(2))
	c := NewHost(e, "c", frame.NewMAC(3))
	Connect(e, "a", a.Port(), sw.Port(0), 1e9, 0)
	Connect(e, "b", b.Port(), sw.Port(1), 1e9, 0)
	Connect(e, "c", c.Port(), sw.Port(2), 1e9, 0)
	bGot, cGot := 0, 0
	b.OnReceive(func(*frame.Frame) { bGot++ })
	c.OnReceive(func(*frame.Frame) { cGot++ })

	// First frame to b: unknown destination, floods to b and c; both see
	// it but only b accepts (unicast filter). Switch learns a's port.
	a.Send(&frame.Frame{Dst: b.MAC(), Payload: []byte{1}})
	e.Run()
	if bGot != 1 {
		t.Fatalf("b got %d", bGot)
	}
	if sw.LookupPort(a.MAC()) != 0 {
		t.Fatal("switch did not learn a")
	}
	// b replies: a's port is known, no flood; switch learns b.
	b.Send(&frame.Frame{Dst: a.MAC(), Payload: []byte{2}})
	e.Run()
	if sw.LookupPort(b.MAC()) != 1 {
		t.Fatal("switch did not learn b")
	}
	// Second a->b frame: forwarded only to b.
	flooded := sw.FloodedFrames
	a.Send(&frame.Frame{Dst: b.MAC(), Payload: []byte{3}})
	e.Run()
	if sw.FloodedFrames != flooded {
		t.Fatal("known destination flooded")
	}
	if bGot != 2 || cGot != 0 {
		t.Fatalf("bGot=%d cGot=%d", bGot, cGot)
	}
}

func TestSwitchAddsLatency(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{Latency: 2 * sim.Microsecond})
	a := NewHost(e, "a", frame.NewMAC(1))
	b := NewHost(e, "b", frame.NewMAC(2))
	Connect(e, "a", a.Port(), sw.Port(0), 1e9, 0)
	Connect(e, "b", b.Port(), sw.Port(1), 1e9, 0)
	sw.AddStatic(b.MAC(), 1)
	var at sim.Time
	b.OnReceive(func(*frame.Frame) { at = e.Now() })
	a.Send(&frame.Frame{Dst: b.MAC(), Payload: make([]byte, 50)})
	e.Run()
	// 512ns ser + 2µs switch + 512ns ser = 3024ns.
	if at != sim.Time(3024) {
		t.Fatalf("arrival = %v, want 3.024µs", at)
	}
}

func TestSwitchHairpinDropped(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{})
	a := NewHost(e, "a", frame.NewMAC(1))
	b := NewHost(e, "b", frame.NewMAC(2))
	Connect(e, "a", a.Port(), sw.Port(0), 1e9, 0)
	Connect(e, "b", b.Port(), sw.Port(1), 1e9, 0)
	sw.AddStatic(a.MAC(), 0) // a's own port
	got := 0
	a.OnReceive(func(*frame.Frame) { got++ })
	b.OnReceive(func(*frame.Frame) { got++ })
	a.Send(&frame.Frame{Dst: a.MAC()}) // to itself via switch
	e.Run()
	if got != 0 {
		t.Fatal("hairpin frame delivered")
	}
}

func TestGateScheduleValidation(t *testing.T) {
	if _, err := NewGateSchedule(0, nil); err == nil {
		t.Fatal("zero cycle accepted")
	}
	if _, err := NewGateSchedule(100, []GateWindow{{Offset: 10, Duration: 90, Mask: MaskAll}}); err == nil {
		t.Fatal("leading gap accepted")
	}
	if _, err := NewGateSchedule(100, []GateWindow{{Offset: 0, Duration: 50, Mask: MaskAll}}); err == nil {
		t.Fatal("partial coverage accepted")
	}
	g, err := NewGateSchedule(100, []GateWindow{
		{Offset: 0, Duration: 40, Mask: MaskOf(frame.PrioRT)},
		{Offset: 40, Duration: 60, Mask: MaskAll},
	})
	if err != nil || g == nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestGateMask(t *testing.T) {
	m := MaskOf(frame.PrioRT, frame.PrioNetControl)
	if !m.Open(frame.PrioRT) || m.Open(frame.PrioBestEffort) {
		t.Fatal("mask broken")
	}
	if !MaskAll.Open(frame.PCP(5)) {
		t.Fatal("MaskAll broken")
	}
}

func TestNextOpenWaitsForWindow(t *testing.T) {
	// Cycle 1ms: RT-only first 200µs, everything after.
	g := RTGuardSchedule(sim.Millisecond, 200*sim.Microsecond)
	// Best-effort frame at t=0 must wait until 200µs.
	start, ok := g.NextOpen(0, frame.PrioBestEffort, 10*sim.Microsecond)
	if !ok || start != sim.Time(200*sim.Microsecond) {
		t.Fatalf("start = %v ok=%v", start, ok)
	}
	// RT frame at t=0 goes immediately.
	start, ok = g.NextOpen(0, frame.PrioRT, 10*sim.Microsecond)
	if !ok || start != 0 {
		t.Fatalf("RT start = %v ok=%v", start, ok)
	}
}

func TestNextOpenGuardBand(t *testing.T) {
	g := RTGuardSchedule(sim.Millisecond, 200*sim.Microsecond)
	// RT frame needing 300µs cannot fit the 200µs RT window but fits the
	// open window (800µs).
	start, ok := g.NextOpen(0, frame.PrioRT, 300*sim.Microsecond)
	if !ok || start != sim.Time(200*sim.Microsecond) {
		t.Fatalf("start = %v ok=%v", start, ok)
	}
	// A frame needing more than any window never fits.
	if _, ok := g.NextOpen(0, frame.PrioRT, 2*sim.Millisecond); ok {
		t.Fatal("impossible frame admitted")
	}
}

func TestNextOpenMidWindow(t *testing.T) {
	g := RTGuardSchedule(sim.Millisecond, 200*sim.Microsecond)
	// RT frame arriving mid-RT-window with room to finish starts now.
	now := sim.Time(100 * sim.Microsecond)
	start, ok := g.NextOpen(now, frame.PrioRT, 50*sim.Microsecond)
	if !ok || start != now {
		t.Fatalf("start = %v ok=%v", start, ok)
	}
	// Arriving too late to finish -> next cycle.
	now = sim.Time(190 * sim.Microsecond)
	start, ok = g.NextOpen(now, frame.PrioRT, 50*sim.Microsecond)
	if !ok {
		t.Fatal("not ok")
	}
	if start != now { // still fits the all-open window at 200µs? no: RT can use MaskAll window too
		// The all-open window starts at 200µs and admits RT.
		if start != sim.Time(200*sim.Microsecond) {
			t.Fatalf("start = %v", start)
		}
	}
}

func TestTASDelaysBestEffortProtectsRT(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	a.Port().SetTAS(RTGuardSchedule(sim.Millisecond, 500*sim.Microsecond))
	var arrivals []sim.Time
	b.OnReceive(func(*frame.Frame) { arrivals = append(arrivals, e.Now()) })
	// Best-effort frame at t=0: gate closed until 500µs.
	a.Send(&frame.Frame{Dst: b.MAC(), Tagged: true, Priority: frame.PrioBestEffort, VID: 1, Payload: make([]byte, 50)})
	e.Run()
	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Tagged 50B payload = 68 wire bytes -> 544 ns at 1 Gb/s.
	if arrivals[0] != sim.Time(500*sim.Microsecond+544*sim.Nanosecond) {
		t.Fatalf("BE arrival = %v", arrivals[0])
	}
}

func TestBuildNetworkFromGraph(t *testing.T) {
	e := sim.NewEngine(1)
	g := topo.Line(2, 1, topo.LinkOT1G, topo.LinkOT1G)
	n := Build(e, g, SwitchConfig{Latency: sim.Microsecond})
	hosts := g.NodesOfKind(topo.KindHost)
	if len(hosts) != 2 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	h0, h1 := n.Host(hosts[0]), n.Host(hosts[1])
	got := 0
	h1.OnReceive(func(*frame.Frame) { got++ })
	h0.Send(&frame.Frame{Dst: h1.MAC(), Payload: make([]byte, 30)})
	e.Run()
	if got != 1 {
		t.Fatal("frame did not cross built network")
	}
	if n.NodeByMAC(h0.MAC()) != hosts[0] {
		t.Fatal("NodeByMAC broken")
	}
	if n.NodeByMAC(frame.NewMAC(0xdead)) != -1 {
		t.Fatal("unknown MAC not -1")
	}
}

func TestInstallStaticRoutesPreventsFlooding(t *testing.T) {
	e := sim.NewEngine(1)
	g := topo.Line(3, 1, topo.LinkOT1G, topo.LinkOT1G)
	n := Build(e, g, SwitchConfig{Latency: sim.Microsecond})
	n.InstallStaticRoutes()
	hosts := g.NodesOfKind(topo.KindHost)
	h0, h2 := n.Host(hosts[0]), n.Host(hosts[2])
	got := 0
	h2.OnReceive(func(*frame.Frame) { got++ })
	h0.Send(&frame.Frame{Dst: h2.MAC(), Payload: make([]byte, 30)})
	e.Run()
	if got != 1 {
		t.Fatal("frame lost")
	}
	for _, swID := range g.NodesOfKind(topo.KindSwitch) {
		if n.Switch(swID).FloodedFrames != 0 {
			t.Fatalf("switch %d flooded despite static routes", swID)
		}
	}
}

func TestRebindConnectedPortPanics(t *testing.T) {
	e := sim.NewEngine(1)
	a, _ := pair(e, 1e9, 0)
	c := NewHost(e, "c", frame.NewMAC(3))
	defer func() {
		if recover() == nil {
			t.Fatal("double connect did not panic")
		}
	}()
	Connect(e, "dup", a.Port(), c.Port(), 1e9, 0)
}

func TestPortStatsCount(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	b.OnReceive(func(*frame.Frame) {})
	for i := 0; i < 5; i++ {
		a.Send(&frame.Frame{Dst: b.MAC(), Payload: make([]byte, 50)})
	}
	e.Run()
	if a.Port().TxFrames != 5 || b.Port().RxFrames != 5 {
		t.Fatalf("tx=%d rx=%d", a.Port().TxFrames, b.Port().RxFrames)
	}
	if a.Port().TxBytes != 5*64 {
		t.Fatalf("txBytes = %d", a.Port().TxBytes)
	}
	if b.RxCount != 5 {
		t.Fatalf("host rx = %d", b.RxCount)
	}
}

func TestTASGatePausedPortYieldsToOpenPriority(t *testing.T) {
	// Regression: a BE frame paused on a closed gate must not block an
	// RT frame whose gate is open.
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	a.Port().SetTAS(RTGuardSchedule(sim.Millisecond, 500*sim.Microsecond))
	var rtAt sim.Time
	b.OnReceive(func(f *frame.Frame) {
		if f.EffectivePriority() == frame.PrioRT {
			rtAt = e.Now()
		}
	})
	// BE frame at t=0 pauses until 500µs; RT frame at 10µs must go now.
	a.Send(&frame.Frame{Dst: b.MAC(), Tagged: true, Priority: frame.PrioBestEffort, VID: 1, Payload: make([]byte, 50)})
	e.Schedule(sim.Time(10*sim.Microsecond), func() {
		a.Send(&frame.Frame{Dst: b.MAC(), Tagged: true, Priority: frame.PrioRT, VID: 1, Payload: make([]byte, 50)})
	})
	e.Run()
	if rtAt == 0 || rtAt > sim.Time(20*sim.Microsecond) {
		t.Fatalf("RT frame delivered at %v, blocked by gated BE frame", rtAt)
	}
}

func TestCreditShaperRateLimitsClass(t *testing.T) {
	// Shaped ML class at 10 Mb/s on a 1 Gb/s link: 100 queued 1000-byte
	// frames must drain at the idle slope, not at line rate.
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	a.Port().SetShaper(NewCreditShaper(frame.PrioML, 10e6))
	var arrivals []sim.Time
	b.OnReceive(func(*frame.Frame) { arrivals = append(arrivals, e.Now()) })
	for i := 0; i < 100; i++ {
		a.Send(&frame.Frame{Dst: b.MAC(), Tagged: true, Priority: frame.PrioML, VID: 20, Payload: make([]byte, 1000)})
	}
	e.Run()
	if len(arrivals) != 100 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	span := arrivals[len(arrivals)-1].Sub(arrivals[0])
	// 99 frames × 1018B × 8b / 10Mb/s ≈ 80.6 ms.
	rate := float64(99*1018*8) / span.Seconds()
	if rate > 11e6 {
		t.Fatalf("shaped rate = %.1f Mb/s, exceeds 10 Mb/s idle slope", rate/1e6)
	}
	if rate < 9e6 {
		t.Fatalf("shaped rate = %.1f Mb/s, far below idle slope", rate/1e6)
	}
}

func TestCreditShaperLeavesOtherClassesAlone(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e, 1e9, 0)
	a.Port().SetShaper(NewCreditShaper(frame.PrioML, 1e6))
	var rtAt []sim.Time
	b.OnReceive(func(f *frame.Frame) {
		if f.EffectivePriority() == frame.PrioRT {
			rtAt = append(rtAt, e.Now())
		}
	})
	for i := 0; i < 10; i++ {
		a.Send(&frame.Frame{Dst: b.MAC(), Tagged: true, Priority: frame.PrioRT, VID: 10, Payload: make([]byte, 50)})
	}
	e.Run()
	if len(rtAt) != 10 {
		t.Fatalf("RT delivered %d", len(rtAt))
	}
	// RT frames drain back-to-back at line rate: 68B tagged = 544 ns.
	if got := rtAt[9].Sub(rtAt[0]); got != 9*544*sim.Nanosecond {
		t.Fatalf("RT drain time = %v, shaped by mistake", got)
	}
}

func TestCreditShaperProtectsRTFromShapedBurst(t *testing.T) {
	// A shaped ML burst cannot starve RT: RT preempts via strict
	// priority AND the shaper spaces the ML frames out.
	e := sim.NewEngine(1)
	a, b := pair(e, 100e6, 0)
	a.Port().SetShaper(NewCreditShaper(frame.PrioML, 20e6))
	var rtCount, mlCount int
	b.OnReceive(func(f *frame.Frame) {
		if f.EffectivePriority() == frame.PrioRT {
			rtCount++
		} else {
			mlCount++
		}
	})
	for i := 0; i < 50; i++ {
		a.Send(&frame.Frame{Dst: b.MAC(), Tagged: true, Priority: frame.PrioML, VID: 20, Payload: make([]byte, 1400)})
	}
	tk := e.Every(0, sim.Millisecond, func() {
		a.Send(&frame.Frame{Dst: b.MAC(), Tagged: true, Priority: frame.PrioRT, VID: 10, Payload: make([]byte, 40)})
	})
	e.RunUntil(sim.Time(50 * sim.Millisecond))
	tk.Stop()
	e.Run()
	if rtCount < 49 {
		t.Fatalf("RT frames = %d", rtCount)
	}
	if mlCount != 50 {
		t.Fatalf("ML frames = %d", mlCount)
	}
}

func TestCreditShaperBadSlopePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero slope accepted")
		}
	}()
	NewCreditShaper(frame.PrioML, 0)
}

func TestPriorityQueueRingWraparound(t *testing.T) {
	// Interleaved push/pop cycles the head index through the ring many
	// times; FIFO order per class must survive the wraparound.
	q := NewPriorityQueue(8)
	mk := func(i int) *frame.Frame {
		return &frame.Frame{Tagged: true, Priority: frame.PrioRT, Meta: frame.Meta{FlowID: uint32(i)}}
	}
	next := 0
	want := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < 5; i++ {
			if !q.Push(mk(next)) {
				t.Fatalf("push %d rejected below limit", next)
			}
			next++
		}
		for i := 0; i < 5; i++ {
			f := q.Pop()
			if f == nil {
				t.Fatal("pop returned nil with frames queued")
			}
			if int(f.Meta.FlowID) != want {
				t.Fatalf("FIFO broken across wraparound: got %d, want %d", f.Meta.FlowID, want)
			}
			want++
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestPriorityQueueClassLenAndClearAfterWrap(t *testing.T) {
	q := NewPriorityQueue(16)
	// Wrap the PCP-5 ring: fill, drain half, refill.
	for i := 0; i < 16; i++ {
		q.Push(&frame.Frame{Tagged: true, Priority: 5})
	}
	for i := 0; i < 10; i++ {
		q.Pop()
	}
	for i := 0; i < 10; i++ {
		q.Push(&frame.Frame{Tagged: true, Priority: 5})
	}
	if got := q.ClassLen(5); got != 16 {
		t.Fatalf("ClassLen(5) = %d, want 16", got)
	}
	if !q.Push(&frame.Frame{Tagged: true, Priority: 4}) {
		t.Fatal("other class rejected")
	}
	if q.Len() != 17 {
		t.Fatalf("Len = %d, want 17", q.Len())
	}
	// Tail drop at the limit, counted per class.
	if q.Push(&frame.Frame{Tagged: true, Priority: 5}) {
		t.Fatal("push above class limit accepted")
	}
	if q.DroppedPerClass[5] != 1 {
		t.Fatalf("DroppedPerClass[5] = %d, want 1", q.DroppedPerClass[5])
	}
	q.Clear()
	if q.Len() != 0 || q.ClassLen(5) != 0 || q.ClassLen(4) != 0 {
		t.Fatal("Clear left residue")
	}
	if q.Peek() != nil || q.Pop() != nil {
		t.Fatal("Peek/Pop non-nil after Clear")
	}
	// Drop counters survive Clear (they are lifetime stats).
	if q.DroppedPerClass[5] != 1 {
		t.Fatalf("Clear reset drop counters")
	}
	// Ring still usable after Clear.
	q.Push(&frame.Frame{Tagged: true, Priority: 5})
	if q.ClassLen(5) != 1 {
		t.Fatal("push after Clear failed")
	}
}

func TestPriorityQueuePopIsAllocFree(t *testing.T) {
	q := NewPriorityQueue(1 << 12)
	f := &frame.Frame{Tagged: true, Priority: 3}
	for i := 0; i < 1024; i++ {
		q.Push(f)
	}
	if avg := testing.AllocsPerRun(500, func() {
		q.Push(f)
		q.Pop()
	}); avg != 0 {
		t.Fatalf("Push+Pop allocates %v per op in steady state, want 0", avg)
	}
}
