package simnet

import "steelnet/internal/frame"

// PriorityQueue is a strict-priority egress queue with eight classes
// (one per 802.1Q PCP value) and a per-class depth bound. Higher PCP
// drains first; within a class frames are FIFO. Strict priority is what
// keeps never-ending RT microflows (§2.3) isolated from elephant flows
// sharing the port.
type PriorityQueue struct {
	classes [8][]*frame.Frame
	limit   int
	length  int

	// EnqueuedPerClass counts accepted frames per priority class.
	EnqueuedPerClass [8]uint64
	// DroppedPerClass counts tail drops per priority class.
	DroppedPerClass [8]uint64
}

// NewPriorityQueue creates a queue holding at most perClassLimit frames
// in each priority class.
func NewPriorityQueue(perClassLimit int) *PriorityQueue {
	if perClassLimit < 1 {
		perClassLimit = 1
	}
	return &PriorityQueue{limit: perClassLimit}
}

// Push enqueues f by its effective priority. It returns false on tail
// drop.
func (q *PriorityQueue) Push(f *frame.Frame) bool {
	c := int(f.EffectivePriority())
	if len(q.classes[c]) >= q.limit {
		q.DroppedPerClass[c]++
		return false
	}
	q.classes[c] = append(q.classes[c], f)
	q.EnqueuedPerClass[c]++
	q.length++
	return true
}

// Peek returns the next frame to transmit without removing it, or nil.
func (q *PriorityQueue) Peek() *frame.Frame {
	for c := 7; c >= 0; c-- {
		if len(q.classes[c]) > 0 {
			return q.classes[c][0]
		}
	}
	return nil
}

// Pop removes and returns the next frame, or nil when empty.
func (q *PriorityQueue) Pop() *frame.Frame {
	for c := 7; c >= 0; c-- {
		if cls := q.classes[c]; len(cls) > 0 {
			f := cls[0]
			copy(cls, cls[1:])
			q.classes[c] = cls[:len(cls)-1]
			q.length--
			return f
		}
	}
	return nil
}

// Len returns the number of queued frames across all classes.
func (q *PriorityQueue) Len() int { return q.length }

// ClassLen returns the depth of one priority class.
func (q *PriorityQueue) ClassLen(c frame.PCP) int { return len(q.classes[int(c&7)]) }

// Clear drops all queued frames.
func (q *PriorityQueue) Clear() {
	for c := range q.classes {
		q.classes[c] = nil
	}
	q.length = 0
}
