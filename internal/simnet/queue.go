package simnet

import "steelnet/internal/frame"

// classRing is one priority class's FIFO, backed by a power-of-two ring
// buffer. Dequeue moves a head index instead of shifting the slice, so
// Pop is O(1) where the previous slice-based queue paid an O(n) copy per
// frame.
type classRing struct {
	buf  []*frame.Frame // len(buf) is always 0 or a power of two
	head int
	n    int
}

// push appends f, growing the ring when full. The caller enforces the
// class depth limit.
func (r *classRing) push(f *frame.Frame) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = f
	r.n++
}

// grow doubles the ring, unrolling the wrapped contents to the front.
func (r *classRing) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]*frame.Frame, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// peek returns the head frame without removing it, or nil when empty.
func (r *classRing) peek() *frame.Frame {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// pop removes and returns the head frame, or nil when empty.
func (r *classRing) pop() *frame.Frame {
	if r.n == 0 {
		return nil
	}
	f := r.buf[r.head]
	r.buf[r.head] = nil // release the reference for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return f
}

// clear drops all queued frames, keeping the ring's capacity for reuse.
func (r *classRing) clear() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = nil
	}
	r.head = 0
	r.n = 0
}

// PriorityQueue is a strict-priority egress queue with eight classes
// (one per 802.1Q PCP value) and a per-class depth bound. Higher PCP
// drains first; within a class frames are FIFO. Strict priority is what
// keeps never-ending RT microflows (§2.3) isolated from elephant flows
// sharing the port.
type PriorityQueue struct {
	classes [8]classRing
	limit   int
	length  int

	// EnqueuedPerClass counts accepted frames per priority class.
	EnqueuedPerClass [8]uint64
	// DroppedPerClass counts tail drops per priority class.
	DroppedPerClass [8]uint64
}

// NewPriorityQueue creates a queue holding at most perClassLimit frames
// in each priority class.
func NewPriorityQueue(perClassLimit int) *PriorityQueue {
	if perClassLimit < 1 {
		perClassLimit = 1
	}
	return &PriorityQueue{limit: perClassLimit}
}

// Push enqueues f by its effective priority. It returns false on tail
// drop.
func (q *PriorityQueue) Push(f *frame.Frame) bool {
	c := int(f.EffectivePriority())
	if q.classes[c].n >= q.limit {
		q.DroppedPerClass[c]++
		return false
	}
	q.classes[c].push(f)
	q.EnqueuedPerClass[c]++
	q.length++
	return true
}

// Peek returns the next frame to transmit without removing it, or nil.
func (q *PriorityQueue) Peek() *frame.Frame {
	for c := 7; c >= 0; c-- {
		if q.classes[c].n > 0 {
			return q.classes[c].peek()
		}
	}
	return nil
}

// Pop removes and returns the next frame, or nil when empty.
func (q *PriorityQueue) Pop() *frame.Frame {
	for c := 7; c >= 0; c-- {
		if q.classes[c].n > 0 {
			q.length--
			return q.classes[c].pop()
		}
	}
	return nil
}

// Len returns the number of queued frames across all classes.
func (q *PriorityQueue) Len() int { return q.length }

// ClassLen returns the depth of one priority class.
func (q *PriorityQueue) ClassLen(c frame.PCP) int { return q.classes[int(c&7)].n }

// Limit returns the per-class depth bound.
func (q *PriorityQueue) Limit() int { return q.limit }

// Clear drops all queued frames. Ring capacity is retained so the next
// burst does not reallocate.
func (q *PriorityQueue) Clear() {
	for c := range q.classes {
		q.classes[c].clear()
	}
	q.length = 0
}

// Drain empties the queue like Clear but hands every dropped frame to
// fn, highest priority class first, FIFO within a class — the hook
// pooled transports need to reclaim frames a failure throws away.
func (q *PriorityQueue) Drain(fn func(*frame.Frame)) {
	for c := 7; c >= 0; c-- {
		for f := q.classes[c].pop(); f != nil; f = q.classes[c].pop() {
			fn(f)
		}
	}
	q.length = 0
}
