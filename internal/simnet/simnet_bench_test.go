package simnet

import (
	"testing"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
)

func BenchmarkSwitchForwarding(b *testing.B) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{Latency: sim.Microsecond})
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	Connect(e, "a", src.Port(), sw.Port(0), 10e9, 0)
	Connect(e, "b", dst.Port(), sw.Port(1), 10e9, 0)
	sw.AddStatic(dst.MAC(), 1)
	// Recycle frames through a pool so the benchmark measures only the
	// simulator path: with telemetry disabled the whole host→switch→host
	// journey must be 0 allocs/op (the CI zero-overhead guard).
	pool := &frame.Pool{}
	dst.OnReceive(pool.Put)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := pool.Get(64)
		f.Dst = dst.MAC()
		src.Send(f)
		e.Run()
	}
}

// BenchmarkSwitchForwardingINT is the same journey with the hosts as
// INT source and sink sharing a stack free list: the delta against
// BenchmarkSwitchForwarding is the whole price of in-band telemetry
// (stack attach, one transit stamp, sink strip), asserted separately by
// TestINTPooledPathZeroAllocs.
func BenchmarkSwitchForwardingINT(b *testing.B) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, "sw", 2, SwitchConfig{Latency: sim.Microsecond})
	src := NewHost(e, "src", frame.NewMAC(1))
	dst := NewHost(e, "dst", frame.NewMAC(2))
	Connect(e, "a", src.Port(), sw.Port(0), 10e9, 0)
	Connect(e, "b", dst.Port(), sw.Port(1), 10e9, 0)
	sw.AddStatic(dst.MAC(), 1)
	src.SetINTSource(1, 8, false)
	dst.SetINTSink(discardSink{})
	intPool := &frame.INTPool{}
	src.SetINTPool(intPool)
	dst.SetINTPool(intPool)
	pool := &frame.Pool{}
	dst.OnReceive(pool.Put)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := pool.Get(64)
		f.Dst = dst.MAC()
		src.Send(f)
		e.Run()
	}
}

// discardSink reads the stack without retaining it, like a collector
// that folds observations into aggregates.
type discardSink struct{}

func (discardSink) SinkINT(node string, f *frame.Frame, nowNS int64) {
	for _, h := range f.INT.Hops {
		_ = h.HopLatencyNS()
	}
}

func BenchmarkPriorityQueue(b *testing.B) {
	q := NewPriorityQueue(1 << 16)
	frames := make([]*frame.Frame, 8)
	for i := range frames {
		frames[i] = &frame.Frame{Tagged: true, Priority: frame.PCP(i)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(frames[i%8])
		if i%4 == 3 {
			q.Pop()
		}
		if q.Len() > 1<<15 {
			q.Clear()
		}
	}
}

func BenchmarkTASNextOpen(b *testing.B) {
	g := RTGuardSchedule(sim.Millisecond, 200*sim.Microsecond)
	for i := 0; i < b.N; i++ {
		g.NextOpen(sim.Time(i), frame.PrioBestEffort, 10*sim.Microsecond)
	}
}
