package simnet

import (
	"fmt"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// Switch is a store-and-forward Ethernet switch with MAC learning,
// static FIB entries, per-port strict-priority egress queues and an
// optional TAS schedule per port. Forwarding latency is a fixed pipeline
// delay plus a small jitter term drawn from the switch's RNG stream —
// real cut-through ASICs are faster, but the paper's arguments only need
// the store-and-forward ordering of delays.
type Switch struct {
	name    string
	engine  *sim.Engine
	ports   []*Port
	fib     map[frame.MAC]int
	static  map[frame.MAC]bool
	blocked map[int]bool
	// defaultPort, when >= 0, is where unicast frames with no FIB entry
	// go instead of flooding — the "default route up" of structured
	// topologies, where flooding a 10k-switch campus for every unknown
	// MAC would be both wrong and ruinously slow.
	defaultPort int
	latency     sim.Duration
	jitter      sim.Duration
	rng         *sim.RNG
	failed      bool

	// tr observes forwarding decisions; nil disables. fwdFree is the
	// free list of pipeline-delay contexts, so the receive→forward hop
	// does not allocate a closure per frame.
	tr      *telemetry.Tracer
	fwdFree *fwdCtx

	// OnControlFrame, when set, sees every received frame before normal
	// processing; returning true consumes it. Ring-redundancy managers
	// and other switch-resident protocols hook in here.
	OnControlFrame func(port int, f *frame.Frame) bool

	// FloodedFrames counts frames forwarded by flooding (unknown or
	// broadcast destination).
	FloodedFrames uint64
	// ForwardedFrames counts all frames forwarded (including floods).
	ForwardedFrames uint64
	// DroppedWhileFailed counts frames that arrived while the switch was
	// crashed (including control frames — a dead switch hears nothing).
	DroppedWhileFailed uint64
	// BlockedDrops counts data frames dying at a blocked ingress or
	// egress port; HairpinDrops counts frames whose FIB egress equals
	// their ingress. Both are normal switch behavior, not faults, but a
	// conservation audit needs them enumerated.
	BlockedDrops, HairpinDrops uint64
	// INTDrops counts frames destroyed because a strict INT stack was
	// already at MaxHops when this switch tried to stamp its transit
	// record.
	INTDrops uint64
}

// SwitchConfig sets a switch's forwarding-latency model.
type SwitchConfig struct {
	// Latency is the fixed pipeline (lookup + store-and-forward) delay.
	Latency sim.Duration
	// Jitter is the standard deviation of the latency noise.
	Jitter sim.Duration
}

// DefaultSwitchConfig is a contemporary industrial GbE switch: ~2 µs
// pipeline, tens of ns of variation.
var DefaultSwitchConfig = SwitchConfig{Latency: 2 * sim.Microsecond, Jitter: 50 * sim.Nanosecond}

// NewSwitch creates a switch with nports ports.
func NewSwitch(engine *sim.Engine, name string, nports int, cfg SwitchConfig) *Switch {
	s := &Switch{
		name:        name,
		engine:      engine,
		fib:         make(map[frame.MAC]int),
		static:      make(map[frame.MAC]bool),
		blocked:     make(map[int]bool),
		defaultPort: -1,
		latency:     cfg.Latency,
		jitter:      cfg.Jitter,
		rng:         engine.RNG("switch/" + name),
	}
	for i := 0; i < nports; i++ {
		s.ports = append(s.ports, NewPort(s, i))
	}
	return s
}

// Name implements Node.
func (s *Switch) Name() string { return s.name }

// Port returns port i.
func (s *Switch) Port(i int) *Port {
	if i < 0 || i >= len(s.ports) {
		panic(fmt.Sprintf("simnet: switch %s has no port %d", s.name, i))
	}
	return s.ports[i]
}

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// SetTracer attaches a lifecycle tracer to the switch and all its ports.
func (s *Switch) SetTracer(t *telemetry.Tracer) {
	s.tr = t
	for _, p := range s.ports {
		p.SetTracer(t)
	}
}

// SetQueueDepth replaces every port's egress queue with one holding
// perClassLimit frames per priority class. Call before traffic flows.
func (s *Switch) SetQueueDepth(perClassLimit int) {
	for _, p := range s.ports {
		p.SetQueue(NewPriorityQueue(perClassLimit))
	}
}

// AddStatic installs a permanent FIB entry mapping mac to port.
func (s *Switch) AddStatic(mac frame.MAC, port int) {
	s.fib[mac] = port
	s.static[mac] = true
}

// SetDefaultPort routes unicast frames with no FIB entry out of port
// instead of flooding. Pass -1 to restore flooding. Broadcast and
// multicast still flood.
func (s *Switch) SetDefaultPort(port int) {
	if port >= len(s.ports) {
		panic(fmt.Sprintf("simnet: switch %s has no port %d", s.name, port))
	}
	if port < 0 {
		port = -1
	}
	s.defaultPort = port
}

// LookupPort returns the FIB port for mac, or -1 when unknown.
func (s *Switch) LookupPort(mac frame.MAC) int {
	if p, ok := s.fib[mac]; ok {
		return p
	}
	return -1
}

// SetPortBlocked sets a port's data-plane blocking state. Blocked ports
// drop data frames in both directions but still carry control frames
// consumed by OnControlFrame — the primitive ring redundancy needs to
// keep a physical loop from becoming a forwarding loop.
func (s *Switch) SetPortBlocked(port int, blocked bool) {
	if port < 0 || port >= len(s.ports) {
		panic(fmt.Sprintf("simnet: switch %s has no port %d", s.name, port))
	}
	s.blocked[port] = blocked
}

// PortBlocked reports a port's blocking state.
func (s *Switch) PortBlocked(port int) bool { return s.blocked[port] }

// FlushDynamic clears every learned (non-static) FIB entry — what a
// topology-change notification triggers so traffic can re-learn paths.
func (s *Switch) FlushDynamic() {
	for mac := range s.fib {
		if !s.static[mac] {
			delete(s.fib, mac)
		}
	}
}

// Fail crashes the switch: everything volatile dies — queued egress
// frames, paused transmissions, the learned FIB — and until Restart the
// switch neither forwards nor answers control frames. Attached links
// stay up (the failure is the box, not the cable), which is exactly the
// silent-peer signature ring-redundancy protocols must detect from
// missing test frames.
func (s *Switch) Fail() {
	if s.failed {
		return
	}
	s.failed = true
	for _, p := range s.ports {
		p.failFlush()
	}
	s.FlushDynamic()
}

// Restart brings a crashed switch back cold: empty learned FIB, empty
// queues, same static entries and blocking state (those model
// configuration, which survives reboot).
func (s *Switch) Restart() { s.failed = false }

// Failed reports whether the switch is currently crashed.
func (s *Switch) Failed() bool { return s.failed }

// fwdCtx carries one frame across the switch's pipeline delay. Like the
// port's flight, each context owns one prebuilt closure and recycles
// through a free list, so the receive→forward hop allocates nothing in
// steady state.
type fwdCtx struct {
	s *Switch
	f *frame.Frame
	// intIn is the ingress timestamp for the frame's INT transit record,
	// captured at Receive; meaningful only when f carries a stack.
	intIn int64
	in    int
	run   func()
	next  *fwdCtx
}

func (s *Switch) getFwd() *fwdCtx {
	c := s.fwdFree
	if c == nil {
		c = &fwdCtx{s: s}
		c.run = func() { c.s.forwardCtx(c) }
	} else {
		s.fwdFree = c.next
		c.next = nil
	}
	return c
}

func (s *Switch) putFwd(c *fwdCtx) {
	c.f = nil
	c.intIn = 0
	c.next = s.fwdFree
	s.fwdFree = c
}

// forwardCtx unpacks and recycles the context, then forwards.
func (s *Switch) forwardCtx(c *fwdCtx) {
	in, f, intIn := c.in, c.f, c.intIn
	s.putFwd(c)
	s.forward(in, f, intIn)
}

// Receive implements Node: learn, then forward after the pipeline delay.
func (s *Switch) Receive(port *Port, f *frame.Frame) {
	if s.failed {
		s.DroppedWhileFailed++
		port.FailedDrops++
		if s.tr != nil {
			s.tr.Drop(s.name, port.Index, f, telemetry.CauseSwitchFailed)
		}
		port.reclaim(f)
		return
	}
	if s.OnControlFrame != nil && s.OnControlFrame(port.Index, f) {
		return
	}
	if s.blocked[port.Index] {
		s.BlockedDrops++
		if s.tr != nil {
			s.tr.Drop(s.name, port.Index, f, telemetry.CauseBlocked)
		}
		port.reclaim(f) // data frames die at blocked ports
		return
	}
	// Learn the source unless pinned statically.
	if !f.Src.IsMulticast() && !s.static[f.Src] {
		s.fib[f.Src] = port.Index
	}
	d := s.latency
	if s.jitter > 0 {
		d = s.rng.NormDuration(s.latency, s.jitter, s.latency/2)
	}
	c := s.getFwd()
	c.f = f
	c.in = port.Index
	if f.INT != nil {
		c.intIn = int64(s.engine.Now())
	}
	s.engine.After(d, c.run)
}

// stampINT pushes this switch's transit record onto f's INT stack:
// the ingress/egress pipeline instants, the depth of the chosen egress
// queue in the frame's priority class, and a drop-risk flag when that
// class sits at or above 3/4 of its bound. It reports false when the
// frame must die (strict stack already full); lenient stacks forward
// unstamped.
func (s *Switch) stampINT(f *frame.Frame, intIn int64, out int) bool {
	q := s.ports[out].queue
	depth := q.ClassLen(f.EffectivePriority())
	ok := f.INT.PushHop(frame.INTHop{
		Node:       s.name,
		IngressNS:  intIn,
		EgressNS:   int64(s.engine.Now()),
		QueueDepth: int32(depth),
		DropRisk:   depth*4 >= q.Limit()*3,
	})
	return ok || !f.INT.Strict
}

// dropINT destroys a frame whose strict INT stack overflowed at egress
// port out. The frame dies inside the switch — after the upstream link
// counted it delivered — so, like FailedDrops, these sit outside the
// egress-port conservation identity by construction.
func (s *Switch) dropINT(inPort, out int, f *frame.Frame) {
	s.INTDrops++
	s.ports[out].INTDrops++
	if s.tr != nil {
		s.tr.Drop(s.name, out, f, telemetry.CauseINT)
	}
	s.ports[inPort].reclaim(f)
}

func (s *Switch) forward(inPort int, f *frame.Frame, intIn int64) {
	if s.failed {
		// Crashed mid-pipeline: the frame was in the store-and-forward
		// buffer and dies with the switch.
		s.DroppedWhileFailed++
		s.ports[inPort].FailedDrops++
		if s.tr != nil {
			s.tr.Drop(s.name, inPort, f, telemetry.CauseSwitchFailed)
		}
		s.ports[inPort].reclaim(f)
		return
	}
	if f.Dst.IsBroadcast() || f.Dst.IsMulticast() {
		s.flood(inPort, f, intIn)
		return
	}
	out, ok := s.fib[f.Dst]
	if !ok {
		if s.defaultPort < 0 {
			s.flood(inPort, f, intIn)
			return
		}
		out = s.defaultPort
	}
	if out == inPort || s.blocked[out] {
		// Hairpin or blocked egress; drop like a real switch.
		if out == inPort {
			s.HairpinDrops++
			if s.tr != nil {
				s.tr.Drop(s.name, inPort, f, telemetry.CauseHairpin)
			}
		} else {
			s.BlockedDrops++
			if s.tr != nil {
				s.tr.Drop(s.name, out, f, telemetry.CauseBlocked)
			}
		}
		s.ports[inPort].reclaim(f)
		return
	}
	if f.INT != nil && !s.stampINT(f, intIn, out) {
		s.dropINT(inPort, out, f)
		return
	}
	s.ForwardedFrames++
	if s.tr != nil {
		s.tr.Forward(s.name, inPort, out, f)
	}
	if !s.ports[out].Send(f) {
		// The egress queue refused the frame; the switch is its owner
		// here, so it reclaims on the spot through the egress hook.
		s.ports[out].reclaim(f)
	}
}

func (s *Switch) flood(inPort int, f *frame.Frame, intIn int64) {
	s.FloodedFrames++
	if s.tr != nil {
		legs := 0
		for i, p := range s.ports {
			if i != inPort && p.Connected() && !s.blocked[i] {
				legs++
			}
		}
		s.tr.Flood(s.name, inPort, f, legs)
	}
	for i, p := range s.ports {
		if i == inPort || !p.Connected() || s.blocked[i] {
			continue
		}
		g := f.Clone()
		// Each leg stamps its own copy: the clones carry independent
		// stacks, so per-leg egress queue depths stay distinguishable.
		if g.INT != nil && !s.stampINT(g, intIn, i) {
			s.dropINT(inPort, i, g)
			continue
		}
		s.ForwardedFrames++
		if !p.Send(g) {
			p.reclaim(g)
		}
	}
	// Every leg got a copy; the original dies at the ingress port.
	s.ports[inPort].reclaim(f)
}
