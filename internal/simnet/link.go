// Package simnet is the discrete-event network simulator underneath every
// experiment in the repository: full-duplex links with serialization and
// propagation delay, store-and-forward switches with per-priority output
// queues, optional 802.1Qbv time-aware shaping (TAS) gates, passive taps,
// and host endpoints. It deliberately models the mechanisms the paper's
// arguments rest on — queueing delay from traffic mixing (§2.3, §5),
// priority isolation for RT traffic, and bounded, observable forwarding
// latency — while staying deterministic (all noise comes from named
// sim.RNG streams).
package simnet

import (
	"fmt"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
)

// Node is anything that can be attached to links through ports: switches,
// hosts, taps, the programmable data plane.
type Node interface {
	// Name returns the node's unique name within its network.
	Name() string
	// Receive delivers a frame arriving on the node's port.
	Receive(port *Port, f *frame.Frame)
}

// Port is one attachment point of a node. A port is bound to at most one
// link end. Egress frames queue at the port and drain at link rate.
type Port struct {
	Owner Node
	Index int
	link  *Link
	end   int // 0 or 1: which side of the link we are

	queue    *PriorityQueue
	shaper   Shaper
	busy     bool
	pausedTx sim.Event

	// Failure-injection surface (internal/faults). lossRate drops each
	// frame leaving this port with the given probability once it has
	// occupied the wire; corruptRate flips one payload byte at delivery.
	// Draws come from a port-named RNG stream, so injecting faults on
	// one port never perturbs any other stream in the scenario.
	lossRate    float64
	corruptRate float64
	faultRNG    *sim.RNG

	// OnDrop, when set, observes every frame the network destroys after
	// accepting it: frames flushed by a link-down or switch crash, shaper
	// never-eligible drops, and injected in-flight losses. Frames that
	// Send refuses (returning false) stay the caller's and are NOT
	// reported here — pooled transports reclaim those on the spot and
	// reclaim network-owned frames through this hook, keeping every
	// frame accounted for even under fault injection.
	OnDrop func(*frame.Frame)

	// Stats
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	Drops              uint64
	// InjectedDrops counts frames destroyed by loss injection;
	// CorruptedFrames counts frames damaged by corruption injection.
	InjectedDrops, CorruptedFrames uint64
}

// NewPort creates a port owned by owner with the given index and a
// default 256-frame-per-priority queue.
func NewPort(owner Node, index int) *Port {
	return &Port{Owner: owner, Index: index, queue: NewPriorityQueue(256)}
}

// SetQueue replaces the port's egress queue. Must be called before
// traffic flows.
func (p *Port) SetQueue(q *PriorityQueue) { p.queue = q }

// SetTAS installs a time-aware-shaper gate schedule on the port.
func (p *Port) SetTAS(g *GateSchedule) { p.shaper = g }

// SetShaper installs any Shaper (TAS gate schedule, credit-based
// shaper) on the port's egress.
func (p *Port) SetShaper(s Shaper) { p.shaper = s }

// Connected reports whether the port is attached to a link.
func (p *Port) Connected() bool { return p.link != nil }

// Link returns the attached link, or nil.
func (p *Port) Link() *Link { return p.link }

// Peer returns the port on the other side of the link, or nil.
func (p *Port) Peer() *Port {
	if p.link == nil {
		return nil
	}
	return p.link.ports[1-p.end]
}

// QueueDepth returns the number of frames waiting at the port.
func (p *Port) QueueDepth() int { return p.queue.Len() }

// SetLossRate makes the port drop each departing frame with probability
// rate once it has finished serializing (the frame occupies the wire,
// then never arrives — how real loss looks to the sender). Zero disables.
func (p *Port) SetLossRate(rate float64) { p.lossRate = rate }

// SetCorruptRate makes the port flip one payload byte of each delivered
// frame with probability rate, exercising receivers' validation paths.
// Zero disables.
func (p *Port) SetCorruptRate(rate float64) { p.corruptRate = rate }

// rng returns the port's lazily created fault RNG stream. Only the
// fault paths draw from it, so scenarios without injected faults are
// bit-identical to ones where the stream was never created.
func (p *Port) rng() *sim.RNG {
	if p.faultRNG == nil {
		p.faultRNG = p.link.engine.RNG(fmt.Sprintf("faults/port/%s/%d", p.Owner.Name(), p.Index))
	}
	return p.faultRNG
}

// reclaim hands a network-owned frame destroyed by a failure to the
// OnDrop hook, if any.
func (p *Port) reclaim(f *frame.Frame) {
	if p.OnDrop != nil {
		p.OnDrop(f)
	}
}

// Link is a full-duplex point-to-point cable. Each direction serializes
// independently: a frame occupies the direction for wirelen*8/rate, then
// arrives after the propagation delay. Links enforce Ethernet's 64-byte
// minimum on serialization time so tiny industrial payloads pay the real
// wire cost.
type Link struct {
	Name    string
	RateBps float64
	Prop    sim.Duration
	engine  *sim.Engine
	ports   [2]*Port
	up      bool
	extra   [2]sim.Duration // per-direction added delay (asymmetry)

	// Delivered counts frames that completed traversal, per direction.
	Delivered [2]uint64
}

// SetAsymmetry adds extra one-way delay to the direction leaving the
// link's end (0 or 1). Asymmetric paths are what breaks PTP's offset
// estimate (§3), so experiments need to dial them in explicitly.
func (l *Link) SetAsymmetry(end int, extra sim.Duration) {
	if end != 0 && end != 1 {
		panic("simnet: link end must be 0 or 1")
	}
	if extra < 0 {
		panic("simnet: negative asymmetry")
	}
	l.extra[end] = extra
}

const minWireBytes = 64

// Connect wires two ports with a new link. Either port already being
// connected panics: rewiring mid-simulation would corrupt in-flight state.
func Connect(engine *sim.Engine, name string, a, b *Port, rateBps float64, prop sim.Duration) *Link {
	if a.link != nil || b.link != nil {
		panic(fmt.Sprintf("simnet: port already connected (link %q)", name))
	}
	if rateBps <= 0 {
		panic("simnet: non-positive link rate")
	}
	l := &Link{Name: name, RateBps: rateBps, Prop: prop, engine: engine, up: true}
	l.ports[0], l.ports[1] = a, b
	a.link, a.end = l, 0
	b.link, b.end = l, 1
	return l
}

// Up reports whether the link is carrying traffic.
func (l *Link) Up() bool { return l.up }

// SetUp changes the link state. Taking a link down drops queued and
// in-flight frames — the failure model for §2.2.
func (l *Link) SetUp(up bool) {
	l.up = up
	if !up {
		for _, p := range l.ports {
			if p != nil {
				p.Drops += uint64(p.queue.Len())
				p.queue.Drain(p.reclaim)
				p.busy = false
				p.pausedTx.Cancel()
				p.pausedTx = sim.Event{}
			}
		}
	}
}

// SerializationDelay returns the time a frame of wireLen bytes occupies
// the wire.
func (l *Link) SerializationDelay(wireLen int) sim.Duration {
	if wireLen < minWireBytes {
		wireLen = minWireBytes
	}
	return sim.Duration(float64(wireLen*8) / l.RateBps * 1e9)
}

// Send enqueues a frame for transmission out of port p. It returns false
// when the frame was dropped (full queue or downed link).
func (p *Port) Send(f *frame.Frame) bool {
	if p.link == nil || !p.link.up {
		p.Drops++
		return false
	}
	if !p.queue.Push(f) {
		p.Drops++
		return false
	}
	// A port paused on a closed gate re-evaluates on arrival: TAS gates
	// are per-queue, so a newly queued higher-priority frame whose gate
	// is open must not wait behind a gated lower-priority head.
	if p.pausedTx.Pending() {
		p.pausedTx.Cancel()
		p.pausedTx = sim.Event{}
		p.busy = false
	}
	if !p.busy {
		p.startNext()
	}
	return true
}

// startNext begins serializing the next eligible queued frame.
func (p *Port) startNext() {
	l := p.link
	if l == nil || !l.up {
		return
	}
	now := l.engine.Now()
	f := p.queue.Peek()
	if f == nil {
		p.busy = false
		return
	}
	ser := l.SerializationDelay(f.WireLen())
	if p.shaper != nil {
		start, ok := p.shaper.NextEligible(now, f.EffectivePriority(), ser)
		if !ok {
			// Never eligible (e.g. frame longer than any gate window):
			// drop to avoid deadlock.
			p.reclaim(p.queue.Pop())
			p.Drops++
			p.busy = false
			if p.queue.Len() > 0 {
				p.startNext()
			}
			return
		}
		if start > now {
			p.busy = true
			p.pausedTx = l.engine.Schedule(start, func() {
				p.pausedTx = sim.Event{}
				p.busy = false
				p.startNext()
			})
			return
		}
	}
	p.queue.Pop()
	p.busy = true
	if p.shaper != nil {
		p.shaper.OnTransmit(now, f.EffectivePriority(), f.WireLen(), ser)
	}
	p.TxFrames++
	p.TxBytes += uint64(f.WireLen())
	end := p.end
	lost := p.lossRate > 0 && p.rng().Bool(p.lossRate)
	l.engine.After(ser, func() {
		// Serialization done: wire is free for the next frame; the
		// in-flight frame arrives after propagation.
		switch {
		case !l.up:
			// Link died mid-serialization: the frame dies on the wire.
			p.reclaim(f)
		case lost:
			p.InjectedDrops++
			p.reclaim(f)
		default:
			l.engine.After(l.Prop+l.extra[end], func() {
				if !l.up {
					p.reclaim(f)
					return
				}
				if p.corruptRate > 0 && len(f.Payload) > 0 && p.rng().Bool(p.corruptRate) {
					f.Payload[p.rng().Intn(len(f.Payload))] ^= 0xff
					p.CorruptedFrames++
				}
				dst := l.ports[1-end]
				l.Delivered[end]++
				dst.RxFrames++
				dst.RxBytes += uint64(f.WireLen())
				dst.Owner.Receive(dst, f)
			})
		}
		p.busy = false
		if p.queue.Len() > 0 {
			p.startNext()
		}
	})
}
