// Package simnet is the discrete-event network simulator underneath every
// experiment in the repository: full-duplex links with serialization and
// propagation delay, store-and-forward switches with per-priority output
// queues, optional 802.1Qbv time-aware shaping (TAS) gates, passive taps,
// and host endpoints. It deliberately models the mechanisms the paper's
// arguments rest on — queueing delay from traffic mixing (§2.3, §5),
// priority isolation for RT traffic, and bounded, observable forwarding
// latency — while staying deterministic (all noise comes from named
// sim.RNG streams).
package simnet

import (
	"fmt"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// Node is anything that can be attached to links through ports: switches,
// hosts, taps, the programmable data plane.
type Node interface {
	// Name returns the node's unique name within its network.
	Name() string
	// Receive delivers a frame arriving on the node's port.
	Receive(port *Port, f *frame.Frame)
}

// Port is one attachment point of a node. A port is bound to at most one
// link end. Egress frames queue at the port and drain at link rate.
type Port struct {
	Owner Node
	Index int
	link  *Link
	end   int // 0 or 1: which side of the link we are

	queue    *PriorityQueue
	shaper   Shaper
	busy     bool
	pausedTx sim.Event

	// tr observes the port's frame lifecycle; nil (the default) keeps
	// the egress path allocation-free. flights is the free list of
	// transmission contexts; inFlight counts frames that left the queue
	// and have not yet reached a terminal outcome.
	tr       *telemetry.Tracer
	flights  *flight
	inFlight int

	// Failure-injection surface (internal/faults). lossRate drops each
	// frame leaving this port with the given probability once it has
	// occupied the wire; corruptRate flips one payload byte at delivery.
	// Draws come from a port-named RNG stream, so injecting faults on
	// one port never perturbs any other stream in the scenario.
	lossRate    float64
	corruptRate float64
	faultRNG    *sim.RNG

	// OnDrop, when set, observes every frame the network destroys after
	// accepting it: frames flushed by a link-down or switch crash, shaper
	// never-eligible drops, injected in-flight losses, and frames a
	// switch destroys internally (blocked ports, hairpins, refused egress
	// queues, flood leftovers). Frames that Send refuses (returning
	// false) to an *external* caller stay that caller's and are NOT
	// reported here — pooled transports reclaim those on the spot and
	// reclaim network-owned frames through this hook, keeping every
	// frame accounted for even under fault injection.
	OnDrop func(*frame.Frame)

	// Stats
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	Drops              uint64
	// InjectedDrops counts frames destroyed by loss injection;
	// CorruptedFrames counts frames damaged by corruption injection.
	InjectedDrops, CorruptedFrames uint64

	// Drop causes. Drops above keeps its historical meaning (refusals at
	// Send plus shaper and flush destruction); these decompose it and add
	// the causes Drops never counted, so conservation checks can account
	// for every frame:
	//
	//	Drops == OverflowDrops + DownDrops + ShaperDrops + FlushedDrops
	//
	// OverflowDrops: Send refused, queue full. DownDrops: Send refused,
	// link down or absent. ShaperDrops: never-eligible under the gate
	// schedule. FlushedDrops: queued frames destroyed by link-down or
	// switch crash. WireDrops: in-flight frames destroyed by a link dying
	// under them. FailedDrops: frames a crashed switch destroyed on
	// arrival at this port. INTDrops: frames a strict INT stack-overflow
	// destroyed when the switch chose this port as egress (the frame died
	// inside the switch, before the queue saw it — like FailedDrops it
	// sits outside the port's conservation identity).
	OverflowDrops, DownDrops, ShaperDrops, FlushedDrops uint64
	WireDrops, FailedDrops, INTDrops                    uint64

	// QueueHighWater is the deepest the egress queue has been.
	QueueHighWater int
}

// NewPort creates a port owned by owner with the given index and a
// default 256-frame-per-priority queue.
func NewPort(owner Node, index int) *Port {
	return &Port{Owner: owner, Index: index, queue: NewPriorityQueue(256)}
}

// SetQueue replaces the port's egress queue. Must be called before
// traffic flows.
func (p *Port) SetQueue(q *PriorityQueue) { p.queue = q }

// SetTAS installs a time-aware-shaper gate schedule on the port.
func (p *Port) SetTAS(g *GateSchedule) { p.shaper = g }

// SetShaper installs any Shaper (TAS gate schedule, credit-based
// shaper) on the port's egress.
func (p *Port) SetShaper(s Shaper) { p.shaper = s }

// SetTracer attaches a lifecycle tracer to the port. Passing nil (the
// default state) disables tracing with zero overhead.
func (p *Port) SetTracer(t *telemetry.Tracer) { p.tr = t }

// Connected reports whether the port is attached to a link.
func (p *Port) Connected() bool { return p.link != nil }

// Link returns the attached link, or nil.
func (p *Port) Link() *Link { return p.link }

// Peer returns the port on the other side of the link, or nil.
func (p *Port) Peer() *Port {
	if p.link == nil {
		return nil
	}
	return p.link.ports[1-p.end]
}

// QueueDepth returns the number of frames waiting at the port.
func (p *Port) QueueDepth() int { return p.queue.Len() }

// InFlight returns frames that left the queue but have not yet reached
// a terminal outcome (delivery or destruction).
func (p *Port) InFlight() int { return p.inFlight }

// Accepted returns the frames the egress queue has accepted — the
// "sent" side of the port's conservation identity (see Account).
func (p *Port) Accepted() uint64 {
	var n uint64
	for _, c := range p.queue.EnqueuedPerClass {
		n += c
	}
	return n
}

// DeliveredFrames returns frames sent from this port that completed
// traversal to the link's far end.
func (p *Port) DeliveredFrames() uint64 {
	if p.link == nil {
		return 0
	}
	return p.link.Delivered[p.end]
}

// SetLossRate makes the port drop each departing frame with probability
// rate once it has finished serializing (the frame occupies the wire,
// then never arrives — how real loss looks to the sender). Zero disables.
func (p *Port) SetLossRate(rate float64) { p.lossRate = rate }

// SetCorruptRate makes the port flip one payload byte of each delivered
// frame with probability rate, exercising receivers' validation paths.
// Zero disables.
func (p *Port) SetCorruptRate(rate float64) { p.corruptRate = rate }

// rng returns the port's lazily created fault RNG stream. Only the
// fault paths draw from it, so scenarios without injected faults are
// bit-identical to ones where the stream was never created.
func (p *Port) rng() *sim.RNG {
	if p.faultRNG == nil {
		p.faultRNG = p.link.engineFor(p.end).RNG(fmt.Sprintf("faults/port/%s/%d", p.Owner.Name(), p.Index))
	}
	return p.faultRNG
}

// reclaim hands a network-owned frame destroyed by a failure to the
// OnDrop hook, if any.
func (p *Port) reclaim(f *frame.Frame) {
	if p.OnDrop != nil {
		p.OnDrop(f)
	}
}

// dropFlush traces and reclaims one frame flushed from the queue by a
// link-down or switch crash. The per-frame counters were already bumped
// in bulk by failFlush.
func (p *Port) dropFlush(f *frame.Frame) {
	if p.tr != nil {
		p.tr.Drop(p.Owner.Name(), p.Index, f, telemetry.CauseFlush)
	}
	p.reclaim(f)
}

// failFlush destroys everything volatile at the port — queued frames
// and any paused transmission — the shared teardown of link-down and
// switch-crash failures.
func (p *Port) failFlush() {
	n := uint64(p.queue.Len())
	p.Drops += n
	p.FlushedDrops += n
	p.queue.Drain(p.dropFlush)
	p.busy = false
	p.pausedTx.Cancel()
	p.pausedTx = sim.Event{}
}

// flight carries one frame's transmission state through the
// serialization- and propagation-completion callbacks. Each flight owns
// two prebuilt closures (the sim.Ticker pattern) and is recycled through
// a per-port free list, so steady-state egress schedules its engine
// events without allocating. A flight may outlive the port's busy window
// — propagation overlaps the next frame's serialization — which is why
// flights are pooled per frame rather than being a single port field.
type flight struct {
	p        *Port
	f        *frame.Frame
	lost     bool
	serDone  func()
	propDone func()
	next     *flight // free-list link
}

// getFlight takes a flight from the free list, building one (with its
// two closures) only on a miss.
func (p *Port) getFlight() *flight {
	fl := p.flights
	if fl == nil {
		fl = &flight{p: p}
		fl.serDone = func() { fl.p.serDone(fl) }
		fl.propDone = func() { fl.p.propDone(fl) }
	} else {
		p.flights = fl.next
		fl.next = nil
	}
	return fl
}

// putFlight recycles a flight. Callers copy out the fields they still
// need first: the flight may be reissued by a reentrant startNext before
// the caller's frame finishes its journey.
func (p *Port) putFlight(fl *flight) {
	fl.f = nil
	fl.lost = false
	fl.next = p.flights
	p.flights = fl
}

// Link is a full-duplex point-to-point cable. Each direction serializes
// independently: a frame occupies the direction for wirelen*8/rate, then
// arrives after the propagation delay. Links enforce Ethernet's 64-byte
// minimum on serialization time so tiny industrial payloads pay the real
// wire cost.
type Link struct {
	Name    string
	RateBps float64
	Prop    sim.Duration
	engine  *sim.Engine
	ports   [2]*Port
	up      bool
	extra   [2]sim.Duration // per-direction added delay (asymmetry)

	// cross is non-nil when the link's two ends live on different shards
	// of a sim.ShardGroup; the propagation leg then crosses the shard
	// boundary as a timestamped group message instead of a local event.
	cross *crossLink

	// Delivered counts frames that completed traversal, per direction.
	// On a cross-shard link each direction's counter is written only by
	// the receiving shard's worker.
	Delivered [2]uint64
}

// crossLink holds the shard-boundary state of a Link whose ends live on
// different shards. Memory discipline: every word is written by exactly
// one shard's worker — sent[end] by the sending end's shard,
// l.Delivered[end] and the receiving port's counters by the receiving
// end's shard — and read by others only at window barriers, which the
// group's WaitGroup orders.
type crossLink struct {
	group *sim.ShardGroup
	shard [2]int         // shard index of each end
	eng   [2]*sim.Engine // engine of each end's shard
	// sent counts frames handed to the group per sending end; the
	// difference sent[e]-Delivered[e] is the cross-shard in-flight count
	// the conservation identity needs (see Accounting.AddCrossLink).
	sent [2]uint64
}

// engineFor returns the engine that owns the given end of the link: the
// per-shard engine for cross-shard links, the link's single engine
// otherwise.
func (l *Link) engineFor(end int) *sim.Engine {
	if l.cross != nil {
		return l.cross.eng[end]
	}
	return l.engine
}

// Cross reports whether the link spans two shards.
func (l *Link) Cross() bool { return l.cross != nil }

// ConnectCross wires two ports with a link whose ends live on shards
// shardA and shardB of group g. Serialization happens on the sending
// shard; the propagation leg becomes a timestamped inter-shard message,
// so the link's total propagation delay (Prop plus any asymmetry) must
// be at least the group's lookahead — the group panics on violation at
// the first send. When both ends land on the same shard this degrades
// to a plain Connect on that shard's engine.
func ConnectCross(g *sim.ShardGroup, name string, a, b *Port, shardA, shardB int, rateBps float64, prop sim.Duration) *Link {
	if shardA == shardB {
		return Connect(g.Shard(shardA), name, a, b, rateBps, prop)
	}
	if prop < g.Lookahead() {
		panic(fmt.Sprintf("simnet: cross-shard link %q propagation %v below group lookahead %v", name, prop, g.Lookahead()))
	}
	if a.link != nil || b.link != nil {
		panic(fmt.Sprintf("simnet: port already connected (link %q)", name))
	}
	if rateBps <= 0 {
		panic("simnet: non-positive link rate")
	}
	l := &Link{Name: name, RateBps: rateBps, Prop: prop, up: true}
	l.cross = &crossLink{
		group: g,
		shard: [2]int{shardA, shardB},
		eng:   [2]*sim.Engine{g.Shard(shardA), g.Shard(shardB)},
	}
	l.ports[0], l.ports[1] = a, b
	a.link, a.end = l, 0
	b.link, b.end = l, 1
	return l
}

// SetAsymmetry adds extra one-way delay to the direction leaving the
// link's end (0 or 1). Asymmetric paths are what breaks PTP's offset
// estimate (§3), so experiments need to dial them in explicitly.
func (l *Link) SetAsymmetry(end int, extra sim.Duration) {
	if end != 0 && end != 1 {
		panic("simnet: link end must be 0 or 1")
	}
	if extra < 0 {
		panic("simnet: negative asymmetry")
	}
	l.extra[end] = extra
}

const minWireBytes = 64

// Connect wires two ports with a new link. Either port already being
// connected panics: rewiring mid-simulation would corrupt in-flight state.
func Connect(engine *sim.Engine, name string, a, b *Port, rateBps float64, prop sim.Duration) *Link {
	if a.link != nil || b.link != nil {
		panic(fmt.Sprintf("simnet: port already connected (link %q)", name))
	}
	if rateBps <= 0 {
		panic("simnet: non-positive link rate")
	}
	l := &Link{Name: name, RateBps: rateBps, Prop: prop, engine: engine, up: true}
	l.ports[0], l.ports[1] = a, b
	a.link, a.end = l, 0
	b.link, b.end = l, 1
	return l
}

// Up reports whether the link is carrying traffic.
func (l *Link) Up() bool { return l.up }

// SetUp changes the link state. Taking a link down drops queued and
// in-flight frames — the failure model for §2.2. Cross-shard links do
// not support failure injection: flushing both ends would mutate two
// shards' state from one callback, and frames on the cross-shard wire
// have already been promised to the far shard's schedule. Partition
// fault domains so that injected links stay within one shard.
func (l *Link) SetUp(up bool) {
	if l.cross != nil {
		panic(fmt.Sprintf("simnet: SetUp on cross-shard link %q (failure injection is per-shard)", l.Name))
	}
	l.up = up
	if !up {
		for _, p := range l.ports {
			if p != nil {
				p.failFlush()
			}
		}
	}
}

// SerializationDelay returns the time a frame of wireLen bytes occupies
// the wire.
func (l *Link) SerializationDelay(wireLen int) sim.Duration {
	if wireLen < minWireBytes {
		wireLen = minWireBytes
	}
	return sim.Duration(float64(wireLen*8) / l.RateBps * 1e9)
}

// Send enqueues a frame for transmission out of port p. It returns false
// when the frame was dropped (full queue or downed link).
func (p *Port) Send(f *frame.Frame) bool {
	if p.link == nil || !p.link.up {
		p.Drops++
		p.DownDrops++
		if p.tr != nil {
			p.tr.Drop(p.Owner.Name(), p.Index, f, telemetry.CauseLinkDown)
		}
		return false
	}
	if !p.queue.Push(f) {
		p.Drops++
		p.OverflowDrops++
		if p.tr != nil {
			p.tr.Drop(p.Owner.Name(), p.Index, f, telemetry.CauseOverflow)
		}
		return false
	}
	if d := p.queue.Len(); d > p.QueueHighWater {
		p.QueueHighWater = d
	}
	if p.tr != nil {
		p.tr.Enqueue(p.Owner.Name(), p.Index, f, p.queue.Len())
	}
	// A port paused on a closed gate re-evaluates on arrival: TAS gates
	// are per-queue, so a newly queued higher-priority frame whose gate
	// is open must not wait behind a gated lower-priority head.
	if p.pausedTx.Pending() {
		p.pausedTx.Cancel()
		p.pausedTx = sim.Event{}
		p.busy = false
	}
	if !p.busy {
		p.startNext()
	}
	return true
}

// startNext begins serializing the next eligible queued frame.
func (p *Port) startNext() {
	l := p.link
	if l == nil || !l.up {
		return
	}
	eng := l.engineFor(p.end)
	now := eng.Now()
	f := p.queue.Peek()
	if f == nil {
		p.busy = false
		return
	}
	ser := l.SerializationDelay(f.WireLen())
	if p.shaper != nil {
		start, ok := p.shaper.NextEligible(now, f.EffectivePriority(), ser)
		if !ok {
			// Never eligible (e.g. frame longer than any gate window):
			// drop to avoid deadlock.
			dropped := p.queue.Pop()
			p.Drops++
			p.ShaperDrops++
			if p.tr != nil {
				p.tr.Drop(p.Owner.Name(), p.Index, dropped, telemetry.CauseShaper)
			}
			p.reclaim(dropped)
			p.busy = false
			if p.queue.Len() > 0 {
				p.startNext()
			}
			return
		}
		if start > now {
			p.busy = true
			p.pausedTx = eng.Schedule(start, func() {
				p.pausedTx = sim.Event{}
				p.busy = false
				p.startNext()
			})
			return
		}
	}
	p.queue.Pop()
	p.busy = true
	if p.shaper != nil {
		p.shaper.OnTransmit(now, f.EffectivePriority(), f.WireLen(), ser)
	}
	p.TxFrames++
	p.TxBytes += uint64(f.WireLen())
	lost := p.lossRate > 0 && p.rng().Bool(p.lossRate)
	if p.tr != nil {
		p.tr.TxStart(p.Owner.Name(), p.Index, f, int64(ser))
	}
	fl := p.getFlight()
	fl.f = f
	fl.lost = lost
	p.inFlight++
	eng.After(ser, fl.serDone)
}

// serDone fires when a frame finishes serializing: the wire is free for
// the next frame, and the in-flight frame either dies (link down, loss
// injection) or starts propagating toward the far end.
func (p *Port) serDone(fl *flight) {
	l := p.link
	switch {
	case !l.up:
		// Link died mid-serialization: the frame dies on the wire.
		f := fl.f
		p.putFlight(fl)
		p.WireDrops++
		p.inFlight--
		if p.tr != nil {
			p.tr.Drop(p.Owner.Name(), p.Index, f, telemetry.CauseWire)
		}
		p.reclaim(f)
	case fl.lost:
		f := fl.f
		p.putFlight(fl)
		p.InjectedDrops++
		p.inFlight--
		if p.tr != nil {
			p.tr.Drop(p.Owner.Name(), p.Index, f, telemetry.CauseInjected)
		}
		p.reclaim(f)
	default:
		if l.cross != nil {
			p.crossHandoff(fl)
		} else {
			l.engine.After(l.Prop+l.extra[p.end], fl.propDone)
		}
	}
	p.busy = false
	if p.queue.Len() > 0 {
		p.startNext()
	}
}

// propDone fires when a frame reaches the far end of the link: the last
// chance for the link to have died or corruption to strike, then the
// frame is counted delivered and handed to the receiving node.
func (p *Port) propDone(fl *flight) {
	l := p.link
	f := fl.f
	p.putFlight(fl)
	if !l.up {
		p.WireDrops++
		p.inFlight--
		if p.tr != nil {
			p.tr.Drop(p.Owner.Name(), p.Index, f, telemetry.CauseWire)
		}
		p.reclaim(f)
		return
	}
	if p.corruptRate > 0 && len(f.Payload) > 0 && p.rng().Bool(p.corruptRate) {
		f.Payload[p.rng().Intn(len(f.Payload))] ^= 0xff
		p.CorruptedFrames++
		if p.tr != nil {
			p.tr.Corrupt(p.Owner.Name(), p.Index, f)
		}
	}
	dst := l.ports[1-p.end]
	l.Delivered[p.end]++
	dst.RxFrames++
	dst.RxBytes += uint64(f.WireLen())
	p.inFlight--
	if dst.tr != nil {
		// CreatedAt is stamped by the originating host; for frames
		// injected straight into a port it is zero and the "latency"
		// degenerates to the absolute delivery time.
		dst.tr.Deliver(dst.Owner.Name(), dst.Index, f, int64(l.engine.Now())-f.Meta.CreatedAt)
	}
	dst.Owner.Receive(dst, f)
}

// crossHandoff replaces the propagation leg on a cross-shard link: the
// frame leaves this shard's accounting (inFlight--, sent++) and is
// promised to the far shard at now + propagation via the group outbox.
// The corruption draw happens here, on the sending shard, so the fault
// stream's draw order is a function of this shard's schedule alone —
// identical for every worker count.
func (p *Port) crossHandoff(fl *flight) {
	l := p.link
	c := l.cross
	f := fl.f
	p.putFlight(fl)
	p.inFlight--
	src := p.end
	c.sent[src]++
	if p.tr != nil {
		// The causal stitch point: the sending shard's tracer assigns
		// the frame id (in its own id space) before the frame crosses,
		// so the destination shard's events reuse it and the merged
		// timeline reads as one lifecycle.
		p.tr.CrossShard(p.Owner.Name(), p.Index, f, c.shard[src], c.shard[1-src])
	}
	corrupt := -1
	if p.corruptRate > 0 && len(f.Payload) > 0 && p.rng().Bool(p.corruptRate) {
		corrupt = p.rng().Intn(len(f.Payload))
	}
	at := c.eng[src].Now().Add(l.Prop + l.extra[src])
	c.group.Send(c.shard[src], c.shard[1-src], at, func() {
		l.crossDeliver(src, f, corrupt)
	})
}

// crossDeliver completes a cross-shard traversal on the receiving
// shard's schedule. It mirrors propDone's delivery half; every counter
// it touches (including the sending port's CorruptedFrames and the
// link's Delivered[src]) is written only by the receiving shard, and
// tracing goes through the receiving port's tracer.
func (l *Link) crossDeliver(src int, f *frame.Frame, corrupt int) {
	c := l.cross
	sender := l.ports[src]
	dst := l.ports[1-src]
	if corrupt >= 0 {
		f.Payload[corrupt] ^= 0xff
		sender.CorruptedFrames++
		if dst.tr != nil {
			dst.tr.Corrupt(sender.Owner.Name(), sender.Index, f)
		}
	}
	l.Delivered[src]++
	dst.RxFrames++
	dst.RxBytes += uint64(f.WireLen())
	if dst.tr != nil {
		dst.tr.Deliver(dst.Owner.Name(), dst.Index, f, int64(c.eng[1-src].Now())-f.Meta.CreatedAt)
	}
	dst.Owner.Receive(dst, f)
}
