package simnet

import (
	"fmt"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
)

// Shaper gates when a queued frame may begin transmission. GateSchedule
// (802.1Qbv time-aware shaping) and CreditShaper (802.1Qav credit-based
// shaping) both implement it; ports accept either.
type Shaper interface {
	// NextEligible returns the earliest time >= now at which a frame of
	// priority p needing ser of wire time may start. ok=false means the
	// frame can never be sent (drop).
	NextEligible(now sim.Time, p frame.PCP, ser sim.Duration) (start sim.Time, ok bool)
	// OnTransmit informs the shaper that a frame of priority p and
	// wireLen bytes started transmitting at t for ser.
	OnTransmit(t sim.Time, p frame.PCP, wireLen int, ser sim.Duration)
}

// NextEligible implements Shaper for the TAS gate schedule.
func (g *GateSchedule) NextEligible(now sim.Time, p frame.PCP, ser sim.Duration) (sim.Time, bool) {
	return g.NextOpen(now, p, ser)
}

// OnTransmit implements Shaper (gates carry no per-frame state).
func (g *GateSchedule) OnTransmit(sim.Time, frame.PCP, int, sim.Duration) {}

// CreditShaper is an 802.1Qav-style credit-based shaper for one
// priority class: the class's long-term rate is bounded by IdleSlope.
// This implementation uses the conservative no-positive-credit variant:
// credit never rises above zero, so shaped frames are spaced at least
// wireBits/IdleSlope apart — a strict rate limit rather than Qav's
// bounded burst. Audio/video bridging uses CBS for streams that must
// not starve control traffic; in converged factories it bounds the ML
// class the same way (§5).
type CreditShaper struct {
	// Class is the shaped priority; other priorities pass unshaped.
	Class frame.PCP
	// IdleSlopeBps is the class's guaranteed (and maximum) rate.
	IdleSlopeBps float64

	credit     float64 // bits, always <= 0
	lastUpdate sim.Time
}

// NewCreditShaper builds a shaper for class at idleSlopeBps.
func NewCreditShaper(class frame.PCP, idleSlopeBps float64) *CreditShaper {
	if idleSlopeBps <= 0 {
		panic(fmt.Sprintf("simnet: non-positive idle slope %v", idleSlopeBps))
	}
	return &CreditShaper{Class: class, IdleSlopeBps: idleSlopeBps}
}

func (c *CreditShaper) replenish(now sim.Time) {
	if now <= c.lastUpdate {
		return
	}
	dt := now.Sub(c.lastUpdate).Seconds()
	c.credit += c.IdleSlopeBps * dt
	if c.credit > 0 {
		c.credit = 0
	}
	c.lastUpdate = now
}

// NextEligible implements Shaper.
func (c *CreditShaper) NextEligible(now sim.Time, p frame.PCP, _ sim.Duration) (sim.Time, bool) {
	if p != c.Class {
		return now, true
	}
	c.replenish(now)
	if c.credit >= 0 {
		return now, true
	}
	wait := sim.Duration(-c.credit / c.IdleSlopeBps * 1e9)
	if wait < 1 {
		wait = 1
	}
	return now.Add(wait), true
}

// OnTransmit implements Shaper: transmitting consumes the frame's bits
// net of the idle-slope accrual during serialization.
func (c *CreditShaper) OnTransmit(t sim.Time, p frame.PCP, wireLen int, ser sim.Duration) {
	if p != c.Class {
		return
	}
	c.replenish(t)
	c.credit -= float64(wireLen*8) - c.IdleSlopeBps*ser.Seconds()
	c.lastUpdate = t.Add(ser)
}

// Credit exposes the current (non-positive) credit in bits for tests.
func (c *CreditShaper) Credit() float64 { return c.credit }
