package simnet

import (
	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// Host is a single-port endpoint: it owns a MAC address and hands
// received frames to a pluggable handler. The PLC runtime, I/O devices,
// traffic generators and ML clients are all Hosts with different
// handlers.
type Host struct {
	name    string
	engine  *sim.Engine
	mac     frame.MAC
	port    *Port
	handler func(*frame.Frame)
	tr      *telemetry.Tracer

	// RxCount counts frames delivered to the handler.
	RxCount uint64
}

// NewHost creates a host with the given MAC.
func NewHost(engine *sim.Engine, name string, mac frame.MAC) *Host {
	h := &Host{name: name, engine: engine, mac: mac}
	h.port = NewPort(h, 0)
	return h
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// MAC returns the host's address.
func (h *Host) MAC() frame.MAC { return h.mac }

// Port returns the host's single port.
func (h *Host) Port() *Port { return h.port }

// Engine returns the simulation engine the host runs on.
func (h *Host) Engine() *sim.Engine { return h.engine }

// OnReceive installs the frame handler. Frames addressed elsewhere
// (unicast to another MAC) are filtered before the handler runs.
func (h *Host) OnReceive(fn func(*frame.Frame)) { h.handler = fn }

// SetTracer attaches a lifecycle tracer to the host and its port.
func (h *Host) SetTracer(t *telemetry.Tracer) {
	h.tr = t
	h.port.SetTracer(t)
}

// Receive implements Node.
func (h *Host) Receive(port *Port, f *frame.Frame) {
	if !f.Dst.IsBroadcast() && !f.Dst.IsMulticast() && f.Dst != h.mac {
		port.reclaim(f) // not for us (flooded frame)
		return
	}
	h.RxCount++
	if h.handler != nil {
		h.handler(f)
	}
}

// Send stamps the frame with the host's source MAC and current time,
// then transmits it. It returns false when the frame was dropped at the
// egress queue.
func (h *Host) Send(f *frame.Frame) bool {
	f.Src = h.mac
	if f.Meta.CreatedAt == 0 {
		f.Meta.CreatedAt = int64(h.engine.Now())
	}
	if h.tr != nil {
		h.tr.HostTx(h.name, f)
	}
	return h.port.Send(f)
}
