package simnet

import (
	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// INTSink consumes terminated in-band telemetry stacks at a sink node.
// internal/int's Collector is the canonical implementation; the
// interface is declared here so simnet does not depend on it.
type INTSink interface {
	// SinkINT observes f's INT stack at sink node at simulated time
	// nowNS. The stack is still attached; the caller strips it after.
	SinkINT(node string, f *frame.Frame, nowNS int64)
}

// Host is a single-port endpoint: it owns a MAC address and hands
// received frames to a pluggable handler. The PLC runtime, I/O devices,
// traffic generators and ML clients are all Hosts with different
// handlers.
type Host struct {
	name    string
	engine  *sim.Engine
	mac     frame.MAC
	port    *Port
	handler func(*frame.Frame)
	tr      *telemetry.Tracer

	// INT source/sink roles (see SetINTSource/SetINTSink). intSeq is the
	// source's per-flow sequence counter, folded into checkpoints.
	intSource  bool
	intFlow    uint32
	intMaxHops int
	intStrict  bool
	intSeq     uint32
	intSink    INTSink
	intPool    *frame.INTPool

	// RxCount counts frames delivered to the handler.
	RxCount uint64
}

// NewHost creates a host with the given MAC.
func NewHost(engine *sim.Engine, name string, mac frame.MAC) *Host {
	h := &Host{name: name, engine: engine, mac: mac}
	h.port = NewPort(h, 0)
	return h
}

// Name implements Node.
func (h *Host) Name() string { return h.name }

// MAC returns the host's address.
func (h *Host) MAC() frame.MAC { return h.mac }

// Port returns the host's single port.
func (h *Host) Port() *Port { return h.port }

// Engine returns the simulation engine the host runs on.
func (h *Host) Engine() *sim.Engine { return h.engine }

// OnReceive installs the frame handler. Frames addressed elsewhere
// (unicast to another MAC) are filtered before the handler runs.
func (h *Host) OnReceive(fn func(*frame.Frame)) { h.handler = fn }

// SetTracer attaches a lifecycle tracer to the host and its port.
func (h *Host) SetTracer(t *telemetry.Tracer) {
	h.tr = t
	h.port.SetTracer(t)
}

// SetINTSource makes the host an INT source: every Send attaches a
// fresh telemetry stack carrying flow, a per-host sequence number, and
// room for maxHops transit records (<=0 selects the default). strict
// selects the stack's hop-exceeded policy (see frame.INTStack).
func (h *Host) SetINTSource(flow uint32, maxHops int, strict bool) {
	h.intSource = true
	h.intFlow = flow
	h.intMaxHops = maxHops
	h.intStrict = strict
}

// SetINTSink makes the host an INT sink: received stacks are handed to
// sink and stripped before the frame reaches the handler, the way a
// hardware sink strips the stack before host delivery. Nil disables.
func (h *Host) SetINTSink(sink INTSink) { h.intSink = sink }

// SetINTPool gives the host a free list for telemetry stacks: sources
// Get their per-frame stack from it and sinks Put terminated stacks
// back. Sharing one pool across a cell's sources and sinks makes the
// INT-enabled path allocation-free in steady state. Nil (the default)
// falls back to per-frame allocation.
func (h *Host) SetINTPool(p *frame.INTPool) { h.intPool = p }

// Receive implements Node.
func (h *Host) Receive(port *Port, f *frame.Frame) {
	if !f.Dst.IsBroadcast() && !f.Dst.IsMulticast() && f.Dst != h.mac {
		port.reclaim(f) // not for us (flooded frame)
		return
	}
	if f.INT != nil && h.intSink != nil {
		h.intSink.SinkINT(h.name, f, int64(h.engine.Now()))
		if h.intPool != nil {
			h.intPool.Put(f.INT)
		}
		f.INT = nil
	}
	h.RxCount++
	if h.handler != nil {
		h.handler(f)
	}
}

// Send stamps the frame with the host's source MAC and current time,
// then transmits it. It returns false when the frame was dropped at the
// egress queue.
func (h *Host) Send(f *frame.Frame) bool {
	f.Src = h.mac
	if f.Meta.CreatedAt == 0 {
		f.Meta.CreatedAt = int64(h.engine.Now())
	}
	if h.intSource {
		h.intSeq++
		var st *frame.INTStack
		if h.intPool != nil {
			st = h.intPool.Get(h.name, h.intFlow, h.intSeq, int64(h.engine.Now()), h.intMaxHops)
			f.INT = st
		} else {
			st = f.AttachINT(h.name, h.intFlow, h.intSeq, int64(h.engine.Now()), h.intMaxHops)
		}
		st.Strict = h.intStrict
	}
	if h.tr != nil {
		h.tr.HostTx(h.name, f)
	}
	return h.port.Send(f)
}
