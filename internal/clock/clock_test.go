package clock

import (
	"testing"
	"testing/quick"
	"time"

	"steelnet/internal/sim"
)

func TestPerfectClock(t *testing.T) {
	c := Perfect{Offset: 100 * time.Nanosecond}
	if got := c.Read(1000); got != 1100 {
		t.Fatalf("Read = %d", got)
	}
}

func TestDriftingClockGainsPPM(t *testing.T) {
	c := Drifting{DriftPPM: 50}
	// After 1 s of true time, a +50 ppm clock has gained 50 µs.
	got := c.Read(sim.Time(time.Second))
	want := int64(time.Second) + int64(50*time.Microsecond)
	if got != want {
		t.Fatalf("Read = %d, want %d", got, want)
	}
}

func TestDriftingClockNegativeDrift(t *testing.T) {
	c := Drifting{DriftPPM: -20}
	got := c.Read(sim.Time(time.Second))
	want := int64(time.Second) - int64(20*time.Microsecond)
	if got != want {
		t.Fatalf("Read = %d, want %d", got, want)
	}
}

func TestQuantizedFloors(t *testing.T) {
	c := Quantized{Base: Perfect{}, Step: 8 * time.Nanosecond}
	if got := c.Read(15); got != 8 {
		t.Fatalf("Read(15) = %d", got)
	}
	if got := c.Read(16); got != 16 {
		t.Fatalf("Read(16) = %d", got)
	}
	if got := c.Read(7); got != 0 {
		t.Fatalf("Read(7) = %d", got)
	}
}

func TestQuantizedStepOneIsIdentity(t *testing.T) {
	c := Quantized{Base: Perfect{}, Step: 1}
	if got := c.Read(12345); got != 12345 {
		t.Fatalf("Read = %d", got)
	}
}

func TestQuantizedPropertyMultipleOfStep(t *testing.T) {
	c := Quantized{Base: Perfect{}, Step: 8 * time.Nanosecond}
	f := func(v uint32) bool {
		r := c.Read(sim.Time(v))
		return r%8 == 0 && r <= int64(v) && int64(v)-r < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPTPSyncedBounded(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewPTPSynced(200*time.Nanosecond, 100*time.Nanosecond, time.Second, e.RNG("ptp"))
	for s := 0; s < 1000; s++ {
		now := sim.Time(s) * sim.Time(time.Second)
		off := c.Read(now) - int64(now)
		lo := int64(100 * time.Nanosecond) // 200ns asym − 100ns wander bound
		hi := int64(300 * time.Nanosecond)
		if off < lo || off > hi {
			t.Fatalf("offset %d outside [%d,%d] at %v", off, lo, hi, now)
		}
	}
}

func TestPTPSyncedDeterministic(t *testing.T) {
	mk := func() *PTPSynced {
		e := sim.NewEngine(9)
		return NewPTPSynced(0, 50*time.Nanosecond, time.Second, e.RNG("ptp"))
	}
	a, b := mk(), mk()
	for s := 0; s < 100; s++ {
		now := sim.Time(s) * sim.Time(time.Second)
		if a.Read(now) != b.Read(now) {
			t.Fatal("PTP clock not deterministic")
		}
	}
}

func TestSingleClockMeasurementHasNoCrossClockError(t *testing.T) {
	// The Fig. 3 argument: measuring with one clock (a vs a) has zero
	// cross-clock error regardless of drift; two drifting clocks do not.
	a := Drifting{DriftPPM: 50}
	b := Drifting{DriftPPM: -50}
	if err := MeasurementError(a, a, 0, time.Second); err != 0 {
		t.Fatalf("single-clock error = %v", err)
	}
	if err := MeasurementError(a, b, 0, time.Second); err == 0 {
		t.Fatal("two drifting clocks report zero error")
	}
}

func TestMeasurementErrorMagnitude(t *testing.T) {
	// ±50 ppm apart for 1 s -> 100 µs divergence.
	a := Drifting{DriftPPM: 50}
	b := Drifting{DriftPPM: -50}
	err := MeasurementError(a, b, 0, time.Second)
	if err < 99*time.Microsecond || err > 101*time.Microsecond {
		t.Fatalf("error = %v, want ≈100µs", err)
	}
}
