// Package clock models the timestamping hardware the Traffic Reflection
// method reasons about (§3): free-running device clocks with frequency
// drift, PTP-synchronized clocks whose residual offset error stems from
// path asymmetry, and quantized capture timestamps such as the network
// tap's 8 ns resolution. The method's core point — both tap timestamps
// come from a single clock, so drift between clocks cancels out of the
// delay measurement — is directly expressible (and testable) with these
// types.
package clock

import (
	"time"

	"steelnet/internal/sim"
)

// Clock converts virtual simulation time into the time a device would
// report. Implementations must be deterministic given their construction
// parameters.
type Clock interface {
	// Read returns the device's view of the instant now.
	Read(now sim.Time) int64
}

// Perfect is an ideal clock: reads equal true time plus a fixed offset.
type Perfect struct {
	Offset time.Duration
}

// Read implements Clock.
func (p Perfect) Read(now sim.Time) int64 { return int64(now) + int64(p.Offset) }

// Drifting is a free-running oscillator with a constant frequency error.
// DriftPPM is parts-per-million: +50 means the clock gains 50 µs per
// second of true time. Commodity crystals are ±20..100 ppm; this is why
// two-clock measurements accumulate error and the tap's one-clock design
// matters.
type Drifting struct {
	Offset   time.Duration
	DriftPPM float64
}

// Read implements Clock.
func (d Drifting) Read(now sim.Time) int64 {
	drift := float64(now) * d.DriftPPM / 1e6
	return int64(now) + int64(d.Offset) + int64(drift)
}

// Adjustable is a piecewise-linear clock whose frequency error and
// phase can be changed mid-run — the target of fault-injected drift and
// step events (internal/faults). Between adjustments it behaves like
// Drifting; each adjustment rebaselines the accumulated reading so the
// clock stays continuous across a drift change and jumps exactly delta
// across a step. Adjustment instants must be non-decreasing (they come
// from engine-scheduled events, so they are).
type Adjustable struct {
	base  sim.Time // instant of the last adjustment
	acc   int64    // reading at base
	drift float64  // current frequency error, ppm
}

// NewAdjustable builds an adjustable clock reading offset at time zero
// with an initial frequency error of ppm.
func NewAdjustable(offset time.Duration, ppm float64) *Adjustable {
	return &Adjustable{acc: int64(offset), drift: ppm}
}

// Read implements Clock.
func (a *Adjustable) Read(now sim.Time) int64 {
	dt := int64(now) - int64(a.base)
	return a.acc + dt + int64(float64(dt)*a.drift/1e6)
}

// SetDriftPPM changes the clock's frequency error at instant now,
// keeping the reading continuous.
func (a *Adjustable) SetDriftPPM(now sim.Time, ppm float64) {
	a.rebase(now)
	a.drift = ppm
}

// Step jumps the clock's reading by delta at instant now.
func (a *Adjustable) Step(now sim.Time, delta time.Duration) {
	a.rebase(now)
	a.acc += int64(delta)
}

// DriftPPM returns the current frequency error.
func (a *Adjustable) DriftPPM() float64 { return a.drift }

func (a *Adjustable) rebase(now sim.Time) {
	a.acc = a.Read(now)
	a.base = now
}

// PTPSynced models a clock disciplined by IEEE 1588: drift is servo-ed
// out, but a residual offset remains, dominated by path asymmetry
// (§3 cites sub-µs accuracy that still suffers asymmetric delays). The
// residual wanders as a bounded random walk, re-drawn every SyncInterval.
type PTPSynced struct {
	// AsymmetryError is the standing offset from asymmetric network paths.
	AsymmetryError time.Duration
	// WanderBound caps the magnitude of the servo's residual wander.
	WanderBound time.Duration
	// SyncInterval is how often the servo corrects (typically 1 s).
	SyncInterval time.Duration
	rng          *sim.RNG
	lastEpoch    int64
	wander       int64
}

// NewPTPSynced builds a PTP-disciplined clock drawing wander from rng.
func NewPTPSynced(asym, wanderBound, syncInterval time.Duration, rng *sim.RNG) *PTPSynced {
	if syncInterval <= 0 {
		syncInterval = time.Second
	}
	return &PTPSynced{
		AsymmetryError: asym,
		WanderBound:    wanderBound,
		SyncInterval:   syncInterval,
		rng:            rng,
		lastEpoch:      -1,
	}
}

// Read implements Clock.
func (p *PTPSynced) Read(now sim.Time) int64 {
	epoch := int64(now) / int64(p.SyncInterval)
	if epoch != p.lastEpoch {
		p.lastEpoch = epoch
		if p.WanderBound > 0 && p.rng != nil {
			step := p.rng.Norm(0, float64(p.WanderBound)/3)
			p.wander += int64(step)
			if p.wander > int64(p.WanderBound) {
				p.wander = int64(p.WanderBound)
			}
			if p.wander < -int64(p.WanderBound) {
				p.wander = -int64(p.WanderBound)
			}
		}
	}
	return int64(now) + int64(p.AsymmetryError) + p.wander
}

// Quantized wraps a clock with capture-hardware granularity: reads are
// floored to a multiple of Step. The paper's tap timestamps at 8 ns.
type Quantized struct {
	Base Clock
	Step time.Duration
}

// Read implements Clock.
func (q Quantized) Read(now sim.Time) int64 {
	v := q.Base.Read(now)
	step := int64(q.Step)
	if step <= 1 {
		return v
	}
	if v >= 0 {
		return v - v%step
	}
	return v - (step + v%step) // floor for negative values
}

// MeasurementError returns the worst-case error of a two-clock delay
// measurement between a and b over an interval of length d: the
// difference of their readings' deviation from true time, at interval
// start and end. It quantifies why Fig. 3's single-clock design wins.
func MeasurementError(a, b Clock, start sim.Time, d time.Duration) time.Duration {
	end := start.Add(d)
	errStart := (a.Read(start) - int64(start)) - (b.Read(start) - int64(start))
	errEnd := (a.Read(end) - int64(end)) - (b.Read(end) - int64(end))
	diff := errEnd - errStart
	worst := errStart
	if abs(errEnd) > abs(worst) {
		worst = errEnd
	}
	if abs(diff) > abs(worst) {
		worst = diff
	}
	return time.Duration(worst)
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
