package clock

import (
	"testing"
	"time"

	"steelnet/internal/sim"
)

func TestAdjustableMatchesDriftingBetweenAdjustments(t *testing.T) {
	a := NewAdjustable(3*time.Millisecond, 50)
	d := Drifting{Offset: 3 * time.Millisecond, DriftPPM: 50}
	for _, at := range []sim.Time{0, sim.Time(time.Millisecond), sim.Time(time.Second), sim.Time(10 * time.Second)} {
		if got, want := a.Read(at), d.Read(at); got != want {
			t.Fatalf("Read(%v) = %d, Drifting gives %d", at, got, want)
		}
	}
}

func TestAdjustableDriftChangeIsContinuous(t *testing.T) {
	a := NewAdjustable(0, 100)
	at := sim.Time(time.Second)
	before := a.Read(at)
	a.SetDriftPPM(at, -100)
	if after := a.Read(at); after != before {
		t.Fatalf("reading jumped across drift change: %d -> %d", before, after)
	}
	if a.DriftPPM() != -100 {
		t.Fatalf("DriftPPM = %v", a.DriftPPM())
	}
	// One second at -100 ppm cancels the first second's +100 ppm gain.
	at2 := sim.Time(2 * time.Second)
	if got := a.Read(at2); got != int64(at2) {
		t.Fatalf("Read(2s) = %d, want %d (drift should have cancelled)", got, int64(at2))
	}
}

func TestAdjustableStepJumpsExactly(t *testing.T) {
	a := NewAdjustable(0, 0)
	at := sim.Time(500 * time.Millisecond)
	before := a.Read(at)
	a.Step(at, -250*time.Microsecond)
	if got := a.Read(at) - before; got != int64(-250*time.Microsecond) {
		t.Fatalf("step moved reading by %d, want %d", got, int64(-250*time.Microsecond))
	}
	// The step is phase only: rate stays nominal afterwards.
	later := sim.Time(time.Second)
	if got, want := a.Read(later)-a.Read(at), int64(later-at); got != want {
		t.Fatalf("rate after step: advanced %d over %d of true time", got, want)
	}
}
