package clock

import "steelnet/internal/checkpoint"

// FoldState folds the adjustable clock's piecewise-linear state — the
// rebase instant, accumulated reading and current frequency error —
// into the checkpoint digest.
func (a *Adjustable) FoldState(d *checkpoint.Digest) {
	d.I64(int64(a.base))
	d.I64(a.acc)
	d.F64(a.drift)
}

// FoldState folds the PTP-disciplined clock's servo state. The wander
// RNG is an engine stream and is folded by the engine.
func (p *PTPSynced) FoldState(d *checkpoint.Digest) {
	d.I64(int64(p.AsymmetryError))
	d.I64(int64(p.WanderBound))
	d.I64(int64(p.SyncInterval))
	d.I64(p.lastEpoch)
	d.I64(p.wander)
}
