package mrp

import (
	"time"

	"steelnet/internal/faults"
	"steelnet/internal/iodevice"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// RingExperimentConfig parameterizes a control loop over an MRP ring
// with a declarative fault plan: the §2.2/§2.3 co-design question —
// does the ring's engineered recovery beat the process watchdog? —
// posed against arbitrary failure scenarios instead of one hardcoded
// cable cut.
type RingExperimentConfig struct {
	Seed uint64
	// Switches is the ring size (default 4). The vPLC hangs off sw0
	// (the manager), the device off the switch diametrically opposite,
	// so mid-ring failures force a reroute.
	Switches int
	// Ring is the MRP profile (test interval × tolerance bounds
	// recovery).
	Ring Config
	// Cycle and WatchdogFactor define the control loop riding the ring.
	Cycle          time.Duration
	WatchdogFactor int
	// Horizon ends the run; LinkBps is the ring link speed.
	Horizon time.Duration
	LinkBps float64
	// Faults optionally replaces the default plan (a permanent cut of
	// ring2 at 500 ms — the classic far-side cable cut). Registered
	// targets: links "ring0".."ringN-1" plus "uplink-plc"/"uplink-dev";
	// switches "sw0".."swN-1"; host "vplc"; ports "sw<i>.<j>" for every
	// switch port plus "vplc"/"io" host egress.
	Faults *faults.Plan
	// Trace, when non-nil, records the frame lifecycle and fault spans.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, receives every component counter.
	Metrics *telemetry.Registry
}

// DefaultRingExperimentConfig mirrors the integration scenario: a
// 4-switch ring carrying a 1.6 ms cycle with a 3-cycle watchdog.
func DefaultRingExperimentConfig() RingExperimentConfig {
	return RingExperimentConfig{
		Seed:           1,
		Switches:       4,
		Ring:           DefaultConfig,
		Cycle:          1600 * time.Microsecond,
		WatchdogFactor: 3,
		Horizon:        2500 * time.Millisecond,
		LinkBps:        100e6,
	}
}

// RingExperimentResult is the run's ground truth for assertions.
type RingExperimentResult struct {
	// FinalRingState is the manager's state at the horizon.
	FinalRingState RingState
	// Transitions counts ring open/close transitions.
	Transitions uint64
	// TestsSent/TestsReturned count the manager's test frames.
	TestsSent, TestsReturned uint64
	// FirstOpenAt is when the ring first opened (0 = never);
	// LastCloseAt is the latest reconvergence back to closed.
	FirstOpenAt, LastCloseAt sim.Time
	// FailsafeEvents counts device safety stops; DeviceState is the
	// device's state at the horizon.
	FailsafeEvents uint64
	DeviceState    iodevice.State
	// InjectedFaults counts executed fault injections; FaultTrace lists
	// every executed phase.
	InjectedFaults int
	FaultTrace     string
}

// RunRingExperiment builds the ring, applies the fault plan and runs to
// the horizon. It is the straight-through form of the Harness.
func RunRingExperiment(cfg RingExperimentConfig) RingExperimentResult {
	h := NewHarness(cfg)
	h.AdvanceTo(h.Horizon())
	return h.Result()
}
