package mrp

import (
	"fmt"
	"time"

	"steelnet/internal/faults"
	"steelnet/internal/frame"
	"steelnet/internal/iodevice"
	"steelnet/internal/plc"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/telemetry"
)

// RingExperimentConfig parameterizes a control loop over an MRP ring
// with a declarative fault plan: the §2.2/§2.3 co-design question —
// does the ring's engineered recovery beat the process watchdog? —
// posed against arbitrary failure scenarios instead of one hardcoded
// cable cut.
type RingExperimentConfig struct {
	Seed uint64
	// Switches is the ring size (default 4). The vPLC hangs off sw0
	// (the manager), the device off the switch diametrically opposite,
	// so mid-ring failures force a reroute.
	Switches int
	// Ring is the MRP profile (test interval × tolerance bounds
	// recovery).
	Ring Config
	// Cycle and WatchdogFactor define the control loop riding the ring.
	Cycle          time.Duration
	WatchdogFactor int
	// Horizon ends the run; LinkBps is the ring link speed.
	Horizon time.Duration
	LinkBps float64
	// Faults optionally replaces the default plan (a permanent cut of
	// ring2 at 500 ms — the classic far-side cable cut). Registered
	// targets: links "ring0".."ringN-1" plus "uplink-plc"/"uplink-dev";
	// switches "sw0".."swN-1"; host "vplc"; ports "sw<i>.<j>" for every
	// switch port plus "vplc"/"io" host egress.
	Faults *faults.Plan
	// Trace, when non-nil, records the frame lifecycle and fault spans.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, receives every component counter.
	Metrics *telemetry.Registry
}

// DefaultRingExperimentConfig mirrors the integration scenario: a
// 4-switch ring carrying a 1.6 ms cycle with a 3-cycle watchdog.
func DefaultRingExperimentConfig() RingExperimentConfig {
	return RingExperimentConfig{
		Seed:           1,
		Switches:       4,
		Ring:           DefaultConfig,
		Cycle:          1600 * time.Microsecond,
		WatchdogFactor: 3,
		Horizon:        2500 * time.Millisecond,
		LinkBps:        100e6,
	}
}

// RingExperimentResult is the run's ground truth for assertions.
type RingExperimentResult struct {
	// FinalRingState is the manager's state at the horizon.
	FinalRingState RingState
	// Transitions counts ring open/close transitions.
	Transitions uint64
	// TestsSent/TestsReturned count the manager's test frames.
	TestsSent, TestsReturned uint64
	// FirstOpenAt is when the ring first opened (0 = never);
	// LastCloseAt is the latest reconvergence back to closed.
	FirstOpenAt, LastCloseAt sim.Time
	// FailsafeEvents counts device safety stops; DeviceState is the
	// device's state at the horizon.
	FailsafeEvents uint64
	DeviceState    iodevice.State
	// InjectedFaults counts executed fault injections; FaultTrace lists
	// every executed phase.
	InjectedFaults int
	FaultTrace     string
}

// RunRingExperiment builds the ring, applies the fault plan and runs to
// the horizon.
func RunRingExperiment(cfg RingExperimentConfig) RingExperimentResult {
	if cfg.Switches < 3 {
		cfg.Switches = 4
	}
	e := sim.NewEngine(cfg.Seed)
	n := cfg.Switches
	in := faults.NewInjector(e)
	in.Tracer = cfg.Trace
	var links []*simnet.Link

	sws := make([]*simnet.Switch, n)
	for i := 0; i < n; i++ {
		sws[i] = simnet.NewSwitch(e, fmt.Sprintf("sw%d", i), 3, simnet.SwitchConfig{Latency: sim.Microsecond})
		in.RegisterSwitch(sws[i].Name(), sws[i])
	}
	for i := 0; i < n; i++ {
		l := simnet.Connect(e, fmt.Sprintf("ring%d", i),
			sws[i].Port(1), sws[(i+1)%n].Port(0), cfg.LinkBps, 500*sim.Nanosecond)
		in.RegisterLink(l.Name, l)
		links = append(links, l)
	}
	for i, sw := range sws {
		for j := 0; j < sw.NumPorts(); j++ {
			in.RegisterPort(fmt.Sprintf("sw%d.%d", i, j), sw.Port(j))
		}
	}

	mgr := Attach(e, sws[0], 0, 1, cfg.Ring)
	for i := 1; i < n; i++ {
		AttachClient(sws[i], 0, 1)
	}

	ctrl := plc.NewController(e, "vplc", frame.NewMAC(1), plc.ControllerConfig{})
	dev := iodevice.New(e, "io", frame.NewMAC(2), nil, nil)
	in.RegisterHost("vplc", ctrl)
	upPLC := simnet.Connect(e, "uplink-plc", ctrl.Host().Port(), sws[0].Port(2), cfg.LinkBps, 0)
	upDev := simnet.Connect(e, "uplink-dev", dev.Host().Port(), sws[n/2].Port(2), cfg.LinkBps, 0)
	in.RegisterLink("uplink-plc", upPLC)
	in.RegisterLink("uplink-dev", upDev)
	links = append(links, upPLC, upDev)
	in.RegisterPort("vplc", ctrl.Host().Port())
	in.RegisterPort("io", dev.Host().Port())

	if cfg.Trace != nil {
		cfg.Trace.Bind(e)
		for _, sw := range sws {
			sw.SetTracer(cfg.Trace)
		}
		ctrl.Host().SetTracer(cfg.Trace)
		dev.Host().SetTracer(cfg.Trace)
	}
	if cfg.Metrics != nil {
		for _, sw := range sws {
			simnet.RegisterSwitchMetrics(cfg.Metrics, sw)
		}
		simnet.RegisterHostMetrics(cfg.Metrics, ctrl.Host())
		simnet.RegisterHostMetrics(cfg.Metrics, dev.Host())
		for _, l := range links {
			simnet.RegisterLinkMetrics(cfg.Metrics, l)
		}
		telemetry.RegisterEngineMetrics(cfg.Metrics, e)
	}

	ctrl.Connect(plc.ConnectSpec{
		Device: dev.Host().MAC(),
		Req: profinet.ConnectRequest{
			ARID:           1,
			CycleUS:        uint32(cfg.Cycle / time.Microsecond),
			WatchdogFactor: uint16(cfg.WatchdogFactor),
			InputLen:       20,
			OutputLen:      20,
		},
	})

	res := RingExperimentResult{}
	mgr.OnStateChange = func(s RingState) {
		if s == RingOpen && res.FirstOpenAt == 0 {
			res.FirstOpenAt = e.Now()
		}
		if s == RingClosed {
			res.LastCloseAt = e.Now()
		}
	}

	plan := faults.Plan{Name: "ring-cut", Events: []faults.Event{
		{At: 500 * time.Millisecond, Kind: faults.KindLinkFlap, Target: "ring2"},
	}}
	if cfg.Faults != nil {
		plan = *cfg.Faults
	}
	if err := in.Apply(plan); err != nil {
		panic(fmt.Sprintf("mrp: bad fault plan: %v", err))
	}

	e.RunUntil(sim.Time(cfg.Horizon))
	res.FinalRingState = mgr.State()
	res.Transitions = mgr.Transitions
	res.TestsSent = mgr.TestsSent
	res.TestsReturned = mgr.TestsReturned
	res.FailsafeEvents = dev.FailsafeEvents
	res.DeviceState = dev.State()
	res.InjectedFaults = in.Injected
	res.FaultTrace = in.TraceString()
	return res
}
