package mrp

import (
	"fmt"
	"io"
	"sort"
	"time"

	"steelnet/internal/checkpoint"
	"steelnet/internal/faults"
	"steelnet/internal/frame"
	"steelnet/internal/iodevice"
	"steelnet/internal/plc"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/telemetry"
)

// CheckpointKind tags this experiment's checkpoint files.
const CheckpointKind = "mrp"

// FoldState folds the manager's protocol state: ring state, test
// sequence tracking and the protocol counters.
func (m *Manager) FoldState(d *checkpoint.Digest) {
	d.Int(int(m.state))
	d.U64(uint64(m.seq))
	d.Int(m.misses)
	seqs := make([]uint32, 0, len(m.seen))
	for s := range m.seen {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	d.Int(len(seqs))
	for _, s := range seqs {
		d.U64(uint64(s))
		d.Bool(m.seen[s])
	}
	d.U64(m.TestsSent)
	d.U64(m.TestsReturned)
	d.U64(m.Transitions)
}

// Harness is the resumable form of the ring experiment: build, advance
// in steps, checkpoint at any instant.
type Harness struct {
	cfg    RingExperimentConfig
	engine *sim.Engine
	sws    []*simnet.Switch
	links  []*simnet.Link
	mgr    *Manager
	ctrl   *plc.Controller
	dev    *iodevice.Device
	in     *faults.Injector

	firstOpenAt, lastCloseAt sim.Time
}

// NewHarness builds the ring scenario without running it.
func NewHarness(cfg RingExperimentConfig) *Harness {
	if cfg.Switches < 3 {
		cfg.Switches = 4
	}
	e := sim.NewEngine(cfg.Seed)
	h := &Harness{cfg: cfg, engine: e}
	n := cfg.Switches
	h.in = faults.NewInjector(e)
	h.in.Tracer = cfg.Trace

	h.sws = make([]*simnet.Switch, n)
	for i := 0; i < n; i++ {
		h.sws[i] = simnet.NewSwitch(e, fmt.Sprintf("sw%d", i), 3, simnet.SwitchConfig{Latency: sim.Microsecond})
		h.in.RegisterSwitch(h.sws[i].Name(), h.sws[i])
	}
	for i := 0; i < n; i++ {
		l := simnet.Connect(e, fmt.Sprintf("ring%d", i),
			h.sws[i].Port(1), h.sws[(i+1)%n].Port(0), cfg.LinkBps, 500*sim.Nanosecond)
		h.in.RegisterLink(l.Name, l)
		h.links = append(h.links, l)
	}
	for i, sw := range h.sws {
		for j := 0; j < sw.NumPorts(); j++ {
			h.in.RegisterPort(fmt.Sprintf("sw%d.%d", i, j), sw.Port(j))
		}
	}

	h.mgr = Attach(e, h.sws[0], 0, 1, cfg.Ring)
	for i := 1; i < n; i++ {
		AttachClient(h.sws[i], 0, 1)
	}

	h.ctrl = plc.NewController(e, "vplc", frame.NewMAC(1), plc.ControllerConfig{})
	h.dev = iodevice.New(e, "io", frame.NewMAC(2), nil, nil)
	h.in.RegisterHost("vplc", h.ctrl)
	upPLC := simnet.Connect(e, "uplink-plc", h.ctrl.Host().Port(), h.sws[0].Port(2), cfg.LinkBps, 0)
	upDev := simnet.Connect(e, "uplink-dev", h.dev.Host().Port(), h.sws[n/2].Port(2), cfg.LinkBps, 0)
	h.in.RegisterLink("uplink-plc", upPLC)
	h.in.RegisterLink("uplink-dev", upDev)
	h.links = append(h.links, upPLC, upDev)
	h.in.RegisterPort("vplc", h.ctrl.Host().Port())
	h.in.RegisterPort("io", h.dev.Host().Port())

	if cfg.Trace != nil {
		cfg.Trace.Bind(e)
		for _, sw := range h.sws {
			sw.SetTracer(cfg.Trace)
		}
		h.ctrl.Host().SetTracer(cfg.Trace)
		h.dev.Host().SetTracer(cfg.Trace)
	}
	if cfg.Metrics != nil {
		for _, sw := range h.sws {
			simnet.RegisterSwitchMetrics(cfg.Metrics, sw)
		}
		simnet.RegisterHostMetrics(cfg.Metrics, h.ctrl.Host())
		simnet.RegisterHostMetrics(cfg.Metrics, h.dev.Host())
		for _, l := range h.links {
			simnet.RegisterLinkMetrics(cfg.Metrics, l)
		}
		telemetry.RegisterEngineMetrics(cfg.Metrics, e)
	}

	h.ctrl.Connect(plc.ConnectSpec{
		Device: h.dev.Host().MAC(),
		Req: profinet.ConnectRequest{
			ARID:           1,
			CycleUS:        uint32(cfg.Cycle / time.Microsecond),
			WatchdogFactor: uint16(cfg.WatchdogFactor),
			InputLen:       20,
			OutputLen:      20,
		},
	})

	h.mgr.OnStateChange = func(s RingState) {
		if s == RingOpen && h.firstOpenAt == 0 {
			h.firstOpenAt = e.Now()
		}
		if s == RingClosed {
			h.lastCloseAt = e.Now()
		}
	}

	plan := faults.Plan{Name: "ring-cut", Events: []faults.Event{
		{At: 500 * time.Millisecond, Kind: faults.KindLinkFlap, Target: "ring2"},
	}}
	if cfg.Faults != nil {
		plan = *cfg.Faults
	}
	if err := h.in.Apply(plan); err != nil {
		panic(fmt.Sprintf("mrp: bad fault plan: %v", err))
	}
	return h
}

// Engine returns the harness's engine.
func (h *Harness) Engine() *sim.Engine { return h.engine }

// Horizon returns the configured end of the run.
func (h *Harness) Horizon() sim.Time { return sim.Time(h.cfg.Horizon) }

// AdvanceTo runs the scenario up to instant t.
func (h *Harness) AdvanceTo(t sim.Time) { h.engine.RunUntil(t) }

// Result collects the experiment's measurements at the current instant.
// It is non-destructive: the harness can keep advancing afterwards.
func (h *Harness) Result() RingExperimentResult {
	return RingExperimentResult{
		FinalRingState: h.mgr.State(),
		Transitions:    h.mgr.Transitions,
		TestsSent:      h.mgr.TestsSent,
		TestsReturned:  h.mgr.TestsReturned,
		FirstOpenAt:    h.firstOpenAt,
		LastCloseAt:    h.lastCloseAt,
		FailsafeEvents: h.dev.FailsafeEvents,
		DeviceState:    h.dev.State(),
		InjectedFaults: h.in.Injected,
		FaultTrace:     h.in.TraceString(),
	}
}

// FoldState folds the harness's live state: engine, every switch, the
// ring manager, the controller, the device, the injector's record,
// links and the observation timestamps.
func (h *Harness) FoldState(d *checkpoint.Digest) {
	h.engine.FoldState(d)
	for _, sw := range h.sws {
		sw.FoldState(d)
	}
	h.mgr.FoldState(d)
	h.ctrl.FoldState(d)
	h.dev.FoldState(d)
	h.in.FoldState(d)
	for _, l := range h.links {
		l.FoldState(d)
	}
	d.I64(int64(h.firstOpenAt))
	d.I64(int64(h.lastCloseAt))
}

// Digest returns the state digest at the current instant.
func (h *Harness) Digest() uint64 {
	d := checkpoint.NewDigest()
	h.FoldState(d)
	return d.Sum()
}

// Save writes a replay-anchored checkpoint of the run to w.
func (h *Harness) Save(w io.Writer) error {
	e := checkpoint.NewEncoder()
	encodeRingConfig(e, h.cfg)
	return checkpoint.WriteHarness(w, CheckpointKind, e.Data(), int64(h.engine.Now()), h.Digest())
}

// Restore reads a checkpoint, rebuilds the scenario and replays to the
// checkpointed instant, verifying the state digest.
func Restore(r io.Reader, tracer *telemetry.Tracer, registry *telemetry.Registry) (*Harness, error) {
	cfgBytes, at, digest, err := checkpoint.ReadHarness(r, CheckpointKind)
	if err != nil {
		return nil, err
	}
	d := checkpoint.NewDecoder(cfgBytes)
	cfg := decodeRingConfig(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("mrp: bad checkpoint config: %w", err)
	}
	cfg.Trace = tracer
	cfg.Metrics = registry
	h := NewHarness(cfg)
	h.AdvanceTo(sim.Time(at))
	if got := h.Digest(); got != digest {
		return nil, &checkpoint.DivergenceError{Kind: CheckpointKind, At: at, Recorded: digest, Replayed: got}
	}
	return h, nil
}

func encodeRingConfig(e *checkpoint.Encoder, cfg RingExperimentConfig) {
	e.U64(cfg.Seed)
	e.Int(cfg.Switches)
	e.I64(int64(cfg.Ring.TestInterval))
	e.Int(cfg.Ring.TestTolerance)
	e.I64(int64(cfg.Cycle))
	e.Int(cfg.WatchdogFactor)
	e.I64(int64(cfg.Horizon))
	e.F64(cfg.LinkBps)
	faults.EncodePlan(e, cfg.Faults)
}

func decodeRingConfig(d *checkpoint.Decoder) RingExperimentConfig {
	return RingExperimentConfig{
		Seed:           d.U64(),
		Switches:       d.Int(),
		Ring:           Config{TestInterval: time.Duration(d.I64()), TestTolerance: d.Int()},
		Cycle:          time.Duration(d.I64()),
		WatchdogFactor: d.Int(),
		Horizon:        time.Duration(d.I64()),
		LinkBps:        d.F64(),
		Faults:         faults.DecodePlan(d),
	}
}
