// Package mrp implements a Media-Redundancy-Protocol-style ring manager
// — the mechanism behind the "ring" in §2.3's line/ring/star/tree
// taxonomy of engineered OT topologies. A designated ring manager
// blocks one of its two ring ports so the physical loop is never a
// forwarding loop, circulates test frames in both directions, and when
// the tests stop returning (a ring link or switch died) it unblocks the
// standby port and floods a topology-change notice so switches flush
// their learned tables. Recovery is bounded by TestInterval ×
// TestTolerance — the engineered-failover property that lets a single
// cable cut anywhere in the ring go unnoticed by the control loops
// riding on it.
package mrp

import (
	"encoding/binary"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// TypeMRP is the real MRP EtherType.
const TypeMRP frame.EtherType = 0x88e3

// Frame subtypes.
const (
	msgTest           = 1
	msgTopologyChange = 2
)

// testMAC is the multicast group test frames travel on.
var testMAC = frame.MAC{0x01, 0x15, 0x4e, 0x00, 0x00, 0x01}

// RingState is the manager's view of the ring.
type RingState int

// Ring states.
const (
	// RingClosed: all links healthy; the standby port is blocked.
	RingClosed RingState = iota
	// RingOpen: a failure was detected; the standby port forwards.
	RingOpen
)

// String names the state.
func (s RingState) String() string {
	if s == RingClosed {
		return "closed"
	}
	return "open"
}

// Config parameterizes the manager.
type Config struct {
	// TestInterval is how often test frames circulate (MRP defaults
	// are 20 ms; fast profiles go to 1 ms).
	TestInterval time.Duration
	// TestTolerance is how many consecutive lost tests open the ring.
	TestTolerance int
}

// DefaultConfig recovers within ≈3×20 ms, like standard MRP.
var DefaultConfig = Config{TestInterval: 20 * time.Millisecond, TestTolerance: 3}

// Manager runs on one ring switch. ringA is kept forwarding, ringB is
// the blocked standby while the ring is closed.
type Manager struct {
	sw     *simnet.Switch
	engine *sim.Engine
	cfg    Config
	ringA  int
	ringB  int
	state  RingState
	seq    uint32
	seen   map[uint32]bool
	misses int
	ticker *sim.Ticker

	// OnStateChange fires when the ring opens or closes.
	OnStateChange func(RingState)
	// TestsSent/TestsReturned/Transitions count protocol activity.
	TestsSent, TestsReturned uint64
	Transitions              uint64
}

// Attach installs a ring manager on sw with ring ports a and b and
// starts the protocol: b is blocked, tests circulate.
func Attach(e *sim.Engine, sw *simnet.Switch, a, b int, cfg Config) *Manager {
	if cfg.TestInterval <= 0 {
		cfg.TestInterval = DefaultConfig.TestInterval
	}
	if cfg.TestTolerance < 1 {
		cfg.TestTolerance = DefaultConfig.TestTolerance
	}
	m := &Manager{sw: sw, engine: e, cfg: cfg, ringA: a, ringB: b, seen: make(map[uint32]bool)}
	sw.SetPortBlocked(b, true)
	sw.OnControlFrame = m.onControl
	m.ticker = e.Every(e.Now(), cfg.TestInterval, m.tick)
	return m
}

// State returns the manager's ring state.
func (m *Manager) State() RingState { return m.state }

// Stop halts the protocol (leaves the current blocking state).
func (m *Manager) Stop() { m.ticker.Stop() }

func (m *Manager) tick() {
	// Evaluate the previous round first: did last round's test return?
	if m.seq > 0 && !m.seen[m.seq-1] {
		m.misses++
		if m.state == RingClosed && m.misses >= m.cfg.TestTolerance {
			m.open()
		}
	} else if m.seq > 0 {
		m.misses = 0
		if m.state == RingOpen {
			// Tests flow again: the ring healed; close it back up.
			m.close()
		}
	}
	delete(m.seen, m.seq-1)
	// Send this round's test out both ring ports; it should circle the
	// ring and come back on the other one.
	payload := make([]byte, 7)
	payload[0] = msgTest
	binary.BigEndian.PutUint32(payload[1:], m.seq)
	for _, port := range []int{m.ringA, m.ringB} {
		m.sw.Port(port).Send(&frame.Frame{
			Dst: testMAC, Src: frame.NewMAC(0xffff0000 | uint32(m.ringA)),
			Tagged: true, Priority: frame.PrioNetControl, VID: 1,
			Type: TypeMRP, Payload: append([]byte(nil), payload...),
		})
	}
	m.TestsSent++
	m.seq++
}

func (m *Manager) onControl(port int, f *frame.Frame) bool {
	if f.Type != TypeMRP {
		return false
	}
	if len(f.Payload) < 5 || f.Payload[0] != msgTest {
		return true // consume malformed/other MRP frames
	}
	if port == m.ringA || port == m.ringB {
		seq := binary.BigEndian.Uint32(f.Payload[1:])
		if !m.seen[seq] {
			m.seen[seq] = true
			m.TestsReturned++
		}
	}
	return true
}

func (m *Manager) open() {
	m.state = RingOpen
	m.Transitions++
	m.sw.SetPortBlocked(m.ringB, false)
	m.topologyChange()
	if m.OnStateChange != nil {
		m.OnStateChange(RingOpen)
	}
}

func (m *Manager) close() {
	m.state = RingClosed
	m.Transitions++
	m.misses = 0
	m.sw.SetPortBlocked(m.ringB, true)
	m.topologyChange()
	if m.OnStateChange != nil {
		m.OnStateChange(RingClosed)
	}
}

// topologyChange flushes the local FIB and floods a notice so ring
// clients flush theirs. Clients handle it via Client below.
func (m *Manager) topologyChange() {
	m.sw.FlushDynamic()
	for _, port := range []int{m.ringA, m.ringB} {
		m.sw.Port(port).Send(&frame.Frame{
			Dst: testMAC, Src: frame.NewMAC(0xffff0000 | uint32(m.ringA)),
			Tagged: true, Priority: frame.PrioNetControl, VID: 1,
			Type: TypeMRP, Payload: []byte{msgTopologyChange},
		})
	}
}

// Client makes a non-manager ring switch MRP-aware: it passes ring test
// frames along the ring (even though its ports are never blocked) and
// flushes its FIB on topology changes.
type Client struct {
	sw    *simnet.Switch
	ringA int
	ringB int
	// Flushes counts topology-change flushes.
	Flushes uint64
}

// AttachClient installs ring-client behaviour on sw with the given ring
// ports.
func AttachClient(sw *simnet.Switch, a, b int) *Client {
	c := &Client{sw: sw, ringA: a, ringB: b}
	sw.OnControlFrame = c.onControl
	return c
}

func (c *Client) onControl(port int, f *frame.Frame) bool {
	if f.Type != TypeMRP {
		return false
	}
	// Pass ring control frames along the ring, bypassing blocking and
	// the FIB.
	out := c.ringA
	if port == c.ringA {
		out = c.ringB
	} else if port != c.ringB {
		return true // MRP from a non-ring port: consume
	}
	if len(f.Payload) >= 1 && f.Payload[0] == msgTopologyChange {
		c.sw.FlushDynamic()
		c.Flushes++
	}
	c.sw.Port(out).Send(f)
	return true
}
