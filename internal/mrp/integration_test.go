package mrp

import (
	"testing"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/iodevice"
	"steelnet/internal/plc"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// controlRing wires a 1.6 ms control loop across a 4-switch MRP ring
// (vPLC on sw0, device on sw2 — opposite sides, so a link cut between
// them forces a reroute) and cuts a ring link mid-run.
func controlRing(t *testing.T, cfg Config) (devFailsafes func() uint64, devState func() iodevice.State, run func(time.Duration), cut func()) {
	t.Helper()
	e := sim.NewEngine(1)
	n := 4
	sws := make([]*simnet.Switch, n)
	for i := 0; i < n; i++ {
		sws[i] = simnet.NewSwitch(e, "sw", 3, simnet.SwitchConfig{Latency: sim.Microsecond})
	}
	links := make([]*simnet.Link, n)
	for i := 0; i < n; i++ {
		links[i] = simnet.Connect(e, "ring", sws[i].Port(1), sws[(i+1)%n].Port(0), 100e6, 500*sim.Nanosecond)
	}
	Attach(e, sws[0], 0, 1, cfg)
	for i := 1; i < n; i++ {
		AttachClient(sws[i], 0, 1)
	}
	ctrl := plc.NewController(e, "vplc", frame.NewMAC(1), plc.ControllerConfig{})
	dev := iodevice.New(e, "io", frame.NewMAC(2), nil, nil)
	simnet.Connect(e, "c", ctrl.Host().Port(), sws[0].Port(2), 100e6, 0)
	simnet.Connect(e, "d", dev.Host().Port(), sws[2].Port(2), 100e6, 0)
	ctrl.Connect(plc.ConnectSpec{
		Device: dev.Host().MAC(),
		Req:    profinet.ConnectRequest{ARID: 1, CycleUS: 1600, WatchdogFactor: 3, InputLen: 20, OutputLen: 20},
	})
	// The manager blocks sw0's port 1 (links[0]), so the active path
	// from vPLC to device runs sw0 -> sw3 -> sw2 over links[3] and
	// links[2]; cutting links[2] severs it.
	return func() uint64 { return dev.FailsafeEvents },
		func() iodevice.State { return dev.State() },
		func(d time.Duration) { e.RunUntil(e.Now().Add(d)) },
		func() { links[2].SetUp(false) }
}

func TestStandardMRPTooSlowForMotionControlWatchdog(t *testing.T) {
	// Standard MRP (3×20 ms) recovers far outside the 4.8 ms device
	// watchdog: the cell failsafes once, then recovers — the §2.2
	// observation that OT failover budgets and network recovery times
	// must be co-designed.
	failsafes, state, run, cut := controlRing(t, DefaultConfig)
	run(500 * time.Millisecond)
	cut()
	run(2 * time.Second)
	if failsafes() == 0 {
		t.Fatal("60ms ring recovery magically beat a 4.8ms watchdog")
	}
	if state() != iodevice.StateOperate {
		t.Fatalf("device did not recover after ring reconverged: %v", state())
	}
}

func TestFastMRPProfileKeepsWatchdogAlive(t *testing.T) {
	// A fast profile (3×1 ms ≈ 3 ms + reroute) stays inside the 4.8 ms
	// budget: the cut is invisible to the process.
	fast := Config{TestInterval: time.Millisecond, TestTolerance: 2}
	failsafes, state, run, cut := controlRing(t, fast)
	run(500 * time.Millisecond)
	cut()
	run(2 * time.Second)
	if failsafes() != 0 {
		t.Fatalf("failsafes = %d with fast ring profile", failsafes())
	}
	if state() != iodevice.StateOperate {
		t.Fatalf("device state = %v", state())
	}
}
