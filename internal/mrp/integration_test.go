package mrp

import (
	"reflect"
	"testing"
	"time"

	"steelnet/internal/faults"
	"steelnet/internal/iodevice"
)

// The integration scenarios express failures as declarative fault
// plans against RunRingExperiment's registered targets: a 1.6 ms
// control loop across a 4-switch MRP ring (vPLC on sw0, device on sw2
// — opposite sides, so a mid-ring failure forces a reroute).

func TestStandardMRPTooSlowForMotionControlWatchdog(t *testing.T) {
	// Standard MRP (3×20 ms) recovers far outside the 4.8 ms device
	// watchdog: the cell failsafes once, then recovers — the §2.2
	// observation that OT failover budgets and network recovery times
	// must be co-designed. The default plan is the classic permanent
	// far-side cable cut at 500 ms.
	res := RunRingExperiment(DefaultRingExperimentConfig())
	if res.FailsafeEvents == 0 {
		t.Fatal("60ms ring recovery magically beat a 4.8ms watchdog")
	}
	if res.DeviceState != iodevice.StateOperate {
		t.Fatalf("device did not recover after ring reconverged: %v", res.DeviceState)
	}
	if res.FirstOpenAt == 0 || res.FinalRingState != RingOpen {
		t.Fatalf("permanent cut should leave the ring open: openAt=%v state=%v",
			res.FirstOpenAt, res.FinalRingState)
	}
}

func TestFastMRPProfileKeepsWatchdogAlive(t *testing.T) {
	// A fast profile (2×1 ms ≈ 2 ms + reroute) stays inside the 4.8 ms
	// budget: the cut is invisible to the process.
	cfg := DefaultRingExperimentConfig()
	cfg.Ring = Config{TestInterval: time.Millisecond, TestTolerance: 2}
	res := RunRingExperiment(cfg)
	if res.FailsafeEvents != 0 {
		t.Fatalf("failsafes = %d with fast ring profile", res.FailsafeEvents)
	}
	if res.DeviceState != iodevice.StateOperate {
		t.Fatalf("device state = %v", res.DeviceState)
	}
}

func TestRingHealsAfterLinkFlap(t *testing.T) {
	// A transient cut: the ring opens on the flap and closes again once
	// the link returns and test frames circulate.
	cfg := DefaultRingExperimentConfig()
	cfg.Faults = &faults.Plan{Name: "flap", Events: []faults.Event{
		{At: 500 * time.Millisecond, Kind: faults.KindLinkFlap, Target: "ring2",
			Duration: 800 * time.Millisecond},
	}}
	res := RunRingExperiment(cfg)
	if res.FirstOpenAt == 0 {
		t.Fatal("ring never opened on the cut")
	}
	if res.FinalRingState != RingClosed || res.LastCloseAt <= res.FirstOpenAt {
		t.Fatalf("ring did not reconverge: state=%v openAt=%v closeAt=%v",
			res.FinalRingState, res.FirstOpenAt, res.LastCloseAt)
	}
	if res.Transitions < 2 {
		t.Fatalf("transitions = %d, want ≥2 (open + close)", res.Transitions)
	}
	if res.DeviceState != iodevice.StateOperate {
		t.Fatalf("device state = %v", res.DeviceState)
	}
}

func TestRingSurvivesSwitchCrashRestart(t *testing.T) {
	// Crash a transit switch on the active path (sw3: the closed ring
	// forwards sw0→sw3→sw2). The manager sees the silent peer through
	// missing test frames, opens the ring onto the standby path, and
	// closes it again after the switch reboots cold.
	cfg := DefaultRingExperimentConfig()
	cfg.Ring = Config{TestInterval: time.Millisecond, TestTolerance: 2}
	cfg.Faults = &faults.Plan{Name: "crash", Events: []faults.Event{
		{At: 500 * time.Millisecond, Kind: faults.KindSwitchCrash, Target: "sw3",
			Duration: 700 * time.Millisecond},
	}}
	res := RunRingExperiment(cfg)
	if res.FirstOpenAt == 0 {
		t.Fatal("ring never opened on the switch crash")
	}
	if res.FinalRingState != RingClosed || res.LastCloseAt <= res.FirstOpenAt {
		t.Fatalf("ring did not reconverge after restart: state=%v openAt=%v closeAt=%v",
			res.FinalRingState, res.FirstOpenAt, res.LastCloseAt)
	}
	if res.FailsafeEvents != 0 {
		t.Fatalf("failsafes = %d with fast ring profile", res.FailsafeEvents)
	}
	if res.DeviceState != iodevice.StateOperate {
		t.Fatalf("device state = %v", res.DeviceState)
	}
}

func TestRingExperimentDeterministic(t *testing.T) {
	cfg := DefaultRingExperimentConfig()
	cfg.Faults = &faults.Plan{Name: "flap", Events: []faults.Event{
		{At: 500 * time.Millisecond, Kind: faults.KindLinkFlap, Target: "ring1",
			Duration: 300 * time.Millisecond},
	}}
	a, b := RunRingExperiment(cfg), RunRingExperiment(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, same plan, different results:\n%+v\n%+v", a, b)
	}
}
