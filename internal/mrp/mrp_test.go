package mrp

import (
	"testing"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// ring builds a 4-switch ring with the manager on sw0 (ring ports 0,1)
// and a host on every switch (port 2). Ring links use ports 0 (to the
// previous switch) and 1 (to the next).
func ring(t *testing.T, cfg Config) (*sim.Engine, []*simnet.Switch, []*simnet.Host, *Manager, []*simnet.Link) {
	t.Helper()
	e := sim.NewEngine(1)
	n := 4
	sws := make([]*simnet.Switch, n)
	hosts := make([]*simnet.Host, n)
	for i := 0; i < n; i++ {
		sws[i] = simnet.NewSwitch(e, "sw", 3, simnet.SwitchConfig{Latency: sim.Microsecond})
		hosts[i] = simnet.NewHost(e, "h", frame.NewMAC(uint32(i+1)))
		simnet.Connect(e, "h", hosts[i].Port(), sws[i].Port(2), 100e6, 0)
	}
	links := make([]*simnet.Link, n)
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		links[i] = simnet.Connect(e, "ring", sws[i].Port(1), sws[next].Port(0), 100e6, 500*sim.Nanosecond)
	}
	mgr := Attach(e, sws[0], 0, 1, cfg)
	for i := 1; i < n; i++ {
		AttachClient(sws[i], 0, 1)
	}
	return e, sws, hosts, mgr, links
}

func TestClosedRingHasNoBroadcastStorm(t *testing.T) {
	e, _, hosts, mgr, _ := ring(t, DefaultConfig)
	received := 0
	hosts[2].OnReceive(func(*frame.Frame) { received++ })
	e.RunUntil(sim.Time(100 * time.Millisecond))
	if mgr.State() != RingClosed {
		t.Fatalf("state = %v", mgr.State())
	}
	hosts[0].Send(&frame.Frame{Dst: frame.Broadcast, Payload: []byte{1}})
	e.RunUntil(sim.Time(200 * time.Millisecond))
	if received != 1 {
		t.Fatalf("broadcast copies = %d, want exactly 1 (no storm, no loss)", received)
	}
}

func TestTestFramesCirculate(t *testing.T) {
	e, _, _, mgr, _ := ring(t, DefaultConfig)
	e.RunUntil(sim.Time(500 * time.Millisecond))
	if mgr.TestsSent < 20 {
		t.Fatalf("tests sent = %d", mgr.TestsSent)
	}
	if mgr.TestsReturned < mgr.TestsSent/2 {
		t.Fatalf("tests returned = %d of %d", mgr.TestsReturned, mgr.TestsSent)
	}
	if mgr.State() != RingClosed || mgr.Transitions != 0 {
		t.Fatalf("healthy ring flapped: state=%v transitions=%d", mgr.State(), mgr.Transitions)
	}
}

func TestRingOpensOnLinkFailure(t *testing.T) {
	e, _, _, mgr, links := ring(t, DefaultConfig)
	var openedAt sim.Time
	mgr.OnStateChange = func(s RingState) {
		if s == RingOpen && openedAt == 0 {
			openedAt = e.Now()
		}
	}
	e.RunUntil(sim.Time(200 * time.Millisecond))
	failAt := e.Now()
	links[2].SetUp(false) // cut a link far from the manager
	e.RunUntil(sim.Time(500 * time.Millisecond))
	if mgr.State() != RingOpen {
		t.Fatalf("state = %v after link cut", mgr.State())
	}
	budget := time.Duration(DefaultConfig.TestTolerance+2) * DefaultConfig.TestInterval
	if gap := openedAt.Sub(failAt); gap > budget {
		t.Fatalf("ring opened after %v, budget %v", gap, budget)
	}
}

func TestConnectivityRestoredAfterFailure(t *testing.T) {
	e, _, hosts, _, links := ring(t, DefaultConfig)
	got := 0
	hosts[2].OnReceive(func(f *frame.Frame) {
		if f.Type == frame.TypeProfinet {
			got++
		}
	})
	send := func() {
		hosts[0].Send(&frame.Frame{Dst: hosts[2].MAC(), Type: frame.TypeProfinet, Payload: []byte{1}})
	}
	e.RunUntil(sim.Time(100 * time.Millisecond))
	send()
	e.RunUntil(sim.Time(150 * time.Millisecond))
	if got != 1 {
		t.Fatalf("pre-failure delivery = %d", got)
	}
	// Cut the link the current path uses (between sw1 and sw2), wait
	// for reconvergence, send again: must arrive the other way round.
	links[1].SetUp(false)
	e.RunUntil(sim.Time(400 * time.Millisecond))
	send()
	e.RunUntil(sim.Time(500 * time.Millisecond))
	if got != 2 {
		t.Fatalf("post-failure delivery = %d, want 2", got)
	}
}

func TestRingClosesAgainAfterRepair(t *testing.T) {
	e, _, _, mgr, links := ring(t, DefaultConfig)
	e.RunUntil(sim.Time(200 * time.Millisecond))
	links[2].SetUp(false)
	e.RunUntil(sim.Time(400 * time.Millisecond))
	if mgr.State() != RingOpen {
		t.Fatal("ring did not open")
	}
	links[2].SetUp(true)
	e.RunUntil(sim.Time(800 * time.Millisecond))
	if mgr.State() != RingClosed {
		t.Fatalf("ring did not re-close after repair: %v", mgr.State())
	}
}

func TestTopologyChangeFlushesClients(t *testing.T) {
	e, sws, hosts, _, links := ring(t, DefaultConfig)
	// Teach the switches a path.
	hosts[0].Send(&frame.Frame{Dst: hosts[2].MAC(), Payload: []byte{1}})
	hosts[2].Send(&frame.Frame{Dst: hosts[0].MAC(), Payload: []byte{1}})
	e.RunUntil(sim.Time(100 * time.Millisecond))
	_ = sws
	links[1].SetUp(false)
	e.RunUntil(sim.Time(400 * time.Millisecond))
	// Client flush counters moved (manager sent topology change).
	flushed := false
	for i := 1; i < 4; i++ {
		// Clients store themselves in the switch hook; reconstruct via
		// behaviour: after a flush, the FIB forgets hosts[0].
		if sws[i].LookupPort(hosts[0].MAC()) == -1 {
			flushed = true
		}
	}
	if !flushed {
		t.Fatal("no client flushed its FIB after topology change")
	}
}

func TestStateString(t *testing.T) {
	if RingClosed.String() != "closed" || RingOpen.String() != "open" {
		t.Fatal("state names")
	}
}
