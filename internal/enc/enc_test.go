package enc

import (
	"encoding/json"
	"math"
	"testing"
)

// TestAppendFloatMatchesEncodingJSON pins the number dialect against
// encoding/json for every finite shape the tag space produces; the two
// must agree byte-for-byte or /history payloads would not round-trip
// through standard decoders.
func TestAppendFloatMatchesEncodingJSON(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, -0.25, 100, 3000, 0.55, 1e-9, 1.5e9,
		123456789.123, math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64,
	}
	for _, v := range cases {
		got := string(AppendFloat(nil, v))
		var back float64
		if err := json.Unmarshal([]byte(got), &back); err != nil {
			t.Fatalf("AppendFloat(%g) = %q: not valid JSON: %v", v, got, err)
		}
		if back != v {
			t.Errorf("AppendFloat(%g) = %q: round-trips to %g", v, got, back)
		}
	}
}

// TestAppendFloatNonFinite pins the clamp: JSON has no Inf/NaN, so they
// render as null rather than poisoning a payload.
func TestAppendFloatNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := string(AppendFloat(nil, v)); got != "null" {
			t.Errorf("AppendFloat(%v) = %q, want null", v, got)
		}
	}
}

// TestAppendStringMatchesEncodingJSON checks the quoting agrees with
// encoding/json for plain ASCII names (the tag namespace); exotic
// escapes may differ in form but must stay valid JSON.
func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	plain := []string{"", "run-1", `steelnet_host_rx_total{node="io"}`, "int/sw.out0/press/1/mean_ns"}
	for _, s := range plain {
		got := string(AppendString(nil, s))
		var back string
		if err := json.Unmarshal([]byte(got), &back); err != nil {
			t.Fatalf("AppendString(%q) = %q: not valid JSON: %v", s, got, err)
		}
		if back != s {
			t.Errorf("AppendString(%q) round-trips to %q", s, back)
		}
	}
	for _, s := range []string{"new\nline", "tab\there", "quote\"back\\slash", "ünïcode"} {
		got := AppendString(nil, s)
		var back string
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("AppendString(%q) = %q: not valid JSON: %v", s, got, err)
		}
		if back != s {
			t.Errorf("AppendString(%q) round-trips to %q", s, back)
		}
	}
}

// TestAppendSSE pins the exact frame layout SSE clients parse.
func TestAppendSSE(t *testing.T) {
	got := string(AppendSSE(nil, "tags", []byte(`{"run":"r1"}`)))
	want := "event: tags\ndata: {\"run\":\"r1\"}\n\n"
	if got != want {
		t.Errorf("AppendSSE = %q, want %q", got, want)
	}
	// Appending extends, never truncates.
	b := []byte("x")
	if got := string(AppendSSE(b, "e", []byte("d"))); got != "xevent: e\ndata: d\n\n" {
		t.Errorf("AppendSSE onto prefix = %q", got)
	}
}

// TestIntegerAppends sanity-checks the integer wrappers.
func TestIntegerAppends(t *testing.T) {
	if got := string(AppendUint(nil, 18446744073709551615)); got != "18446744073709551615" {
		t.Errorf("AppendUint = %q", got)
	}
	if got := string(AppendInt(nil, -9223372036854775808)); got != "-9223372036854775808" {
		t.Errorf("AppendInt = %q", got)
	}
}

// TestAppendsAreAllocationFreeOnCapacity pins the package contract: with
// capacity available, no append allocates.
func TestAppendsAreAllocationFreeOnCapacity(t *testing.T) {
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		b := buf[:0]
		b = AppendSSE(b, "tags", []byte("{}"))
		b = AppendFloat(b, 0.25)
		b = AppendString(b, "run-1")
		b = AppendUint(b, 42)
		b = AppendInt(b, -7)
		_ = b
	})
	if allocs != 0 {
		t.Errorf("encoder appends allocate %.1f/op with capacity available", allocs)
	}
}
