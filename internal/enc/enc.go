// Package enc holds the zero-allocation wire encoders shared by the
// observability plane: SSE framing and the JSON number/string appends
// that the obs broker, the steelnetd hub, the lifecycle journal and the
// time-series history endpoint all render with. Every function appends
// into a caller-owned buffer and returns the extended slice, so hot
// paths that reuse their buffers stay 0 allocs/op steady state.
//
// The encoders exist in one place because they define a wire dialect:
// floats render shortest-'g' with non-finite values clamped to null
// (JSON has no Inf/NaN), strings render with strconv's quoting, and SSE
// frames are "event: <e>\ndata: <d>\n\n" exactly. Two hand-rolled
// copies of that dialect drifted once (obs vs hub); this package is the
// single definition plus the tests that pin it against encoding/json.
package enc

import "strconv"

// maxJSONFloat is the largest finite float64; anything beyond it (or
// NaN) is not representable in JSON and clamps to null.
const maxJSONFloat = 1.7976931348623157e308

// AppendSSE appends one server-sent-events frame:
//
//	event: <event>\ndata: <data>\n\n
//
// The payload bytes are copied, so the frame is self-contained and can
// be shared across subscriber queues after the caller reuses data.
func AppendSSE(b []byte, event string, data []byte) []byte {
	b = append(b, "event: "...)
	b = append(b, event...)
	b = append(b, "\ndata: "...)
	b = append(b, data...)
	b = append(b, "\n\n"...)
	return b
}

// AppendFloat appends v as a JSON number: strconv 'g', shortest form,
// with NaN and ±Inf clamped to null.
func AppendFloat(b []byte, v float64) []byte {
	if v != v || v > maxJSONFloat || v < -maxJSONFloat {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// AppendString appends s as a JSON string (quoted and escaped).
func AppendString(b []byte, s string) []byte {
	return strconv.AppendQuote(b, s)
}

// AppendUint and AppendInt append base-10 integers; they exist so
// callers of this package never mix dialects by importing strconv
// alongside it.
func AppendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }

// AppendInt appends v in base 10.
func AppendInt(b []byte, v int64) []byte { return strconv.AppendInt(b, v, 10) }
