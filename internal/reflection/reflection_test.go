package reflection

import (
	"strings"
	"testing"

	"steelnet/internal/ebpf"
	"steelnet/internal/frame"
	"steelnet/internal/host"
	"steelnet/internal/metrics"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cycles = 300
	return cfg
}

func TestAllVariantsVerify(t *testing.T) {
	for _, v := range AllVariants() {
		if !v.Program.Verified() {
			t.Fatalf("variant %s not verified", v.Name)
		}
	}
}

func TestUnknownVariantRejected(t *testing.T) {
	if _, err := NewVariant("TS-XXL"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestVariantProgramsSwapMACs(t *testing.T) {
	v := NewBase()
	// Craft an untagged probe frame manually.
	pkt := make([]byte, 14+32)
	copy(pkt[0:6], []byte{1, 1, 1, 1, 1, 1})
	copy(pkt[6:12], []byte{2, 2, 2, 2, 2, 2})
	pkt[12], pkt[13] = 0x88, 0xb6
	costs := ebpf.DefaultCosts
	res, err := v.Program.Run(pkt, 0, &costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != ebpf.XDPTx {
		t.Fatalf("verdict = %d", res.Verdict)
	}
	if pkt[0] != 2 || pkt[6] != 1 {
		t.Fatalf("MACs not swapped: % x", pkt[:12])
	}
}

func TestVariantsPassNonProbeFrames(t *testing.T) {
	for _, v := range AllVariants() {
		pkt := make([]byte, 60)
		pkt[12], pkt[13] = 0x08, 0x00 // IPv4
		costs := ebpf.DefaultCosts
		res, err := v.Program.Run(pkt, 0, &costs, nil)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if res.Verdict != ebpf.XDPPass {
			t.Fatalf("%s: verdict = %d", v.Name, res.Verdict)
		}
	}
}

func TestTSOWWritesTimestampIntoPayload(t *testing.T) {
	v := NewTSOW()
	pkt := make([]byte, 14+32)
	pkt[12], pkt[13] = 0x88, 0xb6
	costs := ebpf.DefaultCosts
	if _, err := v.Program.Run(pkt, sim.Time(123456), &costs, nil); err != nil {
		t.Fatal(err)
	}
	// TS1 slot at payload offset 8 -> frame offset 22.
	var ts uint64
	for _, b := range pkt[22:30] {
		ts = ts<<8 | uint64(b)
	}
	if ts < 123456 {
		t.Fatalf("payload timestamp = %d", ts)
	}
}

func TestRingVariantsProduceRecords(t *testing.T) {
	for _, name := range []string{VariantTSRB, VariantTSDRB} {
		v, _ := NewVariant(name)
		pkt := make([]byte, 14+32)
		pkt[12], pkt[13] = 0x88, 0xb6
		costs := ebpf.DefaultCosts
		if _, err := v.Program.Run(pkt, 0, &costs, nil); err != nil {
			t.Fatal(err)
		}
		if v.Ring.Produced != 1 {
			t.Fatalf("%s: produced = %d", name, v.Ring.Produced)
		}
	}
}

func TestRunCollectsAllCycles(t *testing.T) {
	cfg := smallConfig()
	res := Run(cfg, NewBase())
	if res.Delays.Len() < cfg.Cycles {
		t.Fatalf("delays = %d, want >= %d", res.Delays.Len(), cfg.Cycles)
	}
}

func TestDelaysInFigure4Band(t *testing.T) {
	// Fig. 4 (left): delays land in roughly the 10-20 µs band.
	res := Run(smallConfig(), NewBase())
	if med := res.Delays.Median(); med < 8 || med > 22 {
		t.Fatalf("median delay = %.1fµs, want ≈10-20µs", med)
	}
	if res.Delays.Min() <= 0 {
		t.Fatal("non-positive delay measured")
	}
}

func TestRingBufferVariantsSlower(t *testing.T) {
	cfg := smallConfig()
	results := RunAllVariants(cfg)
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Variant] = r
	}
	// Fig. 4 (left): ring-buffer variants are right-shifted vs. all
	// non-ring variants.
	for _, rb := range []string{VariantTSRB, VariantTSDRB} {
		for _, plain := range []string{VariantBase, VariantTS, VariantTSTS, VariantTSOW} {
			if byName[rb].Delays.Median() <= byName[plain].Delays.Median() {
				t.Fatalf("%s median %.2f <= %s median %.2f",
					rb, byName[rb].Delays.Median(), plain, byName[plain].Delays.Median())
			}
		}
	}
	// Small code deltas give small but nonzero shifts: TS > Base.
	if byName[VariantTS].Delays.Median() <= byName[VariantBase].Delays.Median() {
		t.Fatal("TS not slower than Base")
	}
	if byName[VariantTSTS].Delays.Median() <= byName[VariantTS].Delays.Median() {
		t.Fatal("TS-TS not slower than TS")
	}
}

func TestMoreFlowsMoreJitter(t *testing.T) {
	cfg := smallConfig()
	results := RunFlowSweep(cfg, []int{1, 25})
	j1 := results[0].Jitter
	j25 := results[1].Jitter
	if j25.P99() <= j1.P99() {
		t.Fatalf("25-flow p99 jitter %.0fns <= 1-flow %.0fns", j25.P99(), j1.P99())
	}
	// Fig. 4 (right) band: jitter within ~0-1000 ns for 1 flow at p99.
	if j1.P99() >= 1000 {
		t.Fatalf("1-flow p99 jitter = %.0fns, want sub-µs", j1.P99())
	}
}

func TestRingRecordsCounted(t *testing.T) {
	cfg := smallConfig()
	res := Run(cfg, NewTSRB())
	if res.RingRecords == 0 {
		t.Fatal("no ring records counted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Cycles = 100
	a := Run(cfg, NewBase())
	b := Run(cfg, NewBase())
	if a.Delays.Len() != b.Delays.Len() || a.Delays.Mean() != b.Delays.Mean() {
		t.Fatal("same seed diverged")
	}
}

func TestSeedChangesDistributionNotShape(t *testing.T) {
	cfg := smallConfig()
	cfg.Cycles = 200
	a := Run(cfg, NewBase())
	cfg.Seed = 2
	b := Run(cfg, NewBase())
	if a.Delays.Mean() == b.Delays.Mean() {
		t.Fatal("different seeds identical (suspicious)")
	}
	// But medians stay within 1 µs of each other: the model, not the
	// noise, dominates.
	if d := a.Delays.Median() - b.Delays.Median(); d > 1 || d < -1 {
		t.Fatalf("medians differ by %.2fµs across seeds", d)
	}
}

func TestReflectorCountsVerdicts(t *testing.T) {
	cfg := smallConfig()
	cfg.Cycles = 50
	e := sim.NewEngine(cfg.Seed)
	_ = e
	res := Run(cfg, NewBase())
	if res.Delays.Len() == 0 {
		t.Fatal("nothing reflected")
	}
}

func TestTablesRender(t *testing.T) {
	cfg := smallConfig()
	cfg.Cycles = 50
	results := RunAllVariants(cfg)
	dt := DelayTable(results)
	if !strings.Contains(dt, "TS-D-RB") || !strings.Contains(dt, "Figure 4") {
		t.Fatalf("delay table = %q", dt)
	}
	sweep := RunFlowSweep(cfg, []int{1, 25})
	jt := JitterTable(sweep)
	if !strings.Contains(jt, "25 flow(s)") {
		t.Fatalf("jitter table = %q", jt)
	}
}

func TestSenderStopHaltsFlows(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewSender(e, "s", [6]byte{2, 0x5e, 0, 0, 0, 1}, [6]byte{2, 0x5e, 0, 0, 0, 2}, 32)
	s.StartFlow(1, 0, sim.Millisecond)
	e.RunUntil(sim.Time(5 * sim.Millisecond))
	s.Stop()
	sent := s.Host().Port().TxFrames + s.Host().Port().Drops
	e.RunUntil(sim.Time(20 * sim.Millisecond))
	after := s.Host().Port().TxFrames + s.Host().Port().Drops
	if after != sent {
		t.Fatalf("sender kept sending after Stop: %d -> %d", sent, after)
	}
}

func TestConsecutiveJitterEventsReported(t *testing.T) {
	// §2.1: consecutive jitter events must be reportable, not just the
	// distribution. On a PREEMPT_RT single-flow run, µs-scale runs long
	// enough to trip a 3-cycle watchdog must not exist.
	cfg := smallConfig()
	res := Run(cfg, NewBase())
	if res.WouldTripWatchdog(2000, 3) {
		events := res.ConsecutiveJitterEvents(2000, 3)
		t.Fatalf("PREEMPT_RT run would trip a 3-cycle watchdog: %+v", events)
	}
	// But sub-100ns deviations occur in runs — the analysis must see
	// them (the series is not degenerate).
	if len(res.ConsecutiveJitterEvents(10, 1)) == 0 {
		t.Fatal("no jitter events at a 10ns threshold — series degenerate")
	}
}

func TestStandardKernelProducesLongerBursts(t *testing.T) {
	cfg := smallConfig()
	rt := Run(cfg, NewBase())
	cfgStd := cfg
	cfgStd.Profile = host.Standard
	std := Run(cfgStd, NewBase())
	worstRT := metrics.WorstBurst(rt.Jitter, 500)
	worstStd := metrics.WorstBurst(std.Jitter, 500)
	if worstStd.Length < worstRT.Length {
		t.Fatalf("standard kernel bursts (%d) shorter than RT (%d)", worstStd.Length, worstRT.Length)
	}
}

func TestTSOWTimestampVisibleAtSenderEndToEnd(t *testing.T) {
	// The TS-OW variant's whole point: the reflected probe carries the
	// eBPF-written timestamp back to the sender, readable without any
	// ring buffer. Run the harness and check the tap saw reflected
	// probes whose TS1 slot is nonzero.
	cfg := smallConfig()
	cfg.Cycles = 50
	e := sim.NewEngine(cfg.Seed)
	stk := host.NewStack(cfg.Profile, e.RNG("stack"))
	sender := NewSender(e, "sender", frame.NewMAC(1), frame.NewMAC(2), cfg.ProbeSize)
	costs := cfg.Costs
	refl := NewReflector(e, "reflector", frame.NewMAC(2), stk, NewTSOW(), &costs)
	var stamped, unstamped int
	sender.Host().OnReceive(func(f *frame.Frame) {
		if f.Type != frame.TypeBenchEcho {
			return
		}
		p, err := frame.UnmarshalProbe(f.Payload)
		if err != nil {
			return
		}
		if p.TS1 != 0 {
			stamped++
		} else {
			unstamped++
		}
	})
	simnet.Connect(e, "l", sender.Host().Port(), refl.Host().Port(), cfg.LinkBps, 500*sim.Nanosecond)
	sender.StartFlow(1, 0, cfg.Cycle)
	e.RunUntil(sim.Time(cfg.Cycle) * sim.Time(cfg.Cycles))
	sender.Stop()
	e.Run()
	if stamped < 40 || unstamped > 0 {
		t.Fatalf("stamped=%d unstamped=%d", stamped, unstamped)
	}
}
