package reflection

import (
	"fmt"
	"io"

	"steelnet/internal/checkpoint"
	"steelnet/internal/ebpf"
	"steelnet/internal/frame"
	"steelnet/internal/host"
	intnet "steelnet/internal/int"
	"steelnet/internal/metrics"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/sweep"
	"steelnet/internal/tap"
	"steelnet/internal/telemetry"
)

// CheckpointKind tags this experiment's checkpoint files.
const CheckpointKind = "reflection"

// Harness is the resumable form of one reflection run (one variant,
// one flow count). Build, advance in steps, checkpoint at any instant;
// Result finalizes (stops the probe flows and drains in-flight frames)
// and may be called once.
type Harness struct {
	cfg     Config
	variant Variant
	engine  *sim.Engine
	sender  *Sender
	refl    *Reflector
	tp      *tap.Tap
	links   []*simnet.Link
	coll    *intnet.Collector

	finished bool
	result   Result
}

// NewHarness builds one reflection cell without running it.
func NewHarness(cfg Config, v Variant) *Harness {
	e := sim.NewEngine(cfg.Seed)
	h := &Harness{cfg: cfg, variant: v, engine: e}
	stk := host.NewStack(cfg.Profile, e.RNG("stack"))
	stk.SetActiveFlows(cfg.Flows)

	h.sender = NewSender(e, "sender", frame.NewMAC(1), frame.NewMAC(2), cfg.ProbeSize)
	costs := cfg.Costs
	h.refl = NewReflector(e, "reflector", frame.NewMAC(2), stk, v, &costs)
	h.tp = tap.New(e, "tap", cfg.TapCfg)

	l1 := simnet.Connect(e, "sender-tap", h.sender.Host().Port(), h.tp.PortA(), cfg.LinkBps, 500*sim.Nanosecond)
	l2 := simnet.Connect(e, "tap-reflector", h.tp.PortB(), h.refl.Host().Port(), cfg.LinkBps, 500*sim.Nanosecond)
	h.links = []*simnet.Link{l1, l2}

	if cfg.INT {
		h.coll = cfg.Collector
		if h.coll == nil {
			h.coll = intnet.NewCollector()
		}
		h.sender.EnableINT()
		h.refl.SetINTSink(h.coll)
		// Source and sink share one stack free list, so the INT-enabled
		// probe path is allocation-free in steady state.
		intPool := &frame.INTPool{}
		h.sender.SetINTPool(intPool)
		h.refl.SetINTPool(intPool)
	}

	if cfg.Trace != nil {
		cfg.Trace.Bind(e)
		h.sender.Host().SetTracer(cfg.Trace)
		h.refl.Host().SetTracer(cfg.Trace)
		h.tp.PortA().SetTracer(cfg.Trace)
		h.tp.PortB().SetTracer(cfg.Trace)
	}
	if cfg.Metrics != nil {
		simnet.RegisterHostMetrics(cfg.Metrics, h.sender.Host())
		simnet.RegisterHostMetrics(cfg.Metrics, h.refl.Host())
		simnet.RegisterPortMetrics(cfg.Metrics, h.tp.PortA())
		simnet.RegisterPortMetrics(cfg.Metrics, h.tp.PortB())
		simnet.RegisterLinkMetrics(cfg.Metrics, l1)
		simnet.RegisterLinkMetrics(cfg.Metrics, l2)
		telemetry.RegisterEngineMetrics(cfg.Metrics, e)
	}

	// Stagger flows across the cycle to avoid synchronized bursts, like
	// a TSN schedule would.
	for fl := 0; fl < cfg.Flows; fl++ {
		offset := sim.Duration(fl) * cfg.Cycle / sim.Duration(cfg.Flows+1)
		h.sender.StartFlow(uint32(fl+1), sim.Time(offset), cfg.Cycle)
	}
	return h
}

// Engine returns the harness's engine.
func (h *Harness) Engine() *sim.Engine { return h.engine }

// Collector returns the INT collector (nil unless cfg.INT).
func (h *Harness) Collector() *intnet.Collector { return h.coll }

// Horizon returns the probing end time (after it, Result drains).
func (h *Harness) Horizon() sim.Time {
	return sim.Time(h.cfg.Cycle) * sim.Time(h.cfg.Cycles+1)
}

// AdvanceTo runs the cell up to instant t.
func (h *Harness) AdvanceTo(t sim.Time) { h.engine.RunUntil(t) }

// Result finalizes the run — stops the probe flows, drains in-flight
// frames and computes the delay/jitter distributions. The first call
// finalizes; later calls return the cached result.
func (h *Harness) Result() Result {
	if h.finished {
		return h.result
	}
	h.finished = true
	h.sender.Stop()
	h.engine.Run() // drain in-flight probes

	delays := metrics.NewSeries(h.cfg.Cycles * h.cfg.Flows)
	for fl := 0; fl < h.cfg.Flows; fl++ {
		for _, rtt := range h.tp.RoundTrip(uint32(fl + 1)) {
			delays.Add(float64(rtt.Delay) / 1e3) // µs
		}
	}
	jitter := metrics.NewSeries(delays.Len())
	med := delays.Median()
	for _, d := range delays.Samples() {
		dev := (d - med) * 1e3 // ns
		if dev < 0 {
			dev = -dev
		}
		jitter.Add(dev)
	}
	h.result = Result{Variant: h.variant.Name, Flows: h.cfg.Flows, Delays: delays, Jitter: jitter}
	if h.variant.Ring != nil {
		h.result.RingRecords = h.variant.Ring.Produced
	}
	return h.result
}

// FoldState folds the cell's live state: engine, the variant's program
// (instructions, maps, rings), reflector verdict counters, tap and
// host ports, links.
func (h *Harness) FoldState(d *checkpoint.Digest) {
	h.engine.FoldState(d)
	h.variant.Program.FoldState(d)
	d.U64(h.refl.Reflected)
	d.U64(h.refl.Passed)
	d.U64(h.refl.Aborted)
	h.sender.Host().FoldState(d)
	h.refl.Host().FoldState(d)
	h.tp.PortA().FoldState(d)
	h.tp.PortB().FoldState(d)
	for _, l := range h.links {
		l.FoldState(d)
	}
	d.Bool(h.finished)
	if h.coll != nil {
		h.coll.FoldState(d)
	}
}

// Digest returns the state digest at the current instant.
func (h *Harness) Digest() uint64 {
	d := checkpoint.NewDigest()
	h.FoldState(d)
	return d.Sum()
}

// Save writes a replay-anchored checkpoint of the cell to w. Save
// before Result: a finalized cell has drained its flows and is not a
// resumable state.
func (h *Harness) Save(w io.Writer) error {
	if h.finished {
		return fmt.Errorf("reflection: cannot checkpoint a finalized harness")
	}
	e := checkpoint.NewEncoder()
	encodeConfig(e, h.cfg)
	e.Str(h.variant.Name)
	return checkpoint.WriteHarness(w, CheckpointKind, e.Data(), int64(h.engine.Now()), h.Digest())
}

// Restore reads a checkpoint, rebuilds the cell (the variant is rebuilt
// by name from the registry) and replays to the checkpointed instant,
// verifying the state digest.
func Restore(r io.Reader, tracer *telemetry.Tracer, registry *telemetry.Registry) (*Harness, error) {
	return RestoreWithCollector(r, tracer, registry, nil)
}

// RestoreWithCollector is Restore with an INT collector attachment:
// when the checkpointed config has INT enabled and coll is non-nil, the
// replay feeds coll (and anything chained on its OnSink — the SLO
// watchdog) instead of a private collector. coll must be empty; replay
// repopulates it from instant zero.
func RestoreWithCollector(r io.Reader, tracer *telemetry.Tracer, registry *telemetry.Registry, coll *intnet.Collector) (*Harness, error) {
	cfgBytes, at, digest, err := checkpoint.ReadHarness(r, CheckpointKind)
	if err != nil {
		return nil, err
	}
	d := checkpoint.NewDecoder(cfgBytes)
	cfg := decodeConfig(d)
	name := d.Str()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("reflection: bad checkpoint config: %w", err)
	}
	v, err := NewVariant(name)
	if err != nil {
		return nil, fmt.Errorf("reflection: checkpoint names unknown variant: %w", err)
	}
	cfg.Trace = tracer
	cfg.Metrics = registry
	cfg.Collector = coll
	h := NewHarness(cfg, v)
	h.AdvanceTo(sim.Time(at))
	if got := h.Digest(); got != digest {
		return nil, &checkpoint.DivergenceError{Kind: CheckpointKind, At: at, Recorded: digest, Replayed: got}
	}
	return h, nil
}

// resultCheckpointer persists completed sweep cells (full delay and
// jitter distributions) for resumable Fig. 4 sweeps.
func resultCheckpointer(path, kind string) sweep.Checkpointer[Result] {
	return sweep.Checkpointer[Result]{
		Path: path,
		Kind: kind,
		Encode: func(e *checkpoint.Encoder, r Result) {
			e.Str(r.Variant)
			e.Int(r.Flows)
			e.F64Slice(r.Delays.Samples())
			e.F64Slice(r.Jitter.Samples())
			e.U64(r.RingRecords)
		},
		Decode: func(d *checkpoint.Decoder) Result {
			return Result{
				Variant:     d.Str(),
				Flows:       d.Int(),
				Delays:      metrics.NewSeriesFrom(d.F64Slice()),
				Jitter:      metrics.NewSeriesFrom(d.F64Slice()),
				RingRecords: d.U64(),
			}
		},
	}
}

// RunAllVariantsResumable is RunAllVariants with sweep-level
// checkpointing: completed variants persist to path and are skipped on
// restart.
func RunAllVariantsResumable(cfg Config, path string) ([]Result, error) {
	protos := AllVariants()
	return sweep.RunResumable(sweepWorkers(cfg), len(protos), resultCheckpointer(path, "figure4-delay"), func(i int) Result {
		return Run(cfg, protos[i].CloneFresh())
	})
}

// RunFlowSweepResumable is RunFlowSweep with sweep-level checkpointing.
func RunFlowSweepResumable(cfg Config, flowCounts []int, path string) ([]Result, error) {
	proto := NewBase()
	return sweep.RunResumable(sweepWorkers(cfg), len(flowCounts), resultCheckpointer(path, "figure4-jitter"), func(i int) Result {
		c := cfg
		c.Flows = flowCounts[i]
		return Run(c, proto.CloneFresh())
	})
}

func encodeConfig(e *checkpoint.Encoder, cfg Config) {
	e.U64(cfg.Seed)
	encodeProfile(e, cfg.Profile)
	encodeCosts(e, cfg.Costs)
	e.F64(cfg.LinkBps)
	e.I64(int64(cfg.Cycle))
	e.Int(cfg.Cycles)
	e.Int(cfg.Flows)
	e.Int(cfg.ProbeSize)
	e.I64(int64(cfg.TapCfg.TimestampStep))
	e.I64(int64(cfg.TapCfg.PassThrough))
	e.I64(int64(cfg.TapCfg.ClockOffset))
	e.Bool(cfg.INT)
}

func decodeConfig(d *checkpoint.Decoder) Config {
	return Config{
		Seed:      d.U64(),
		Profile:   decodeProfile(d),
		Costs:     decodeCosts(d),
		LinkBps:   d.F64(),
		Cycle:     sim.Duration(d.I64()),
		Cycles:    d.Int(),
		Flows:     d.Int(),
		ProbeSize: d.Int(),
		TapCfg: tap.Config{
			TimestampStep: sim.Duration(d.I64()),
			PassThrough:   sim.Duration(d.I64()),
			ClockOffset:   sim.Duration(d.I64()),
		},
		INT: d.Bool(),
	}
}

func encodeProfile(e *checkpoint.Encoder, p host.Profile) {
	e.Str(p.Name)
	e.I64(int64(p.PCIeBase))
	e.F64(p.PCIePerByteNs)
	e.I64(int64(p.NICBase))
	e.I64(int64(p.KernelBase))
	e.I64(int64(p.SchedJitterSD))
	e.F64(p.SpikeProb)
	e.I64(int64(p.SpikeScale))
	e.I64(int64(p.ContentionPerFlowSD))
}

func decodeProfile(d *checkpoint.Decoder) host.Profile {
	return host.Profile{
		Name:                d.Str(),
		PCIeBase:            sim.Duration(d.I64()),
		PCIePerByteNs:       d.F64(),
		NICBase:             sim.Duration(d.I64()),
		KernelBase:          sim.Duration(d.I64()),
		SchedJitterSD:       sim.Duration(d.I64()),
		SpikeProb:           d.F64(),
		SpikeScale:          sim.Duration(d.I64()),
		ContentionPerFlowSD: sim.Duration(d.I64()),
	}
}

func encodeCosts(e *checkpoint.Encoder, c ebpf.CostModel) {
	e.I64(int64(c.ALU))
	e.I64(int64(c.PktMem))
	e.I64(int64(c.StackMem))
	e.I64(int64(c.CallBase))
	e.I64(int64(c.Ktime))
	e.I64(int64(c.MapLookup))
	e.I64(int64(c.MapUpdate))
	e.I64(int64(c.RingbufOutput))
	e.F64(c.RingbufWakeProb)
	e.I64(int64(c.RingbufWakeCost))
	e.I64(int64(c.RunNoiseSD))
}

func decodeCosts(d *checkpoint.Decoder) ebpf.CostModel {
	return ebpf.CostModel{
		ALU:             sim.Duration(d.I64()),
		PktMem:          sim.Duration(d.I64()),
		StackMem:        sim.Duration(d.I64()),
		CallBase:        sim.Duration(d.I64()),
		Ktime:           sim.Duration(d.I64()),
		MapLookup:       sim.Duration(d.I64()),
		MapUpdate:       sim.Duration(d.I64()),
		RingbufOutput:   sim.Duration(d.I64()),
		RingbufWakeProb: d.F64(),
		RingbufWakeCost: sim.Duration(d.I64()),
		RunNoiseSD:      sim.Duration(d.I64()),
	}
}
