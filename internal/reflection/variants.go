// Package reflection implements Traffic Reflection (§3, Fig. 3), the
// paper's measurement method for exposing hidden timing drift in
// eBPF/XDP packet processing. A sender emits cyclic probe frames; a
// reflector host runs one of six XDP programs that bounce each probe
// back to the wire; a passive tap between them timestamps both
// directions with a single clock. The delay distribution then isolates
// the reflector's stack- plus eBPF-induced latency, free of clock
// synchronization error.
//
// The six program variants mirror the paper's exactly: Base (reflect
// only), TS (one timestamp), TS-TS (two timestamps), TS-RB (timestamp
// into a ring buffer), TS-OW (timestamp overwritten into the packet
// payload), and TS-D-RB (difference of two timestamps into a ring
// buffer).
package reflection

import (
	"fmt"

	"steelnet/internal/ebpf"
	"steelnet/internal/frame"
)

// Variant names, as in Fig. 4.
const (
	VariantBase  = "Base"
	VariantTS    = "TS"
	VariantTSTS  = "TS-TS"
	VariantTSRB  = "TS-RB"
	VariantTSOW  = "TS-OW"
	VariantTSDRB = "TS-D-RB"
)

// VariantNames lists all variants in the paper's order.
var VariantNames = []string{VariantBase, VariantTS, VariantTSTS, VariantTSRB, VariantTSOW, VariantTSDRB}

// Variant bundles a verified XDP program with the ring buffer it may
// write to (nil for non-ring variants).
type Variant struct {
	Name    string
	Program *ebpf.Program
	Ring    *ebpf.RingBuf
}

// ethTypeOff is the EtherType offset in an untagged frame; probes are
// sent untagged so payload offsets are static for the TS-OW stores.
const (
	ethTypeOff   = 12
	payloadOff   = 14
	benchEchoVal = int64(frame.TypeBenchEcho)
)

// emitGuardAndSwap emits the shared prologue: pass non-probe frames,
// then swap destination and source MACs in place so an XDP_TX verdict
// returns the frame to its sender. R1 stays 0 (packet base).
func emitGuardAndSwap(a *ebpf.Asm) {
	a.MovImm(ebpf.R1, 0).
		LdPkt(ebpf.R2, ebpf.R1, ethTypeOff, 2).
		JNeImm(ebpf.R2, benchEchoVal, "pass").
		// Load dst (bytes 0..5) and src (bytes 6..11) as 4+2.
		LdPkt(ebpf.R2, ebpf.R1, 0, 4).
		LdPkt(ebpf.R3, ebpf.R1, 4, 2).
		LdPkt(ebpf.R4, ebpf.R1, 6, 4).
		LdPkt(ebpf.R5, ebpf.R1, 10, 2).
		StPkt(ebpf.R1, 0, ebpf.R4, 4).
		StPkt(ebpf.R1, 4, ebpf.R5, 2).
		StPkt(ebpf.R1, 6, ebpf.R2, 4).
		StPkt(ebpf.R1, 10, ebpf.R3, 2)
}

// emitEpilogue emits the TX return and the shared pass label.
func emitEpilogue(a *ebpf.Asm) {
	a.Return(ebpf.XDPTx).
		Label("pass").
		Return(ebpf.XDPPass)
}

// NewBase builds the Base variant: guard, swap, transmit.
func NewBase() Variant {
	a := ebpf.NewAsm(VariantBase)
	emitGuardAndSwap(a)
	emitEpilogue(a)
	return Variant{Name: VariantBase, Program: a.MustProgram()}
}

// NewTS builds TS: Base plus one ktime read spilled to the stack.
func NewTS() Variant {
	a := ebpf.NewAsm(VariantTS)
	emitGuardAndSwap(a)
	a.Call(ebpf.HelperKtime).
		StStack(0, ebpf.R0, 8)
	emitEpilogue(a)
	return Variant{Name: VariantTS, Program: a.MustProgram()}
}

// NewTSTS builds TS-TS: two ktime reads spilled to the stack.
func NewTSTS() Variant {
	a := ebpf.NewAsm(VariantTSTS)
	emitGuardAndSwap(a)
	a.Call(ebpf.HelperKtime).
		StStack(0, ebpf.R0, 8).
		Call(ebpf.HelperKtime).
		StStack(8, ebpf.R0, 8)
	emitEpilogue(a)
	return Variant{Name: VariantTSTS, Program: a.MustProgram()}
}

// NewTSRB builds TS-RB: one ktime read emitted to a ring buffer.
func NewTSRB() Variant {
	rb := ebpf.NewRingBuf("ts-rb", 1<<16)
	a := ebpf.NewAsm(VariantTSRB)
	fd := a.WithRing(rb)
	emitGuardAndSwap(a)
	a.Call(ebpf.HelperKtime).
		StStack(0, ebpf.R0, 8).
		MovImm(ebpf.R1, fd).
		MovImm(ebpf.R2, 0).
		MovImm(ebpf.R3, 8).
		Call(ebpf.HelperRingbufOutput)
	emitEpilogue(a)
	return Variant{Name: VariantTSRB, Program: a.MustProgram(), Ring: rb}
}

// NewTSOW builds TS-OW: one ktime read overwritten into the probe's
// TS1 slot in the packet payload.
func NewTSOW() Variant {
	ts1, _ := frame.ProbeTimestampOffsets()
	a := ebpf.NewAsm(VariantTSOW)
	emitGuardAndSwap(a)
	a.Call(ebpf.HelperKtime).
		MovImm(ebpf.R6, 0).
		StPkt(ebpf.R6, int32(payloadOff+ts1), ebpf.R0, 8)
	emitEpilogue(a)
	return Variant{Name: VariantTSOW, Program: a.MustProgram()}
}

// NewTSDRB builds TS-D-RB: two ktime reads whose difference is emitted
// to a ring buffer.
func NewTSDRB() Variant {
	rb := ebpf.NewRingBuf("ts-d-rb", 1<<16)
	a := ebpf.NewAsm(VariantTSDRB)
	fd := a.WithRing(rb)
	emitGuardAndSwap(a)
	a.Call(ebpf.HelperKtime).
		MovReg(ebpf.R7, ebpf.R0).
		Call(ebpf.HelperKtime).
		SubReg(ebpf.R0, ebpf.R7).
		StStack(0, ebpf.R0, 8).
		MovImm(ebpf.R1, fd).
		MovImm(ebpf.R2, 0).
		MovImm(ebpf.R3, 8).
		Call(ebpf.HelperRingbufOutput)
	emitEpilogue(a)
	return Variant{Name: VariantTSDRB, Program: a.MustProgram(), Ring: rb}
}

// CloneFresh returns a variant that shares v's verified, compiled
// program code but carries fresh map and ring state. Sweeps build each
// variant once and clone it per cell, paying assemble/verify/compile
// once per sweep instead of once per cell.
func (v Variant) CloneFresh() Variant {
	c := Variant{Name: v.Name, Program: v.Program.CloneFresh()}
	if v.Ring != nil {
		for i, r := range v.Program.Rings {
			if r == v.Ring {
				c.Ring = c.Program.Rings[i]
				break
			}
		}
	}
	return c
}

// NewVariant builds a variant by its Fig. 4 name.
func NewVariant(name string) (Variant, error) {
	switch name {
	case VariantBase:
		return NewBase(), nil
	case VariantTS:
		return NewTS(), nil
	case VariantTSTS:
		return NewTSTS(), nil
	case VariantTSRB:
		return NewTSRB(), nil
	case VariantTSOW:
		return NewTSOW(), nil
	case VariantTSDRB:
		return NewTSDRB(), nil
	}
	return Variant{}, fmt.Errorf("reflection: unknown variant %q", name)
}

// AllVariants builds all six variants in order.
func AllVariants() []Variant {
	out := make([]Variant, 0, len(VariantNames))
	for _, n := range VariantNames {
		v, err := NewVariant(n)
		if err != nil {
			panic(err)
		}
		out = append(out, v)
	}
	return out
}
