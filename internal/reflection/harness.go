package reflection

import (
	"fmt"

	"steelnet/internal/ebpf"
	"steelnet/internal/frame"
	"steelnet/internal/host"
	intnet "steelnet/internal/int"
	"steelnet/internal/metrics"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/sweep"
	"steelnet/internal/tap"
	"steelnet/internal/telemetry"
)

// Reflector is the device under test: a host whose NIC runs an XDP
// program. Incoming frames pay the NIC→PCIe→driver path from the host
// model, then the program executes; XDP_TX verdicts re-cross PCIe and
// return to the wire. XDP_PASS frames are counted and discarded (no
// full-stack consumer is attached in this experiment).
type Reflector struct {
	host    *simnet.Host
	stack   *host.Stack
	variant Variant
	costs   *ebpf.CostModel
	rng     *sim.RNG
	pool    frame.Pool // recycles consumed probes into reflected frames
	intSink simnet.INTSink
	intPool *frame.INTPool

	// Reflected, Passed and Aborted count program verdicts.
	Reflected, Passed, Aborted uint64
}

// NewReflector attaches variant v to a new reflector host.
func NewReflector(e *sim.Engine, name string, mac frame.MAC, stk *host.Stack, v Variant, costs *ebpf.CostModel) *Reflector {
	r := &Reflector{
		host:    simnet.NewHost(e, name, mac),
		stack:   stk,
		variant: v,
		costs:   costs,
		rng:     e.RNG("reflector/" + name),
	}
	r.host.OnReceive(r.onFrame)
	return r
}

// Host returns the underlying simnet host (for wiring).
func (r *Reflector) Host() *simnet.Host { return r.host }

// SetINTSink terminates probe INT stacks at the reflector's ingress.
func (r *Reflector) SetINTSink(s simnet.INTSink) { r.intSink = s }

// SetINTPool recycles terminated stacks into p (shared with the
// sender, which Gets its per-probe stacks from the same free list).
func (r *Reflector) SetINTPool(p *frame.INTPool) { r.intPool = p }

func (r *Reflector) onFrame(f *frame.Frame) {
	e := r.host.Engine()
	// INT must terminate here: Marshal below serializes only the wire
	// bytes, so a stack surviving past this point would silently vanish
	// in the marshal/unmarshal round trip. Strip even without a sink so
	// pool recycling can never resurrect a stale stack.
	if f.INT != nil {
		if r.intSink != nil {
			r.intSink.SinkINT(r.host.Name(), f, int64(e.Now()))
		}
		if r.intPool != nil {
			r.intPool.Put(f.INT)
		}
		f.INT = nil
	}
	size := f.WireLen()
	rx := r.stack.RxToXDP(size)
	e.After(rx, func() {
		pkt := f.Marshal()
		r.pool.Put(f) // consumed: the VM operates on the marshaled octets
		res, err := r.variant.Program.Run(pkt, e.Now(), r.costs, r.rng)
		if err != nil {
			r.Aborted++
			return
		}
		switch res.Verdict {
		case ebpf.XDPTx:
			out, uerr := frame.Unmarshal(pkt)
			if uerr != nil {
				r.Aborted++
				return
			}
			g := r.pool.Clone(out) // pkt buffer aliases; detach
			tx := r.stack.XDPToWire(size)
			e.After(res.Cost+tx, func() {
				r.Reflected++
				// Bypass Host.Send: XDP_TX must not re-stamp the source
				// MAC — the program already swapped the addresses.
				r.host.Port().Send(g)
			})
		case ebpf.XDPPass:
			r.Passed++
		default:
			r.Aborted++
		}
	})
}

// Sender emits cyclic probe flows through its single port.
type Sender struct {
	host    *simnet.Host
	dst     frame.MAC
	size    int
	seqs    map[uint32]uint32
	ticker  []*sim.Ticker
	pool    frame.Pool // recycles reflected probes into fresh ones
	intOn   bool
	intPool *frame.INTPool
}

// NewSender creates a probe source addressed at dst with the given probe
// payload size (>= 24).
func NewSender(e *sim.Engine, name string, mac, dst frame.MAC, size int) *Sender {
	s := &Sender{
		host: simnet.NewHost(e, name, mac),
		dst:  dst,
		size: size,
		seqs: make(map[uint32]uint32),
	}
	// Reflected probes terminate here; recycling them makes the probe
	// stream allocation-free in steady state.
	s.host.OnReceive(s.pool.Put)
	return s
}

// Host returns the underlying simnet host (for wiring).
func (s *Sender) Host() *simnet.Host { return s.host }

// EnableINT makes every probe carry an INT stack whose flow and
// sequence mirror the probe's own identifiers.
func (s *Sender) EnableINT() { s.intOn = true }

// SetINTPool sources probe stacks from p instead of allocating one per
// probe (see Reflector.SetINTPool for the matching sink side).
func (s *Sender) SetINTPool(p *frame.INTPool) { s.intPool = p }

// StartFlow begins emitting flowID probes every cycle, first at start.
func (s *Sender) StartFlow(flowID uint32, start sim.Time, cycle sim.Duration) {
	e := s.host.Engine()
	t := e.Every(start, cycle, func() {
		seq := s.seqs[flowID]
		s.seqs[flowID] = seq + 1
		f := s.pool.Get(s.size)
		if err := frame.MarshalProbeInto(frame.Probe{Seq: seq, FlowID: flowID}, f.Payload); err != nil {
			panic(err)
		}
		f.Dst = s.dst
		f.Type = frame.TypeBenchEcho
		f.Meta = frame.Meta{FlowID: flowID}
		if s.intOn {
			// Seq is 1-based on the wire: the collector reads sequence 0
			// as "no predecessor" when tracking loss.
			if s.intPool != nil {
				f.INT = s.intPool.Get(s.host.Name(), flowID, seq+1, int64(e.Now()), 0)
			} else {
				f.AttachINT(s.host.Name(), flowID, seq+1, int64(e.Now()), 0)
			}
		}
		if !s.host.Send(f) {
			s.pool.Put(f) // egress drop: safe to recycle immediately
		}
	})
	s.ticker = append(s.ticker, t)
}

// Stop halts all flows.
func (s *Sender) Stop() {
	for _, t := range s.ticker {
		t.Stop()
	}
}

// Config parameterizes one reflection experiment.
type Config struct {
	Seed      uint64
	Profile   host.Profile // reflector host stack
	Costs     ebpf.CostModel
	LinkBps   float64      // sender—tap—reflector link rate
	Cycle     sim.Duration // probe period per flow
	Cycles    int          // probes per flow
	Flows     int          // concurrent flows
	ProbeSize int          // probe payload bytes
	TapCfg    tap.Config
	// Workers bounds the goroutines used by multi-cell sweeps
	// (RunAllVariants, RunFlowSweep). <= 0 selects runtime.NumCPU();
	// 1 runs serially. Results are identical for any value — each cell
	// runs on its own engine and results merge in input order.
	Workers int
	// Trace, when non-nil, records the frame lifecycle of the run.
	// Multi-cell sweeps stay parallel: each cell traces into a private
	// buffer, merged into Trace in cell order after the sweep.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, receives the component counters. A shared
	// registry cannot be written from parallel cells, so it forces
	// multi-cell sweeps serial (Workers == 1).
	Metrics *telemetry.Registry
	// INT attaches an in-band telemetry stack to every probe at the
	// sender; the tap transit-stamps it and the reflector's ingress
	// terminates it into Collector — the per-hop decomposition of the
	// one-way latency the tap can otherwise only measure end to end.
	INT bool
	// Collector receives terminated INT stacks. Nil with INT set means
	// the harness creates one (Harness.Collector). Multi-cell sweeps
	// give each cell a private collector and Absorb them in cell order.
	Collector *intnet.Collector
}

// DefaultConfig is the paper-like setup: 100 Mb/s industrial links, 2 ms
// cycle, PREEMPT_RT host, 8 ns tap.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		Profile:   host.PreemptRT,
		Costs:     ebpf.DefaultCosts,
		LinkBps:   100e6,
		Cycle:     2 * sim.Millisecond,
		Cycles:    2000,
		Flows:     1,
		ProbeSize: 32,
		TapCfg:    tap.DefaultConfig,
	}
}

// Result is the measured delay distribution for one variant/flow-count.
type Result struct {
	Variant string
	Flows   int
	// Delays holds tap-measured round-trip delays in microseconds.
	Delays *metrics.Series
	// Jitter holds |delay - median| in nanoseconds.
	Jitter *metrics.Series
	// RingRecords is the number of ring-buffer records the variant
	// produced (0 for non-ring variants).
	RingRecords uint64
}

// Run executes one experiment with the given variant and returns the
// tap-derived delay and jitter distributions. It is the
// straight-through form of the Harness.
func Run(cfg Config, v Variant) Result {
	h := NewHarness(cfg, v)
	h.AdvanceTo(h.Horizon())
	return h.Result()
}

// ConsecutiveJitterEvents scans the per-cycle jitter series for runs of
// at least minRun consecutive cycles above thresholdNS — the
// "consecutive jitter events … cycle after cycle" §2.1 faults existing
// evaluations for not reporting, because they are what expire PROFINET
// watchdog counters.
func (r Result) ConsecutiveJitterEvents(thresholdNS float64, minRun int) []metrics.BurstEvent {
	return metrics.Bursts(r.Jitter, thresholdNS, minRun)
}

// WouldTripWatchdog reports whether the measured jitter pattern would
// have halted a device with the given consecutive-miss budget, treating
// any cycle with jitter above thresholdNS as a missed deadline.
func (r Result) WouldTripWatchdog(thresholdNS float64, watchdogCycles int) bool {
	return metrics.WouldTripWatchdog(r.Jitter, thresholdNS, watchdogCycles)
}

// sweepWorkers is the effective pool size for resumable sweeps: a
// shared tracer or registry cannot be written from parallel cells, so
// telemetry forces serial there.
func sweepWorkers(cfg Config) int {
	if cfg.Trace != nil || cfg.Metrics != nil || cfg.INT {
		return 1
	}
	return cfg.Workers
}

// cellOut carries one sweep cell's result plus its private telemetry
// buffers, pending the in-order merge.
type cellOut struct {
	res  Result
	tr   *telemetry.Tracer
	coll *intnet.Collector
}

// runCells executes n sweep cells. Tracing and INT collection no longer
// force the sweep serial: each cell writes into a private tracer and
// collector, and the buffers merge into cfg.Trace / cfg.Collector in
// input cell order after the sweep — byte-identical to a serial run. A
// shared metrics registry still serializes the sweep.
func runCells(cfg Config, n int, run func(i int, c Config) Result) []Result {
	workers := cfg.Workers
	if cfg.Metrics != nil {
		workers = 1
	}
	outs := sweep.Run(workers, n, func(i int) cellOut {
		c := cfg
		var o cellOut
		if cfg.Trace != nil {
			o.tr = telemetry.NewTracer(nil) // bound to the cell's engine by NewHarness
			c.Trace = o.tr
		}
		if cfg.INT {
			o.coll = intnet.NewCollector()
			c.Collector = o.coll
		}
		o.res = run(i, c)
		return o
	})
	results := make([]Result, n)
	for i, o := range outs {
		results[i] = o.res
		if o.tr != nil {
			cfg.Trace.MergeFrom(o.tr)
		}
		if o.coll != nil && cfg.Collector != nil {
			cfg.Collector.Absorb(o.coll)
		}
	}
	return results
}

// RunAllVariants reproduces Fig. 4 (left): the delay CDF of all six
// variants under cfg. Cells run across cfg.Workers goroutines; the
// result order (and thus every rendered table) matches a serial run.
// Each variant is assembled, verified and compiled exactly once; cells
// get fresh-state clones sharing the compiled code.
func RunAllVariants(cfg Config) []Result {
	protos := AllVariants()
	return runCells(cfg, len(protos), func(i int, c Config) Result {
		return Run(c, protos[i].CloneFresh())
	})
}

// RunFlowSweep reproduces Fig. 4 (right): jitter CDFs of the Base
// variant for each flow count, one sweep cell per count.
func RunFlowSweep(cfg Config, flowCounts []int) []Result {
	proto := NewBase()
	return runCells(cfg, len(flowCounts), func(i int, c Config) Result {
		c.Flows = flowCounts[i]
		return Run(c, proto.CloneFresh())
	})
}

// DelayTable renders Fig. 4 (left) as a percentile table (µs).
func DelayTable(results []Result) string {
	series := make(map[string]*metrics.Series, len(results))
	order := make([]string, 0, len(results))
	for _, r := range results {
		series[r.Variant] = r.Delays
		order = append(order, r.Variant)
	}
	return metrics.CDFTable("Figure 4 (left): reflection delay CDF by eBPF variant", "µs", series, order)
}

// DecompositionTable renders the INT per-hop latency decomposition: for
// every observed path, each hop's residence-time statistics next to the
// end-to-end figures, with the unattributed remainder (wire serialization,
// propagation and host ingress — everything between the stamped hops)
// made explicit. This is the view the tap alone cannot give: the tap
// sees one number per round trip, INT splits it per device.
func DecompositionTable(digests []*intnet.PathDigest) string {
	t := metrics.NewTable("INT per-hop latency decomposition (µs)",
		"path", "hop", "frames", "mean", "min", "max", "maxQ")
	us := func(ns float64) string { return fmt.Sprintf("%.3f", ns/1e3) }
	for _, p := range digests {
		label := fmt.Sprintf("%s->%s/%d", p.Source, p.Sink, p.Flow)
		var attributed float64
		for _, h := range p.HopAggs {
			attributed += h.MeanNS()
			t.AddRow(label, h.Node, fmt.Sprintf("%d", h.Count),
				us(h.MeanNS()), us(float64(h.MinNS)), us(float64(h.MaxNS)),
				fmt.Sprintf("%d", h.QueueMax))
		}
		t.AddRow(label, "(unattributed)", fmt.Sprintf("%d", p.Count),
			us(p.MeanNS()-attributed), "", "", "")
		t.AddRow(label, "end-to-end", fmt.Sprintf("%d", p.Count),
			us(p.MeanNS()), us(float64(p.MinNS)), us(float64(p.MaxNS)), "")
	}
	return t.String()
}

// JitterTable renders Fig. 4 (right) as a percentile table (ns).
func JitterTable(results []Result) string {
	series := make(map[string]*metrics.Series, len(results))
	order := make([]string, 0, len(results))
	for _, r := range results {
		name := fmt.Sprintf("%d flow(s)", r.Flows)
		series[name] = r.Jitter
		order = append(order, name)
	}
	return metrics.CDFTable("Figure 4 (right): reflection jitter CDF by flow count", "ns", series, order)
}
