package reflection

import (
	"fmt"

	"steelnet/internal/ebpf"
	"steelnet/internal/frame"
	"steelnet/internal/host"
	"steelnet/internal/metrics"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/sweep"
	"steelnet/internal/tap"
	"steelnet/internal/telemetry"
)

// Reflector is the device under test: a host whose NIC runs an XDP
// program. Incoming frames pay the NIC→PCIe→driver path from the host
// model, then the program executes; XDP_TX verdicts re-cross PCIe and
// return to the wire. XDP_PASS frames are counted and discarded (no
// full-stack consumer is attached in this experiment).
type Reflector struct {
	host    *simnet.Host
	stack   *host.Stack
	variant Variant
	costs   *ebpf.CostModel
	rng     *sim.RNG
	pool    frame.Pool // recycles consumed probes into reflected frames

	// Reflected, Passed and Aborted count program verdicts.
	Reflected, Passed, Aborted uint64
}

// NewReflector attaches variant v to a new reflector host.
func NewReflector(e *sim.Engine, name string, mac frame.MAC, stk *host.Stack, v Variant, costs *ebpf.CostModel) *Reflector {
	r := &Reflector{
		host:    simnet.NewHost(e, name, mac),
		stack:   stk,
		variant: v,
		costs:   costs,
		rng:     e.RNG("reflector/" + name),
	}
	r.host.OnReceive(r.onFrame)
	return r
}

// Host returns the underlying simnet host (for wiring).
func (r *Reflector) Host() *simnet.Host { return r.host }

func (r *Reflector) onFrame(f *frame.Frame) {
	e := r.host.Engine()
	size := f.WireLen()
	rx := r.stack.RxToXDP(size)
	e.After(rx, func() {
		pkt := f.Marshal()
		r.pool.Put(f) // consumed: the VM operates on the marshaled octets
		res, err := r.variant.Program.Run(pkt, e.Now(), r.costs, r.rng)
		if err != nil {
			r.Aborted++
			return
		}
		switch res.Verdict {
		case ebpf.XDPTx:
			out, uerr := frame.Unmarshal(pkt)
			if uerr != nil {
				r.Aborted++
				return
			}
			g := r.pool.Clone(out) // pkt buffer aliases; detach
			tx := r.stack.XDPToWire(size)
			e.After(res.Cost+tx, func() {
				r.Reflected++
				// Bypass Host.Send: XDP_TX must not re-stamp the source
				// MAC — the program already swapped the addresses.
				r.host.Port().Send(g)
			})
		case ebpf.XDPPass:
			r.Passed++
		default:
			r.Aborted++
		}
	})
}

// Sender emits cyclic probe flows through its single port.
type Sender struct {
	host   *simnet.Host
	dst    frame.MAC
	size   int
	seqs   map[uint32]uint32
	ticker []*sim.Ticker
	pool   frame.Pool // recycles reflected probes into fresh ones
}

// NewSender creates a probe source addressed at dst with the given probe
// payload size (>= 24).
func NewSender(e *sim.Engine, name string, mac, dst frame.MAC, size int) *Sender {
	s := &Sender{
		host: simnet.NewHost(e, name, mac),
		dst:  dst,
		size: size,
		seqs: make(map[uint32]uint32),
	}
	// Reflected probes terminate here; recycling them makes the probe
	// stream allocation-free in steady state.
	s.host.OnReceive(s.pool.Put)
	return s
}

// Host returns the underlying simnet host (for wiring).
func (s *Sender) Host() *simnet.Host { return s.host }

// StartFlow begins emitting flowID probes every cycle, first at start.
func (s *Sender) StartFlow(flowID uint32, start sim.Time, cycle sim.Duration) {
	e := s.host.Engine()
	t := e.Every(start, cycle, func() {
		seq := s.seqs[flowID]
		s.seqs[flowID] = seq + 1
		f := s.pool.Get(s.size)
		if err := frame.MarshalProbeInto(frame.Probe{Seq: seq, FlowID: flowID}, f.Payload); err != nil {
			panic(err)
		}
		f.Dst = s.dst
		f.Type = frame.TypeBenchEcho
		f.Meta = frame.Meta{FlowID: flowID}
		if !s.host.Send(f) {
			s.pool.Put(f) // egress drop: safe to recycle immediately
		}
	})
	s.ticker = append(s.ticker, t)
}

// Stop halts all flows.
func (s *Sender) Stop() {
	for _, t := range s.ticker {
		t.Stop()
	}
}

// Config parameterizes one reflection experiment.
type Config struct {
	Seed      uint64
	Profile   host.Profile // reflector host stack
	Costs     ebpf.CostModel
	LinkBps   float64      // sender—tap—reflector link rate
	Cycle     sim.Duration // probe period per flow
	Cycles    int          // probes per flow
	Flows     int          // concurrent flows
	ProbeSize int          // probe payload bytes
	TapCfg    tap.Config
	// Workers bounds the goroutines used by multi-cell sweeps
	// (RunAllVariants, RunFlowSweep). <= 0 selects runtime.NumCPU();
	// 1 runs serially. Results are identical for any value — each cell
	// runs on its own engine and results merge in input order.
	Workers int
	// Trace, when non-nil, records the frame lifecycle of the run. A
	// shared tracer forces multi-cell sweeps serial (Workers == 1).
	Trace *telemetry.Tracer
	// Metrics, when non-nil, receives the component counters.
	Metrics *telemetry.Registry
}

// DefaultConfig is the paper-like setup: 100 Mb/s industrial links, 2 ms
// cycle, PREEMPT_RT host, 8 ns tap.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		Profile:   host.PreemptRT,
		Costs:     ebpf.DefaultCosts,
		LinkBps:   100e6,
		Cycle:     2 * sim.Millisecond,
		Cycles:    2000,
		Flows:     1,
		ProbeSize: 32,
		TapCfg:    tap.DefaultConfig,
	}
}

// Result is the measured delay distribution for one variant/flow-count.
type Result struct {
	Variant string
	Flows   int
	// Delays holds tap-measured round-trip delays in microseconds.
	Delays *metrics.Series
	// Jitter holds |delay - median| in nanoseconds.
	Jitter *metrics.Series
	// RingRecords is the number of ring-buffer records the variant
	// produced (0 for non-ring variants).
	RingRecords uint64
}

// Run executes one experiment with the given variant and returns the
// tap-derived delay and jitter distributions. It is the
// straight-through form of the Harness.
func Run(cfg Config, v Variant) Result {
	h := NewHarness(cfg, v)
	h.AdvanceTo(h.Horizon())
	return h.Result()
}

// ConsecutiveJitterEvents scans the per-cycle jitter series for runs of
// at least minRun consecutive cycles above thresholdNS — the
// "consecutive jitter events … cycle after cycle" §2.1 faults existing
// evaluations for not reporting, because they are what expire PROFINET
// watchdog counters.
func (r Result) ConsecutiveJitterEvents(thresholdNS float64, minRun int) []metrics.BurstEvent {
	return metrics.Bursts(r.Jitter, thresholdNS, minRun)
}

// WouldTripWatchdog reports whether the measured jitter pattern would
// have halted a device with the given consecutive-miss budget, treating
// any cycle with jitter above thresholdNS as a missed deadline.
func (r Result) WouldTripWatchdog(thresholdNS float64, watchdogCycles int) bool {
	return metrics.WouldTripWatchdog(r.Jitter, thresholdNS, watchdogCycles)
}

// sweepWorkers is the effective pool size: a shared tracer or registry
// cannot be written from parallel cells, so telemetry forces serial.
func sweepWorkers(cfg Config) int {
	if cfg.Trace != nil || cfg.Metrics != nil {
		return 1
	}
	return cfg.Workers
}

// RunAllVariants reproduces Fig. 4 (left): the delay CDF of all six
// variants under cfg. Cells run across cfg.Workers goroutines; the
// result order (and thus every rendered table) matches a serial run.
func RunAllVariants(cfg Config) []Result {
	return sweep.Run(sweepWorkers(cfg), len(VariantNames), func(i int) Result {
		v, err := NewVariant(VariantNames[i])
		if err != nil {
			panic(err)
		}
		return Run(cfg, v)
	})
}

// RunFlowSweep reproduces Fig. 4 (right): jitter CDFs of the Base
// variant for each flow count, one sweep cell per count.
func RunFlowSweep(cfg Config, flowCounts []int) []Result {
	return sweep.Run(sweepWorkers(cfg), len(flowCounts), func(i int) Result {
		c := cfg
		c.Flows = flowCounts[i]
		return Run(c, NewBase())
	})
}

// DelayTable renders Fig. 4 (left) as a percentile table (µs).
func DelayTable(results []Result) string {
	series := make(map[string]*metrics.Series, len(results))
	order := make([]string, 0, len(results))
	for _, r := range results {
		series[r.Variant] = r.Delays
		order = append(order, r.Variant)
	}
	return metrics.CDFTable("Figure 4 (left): reflection delay CDF by eBPF variant", "µs", series, order)
}

// JitterTable renders Fig. 4 (right) as a percentile table (ns).
func JitterTable(results []Result) string {
	series := make(map[string]*metrics.Series, len(results))
	order := make([]string, 0, len(results))
	for _, r := range results {
		name := fmt.Sprintf("%d flow(s)", r.Flows)
		series[name] = r.Jitter
		order = append(order, name)
	}
	return metrics.CDFTable("Figure 4 (right): reflection jitter CDF by flow count", "ns", series, order)
}
