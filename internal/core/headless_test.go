package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	intnet "steelnet/internal/int"
)

func TestHeadlessConfigDefaults(t *testing.T) {
	d, err := NewHeadless(HeadlessConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Config()
	if cfg.Horizon != 3*time.Second || cfg.Slice != 50*time.Millisecond {
		t.Fatalf("defaults %v/%v, want 3s/50ms", cfg.Horizon, cfg.Slice)
	}
}

func TestHeadlessConfigErrors(t *testing.T) {
	bad := []HeadlessConfig{
		{Horizon: 100 * time.Millisecond, Slice: 200 * time.Millisecond},
		{Faults: "not a plan"},
		{SLO: "not a plan"},
	}
	for i, cfg := range bad {
		if _, err := NewHeadless(cfg); err == nil {
			t.Errorf("case %d: NewHeadless(%+v) succeeded", i, cfg)
		}
	}
}

// TestHeadlessStepGrid pins the slice grid: seq counts boundaries from
// 1, the final slice clamps to the horizon, and stepping past done is a
// no-op.
func TestHeadlessStepGrid(t *testing.T) {
	d, err := NewHeadless(HeadlessConfig{Seed: 1, Horizon: 220 * time.Millisecond, Slice: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if d.Done() {
		t.Fatal("done before the first step")
	}
	var steps int
	for !d.Step() {
		steps++
		s := d.Sample()
		if s.Seq != uint64(steps) {
			t.Fatalf("seq %d after %d steps", s.Seq, steps)
		}
		if s.SimNS != int64(steps)*int64(50*time.Millisecond) {
			t.Fatalf("sim_ns %d at step %d", s.SimNS, steps)
		}
	}
	// 220ms/50ms = 4 full slices plus a clamped 20ms tail.
	final := d.Sample()
	if final.Seq != 5 || final.SimNS != int64(220*time.Millisecond) {
		t.Fatalf("final sample seq=%d sim_ns=%d, want 5 at the horizon", final.Seq, final.SimNS)
	}
	if !d.Step() || !d.Done() {
		t.Error("Step after done must keep reporting done")
	}
	if d.Sample().Seq != 5 {
		t.Error("Step after done advanced the cursor")
	}
}

func TestHeadlessSampleNamespaces(t *testing.T) {
	d, err := NewHeadless(HeadlessConfig{Seed: 1, Horizon: 400 * time.Millisecond, Slice: 50 * time.Millisecond, SLO: "latency:*<1µs"})
	if err != nil {
		t.Fatal(err)
	}
	for !d.Step() {
	}
	s := d.Sample()
	if len(s.Digests) == 0 || len(s.Loss) == 0 || len(s.Breaches) == 0 {
		t.Fatalf("sample missing sections: %d digests, %d loss, %d breaches",
			len(s.Digests), len(s.Loss), len(s.Breaches))
	}
	var haveMetric, haveINT, haveLoss, haveSLO bool
	for _, tag := range s.Tags {
		switch {
		case strings.HasPrefix(tag.Name, "steelnet_host_rx_total{"):
			haveMetric = true
		case strings.HasPrefix(tag.Name, "int/") && strings.HasSuffix(tag.Name, "/mean_ns"):
			haveINT = true
		case strings.HasPrefix(tag.Name, "loss/"):
			haveLoss = true
			if tag.Value < 0 || tag.Value > 1 {
				t.Errorf("loss fraction %q = %g out of [0,1]", tag.Name, tag.Value)
			}
		case tag.Name == "slo/breaches":
			haveSLO = true
			if tag.Value != float64(len(s.Breaches)) {
				t.Errorf("slo/breaches = %g, want %d", tag.Value, len(s.Breaches))
			}
		}
	}
	if !haveMetric || !haveINT || !haveLoss || !haveSLO {
		t.Fatalf("tag namespaces missing: metric=%v int=%v loss=%v slo=%v",
			haveMetric, haveINT, haveLoss, haveSLO)
	}
}

func TestHeadlessBaselineRun(t *testing.T) {
	d, err := NewHeadless(HeadlessConfig{Seed: 1, Horizon: 400 * time.Millisecond, Slice: 100 * time.Millisecond, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	for !d.Step() {
	}
	s := d.Sample()
	if len(s.Digests) != 0 {
		t.Errorf("baseline run collected %d INT digests, want none", len(s.Digests))
	}
	if s.Breaches != nil {
		t.Errorf("breaches without an SLO plan: %v", s.Breaches)
	}
	if len(s.Tags) == 0 {
		t.Error("baseline run sampled no tags")
	}
}

func TestHeadlessReplayDeterminism(t *testing.T) {
	sample := func() []flatSample {
		d, err := NewHeadless(HeadlessConfig{Seed: 7, Horizon: 400 * time.Millisecond, Slice: 50 * time.Millisecond, SLO: "latency:*<1µs"})
		if err != nil {
			t.Fatal(err)
		}
		var out []flatSample
		for !d.Step() {
			out = append(out, flatten(d.Sample()))
		}
		return append(out, flatten(d.Sample()))
	}
	a, b := sample(), sample()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of the same spec sampled differently")
	}
}

// flatSample snapshots a Sample into pure values: Digests are live
// collector pointers that keep mutating as the run advances, but their
// state is already flattened into the int/ tags, so comparisons use
// everything else.
type flatSample struct {
	Seq      uint64
	SimNS    int64
	Tags     []Tag
	Breaches []intnet.Breach
	Loss     []SinkLoss
}

func flatten(s Sample) flatSample {
	return flatSample{
		Seq:      s.Seq,
		SimNS:    s.SimNS,
		Tags:     append([]Tag(nil), s.Tags...),
		Breaches: append([]intnet.Breach(nil), s.Breaches...),
		Loss:     append([]SinkLoss(nil), s.Loss...),
	}
}

// TestHeadlessSaveRestore checkpoints mid-run and at the clamped final
// boundary; the restored driver must sample identically and finish on
// the same grid.
func TestHeadlessSaveRestore(t *testing.T) {
	cfg := HeadlessConfig{Seed: 7, Horizon: 220 * time.Millisecond, Slice: 50 * time.Millisecond, SLO: "latency:*<1µs"}
	straight, err := NewHeadless(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wants []flatSample
	for !straight.Step() {
		wants = append(wants, flatten(straight.Sample()))
	}
	wants = append(wants, flatten(straight.Sample()))

	for cut := 1; cut <= len(wants); cut++ {
		d, err := NewHeadless(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i++ {
			d.Step()
		}
		var cp bytes.Buffer
		if err := d.Save(&cp); err != nil {
			t.Fatal(err)
		}
		r, err := RestoreHeadless(&cp, cfg)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := flatten(r.Sample()); !reflect.DeepEqual(got, wants[cut-1]) {
			t.Fatalf("cut %d: restored sample diverged:\ngot  %+v\nwant %+v", cut, got, wants[cut-1])
		}
		if r.Done() != (cut == len(wants)) {
			t.Fatalf("cut %d: restored done = %v", cut, r.Done())
		}
		for i := cut; i < len(wants); i++ {
			r.Step()
			if got := flatten(r.Sample()); !reflect.DeepEqual(got, wants[i]) {
				t.Fatalf("cut %d: post-restore sample %d diverged", cut, i+1)
			}
		}
	}
}

func TestRestoreHeadlessErrors(t *testing.T) {
	cfg := HeadlessConfig{Seed: 1, Horizon: 100 * time.Millisecond, Slice: 50 * time.Millisecond}
	if _, err := RestoreHeadless(strings.NewReader("junk"), cfg); err == nil {
		t.Error("restore from junk succeeded")
	}
	bad := cfg
	bad.Slice = time.Second
	if _, err := RestoreHeadless(strings.NewReader(""), bad); err == nil {
		t.Error("restore with a bad spec succeeded")
	}
	badSLO := cfg
	badSLO.SLO = "nope"
	if _, err := RestoreHeadless(strings.NewReader(""), badSLO); err == nil {
		t.Error("restore with a bad SLO plan succeeded")
	}
}

func TestHeadlessFaultsAndFailAt(t *testing.T) {
	d, err := NewHeadless(HeadlessConfig{
		Seed:    1,
		Horizon: 400 * time.Millisecond,
		Slice:   100 * time.Millisecond,
		FailAt:  150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for !d.Step() {
	}
	if d.Result().Switchovers == 0 {
		t.Error("explicit FailAt produced no failover")
	}

	// A declarative fault plan must parse and visibly perturb the run:
	// flapping the primary's data-plane link mid-run lowers its
	// delivered count versus the unfaulted twin.
	base, err := NewHeadless(HeadlessConfig{Seed: 1, Horizon: 400 * time.Millisecond, Slice: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewHeadless(HeadlessConfig{
		Seed:    1,
		Horizon: 400 * time.Millisecond,
		Slice:   100 * time.Millisecond,
		Faults:  "linkflap:v1-dp@150ms+100ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	for !base.Step() {
	}
	for !df.Step() {
	}
	if reflect.DeepEqual(flatten(base.Sample()).Tags, flatten(df.Sample()).Tags) {
		t.Error("link-flap fault plan left the run untouched")
	}
}

func TestSinkLossFraction(t *testing.T) {
	if f := (SinkLoss{}).Fraction(); f != 0 {
		t.Errorf("empty aggregate fraction %g", f)
	}
	if f := (SinkLoss{Received: 75, Lost: 25}).Fraction(); f != 0.25 {
		t.Errorf("25/100 fraction %g", f)
	}
}

// TestHeadlessTraceResumeEqualsStraight pins the trace-stitching
// contract the gateway's /trace export depends on: a traced run resumed
// from a checkpoint re-records the replayed prefix, so its full event
// log equals a straight traced run's exactly.
func TestHeadlessTraceResumeEqualsStraight(t *testing.T) {
	cfg := HeadlessConfig{Seed: 7, Horizon: 220 * time.Millisecond, Slice: 50 * time.Millisecond, Trace: true}
	straight, err := NewHeadless(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !straight.Step() {
	}
	want := straight.TraceEvents()
	if len(want) == 0 {
		t.Fatal("traced run recorded no events")
	}

	d, err := NewHeadless(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Step()
	d.Step()
	var cp bytes.Buffer
	if err := d.Save(&cp); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreHeadless(&cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !r.Step() {
	}
	got := r.TraceEvents()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed trace diverged: %d events vs %d", len(got), len(want))
	}
}

// TestHeadlessTraceOffByDefault pins that untraced runs carry no
// tracer: TraceEvents is nil and the run costs nothing extra.
func TestHeadlessTraceOffByDefault(t *testing.T) {
	d, err := NewHeadless(HeadlessConfig{Seed: 1, Horizon: 100 * time.Millisecond, Slice: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for !d.Step() {
	}
	if d.TraceEvents() != nil {
		t.Error("untraced run recorded events")
	}
}
