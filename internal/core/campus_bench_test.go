package core

import (
	"testing"

	"steelnet/internal/sim"
	"steelnet/internal/topo"
)

// bench7Config is the BENCH_7 scenario: a campus past the 10k-switch
// mark (32 cells x 313 switches = 10,016 cell switches plus 4 spines,
// one host per access switch), run for one millisecond of simulated
// time with the default cross-cell traffic share. One op builds the
// harness and runs it to the horizon, so the number covers
// construction, routing installation, and the full event volume. The
// generator goes much larger (10 hosts per switch passes the paper's
// 100k-host bar) but one such op costs ~6 s serial — too slow for the
// benchdiff sampling loop.
//
// BENCH_8.json records these at -shards=1, 2, 4 and 8 on the same
// machine; the committed baseline was measured on a single-core
// container (GOMAXPROCS=1), where the shard workers time-slice one CPU
// and the multi-shard rungs show only coordinator overhead, not
// speedup. Re-measure on a multi-core box to see the parallel scaling
// the partition exists for.
func bench7Config(workers int) CampusConfig {
	return CampusConfig{
		Seed: 7,
		Topo: topo.CampusConfig{
			Cells:           32,
			SwitchesPerCell: 313,
			HostsPerSwitch:  1,
			Spines:          4,
		},
		Horizon: 1 * sim.Millisecond,
		Period:  250 * sim.Microsecond,
		Workers: workers,
	}
}

func benchCampus(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, err := NewCampusHarness(bench7Config(workers))
		if err != nil {
			b.Fatal(err)
		}
		h.Run()
		if h.Result().Accounting.Delivered == 0 {
			b.Fatal("campus run delivered nothing")
		}
	}
}

func BenchmarkCampus10kShards1(b *testing.B) { benchCampus(b, 1) }
func BenchmarkCampus10kShards2(b *testing.B) { benchCampus(b, 2) }
func BenchmarkCampus10kShards4(b *testing.B) { benchCampus(b, 4) }
func BenchmarkCampus10kShards8(b *testing.B) { benchCampus(b, 8) }
