package core

import (
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/metrics"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// TASAblationConfig parameterizes the time-aware-shaping ablation: a
// cyclic RT control flow shares a switch egress with bursty best-effort
// traffic; with the 802.1Qbv guard schedule the RT flow's jitter stays
// bounded, without it the bursts push RT frames around — the mechanism
// TSN exists for (§1.1).
type TASAblationConfig struct {
	Seed uint64
	// Cycle is the RT flow's period; RTWindow the protected gate slice.
	Cycle    time.Duration
	RTWindow time.Duration
	// BEBurst is the number of 1500-byte best-effort frames blasted per
	// burst; BEEvery the burst period.
	BEBurst int
	BEEvery time.Duration
	// Horizon bounds the run.
	Horizon time.Duration
	// LinkBps is the shared egress rate.
	LinkBps float64
}

// DefaultTASAblationConfig mixes a 1 ms control flow with heavy bursts
// on a 100 Mb/s industrial link.
func DefaultTASAblationConfig() TASAblationConfig {
	return TASAblationConfig{
		Seed:     1,
		Cycle:    time.Millisecond,
		RTWindow: 200 * time.Microsecond,
		BEBurst:  12,
		BEEvery:  5 * time.Millisecond,
		Horizon:  2 * time.Second,
		LinkBps:  100e6,
	}
}

// TASAblationResult reports RT-flow timing with and without shaping.
type TASAblationResult struct {
	WithTAS bool
	// JitterP99NS and JitterMaxNS summarize |interarrival - cycle|.
	JitterP99NS, JitterMaxNS float64
	// RTDelivered counts RT frames that made it.
	RTDelivered int
}

// ShaperMode selects the egress discipline under ablation.
type ShaperMode int

// Shaper modes.
const (
	// ShaperNone: strict priority only.
	ShaperNone ShaperMode = iota
	// ShaperTAS: 802.1Qbv guard-window gate schedule.
	ShaperTAS
	// ShaperCBS: 802.1Qav credit shaping of the best-effort class.
	ShaperCBS
)

// String names the mode.
func (m ShaperMode) String() string {
	switch m {
	case ShaperTAS:
		return "tas"
	case ShaperCBS:
		return "cbs"
	}
	return "none"
}

// RunShaperAblation measures the RT flow's inter-arrival jitter at the
// sink under the chosen egress discipline.
func RunShaperAblation(cfg TASAblationConfig, mode ShaperMode) TASAblationResult {
	res := runShaped(cfg, mode)
	res.WithTAS = mode == ShaperTAS
	return res
}

// RunTASAblation measures the RT flow's inter-arrival jitter at the
// sink with TAS on or off.
func RunTASAblation(cfg TASAblationConfig, withTAS bool) TASAblationResult {
	if withTAS {
		return RunShaperAblation(cfg, ShaperTAS)
	}
	return RunShaperAblation(cfg, ShaperNone)
}

func runShaped(cfg TASAblationConfig, mode ShaperMode) TASAblationResult {
	e := sim.NewEngine(cfg.Seed)
	sw := simnet.NewSwitch(e, "sw", 3, simnet.DefaultSwitchConfig)
	rtSrc := simnet.NewHost(e, "rt", frame.NewMAC(1))
	beSrc := simnet.NewHost(e, "be", frame.NewMAC(2))
	sink := simnet.NewHost(e, "sink", frame.NewMAC(3))
	simnet.Connect(e, "rt", rtSrc.Port(), sw.Port(0), cfg.LinkBps, 500*sim.Nanosecond)
	simnet.Connect(e, "be", beSrc.Port(), sw.Port(1), cfg.LinkBps, 500*sim.Nanosecond)
	simnet.Connect(e, "sink", sink.Port(), sw.Port(2), cfg.LinkBps, 500*sim.Nanosecond)
	sw.AddStatic(sink.MAC(), 2)
	switch mode {
	case ShaperTAS:
		sw.Port(2).SetTAS(simnet.RTGuardSchedule(cfg.Cycle, cfg.RTWindow))
	case ShaperCBS:
		// Shape the best-effort class to 30% of the link so its bursts
		// spread out instead of monopolizing the wire.
		sw.Port(2).SetShaper(simnet.NewCreditShaper(frame.PrioBestEffort, cfg.LinkBps*0.3))
	}

	var arrivals []int64
	sink.OnReceive(func(f *frame.Frame) {
		if f.EffectivePriority() == frame.PrioRT {
			arrivals = append(arrivals, int64(e.Now()))
		}
	})
	e.Every(0, cfg.Cycle, func() {
		rtSrc.Send(&frame.Frame{
			Dst: sink.MAC(), Tagged: true, Priority: frame.PrioRT, VID: 10,
			Type: frame.TypeProfinet, Payload: make([]byte, 40),
		})
	})
	e.Every(0, cfg.BEEvery, func() {
		for i := 0; i < cfg.BEBurst; i++ {
			beSrc.Send(&frame.Frame{
				Dst: sink.MAC(), Tagged: true, Priority: frame.PrioBestEffort, VID: 10,
				Type: frame.TypeIPv4, Payload: make([]byte, 1500),
			})
		}
	})
	e.RunUntil(sim.Time(cfg.Horizon))

	jit := metrics.InterArrivalJitter(arrivals, cfg.Cycle)
	return TASAblationResult{
		JitterP99NS: jit.P99(),
		JitterMaxNS: jit.Max(),
		RTDelivered: len(arrivals),
	}
}
