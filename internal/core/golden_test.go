package core

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"steelnet/internal/instaplc"
	"steelnet/internal/mltopo"
	"steelnet/internal/reflection"
	"steelnet/internal/sim"
)

// The figure sweeps run their cells on a worker pool. The determinism
// contract is that parallelism changes wall-clock time only: for a
// fixed seed the rendered tables must be byte-identical no matter how
// many workers ran the sweep. These tests pin that contract by diffing
// the serial table against a parallel one.

func goldenReflectionConfig() reflection.Config {
	cfg := reflection.DefaultConfig()
	cfg.Cycles = 120 // enough cycles for stable percentiles, short enough for CI
	return cfg
}

func parallelWorkers() int {
	w := runtime.NumCPU()
	if w < 4 {
		w = 4 // exercise real concurrency even on small CI boxes
	}
	return w
}

func TestFigure4DelayTableIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := goldenReflectionConfig()
	serial.Workers = 1
	wantTable, wantResults := Figure4Delay(serial)

	par := goldenReflectionConfig()
	par.Workers = parallelWorkers()
	gotTable, gotResults := Figure4Delay(par)

	if gotTable != wantTable {
		t.Errorf("Figure4Delay table differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
			par.Workers, wantTable, gotTable)
	}
	if len(gotResults) != len(wantResults) {
		t.Fatalf("result count differs: %d vs %d", len(gotResults), len(wantResults))
	}
	for i := range wantResults {
		if gotResults[i].Variant != wantResults[i].Variant {
			t.Errorf("result %d variant order differs: %q vs %q", i, gotResults[i].Variant, wantResults[i].Variant)
		}
		if gotResults[i].RingRecords != wantResults[i].RingRecords {
			t.Errorf("result %d ring records differ: %d vs %d", i, gotResults[i].RingRecords, wantResults[i].RingRecords)
		}
	}
}

func TestFigure4JitterTableIdenticalAcrossWorkerCounts(t *testing.T) {
	serial := goldenReflectionConfig()
	serial.Workers = 1
	wantTable, _ := Figure4Jitter(serial)

	par := goldenReflectionConfig()
	par.Workers = parallelWorkers()
	gotTable, _ := Figure4Jitter(par)

	if gotTable != wantTable {
		t.Errorf("Figure4Jitter table differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
			par.Workers, wantTable, gotTable)
	}
}

func TestChaosSweepTableIdenticalAcrossWorkerCounts(t *testing.T) {
	// Same seed + same fault plans ⇒ byte-identical chaos table at any
	// worker count: fault injection must not leak nondeterminism into
	// the sweep (every cell's plan and engine derive only from the cell
	// seed, and fault RNG streams are per-port by name).
	base := DefaultChaosConfig()
	base.Intensities = []int{0, 3, 9}
	base.Trials = 2

	serial := base
	serial.Workers = 1
	wantCells := RunChaosSweep(serial)
	wantTable := RenderChaosSweep(wantCells)

	par := base
	par.Workers = parallelWorkers()
	gotCells := RunChaosSweep(par)
	gotTable := RenderChaosSweep(gotCells)

	if gotTable != wantTable {
		t.Errorf("chaos table differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
			par.Workers, wantTable, gotTable)
	}
	for i := range wantCells {
		if gotCells[i] != wantCells[i] {
			t.Errorf("cell %d differs:\nserial:   %+v\nparallel: %+v", i, wantCells[i], gotCells[i])
		}
	}
}

// TestFigure6TableIdenticalAcrossSeedsAndWorkers extends the worker
// contract across seeds: the engine's batched dequeue must not perturb
// any seed's rendered table, serial or parallel. Seed 1 is covered (at
// a longer horizon) by TestFigure6TableIdenticalAcrossWorkerCounts.
func TestFigure6TableIdenticalAcrossSeedsAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping topology sweep in -short mode")
	}
	for _, seed := range []uint64{2, 7} {
		base := mltopo.Figure6Config{
			Seed:         seed,
			ClientCounts: []int{8},
			Horizon:      60 * time.Millisecond,
		}

		serial := base
		serial.Workers = 1
		wantTable, _ := Figure6(serial)

		par := base
		par.Workers = parallelWorkers()
		gotTable, _ := Figure6(par)

		if gotTable != wantTable {
			t.Errorf("seed %d: Figure6 table differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
				seed, par.Workers, wantTable, gotTable)
		}
	}
}

// TestFigure5TableStableAcrossSeeds reruns the single-cell InstaPLC
// experiment per seed and requires byte-identical renders: Figure 5
// exercises deep ticker chains and same-instant control/IO bursts, the
// exact shapes the batched dequeue restages, so any batching
// nondeterminism shows up here as a table diff.
func TestFigure5TableStableAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 3, 9} {
		cfg := instaplc.DefaultExperimentConfig()
		cfg.Seed = seed
		cfg.Horizon = 400 * time.Millisecond
		cfg.FailAt = 250 * time.Millisecond
		want, _ := Figure5(cfg)
		got, _ := Figure5(cfg)
		if got != want {
			t.Errorf("seed %d: Figure5 table not reproducible:\n--- first ---\n%s--- second ---\n%s",
				seed, want, got)
		}
		if want == "" {
			t.Errorf("seed %d: Figure5 rendered empty", seed)
		}
	}
}

// campusArtifacts runs a campus scenario and returns every rendered
// artifact a user can export: the result table, the merged INT path
// digest export, and the merged SLO breach log. The cross-shard golden
// contract is that all three are byte-identical for any worker count.
func campusArtifacts(t *testing.T, seed uint64, workers int) (table, intJSONL, breachLog string) {
	t.Helper()
	cfg := testCampusConfig(workers)
	cfg.Seed = seed
	h, err := NewCampusHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Run()
	table = RenderCampus(h.Result())
	var buf bytes.Buffer
	if err := h.MergedCollector().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	intJSONL = buf.String()
	buf.Reset()
	if err := h.MergedWatchdog().WriteBreachLog(&buf); err != nil {
		t.Fatal(err)
	}
	return table, intJSONL, buf.String()
}

// TestCampusArtifactsIdenticalAcrossWorkersAndSeeds is the golden
// cross-shard determinism suite: for several seeds, the campus table,
// the INT digest export and the SLO breach log must not change by one
// byte when the shard group runs on 2 or 8 worker goroutines instead
// of serially.
func TestCampusArtifactsIdenticalAcrossWorkersAndSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 5, 23} {
		wantTable, wantINT, wantBreach := campusArtifacts(t, seed, 1)
		if wantINT == "" || wantBreach == "" {
			t.Fatalf("seed %d: empty telemetry artifacts (int=%d breach=%d bytes)",
				seed, len(wantINT), len(wantBreach))
		}
		for _, workers := range []int{2, 8} {
			gotTable, gotINT, gotBreach := campusArtifacts(t, seed, workers)
			if gotTable != wantTable {
				t.Errorf("seed %d: campus table differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
					seed, workers, wantTable, gotTable)
			}
			if gotINT != wantINT {
				t.Errorf("seed %d: INT export differs between workers=1 and workers=%d", seed, workers)
			}
			if gotBreach != wantBreach {
				t.Errorf("seed %d: SLO breach log differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
					seed, workers, wantBreach, gotBreach)
			}
		}
	}
}

// TestCampusResumedArtifactsIdentical extends the golden contract
// through a checkpoint: save mid-run serially, restore on 8 workers,
// and require the finished artifacts to match the straight run's.
func TestCampusResumedArtifactsIdentical(t *testing.T) {
	wantTable, wantINT, wantBreach := campusArtifacts(t, 9, 1)

	cfg := testCampusConfig(1)
	cfg.Seed = 9
	h, err := NewCampusHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.AdvanceTo(sim.Time(0).Add(cfg.Horizon / 3))
	var ckpt bytes.Buffer
	if err := h.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCampus(&ckpt, 8)
	if err != nil {
		t.Fatal(err)
	}
	restored.Run()
	gotTable := RenderCampus(restored.Result())
	var buf bytes.Buffer
	if err := restored.MergedCollector().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	gotINT := buf.String()
	buf.Reset()
	if err := restored.MergedWatchdog().WriteBreachLog(&buf); err != nil {
		t.Fatal(err)
	}
	if gotTable != wantTable {
		t.Errorf("resumed campus table differs:\n--- straight ---\n%s--- resumed ---\n%s", wantTable, gotTable)
	}
	if gotINT != wantINT {
		t.Error("resumed INT export differs from straight run")
	}
	if got := buf.String(); got != wantBreach {
		t.Errorf("resumed breach log differs:\n--- straight ---\n%s--- resumed ---\n%s", wantBreach, got)
	}
}

func TestFigure6TableIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping topology sweep in -short mode")
	}
	base := mltopo.Figure6Config{
		Seed:         1,
		ClientCounts: []int{8, 16},
		Horizon:      100 * time.Millisecond,
	}

	serial := base
	serial.Workers = 1
	wantTable, wantResults := Figure6(serial)

	par := base
	par.Workers = parallelWorkers()
	gotTable, gotResults := Figure6(par)

	if gotTable != wantTable {
		t.Errorf("Figure6 table differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
			par.Workers, wantTable, gotTable)
	}
	if len(gotResults) != len(wantResults) {
		t.Fatalf("result count differs: %d vs %d", len(gotResults), len(wantResults))
	}
	for i := range wantResults {
		w, g := wantResults[i], gotResults[i]
		if g.App != w.App || g.Kind != w.Kind || g.Clients != w.Clients {
			t.Errorf("result %d cell order differs: got (%s,%v,%d), want (%s,%v,%d)",
				i, g.App, g.Kind, g.Clients, w.App, w.Kind, w.Clients)
		}
		if g.MeanLatencyMS != w.MeanLatencyMS || g.LossRate != w.LossRate {
			t.Errorf("result %d stats differ: got (%v,%v), want (%v,%v)",
				i, g.MeanLatencyMS, g.LossRate, w.MeanLatencyMS, w.LossRate)
		}
	}
}
