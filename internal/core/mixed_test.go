package core

import (
	"testing"
	"time"

	"steelnet/internal/frame"
	"steelnet/internal/iodevice"
	"steelnet/internal/plc"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// mixedRig builds the §5 coexistence scenario: a control loop (vPLC on
// sw0, device on sw1) and an ML frame stream (client on sw0, sink on
// sw1) share one 100 Mb/s trunk. mlPrio selects the ML traffic class.
func mixedRig(t *testing.T, mlPrio frame.PCP, burst int) (*sim.Engine, *iodevice.Device) {
	t.Helper()
	e := sim.NewEngine(1)
	sw0 := simnet.NewSwitch(e, "sw0", 4, simnet.DefaultSwitchConfig)
	sw1 := simnet.NewSwitch(e, "sw1", 4, simnet.DefaultSwitchConfig)
	simnet.Connect(e, "trunk", sw0.Port(3), sw1.Port(3), 100e6, 500*sim.Nanosecond)

	ctrl := plc.NewController(e, "vplc", frame.NewMAC(1), plc.ControllerConfig{})
	dev := iodevice.New(e, "io", frame.NewMAC(2), nil, nil)
	mlSrc := simnet.NewHost(e, "cam", frame.NewMAC(3))
	mlSink := simnet.NewHost(e, "srv", frame.NewMAC(4))
	simnet.Connect(e, "c", ctrl.Host().Port(), sw0.Port(0), 1e9, 0)
	simnet.Connect(e, "m", mlSrc.Port(), sw0.Port(1), 1e9, 0)
	simnet.Connect(e, "d", dev.Host().Port(), sw1.Port(0), 100e6, 0)
	simnet.Connect(e, "s", mlSink.Port(), sw1.Port(1), 1e9, 0)
	for _, sw := range []*simnet.Switch{sw0, sw1} {
		sw.SetQueueDepth(4096)
	}
	sw0.AddStatic(dev.Host().MAC(), 3)
	sw0.AddStatic(mlSink.MAC(), 3)
	sw0.AddStatic(ctrl.Host().MAC(), 0)
	sw1.AddStatic(dev.Host().MAC(), 0)
	sw1.AddStatic(mlSink.MAC(), 1)
	sw1.AddStatic(ctrl.Host().MAC(), 3)

	ctrl.Connect(plc.ConnectSpec{
		Device: dev.Host().MAC(),
		Req:    profinet.ConnectRequest{ARID: 1, CycleUS: 1600, WatchdogFactor: 3, InputLen: 20, OutputLen: 20},
	})
	// ML camera: a burst of 1400-byte fragments every 30 ms (a frame
	// upload), sharing the trunk with the control loop.
	e.Every(sim.Time(5*time.Millisecond), 30*time.Millisecond, func() {
		for i := 0; i < burst; i++ {
			mlSrc.Send(&frame.Frame{
				Dst: mlSink.MAC(), Tagged: true, Priority: mlPrio, VID: 20,
				Type: frame.TypeMLData, Payload: make([]byte, 1400),
			})
		}
	})
	return e, dev
}

func TestControlSurvivesMLLoadWithPriorities(t *testing.T) {
	// Properly classified (PrioML < PrioRT): strict priority keeps the
	// 1.6 ms control loop alive under 64-fragment bursts whose trunk
	// drain time (7.2 ms) exceeds the device watchdog (4.8 ms).
	e, dev := mixedRig(t, frame.PrioML, 64)
	e.RunUntil(sim.Time(2 * time.Second))
	if dev.FailsafeEvents != 0 {
		t.Fatalf("failsafe events = %d with correct priorities", dev.FailsafeEvents)
	}
	if dev.State() != iodevice.StateOperate {
		t.Fatalf("device state = %v", dev.State())
	}
	if dev.RxCyclic < 1000 {
		t.Fatalf("control frames = %d", dev.RxCyclic)
	}
}

func TestControlDiesWhenMLTrafficMisclassified(t *testing.T) {
	// Misconfigured network (ML marked RT): FIFO within the class lets
	// 7.2 ms bursts starve the control loop past its watchdog — the §5
	// clash between deterministic control and data-hungry ML made
	// concrete.
	e, dev := mixedRig(t, frame.PrioRT, 64)
	e.RunUntil(sim.Time(2 * time.Second))
	if dev.FailsafeEvents == 0 {
		t.Fatal("misclassified ML traffic did not disturb the control loop")
	}
}

func TestSmallMLBurstsHarmlessEitherWay(t *testing.T) {
	// 8-fragment bursts drain in 0.9 ms < watchdog: even misclassified
	// traffic stays under the budget — the danger scales with ML frame
	// size, which is the dimensioning lever §5's design uses.
	e, dev := mixedRig(t, frame.PrioRT, 8)
	e.RunUntil(sim.Time(2 * time.Second))
	if dev.FailsafeEvents != 0 {
		t.Fatalf("failsafes = %d with small bursts", dev.FailsafeEvents)
	}
}
