// Package core is the public face of steelnet: it assembles the
// paper's converged IT/OT factory — production cells of I/O devices,
// virtual PLCs running on modeled host stacks in an on-prem data
// center, and a programmable network between them — and exposes one
// entry point per experiment the paper reports (Figures 1, 4, 5 and 6,
// plus the §2 requirement checks). Examples and CLIs build on this
// package; the substrates live in their own packages underneath.
package core

import (
	"fmt"
	"time"

	"steelnet/internal/dataplane"
	"steelnet/internal/frame"
	"steelnet/internal/host"
	"steelnet/internal/instaplc"
	"steelnet/internal/iodevice"
	"steelnet/internal/plc"
	"steelnet/internal/profinet"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
)

// CellConfig describes one production cell: a device and its
// controller(s) exchanging cyclic IO.
type CellConfig struct {
	Name string
	// Cycle is the IO cycle time.
	Cycle time.Duration
	// WatchdogFactor is the device's safety watchdog in cycles.
	WatchdogFactor int
	// InputLen/OutputLen are the IO payload sizes (§2.3: 20-250 B).
	InputLen, OutputLen int
	// Standby adds a secondary vPLC for high availability.
	Standby bool
	// Process is the cell's physical model (nil: echo).
	Process iodevice.Process
	// Logic is the controller's IL program (nil: none).
	Logic *plc.ILProgram
}

// DefaultCell is a motion-control-ish cell: 1.6 ms cycle, 3-cycle
// watchdog, small payloads.
func DefaultCell(name string) CellConfig {
	return CellConfig{
		Name:           name,
		Cycle:          1600 * time.Microsecond,
		WatchdogFactor: 3,
		InputLen:       20,
		OutputLen:      20,
	}
}

// Cell is one instantiated production cell.
type Cell struct {
	Config  CellConfig
	Device  *iodevice.Device
	Primary *plc.Controller
	Standby *plc.Controller
	ARID    uint32
}

// FactoryConfig parameterizes a factory build.
type FactoryConfig struct {
	Seed uint64
	// Cells describes the production cells.
	Cells []CellConfig
	// HostProfile is the vPLC host stack model (zero value: PreemptRT).
	HostProfile host.Profile
	// UseInstaPLC routes every cell through an InstaPLC programmable
	// switch; otherwise a plain learning switch fabric is used.
	UseInstaPLC bool
	// LinkBps is the cell link speed (default 100 Mb/s industrial).
	LinkBps float64
	// InstaWatchdogCycles is InstaPLC's data-plane failover budget.
	InstaWatchdogCycles int
}

// Factory is the assembled plant.
type Factory struct {
	Engine *sim.Engine
	Cells  []*Cell
	// App is the InstaPLC control app (nil without UseInstaPLC).
	App *instaplc.App

	pipeline *dataplane.Pipeline
	fabric   *simnet.Switch
}

// NewFactory wires the factory. Each cell gets a primary vPLC (and a
// standby when configured) plus its device; all attach to one fabric
// element — an InstaPLC pipeline or a plain switch.
func NewFactory(cfg FactoryConfig) *Factory {
	if len(cfg.Cells) == 0 {
		panic("core: factory needs at least one cell")
	}
	if cfg.LinkBps <= 0 {
		cfg.LinkBps = 100e6
	}
	if cfg.HostProfile.Name == "" {
		cfg.HostProfile = host.PreemptRT
	}
	if cfg.InstaWatchdogCycles < 1 {
		cfg.InstaWatchdogCycles = 2
	}
	e := sim.NewEngine(cfg.Seed)
	f := &Factory{Engine: e}

	// Count ports: per cell, device + primary + optional standby.
	ports := 0
	for _, c := range cfg.Cells {
		ports += 2
		if c.Standby {
			ports++
		}
	}
	nextPort := 0
	attach := func(h *simnet.Host) {
		prop := 500 * sim.Nanosecond
		if cfg.UseInstaPLC {
			simnet.Connect(e, h.Name(), h.Port(), f.pipeline.Port(nextPort), cfg.LinkBps, prop)
		} else {
			simnet.Connect(e, h.Name(), h.Port(), f.fabric.Port(nextPort), cfg.LinkBps, prop)
		}
		nextPort++
	}
	if cfg.UseInstaPLC {
		f.pipeline = dataplane.New(e, "fabric", ports, dataplane.DefaultConfig)
		f.App = instaplc.New(e, f.pipeline, instaplc.Config{WatchdogCycles: cfg.InstaWatchdogCycles})
	} else {
		f.fabric = simnet.NewSwitch(e, "fabric", ports, simnet.DefaultSwitchConfig)
	}

	station := uint32(1)
	for i, cc := range cfg.Cells {
		if cc.Cycle <= 0 {
			panic(fmt.Sprintf("core: cell %q has no cycle time", cc.Name))
		}
		cell := &Cell{Config: cc, ARID: uint32(i + 1)}
		devMAC := frame.NewMAC(station)
		station++
		cell.Device = iodevice.New(e, cc.Name+"/io", devMAC, cc.Process, nil)
		attach(cell.Device.Host())

		priMAC := frame.NewMAC(station)
		station++
		stk := host.NewStack(cfg.HostProfile, e.RNG("vplc/"+cc.Name+"/pri"))
		cell.Primary = plc.NewController(e, cc.Name+"/vplc1", priMAC, plc.ControllerConfig{
			Logic: cc.Logic, Stack: stk, Primary: true,
		})
		attach(cell.Primary.Host())

		if cc.Standby {
			secMAC := frame.NewMAC(station)
			station++
			stk2 := host.NewStack(cfg.HostProfile, e.RNG("vplc/"+cc.Name+"/sec"))
			cell.Standby = plc.NewController(e, cc.Name+"/vplc2", secMAC, plc.ControllerConfig{
				Logic: cc.Logic, Stack: stk2,
			})
			attach(cell.Standby.Host())
		}
		f.Cells = append(f.Cells, cell)
	}
	return f
}

// Start connects every cell's controllers to their devices; standbys
// join standbyDelay after the primaries so roles are deterministic.
func (f *Factory) Start(standbyDelay time.Duration) {
	for _, cell := range f.Cells {
		cell := cell
		spec := plc.ConnectSpec{
			Device: cell.Device.Host().MAC(),
			Req: profinet.ConnectRequest{
				ARID:           cell.ARID,
				CycleUS:        uint32(cell.Config.Cycle / time.Microsecond),
				WatchdogFactor: uint16(cell.Config.WatchdogFactor),
				InputLen:       uint16(cell.Config.InputLen),
				OutputLen:      uint16(cell.Config.OutputLen),
			},
		}
		f.Engine.Schedule(f.Engine.Now(), func() { cell.Primary.Connect(spec) })
		if cell.Standby != nil {
			s := spec
			s.Req.ARID += 1000
			f.Engine.After(standbyDelay, func() { cell.Standby.Connect(s) })
		}
	}
}

// RunFor advances the factory by d.
func (f *Factory) RunFor(d time.Duration) { f.Engine.RunFor(d) }

// HealthReport summarizes cell health.
type HealthReport struct {
	Cell           string
	DeviceState    iodevice.State
	FailsafeEvents uint64
	PrimaryTx      uint64
	DeviceTx       uint64
}

// Health returns a report per cell.
func (f *Factory) Health() []HealthReport {
	out := make([]HealthReport, 0, len(f.Cells))
	for _, c := range f.Cells {
		out = append(out, HealthReport{
			Cell:           c.Config.Name,
			DeviceState:    c.Device.State(),
			FailsafeEvents: c.Device.FailsafeEvents,
			PrimaryTx:      c.Primary.TxCyclic,
			DeviceTx:       c.Device.TxCyclic,
		})
	}
	return out
}
