package core

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"steelnet/internal/telemetry"
	"steelnet/internal/topo"
)

func runObservedCampus(t *testing.T, workers int) *CampusHarness {
	t.Helper()
	cfg := testCampusConfig(workers)
	cfg.Profile = true
	cfg.Trace = true
	h, err := NewCampusHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Run()
	return h
}

// TestCampusCrossShardCausalTrace pins the tentpole property: a frame
// that crosses shards keeps one trace id end to end, its merged timeline
// reads causally (host-tx → forwards → cross-shard hop → deliver), the
// id's origin shard matches the recorded crossing, and the traced
// forwarding path agrees with the independent INT path digests.
func TestCampusCrossShardCausalTrace(t *testing.T) {
	h := runObservedCampus(t, 2)
	evs := h.MergedTrace()
	if len(evs) == 0 {
		t.Fatal("empty merged trace")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("merged trace not time-sorted at %d: %d after %d", i, evs[i].T, evs[i-1].T)
		}
	}

	type life struct {
		hostTx   string
		deliver  string
		forwards []string
		crossSrc []int
	}
	lives := map[uint64]*life{}
	var crossings int
	for _, e := range evs {
		if e.Frame == 0 {
			continue
		}
		l := lives[e.Frame]
		if l == nil {
			l = &life{}
			lives[e.Frame] = l
		}
		switch e.Kind {
		case telemetry.KindHostTx:
			l.hostTx = e.Node
		case telemetry.KindForward:
			l.forwards = append(l.forwards, e.Node)
		case telemetry.KindCrossShard:
			crossings++
			l.crossSrc = append(l.crossSrc, int(e.Aux>>32))
		case telemetry.KindDeliver:
			l.deliver = e.Node
		}
	}
	if crossings == 0 {
		t.Fatal("no cross-shard events in a cross-cell campus trace")
	}

	// The id's shard space is the origin shard: the first crossing a
	// frame makes must depart from exactly that shard.
	var crossFrames int
	for id, l := range lives {
		if len(l.crossSrc) == 0 {
			continue
		}
		crossFrames++
		if origin := telemetry.ShardOfFrameID(id); l.crossSrc[0] != origin {
			t.Fatalf("frame %#x: id space says shard %d, first crossing departs shard %d",
				id, origin, l.crossSrc[0])
		}
		if l.hostTx == "" || l.deliver == "" {
			t.Fatalf("cross frame %#x lifecycle incomplete: %+v (stitching lost events)", id, l)
		}
	}
	if crossFrames == 0 {
		t.Fatal("no frame completed a cross-shard lifecycle")
	}

	// Independent validation: every INT path digest (source, sink, hop
	// sequence) must be reproduced by some traced lifecycle.
	paths := map[string]bool{}
	for _, l := range lives {
		if l.hostTx != "" && l.deliver != "" {
			paths[l.hostTx+">"+strings.Join(l.forwards, ",")+">"+l.deliver] = true
		}
	}
	coll := h.MergedCollector()
	if coll == nil {
		t.Fatal("no merged collector")
	}
	digests := coll.Digests()
	if len(digests) == 0 {
		t.Fatal("no INT path digests")
	}
	for _, d := range digests {
		key := d.Source + ">" + strings.Join(d.Hops, ",") + ">" + d.Sink
		if !paths[key] {
			t.Fatalf("INT digest path %q has no matching traced lifecycle (have %d paths)", key, len(paths))
		}
	}
}

// TestCampusMergedTraceWorkerInvariant pins determinism of the stitched
// timeline: any worker count produces the byte-identical merged log.
func TestCampusMergedTraceWorkerInvariant(t *testing.T) {
	ref := runObservedCampus(t, 1).MergedTrace()
	got := runObservedCampus(t, 4).MergedTrace()
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("merged trace diverged across workers: %d vs %d events", len(ref), len(got))
	}
	// Profiling contributes window/barrier lanes to the merged stream.
	var windows, barriers int
	for _, e := range ref {
		switch e.Kind {
		case telemetry.KindShardWindow:
			windows++
		case telemetry.KindBarrier:
			barriers++
		}
	}
	if windows == 0 || barriers == 0 {
		t.Fatalf("merged trace has %d window spans, %d barriers; want both > 0", windows, barriers)
	}
}

// TestCampusObservabilityIsObservational pins the zero-interference
// contract at the harness level: profiling + tracing + metrics change no
// simulation state — the digest matches a bare run exactly.
func TestCampusObservabilityIsObservational(t *testing.T) {
	bare, _ := runCampus(t, 2)
	h := runObservedCampus(t, 2)
	if got, want := h.Digest(), bare.Digest(); got != want {
		t.Fatalf("observed digest %#x != bare %#x", got, want)
	}
	if h.ShardProfile().PerShard == nil {
		t.Fatal("profiled harness has no lanes")
	}
	if bare.ShardProfile().PerShard != nil {
		t.Fatal("bare harness grew lanes")
	}
	if bare.MergedTrace() != nil {
		t.Fatal("bare harness has a merged trace")
	}
}

func TestCampusRegisterMetrics(t *testing.T) {
	cfg := testCampusConfig(1)
	cfg.Profile = true
	cfg.Metrics = telemetry.NewRegistry()
	h, err := NewCampusHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Run()
	var buf bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{
		`campus_cell_tx_frames_total{cell="0"}`,
		`campus_cell_rx_frames_total{cell="2"}`,
		"campus_int_observations_total",
		"campus_slo_breaches_total",
		"campus_crosswire_inflight 0",
		`sim_shard_events_total{shard="0"}`,
		"sim_shard_windows_total",
		"sim_shard_imbalance",
	} {
		if !strings.Contains(out, fam) {
			t.Fatalf("campus exposition missing %q:\n%s", fam, out)
		}
	}
}

func TestRenderShardProfileTable(t *testing.T) {
	h := runObservedCampus(t, 2)
	p := h.ShardProfile()
	out := RenderShardProfile(p)
	if !strings.Contains(out, fmt.Sprintf("shard profile: %d shards", p.Shards)) {
		t.Fatalf("missing title: %q", out)
	}
	for _, col := range []string{"shard", "events", "ev/chunk", "occupancy", "barrier-wait µs", "wait share", "outbox msgs"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %q:\n%s", col, out)
		}
	}
	if rows := strings.Count(out, "\n"); rows < p.Shards+2 {
		t.Fatalf("table too short for %d shards:\n%s", p.Shards, out)
	}
	if strings.Contains(out, "NOTE: window log capped") {
		t.Fatalf("unexpected cap note:\n%s", out)
	}
	// The cap note appears only when windows were dropped from the log.
	p.WindowsDropped = 7
	if out := RenderShardProfile(p); !strings.Contains(out, "7 windows not logged") {
		t.Fatalf("missing cap note:\n%s", out)
	}
}

// TestRenderCampusTable pins the campus table structure (satellite
// coverage: RenderCampus previously had only an is-it-empty check).
func TestRenderCampusTable(t *testing.T) {
	_, res := runCampus(t, 2)
	out := RenderCampus(res)
	want := fmt.Sprintf("campus: %d cells, %d switches, %d hosts on %d shards (lookahead %d ns)",
		res.Cells, res.Switches, res.Hosts, res.Shards, res.LookaheadNS)
	if !strings.Contains(out, want) {
		t.Fatalf("missing title %q:\n%s", want, out)
	}
	for _, col := range []string{"cell", "tx frames", "rx frames", "int obs", "slo breaches"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %q:\n%s", col, out)
		}
	}
	for _, cs := range res.PerCell {
		row := fmt.Sprintf("%d", cs.TxFrames)
		if !strings.Contains(out, row) {
			t.Fatalf("missing cell %d tx count %s:\n%s", cs.Cell, row, out)
		}
	}
	if !strings.Contains(out, fmt.Sprintf("windows=%d skipped=%d cross-shard msgs=%d delivered=%d",
		res.Group.Windows, res.Group.Skipped, res.Group.Messages, res.Accounting.Delivered)) {
		t.Fatalf("missing group footer:\n%s", out)
	}
	if strings.Contains(out, "NOTE: zero-lookahead") {
		t.Fatalf("healthy run rendered the fallback note:\n%s", out)
	}
}

// TestRenderCampusFellBackNote: the serial-fallback path (ErrZeroLookahead
// inside NewCampusHarness) must be visible in the rendered table.
func TestRenderCampusFellBackNote(t *testing.T) {
	cfg := testCampusConfig(2)
	cfg.Topo.Backbone = topo.LinkSpec{RateBps: 100e9, PropNs: 0}
	h, err := NewCampusHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.FellBack {
		t.Fatal("zero-propagation backbone did not fall back")
	}
	h.Run()
	out := RenderCampus(h.Result())
	if !strings.Contains(out, "on 1 shards") {
		t.Fatalf("fallback table does not report 1 shard:\n%s", out)
	}
	if !strings.Contains(out, "NOTE: zero-lookahead partition; fell back to serial single-shard execution") {
		t.Fatalf("missing fallback note:\n%s", out)
	}
}

// TestCampusResumeReenablesObservability: checkpoints never carry the
// observational knobs; RestoreCampusWith's hook re-arms them and the
// replayed run still matches the recorded digest.
func TestCampusResumeReenablesObservability(t *testing.T) {
	straight, _ := runCampus(t, 2)
	want := straight.Digest()

	h, err := NewCampusHarness(testCampusConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	h.AdvanceTo(777_777)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCampusWith(bytes.NewReader(buf.Bytes()), 2, func(c *CampusConfig) {
		c.Profile = true
		c.Trace = true
	})
	if err != nil {
		t.Fatal(err)
	}
	restored.Run()
	if got := restored.Digest(); got != want {
		t.Fatalf("observed resume digest %#x != straight %#x", got, want)
	}
	if restored.ShardProfile().PerShard == nil {
		t.Fatal("resume did not re-enable profiling")
	}
	if len(restored.MergedTrace()) == 0 {
		t.Fatal("resume did not re-enable tracing")
	}
	// The trace only covers post-restore simulated time: replay runs
	// before the hook's knobs attach tracers... no — tracers attach at
	// build time, so the replay itself is traced from t=0.
	var sawEarly bool
	for _, e := range restored.MergedTrace() {
		if e.T < 777_777 {
			sawEarly = true
			break
		}
	}
	if !sawEarly {
		t.Fatal("replayed span missing from the resumed trace")
	}
}

// TestCampusSingleShardProfile: the profiler must also work on the
// serial-fallback group (single-shard windows span whole Run calls).
func TestCampusSingleShardProfile(t *testing.T) {
	cfg := testCampusConfig(1)
	cfg.Topo.Backbone = topo.LinkSpec{RateBps: 100e9, PropNs: 0}
	cfg.Profile = true
	h, err := NewCampusHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Run()
	p := h.ShardProfile()
	if p.Shards != 1 || len(p.PerShard) != 1 {
		t.Fatalf("fallback profile shape: %+v", p)
	}
	if p.PerShard[0].Events == 0 {
		t.Fatal("fallback profile recorded no events")
	}
	if out := RenderShardProfile(p); !strings.Contains(out, "1 shards") {
		t.Fatalf("fallback profile table: %q", out)
	}
}
