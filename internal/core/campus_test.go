package core

import (
	"bytes"
	"testing"

	"steelnet/internal/sim"
	"steelnet/internal/topo"
)

// testCampusConfig is a small-but-real campus: 3 cells of 3 switches
// (fanout 2, so the tree has depth) with 2 hosts per switch, 2 spines.
// Cross-cell latency crosses the 15 µs SLO bound (≈5 switch hops plus
// two 5 µs backbone legs); intra-cell traffic stays well under it.
func testCampusConfig(workers int) CampusConfig {
	return CampusConfig{
		Seed: 11,
		Topo: topo.CampusConfig{
			Cells: 3, SwitchesPerCell: 3, HostsPerSwitch: 2,
			Spines: 2, Fanout: 2,
		},
		Horizon: 2 * sim.Millisecond,
		Period:  50 * sim.Microsecond,
		INT:     true,
		SLO:     "latency:*<15µs",
		Workers: workers,
	}
}

func runCampus(t *testing.T, workers int) (*CampusHarness, CampusResult) {
	t.Helper()
	h, err := NewCampusHarness(testCampusConfig(workers))
	if err != nil {
		t.Fatal(err)
	}
	h.Run()
	return h, h.Result()
}

func TestCampusDeterministicAcrossWorkers(t *testing.T) {
	ref, refRes := runCampus(t, 1)
	refDigest := ref.Digest()
	if refRes.FellBack {
		t.Fatal("default campus fell back to serial; backbone lookahead lost")
	}
	if refRes.Shards != 4 {
		t.Fatalf("shards = %d, want spine + 3 cells = 4", refRes.Shards)
	}
	if refRes.INTObservations == 0 {
		t.Fatal("no INT observations; cross-cell sources are not stamping")
	}
	if refRes.Breaches == 0 {
		t.Fatal("no SLO breaches; cross-cell latency never crossed the bound")
	}
	if refRes.Accounting.CrossWire != 0 {
		t.Fatalf("drained run left %d frames on the cross-shard wire", refRes.Accounting.CrossWire)
	}
	if err := refRes.Accounting.Check(); err != nil {
		t.Fatal(err)
	}
	for _, cs := range refRes.PerCell {
		if cs.TxFrames == 0 || cs.RxFrames == 0 {
			t.Fatalf("cell %d saw no traffic: %+v", cs.Cell, cs)
		}
	}
	for _, workers := range []int{2, 4, 8} {
		h, res := runCampus(t, workers)
		if got := h.Digest(); got != refDigest {
			t.Fatalf("workers=%d digest %#x != serial %#x", workers, got, refDigest)
		}
		if res.Breaches != refRes.Breaches || res.INTObservations != refRes.INTObservations {
			t.Fatalf("workers=%d telemetry (%d obs, %d breaches) != serial (%d, %d)",
				workers, res.INTObservations, res.Breaches,
				refRes.INTObservations, refRes.Breaches)
		}
	}
	// The merged views must also be worker-independent; render them once
	// so table assembly is covered.
	if RenderCampus(refRes) == "" {
		t.Fatal("empty render")
	}
}

// TestCampusPoolsDrain pins the cross-shard frame-pool contract: frames
// are drawn from the sending shard's pool and released to the receiving
// shard's, so individual pools go negative/positive but the sum of
// Outstanding drains to zero.
func TestCampusPoolsDrain(t *testing.T) {
	h, _ := runCampus(t, 2)
	var sum int64
	for _, p := range h.pools {
		sum += p.Outstanding()
	}
	if sum != 0 {
		t.Fatalf("pooled frames leaked across shards: outstanding sum = %d", sum)
	}
}

// TestCampusConservationAtCuts checks the accounting identity at
// deadlines that slice shard windows mid-way, while traffic is on the
// cross-shard wire.
func TestCampusConservationAtCuts(t *testing.T) {
	h, err := NewCampusHarness(testCampusConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	sawCrossWire := false
	horizon := sim.Time(0).Add(h.Config().Horizon)
	for at := sim.Time(77_777); at < horizon; at += 77_777 {
		h.AdvanceTo(at)
		a := h.Network().Account()
		if err := a.Check(); err != nil {
			t.Fatalf("cut %v: %v", at, err)
		}
		if a.CrossWire > 0 {
			sawCrossWire = true
		}
	}
	if !sawCrossWire {
		t.Fatal("no cut ever caught a frame on the cross-shard wire")
	}
}

// TestCampusCheckpointResume pins checkpoint/resume equality under
// sharding: a run checkpointed mid-window and resumed with a different
// worker count ends byte-identical to the straight run.
func TestCampusCheckpointResume(t *testing.T) {
	straight, _ := runCampus(t, 2)
	want := straight.Digest()

	h, err := NewCampusHarness(testCampusConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// 777_777 is no multiple of anything in the scenario: it lands
	// mid-window, with messages held in outboxes.
	h.AdvanceTo(777_777)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreCampus(bytes.NewReader(buf.Bytes()), 4)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Now() != 777_777 {
		t.Fatalf("restored clock %v, want 777777", restored.Now())
	}
	restored.Run()
	if got := restored.Digest(); got != want {
		t.Fatalf("resumed digest %#x != straight run %#x", got, want)
	}
	res := restored.Result()
	if res.Breaches == 0 || res.INTObservations == 0 {
		t.Fatalf("resumed run lost telemetry: %+v", res)
	}
}

// TestCampusSerialFallback: a zero-propagation backbone cannot be
// sharded conservatively; the harness must degrade to one shard and say
// so, not fail.
func TestCampusSerialFallback(t *testing.T) {
	cfg := testCampusConfig(4)
	cfg.Topo.Backbone = topo.LinkSpec{RateBps: 100e9, PropNs: 0}
	h, err := NewCampusHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !h.FellBack {
		t.Fatal("zero-lookahead campus did not fall back")
	}
	if h.Network().Group.Shards() != 1 {
		t.Fatalf("fallback built %d shards", h.Network().Group.Shards())
	}
	h.Run()
	res := h.Result()
	if !res.FellBack || res.Shards != 1 {
		t.Fatalf("result does not report the fallback: %+v", res)
	}
	if res.Accounting.CrossWire != 0 {
		t.Fatalf("serial build has cross-wire frames: %d", res.Accounting.CrossWire)
	}
	if err := res.Accounting.Check(); err != nil {
		t.Fatal(err)
	}
}
