package core

import (
	"fmt"
	"testing"
	"time"

	"steelnet/internal/iodevice"
)

// TestSixteenCellFactoryWithInstaPLC is the scale check §2.1 says
// existing evaluations omit ("how performance changes when multiple
// robot applications, vPLCs, or other sources of network traffic are
// running simultaneously"): 16 HA cells on one InstaPLC fabric, three
// primaries killed at different times, everything else unaffected.
func TestSixteenCellFactoryWithInstaPLC(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	cells := make([]CellConfig, 16)
	for i := range cells {
		c := DefaultCell(fmt.Sprintf("cell%02d", i))
		c.Standby = true
		cells[i] = c
	}
	f := NewFactory(FactoryConfig{Seed: 11, Cells: cells, UseInstaPLC: true})
	f.Start(100 * time.Millisecond)
	f.RunFor(500 * time.Millisecond)

	// Kill three primaries at staggered times.
	for i, victim := range []int{2, 7, 13} {
		v := victim
		f.Engine.After(time.Duration(i)*50*time.Millisecond, func() { f.Cells[v].Primary.Fail() })
	}
	f.RunFor(time.Second)

	if f.App.Switchovers != 3 {
		t.Fatalf("switchovers = %d, want 3", f.App.Switchovers)
	}
	for _, h := range f.Health() {
		if h.DeviceState != iodevice.StateOperate {
			t.Fatalf("cell %s state = %v", h.Cell, h.DeviceState)
		}
		if h.FailsafeEvents != 0 {
			t.Fatalf("cell %s failsafes = %d", h.Cell, h.FailsafeEvents)
		}
	}
	// Every device kept exchanging cyclic data throughout.
	for _, c := range f.Cells {
		if c.Device.RxCyclic < 800 {
			t.Fatalf("cell %s device rx = %d", c.Config.Name, c.Device.RxCyclic)
		}
	}
}

// TestFactoryFaultContainmentAtScale: without redundancy, killing one
// primary of a 16-cell plain-switch factory must leave 15 cells
// untouched — the fault-containment property §2.2 credits classical
// distributed OT with, preserved on the converged fabric.
func TestFactoryFaultContainmentAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	cells := make([]CellConfig, 16)
	for i := range cells {
		cells[i] = DefaultCell(fmt.Sprintf("cell%02d", i))
	}
	f := NewFactory(FactoryConfig{Seed: 12, Cells: cells})
	f.Start(0)
	f.RunFor(300 * time.Millisecond)
	f.Cells[5].Primary.Fail()
	f.RunFor(300 * time.Millisecond)
	for i, h := range f.Health() {
		if i == 5 {
			if h.DeviceState != iodevice.StateFailsafe {
				t.Fatalf("victim cell state = %v", h.DeviceState)
			}
			continue
		}
		if h.DeviceState != iodevice.StateOperate || h.FailsafeEvents != 0 {
			t.Fatalf("bystander cell %s hurt: %+v", h.Cell, h)
		}
	}
}
