package core

import (
	"time"

	"steelnet/internal/metrics"
	"steelnet/internal/sim"
)

// HAStrategy selects the §2.2 availability design under comparison.
type HAStrategy int

// Strategies.
const (
	// NoRedundancy: a single vPLC; every failure costs a full restart
	// and reconnection.
	NoRedundancy HAStrategy = iota
	// HardwarePair: the classic redundant pair with dedicated sync
	// links (50-300 ms switchover [98]).
	HardwarePair
	// InstaPLCPair: data-plane failover within the I/O watchdog budget.
	InstaPLCPair
)

// String names the strategy.
func (s HAStrategy) String() string {
	switch s {
	case NoRedundancy:
		return "no-redundancy"
	case HardwarePair:
		return "hardware-pair"
	case InstaPLCPair:
		return "instaplc"
	}
	return "unknown"
}

// HAStrategies lists all strategies in comparison order.
var HAStrategies = []HAStrategy{NoRedundancy, HardwarePair, InstaPLCPair}

// AvailabilityConfig parameterizes the year-long simulation.
type AvailabilityConfig struct {
	Seed uint64
	// Span is the simulated calendar time (default one year).
	Span time.Duration
	// MTBF is the mean time between vPLC/host failures (exponential).
	// Cloud-hosted vPLCs fail more often than hardened hardware: VM
	// migrations, host reboots, fabric incidents (§2.2, [46,66,72]).
	MTBF time.Duration
	// RestartTime is how long a failed vPLC takes to come back and be
	// eligible as a standby again.
	RestartTime time.Duration
	// HardwareSwitchover is the hardware pair's takeover time.
	HardwareSwitchover time.Duration
	// InstaPLCSwitchover is the data-plane takeover time.
	InstaPLCSwitchover time.Duration
}

// DefaultAvailabilityConfig matches the paper's framing: failures every
// ~10 days per instance, 2-minute restarts, 180 ms hardware takeover,
// 3.2 ms InstaPLC takeover (2 cycles at 1.6 ms).
func DefaultAvailabilityConfig() AvailabilityConfig {
	return AvailabilityConfig{
		Seed:               1,
		Span:               365 * 24 * time.Hour,
		MTBF:               10 * 24 * time.Hour,
		RestartTime:        2 * time.Minute,
		HardwareSwitchover: 180 * time.Millisecond,
		InstaPLCSwitchover: 3200 * time.Microsecond,
	}
}

// AvailabilityResult is one strategy's simulated year.
type AvailabilityResult struct {
	Strategy HAStrategy
	Report   metrics.AvailabilityReport
	Failures int
	// DoubleFailures counts failures that struck while the standby was
	// still restarting — the case redundancy cannot hide.
	DoubleFailures int
}

// RunAvailability simulates a year of failures for one strategy. The
// service is "down" whenever the I/O device is without fresh control
// data: for NoRedundancy that is the whole restart; for the pairs it is
// the switchover gap, plus the full restart when the second instance
// fails before the first is back.
func RunAvailability(cfg AvailabilityConfig, strategy HAStrategy) AvailabilityResult {
	if cfg.Span <= 0 {
		cfg.Span = DefaultAvailabilityConfig().Span
	}
	e := sim.NewEngine(cfg.Seed ^ uint64(strategy+1)<<32)
	rng := e.RNG("failures")
	tracker := metrics.NewAvailabilityTracker(0)
	res := AvailabilityResult{Strategy: strategy}

	instances := 1
	if strategy != NoRedundancy {
		instances = 2
	}
	healthy := instances

	gap := func() time.Duration {
		switch strategy {
		case HardwarePair:
			return cfg.HardwareSwitchover
		case InstaPLCPair:
			return cfg.InstaPLCSwitchover
		default:
			return cfg.RestartTime
		}
	}

	var scheduleFailure func()
	scheduleFailure = func() {
		hazard := healthy
		if hazard < 1 {
			hazard = 1 // instances mid-restart cannot fail again
		}
		draw := rng.Exp(float64(cfg.MTBF) / float64(hazard))
		if draw > float64(cfg.Span) {
			draw = float64(cfg.Span) // clamp: beyond the horizon is beyond
		}
		d := time.Duration(draw)
		e.After(d, func() {
			if e.Now() > sim.Time(cfg.Span) {
				return
			}
			res.Failures++
			healthy--
			now := int64(e.Now())
			if healthy >= 1 {
				// A standby takes over after the switchover gap.
				tracker.Observe(now, false)
				tracker.Observe(now+int64(gap()), true)
			} else {
				// Nothing left: down until a restart completes.
				res.DoubleFailures++
				tracker.Observe(now, false)
				tracker.Observe(now+int64(cfg.RestartTime), true)
			}
			// The failed instance restarts and rejoins.
			e.After(cfg.RestartTime, func() {
				if healthy < instances {
					healthy++
				}
			})
			scheduleFailure()
		})
	}
	scheduleFailure()
	e.RunUntil(sim.Time(cfg.Span))
	res.Report = tracker.Close(int64(cfg.Span))
	return res
}

// RunAvailabilityComparison runs all strategies under one config.
func RunAvailabilityComparison(cfg AvailabilityConfig) []AvailabilityResult {
	out := make([]AvailabilityResult, 0, len(HAStrategies))
	for _, s := range HAStrategies {
		out = append(out, RunAvailability(cfg, s))
	}
	return out
}

// RenderAvailability renders the comparison as a table.
func RenderAvailability(results []AvailabilityResult) string {
	t := metrics.NewTable("Section 2.2: service availability over one simulated year",
		"strategy", "availability", "nines", "downtime/yr", "failures", "meets 99.9999%")
	for _, r := range results {
		t.AddRow(
			r.Strategy.String(),
			formatPct(r.Report.Availability),
			formatNines(r.Report.Nines()),
			r.Report.DowntimePerYear().Round(time.Millisecond).String(),
			formatInt(r.Failures),
			formatBool(r.Report.MeetsSixNines()),
		)
	}
	return t.String()
}
