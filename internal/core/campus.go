package core

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"steelnet/internal/checkpoint"
	"steelnet/internal/frame"
	intnet "steelnet/internal/int"
	"steelnet/internal/metrics"
	"steelnet/internal/sim"
	"steelnet/internal/simnet"
	"steelnet/internal/telemetry"
	"steelnet/internal/topo"
)

// CampusCheckpointKind tags campus-experiment checkpoint files.
const CampusCheckpointKind = "campus"

// CampusConfig parameterizes the campus-scale sharded experiment: a
// spine-plus-cells plant network (topo.Campus) partitioned one shard
// per cell, with periodic intra-cell and cross-cell host traffic, and
// optional in-band telemetry plus an SLO watchdog per shard.
//
// Everything except Workers is part of the scenario and is encoded into
// checkpoints. Workers is an execution knob — how many goroutines
// advance the shard group's windows — and never changes an output byte,
// so it is excluded from the encoding and supplied fresh at restore.
type CampusConfig struct {
	Seed uint64
	// Topo sizes the campus (zero values select topo.Campus defaults).
	Topo topo.CampusConfig
	// Horizon is the experiment length (default 5 ms).
	Horizon sim.Duration
	// Period is each host's send period (default 100 µs). Senders stop
	// ten periods before the horizon so in-flight traffic drains.
	Period sim.Duration
	// CrossEvery makes every Nth host (in global host order) send to the
	// next cell instead of its in-cell neighbor (default 4; cross-cell
	// traffic is what exercises the backbone and the shard barriers).
	CrossEvery int
	// FrameBytes is the payload size (default 128).
	FrameBytes int
	// QueueDepth overrides the per-class switch queue depth (0 keeps the
	// equipment default).
	QueueDepth int
	// INT attaches telemetry stacks to cross-cell traffic and collects
	// them per shard.
	INT bool
	// SLO is an intnet objective plan evaluated per shard (requires INT;
	// "" disables the watchdogs).
	SLO string
	// Workers is the goroutine count for window execution (default 1).
	// Not part of the scenario; excluded from checkpoints.
	Workers int

	// Profile arms the shard group's coordinator profiler (barrier
	// waits, window occupancy, outbox volume — see sim.ShardProfile).
	// Observational: like Workers it never changes an output byte, so
	// it is excluded from checkpoints and may differ across a
	// save/resume boundary.
	Profile bool
	// Trace attaches one frame-lifecycle tracer per shard, each in its
	// own disjoint id space, so MergedTrace can stitch cross-shard
	// frame timelines. Observational; excluded from checkpoints.
	Trace bool
	// Metrics, when non-nil, receives the group's and the campus's
	// metric families at build time. Observational; excluded from
	// checkpoints.
	Metrics *telemetry.Registry
}

func normalizeCampusConfig(cfg CampusConfig) CampusConfig {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 5 * sim.Millisecond
	}
	if cfg.Period <= 0 {
		cfg.Period = 100 * sim.Microsecond
	}
	if cfg.CrossEvery <= 0 {
		cfg.CrossEvery = 4
	}
	if cfg.FrameBytes <= 0 {
		cfg.FrameBytes = 128
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return cfg
}

// CampusHarness is a running campus experiment: the generated topology
// instantiated across a shard group, traffic sources armed, and
// per-shard telemetry attached. Per-shard frame pools, INT collectors
// and SLO watchdogs keep every mutable structure single-writer during a
// window; merged views (MergedCollector, Result) combine them in fixed
// shard order, so they are deterministic for any worker count.
type CampusHarness struct {
	cfg CampusConfig
	ct  *topo.CampusTopo
	net *simnet.ShardedNetwork

	pools    []*frame.Pool
	intPools []*frame.INTPool
	colls    []*intnet.Collector
	dogs     []*intnet.Watchdog
	tracers  []*telemetry.Tracer
	plan     intnet.SLOPlan

	// FellBack reports that the requested partition was unusable (a
	// zero-propagation backbone makes conservative sync unsound) and the
	// harness degraded to one shard, serial.
	FellBack bool
}

// NewCampusHarness builds and arms the experiment. A campus whose
// backbone has zero propagation delay cannot be sharded conservatively
// (sim.ErrZeroLookahead); the harness then falls back to a single-shard
// serial build of the same topology and sets FellBack.
func NewCampusHarness(cfg CampusConfig) (*CampusHarness, error) {
	cfg = normalizeCampusConfig(cfg)
	plan, err := intnet.ParseSLOPlan(cfg.SLO)
	if err != nil {
		return nil, err
	}
	if len(plan) > 0 && !cfg.INT {
		return nil, fmt.Errorf("core: campus SLO plan %q needs INT enabled", cfg.SLO)
	}
	ct := topo.Campus(cfg.Topo)
	cfg.Topo = ct.Cfg // generator defaults become part of the scenario
	part := ct.Partition()
	fellBack := false
	net, err := simnet.NewSharded(cfg.Seed, ct.Graph, part, simnet.DefaultSwitchConfig)
	if errors.Is(err, sim.ErrZeroLookahead) {
		fellBack = true
		part = topo.Partition{Shards: 1, Of: make([]int, ct.Graph.NumNodes())}
		net, err = simnet.NewSharded(cfg.Seed, ct.Graph, part, simnet.DefaultSwitchConfig)
	}
	if err != nil {
		return nil, err
	}
	h := &CampusHarness{cfg: cfg, ct: ct, net: net, plan: plan, FellBack: fellBack}
	if cfg.QueueDepth > 0 {
		net.SetSwitchQueueDepth(cfg.QueueDepth)
	}
	shards := net.Group.Shards()
	h.pools = make([]*frame.Pool, shards)
	h.intPools = make([]*frame.INTPool, shards)
	h.colls = make([]*intnet.Collector, shards)
	h.dogs = make([]*intnet.Watchdog, shards)
	for s := 0; s < shards; s++ {
		h.pools[s] = &frame.Pool{}
		if cfg.INT {
			h.intPools[s] = &frame.INTPool{}
			h.colls[s] = intnet.NewCollector()
			if len(plan) > 0 {
				h.dogs[s] = intnet.NewWatchdog(plan, 0, nil)
				h.dogs[s].Attach(h.colls[s])
			}
		}
	}
	if cfg.Profile {
		net.Group.EnableProfiling()
	}
	if cfg.Trace {
		h.tracers = make([]*telemetry.Tracer, shards)
		for s := 0; s < shards; s++ {
			tr := telemetry.NewTracer(nil)
			tr.SetIDSpace(s)
			net.SetShardTracer(s, tr)
			h.tracers[s] = tr
		}
	}
	h.installRoutes()
	h.armTraffic()
	h.registerMetrics(cfg.Metrics)
	return h, nil
}

// edgeBetween maps an unordered node pair to its edge. Campus graphs
// are simple (at most one edge per pair), so the lookup is unambiguous.
func campusEdges(g *topo.Graph) map[[2]topo.NodeID]topo.EdgeID {
	m := make(map[[2]topo.NodeID]topo.EdgeID, g.NumEdges())
	for _, e := range g.Edges() {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		m[[2]topo.NodeID{a, b}] = e.ID
	}
	return m
}

// installRoutes programs every FIB constructively — no shortest-path
// solve, just the campus's known structure:
//
//   - each switch gets static entries for hosts in its own subtree
//     (installed by walking each host's ancestor chain),
//   - non-gateway switches default to their parent port, gateways
//     default to one spine, so unknown MACs always climb out,
//   - spines hold full per-cell host tables pointing at the gateways.
//
// The cost is O(hosts · tree depth + spines · hosts) entries, which
// keeps a 10k-switch campus buildable in well under a second.
func (h *CampusHarness) installRoutes() {
	cfg := h.cfg.Topo
	edges := campusEdges(h.ct.Graph)
	edgeBetween := func(a, b topo.NodeID) topo.EdgeID {
		if a > b {
			a, b = b, a
		}
		eid, ok := edges[[2]topo.NodeID{a, b}]
		if !ok {
			panic(fmt.Sprintf("core: campus has no edge %d--%d", a, b))
		}
		return eid
	}
	portToward := func(at, next topo.NodeID) int {
		return h.net.PortIndex(at, edgeBetween(at, next))
	}
	for c := range h.ct.CellSwitches {
		sw := h.ct.CellSwitches[c]
		// Defaults up the tree, gateway out to its home spine.
		for i := 1; i < len(sw); i++ {
			parent := sw[(i-1)/cfg.Fanout]
			h.net.Switch(sw[i]).SetDefaultPort(portToward(sw[i], parent))
		}
		spine := h.ct.Spines[c%len(h.ct.Spines)]
		h.net.Switch(sw[0]).SetDefaultPort(portToward(sw[0], spine))
		// Host entries down the tree: every ancestor of host j's switch
		// learns the port toward j.
		for j, id := range h.ct.CellHosts[c] {
			mac := h.net.Host(id).MAC()
			i := j / cfg.HostsPerSwitch
			h.net.Switch(sw[i]).AddStatic(mac, portToward(sw[i], id))
			for i != 0 {
				parent := (i - 1) / cfg.Fanout
				h.net.Switch(sw[parent]).AddStatic(mac, portToward(sw[parent], sw[i]))
				i = parent
			}
		}
		// Spines: full host tables for this cell, out the gateway port.
		for _, sp := range h.ct.Spines {
			port := portToward(sp, sw[0])
			for _, id := range h.ct.CellHosts[c] {
				h.net.Switch(sp).AddStatic(h.net.Host(id).MAC(), port)
			}
		}
	}
}

// armTraffic wires pools, telemetry roles, drop reclaim and the
// periodic senders. Sends stop ten periods before the horizon so the
// final state is fully drained (pools balance, CrossWire reaches zero).
func (h *CampusHarness) armTraffic() {
	cfg := h.cfg
	part := h.net.Part
	for s, ps := range h.portsByShard() {
		pool := h.pools[s]
		for _, p := range ps {
			p.OnDrop = pool.Put
		}
	}
	stopAt := cfg.Horizon - 10*cfg.Period
	if stopAt <= 0 {
		stopAt = cfg.Horizon / 2
	}
	hostsPerCell := len(h.ct.CellHosts[0])
	totalHosts := hostsPerCell * len(h.ct.CellHosts)
	gi := 0
	for c := range h.ct.CellHosts {
		for k, id := range h.ct.CellHosts[c] {
			shard := part.Of[id]
			src := h.net.Host(id)
			src.OnReceive(h.pools[shard].Put)
			if cfg.INT {
				src.SetINTSink(h.colls[shard])
				src.SetINTPool(h.intPools[shard])
			}
			cross := cfg.CrossEvery > 0 && gi%cfg.CrossEvery == 0 && len(h.ct.CellHosts) > 1
			var dstID topo.NodeID
			if cross {
				dstID = h.ct.CellHosts[(c+1)%len(h.ct.CellHosts)][k]
				if cfg.INT {
					src.SetINTSource(uint32(gi), 8, false)
				}
			} else {
				dstID = h.ct.CellHosts[c][(k+1)%hostsPerCell]
			}
			if dstID == id {
				gi++
				continue // single-host campus: nothing to talk to
			}
			dst := h.net.Host(dstID).MAC()
			pool := h.pools[shard]
			eng := src.Engine()
			start := sim.Duration(1) + sim.Duration(gi)*cfg.Period/sim.Duration(totalHosts+1)
			eng.Every(sim.Time(0).Add(start), cfg.Period, func() {
				if eng.Now() > sim.Time(0).Add(stopAt) {
					return
				}
				f := pool.Get(cfg.FrameBytes)
				f.Dst = dst
				if !src.Send(f) {
					pool.Put(f)
				}
			})
			gi++
		}
	}
}

// portsByShard groups every port of the network by its owner's shard.
func (h *CampusHarness) portsByShard() map[int][]*simnet.Port {
	byShard := make(map[int][]*simnet.Port, h.net.Group.Shards())
	nameToShard := make(map[string]int, h.ct.Graph.NumNodes())
	for _, n := range h.ct.Graph.Nodes() {
		nameToShard[n.Name] = h.net.Part.Of[n.ID]
	}
	for _, p := range h.net.Ports() {
		s := nameToShard[p.Owner.Name()]
		byShard[s] = append(byShard[s], p)
	}
	return byShard
}

// Topo exposes the generated campus topology.
func (h *CampusHarness) Topo() *topo.CampusTopo { return h.ct }

// Network exposes the sharded network.
func (h *CampusHarness) Network() *simnet.ShardedNetwork { return h.net }

// Config returns the normalized configuration.
func (h *CampusHarness) Config() CampusConfig { return h.cfg }

// Now returns the group's barrier floor.
func (h *CampusHarness) Now() sim.Time { return h.net.Group.Now() }

// Horizon returns the configured end instant.
func (h *CampusHarness) Horizon() sim.Time { return sim.Time(0).Add(h.cfg.Horizon) }

// AdvanceTo runs the experiment to t using the configured worker count.
// Advancing in several steps is byte-identical to one straight run: the
// shard group's window grid is anchored to event content, never to the
// caller's deadlines.
func (h *CampusHarness) AdvanceTo(t sim.Time) {
	h.net.Group.Run(t, h.cfg.Workers)
}

// Run advances to the configured horizon.
func (h *CampusHarness) Run() { h.AdvanceTo(sim.Time(0).Add(h.cfg.Horizon)) }

// MergedCollector combines the per-shard INT collectors in fixed shard
// order (nil without INT). The merge is non-destructive and
// deterministic for any worker count.
func (h *CampusHarness) MergedCollector() *intnet.Collector {
	if !h.cfg.INT {
		return nil
	}
	m := intnet.NewCollector()
	for _, c := range h.colls {
		m.Absorb(c)
	}
	return m
}

// MergedWatchdog combines the per-shard SLO watchdogs in fixed shard
// order (nil without a plan). Sinks are per-shard, so the states are
// disjoint by construction.
func (h *CampusHarness) MergedWatchdog() *intnet.Watchdog {
	if len(h.plan) == 0 || !h.cfg.INT {
		return nil
	}
	m := intnet.NewWatchdog(h.plan, 0, nil)
	for _, w := range h.dogs {
		if w != nil {
			m.Absorb(w)
		}
	}
	return m
}

// registerMetrics exposes the group's coordinator/lane families plus
// campus-level traffic and telemetry totals on r. Func-backed: reads
// happen at snapshot time, which must be a simulation safe point (the
// same discipline as every merged view).
func (h *CampusHarness) registerMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	telemetry.RegisterShardGroupMetrics(r, h.net.Group)
	for c := range h.ct.CellHosts {
		lbl := telemetry.L("cell", strconv.Itoa(c))
		hosts := h.ct.CellHosts[c]
		r.Counter("campus_cell_tx_frames_total", lbl, "frames sent by the cell's hosts", func() uint64 {
			var n uint64
			for _, id := range hosts {
				n += h.net.Host(id).Port().TxFrames
			}
			return n
		})
		r.Counter("campus_cell_rx_frames_total", lbl, "frames received by the cell's hosts", func() uint64 {
			var n uint64
			for _, id := range hosts {
				n += h.net.Host(id).Port().RxFrames
			}
			return n
		})
	}
	r.Counter("campus_int_observations_total", nil, "INT observations folded by the per-shard collectors", func() uint64 {
		var n uint64
		for _, coll := range h.colls {
			if coll != nil {
				n += coll.Observations
			}
		}
		return n
	})
	r.Counter("campus_slo_breaches_total", nil, "SLO breaches recorded by the per-shard watchdogs", func() uint64 {
		var n uint64
		for _, dog := range h.dogs {
			if dog != nil {
				n += uint64(len(dog.Breaches()))
			}
		}
		return n
	})
	r.Gauge("campus_crosswire_inflight", nil, "frames in flight across shard boundaries", func() float64 {
		return float64(h.net.Account().CrossWire)
	})
}

// ShardProfile returns the group's execution profile snapshot (lanes
// populated only when CampusConfig.Profile was set).
func (h *CampusHarness) ShardProfile() sim.ShardProfile { return h.net.Group.Profile() }

// Tracers returns the per-shard tracers (nil without Trace).
func (h *CampusHarness) Tracers() []*telemetry.Tracer { return h.tracers }

// MergedTrace stitches the per-shard frame timelines — and, when
// profiling, the window/barrier spans — into one causal event stream
// ordered by (T, shard). Frame ids are preserved (disjoint per-shard id
// spaces), so a cross-cell frame's HostTx, forwards, cross-shard hop and
// delivery form one lifecycle under one id. Deterministic for any
// worker count; nil without Trace.
func (h *CampusHarness) MergedTrace() []telemetry.Event {
	if h.tracers == nil {
		return nil
	}
	streams := make([][]telemetry.Event, 0, len(h.tracers)+1)
	for _, tr := range h.tracers {
		streams = append(streams, tr.Events())
	}
	if h.net.Group.ProfilingEnabled() {
		streams = append(streams, telemetry.ShardWindowEvents(h.net.Group.WindowLog()))
	}
	return telemetry.MergeShardEvents(streams...)
}

// RenderShardProfile renders the profile as the per-shard table the
// campus CLI prints with -stats. Wall-clock columns (busy, barrier-wait)
// are diagnostics and vary run to run; everything else is deterministic.
func RenderShardProfile(p sim.ShardProfile) string {
	t := metrics.NewTable(
		fmt.Sprintf("shard profile: %d shards, %d windows (%d skipped), %d msgs, merge high-water %d, imbalance %.2f",
			p.Shards, p.Windows, p.Skipped, p.Messages, p.MergeHighWater, p.Imbalance),
		"shard", "events", "ev/chunk", "occupancy", "busy µs", "barrier-wait µs", "wait share", "outbox msgs")
	for _, ln := range p.PerShard {
		var evPerChunk, occ float64
		if ln.ActiveChunks > 0 {
			evPerChunk = float64(ln.Events) / float64(ln.ActiveChunks)
			if p.LookaheadNS > 0 {
				occ = float64(ln.OccupiedNS) / (float64(ln.ActiveChunks) * float64(p.LookaheadNS))
			}
		}
		var waitShare float64
		if tot := ln.BusyNS + ln.BarrierWaitNS; tot > 0 {
			waitShare = float64(ln.BarrierWaitNS) / float64(tot)
		}
		t.AddRowf("%d\t%d\t%.1f\t%.0f%%\t%.0f\t%.0f\t%.0f%%\t%d",
			ln.Shard, ln.Events, evPerChunk, occ*100,
			float64(ln.BusyNS)/1e3, float64(ln.BarrierWaitNS)/1e3, waitShare*100,
			ln.OutboxMsgs)
	}
	s := t.String()
	if p.WindowsDropped > 0 {
		s += fmt.Sprintf("NOTE: window log capped; %d windows not logged (lanes above remain exact)\n", p.WindowsDropped)
	}
	return s
}

// CampusCellStats is one cell's traffic summary.
type CampusCellStats struct {
	Cell            int
	TxFrames        uint64
	RxFrames        uint64
	INTObservations uint64
	Breaches        int
}

// CampusResult summarizes a campus run.
type CampusResult struct {
	Cells       int
	Switches    int
	Hosts       int
	Shards      int
	FellBack    bool
	LookaheadNS int64
	Group       sim.ShardGroupStats
	PerCell     []CampusCellStats
	Accounting  simnet.Accounting
	// INTObservations and Breaches are whole-campus totals.
	INTObservations uint64
	Breaches        int
}

// Result summarizes the run so far. It is non-destructive: per-cell
// rows come from host port counters and the per-shard telemetry, merged
// in fixed shard order.
func (h *CampusHarness) Result() CampusResult {
	cfg := h.cfg.Topo
	res := CampusResult{
		Cells:       cfg.Cells,
		Switches:    cfg.Cells*cfg.SwitchesPerCell + cfg.Spines,
		Hosts:       cfg.Cells * cfg.SwitchesPerCell * cfg.HostsPerSwitch,
		Shards:      h.net.Group.Shards(),
		FellBack:    h.FellBack,
		LookaheadNS: int64(h.net.Group.Lookahead()),
		Group:       h.net.Group.Stats(),
		Accounting:  h.net.Account(),
	}
	for c := range h.ct.CellHosts {
		cs := CampusCellStats{Cell: c}
		for _, id := range h.ct.CellHosts[c] {
			p := h.net.Host(id).Port()
			cs.TxFrames += p.TxFrames
			cs.RxFrames += p.RxFrames
		}
		if !h.FellBack {
			if coll := h.colls[c+1]; coll != nil {
				cs.INTObservations = coll.Observations
			}
			if dog := h.dogs[c+1]; dog != nil {
				cs.Breaches = len(dog.Breaches())
			}
		}
		res.PerCell = append(res.PerCell, cs)
	}
	for _, coll := range h.colls {
		if coll != nil {
			res.INTObservations += coll.Observations
		}
	}
	for _, dog := range h.dogs {
		if dog != nil {
			res.Breaches += len(dog.Breaches())
		}
	}
	return res
}

// RenderCampus renders the result as the campus experiment table.
func RenderCampus(res CampusResult) string {
	t := metrics.NewTable(
		fmt.Sprintf("campus: %d cells, %d switches, %d hosts on %d shards (lookahead %d ns)",
			res.Cells, res.Switches, res.Hosts, res.Shards, res.LookaheadNS),
		"cell", "tx frames", "rx frames", "int obs", "slo breaches")
	for _, cs := range res.PerCell {
		t.AddRowf("%d\t%d\t%d\t%d\t%d",
			cs.Cell, cs.TxFrames, cs.RxFrames, cs.INTObservations, cs.Breaches)
	}
	s := t.String()
	s += fmt.Sprintf("windows=%d skipped=%d cross-shard msgs=%d delivered=%d\n",
		res.Group.Windows, res.Group.Skipped, res.Group.Messages, res.Accounting.Delivered)
	if res.FellBack {
		s += "NOTE: zero-lookahead partition; fell back to serial single-shard execution\n"
	}
	return s
}

// FoldState folds the full experiment state: the shard group (window
// clock plus every engine), the equipment, and the per-shard telemetry
// in fixed shard order.
func (h *CampusHarness) FoldState(d *checkpoint.Digest) {
	h.net.Group.FoldState(d)
	h.net.FoldState(d)
	d.Str(h.plan.String())
	for s := 0; s < h.net.Group.Shards(); s++ {
		hasColl := h.colls[s] != nil
		d.Bool(hasColl)
		if hasColl {
			h.colls[s].FoldState(d)
		}
		hasDog := h.dogs[s] != nil
		d.Bool(hasDog)
		if hasDog {
			h.dogs[s].FoldState(d)
		}
	}
}

// Digest returns the state digest at the current instant.
func (h *CampusHarness) Digest() uint64 {
	d := checkpoint.NewDigest()
	h.FoldState(d)
	return d.Sum()
}

// Save writes a replay-anchored checkpoint of the run to w. The worker
// count is deliberately not encoded: it cannot change the replay.
func (h *CampusHarness) Save(w io.Writer) error {
	e := checkpoint.NewEncoder()
	encodeCampusConfig(e, h.cfg)
	return checkpoint.WriteHarness(w, CampusCheckpointKind, e.Data(), int64(h.Now()), h.Digest())
}

// RestoreCampus reads a campus checkpoint, rebuilds the scenario from
// its recorded configuration, and replays deterministically to the
// checkpointed instant with the given worker count. A digest mismatch
// returns *checkpoint.DivergenceError.
func RestoreCampus(r io.Reader, workers int) (*CampusHarness, error) {
	return RestoreCampusWith(r, workers, nil)
}

// RestoreCampusWith is RestoreCampus with a hook to set the restored
// configuration's observational knobs (Profile, Trace, Metrics) before
// the rebuild — they are not encoded in checkpoints, so a resumed run
// re-enables them here. mutate must not touch scenario fields: the
// replay would diverge from the recorded digest and fail loudly.
func RestoreCampusWith(r io.Reader, workers int, mutate func(*CampusConfig)) (*CampusHarness, error) {
	cfgBytes, at, digest, err := checkpoint.ReadHarness(r, CampusCheckpointKind)
	if err != nil {
		return nil, err
	}
	d := checkpoint.NewDecoder(cfgBytes)
	cfg := decodeCampusConfig(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("core: bad campus checkpoint config: %w", err)
	}
	cfg.Workers = workers
	if mutate != nil {
		mutate(&cfg)
	}
	h, err := NewCampusHarness(cfg)
	if err != nil {
		return nil, err
	}
	h.AdvanceTo(sim.Time(at))
	if got := h.Digest(); got != digest {
		return nil, &checkpoint.DivergenceError{Kind: CampusCheckpointKind, At: at, Recorded: digest, Replayed: got}
	}
	return h, nil
}

func encodeLinkSpec(e *checkpoint.Encoder, s topo.LinkSpec) {
	e.F64(s.RateBps)
	e.I64(s.PropNs)
}

func decodeLinkSpec(d *checkpoint.Decoder) topo.LinkSpec {
	return topo.LinkSpec{RateBps: d.F64(), PropNs: d.I64()}
}

// encodeCampusConfig serializes the replayable configuration. Workers,
// Profile, Trace and Metrics are execution/observation knobs, not
// scenario, and are omitted — the byte layout below is frozen (format
// v3's golden corpus pins it), so observational fields must never leak
// into it.
func encodeCampusConfig(e *checkpoint.Encoder, cfg CampusConfig) {
	e.U64(cfg.Seed)
	e.Int(cfg.Topo.Cells)
	e.Int(cfg.Topo.SwitchesPerCell)
	e.Int(cfg.Topo.HostsPerSwitch)
	e.Int(cfg.Topo.Spines)
	e.Int(cfg.Topo.Fanout)
	encodeLinkSpec(e, cfg.Topo.Access)
	encodeLinkSpec(e, cfg.Topo.Trunk)
	encodeLinkSpec(e, cfg.Topo.Backbone)
	e.I64(int64(cfg.Horizon))
	e.I64(int64(cfg.Period))
	e.Int(cfg.CrossEvery)
	e.Int(cfg.FrameBytes)
	e.Int(cfg.QueueDepth)
	e.Bool(cfg.INT)
	e.Str(cfg.SLO)
}

func decodeCampusConfig(d *checkpoint.Decoder) CampusConfig {
	var cfg CampusConfig
	cfg.Seed = d.U64()
	cfg.Topo.Cells = d.Int()
	cfg.Topo.SwitchesPerCell = d.Int()
	cfg.Topo.HostsPerSwitch = d.Int()
	cfg.Topo.Spines = d.Int()
	cfg.Topo.Fanout = d.Int()
	cfg.Topo.Access = decodeLinkSpec(d)
	cfg.Topo.Trunk = decodeLinkSpec(d)
	cfg.Topo.Backbone = decodeLinkSpec(d)
	cfg.Horizon = sim.Duration(d.I64())
	cfg.Period = sim.Duration(d.I64())
	cfg.CrossEvery = d.Int()
	cfg.FrameBytes = d.Int()
	cfg.QueueDepth = d.Int()
	cfg.INT = d.Bool()
	cfg.SLO = d.Str()
	return cfg
}
