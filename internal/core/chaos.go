package core

import (
	"fmt"
	"time"

	"steelnet/internal/faults"
	"steelnet/internal/instaplc"
	intnet "steelnet/internal/int"
	"steelnet/internal/iodevice"
	"steelnet/internal/metrics"
	"steelnet/internal/simnet"
	"steelnet/internal/sweep"
	"steelnet/internal/telemetry"
)

// ChaosConfig parameterizes RunChaosSweep: the Fig. 5 InstaPLC scenario
// bombarded with randomized-but-replayable fault plans of increasing
// intensity. Every cell derives its own seed from (Seed, cell index),
// generates its plan with faults.Generate, and runs on its own engine,
// so the sweep parallelizes like every other figure sweep — same table
// at any worker count.
type ChaosConfig struct {
	Seed uint64
	// Intensities is the fault-count ladder; each level runs Trials
	// cells with different derived seeds.
	Intensities []int
	Trials      int
	// Workers sizes the sweep pool (<=0: NumCPU).
	Workers int
	// Base is the scenario under attack (zero value: the Fig. 5
	// defaults). Its Seed and Faults fields are overwritten per cell.
	Base instaplc.ExperimentConfig
	// MeanOutage is the mean generated fault duration (default 100 ms —
	// long against the 4.8 ms watchdog, short against the horizon).
	MeanOutage time.Duration
}

// DefaultChaosConfig sweeps 0..12 faults, three trials each.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:        1,
		Intensities: []int{0, 2, 4, 8, 12},
		Trials:      3,
		Base:        instaplc.DefaultExperimentConfig(),
	}
}

// ChaosCell is one (intensity, trial) run.
type ChaosCell struct {
	Intensity, Trial int
	Seed             uint64
	Plan             string
	InjectedFaults   int
	Switchovers      uint64
	FailsafeEvents   uint64
	IOAvailability   float64
	DeviceState      iodevice.State
	// Accounting is the cell's frame-conservation ledger; chaos tests
	// assert Accounting.Check() == nil (forwarded+dropped==sent) per run.
	Accounting simnet.Accounting
	// INTObservations counts INT stacks sunk at pipeline egress (zero
	// unless cfg.Base.INT).
	INTObservations uint64
}

// chaosTargets lists the Fig. 5 scenario's registered fault targets
// (see instaplc.ExperimentConfig.Faults).
var chaosTargets = faults.GenConfig{
	Links: []string{"v1-dp", "v2-dp", "dev-dp"},
	Ports: []string{"vplc1", "vplc2", "io", "dp.0", "dp.1", "dp.2"},
	Hosts: []string{"vplc1", "vplc2"},
}

// chaosSeed derives a cell seed from the sweep seed and cell index
// (splitmix-style odd multiplier keeps nearby indices uncorrelated).
func chaosSeed(seed uint64, i int) uint64 {
	return seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
}

// normalizeChaosConfig fills defaults so cell construction is
// deterministic regardless of where it happens (sweep or harness).
func normalizeChaosConfig(cfg ChaosConfig) ChaosConfig {
	if len(cfg.Intensities) == 0 {
		cfg.Intensities = DefaultChaosConfig().Intensities
	}
	if cfg.Trials <= 0 {
		cfg.Trials = DefaultChaosConfig().Trials
	}
	if cfg.Base.Horizon <= 0 {
		cfg.Base = instaplc.DefaultExperimentConfig()
	}
	if cfg.MeanOutage <= 0 {
		cfg.MeanOutage = 100 * time.Millisecond
	}
	return cfg
}

// ChaosCellConfig derives the instaplc configuration for cell i of the
// sweep: the base scenario with the cell's seed and its generated fault
// plan. The plan is a pure function of (cfg.Seed, i), so the cell can
// be rebuilt from a checkpoint that recorded only the config.
func ChaosCellConfig(cfg ChaosConfig, i int) instaplc.ExperimentConfig {
	cfg = normalizeChaosConfig(cfg)
	seed := chaosSeed(cfg.Seed, i)
	gen := chaosTargets
	gen.Horizon = cfg.Base.Horizon
	gen.Events = cfg.Intensities[i/cfg.Trials]
	gen.MeanOutage = cfg.MeanOutage
	plan := faults.Generate(seed, gen)
	ecfg := cfg.Base
	ecfg.Seed = seed
	ecfg.Faults = &plan
	return ecfg
}

// NewChaosCellHarness builds the resumable harness for cell i of the
// sweep — an instaplc harness under the cell's generated fault plan.
// Its Save/Restore carry the full plan, so a chaos cell checkpoints
// and resumes exactly like the plain Fig. 5 run.
func NewChaosCellHarness(cfg ChaosConfig, i int) *instaplc.Harness {
	return instaplc.NewHarness(ChaosCellConfig(cfg, i))
}

// RunChaosSweep runs the ladder and returns cells in (intensity, trial)
// order. A shared tracer or INT collector on cfg.Base no longer forces
// the sweep serial: each cell writes into private buffers that merge in
// cell order afterwards. Only a shared metrics registry serializes it.
func RunChaosSweep(cfg ChaosConfig) []ChaosCell {
	cfg = normalizeChaosConfig(cfg)
	n := len(cfg.Intensities) * cfg.Trials
	workers := cfg.Workers
	if cfg.Base.Metrics != nil {
		workers = 1
	}
	type cellOut struct {
		cell ChaosCell
		tr   *telemetry.Tracer
		coll *intnet.Collector
	}
	outs := sweep.Run(workers, n, func(i int) cellOut {
		var o cellOut
		o.cell = ChaosCell{
			Intensity: cfg.Intensities[i/cfg.Trials],
			Trial:     i % cfg.Trials,
			Seed:      chaosSeed(cfg.Seed, i),
		}
		ecfg := ChaosCellConfig(cfg, i)
		if cfg.Base.Trace != nil {
			o.tr = telemetry.NewTracer(nil) // bound to the cell's engine by NewHarness
			ecfg.Trace = o.tr
		}
		if cfg.Base.INT {
			o.coll = intnet.NewCollector()
			ecfg.Collector = o.coll
		}
		res := instaplc.RunExperiment(ecfg)
		o.cell.Plan = ecfg.Faults.String()
		o.cell.InjectedFaults = res.InjectedFaults
		o.cell.Switchovers = res.Switchovers
		o.cell.FailsafeEvents = res.FailsafeEvents
		o.cell.IOAvailability = res.IOAvailability
		o.cell.DeviceState = res.DeviceState
		o.cell.Accounting = res.Accounting
		o.cell.INTObservations = res.INTObservations
		return o
	})
	cells := make([]ChaosCell, n)
	for i, o := range outs {
		cells[i] = o.cell
		if o.tr != nil {
			cfg.Base.Trace.MergeFrom(o.tr)
		}
		if o.coll != nil && cfg.Base.Collector != nil {
			cfg.Base.Collector.Absorb(o.coll)
		}
	}
	return cells
}

// RenderChaosSweep renders the ladder: availability and failover
// activity per cell, then a per-intensity availability summary.
func RenderChaosSweep(cells []ChaosCell) string {
	t := metrics.NewTable("Chaos sweep: InstaPLC cell under randomized fault plans",
		"faults", "trial", "seed", "injected", "switchovers", "failsafes", "IO avail", "device")
	for _, c := range cells {
		t.AddRow(
			formatInt(c.Intensity),
			formatInt(c.Trial),
			fmt.Sprintf("%#x", c.Seed),
			formatInt(c.InjectedFaults),
			fmt.Sprintf("%d", c.Switchovers),
			fmt.Sprintf("%d", c.FailsafeEvents),
			fmt.Sprintf("%.4f", c.IOAvailability),
			c.DeviceState.String(),
		)
	}
	s := t.String()
	sum := metrics.NewTable("per-intensity availability", "faults", "mean IO avail", "min IO avail")
	byIntensity := map[int][]float64{}
	order := []int{}
	for _, c := range cells {
		if _, seen := byIntensity[c.Intensity]; !seen {
			order = append(order, c.Intensity)
		}
		byIntensity[c.Intensity] = append(byIntensity[c.Intensity], c.IOAvailability)
	}
	for _, k := range order {
		vs := byIntensity[k]
		mean, min := 0.0, vs[0]
		for _, v := range vs {
			mean += v
			if v < min {
				min = v
			}
		}
		sum.AddRow(formatInt(k), fmt.Sprintf("%.4f", mean/float64(len(vs))), fmt.Sprintf("%.4f", min))
	}
	return s + sum.String()
}
