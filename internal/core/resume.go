package core

import (
	"steelnet/internal/checkpoint"
	"steelnet/internal/instaplc"
	"steelnet/internal/iodevice"
	"steelnet/internal/simnet"
	"steelnet/internal/sweep"
)

// chaosCheckpointer persists completed chaos cells for resumable
// sweeps (see sweep.RunResumable).
func chaosCheckpointer(path string) sweep.Checkpointer[ChaosCell] {
	return sweep.Checkpointer[ChaosCell]{
		Path: path,
		Kind: "chaos",
		Encode: func(e *checkpoint.Encoder, c ChaosCell) {
			e.Int(c.Intensity)
			e.Int(c.Trial)
			e.U64(c.Seed)
			e.Str(c.Plan)
			e.Int(c.InjectedFaults)
			e.U64(c.Switchovers)
			e.U64(c.FailsafeEvents)
			e.F64(c.IOAvailability)
			e.Int(int(c.DeviceState))
			encodeAccounting(e, c.Accounting)
			e.U64(c.INTObservations)
		},
		Decode: func(d *checkpoint.Decoder) ChaosCell {
			return ChaosCell{
				Intensity:       d.Int(),
				Trial:           d.Int(),
				Seed:            d.U64(),
				Plan:            d.Str(),
				InjectedFaults:  d.Int(),
				Switchovers:     d.U64(),
				FailsafeEvents:  d.U64(),
				IOAvailability:  d.F64(),
				DeviceState:     iodevice.State(d.Int()),
				Accounting:      decodeAccounting(d),
				INTObservations: d.U64(),
			}
		},
	}
}

func encodeAccounting(e *checkpoint.Encoder, a simnet.Accounting) {
	e.U64(a.Accepted)
	e.U64(a.Delivered)
	e.U64(a.Destroyed)
	e.U64(a.Queued)
	e.U64(a.InFlight)
	e.U64(a.ShaperDrops)
	e.U64(a.FlushedDrops)
	e.U64(a.WireDrops)
	e.U64(a.InjectedDrops)
	e.U64(a.OverflowDrops)
	e.U64(a.DownDrops)
	e.U64(a.INTDrops)
}

func decodeAccounting(d *checkpoint.Decoder) simnet.Accounting {
	return simnet.Accounting{
		Accepted:      d.U64(),
		Delivered:     d.U64(),
		Destroyed:     d.U64(),
		Queued:        d.U64(),
		InFlight:      d.U64(),
		ShaperDrops:   d.U64(),
		FlushedDrops:  d.U64(),
		WireDrops:     d.U64(),
		InjectedDrops: d.U64(),
		OverflowDrops: d.U64(),
		DownDrops:     d.U64(),
		INTDrops:      d.U64(),
	}
}

// RunChaosSweepResumable is RunChaosSweep with sweep-level
// checkpointing: completed (intensity, trial) cells persist to path
// and are skipped when the sweep restarts.
func RunChaosSweepResumable(cfg ChaosConfig, path string) ([]ChaosCell, error) {
	cfg = normalizeChaosConfig(cfg)
	n := len(cfg.Intensities) * cfg.Trials
	workers := cfg.Workers
	if cfg.Base.Trace != nil || cfg.Base.Metrics != nil || cfg.Base.INT {
		// Resumable sweeps keep the serial-under-telemetry behavior: a
		// shared tracer/collector on Base is written by cells directly.
		workers = 1
	}
	return sweep.RunResumable(workers, n, chaosCheckpointer(path), func(i int) ChaosCell {
		cell := ChaosCell{
			Intensity: cfg.Intensities[i/cfg.Trials],
			Trial:     i % cfg.Trials,
			Seed:      chaosSeed(cfg.Seed, i),
		}
		ecfg := ChaosCellConfig(cfg, i)
		res := instaplc.RunExperiment(ecfg)
		cell.Plan = ecfg.Faults.String()
		cell.InjectedFaults = res.InjectedFaults
		cell.Switchovers = res.Switchovers
		cell.FailsafeEvents = res.FailsafeEvents
		cell.IOAvailability = res.IOAvailability
		cell.DeviceState = res.DeviceState
		cell.Accounting = res.Accounting
		cell.INTObservations = res.INTObservations
		return cell
	})
}
