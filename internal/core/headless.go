package core

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"steelnet/internal/faults"
	"steelnet/internal/instaplc"
	intnet "steelnet/internal/int"
	"steelnet/internal/sim"
	"steelnet/internal/telemetry"
)

// Headless is the gateway-facing run driver: one Fig. 5-class scenario
// advanced in fixed slices of simulated time, with a deterministic
// Sample taken at every slice boundary. Where the figure harnesses run
// to a horizon and render a table once, a Headless run is a stream —
// steelnetd steps it, samples it, and republishes the changes — so the
// driver owns exactly the state a long-running server needs: the
// harness, its telemetry registry, the INT collector, the SLO watchdog
// and a per-sink loss aggregate, all attached before the first event
// fires so a restored run replays into identical attachments.
type Headless struct {
	cfg    HeadlessConfig
	h      *instaplc.Harness
	reg    *telemetry.Registry
	coll   *intnet.Collector
	wd     *intnet.Watchdog
	tracer *telemetry.Tracer

	loss      map[string]*sinkLoss
	lossOrder []string
	seq       uint64
	next      time.Duration
	done      bool
}

// sinkLoss accumulates received/lost counts at one INT sink.
type sinkLoss struct {
	received, lost uint64
}

// HeadlessConfig declares one run. It is the wire-level run spec the
// gateway accepts, so every field must be derivable from a JSON body.
type HeadlessConfig struct {
	// Seed drives the whole run; identical configs replay byte-identically.
	Seed uint64 `json:"seed"`
	// Horizon ends the run; Slice is the publish interval (both
	// simulated time). Slice must divide the run into at least one step.
	Horizon time.Duration `json:"horizon"`
	Slice   time.Duration `json:"slice"`
	// Cycle is the IO cycle time (zero: the Fig. 5 default).
	Cycle time.Duration `json:"cycle,omitempty"`
	// FailAt is when the primary vPLC crashes (zero: the Fig. 5
	// default, scaled into the horizon when the horizon is shorter).
	FailAt time.Duration `json:"fail_at,omitempty"`
	// Faults optionally replaces the default crash with a declarative
	// plan in the internal/faults spec grammar.
	Faults string `json:"faults,omitempty"`
	// SLO optionally watches objectives in the intnet spec grammar;
	// breaches appear in every Sample.
	SLO string `json:"slo,omitempty"`
	// Baseline disables InstaPLC (plain L2) — the failing comparison run.
	Baseline bool `json:"baseline,omitempty"`
	// Trace records the run's event-level telemetry trace for the
	// gateway's Chrome/Perfetto export. A restore replays 0→T into the
	// fresh tracer, so a resumed run's trace equals a straight run's.
	Trace bool `json:"trace,omitempty"`
}

// normalize fills defaults and scales the stock Fig. 5 timeline into a
// shortened horizon so a 200 ms gateway run still contains a failover.
func (cfg HeadlessConfig) normalize() (HeadlessConfig, instaplc.ExperimentConfig, error) {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 3 * time.Second
	}
	if cfg.Slice <= 0 {
		cfg.Slice = 50 * time.Millisecond
	}
	if cfg.Slice > cfg.Horizon {
		return cfg, instaplc.ExperimentConfig{}, fmt.Errorf("core: slice %v exceeds horizon %v", cfg.Slice, cfg.Horizon)
	}
	ecfg := instaplc.DefaultExperimentConfig()
	ecfg.Seed = cfg.Seed
	ecfg.Horizon = cfg.Horizon
	if cfg.Cycle > 0 {
		ecfg.Cycle = cfg.Cycle
	}
	if cfg.FailAt > 0 {
		ecfg.FailAt = cfg.FailAt
	} else if ecfg.FailAt >= cfg.Horizon {
		// Keep the default crash inside a shortened run: secondary joins
		// at 1/8 of the horizon, the primary dies at 3/8.
		ecfg.SecondaryJoinAt = cfg.Horizon / 8
		ecfg.FailAt = 3 * cfg.Horizon / 8
	}
	ecfg.DisableInstaPLC = cfg.Baseline
	ecfg.INT = !cfg.Baseline
	if cfg.Faults != "" {
		plan, err := faults.ParsePlan(cfg.Faults)
		if err != nil {
			return cfg, ecfg, err
		}
		ecfg.Faults = &plan
	}
	return cfg, ecfg, nil
}

// NewHeadless builds the run at t=0. The returned driver has taken no
// steps; the first Step advances to the first slice boundary.
func NewHeadless(cfg HeadlessConfig) (*Headless, error) {
	cfg, ecfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	d, err := newHeadlessAttachments(cfg)
	if err != nil {
		return nil, err
	}
	ecfg.Metrics = d.reg
	ecfg.Collector = d.coll
	ecfg.Trace = d.tracer
	d.h = instaplc.NewHarness(ecfg)
	return d, nil
}

// newHeadlessAttachments builds the registry, collector, loss aggregate
// and watchdog — everything that must exist before the first simulated
// event, whether that event comes from a fresh run or a restore replay.
func newHeadlessAttachments(cfg HeadlessConfig) (*Headless, error) {
	d := &Headless{
		cfg:  cfg,
		reg:  telemetry.NewRegistry(),
		coll: intnet.NewCollector(),
		loss: map[string]*sinkLoss{},
		next: cfg.Slice,
	}
	if cfg.Trace {
		d.tracer = telemetry.NewTracer(nil) // harness binds the engine
	}
	d.coll.OnSink = func(obs intnet.Observation) {
		sl := d.loss[obs.Sink]
		if sl == nil {
			sl = &sinkLoss{}
			d.loss[obs.Sink] = sl
			d.lossOrder = append(d.lossOrder, obs.Sink)
		}
		sl.received++
		sl.lost += obs.NewlyLost
	}
	if cfg.SLO != "" {
		plan, err := intnet.ParseSLOPlan(cfg.SLO)
		if err != nil {
			return nil, err
		}
		d.wd = intnet.NewWatchdog(plan, 0, nil)
		d.wd.Attach(d.coll) // chains after the loss aggregate
	}
	return d, nil
}

// Config returns the normalized run spec the driver was built from.
func (d *Headless) Config() HeadlessConfig { return d.cfg }

// Registry returns the run's metrics registry. Read it only from the
// goroutine stepping the run.
func (d *Headless) Registry() *telemetry.Registry { return d.reg }

// TraceEvents returns the run's recorded telemetry events (nil unless
// the spec set Trace). Read only from the goroutine stepping the run.
func (d *Headless) TraceEvents() []telemetry.Event {
	if d.tracer == nil {
		return nil
	}
	return d.tracer.Events()
}

// Breaches returns the SLO breach log (nil without an SLO plan).
func (d *Headless) Breaches() []intnet.Breach {
	if d.wd == nil {
		return nil
	}
	return d.wd.Breaches()
}

// Now returns the run's current simulated time in nanoseconds.
func (d *Headless) Now() int64 { return int64(d.h.Engine().Now()) }

// Done reports whether the run has reached its horizon.
func (d *Headless) Done() bool { return d.done }

// Step advances one slice of simulated time (the final slice clamps to
// the horizon) and reports whether the run is finished. Stepping a
// finished run is a no-op that keeps reporting done.
func (d *Headless) Step() (done bool) {
	if d.done {
		return true
	}
	t := d.next
	if t >= d.cfg.Horizon {
		t = d.cfg.Horizon
		d.done = true
	}
	d.h.AdvanceTo(sim.Time(t))
	d.next += d.cfg.Slice
	d.seq++
	return d.done
}

// Result renders the finished run's Fig. 5 result.
func (d *Headless) Result() instaplc.ExperimentResult { return d.h.Result() }

// Tag is one sampled value in the gateway's flat tag space — the
// steelnet analogue of a PLC tag: metric families, INT path aggregates,
// per-sink loss fractions and SLO breach counts all flatten into
// (name, value) pairs so change detection and the rule engine work on
// one namespace.
type Tag struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// SinkLoss is one sink's cumulative loss aggregate.
type SinkLoss struct {
	Sink           string
	Received, Lost uint64
}

// Fraction is lost/(lost+received), 0 before any arrival.
func (s SinkLoss) Fraction() float64 {
	if s.Received+s.Lost == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Lost+s.Received)
}

// Sample is one deterministic view of the run at a slice boundary.
// Slices of the same run spec sample identically on every replay; the
// gateway's publish stream is a pure function of the spec.
type Sample struct {
	// Seq counts slice boundaries from 1.
	Seq uint64
	// SimNS is the simulated time of the boundary.
	SimNS int64
	// Tags is the flattened tag space in deterministic order.
	Tags []Tag
	// Digests are the collector's INT path aggregates (first-seen order).
	Digests []*intnet.PathDigest
	// Breaches is the full SLO breach log so far (onset order).
	Breaches []intnet.Breach
	// Loss lists per-sink loss aggregates in first-seen order.
	Loss []SinkLoss
}

// Sample reads the run's state at the current instant. Call between
// Steps, on the stepping goroutine.
func (d *Headless) Sample() Sample {
	s := Sample{
		Seq:      d.seq,
		SimNS:    d.Now(),
		Digests:  d.coll.Digests(),
		Breaches: d.Breaches(),
	}
	for _, v := range d.reg.Values() {
		s.Tags = append(s.Tags, Tag{Name: v.Name + v.Labels, Value: v.Value})
	}
	for _, p := range s.Digests {
		prefix := "int/" + p.Sink + "/" + p.Source + "/" + strconv.FormatUint(uint64(p.Flow), 10)
		s.Tags = append(s.Tags,
			Tag{Name: prefix + "/count", Value: float64(p.Count)},
			Tag{Name: prefix + "/mean_ns", Value: p.MeanNS()},
			Tag{Name: prefix + "/max_ns", Value: float64(p.MaxNS)},
			Tag{Name: prefix + "/jitter_ns", Value: p.MeanJitterNS()},
		)
	}
	for _, sink := range d.lossOrder {
		sl := d.loss[sink]
		agg := SinkLoss{Sink: sink, Received: sl.received, Lost: sl.lost}
		s.Loss = append(s.Loss, agg)
		s.Tags = append(s.Tags, Tag{Name: "loss/" + sink, Value: agg.Fraction()})
	}
	open := 0
	for _, b := range s.Breaches {
		if b.ClearedAtNS < 0 {
			open++
		}
	}
	if d.wd != nil {
		s.Tags = append(s.Tags,
			Tag{Name: "slo/breaches", Value: float64(len(s.Breaches))},
			Tag{Name: "slo/open", Value: float64(open)},
		)
	}
	return s
}

// Save checkpoints the run. Call only at slice boundaries: the saved
// state must correspond to a Sample point or the resumed publish stream
// would cut mid-slice.
func (d *Headless) Save(w io.Writer) error { return d.h.Save(w) }

// RestoreHeadless rebuilds a driver from a checkpoint written by Save.
// The checkpoint carries the harness configuration; cfg must be the
// same spec the run was started from (it supplies what the harness does
// not record: the slice grid and the SLO plan). The restore replays
// 0→T into fresh attachments, so the collector, watchdog state and
// loss aggregates match a straight run's at T exactly; the next Step
// continues on the same slice grid.
func RestoreHeadless(r io.Reader, cfg HeadlessConfig) (*Headless, error) {
	cfg, _, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	d, err := newHeadlessAttachments(cfg)
	if err != nil {
		return nil, err
	}
	h, err := instaplc.RestoreWithCollector(r, d.tracer, d.reg, d.coll)
	if err != nil {
		return nil, err
	}
	d.h = h
	// Re-derive the slice cursor from the restored instant. Saves happen
	// only at slice boundaries, so Now is k*Slice exactly (or the
	// horizon, for a run checkpointed at its final boundary).
	now := time.Duration(d.Now())
	d.seq = uint64(now / cfg.Slice)
	d.next = now + cfg.Slice
	d.done = now >= cfg.Horizon
	if d.done && now%cfg.Slice != 0 {
		d.seq++ // the clamped final boundary is off the k*Slice grid
	}
	return d, nil
}
