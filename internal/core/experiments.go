package core

import (
	"fmt"
	"math"
	"time"

	"steelnet/internal/corpus"
	"steelnet/internal/host"
	"steelnet/internal/instaplc"
	"steelnet/internal/metrics"
	"steelnet/internal/mltopo"
	"steelnet/internal/reflection"
	"steelnet/internal/sim"
	"steelnet/internal/trafficgen"
)

// Figure1 mines the synthetic proceedings and returns the rendered
// research-gap bar list plus the raw counts.
func Figure1(seed uint64) (string, []corpus.Count) {
	counts, docs := corpus.MineFigure1(seed)
	return corpus.RenderFigure1(counts, docs), counts
}

// Figure4Delay runs the six-variant reflection experiment (Fig. 4 left).
func Figure4Delay(cfg reflection.Config) (string, []reflection.Result) {
	results := reflection.RunAllVariants(cfg)
	return reflection.DelayTable(results), results
}

// Figure4Jitter runs the 1-vs-25-flow jitter sweep (Fig. 4 right).
func Figure4Jitter(cfg reflection.Config) (string, []reflection.Result) {
	results := reflection.RunFlowSweep(cfg, []int{1, 25})
	return reflection.JitterTable(results), results
}

// Figure5 runs the InstaPLC failover scenario.
func Figure5(cfg instaplc.ExperimentConfig) (string, instaplc.ExperimentResult) {
	res := instaplc.RunExperiment(cfg)
	return instaplc.RenderFigure5(res), res
}

// Figure6 runs the topology sweep.
func Figure6(cfg mltopo.Figure6Config) (string, []mltopo.Result) {
	results := mltopo.RunFigure6(cfg)
	return mltopo.RenderFigure6(results), results
}

// TimingRequirement is one §2.1 requirement row.
type TimingRequirement struct {
	UseCase  string
	Cycle    time.Duration
	Latency  time.Duration
	JitterNS float64
}

// Section21Requirements are the paper's numbers: machine tools at
// 500 µs cycles, high-speed motion control at 250 µs latency and <1 µs
// jitter, process automation at 10-100 ms.
var Section21Requirements = []TimingRequirement{
	{UseCase: "machine tools", Cycle: 500 * time.Microsecond, Latency: 500 * time.Microsecond, JitterNS: 1000},
	{UseCase: "motion control", Cycle: 250 * time.Microsecond, Latency: 250 * time.Microsecond, JitterNS: 1000},
	{UseCase: "process automation", Cycle: 10 * time.Millisecond, Latency: 10 * time.Millisecond, JitterNS: 100000},
}

// TimingCheckResult reports one host profile against one requirement.
// Safety arguments live at the worst case (§2.1: existing evaluations
// "fail to report critical performance metrics such as jitter and
// worst-case latency/jitter"), so the verdicts use the maxima; p99
// values are reported alongside for comparison with papers that stop
// there.
type TimingCheckResult struct {
	Requirement               TimingRequirement
	Profile                   string
	MeasuredP99LatencyNS      float64
	MeasuredWorstLatencyNS    float64
	MeasuredP99JitterNS       float64
	MeasuredWorstJitterNS     float64
	MeetsLatency, MeetsJitter bool
}

// Section21TimingCheck samples a host stack's full-kernel path (the
// vPLC data path) and checks it against each requirement at the worst
// case — the quantitative form of "current stacks do not meet these
// requirements".
func Section21TimingCheck(profile host.Profile, seed uint64, samples int) []TimingCheckResult {
	if samples <= 0 {
		samples = 20000
	}
	e := sim.NewEngine(seed)
	stk := host.NewStack(profile, e.RNG("timing"))
	lat := metrics.NewSeries(samples)
	for i := 0; i < samples; i++ {
		// One cycle pays scheduling wakeup + rx + tx.
		d := stk.SchedulingNoise() + stk.FullKernelRx(64) + stk.FullKernelTx(64)
		lat.AddDuration(d)
	}
	jit := metrics.Jitter(lat)
	out := make([]TimingCheckResult, 0, len(Section21Requirements))
	for _, req := range Section21Requirements {
		r := TimingCheckResult{
			Requirement:            req,
			Profile:                profile.Name,
			MeasuredP99LatencyNS:   lat.P99(),
			MeasuredWorstLatencyNS: lat.Max(),
			MeasuredP99JitterNS:    jit.P99(),
			MeasuredWorstJitterNS:  jit.Max(),
		}
		r.MeetsLatency = r.MeasuredWorstLatencyNS <= float64(req.Latency)
		r.MeetsJitter = r.MeasuredWorstJitterNS <= req.JitterNS
		out = append(out, r)
	}
	return out
}

// RenderTimingCheck renders the §2.1 check as a table.
func RenderTimingCheck(results []TimingCheckResult) string {
	t := metrics.NewTable("Section 2.1: host stack vs industrial timing requirements (worst case)",
		"use case", "profile", "req latency", "worst latency", "req jitter", "worst jitter", "meets")
	for _, r := range results {
		t.AddRow(
			r.Requirement.UseCase,
			r.Profile,
			r.Requirement.Latency.String(),
			time.Duration(r.MeasuredWorstLatencyNS).Round(time.Microsecond).String(),
			time.Duration(r.Requirement.JitterNS).String(),
			time.Duration(r.MeasuredWorstJitterNS).Round(10*time.Nanosecond).String(),
			formatBool(r.MeetsLatency && r.MeetsJitter),
		)
	}
	return t.String()
}

// TrafficMixResult is the §2.3 characterization.
type TrafficMixResult struct {
	Histogram     map[trafficgen.Class]int
	Misclassified int
	Total         int
}

// Section23TrafficMix generates a converged-network flow population
// and classifies it.
func Section23TrafficMix(seed uint64, mix trafficgen.Mix) TrafficMixResult {
	rng := sim.NewRNG(seed)
	flows := trafficgen.Generate(rng, mix)
	return TrafficMixResult{
		Histogram:     trafficgen.Histogram(flows),
		Misclassified: trafficgen.MisclassifiedBySizeAlone(flows),
		Total:         len(flows),
	}
}

// RenderTrafficMix renders the §2.3 characterization.
func RenderTrafficMix(r TrafficMixResult) string {
	t := metrics.NewTable("Section 2.3: converged traffic mix", "class", "flows")
	for _, c := range []trafficgen.Class{trafficgen.Mice, trafficgen.Medium, trafficgen.Elephant, trafficgen.DeterministicMicroflow} {
		t.AddRow(c.String(), formatInt(r.Histogram[c]))
	}
	t.AddRow("— misclassified by size-only taxonomy", formatInt(r.Misclassified))
	return t.String()
}

func formatPct(v float64) string { return fmt.Sprintf("%.7f%%", v*100) }

func formatNines(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}

func formatInt(v int) string { return fmt.Sprintf("%d", v) }

func formatBool(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
