package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"steelnet/internal/faults"
	"steelnet/internal/instaplc"
	intnet "steelnet/internal/int"
	"steelnet/internal/iodevice"
)

// The chaos suite's invariants: whatever the generated fault plan does,
// the cell must come back — the engine terminates (implicit in any
// completed run), availability holds a floor, quiet cells stay quiet,
// and the ladder is monotone in spirit (faults only ever appear when
// asked for).

func TestChaosSweepInvariants(t *testing.T) {
	cfg := DefaultChaosConfig()
	cells := RunChaosSweep(cfg)
	if len(cells) != len(cfg.Intensities)*cfg.Trials {
		t.Fatalf("got %d cells, want %d", len(cells), len(cfg.Intensities)*cfg.Trials)
	}
	for _, c := range cells {
		if c.InjectedFaults != c.Intensity {
			t.Errorf("cell (%d,%d): injected %d faults, want %d",
				c.Intensity, c.Trial, c.InjectedFaults, c.Intensity)
		}
		// Generated faults always recover, InstaPLC rides through host
		// stalls, and the bin floor holds even under the heaviest
		// ladder rung (deterministic: these seeds either pass forever
		// or fail forever).
		if c.IOAvailability < 0.8 {
			t.Errorf("cell (%d,%d): IOAvailability %.4f below 0.8 floor\nplan: %s",
				c.Intensity, c.Trial, c.IOAvailability, c.Plan)
		}
		// Frame conservation per run: everything the egress queues
		// accepted is delivered, destroyed for a cause, or still in the
		// network at the horizon (forwarded + dropped == sent).
		if err := c.Accounting.Check(); err != nil {
			t.Errorf("cell (%d,%d): %v\nplan: %s", c.Intensity, c.Trial, err, c.Plan)
		}
		if c.Accounting.Accepted == 0 {
			t.Errorf("cell (%d,%d): accounting saw no traffic", c.Intensity, c.Trial)
		}
		if c.Intensity == 0 {
			if c.Switchovers != 0 || c.FailsafeEvents != 0 || c.IOAvailability != 1 {
				t.Errorf("quiet cell (%d,%d) was not quiet: %+v", c.Intensity, c.Trial, c)
			}
			if c.DeviceState != iodevice.StateOperate {
				t.Errorf("quiet cell (%d,%d): device state %v", c.Intensity, c.Trial, c.DeviceState)
			}
		}
	}
}

func TestChaosPlansAreReplayable(t *testing.T) {
	// Every cell's plan string must reparse and reproduce the cell's
	// result when run directly — the property that turns a chaos
	// finding into a regression test.
	cfg := DefaultChaosConfig()
	cfg.Intensities = []int{6}
	cfg.Trials = 1
	cells := RunChaosSweep(cfg)
	c := cells[0]
	replayed := replayCell(t, cfg, c)
	if replayed.Switchovers != c.Switchovers ||
		replayed.FailsafeEvents != c.FailsafeEvents ||
		replayed.IOAvailability != c.IOAvailability {
		t.Fatalf("replay from plan string diverged:\nsweep:  %+v\nreplay: switchovers=%d failsafes=%d avail=%v",
			c, replayed.Switchovers, replayed.FailsafeEvents, replayed.IOAvailability)
	}
}

func replayCell(t *testing.T, cfg ChaosConfig, c ChaosCell) instaplc.ExperimentResult {
	t.Helper()
	plan, err := faults.ParsePlan(c.Plan)
	if err != nil {
		t.Fatalf("cell plan %q does not reparse: %v", c.Plan, err)
	}
	ecfg := cfg.Base
	ecfg.Seed = c.Seed
	ecfg.Faults = &plan
	return instaplc.RunExperiment(ecfg)
}

// TestChaosSweepINTConservation runs the ladder with in-band telemetry
// on: conservation must hold in every cell while frames carry stamp
// bytes, the collector must see traffic, and the merged collector must
// be byte-identical at any worker count.
func TestChaosSweepINTConservation(t *testing.T) {
	mk := func(workers int) ([]ChaosCell, *intnet.Collector) {
		cfg := DefaultChaosConfig()
		cfg.Intensities = []int{0, 4}
		cfg.Trials = 1
		cfg.Workers = workers
		cfg.Base.SecondaryJoinAt = 100 * time.Millisecond
		cfg.Base.FailAt = 300 * time.Millisecond
		cfg.Base.Horizon = 800 * time.Millisecond
		cfg.Base.INT = true
		cfg.Base.Collector = intnet.NewCollector()
		return RunChaosSweep(cfg), cfg.Base.Collector
	}

	cells, coll := mk(2)
	var total uint64
	for _, c := range cells {
		if err := c.Accounting.Check(); err != nil {
			t.Errorf("cell (%d,%d) with INT on: %v\nplan: %s", c.Intensity, c.Trial, err, c.Plan)
		}
		if c.INTObservations == 0 {
			t.Errorf("cell (%d,%d) sank no INT stacks", c.Intensity, c.Trial)
		}
		total += c.INTObservations
	}
	if coll.Observations != total {
		t.Fatalf("merged collector saw %d observations, cells report %d", coll.Observations, total)
	}

	_, serial := mk(1)
	var par, ser bytes.Buffer
	if err := coll.WriteJSONL(&par); err != nil {
		t.Fatal(err)
	}
	if err := serial.WriteJSONL(&ser); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(par.Bytes(), ser.Bytes()) {
		t.Fatal("parallel and serial chaos sweeps merged different INT digests")
	}
}

func TestRenderChaosSweep(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Intensities = []int{0, 2}
	cfg.Trials = 1
	out := RenderChaosSweep(RunChaosSweep(cfg))
	for _, want := range []string{"Chaos sweep", "IO avail", "per-intensity availability", "operate"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
